// Package bench holds the simulation-kernel micro-benchmarks: per-cycle
// cost of Network.Step on an 8x8 mesh for each router kind, at low, mid
// and saturation offered load, under both the activity-gated kernel and
// the ungated reference. scripts/bench.sh runs them and distils the
// speedup and allocation numbers into BENCH_kernel.json.
package bench

import (
	"fmt"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/router/generic"
	"github.com/rocosim/roco/internal/router/pathsensitive"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// warmSteps settles each network into steady state (queues populated,
// flit pool and scratch slices grown) before the timer starts.
const warmSteps = 1000

var kinds = []struct {
	name  string
	build func(int, *router.RouteEngine) router.Router
}{
	{"generic", func(id int, e *router.RouteEngine) router.Router { return generic.New(id, e) }},
	{"pathsensitive", func(id int, e *router.RouteEngine) router.Router { return pathsensitive.New(id, e) }},
	{"roco", func(id int, e *router.RouteEngine) router.Router { return core.New(id, e) }},
}

var loads = []struct {
	name string
	rate float64
}{
	{"low", 0.05},
	{"mid", 0.20},
	{"sat", 0.40},
}

func benchNetwork(build func(int, *router.RouteEngine) router.Router, rate float64, reference bool) *network.Network {
	return network.New(network.Config{
		Topo:      topology.NewMesh(8, 8),
		Algorithm: routing.XY,
		Build:     build,
		Traffic:   traffic.Config{Pattern: traffic.Uniform, Rate: rate, FlitsPerPacket: 4},
		// Generation must never stop mid-benchmark: the kernels are
		// measured at steady state, not while draining.
		MeasurePackets:  1 << 40,
		Seed:            1,
		ReferenceKernel: reference,
	})
}

// BenchmarkKernel measures one simulated cycle (Network.Step) per
// iteration. Benchmark names read kind/load/kernel.
func BenchmarkKernel(b *testing.B) {
	for _, k := range kinds {
		for _, l := range loads {
			for _, kernel := range []string{"gated", "reference"} {
				name := fmt.Sprintf("%s/%s/%s", k.name, l.name, kernel)
				b.Run(name, func(b *testing.B) {
					n := benchNetwork(k.build, l.rate, kernel == "reference")
					for i := 0; i < warmSteps; i++ {
						n.Step()
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						n.Step()
					}
				})
			}
		}
	}
}
