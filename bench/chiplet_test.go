// Chiplet-topology benchmarks: per-cycle cost of a 16x16-node machine
// built as one flat die versus a 2x2 grid of 8x8-node chiplets, whose
// boundary links are multi-cycle D2D pipes (parallel interposer class
// and serialized off-package class). The pipes ride the same Step loop
// as everything else, so this measures what the seams cost the kernel —
// scripts/bench.sh chiplet distils the overhead into BENCH_chiplet.json.
package bench

import (
	"fmt"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// seams pits the flat 16x16 mesh against the same node grid re-tiled as
// 2x2 chiplets of 8x8, under each boundary-link class.
var seams = []struct {
	name     string
	topo     topology.Topology
	lat, gap int
}{
	{"flat", topology.NewMesh(16, 16), 0, 0},
	{"parallel", topology.NewMultiChipMesh(2, 2, 8, 8), 2, 1},
	{"serial", topology.NewMultiChipMesh(2, 2, 8, 8), 4, 4},
}

// BenchmarkChiplet measures one simulated cycle (Network.Step) per
// iteration on the gated kernel with the RoCo router. Benchmark names
// read seam/load.
func BenchmarkChiplet(b *testing.B) {
	for _, s := range seams {
		for _, l := range loads[:2] { // low, mid: the D2D serializers saturate first
			b.Run(fmt.Sprintf("%s/%s", s.name, l.name), func(b *testing.B) {
				n := network.New(network.Config{
					Topo:      s.topo,
					Algorithm: routing.XY,
					Build: func(id int, e *router.RouteEngine) router.Router {
						return core.New(id, e)
					},
					Traffic:        traffic.Config{Pattern: traffic.Uniform, Rate: l.rate, FlitsPerPacket: 4},
					MeasurePackets: 1 << 40,
					Seed:           1,
					D2DLatency:     s.lat,
					D2DGap:         s.gap,
				})
				for i := 0; i < warmSteps; i++ {
					n.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
			})
		}
	}
}
