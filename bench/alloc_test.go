package bench

import (
	"fmt"
	"testing"
)

// allocLoads are the allocator-stress points: at saturation the VA/SA
// request sets are dense every cycle, so Network.Step time is dominated by
// the allocation stage this grid exists to measure (bitmap request
// building, trailing-zeros arbitration, candidate-mask caching; DESIGN.md
// 4i). "sat" matches the kernel grid's saturation point; "deep" pushes
// well past it so every buffer stays full and head-of-line arbitration is
// exercised continuously.
var allocLoads = []struct {
	name string
	rate float64
}{
	{"sat", 0.40},
	{"deep", 0.60},
}

// BenchmarkAlloc measures one simulated cycle (Network.Step) per iteration
// on the 8x8 mesh under the activity-gated kernel, at and beyond
// saturation, for each router kind. Benchmark names read kind/load;
// scripts/bench.sh alloc distils the numbers into BENCH_alloc.json. Run
// with a fixed -benchtime=Nx (the bench.sh default) so two commits measure
// the same simulated horizon.
func BenchmarkAlloc(b *testing.B) {
	for _, k := range kinds {
		for _, l := range allocLoads {
			name := fmt.Sprintf("%s/%s", k.name, l.name)
			b.Run(name, func(b *testing.B) {
				n := benchNetwork(k.build, l.rate, false)
				for i := 0; i < warmSteps; i++ {
					n.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
			})
		}
	}
}
