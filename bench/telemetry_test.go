package bench

import (
	"fmt"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// telemetryNetwork is benchNetwork for the telemetry-overhead study: the
// gated kernel on the RoCo router, with epoch sampling on or off.
func telemetryNetwork(rate float64, every int64) *network.Network {
	cfg := network.Config{
		Topo:      topology.NewMesh(8, 8),
		Algorithm: routing.XY,
		Build:     func(id int, e *router.RouteEngine) router.Router { return core.New(id, e) },
		Traffic:   traffic.Config{Pattern: traffic.Uniform, Rate: rate, FlitsPerPacket: 4},
		// Generation must never stop mid-benchmark (steady state, not
		// draining).
		MeasurePackets: 1 << 40,
		Seed:           1,
		TelemetryEvery: every,
	}
	if every > 0 {
		cfg.TelemetryProfile = power.NewProfile(power.RoCoStructure())
	}
	return network.New(cfg)
}

// BenchmarkTelemetry prices Config.TelemetryEvery: one simulated cycle
// (Network.Step) per iteration on the gated kernel, with telemetry off
// versus a 256-cycle epoch. The "off" case pays exactly one int64
// comparison per cycle; the "on" case adds the amortised epoch sampling
// walk (all routers' counters, VC occupancy, energy pricing) every 256
// cycles. Benchmark names read load/telemetry-mode; scripts/bench.sh
// telemetry distils the overhead into BENCH_telemetry.json.
func BenchmarkTelemetry(b *testing.B) {
	for _, l := range loads {
		for _, mode := range []struct {
			name  string
			every int64
		}{
			{"off", 0},
			{"on", 256},
		} {
			name := fmt.Sprintf("%s/%s", l.name, mode.name)
			b.Run(name, func(b *testing.B) {
				n := telemetryNetwork(l.rate, mode.every)
				for i := 0; i < warmSteps; i++ {
					n.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
			})
		}
	}
}
