package bench

import (
	"fmt"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// meshes are the shard-scaling grid sizes: the paper's 8x8 scaled up to
// the mesh sizes the related scalability studies evaluate.
var meshes = []struct {
	name          string
	width, height int
	warm          int // steady-state warm-up steps before the timer
}{
	{"16x16", 16, 16, 800},
	{"32x32", 32, 32, 500},
	{"64x64", 64, 64, 300},
}

var shardCounts = []int{1, 2, 4, 8}

// shardLoads scales the offered load to the mesh: uniform traffic on a
// W-wide mesh saturates near 4/W flits/node/cycle (bisection bound), so a
// fixed absolute rate that is mid-load on 8x8 supersaturates 32x32 and
// the benchmark would measure unbounded queue growth instead of steady
// state. Low/mid/sat are 20%/60%/160% of the bisection bound.
func shardLoads(w int) []struct {
	name string
	rate float64
} {
	cap := 4.0 / float64(w)
	return []struct {
		name string
		rate float64
	}{
		{"low", 0.2 * cap},
		{"mid", 0.6 * cap},
		{"sat", 1.6 * cap},
	}
}

func shardNetwork(w, h int, rate float64, shards int) *network.Network {
	return network.New(network.Config{
		Topo:      topology.NewMesh(w, h),
		Algorithm: routing.XY,
		Build:     func(id int, e *router.RouteEngine) router.Router { return core.New(id, e) },
		Traffic:   traffic.Config{Pattern: traffic.Uniform, Rate: rate, FlitsPerPacket: 4},
		// Generation must never stop mid-benchmark: the kernel is measured
		// at steady state, not while draining.
		MeasurePackets: 1 << 40,
		Seed:           1,
		Shards:         shards,
		Workers:        shards,
	})
}

// BenchmarkShard measures one simulated cycle (Network.Step) of the RoCo
// router on the gated kernel at 1/2/4/8 shards across mesh sizes and
// loads. Benchmark names read mesh/load/sN; scripts/bench.sh distils the
// scaling curves into BENCH_shard.json.
func BenchmarkShard(b *testing.B) {
	for _, m := range meshes {
		for _, l := range shardLoads(m.width) {
			for _, shards := range shardCounts {
				name := fmt.Sprintf("%s/%s/s%d", m.name, l.name, shards)
				b.Run(name, func(b *testing.B) {
					n := shardNetwork(m.width, m.height, l.rate, shards)
					for i := 0; i < m.warm; i++ {
						n.Step()
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						n.Step()
					}
				})
			}
		}
	}
}
