package bench

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// layoutPoints are the big-mesh data-layout measurement points: the
// 64x64 mesh at low and saturation load (where the SoA hot-state sweep
// and the gated kernel's virtual wake scan diverge most) and the 256x256
// mesh at low load (the memory-diet target: per-node footprint decides
// whether the mesh fits in RAM at all). Loads scale with the bisection
// bound, as in the shard benchmarks.
var layoutPoints = []struct {
	name          string
	width, height int
	load          string
	rate          float64
	warm          int // steady-state warm-up steps before measuring
}{
	{"64x64", 64, 64, "low", 0.2 * 4.0 / 64, 400},
	{"64x64", 64, 64, "sat", 1.6 * 4.0 / 64, 400},
	{"256x256", 256, 256, "low", 0.2 * 4.0 / 256, 100},
}

func layoutNetwork(w, h int, rate float64, soa bool) *network.Network {
	return network.New(network.Config{
		Topo:      topology.NewMesh(w, h),
		Algorithm: routing.XY,
		Build:     func(id int, e *router.RouteEngine) router.Router { return core.New(id, e) },
		Traffic:   traffic.Config{Pattern: traffic.Uniform, Rate: rate, FlitsPerPacket: 4},
		// Generation must never stop mid-benchmark: the kernel is measured
		// at steady state, not while draining.
		MeasurePackets: 1 << 40,
		Seed:           1,
		SoAKernel:      soa,
	})
}

// liveHeap returns the live heap size after a full collection.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// BenchmarkLayout measures one simulated cycle (Network.Step) of the RoCo
// router on big meshes, gated kernel vs the struct-of-arrays kernel, and
// reports the steady-state live-heap footprint per node alongside ns/op.
// Benchmark names read mesh/load/kernel; scripts/bench.sh distils the
// speedups and footprint reductions into BENCH_layout.json.
func BenchmarkLayout(b *testing.B) {
	for _, p := range layoutPoints {
		for _, kernel := range []string{"gated", "soa"} {
			name := fmt.Sprintf("%s/%s/%s", p.name, p.load, kernel)
			b.Run(name, func(b *testing.B) {
				before := liveHeap()
				n := layoutNetwork(p.width, p.height, p.rate, kernel == "soa")
				for i := 0; i < p.warm; i++ {
					n.Step()
				}
				// Live heap with the warmed network retained, minus the
				// baseline before construction: the footprint of the mesh
				// plus its steady-state traffic state. Reported after the
				// timed loop — ResetTimer discards earlier metrics.
				after := liveHeap()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
				runtime.KeepAlive(n)
				if after > before {
					b.ReportMetric(float64(after-before)/float64(p.width*p.height), "bytes/node")
				}
			})
		}
	}
}
