package roco

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLatencySweepJSON(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 1500
	sweep := RunLatencySweep(opts, Uniform, XY, []float64{0.05, 0.10})
	var sb strings.Builder
	if err := WriteJSON(&sb, sweep); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Traffic   string               `json:"traffic"`
		Algorithm string               `json:"algorithm"`
		Rates     []float64            `json:"rates"`
		Latency   map[string][]float64 `json:"latency"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, sb.String())
	}
	if decoded.Traffic != "uniform" || decoded.Algorithm != "XY" {
		t.Errorf("metadata wrong: %+v", decoded)
	}
	if len(decoded.Latency["RoCo"]) != 2 || decoded.Latency["RoCo"][0] <= 0 {
		t.Errorf("latency series wrong: %v", decoded.Latency)
	}
}

func TestFaultExperimentJSON(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 1500
	opts.FaultTrials = 1
	exp := RunFaultExperiment(opts, CriticalFaults, XY)
	raw, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"faultClass"`, `"completion"`, `"RoCo"`, `"pef"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestEnergyResultJSON(t *testing.T) {
	res := EnergyResult{
		Patterns: []TrafficPattern{Uniform},
		EnergyNJ: map[RouterKind][]float64{RoCo: {0.7}, Generic: {0.9}},
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"uniform"`) || !strings.Contains(string(raw), `"RoCo"`) {
		t.Errorf("energy JSON wrong: %s", raw)
	}
}

func TestContentionSweepJSON(t *testing.T) {
	s := ContentionSweep{
		Algorithm: XY, Dimension: "row", Rates: []float64{0.1},
		Prob: map[RouterKind][]float64{RoCo: {0.05}},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"contention"`) {
		t.Errorf("contention JSON wrong: %s", raw)
	}
}
