package roco

import (
	"strings"
	"testing"
)

func TestScalingStudy(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 2000
	study := RunScalingStudy(opts, XY, 0.15, []int{4, 6})
	if len(study.Points) != 2 {
		t.Fatalf("got %d points", len(study.Points))
	}
	for _, pt := range study.Points {
		for _, k := range RouterKinds {
			if pt.Latency[k] <= 0 || pt.Energy[k] <= 0 {
				t.Fatalf("%dx%d %s: degenerate point %+v", pt.Width, pt.Height, k, pt)
			}
		}
	}
	// Bigger meshes have longer routes: latency must grow with size.
	for _, k := range RouterKinds {
		if study.Points[1].Latency[k] <= study.Points[0].Latency[k] {
			t.Errorf("%s: latency should grow from 4x4 to 6x6 (%v -> %v)",
				k, study.Points[0].Latency[k], study.Points[1].Latency[k])
		}
	}
	var sb strings.Builder
	study.Render(&sb)
	if !strings.Contains(sb.String(), "4x4") || !strings.Contains(sb.String(), "6x6") {
		t.Error("scaling render missing sizes")
	}
}

func TestPacketSizeStudy(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 2000
	study := RunPacketSizeStudy(opts, XY, 0.15, []int{2, 8})
	if len(study.Points) != 2 {
		t.Fatalf("got %d points", len(study.Points))
	}
	// Longer packets serialize more: latency grows with packet length.
	for _, k := range RouterKinds {
		if study.Points[1].Latency[k] <= study.Points[0].Latency[k] {
			t.Errorf("%s: latency should grow with packet length (%v -> %v)",
				k, study.Points[0].Latency[k], study.Points[1].Latency[k])
		}
	}
	var sb strings.Builder
	study.Render(&sb)
	if !strings.Contains(sb.String(), "flits/packet") {
		t.Error("packet-size render missing header")
	}
}

func TestRunTraced(t *testing.T) {
	cfg := quickConfig(RoCo, XY, Uniform, 0.15)
	cfg.MeasurePackets = 2000
	res, traces := RunTraced(cfg, 10)
	if res.Completion != 1 {
		t.Fatalf("completion %.3f", res.Completion)
	}
	if len(traces) < 5 || len(traces) > 30 {
		t.Fatalf("sampled %d traces, want ~10", len(traces))
	}
	for _, tr := range traces {
		if !tr.Completed {
			t.Errorf("pkt %d did not complete in a fault-free run", tr.PacketID)
		}
		if len(tr.Events) < 2 {
			t.Errorf("pkt %d journey too short: %v", tr.PacketID, tr.Events)
		}
		if tr.Events[0].Kind != "inject" || tr.Events[len(tr.Events)-1].Kind != "deliver" {
			t.Errorf("pkt %d journey malformed: %s", tr.PacketID, tr)
		}
		if tr.Events[0].Node != tr.Src || tr.Events[len(tr.Events)-1].Node != tr.Dst {
			t.Errorf("pkt %d endpoints wrong: %s", tr.PacketID, tr)
		}
		// Consecutive arrivals must be mesh neighbors (path continuity).
		for i := 1; i < len(tr.Events); i++ {
			a, b := tr.Events[i-1].Node, tr.Events[i].Node
			ax, ay := a%8, a/8
			bx, by := b%8, b/8
			if abs(ax-bx)+abs(ay-by) != 1 {
				t.Errorf("pkt %d teleported %d->%d: %s", tr.PacketID, a, b, tr)
			}
		}
		if tr.String() == "" {
			t.Error("empty trace string")
		}
	}
}

func TestRunTracedUnderFaults(t *testing.T) {
	cfg := quickConfig(Generic, XY, Uniform, 0.25)
	cfg.Faults = []Fault{{Node: 27, Component: Crossbar}}
	cfg.InactivityLimit = 1500
	cfg.MeasurePackets = 3000
	_, traces := RunTraced(cfg, 40)
	dropped := 0
	for _, tr := range traces {
		if !tr.Completed {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("some sampled packets should be dropped around the dead node")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestRunWindowed(t *testing.T) {
	cfg := quickConfig(RoCo, XY, Uniform, 0.2)
	cfg.MeasurePackets = 3000
	res, windows := RunWindowed(cfg, 200)
	if res.Completion != 1 {
		t.Fatalf("completion %.3f", res.Completion)
	}
	if len(windows) < 3 {
		t.Fatalf("only %d windows", len(windows))
	}
	var total int64
	for i, w := range windows {
		total += w.Delivered
		if w.Delivered > 0 && (w.AvgLatency <= 0 || w.AvgLatency > 500) {
			t.Errorf("window %d: implausible latency %.2f", i, w.AvgLatency)
		}
		if i > 0 && w.StartCycle <= windows[i-1].StartCycle {
			t.Errorf("windows not monotone at %d", i)
		}
	}
	if total != res.DeliveredPackets {
		t.Errorf("window deliveries %d != total %d", total, res.DeliveredPackets)
	}
}

func TestRunWindowedBurstiness(t *testing.T) {
	// Self-similar traffic must show higher window-to-window variance in
	// deliveries than uniform traffic at the same mean rate.
	disp := func(tp TrafficPattern) float64 {
		cfg := quickConfig(RoCo, XY, tp, 0.2)
		cfg.MeasurePackets = 6000
		_, ws := RunWindowed(cfg, 100)
		var s, ss, n float64
		for _, w := range ws[:len(ws)-1] { // final partial window excluded
			s += float64(w.Delivered)
			ss += float64(w.Delivered) * float64(w.Delivered)
			n++
		}
		mean := s / n
		return (ss/n - mean*mean) / mean
	}
	u, ssim := disp(Uniform), disp(SelfSimilar)
	if ssim < 1.5*u {
		t.Errorf("self-similar window dispersion %.2f should exceed uniform %.2f", ssim, u)
	}
}
