package roco

import (
	"strings"
	"testing"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := (Config{InjectionRate: 0.2}).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"tiny mesh", Config{Width: 1, Height: 8, InjectionRate: 0.1}, "too small"},
		{"pdr adaptive", Config{Router: PDR, Algorithm: Adaptive, InjectionRate: 0.1}, "XY routing only"},
		{"negative rate", Config{InjectionRate: -0.5}, "injection rate"},
		{"huge packets", Config{InjectionRate: 0.1, FlitsPerPacket: 100}, "flits per packet"},
		{"bad fault node", Config{InjectionRate: 0.1, Faults: []Fault{{Node: 999}}}, "nonexistent node"},
		{"bad hotspot", Config{InjectionRate: 0.1, Traffic: Hotspot, HotspotNode: -3}, "hotspot node"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestRunPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run should panic on an invalid config")
		}
	}()
	Run(Config{Router: PDR, Algorithm: Adaptive, InjectionRate: 0.1})
}
