package traffic

import (
	"math"
	"testing"

	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
)

func measureRate(t *testing.T, g Generator, cycles int64) (pktRate float64, windows stats.Running) {
	t.Helper()
	var count, win int64
	for c := int64(0); c < cycles; c++ {
		if _, ok := g.NextPacket(c); ok {
			count++
			win++
		}
		if (c+1)%1000 == 0 {
			windows.Add(float64(win))
			win = 0
		}
	}
	return float64(count) / float64(cycles), windows
}

func gens(t *testing.T, pattern Pattern, rate float64) []Generator {
	t.Helper()
	return New(Config{Pattern: pattern, Rate: rate, FlitsPerPacket: 4, HotspotNode: 5, HotspotFraction: 0.3},
		topology.NewMesh(8, 8), stats.NewRNG(3))
}

func TestUniformRateConverges(t *testing.T) {
	g := gens(t, Uniform, 0.32)[0]
	rate, _ := measureRate(t, g, 400000)
	if math.Abs(rate-0.08) > 0.003 { // 0.32 flits / 4 flits-per-packet
		t.Errorf("uniform packet rate = %v, want ~0.08", rate)
	}
}

func TestUniformNeverSelf(t *testing.T) {
	g := gens(t, Uniform, 1.0)[7]
	for c := int64(0); c < 10000; c++ {
		if dst, ok := g.NextPacket(c); ok && dst == 7 {
			t.Fatal("uniform generator addressed its own node")
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	g := gens(t, Uniform, 1.0)[0]
	seen := map[int]bool{}
	for c := int64(0); c < 20000; c++ {
		if dst, ok := g.NextPacket(c); ok {
			seen[dst] = true
		}
	}
	if len(seen) != 63 {
		t.Errorf("uniform covered %d destinations, want 63", len(seen))
	}
}

func TestTransposeDestinations(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	gs := gens(t, Transpose, 1.0)
	for n := 0; n < 64; n++ {
		c := topo.Coord(n)
		want, silent := topo.ID(topology.Coord{X: c.Y, Y: c.X}), c.X == c.Y
		got := false
		for cyc := int64(0); cyc < 100; cyc++ {
			if dst, ok := gs[n].NextPacket(cyc); ok {
				got = true
				if dst != want {
					t.Fatalf("node %d sent to %d, want %d", n, dst, want)
				}
			}
		}
		if silent && got {
			t.Fatalf("diagonal node %d should be silent under transpose", n)
		}
	}
}

func TestBitComplementDestinations(t *testing.T) {
	gs := gens(t, BitComplement, 1.0)
	for n := 0; n < 64; n++ {
		for cyc := int64(0); cyc < 50; cyc++ {
			if dst, ok := gs[n].NextPacket(cyc); ok && dst != 63-n {
				t.Fatalf("node %d sent to %d, want %d", n, dst, 63-n)
			}
		}
	}
}

func TestHotspotSkew(t *testing.T) {
	g := gens(t, Hotspot, 1.0)[0] // hotspot node 5, fraction 0.3
	hot, total := 0, 0
	for cyc := int64(0); cyc < 40000; cyc++ {
		if dst, ok := g.NextPacket(cyc); ok {
			total++
			if dst == 5 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	// 0.3 direct plus the uniform share that happens to pick node 5.
	if frac < 0.28 || frac > 0.35 {
		t.Errorf("hotspot fraction = %v, want ~0.31", frac)
	}
}

func TestSelfSimilarRateConverges(t *testing.T) {
	// Heavy-tailed ON/OFF needs a long horizon; allow a loose tolerance.
	var rate float64
	for n := 0; n < 8; n++ {
		g := gens(t, SelfSimilar, 0.32)[n]
		r, _ := measureRate(t, g, 300000)
		rate += r
	}
	rate /= 8
	if math.Abs(rate-0.08) > 0.02 {
		t.Errorf("self-similar packet rate = %v, want ~0.08", rate)
	}
}

func TestSelfSimilarIsBurstier(t *testing.T) {
	// The defining property: the ON/OFF process has a much higher index of
	// dispersion than the Bernoulli process at the same mean rate.
	_, uniWin := measureRate(t, gens(t, Uniform, 0.32)[0], 300000)
	_, ssWin := measureRate(t, gens(t, SelfSimilar, 0.32)[0], 300000)
	uniD := uniWin.Variance() / uniWin.Mean()
	ssD := ssWin.Variance() / ssWin.Mean()
	if ssD < 2*uniD {
		t.Errorf("self-similar dispersion %v should far exceed uniform %v", ssD, uniD)
	}
}

func TestMPEG2FixedDestinationAndBursts(t *testing.T) {
	g := gens(t, MPEG2, 0.32)[0]
	dsts := map[int]bool{}
	var count int64
	for cyc := int64(0); cyc < 300000; cyc++ {
		if dst, ok := g.NextPacket(cyc); ok {
			dsts[dst] = true
			count++
		}
	}
	if len(dsts) != 1 {
		t.Errorf("mpeg2 stream should have one destination, got %d", len(dsts))
	}
	rate := float64(count) / 300000
	if math.Abs(rate-0.08) > 0.01 {
		t.Errorf("mpeg2 packet rate = %v, want ~0.08", rate)
	}
	_, win := measureRate(t, gens(t, MPEG2, 0.32)[1], 300000)
	if d := win.Variance() / win.Mean(); d < 1.5 {
		t.Errorf("mpeg2 should be bursty (dispersion %v)", d)
	}
}

func TestZeroRateSilence(t *testing.T) {
	for _, p := range []Pattern{Uniform, Transpose, SelfSimilar, MPEG2, BitComplement, Hotspot} {
		g := gens(t, p, 0)[0]
		for cyc := int64(0); cyc < 5000; cyc++ {
			if _, ok := g.NextPacket(cyc); ok {
				t.Fatalf("%s generated traffic at rate 0", p)
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	names := map[Pattern]string{
		Uniform: "uniform", Transpose: "transpose", SelfSimilar: "self-similar",
		MPEG2: "mpeg2", BitComplement: "bit-complement", Hotspot: "hotspot",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := gens(t, SelfSimilar, 0.3)[4]
	b := gens(t, SelfSimilar, 0.3)[4]
	for cyc := int64(0); cyc < 50000; cyc++ {
		da, oka := a.NextPacket(cyc)
		db, okb := b.NextPacket(cyc)
		if oka != okb || da != db {
			t.Fatal("same-seed generators diverged")
		}
	}
}
