package traffic

import "github.com/rocosim/roco/internal/snapshot"

// Generator kind tags used in snapshots. Values are part of the snapshot
// format — append, never renumber.
const (
	genSilent uint8 = iota
	genBernoulli
	genSelfSimilar
	genMPEG2
)

// SaveState serializes the mutable state of every generator. The generator
// structure itself (pattern, rates, destinations) is configuration and is
// rebuilt from Config on resume; only RNG streams and process state are
// runtime state. Each generator is tagged with its kind so a resume into a
// different workload fails loudly instead of misinterpreting bytes.
func SaveState(e *snapshot.Encoder, gens []Generator) {
	e.Int(len(gens))
	for _, g := range gens {
		switch g := g.(type) {
		case silentGen:
			e.U8(genSilent)
		case *bernoulliGen:
			e.U8(genBernoulli)
			g.rng.SaveState(e)
		case *selfSimilar:
			e.U8(genSelfSimilar)
			g.rng.SaveState(e)
			e.I64(g.remaining)
			e.Bool(g.on)
		case *mpeg2:
			e.U8(genMPEG2)
			g.rng.SaveState(e)
			e.Int(g.gopIdx)
			e.I64(g.framePhase)
			e.F64(g.backlog)
		default:
			panic("traffic: unknown generator kind in snapshot")
		}
	}
}

// LoadState restores generator state written by SaveState into generators
// freshly built with the same Config. A count or kind mismatch poisons the
// decoder.
func LoadState(d *snapshot.Decoder, gens []Generator) {
	n := d.SliceLen(1)
	if d.Err() == nil && n != len(gens) {
		d.Corruptf("snapshot has %d traffic generators, config built %d", n, len(gens))
		return
	}
	for i, g := range gens {
		kind := d.U8()
		if d.Err() != nil {
			return
		}
		switch g := g.(type) {
		case silentGen:
			if kind != genSilent {
				d.Corruptf("generator %d: snapshot kind %d, want silent", i, kind)
				return
			}
		case *bernoulliGen:
			if kind != genBernoulli {
				d.Corruptf("generator %d: snapshot kind %d, want bernoulli", i, kind)
				return
			}
			g.rng.LoadState(d)
		case *selfSimilar:
			if kind != genSelfSimilar {
				d.Corruptf("generator %d: snapshot kind %d, want self-similar", i, kind)
				return
			}
			g.rng.LoadState(d)
			g.remaining = d.I64()
			g.on = d.Bool()
		case *mpeg2:
			if kind != genMPEG2 {
				d.Corruptf("generator %d: snapshot kind %d, want mpeg2", i, kind)
				return
			}
			g.rng.LoadState(d)
			g.gopIdx = d.Int()
			g.framePhase = d.I64()
			g.backlog = d.F64()
			if d.Err() == nil && (g.gopIdx < 0 || g.gopIdx >= len(g.gop)) {
				d.Corruptf("generator %d: gop index %d out of range", i, g.gopIdx)
				return
			}
		default:
			panic("traffic: unknown generator kind in snapshot")
		}
	}
}
