// Package traffic implements the workload generators of the paper's
// evaluation: uniform random, transpose, self-similar web traffic (bounded
// Pareto ON/OFF sources, after Barford & Crovella), and MPEG-2-style video
// traffic (GoP-structured frame bursts), plus bit-complement and hotspot as
// extensions. A generator decides, per node per cycle, whether to create a
// packet and for which destination; rates are expressed in flits per node
// per cycle, the unit of the paper's x-axes.
package traffic

import (
	"fmt"
	"math"

	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
)

// Pattern names a traffic workload.
type Pattern uint8

const (
	// Uniform sends each packet to a destination drawn uniformly among all
	// other nodes.
	Uniform Pattern = iota
	// Transpose sends node (x,y) to node (y,x); nodes on the diagonal
	// generate no traffic.
	Transpose
	// SelfSimilar models aggregated web traffic with bounded-Pareto ON/OFF
	// sources and uniform destinations.
	SelfSimilar
	// MPEG2 models video streams: GoP-structured frame bursts (IBBPBB...)
	// toward a fixed per-source destination, as in the multimedia traces
	// the paper cites. (Extension: the paper omitted these results for
	// space.)
	MPEG2
	// BitComplement sends node b to node ^b (extension).
	BitComplement
	// Hotspot sends a fraction of uniform traffic to a single hot node
	// (extension).
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case SelfSimilar:
		return "self-similar"
	case MPEG2:
		return "mpeg2"
	case BitComplement:
		return "bit-complement"
	case Hotspot:
		return "hotspot"
	default:
		return "?"
	}
}

// Generator produces the injection process of one node. Implementations
// are deterministic functions of their seeded RNG.
type Generator interface {
	// NextPacket reports whether the node creates a packet this cycle, and
	// its destination. Generators never address the source itself.
	NextPacket(cycle int64) (dst int, ok bool)
}

// Config describes a workload.
type Config struct {
	Pattern Pattern
	// Rate is the offered load in flits per node per cycle.
	Rate float64
	// FlitsPerPacket converts Rate into a per-cycle packet probability.
	FlitsPerPacket int
	// HotspotNode and HotspotFraction configure the Hotspot pattern.
	HotspotNode     int
	HotspotFraction float64
}

// New builds the per-node generators for every node of topo. rng seeds one
// independent stream per node.
func New(cfg Config, topo topology.Topology, rng *stats.RNG) []Generator {
	if cfg.FlitsPerPacket < 1 {
		panic("traffic: FlitsPerPacket must be >= 1")
	}
	if cfg.Rate < 0 {
		panic("traffic: negative rate")
	}
	gens := make([]Generator, topo.Nodes())
	for n := range gens {
		nodeRNG := rng.Split(uint64(n))
		pktProb := cfg.Rate / float64(cfg.FlitsPerPacket)
		switch cfg.Pattern {
		case Uniform:
			gens[n] = &bernoulliGen{src: n, prob: pktProb, rng: nodeRNG, pick: uniformPicker(n, topo.Nodes())}
		case Transpose:
			c := topo.Coord(n)
			// Diagonal nodes map to themselves; on non-square grids, nodes
			// whose transpose falls outside the grid stay silent too.
			if c.X == c.Y || c.Y >= topo.Width() || c.X >= topo.Height() {
				gens[n] = silentGen{}
				break
			}
			dst := topo.ID(topology.Coord{X: c.Y, Y: c.X})
			gens[n] = &bernoulliGen{src: n, prob: pktProb, rng: nodeRNG, pick: func(*stats.RNG) int { return dst }}
		case BitComplement:
			dst := topo.Nodes() - 1 - n
			if dst == n {
				gens[n] = silentGen{}
				break
			}
			gens[n] = &bernoulliGen{src: n, prob: pktProb, rng: nodeRNG, pick: func(*stats.RNG) int { return dst }}
		case Hotspot:
			hot := cfg.HotspotNode
			frac := cfg.HotspotFraction
			uni := uniformPicker(n, topo.Nodes())
			pick := func(r *stats.RNG) int {
				if hot != n && r.Bernoulli(frac) {
					return hot
				}
				return uni(r)
			}
			gens[n] = &bernoulliGen{src: n, prob: pktProb, rng: nodeRNG, pick: pick}
		case SelfSimilar:
			gens[n] = newSelfSimilar(n, pktProb, topo.Nodes(), nodeRNG)
		case MPEG2:
			gens[n] = newMPEG2(n, pktProb, topo.Nodes(), nodeRNG)
		default:
			panic(fmt.Sprintf("traffic: unknown pattern %d", cfg.Pattern))
		}
	}
	return gens
}

// silentGen never generates traffic (diagonal nodes under transpose).
type silentGen struct{}

func (silentGen) NextPacket(int64) (int, bool) { return 0, false }

// uniformPicker draws uniformly among all nodes except src.
func uniformPicker(src, nodes int) func(*stats.RNG) int {
	return func(r *stats.RNG) int {
		d := r.Intn(nodes - 1)
		if d >= src {
			d++
		}
		return d
	}
}

// bernoulliGen creates a packet each cycle with fixed probability.
type bernoulliGen struct {
	src  int
	prob float64
	rng  *stats.RNG
	pick func(*stats.RNG) int
}

func (g *bernoulliGen) NextPacket(int64) (int, bool) {
	if !g.rng.Bernoulli(g.prob) {
		return 0, false
	}
	return g.pick(g.rng), true
}

// selfSimilar is a bounded-Pareto ON/OFF source. During ON periods the node
// creates packets with an elevated probability; OFF periods are silent.
// Period lengths are bounded-Pareto with shape 1.25 (the classic heavy-tail
// exponent for web workloads), and the ON probability is scaled so the
// long-run average matches the requested rate.
type selfSimilar struct {
	src       int
	rng       *stats.RNG
	pick      func(*stats.RNG) int
	onProb    float64
	remaining int64 // cycles left in the current period
	on        bool
	alpha     float64
	onMean    float64
	offMean   float64
}

const (
	ssAlpha  = 1.25
	ssMinOn  = 4.0
	ssMaxOn  = 3000.0
	ssMinOff = 8.0
	ssMaxOff = 6000.0
)

// paretoMean returns the mean of a bounded Pareto(alpha, lo, hi).
func paretoMean(alpha, lo, hi float64) float64 {
	la := math.Pow(lo, alpha)
	ratio := 1 - math.Pow(lo/hi, alpha)
	return la / ratio * alpha / (alpha - 1) * (1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
}

func newSelfSimilar(src int, pktProb float64, nodes int, rng *stats.RNG) *selfSimilar {
	onMean := paretoMean(ssAlpha, ssMinOn, ssMaxOn)
	offMean := paretoMean(ssAlpha, ssMinOff, ssMaxOff)
	duty := onMean / (onMean + offMean)
	onProb := pktProb / duty
	if onProb > 1 {
		onProb = 1 // source saturates; offered load caps out
	}
	g := &selfSimilar{
		src: src, rng: rng, pick: uniformPicker(src, nodes),
		onProb: onProb, alpha: ssAlpha, onMean: onMean, offMean: offMean,
	}
	// Start each source at a random phase so the fleet is not synchronized.
	g.on = rng.Bernoulli(duty)
	g.drawPeriod()
	return g
}

func (g *selfSimilar) drawPeriod() {
	if g.on {
		g.remaining = int64(g.rng.Pareto(g.alpha, ssMinOn, ssMaxOn))
	} else {
		g.remaining = int64(g.rng.Pareto(g.alpha, ssMinOff, ssMaxOff))
	}
	if g.remaining < 1 {
		g.remaining = 1
	}
}

func (g *selfSimilar) NextPacket(int64) (int, bool) {
	if g.remaining == 0 {
		g.on = !g.on
		g.drawPeriod()
	}
	g.remaining--
	if !g.on || !g.rng.Bernoulli(g.onProb) {
		return 0, false
	}
	return g.pick(g.rng), true
}

// mpeg2 models one video stream per node: frames arrive at a fixed period
// and are transferred as a burst of packets whose size depends on the frame
// type in the GoP sequence I B B P B B P B B P B B. The per-frame packet
// budgets are scaled so the long-run average matches the requested rate,
// and each stream talks to one fixed random destination (a media client).
type mpeg2 struct {
	src        int
	rng        *stats.RNG
	dst        int
	period     int64 // cycles between frames
	gop        []float64
	gopIdx     int
	framePhase int64
	backlog    float64 // packets still to send for the current frame
	perFrame   float64 // average packets per frame
}

// gopWeights are relative frame sizes for I, P and B frames in a standard
// 12-frame GoP (I=8, P=3, B=1, a typical MPEG-2 size ratio).
var gopWeights = []float64{8, 1, 1, 3, 1, 1, 3, 1, 1, 3, 1, 1}

const mpegFramePeriod = 512 // cycles per frame slot

func newMPEG2(src int, pktProb float64, nodes int, rng *stats.RNG) *mpeg2 {
	var sum float64
	for _, w := range gopWeights {
		sum += w
	}
	mean := sum / float64(len(gopWeights))
	g := &mpeg2{
		src: src, rng: rng, dst: uniformPicker(src, nodes)(rng),
		period:   mpegFramePeriod,
		perFrame: pktProb * mpegFramePeriod,
	}
	g.gop = make([]float64, len(gopWeights))
	for i, w := range gopWeights {
		g.gop[i] = w / mean
	}
	// Random initial phase de-synchronizes streams.
	g.framePhase = int64(rng.Intn(mpegFramePeriod))
	g.gopIdx = rng.Intn(len(g.gop))
	return g
}

func (g *mpeg2) NextPacket(int64) (int, bool) {
	if g.framePhase == 0 {
		g.backlog += g.perFrame * g.gop[g.gopIdx]
		g.gopIdx = (g.gopIdx + 1) % len(g.gop)
		g.framePhase = g.period
	}
	g.framePhase--
	if g.backlog >= 1 {
		g.backlog--
		return g.dst, true
	}
	return 0, false
}
