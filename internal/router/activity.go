package router

// Activity counts the per-component events of one router over a run. The
// energy model multiplies these activity factors by per-event energies, the
// same back-annotation scheme the paper uses with its synthesis-derived
// power numbers.
type Activity struct {
	// BufferWrites and BufferReads count flits entering and leaving VC
	// buffers.
	BufferWrites int64
	BufferReads  int64
	// CrossbarTraversals counts flits crossing a switch fabric.
	CrossbarTraversals int64
	// LinkFlits counts flits driven onto inter-router links;
	// LinkFlitsByDir splits the count by output direction (indexed by
	// topology.Direction N/E/S/W) for link-utilization heatmaps.
	LinkFlits      int64
	LinkFlitsByDir [4]int64
	// VAOps counts virtual-channel-allocator request evaluations
	// (per requester per cycle, including retries — the iterative
	// re-arbitration cost the paper charges the generic router for).
	VAOps int64
	// VAGrants counts successful VC allocations.
	VAGrants int64
	// SAOps counts switch-allocator request evaluations (per requester per
	// cycle, including retries).
	SAOps int64
	// SAGrants counts switch grants.
	SAGrants int64
	// RouteComputations counts look-ahead (or in-place) route evaluations.
	RouteComputations int64
	// Ejections counts flits delivered to the local PE; EarlyEjections is
	// the subset that bypassed SA and the crossbar.
	Ejections      int64
	EarlyEjections int64
	// DroppedFlits counts flits discarded because a permanent fault
	// blocked their only route (static fault handling).
	DroppedFlits int64
	// CreditStalls counts cycles in which a switch-ready channel could
	// not even request the switch because the downstream buffer had no
	// credit. Counted once per channel per cycle during the switch
	// allocator's desire pass; telemetry plots it as the backpressure
	// signal. The energy model ignores it (a stalled channel burns no
	// dynamic switch energy).
	CreditStalls int64
	// Cycles counts simulated cycles (for leakage energy).
	Cycles int64
}

// Add accumulates another router's activity into a.
func (a *Activity) Add(o *Activity) {
	a.BufferWrites += o.BufferWrites
	a.BufferReads += o.BufferReads
	a.CrossbarTraversals += o.CrossbarTraversals
	a.LinkFlits += o.LinkFlits
	for i := range a.LinkFlitsByDir {
		a.LinkFlitsByDir[i] += o.LinkFlitsByDir[i]
	}
	a.VAOps += o.VAOps
	a.VAGrants += o.VAGrants
	a.SAOps += o.SAOps
	a.SAGrants += o.SAGrants
	a.RouteComputations += o.RouteComputations
	a.Ejections += o.Ejections
	a.EarlyEjections += o.EarlyEjections
	a.DroppedFlits += o.DroppedFlits
	a.CreditStalls += o.CreditStalls
	a.Cycles += o.Cycles
}

// Contention tallies switch-allocation conflicts split by the dimension of
// the requested output port, the quantity Figure 3 of the paper plots.
// A request that is switch-ready but denied in a cycle counts as one
// failure; the contention probability is failures / requests.
type Contention struct {
	RowRequests int64 // requests for East/West outputs
	RowFailures int64
	ColRequests int64 // requests for North/South outputs
	ColFailures int64
}

// Add accumulates another router's contention tallies.
func (c *Contention) Add(o *Contention) {
	c.RowRequests += o.RowRequests
	c.RowFailures += o.RowFailures
	c.ColRequests += o.ColRequests
	c.ColFailures += o.ColFailures
}

// RowProbability returns failures/requests at row (X-dimension) outputs.
func (c *Contention) RowProbability() float64 {
	if c.RowRequests == 0 {
		return 0
	}
	return float64(c.RowFailures) / float64(c.RowRequests)
}

// ColProbability returns failures/requests at column (Y-dimension)
// outputs.
func (c *Contention) ColProbability() float64 {
	if c.ColRequests == 0 {
		return 0
	}
	return float64(c.ColFailures) / float64(c.ColRequests)
}

// Probability returns the combined contention probability across both
// dimensions.
func (c *Contention) Probability() float64 {
	req := c.RowRequests + c.ColRequests
	if req == 0 {
		return 0
	}
	return float64(c.RowFailures+c.ColFailures) / float64(req)
}
