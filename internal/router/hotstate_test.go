package router

import (
	"testing"

	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // 3 words, last one partial
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitset should be empty")
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Set(%d) not observed by Test", i)
		}
	}
	if b.Count() != 6 || !b.Any() {
		t.Fatalf("count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 5 {
		t.Fatal("Clear(64) did not remove the member")
	}

	dst := NewBitset(130)
	dst.CopyFrom(b)
	if dst.Count() != 5 || !dst.Test(129) {
		t.Fatal("CopyFrom did not reproduce the set")
	}
	dst.ClearAll()
	if dst.Any() {
		t.Fatal("ClearAll left members behind")
	}
	if b.Count() != 5 {
		t.Fatal("clearing the copy disturbed the source")
	}
}

func TestBitsetSetFirst(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := NewBitset(130)
		b.SetFirst(n)
		if b.Count() != n {
			t.Fatalf("SetFirst(%d): count = %d", n, b.Count())
		}
		if n > 0 && !b.Test(n-1) {
			t.Fatalf("SetFirst(%d): member %d missing", n, n-1)
		}
		if n < 130 && b.Test(n) {
			t.Fatalf("SetFirst(%d): member %d present", n, n)
		}
	}
}

func TestBitsetForEachIn(t *testing.T) {
	b := NewBitset(256)
	members := []int{3, 63, 64, 65, 127, 128, 200, 255}
	for _, i := range members {
		b.Set(i)
	}
	cases := []struct {
		lo, hi int
		want   []int
	}{
		{0, 256, members},
		{63, 65, []int{63, 64}},       // straddles a word boundary
		{64, 128, []int{64, 65, 127}}, // word-aligned lo, boundary hi
		{65, 66, []int{65}},           // single-member window
		{4, 63, nil},                  // gap inside the first word
		{128, 128, nil},               // empty range
		{200, 100, nil},               // inverted range
		{129, 256, []int{200, 255}},   // tail words, hi at capacity
	}
	for _, c := range cases {
		var got []int
		b.ForEachIn(c.lo, c.hi, func(i int) { got = append(got, i) })
		if len(got) != len(c.want) {
			t.Fatalf("ForEachIn(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ForEachIn(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}

// bindTestRouters builds a hot state with two routers of two channels each
// and returns it alongside the channels, slot-ordered.
func bindTestRouters(t *testing.T) (*HotState, []*VC) {
	t.Helper()
	hs := NewHotState(2)
	vcs := []*VC{NewVC(0, 4), NewVC(1, 4), NewVC(0, 4), NewVC(1, 4)}
	vcs[1].Class = routing.TurnXY
	vcs[3].Class = routing.InjectY
	hs.BindRouter(0, vcs[:2])
	hs.BindRouter(1, vcs[2:])
	if hs.Routers() != 2 || hs.Slots() != 4 {
		t.Fatalf("bound %d routers / %d slots, want 2 / 4", hs.Routers(), hs.Slots())
	}
	return hs, vcs
}

// TestHotStateActivityTransitions is the table-driven edge check of the
// dormancy mirror: each step mutates one bound channel through its public
// mutators and asserts the packed busy counters and occupancy observe
// exactly the transition the routers' own Dormant()/Idle() sweep would.
func TestHotStateActivityTransitions(t *testing.T) {
	hs, vcs := bindTestRouters(t)
	p1 := makePacketFlits(1, 2, topology.East)
	p2 := makePacketFlits(2, 1, topology.West)

	steps := []struct {
		name     string
		op       func()
		busy     [2]bool // expected RouterBusy per router
		buffered [2]int  // expected BufferedFlits per router
	}{
		{"initial", func() {}, [2]bool{false, false}, [2]int{0, 0}},
		// A claim reserves a slot but leaves the channel dormant: no work
		// exists until the claiming packet's first flit lands.
		{"claim alone stays dormant", func() { vcs[0].Claim(topology.West) },
			[2]bool{false, false}, [2]int{0, 0}},
		{"head push wakes router 0", func() { vcs[0].PushFrom(p1[0], topology.West) },
			[2]bool{true, false}, [2]int{1, 0}},
		{"second flit leaves it awake", func() { vcs[0].PushFrom(p1[1], topology.West) },
			[2]bool{true, false}, [2]int{2, 0}},
		{"second channel wakes router 1", func() {
			vcs[3].Claim(topology.North)
			vcs[3].PushFrom(p2[0], topology.North)
		}, [2]bool{true, true}, [2]int{2, 1}},
		{"partial pop keeps router 0 awake", func() { vcs[0].Pop() },
			[2]bool{true, true}, [2]int{1, 1}},
		{"tail pop drains router 0 dormant", func() { vcs[0].Pop() },
			[2]bool{false, true}, [2]int{0, 1}},
		{"tail pop drains router 1 dormant", func() { vcs[3].Pop() },
			[2]bool{false, false}, [2]int{0, 0}},
	}
	for _, s := range steps {
		s.op()
		for id := 0; id < 2; id++ {
			if got := hs.RouterBusy(id); got != s.busy[id] {
				t.Fatalf("%s: RouterBusy(%d) = %v, want %v", s.name, id, got, s.busy[id])
			}
			if got := hs.BufferedFlits(id); got != s.buffered[id] {
				t.Fatalf("%s: BufferedFlits(%d) = %d, want %d", s.name, id, got, s.buffered[id])
			}
			// The mirror must agree with the channels' own virtual answer.
			dormant := true
			for _, vc := range vcs[id*2 : id*2+2] {
				dormant = dormant && vc.Dormant()
			}
			if hs.RouterBusy(id) == dormant {
				t.Fatalf("%s: mirror disagrees with Dormant() sweep on router %d", s.name, id)
			}
		}
	}
	if hs.TotalBuffered() != 0 {
		t.Fatalf("total buffered = %d after full drain", hs.TotalBuffered())
	}
}

// TestHotStateAbortFrontSleeps covers the recovery-path transition: a
// front packet whose flits all drained elsewhere is aborted, and the
// channel must fall dormant through the same mirror hook as a tail pop.
func TestHotStateAbortFrontSleeps(t *testing.T) {
	hs, vcs := bindTestRouters(t)
	vc := vcs[2] // router 1, first channel
	vc.Claim(topology.South)
	head := makePacketFlits(9, 2, topology.East)[0]
	vc.PushFrom(head, topology.South)
	if !hs.RouterBusy(1) {
		t.Fatal("pushed head did not wake router 1")
	}
	// The head streams out; the tail was dropped upstream and will never
	// arrive, so recovery aborts the stranded state.
	vc.Pop()
	if !hs.RouterBusy(1) {
		t.Fatal("resident packet state must keep the router awake after its flits drain")
	}
	vc.AbortFront()
	if hs.RouterBusy(1) {
		t.Fatal("AbortFront did not put router 1 to sleep")
	}
	if !vc.Dormant() || hs.BufferedFlits(1) != 0 {
		t.Fatal("aborted channel should be dormant and empty")
	}
}

// TestHotStateResync pins the snapshot-restore contract: channel internals
// mutated behind the mirror's back (as VC.LoadState does) are reconciled
// by one Resync call.
func TestHotStateResync(t *testing.T) {
	hs, vcs := bindTestRouters(t)
	// Simulate a snapshot load: write the buffers directly, bypassing the
	// syncHot mutator hooks.
	f := makePacketFlits(5, 1, topology.East)[0]
	vcs[1].queue = append(vcs[1].queue, f)
	vcs[1].states = append(vcs[1].states, pktState{packetID: 5})
	vcs[1].claims = 1
	if hs.RouterBusy(0) {
		t.Fatal("mirror saw a bypassing write; test is vacuous")
	}
	hs.Resync()
	if !hs.RouterBusy(0) || hs.BufferedFlits(0) != 1 {
		t.Fatal("Resync did not rebuild the mirror from channel state")
	}
	var per [routing.NumClasses]int32
	if total := hs.OccupancyByClass(&per); total != 1 || per[routing.TurnXY] != 1 {
		t.Fatalf("per-class occupancy = %v (total %d), want 1 flit in txy", per, total)
	}
	// Drain through the public mutator: hooks and Resync must compose.
	vcs[1].Pop()
	if hs.RouterBusy(0) || hs.TotalBuffered() != 0 {
		t.Fatal("post-Resync mutation left the mirror stale")
	}
}

func TestHotStateBindPanics(t *testing.T) {
	t.Run("out of order", func(t *testing.T) {
		hs := NewHotState(2)
		defer func() {
			if recover() == nil {
				t.Error("binding router 1 first should panic")
			}
		}()
		hs.BindRouter(1, nil)
	})
	t.Run("beyond declared nodes", func(t *testing.T) {
		hs := NewHotState(1)
		hs.BindRouter(0, nil)
		defer func() {
			if recover() == nil {
				t.Error("binding past the declared node count should panic")
			}
		}()
		hs.BindRouter(1, nil)
	})
	t.Run("double bind", func(t *testing.T) {
		hs := NewHotState(2)
		vc := NewVC(0, 2)
		hs.BindRouter(0, []*VC{vc})
		defer func() {
			if recover() == nil {
				t.Error("binding one channel twice should panic")
			}
		}()
		hs.BindRouter(1, []*VC{vc})
	})
}

// TestVCArenaLazyBuffers pins the memory-diet contract: an arena channel
// is born with nil backing arrays, allocates the flit queue at full depth
// and the packet-state array at a small starting capacity on the first
// push, and behaves identically to an eager channel afterwards.
func TestVCArenaLazyBuffers(t *testing.T) {
	var a VCArena
	vc := a.NewVC(2, 4)
	if vc.queue != nil || vc.states != nil {
		t.Fatal("arena channel should defer buffer allocation")
	}
	if !vc.Dormant() || !vc.Claimable(topology.East) {
		t.Fatal("lazy channel must act as an idle channel")
	}
	vc.Claim(topology.East)
	fl := makePacketFlits(1, 2, topology.East)
	vc.PushFrom(fl[0], topology.East)
	if cap(vc.queue) != 4 || cap(vc.states) != lazyStateCap {
		t.Fatalf("first push must allocate queue at depth, states at lazyStateCap: queue %d/%d, states %d/%d",
			cap(vc.queue), 4, cap(vc.states), lazyStateCap)
	}
	vc.PushFrom(fl[1], topology.East)
	if vc.Pop().PacketID != 1 || vc.Pop().PacketID != 1 || !vc.Idle() {
		t.Fatal("arena channel FIFO broken")
	}
}

func TestVCArenaChunking(t *testing.T) {
	var a VCArena
	first := a.NewVC(0, 2)
	for i := 1; i < arenaChunk; i++ {
		a.NewVC(i, 2)
	}
	next := a.NewVC(arenaChunk, 2) // forces a fresh slab
	if first == next {
		t.Fatal("slab rollover returned an aliased channel")
	}
	if next.Index != arenaChunk || next.Depth != 2 || next.claimFeeder != topology.Invalid {
		t.Fatal("post-rollover channel not initialized")
	}
	defer func() {
		if recover() == nil {
			t.Error("arena NewVC with depth 0 should panic")
		}
	}()
	a.NewVC(0, 0)
}
