package generic

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

func newTestRouter(alg routing.Algorithm) *Router {
	engine := router.NewRouteEngine(topology.NewMesh(4, 4), alg, nil)
	return New(5, engine)
}

func TestAnyFaultBlocksWholeNode(t *testing.T) {
	for _, comp := range fault.AllComponents() {
		r := newTestRouter(routing.XY)
		if !r.CanServe(topology.East, topology.West) {
			t.Fatal("healthy router should serve")
		}
		r.ApplyFault(fault.Fault{Node: 5, Component: comp})
		if r.CanServe(topology.East, topology.West) || r.CanServe(topology.East, topology.Local) {
			t.Errorf("%s fault should block the entire generic router", comp)
		}
		head := flit.Packet{ID: 1, Src: 5, Dst: 6, Flits: 1}.Segment()[0]
		head.OutPort = topology.East
		if r.TryInject(head, 0) {
			t.Errorf("%s: dead router accepted injection", comp)
		}
	}
}

func TestInjectionVCClasses(t *testing.T) {
	r := newTestRouter(routing.XYYX)
	x := &flit.Flit{Mode: flit.XFirst}
	y := &flit.Flit{Mode: flit.YFirst}
	if got := r.injectionVCs(x); len(got) != 2 || got[0] != xFirstVC || got[1] != xFirstVC2 {
		t.Errorf("XFirst injection VCs = %v", got)
	}
	if got := r.injectionVCs(y); len(got) != 1 || got[0] != yFirstVC {
		t.Errorf("YFirst injection VCs = %v", got)
	}
	rXY := newTestRouter(routing.XY)
	if got := rXY.injectionVCs(x); len(got) != 3 {
		t.Errorf("XY should use all injection VCs, got %v", got)
	}
}

func TestCandidateVCClassDiscipline(t *testing.T) {
	r := newTestRouter(routing.XYYX)
	x := &flit.Flit{Mode: flit.XFirst}
	y := &flit.Flit{Mode: flit.YFirst}
	for _, c := range r.candidateVCs(x, topology.East) {
		if c == yFirstVC {
			t.Error("X-first packet offered the Y-first channel")
		}
	}
	if got := r.candidateVCs(y, topology.North); len(got) != 1 || got[0] != yFirstVC {
		t.Errorf("YFirst candidates = %v", got)
	}
}

func TestTorusDatelineClasses(t *testing.T) {
	engine := router.NewRouteEngine(topology.NewTorus(4, 4), routing.XY, nil)
	// Router at (3,1): an East hop crosses the X dateline.
	r := New(7, engine)
	fresh := &flit.Flit{}
	if got := r.candidateVCs(fresh, topology.East); len(got) != 1 || got[0] != 1 {
		t.Errorf("dateline-crossing hop candidates = %v, want [1]", got)
	}
	if got := r.candidateVCs(fresh, topology.West); len(got) != 2 {
		t.Errorf("non-crossing hop candidates = %v, want the class-0 pair", got)
	}
	crossed := &flit.Flit{CrossedX: true}
	if got := r.candidateVCs(crossed, topology.West); len(got) != 1 || got[0] != 1 {
		t.Errorf("post-dateline packet candidates = %v, want [1]", got)
	}
	// A crossed-X packet's Y hops start fresh in class 0.
	if got := r.candidateVCs(crossed, topology.North); len(got) != 2 {
		t.Errorf("Y-dimension candidates after X crossing = %v, want the class-0 pair", got)
	}
}

func TestInjectionSerializesPackets(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.SetSink(func(*flit.Flit, int64) {})
	p1 := flit.Packet{ID: 1, Src: 5, Dst: 6, Flits: 2}.Segment()
	p2 := flit.Packet{ID: 2, Src: 5, Dst: 6, Flits: 2}.Segment()
	for _, f := range append(p1, p2...) {
		f.OutPort = topology.East
	}
	if !r.TryInject(p1[0], 0) {
		t.Fatal("head rejected")
	}
	if r.TryInject(p2[0], 0) {
		t.Fatal("second head accepted before first tail")
	}
	if !r.TryInject(p1[1], 1) {
		t.Fatal("tail rejected")
	}
	if !r.TryInject(p2[0], 2) {
		t.Fatal("second head rejected after first tail")
	}
}

func TestQuiescentTracksBufferedFlits(t *testing.T) {
	r := newTestRouter(routing.XY)
	if !r.Quiescent() {
		t.Fatal("fresh router should be quiescent")
	}
	head := flit.Packet{ID: 1, Src: 5, Dst: 6, Flits: 1}.Segment()[0]
	head.OutPort = topology.East
	if !r.TryInject(head, 0) {
		t.Fatal("injection failed")
	}
	if r.Quiescent() {
		t.Fatal("router with a buffered flit is not quiescent")
	}
}

func TestCongestionCostRange(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.AttachOutput(topology.East, &router.Conn{}, []int{4, 4, 4})
	if c := r.CongestionCost(topology.East); c != 0 {
		t.Errorf("idle congestion = %v, want 0", c)
	}
	if c := r.CongestionCost(topology.West); c != 0 {
		t.Errorf("unattached output congestion = %v, want 0", c)
	}
}
