package generic

import (
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/topology"
)

// WaitEdges exposes the router's blocked-channel dependencies for the
// network's deadlock detector.
func (r *Router) WaitEdges() []router.WaitEdge {
	var out []router.WaitEdge
	topo := r.engine.Topology()
	for p := 0; p < numPorts; p++ {
		for v, vc := range r.ports[p] {
			if vc.Len() == 0 || vc.Doomed() {
				continue
			}
			fromVC := p*VCsPerPort + v
			if vc.NeedsVA() {
				head := vc.Front()
				outPort := vc.OutPort()
				if !outPort.IsCardinal() {
					continue
				}
				down, ok := topo.Neighbor(r.id, outPort)
				if !ok {
					continue
				}
				nbr := r.neighbors[outPort]
				blockedAll := true
				var edges []router.WaitEdge
				for _, cand := range r.candidateVCs(head, outPort) {
					if nbr != nil && nbr.InputVCClaimable(outPort.Opposite(), cand) {
						blockedAll = false
						break
					}
					edges = append(edges, router.WaitEdge{FromNode: r.id, FromVC: fromVC, ToNode: down, ToVC: cand})
				}
				if blockedAll {
					out = append(out, edges...)
				}
				continue
			}
			if vc.OutVC() >= 0 && !vc.EjectNext() && vc.OutPort() != topology.Local && !r.creditOK(vc, fromVC) {
				if down, ok := topo.Neighbor(r.id, vc.OutPort()); ok {
					out = append(out, router.WaitEdge{FromNode: r.id, FromVC: fromVC, ToNode: down, ToVC: vc.OutVC()})
				}
			}
		}
	}
	return out
}
