package generic

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/snapshot"
)

// SaveState serializes the router's mutable state. The per-tick scratch
// (vaFailed, saReq*, request vectors, byTarget) never carries across cycle
// boundaries and is skipped; vaRotate does persist (the VA input stage's
// rotating first-fit cursor) and is included.
func (r *Router) SaveState(e *snapshot.Encoder, c *flit.Codec) {
	for p := 0; p < numPorts; p++ {
		for _, vc := range r.ports[p] {
			vc.SaveState(e, c)
		}
	}
	for d := 0; d < numPorts; d++ {
		if r.books[d] == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		r.books[d].SaveState(e)
	}
	for p := 0; p < numPorts; p++ {
		r.inArb[p].SaveState(e)
		r.outArb[p].SaveState(e)
		for v := range r.vaArb[p] {
			r.vaArb[p][v].SaveState(e)
		}
	}
	e.Int(r.injVC)
	e.Bool(r.dead)
	for p := 0; p < numPorts; p++ {
		for v := 0; v < VCsPerPort; v++ {
			e.Int(r.vaRotate[p][v])
		}
	}
	r.act.SaveState(e)
	r.cont.SaveState(e)
	r.SaveRecoveryState(e)
}

// LoadState restores state written by SaveState into a freshly built
// router of the same configuration.
func (r *Router) LoadState(d *snapshot.Decoder, c *flit.Codec) {
	for p := 0; p < numPorts; p++ {
		for _, vc := range r.ports[p] {
			vc.LoadState(d, c)
			if d.Err() != nil {
				return
			}
		}
	}
	for dir := 0; dir < numPorts; dir++ {
		present := d.Bool()
		if d.Err() != nil {
			return
		}
		if present != (r.books[dir] != nil) {
			d.Corruptf("generic router %d: output book %d presence mismatch", r.id, dir)
			return
		}
		if present {
			r.books[dir].LoadState(d)
		}
	}
	for p := 0; p < numPorts; p++ {
		r.inArb[p].LoadState(d)
		r.outArb[p].LoadState(d)
		for v := range r.vaArb[p] {
			r.vaArb[p][v].LoadState(d)
		}
	}
	r.injVC = d.Int()
	r.dead = d.Bool()
	for p := 0; p < numPorts; p++ {
		for v := 0; v < VCsPerPort; v++ {
			r.vaRotate[p][v] = d.Int()
		}
	}
	r.act.LoadState(d)
	r.cont.LoadState(d)
	r.LoadRecoveryState(d)
	if d.Err() == nil && (r.injVC < -1 || r.injVC >= VCsPerPort) {
		d.Corruptf("generic router %d: injection vc %d out of range", r.id, r.injVC)
	}
}
