// Package generic implements the paper's first baseline: a conventional
// two-stage, five-port virtual-channel wormhole router (Figure 1a). All
// five input ports (N/E/S/W/PE) hold 3 VCs of 4-flit-deep buffers (60 flits
// per router), a monolithic 5x5 crossbar connects every input to every
// output, and allocation is separable and speculative: head flits perform
// VA and SA in parallel, wasting the switch slot when speculation fails.
//
// Flits destined for the local PE traverse the crossbar to the PE port like
// any other flit — the two extra cycles the RoCo router's early ejection
// saves.
package generic

import (
	"math/bits"

	"github.com/rocosim/roco/internal/arbiter"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

const (
	// VCsPerPort is the number of virtual channels per input port.
	VCsPerPort = 3
	// BufferDepth is the per-VC buffer depth in flits. 5 ports x 3 VCs x 4
	// flits = 60 flits per router, the paper's generic configuration.
	BufferDepth = 4

	numPorts  = 5
	numReqs   = numPorts * VCsPerPort
	xFirstVC  = 0 // XY-YX routing: VCs 0 and 2 carry X-first packets
	yFirstVC  = 1 // XY-YX routing: VC 1 carries Y-first packets
	xFirstVC2 = 2
)

// Router is the generic 5-port baseline.
type Router struct {
	router.Recovery

	id     int
	engine *router.RouteEngine
	torus  topology.Toroidal // non-nil when running a torus (flat or multi-chip)
	sink   router.Sink

	in    [numPorts]*router.Conn
	out   [numPorts]*router.Conn
	ports [numPorts][]*router.VC
	books [numPorts]*router.OutVCBook

	neighbors [numPorts]router.Router

	inArb  [numPorts]*arbiter.RoundRobin
	outArb [numPorts]*arbiter.RoundRobin
	vaArb  [numPorts][]arbiter.RoundRobin // value slab, not boxed

	injVC int // Local-port VC owned by the packet being injected, or -1

	dead bool
	// noFastPath disables Tick's dormant-router early return (reference
	// kernel mode).
	noFastPath bool
	act        router.Activity
	cont       router.Contention

	// scratch state reused across cycles. Request sets are uint64 bitmaps
	// over the flat grantee-index namespace (port*VCsPerPort + vc):
	// vaFailed marks channels whose VA failed this cycle (speculative SA
	// requests), targReq[out][c] collects the requesters of downstream
	// channel c through output out, targUsed[out] marks which c have
	// requesters, and vaNext records each requester's look-ahead route
	// (its chosen channel is the targReq key itself).
	vaRotate [numPorts][VCsPerPort]int
	vaFailed uint64
	saReqOut [numPorts]topology.Direction
	saReqVC  [numPorts]int
	targReq  [numPorts][VCsPerPort]uint64
	targUsed [numPorts]uint8
	vaNext   [numReqs]topology.Direction
}

// New returns a generic router for the given node.
func New(id int, engine *router.RouteEngine) *Router {
	r := &Router{id: id, engine: engine, injVC: -1}
	if tor, ok := engine.Topology().(topology.Toroidal); ok {
		if engine.Algorithm() != routing.XY {
			panic("generic: the torus extension supports XY routing only")
		}
		r.torus = tor
	}
	for p := 0; p < numPorts; p++ {
		r.ports[p] = make([]*router.VC, VCsPerPort)
		for v := 0; v < VCsPerPort; v++ {
			r.ports[p][v] = engine.NewVC(v, BufferDepth)
		}
		r.inArb[p] = arbiter.NewRoundRobin(VCsPerPort)
		r.outArb[p] = arbiter.NewRoundRobin(numPorts)
		r.vaArb[p] = arbiter.NewRoundRobinSlice(VCsPerPort, numReqs)
	}
	// Recovery indexes channels in port-major order, matching the flat
	// grantee IDs used in the output books.
	flat := make([]*router.VC, 0, numReqs)
	for p := 0; p < numPorts; p++ {
		flat = append(flat, r.ports[p]...)
	}
	r.InitRecovery(id, flat, r.grantTarget, r.abortCleanup)
	r.SetFeederProbe(func(d topology.Direction, pkt uint64) bool {
		return d.IsCardinal() && r.in[d] != nil && r.in[d].Flit.Carries(pkt)
	})
	return r
}

// grantTarget resolves a flat VC index to its front packet's grant target.
func (r *Router) grantTarget(i int) (router.GrantRef, bool) {
	out := r.ports[i/VCsPerPort][i%VCsPerPort].OutPort()
	if !out.IsCardinal() {
		return router.GrantRef{}, false
	}
	return router.GrantRef{Book: r.books[out], Claimant: r.neighbors[out], Side: out.Opposite()}, true
}

// abortCleanup releases the injection channel if the aborted packet was
// the one being injected.
func (r *Router) abortCleanup(i int) {
	if i/VCsPerPort == int(topology.Local) && r.injVC == i%VCsPerPort {
		r.injVC = -1
	}
}

// ID returns the node this router serves.
func (r *Router) ID() int { return r.id }

// AttachInput wires an arriving link.
func (r *Router) AttachInput(d topology.Direction, c *router.Conn) { r.in[d] = c }

// AttachOutput wires a departing link and sizes its credit book from the
// downstream per-VC depths.
func (r *Router) AttachOutput(d topology.Direction, c *router.Conn, depths []int) {
	r.out[d] = c
	r.books[d] = router.NewOutVCBook(len(depths), BufferDepth)
	for vc, depth := range depths {
		if depth != BufferDepth {
			r.books[d].SetDepth(vc, depth)
		}
	}
}

// SetNeighbor records the router reached through output d, for the fault
// and congestion handshake.
func (r *Router) SetNeighbor(d topology.Direction, n router.Router) { r.neighbors[d] = n }

// SetSink installs the PE delivery callback.
func (r *Router) SetSink(s router.Sink) { r.sink = s }

// Activity returns the per-component event counters.
func (r *Router) Activity() *router.Activity { return &r.act }

// Contention returns the switch-conflict tallies.
func (r *Router) Contention() *router.Contention { return &r.cont }

// ApplyFault blocks the entire node: the generic router's operation is
// unified across its components, so any permanent fault takes the whole
// router off-line (paper Section 4). Applied live, the node condemns its
// resident traffic: buffered wormholes drain as drops and later arrivals
// are discarded with their credits returned, so the network around the
// dead node keeps flowing.
func (r *Router) ApplyFault(fault.Fault) {
	r.NoteFault()
	r.dead = true
	for p := range r.ports {
		for _, vc := range r.ports[p] {
			vc.Condemn()
		}
	}
}

// RefreshOutput re-propagates the downstream input-VC depths into output
// d's credit book after a runtime fault changed them.
func (r *Router) RefreshOutput(d topology.Direction, depths []int) {
	b := r.books[d]
	if b == nil {
		return
	}
	for vc, depth := range depths {
		b.SetDepth(vc, depth)
	}
}

// CanServe reports whether traffic entering on from and leaving through out
// can be served. The generic router is all-or-nothing for intra-router
// faults; severed D2D ports additionally deny their own side.
func (r *Router) CanServe(from, out topology.Direction) bool {
	return !r.dead && !r.Severed(from) && !r.Severed(out)
}

// CongestionCost estimates pressure on output out as the buffer occupancy
// of the downstream input port (consumed credits).
func (r *Router) CongestionCost(out topology.Direction) float64 {
	b := r.books[out]
	if b == nil {
		return 0
	}
	capacity := b.Size() * BufferDepth
	return float64(capacity-b.FreeSlots()) / float64(capacity)
}

// NumInputVCs returns the per-port VC namespace size (flit.VC on any
// arriving link indexes the 3 VCs of that input port).
func (r *Router) NumInputVCs(from topology.Direction) int { return VCsPerPort }

// InputVCClaimable reports whether input VC vc on side from is free for a
// new packet.
func (r *Router) InputVCClaimable(from topology.Direction, vc int) bool {
	return !r.dead && !r.Severed(from) && r.ports[from][vc].Claimable(from)
}

// ClaimableMask returns the claimable VCs of input port from as a bitmap
// over the port's 3-channel namespace.
func (r *Router) ClaimableMask(from topology.Direction) uint64 {
	if r.dead || r.Severed(from) {
		return 0
	}
	return (r.Alloc().Claimable(from) >> uint(int(from)*VCsPerPort)) & (1<<VCsPerPort - 1)
}

// ClaimInputVC reserves input VC vc on side from for an inbound packet.
func (r *Router) ClaimInputVC(from topology.Direction, vc int) bool {
	if !r.InputVCClaimable(from, vc) {
		return false
	}
	r.ports[from][vc].Claim(from)
	return true
}

// ReleaseInputVC returns a claim whose packet will never arrive.
func (r *Router) ReleaseInputVC(from topology.Direction, vc int) {
	if r.Severed(from) {
		// SeverPort already purged unbacked claims on the dead interface;
		// honoring the upstream's withdrawal would double-release.
		return
	}
	r.ports[from][vc].ReleaseClaim()
}

// InputVCDepth returns the usable depth of input VC vc on side from (0
// when the node is dead).
func (r *Router) InputVCDepth(from topology.Direction, vc int) int {
	if r.dead || r.Severed(from) {
		return 0
	}
	return r.ports[from][vc].Capacity()
}

// Quiescent reports whether no flit is buffered anywhere in the router.
func (r *Router) Quiescent() bool {
	for p := range r.ports {
		for _, vc := range r.ports[p] {
			if vc.Len() > 0 {
				return false
			}
		}
	}
	return true
}

// Idle reports whether a tick with empty input pipes would be a pure
// no-op: every VC is dormant (no flits buffered, no packet state
// resident), so sweeping, draining, reaping, VA and SA all have nothing
// to do. Upstream claims on empty channels do not block idleness — no
// tick phase acts on a bare claim.
func (r *Router) Idle() bool {
	for p := range r.ports {
		for _, vc := range r.ports[p] {
			if !vc.Dormant() {
				return false
			}
		}
	}
	return true
}

// DisableTickFastPath makes Tick run every phase even when the router is
// Idle; the reference kernel sets it so the ungated baseline executes the
// full tick-everything cost.
func (r *Router) DisableTickFastPath() { r.noFastPath = true }

// SkipCycles replays n idle ticks. A live idle tick only advances the
// activity cycle counter (round-robin arbiters do not move without
// requests); a dead router's tick never counts cycles at all.
func (r *Router) SkipCycles(n int64) {
	if !r.dead {
		r.act.Cycles += n
	}
}

// TryInject offers the next flit of the PE's current packet.
func (r *Router) TryInject(f *flit.Flit, cycle int64) bool {
	if r.dead {
		return false
	}
	local := r.ports[topology.Local]
	if f.Type.IsHead() {
		if r.injVC >= 0 {
			return false // previous packet's tail not yet accepted
		}
		for _, v := range r.injectionVCs(f) {
			vc := local[v]
			if vc.Claimable(topology.Local) && vc.HasRoom() {
				f.ReadyAt = cycle + 1
				vc.Claim(topology.Local)
				vc.PushFrom(f, topology.Local)
				r.act.BufferWrites++
				if !f.Type.IsTail() {
					r.injVC = v
				}
				return true
			}
		}
		return false
	}
	if r.injVC < 0 {
		return false
	}
	vc := local[r.injVC]
	if !vc.HasRoom() {
		return false
	}
	f.ReadyAt = cycle + 1
	vc.PushFrom(f, topology.Local)
	r.act.BufferWrites++
	if f.Type.IsTail() {
		r.injVC = -1
	}
	return true
}

// injectionVCs returns the Local-port VC indexes a new packet may start in,
// respecting the deadlock class discipline of the routing algorithm.
func (r *Router) injectionVCs(f *flit.Flit) []int {
	if r.engine.Algorithm() == routing.XYYX {
		if f.Mode == flit.YFirst {
			return []int{yFirstVC}
		}
		return []int{xFirstVC, xFirstVC2}
	}
	// XY is acyclic on any channel; adaptive routing is deadlock-free via
	// the odd-even turn model, so all channels are freely usable.
	return []int{0, 1, 2}
}

// Shared candidate sets for candidateVCs: the callers only iterate, so
// handing out the same read-only slices keeps VC allocation off the heap.
var (
	vcsDateline    = []int{1}
	vcsPreDateline = []int{0, 2}
	vcsYFirst      = []int{yFirstVC}
	vcsXFirst      = []int{xFirstVC, xFirstVC2}
	vcsAny         = []int{0, 1, 2}
)

// candidateVCs returns the downstream VC indexes a head flit may be
// allocated for a hop leaving through out, respecting the class
// discipline: mode classes under XY-YX, dateline classes on a torus.
// The returned slice is shared and must not be mutated.
func (r *Router) candidateVCs(f *flit.Flit, out topology.Direction) []int {
	if r.torus != nil {
		// Dateline discipline: VCs 0 and 2 carry packets that have not
		// crossed their current dimension's dateline; VC 1 carries packets
		// that have (including this very hop). The class switch breaks the
		// ring's channel-dependency cycle.
		crossed := f.CrossedY
		if out.IsX() {
			crossed = f.CrossedX
		}
		crossed = crossed || routing.TorusHopWraps(r.torus.Width(), r.torus.Height(), r.torus.Coord(r.id), out)
		if crossed {
			return vcsDateline
		}
		return vcsPreDateline
	}
	if r.engine.Algorithm() == routing.XYYX {
		if f.Mode == flit.YFirst {
			return vcsYFirst
		}
		return vcsXFirst
	}
	return vcsAny
}

// Tick advances the router one cycle.
func (r *Router) Tick(cycle int64) {
	if r.dead {
		r.tickDead(cycle)
		return
	}
	r.act.Cycles++

	// 1. Credits from downstream.
	for d := 0; d < numPorts; d++ {
		if r.out[d] == nil {
			continue
		}
		for _, vc := range r.out[d].Credit.Read() {
			r.books[d].ReturnCredit(vc)
		}
	}

	// 2. Arriving flits into their upstream-allocated VCs.
	for d := 0; d < numPorts; d++ {
		if r.in[d] == nil {
			continue
		}
		f := r.in[d].Flit.Read()
		if f == nil {
			continue
		}
		if r.Severed(topology.Direction(d)) {
			// The boundary link was cut with this flit in flight; it never
			// reaches the buffers and its wormhole breaks (no credit either
			// — the interface is dead in both directions).
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			continue
		}
		f.Hops++
		f.ReadyAt = cycle + 1 + f.Penalty
		if f.Penalty > 0 {
			// Double routing: this node performs the current-node route
			// computation the faulty upstream RC unit skipped.
			r.act.RouteComputations++
			f.Penalty = 0
		}
		if f.Rec != nil {
			f.Rec.Visit(r.id, cycle, trace.Arrived)
		}
		r.ports[d][f.VC].PushFrom(f, topology.Direction(d))
		r.act.BufferWrites++
	}

	// Fast path: with every channel dormant the sweep, drain, reap and
	// allocator phases below are all no-ops (the same argument that makes
	// SkipCycles sound), so a router woken only to absorb returning
	// credits skips the channel scans.
	if !r.noFastPath && r.Idle() {
		return
	}

	if r.noFastPath || !r.RecoveryQuiet() {
		r.SweepBroken(cycle, false)
		r.drainDoomed(cycle)
		r.ReapOrphans(cycle)
	}

	// 3. VA: separable, one iteration per cycle, speculative with SA.
	r.allocateVCs(cycle)

	// 4+5. SA and switch traversal.
	r.allocateSwitch(cycle)
}

// tickDead runs the blocked node's cycle: arrivals are discarded with
// their credits returned (flow control upstream must not wedge on a node
// that died with traffic in flight), condemned resident wormholes drain
// as drops, and orphaned states retire. The node does no allocation and
// burns no activity.
func (r *Router) tickDead(cycle int64) {
	for d := 0; d < numPorts; d++ {
		if r.in[d] != nil {
			if f := r.in[d].Flit.Read(); f != nil {
				r.act.DroppedFlits++
				r.DropFlit(f, cycle, trace.DropDeadNode)
				if f.VC >= 0 {
					r.in[d].Credit.Write(f.VC)
				}
			}
		}
		if r.out[d] != nil {
			r.out[d].Credit.Read()
		}
	}
	r.drainDoomed(cycle)
	r.ReapOrphans(cycle)
}

// drainDoomed discards flits of packets whose route is permanently
// fault-blocked, returning their credits upstream.
func (r *Router) drainDoomed(cycle int64) {
	for p := 0; p < numPorts; p++ {
		for v, vc := range r.ports[p] {
			for {
				f := vc.DrainDoomed()
				if f == nil {
					break
				}
				r.NoteStragglerDrain(vc)
				r.act.DroppedFlits++
				r.DropFlit(f, cycle, trace.DropInFlight)
				if topology.Direction(p) != topology.Local && r.in[p] != nil {
					r.in[p].Credit.Write(v)
				}
				if f.Type.IsTail() {
					break
				}
			}
		}
	}
}

// allocateVCs runs the input-then-output separable VC allocation pass.
// Requesters come straight off the router's needVA bitmap; the only
// per-channel predicate left to check live is the front flit's ReadyAt.
func (r *Router) allocateVCs(cycle int64) {
	r.vaFailed = 0
	need := r.Alloc().NeedVA()
	if need == 0 {
		return
	}
	// Each output's downstream claimable set is fetched once per cycle:
	// nothing claims during request building, so the cached mask matches
	// what per-candidate InputVCClaimable probes would have returned. The
	// grant phase still claims through ClaimInputVC, which re-checks.
	var nbrClaim [numPorts]uint64
	var nbrClaimOK [numPorts]bool

	for m := need; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		p, v := id/VCsPerPort, id%VCsPerPort
		vc := r.ports[p][v]
		if !vc.FrontReady(cycle) {
			continue
		}
		if vc.OutPort() == topology.Local {
			// Ejection at this router: the PE interface always has
			// room, so allocation succeeds immediately.
			vc.GrantEject()
			continue
		}
		r.act.VAOps++
		if vc.NextOut() == topology.Invalid {
			r.act.RouteComputations++
		}
		out := vc.OutPort()
		book := r.books[out]
		nbr := r.neighbors[out]
		if book == nil {
			continue // routed off the mesh edge: simulator bug upstream
		}
		downstream, ok := r.engine.Topology().Neighbor(r.id, out)
		if !ok {
			continue
		}
		head := vc.Front()
		nextOut := r.engine.RouteAt(downstream, out.Opposite(), head)
		vc.SetNextOut(nextOut)
		if nbr != nil && !nbr.CanServe(out.Opposite(), nextOut) {
			// Static fault handling: the packet's only route is dead;
			// discard it instead of letting it clog the network.
			vc.Doom()
			continue
		}
		if !nbrClaimOK[out] {
			nbrClaimOK[out] = true
			if nbr != nil {
				nbrClaim[out] = nbr.ClaimableMask(out.Opposite())
			}
		}
		usable := book.AliveMask() & nbrClaim[out]
		// Input stage: nominate one usable channel with a rotating
		// start. The generic VA's wide (5v:1) arbiters make smarter
		// selection impractical at speed (the paper charges the
		// design with iterative re-arbitration); rotating first-fit
		// avoids pathological pile-up while keeping the collision
		// behavior of a plain separable allocator.
		cands := r.candidateVCs(head, out)
		start := r.vaRotate[p][v] % len(cands)
		r.vaRotate[p][v]++
		best := -1
		for i := range cands {
			c := cands[(start+i)%len(cands)]
			if usable&(1<<uint(c)) != 0 {
				best = c
				break
			}
		}
		if best >= 0 {
			r.targReq[out][best] |= 1 << uint(id)
			r.targUsed[out] |= 1 << uint(best)
			r.vaNext[id] = nextOut
		} else {
			r.vaFailed |= 1 << uint(id)
		}
	}

	for out := 0; out < numPorts; out++ {
		used := r.targUsed[out]
		if used == 0 {
			continue
		}
		r.targUsed[out] = 0
		for uc := used; uc != 0; uc &= uc - 1 {
			c := bits.TrailingZeros8(uc)
			reqs := r.targReq[out][c]
			r.targReq[out][c] = 0
			w := r.vaArb[out][c].GrantMask(reqs)
			r.vaFailed |= reqs &^ (1 << uint(w))
			nbr := r.neighbors[out]
			if nbr == nil || !nbr.ClaimInputVC(topology.Direction(out).Opposite(), c) {
				// Another upstream router claimed the channel earlier
				// this cycle; retry next cycle.
				r.vaFailed |= 1 << uint(w)
				continue
			}
			r.books[out].EnqueueGrant(c, w)
			r.ports[w/VCsPerPort][w%VCsPerPort].GrantRoute(c, r.vaNext[w])
			r.act.VAGrants++
		}
	}
}

// allocateSwitch runs the separable, speculative switch allocation and
// forwards the winners. The candidate set comes off the saReady bitmap;
// readyOK (switch-ready with credits) is computed once and reused by the
// contention tally and the input stage — the loops it replaces evaluated
// SwitchReady/creditOK twice per channel with identical results.
func (r *Router) allocateSwitch(cycle int64) {
	saReady := r.Alloc().SAReady()
	if saReady == 0 && r.vaFailed == 0 {
		return
	}

	// Figure 3's contention probability: per cycle, an input port
	// "requests" output o when it holds a switch-ready flit for o; the
	// request is contended when another input port wants the same output
	// in the same cycle.
	var readyOK uint64
	var desire [numPorts][numPorts]bool
	for m := saReady; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		vc := r.ports[id/VCsPerPort][id%VCsPerPort]
		if !vc.FrontReady(cycle) {
			continue
		}
		if r.creditOK(vc, id) {
			readyOK |= 1 << uint(id)
			desire[id/VCsPerPort][vc.OutPort()] = true
		} else {
			r.act.CreditStalls++
		}
	}
	for o := 0; o < numPorts; o++ {
		n := 0
		for p := 0; p < numPorts; p++ {
			if desire[p][o] {
				n++
			}
		}
		if n > 0 {
			r.countContention(topology.Direction(o), n, n > 1)
		}
	}

	// Input stage: each port nominates one switch-ready VC. Heads whose VA
	// failed this cycle issued speculative SA requests in parallel; they
	// are charged as arbitration work but hold lower priority than any
	// real request and never displace one (Peh-Dally speculation).
	for p := 0; p < numPorts; p++ {
		r.saReqOut[p] = topology.Invalid
		r.saReqVC[p] = -1
		ready := (readyOK >> uint(p*VCsPerPort)) & (1<<VCsPerPort - 1)
		spec := (r.vaFailed >> uint(p*VCsPerPort)) & (1<<VCsPerPort - 1) &^ ready
		r.act.SAOps += int64(bits.OnesCount64(ready) + bits.OnesCount64(spec))
		if ready == 0 {
			continue
		}
		w := r.inArb[p].GrantMask(ready)
		r.saReqOut[p] = r.ports[p][w].OutPort()
		r.saReqVC[p] = w
	}

	// Output stage: each output picks among the nominating ports.
	for out := 0; out < numPorts; out++ {
		var portReq uint64
		for p := 0; p < numPorts; p++ {
			if r.saReqOut[p] == topology.Direction(out) {
				portReq |= 1 << uint(p)
			}
		}
		w := r.outArb[out].GrantMask(portReq)
		if w < 0 {
			continue
		}
		r.act.SAGrants++
		r.traverse(topology.Direction(out), w, r.saReqVC[w], cycle)
	}
}

// creditOK reports whether the front flit of vc may stream downstream:
// buffer space exists and the channel's oldest grant belongs to this VC
// (ejections and downstream-early-ejections need neither).
func (r *Router) creditOK(vc *router.VC, grantee int) bool {
	if vc.EjectNext() {
		return true
	}
	book := r.books[vc.OutPort()]
	return book.Credits(vc.OutVC()) > 0 && book.MayStream(vc.OutVC(), grantee)
}

// countContention tallies n requests for output out, all of them contended
// when contended is true (Figure 3).
func (r *Router) countContention(out topology.Direction, n int, contended bool) {
	c := 0
	if contended {
		c = n
	}
	switch {
	case out.IsX():
		r.cont.RowRequests += int64(n)
		r.cont.RowFailures += int64(c)
	case out.IsY():
		r.cont.ColRequests += int64(n)
		r.cont.ColFailures += int64(c)
	}
}

// traverse moves the winning flit through the crossbar onto its output.
func (r *Router) traverse(out topology.Direction, port, vcIdx int, cycle int64) {
	vc := r.ports[port][vcIdx]
	// Capture the packet's routing state before Pop: popping a tail flit
	// retires the packet and shifts the channel to the next one.
	outVC, nextOut, ejectNext := vc.OutVC(), vc.NextOut(), vc.EjectNext()
	vc.MarkStreamed()
	f := vc.Pop()
	r.act.BufferReads++
	r.act.CrossbarTraversals++
	if topology.Direction(port) != topology.Local && r.in[port] != nil {
		r.in[port].Credit.Write(vcIdx)
	}
	if out == topology.Local {
		// One extra cycle models the crossbar-to-PE interface latch; early
		// ejection in the RoCo router is what removes this (and the SA
		// cycle) at the destination.
		r.act.Ejections++
		r.sink(f, cycle+1)
		return
	}
	f.OutPort = nextOut
	if r.torus != nil && routing.TorusHopWraps(r.torus.Width(), r.torus.Height(), r.torus.Coord(r.id), out) {
		if out.IsX() {
			f.CrossedX = true
		} else {
			f.CrossedY = true
		}
	}
	if ejectNext {
		f.VC = -1
	} else {
		f.VC = outVC
		r.books[out].Send(outVC, f.Type.IsTail())
	}
	f.ReadyAt = 0
	r.act.LinkFlits++
	r.act.LinkFlitsByDir[out]++
	r.out[out].Flit.Write(f)
}
