package router

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// BrokenSet is the network-wide registry of packets that can no longer be
// delivered whole: at least one of their flits was dropped somewhere (a
// live fault condemned a buffer, a dead node drained an arrival, a doomed
// wormhole fragment was discarded). Routers sweep the set every Tick and
// doom their own resident fragments of broken packets, so a break anywhere
// propagates along the whole wormhole within a cycle and the stranded
// flits drain instead of wedging the network.
type BrokenSet struct {
	ids map[uint64]int64 // packet ID -> cycle first broken
	// faulty latches permanently once any fault is installed anywhere in
	// the network; together with an empty registry it proves the recovery
	// scans (SweepBroken, doomed drains, ReapOrphans) have nothing to do.
	faulty bool
}

// NewBrokenSet returns an empty registry.
func NewBrokenSet() *BrokenSet {
	return &BrokenSet{ids: make(map[uint64]int64)}
}

// Add registers a packet as broken (idempotent; the first cycle wins).
func (b *BrokenSet) Add(id uint64, cycle int64) {
	if _, ok := b.ids[id]; !ok {
		b.ids[id] = cycle
	}
}

// Contains reports whether the packet has lost a flit.
func (b *BrokenSet) Contains(id uint64) bool {
	_, ok := b.ids[id]
	return ok
}

// Len returns the number of broken packets.
func (b *BrokenSet) Len() int { return len(b.ids) }

// MarkFaulty latches that a fault was installed somewhere in the network
// (permanently — faults never heal in this simulator).
func (b *BrokenSet) MarkFaulty() { b.faulty = true }

// Quiet reports that no fault was ever installed and no packet ever broke,
// so no router can hold doomed, dead-granted, or orphaned state.
func (b *BrokenSet) Quiet() bool { return !b.faulty && len(b.ids) == 0 }

// StuckFlit describes one packet stalled in a router buffer; the livelock
// watchdog collects them for its diagnostic report.
type StuckFlit struct {
	// Node and VC locate the buffer.
	Node, VC int
	// PacketID, Src, Dst and Hops identify the stalled packet's journey.
	PacketID uint64
	Src, Dst int
	Hops     int
	// StallAge is how many cycles the front flit has been eligible but
	// unable to move.
	StallAge int64
	// Doomed reports that fault handling already marked the packet for
	// discard (it is draining, not wedged).
	Doomed bool
}

// StallSource is implemented by routers that can enumerate their stalled
// buffered packets for the livelock/starvation watchdog.
type StallSource interface {
	StallScan(cycle int64) []StuckFlit
}

// GrantRef locates the bookkeeping behind one VC's front-packet VA grant:
// the credit book holding the grant queue, and the router (plus arrival
// side) holding the downstream channel claim. For PDR's internal X-to-Y
// transfers the claimant is the router itself with side Local.
type GrantRef struct {
	Book     *OutVCBook
	Claimant Router
	Side     topology.Direction
}

// orphanAge is how many cycles a doomed, broken front packet must sit with
// no buffered flits before recovery force-retires its state. Flits of a
// packet stop being forwarded anywhere the cycle after it enters the
// broken set, so on 1-cycle links the last straggler arrives within two
// cycles; four gives margin while keeping recovery prompt. Multi-cycle
// die-to-die links stretch the straggler horizon — the network raises the
// effective age through SetReapHorizon, and every drained straggler
// restarts the clock (NoteStragglerDrain), so a state is only reaped once
// no flit of its packet can still be in transit.
const orphanAge = 4

// Recovery is the live-fault half of a router: shared bookkeeping for
// dropping flits, sweeping broken packets, withdrawing dead grants, and
// retiring orphaned packet states. Router implementations embed it and
// call SweepBroken/ReapOrphans from Tick (between arrivals and
// allocation). The vcs slice must list the router's channels in the index
// order used as grantee IDs in its output books.
type Recovery struct {
	node       int
	vcs        []*VC
	grantRef   func(vcIndex int) (GrantRef, bool)
	onAbort    func(vcIndex int)
	dropSink   DropSink
	broken     *BrokenSet
	emptySince []int64
	reapAge    int64
	feederBusy func(topology.Direction, uint64) bool

	// severed is a bitmask over the cardinal directions of ports cut by a
	// die-to-die interface fault. A severed port carries nothing in either
	// direction: arrivals on it are dropped, its depths read as zero to the
	// upstream handshake, and CanServe denies any service through it.
	severed uint8

	// alloc holds the router's allocation bitmaps; bit i of every mask is
	// vcs[i], so the mask index space IS the grantee index space.
	alloc AllocState
}

// InitRecovery wires the embedded recovery state. grantRef resolves a VC
// index to its front packet's grant target (ok=false when the front packet
// holds no external grant); onAbort (optional) runs after a front state is
// force-retired, letting the router clear references to the VC (e.g. its
// injection channel).
func (rc *Recovery) InitRecovery(node int, vcs []*VC, grantRef func(int) (GrantRef, bool), onAbort func(int)) {
	rc.node = node
	rc.vcs = vcs
	rc.grantRef = grantRef
	rc.onAbort = onAbort
	rc.emptySince = make([]int64, len(vcs))
	for i := range rc.emptySince {
		rc.emptySince[i] = -1
	}
	rc.reapAge = orphanAge
	for i, vc := range vcs {
		vc.bindAlloc(&rc.alloc, i)
	}
}

// Alloc exposes the router's allocation bitmaps; the VA/SA stages read
// them instead of re-evaluating per-channel predicates each cycle.
func (rc *Recovery) Alloc() *AllocState { return &rc.alloc }

// SetDropSink installs the network's drop-accounting callback.
func (rc *Recovery) SetDropSink(s DropSink) { rc.dropSink = s }

// BindHot mirrors the router's channels into the shared struct-of-arrays
// table. rc.vcs is exactly the router's grantee-index channel order, so
// the slot layout matches the order every other per-VC structure uses.
func (rc *Recovery) BindHot(hs *HotState) { hs.BindRouter(rc.node, rc.vcs) }

// SetBroken shares the network-wide broken-packet registry.
func (rc *Recovery) SetBroken(b *BrokenSet) { rc.broken = b }

// Broken reports whether the packet is registered as broken.
func (rc *Recovery) Broken(id uint64) bool {
	return rc.broken != nil && rc.broken.Contains(id)
}

// NoteFault latches the shared registry's faulty flag; router ApplyFault
// implementations call it so the recovery scans arm even when a test
// installs a fault directly instead of through the network.
func (rc *Recovery) NoteFault() {
	if rc.broken != nil {
		rc.broken.MarkFaulty()
	}
}

// RecoveryQuiet reports that the recovery scans can be skipped this tick:
// no fault was ever installed and no packet ever broke, so SweepBroken,
// the doomed drain, and ReapOrphans are all provably no-ops. Every path
// that dooms or condemns a channel first either breaks a packet or
// installs a fault (CanServe only denies service on a faulted node), so
// a quiet network cannot hold recovery work. A router without the shared
// registry (standalone unit tests) always runs the scans.
func (rc *Recovery) RecoveryQuiet() bool {
	return rc.broken != nil && rc.broken.Quiet()
}

// SeverPort cuts the router's port d permanently (a die-to-die interface
// fault). Resident front packets already routed through d are doomed on
// the spot; the next SweepBroken withdraws their grants and claims, and
// the doomed drains discard their flits — the same recovery machinery a
// node death uses. The router's own service checks (CanServe, depths,
// claims, arrivals) consult Severed; the network re-propagates the
// neighbor handshake after severing both endpoints.
func (rc *Recovery) SeverPort(d topology.Direction) {
	if !d.IsCardinal() {
		panic(fmt.Sprintf("router: cannot sever non-cardinal port %v", d))
	}
	rc.NoteFault()
	rc.severed |= 1 << uint(d)
	for _, vc := range rc.vcs {
		if vc.OutPort() == d {
			vc.Doom()
		}
		// Claims fed over the severed link that no admitted packet backs
		// can never be fulfilled: their heads were dropped at the dead
		// interface or will never be sent. Release them now, or the latched
		// feeder keeps the channel unclaimable forever. The upstream's own
		// never-streamed grant withdrawal is suppressed by the Severed
		// guard in ReleaseInputVC, so the release happens exactly once.
		vc.PurgeClaims(d)
	}
}

// Severed reports whether port d was cut by a D2D interface fault.
// Non-cardinal directions (Local ejection, Invalid probes) are never
// severed.
func (rc *Recovery) Severed(d topology.Direction) bool {
	return d.IsCardinal() && rc.severed&(1<<uint(d)) != 0
}

// AnySevered reports whether any port of the router was cut.
func (rc *Recovery) AnySevered() bool { return rc.severed != 0 }

// DropFlit reports one discarded flit, with its cause, to the trace and the
// network's drop sink (which registers the packet as broken and keeps the
// conservation ledger).
func (rc *Recovery) DropFlit(f *flit.Flit, cycle int64, reason trace.DropReason) {
	if f.Rec != nil && f.Type.IsHead() {
		f.Rec.Drop(rc.node, cycle, reason)
	}
	if rc.dropSink != nil {
		rc.dropSink(f, cycle, reason)
	}
}

// BufferedFlits counts the flits buffered across all channels.
func (rc *Recovery) BufferedFlits() int {
	n := 0
	for _, vc := range rc.vcs {
		n += vc.Len()
	}
	return n
}

// VCOccupancy adds each channel's buffered flit count into per, bucketed
// by the channel's path-set class, and returns the total added. Channels
// whose implementation never assigns a class (the baseline routers) all
// land in the zero-value bucket (ContinueX). Read-only; the telemetry
// collector samples it at epoch boundaries.
func (rc *Recovery) VCOccupancy(per *[routing.NumClasses]int32) int {
	total := 0
	for _, vc := range rc.vcs {
		n := vc.Len()
		if n == 0 {
			continue
		}
		per[vc.Class] += int32(n)
		total += n
	}
	return total
}

// SweepBroken dooms resident front packets that can no longer complete and
// withdraws their outstanding VA grants. Two triggers: the packet is in
// the broken set (it lost a flit elsewhere), or — when huntDeadGrants is
// set — its granted downstream channel died under it (a runtime fault
// zeroed the channel's depth after the grant). Hunting dead grants is the
// RoCo router's fault-handshake hardware reacting to the re-propagated
// credit state; the baselines lack the mechanism, so a packet granted into
// a node that dies before it streams wedges its channel (and every channel
// queued behind it) until the watchdog reports it.
func (rc *Recovery) SweepBroken(cycle int64, huntDeadGrants bool) {
	for i, vc := range rc.vcs {
		st, ok := vc.FrontState()
		if !ok {
			continue
		}
		if !st.Doomed {
			broke := rc.Broken(st.PacketID)
			deadGrant := false
			if !broke && huntDeadGrants && st.OutVC >= 0 && !st.EjectNext {
				if ref, refOK := rc.grantRef(i); refOK && ref.Book != nil && !ref.Book.Alive(st.OutVC) {
					deadGrant = true
				}
			}
			if !broke && !deadGrant {
				continue
			}
			vc.Doom()
			st.Doomed = true
		}
		// Withdraw the doomed front packet's grant exactly once so the next
		// grantee of the downstream channel can stream; release the
		// downstream claim only if nothing of the packet ever streamed
		// (otherwise the downstream fragment retires the claim itself).
		if st.OutVC >= 0 && !st.EjectNext && !st.Cancelled {
			if ref, refOK := rc.grantRef(i); refOK {
				if ref.Book != nil {
					ref.Book.CancelGrant(st.OutVC, i)
				}
				if !st.Streamed && ref.Claimant != nil {
					ref.Claimant.ReleaseInputVC(ref.Side, st.OutVC)
				}
			}
			vc.CancelFrontGrant()
		}
	}
}

// ReapOrphans force-retires doomed front packet states whose remaining
// flits were dropped elsewhere and can never arrive: the packet is broken,
// none of its flits are buffered here, and the situation has persisted
// past the in-flight horizon. Without the reap, the fragment state would
// hold its channel (and the packets queued behind it) forever.
func (rc *Recovery) ReapOrphans(cycle int64) {
	for i, vc := range rc.vcs {
		st, ok := vc.FrontState()
		if !ok || !st.Doomed || !rc.Broken(st.PacketID) || vc.FrontPacketBuffered() ||
			(rc.feederBusy != nil && rc.feederBusy(vc.Feeder(), st.PacketID)) {
			rc.emptySince[i] = -1
			continue
		}
		if rc.emptySince[i] < 0 {
			rc.emptySince[i] = cycle
			continue
		}
		if cycle-rc.emptySince[i] < rc.reapAge {
			continue
		}
		vc.AbortFront()
		rc.emptySince[i] = -1
		if rc.onAbort != nil {
			rc.onAbort(i)
		}
	}
}

// SetFeederProbe installs the router's view of its input links: busy(d,
// pkt) reports whether a flit of packet pkt is still in transit toward the
// router on side d. ReapOrphans holds the orphan clock while the link
// feeding a doomed front state still carries its packet — the link FIFO
// interleaves packets, so on a serialized die-to-die pipe a straggler of
// the doomed packet can lawfully land many cycles after its predecessor,
// queued behind other packets' flits. The probe is per-packet, not
// per-link: a merely busy link (saturated steady-state traffic) must not
// starve the reap, or the doomed state holds its channel forever and
// wedges everything queued behind it. Once the pipe carries nothing of the
// packet, no straggler can ever arrive (upstream fragments of a broken
// packet drain instead of forwarding), and the clock runs.
func (rc *Recovery) SetFeederProbe(busy func(topology.Direction, uint64) bool) {
	rc.feederBusy = busy
}

// SetReapHorizon stretches the orphan-reap age for networks whose links can
// hold flits in transit longer than the on-die single cycle: maxLinkDelay
// is the slowest link's per-flit horizon (the larger of its latency and its
// serialization gap). Reaping a front state while a flit of its packet can
// still arrive would let a straggler land in an idle — or worse, a
// reclaimed — channel, so the age must exceed the longest lawful quiet
// interval between straggler deliveries.
func (rc *Recovery) SetReapHorizon(maxLinkDelay int64) {
	if age := orphanAge + maxLinkDelay; age > rc.reapAge {
		rc.reapAge = age
	}
}

// NoteStragglerDrain restarts vc's orphan clock: a flit of its doomed front
// packet just drained, so more may still be in flight behind it. Without
// the reset, stragglers trickling over a serialized die-to-die link — each
// drained the very cycle it lands, leaving the channel unbuffered at every
// reap scan — would never hold the reap off.
func (rc *Recovery) NoteStragglerDrain(vc *VC) {
	if i := vc.granteeIndex(); i >= 0 && i < len(rc.emptySince) {
		rc.emptySince[i] = -1
	}
}

// StallScan reports every buffered front packet and how long its front
// flit has been eligible to move, for the watchdog's diagnostic.
func (rc *Recovery) StallScan(cycle int64) []StuckFlit {
	var out []StuckFlit
	for i, vc := range rc.vcs {
		f := vc.Front()
		if f == nil {
			continue
		}
		age := cycle - f.ReadyAt
		if age < 0 {
			age = 0
		}
		out = append(out, StuckFlit{
			Node:     rc.node,
			VC:       i,
			PacketID: f.PacketID,
			Src:      f.Src,
			Dst:      f.Dst,
			Hops:     f.Hops,
			StallAge: age,
			Doomed:   vc.Doomed(),
		})
	}
	return out
}
