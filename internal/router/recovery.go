package router

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// BrokenSet is the network-wide registry of packets that can no longer be
// delivered whole: at least one of their flits was dropped somewhere (a
// live fault condemned a buffer, a dead node drained an arrival, a doomed
// wormhole fragment was discarded). Routers sweep the set every Tick and
// doom their own resident fragments of broken packets, so a break anywhere
// propagates along the whole wormhole within a cycle and the stranded
// flits drain instead of wedging the network.
type BrokenSet struct {
	ids map[uint64]int64 // packet ID -> cycle first broken
	// faulty latches permanently once any fault is installed anywhere in
	// the network; together with an empty registry it proves the recovery
	// scans (SweepBroken, doomed drains, ReapOrphans) have nothing to do.
	faulty bool
}

// NewBrokenSet returns an empty registry.
func NewBrokenSet() *BrokenSet {
	return &BrokenSet{ids: make(map[uint64]int64)}
}

// Add registers a packet as broken (idempotent; the first cycle wins).
func (b *BrokenSet) Add(id uint64, cycle int64) {
	if _, ok := b.ids[id]; !ok {
		b.ids[id] = cycle
	}
}

// Contains reports whether the packet has lost a flit.
func (b *BrokenSet) Contains(id uint64) bool {
	_, ok := b.ids[id]
	return ok
}

// Len returns the number of broken packets.
func (b *BrokenSet) Len() int { return len(b.ids) }

// MarkFaulty latches that a fault was installed somewhere in the network
// (permanently — faults never heal in this simulator).
func (b *BrokenSet) MarkFaulty() { b.faulty = true }

// Quiet reports that no fault was ever installed and no packet ever broke,
// so no router can hold doomed, dead-granted, or orphaned state.
func (b *BrokenSet) Quiet() bool { return !b.faulty && len(b.ids) == 0 }

// StuckFlit describes one packet stalled in a router buffer; the livelock
// watchdog collects them for its diagnostic report.
type StuckFlit struct {
	// Node and VC locate the buffer.
	Node, VC int
	// PacketID, Src, Dst and Hops identify the stalled packet's journey.
	PacketID uint64
	Src, Dst int
	Hops     int
	// StallAge is how many cycles the front flit has been eligible but
	// unable to move.
	StallAge int64
	// Doomed reports that fault handling already marked the packet for
	// discard (it is draining, not wedged).
	Doomed bool
}

// StallSource is implemented by routers that can enumerate their stalled
// buffered packets for the livelock/starvation watchdog.
type StallSource interface {
	StallScan(cycle int64) []StuckFlit
}

// GrantRef locates the bookkeeping behind one VC's front-packet VA grant:
// the credit book holding the grant queue, and the router (plus arrival
// side) holding the downstream channel claim. For PDR's internal X-to-Y
// transfers the claimant is the router itself with side Local.
type GrantRef struct {
	Book     *OutVCBook
	Claimant Router
	Side     topology.Direction
}

// orphanAge is how many cycles a doomed, broken front packet must sit with
// no buffered flits before recovery force-retires its state. Flits of a
// packet stop being forwarded anywhere the cycle after it enters the
// broken set, so the last straggler arrives within two cycles; four gives
// margin while keeping recovery prompt.
const orphanAge = 4

// Recovery is the live-fault half of a router: shared bookkeeping for
// dropping flits, sweeping broken packets, withdrawing dead grants, and
// retiring orphaned packet states. Router implementations embed it and
// call SweepBroken/ReapOrphans from Tick (between arrivals and
// allocation). The vcs slice must list the router's channels in the index
// order used as grantee IDs in its output books.
type Recovery struct {
	node       int
	vcs        []*VC
	grantRef   func(vcIndex int) (GrantRef, bool)
	onAbort    func(vcIndex int)
	dropSink   DropSink
	broken     *BrokenSet
	emptySince []int64

	// alloc holds the router's allocation bitmaps; bit i of every mask is
	// vcs[i], so the mask index space IS the grantee index space.
	alloc AllocState
}

// InitRecovery wires the embedded recovery state. grantRef resolves a VC
// index to its front packet's grant target (ok=false when the front packet
// holds no external grant); onAbort (optional) runs after a front state is
// force-retired, letting the router clear references to the VC (e.g. its
// injection channel).
func (rc *Recovery) InitRecovery(node int, vcs []*VC, grantRef func(int) (GrantRef, bool), onAbort func(int)) {
	rc.node = node
	rc.vcs = vcs
	rc.grantRef = grantRef
	rc.onAbort = onAbort
	rc.emptySince = make([]int64, len(vcs))
	for i := range rc.emptySince {
		rc.emptySince[i] = -1
	}
	for i, vc := range vcs {
		vc.bindAlloc(&rc.alloc, i)
	}
}

// Alloc exposes the router's allocation bitmaps; the VA/SA stages read
// them instead of re-evaluating per-channel predicates each cycle.
func (rc *Recovery) Alloc() *AllocState { return &rc.alloc }

// SetDropSink installs the network's drop-accounting callback.
func (rc *Recovery) SetDropSink(s DropSink) { rc.dropSink = s }

// BindHot mirrors the router's channels into the shared struct-of-arrays
// table. rc.vcs is exactly the router's grantee-index channel order, so
// the slot layout matches the order every other per-VC structure uses.
func (rc *Recovery) BindHot(hs *HotState) { hs.BindRouter(rc.node, rc.vcs) }

// SetBroken shares the network-wide broken-packet registry.
func (rc *Recovery) SetBroken(b *BrokenSet) { rc.broken = b }

// Broken reports whether the packet is registered as broken.
func (rc *Recovery) Broken(id uint64) bool {
	return rc.broken != nil && rc.broken.Contains(id)
}

// NoteFault latches the shared registry's faulty flag; router ApplyFault
// implementations call it so the recovery scans arm even when a test
// installs a fault directly instead of through the network.
func (rc *Recovery) NoteFault() {
	if rc.broken != nil {
		rc.broken.MarkFaulty()
	}
}

// RecoveryQuiet reports that the recovery scans can be skipped this tick:
// no fault was ever installed and no packet ever broke, so SweepBroken,
// the doomed drain, and ReapOrphans are all provably no-ops. Every path
// that dooms or condemns a channel first either breaks a packet or
// installs a fault (CanServe only denies service on a faulted node), so
// a quiet network cannot hold recovery work. A router without the shared
// registry (standalone unit tests) always runs the scans.
func (rc *Recovery) RecoveryQuiet() bool {
	return rc.broken != nil && rc.broken.Quiet()
}

// DropFlit reports one discarded flit, with its cause, to the trace and the
// network's drop sink (which registers the packet as broken and keeps the
// conservation ledger).
func (rc *Recovery) DropFlit(f *flit.Flit, cycle int64, reason trace.DropReason) {
	if f.Rec != nil && f.Type.IsHead() {
		f.Rec.Drop(rc.node, cycle, reason)
	}
	if rc.dropSink != nil {
		rc.dropSink(f, cycle, reason)
	}
}

// BufferedFlits counts the flits buffered across all channels.
func (rc *Recovery) BufferedFlits() int {
	n := 0
	for _, vc := range rc.vcs {
		n += vc.Len()
	}
	return n
}

// VCOccupancy adds each channel's buffered flit count into per, bucketed
// by the channel's path-set class, and returns the total added. Channels
// whose implementation never assigns a class (the baseline routers) all
// land in the zero-value bucket (ContinueX). Read-only; the telemetry
// collector samples it at epoch boundaries.
func (rc *Recovery) VCOccupancy(per *[routing.NumClasses]int32) int {
	total := 0
	for _, vc := range rc.vcs {
		n := vc.Len()
		if n == 0 {
			continue
		}
		per[vc.Class] += int32(n)
		total += n
	}
	return total
}

// SweepBroken dooms resident front packets that can no longer complete and
// withdraws their outstanding VA grants. Two triggers: the packet is in
// the broken set (it lost a flit elsewhere), or — when huntDeadGrants is
// set — its granted downstream channel died under it (a runtime fault
// zeroed the channel's depth after the grant). Hunting dead grants is the
// RoCo router's fault-handshake hardware reacting to the re-propagated
// credit state; the baselines lack the mechanism, so a packet granted into
// a node that dies before it streams wedges its channel (and every channel
// queued behind it) until the watchdog reports it.
func (rc *Recovery) SweepBroken(cycle int64, huntDeadGrants bool) {
	for i, vc := range rc.vcs {
		st, ok := vc.FrontState()
		if !ok {
			continue
		}
		if !st.Doomed {
			broke := rc.Broken(st.PacketID)
			deadGrant := false
			if !broke && huntDeadGrants && st.OutVC >= 0 && !st.EjectNext {
				if ref, refOK := rc.grantRef(i); refOK && ref.Book != nil && !ref.Book.Alive(st.OutVC) {
					deadGrant = true
				}
			}
			if !broke && !deadGrant {
				continue
			}
			vc.Doom()
			st.Doomed = true
		}
		// Withdraw the doomed front packet's grant exactly once so the next
		// grantee of the downstream channel can stream; release the
		// downstream claim only if nothing of the packet ever streamed
		// (otherwise the downstream fragment retires the claim itself).
		if st.OutVC >= 0 && !st.EjectNext && !st.Cancelled {
			if ref, refOK := rc.grantRef(i); refOK {
				if ref.Book != nil {
					ref.Book.CancelGrant(st.OutVC, i)
				}
				if !st.Streamed && ref.Claimant != nil {
					ref.Claimant.ReleaseInputVC(ref.Side, st.OutVC)
				}
			}
			vc.CancelFrontGrant()
		}
	}
}

// ReapOrphans force-retires doomed front packet states whose remaining
// flits were dropped elsewhere and can never arrive: the packet is broken,
// none of its flits are buffered here, and the situation has persisted
// past the in-flight horizon. Without the reap, the fragment state would
// hold its channel (and the packets queued behind it) forever.
func (rc *Recovery) ReapOrphans(cycle int64) {
	for i, vc := range rc.vcs {
		st, ok := vc.FrontState()
		if !ok || !st.Doomed || !rc.Broken(st.PacketID) || vc.FrontPacketBuffered() {
			rc.emptySince[i] = -1
			continue
		}
		if rc.emptySince[i] < 0 {
			rc.emptySince[i] = cycle
			continue
		}
		if cycle-rc.emptySince[i] < orphanAge {
			continue
		}
		vc.AbortFront()
		rc.emptySince[i] = -1
		if rc.onAbort != nil {
			rc.onAbort(i)
		}
	}
}

// StallScan reports every buffered front packet and how long its front
// flit has been eligible to move, for the watchdog's diagnostic.
func (rc *Recovery) StallScan(cycle int64) []StuckFlit {
	var out []StuckFlit
	for i, vc := range rc.vcs {
		f := vc.Front()
		if f == nil {
			continue
		}
		age := cycle - f.ReadyAt
		if age < 0 {
			age = 0
		}
		out = append(out, StuckFlit{
			Node:     rc.node,
			VC:       i,
			PacketID: f.PacketID,
			Src:      f.Src,
			Dst:      f.Dst,
			Hops:     f.Hops,
			StallAge: age,
			Doomed:   vc.Doomed(),
		})
	}
	return out
}
