package router

import (
	"sort"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/topology"
)

// SaveState serializes the activity counters.
func (a *Activity) SaveState(e *snapshot.Encoder) {
	e.I64(a.BufferWrites)
	e.I64(a.BufferReads)
	e.I64(a.CrossbarTraversals)
	e.I64(a.LinkFlits)
	for _, v := range a.LinkFlitsByDir {
		e.I64(v)
	}
	e.I64(a.VAOps)
	e.I64(a.VAGrants)
	e.I64(a.SAOps)
	e.I64(a.SAGrants)
	e.I64(a.RouteComputations)
	e.I64(a.Ejections)
	e.I64(a.EarlyEjections)
	e.I64(a.DroppedFlits)
	e.I64(a.CreditStalls)
	e.I64(a.Cycles)
}

// LoadState restores counters written by SaveState.
func (a *Activity) LoadState(d *snapshot.Decoder) {
	a.BufferWrites = d.I64()
	a.BufferReads = d.I64()
	a.CrossbarTraversals = d.I64()
	a.LinkFlits = d.I64()
	for i := range a.LinkFlitsByDir {
		a.LinkFlitsByDir[i] = d.I64()
	}
	a.VAOps = d.I64()
	a.VAGrants = d.I64()
	a.SAOps = d.I64()
	a.SAGrants = d.I64()
	a.RouteComputations = d.I64()
	a.Ejections = d.I64()
	a.EarlyEjections = d.I64()
	a.DroppedFlits = d.I64()
	a.CreditStalls = d.I64()
	a.Cycles = d.I64()
}

// SaveState serializes the contention tallies.
func (c *Contention) SaveState(e *snapshot.Encoder) {
	e.I64(c.RowRequests)
	e.I64(c.RowFailures)
	e.I64(c.ColRequests)
	e.I64(c.ColFailures)
}

// LoadState restores tallies written by SaveState.
func (c *Contention) LoadState(d *snapshot.Decoder) {
	c.RowRequests = d.I64()
	c.RowFailures = d.I64()
	c.ColRequests = d.I64()
	c.ColFailures = d.I64()
}

// SaveState serializes one channel: its fault state, admission bookkeeping,
// per-packet routing states, and buffered flits (via the codec). Index,
// Class and physical Depth are structural — written for validation only.
func (v *VC) SaveState(e *snapshot.Encoder, c *flit.Codec) {
	e.Int(v.Index)
	e.U8(uint8(v.Class))
	e.Int(v.Depth)
	e.Bool(v.Faulty)
	e.I64(v.FaultPenalty)
	e.Bool(v.condemned)
	e.Int(v.claims)
	e.U8(uint8(v.claimFeeder))
	e.Int(len(v.states))
	for _, s := range v.states {
		// The in-memory pktState is packed (flag byte, byte directions);
		// the stream stays canonical, one field at a time, so snapshots
		// from before the packing round-trip unchanged.
		e.U8(uint8(s.outPort))
		e.U8(uint8(s.nextOut))
		e.Int(int(s.outVC))
		e.Bool(s.flags&psEject != 0)
		e.Bool(s.flags&psDoomed != 0)
		e.U8(uint8(s.feeder))
		e.U64(s.packetID)
		e.Bool(s.flags&psStreamed != 0)
		e.Bool(s.flags&psCancelled != 0)
	}
	e.Int(len(v.queue))
	for _, f := range v.queue {
		c.Encode(e, f)
	}
}

// LoadState restores a channel written by SaveState into a freshly built
// channel of the same shape; a structural mismatch poisons the decoder.
func (v *VC) LoadState(d *snapshot.Decoder, c *flit.Codec) {
	if idx := d.Int(); d.Err() == nil && idx != v.Index {
		d.Corruptf("vc index %d, snapshot had %d", v.Index, idx)
		return
	}
	if cl := routing.Turn(d.U8()); d.Err() == nil && cl != v.Class {
		d.Corruptf("vc %d class %v, snapshot had %v", v.Index, v.Class, cl)
		return
	}
	if depth := d.Int(); d.Err() == nil && depth != v.Depth {
		d.Corruptf("vc %d depth %d, snapshot had %d", v.Index, v.Depth, depth)
		return
	}
	v.Faulty = d.Bool()
	v.FaultPenalty = d.I64()
	v.condemned = d.Bool()
	v.claims = d.Int()
	v.claimFeeder = topology.Direction(d.U8())
	ns := d.SliceLen(8)
	if d.Err() == nil && (ns > MaxPacketsPerChannel || v.claims < ns || v.claims > MaxPacketsPerChannel) {
		d.Corruptf("vc %d has %d states under %d claims", v.Index, ns, v.claims)
		return
	}
	// A lazily built channel allocates its full-capacity backing here, so
	// the resumed run keeps the allocate-once steady state. The hot-state
	// mirror is NOT updated incrementally on this path; the network calls
	// HotState.Resync once after all routers load.
	v.ensureBuffers()
	v.states = v.states[:0]
	for i := 0; i < ns; i++ {
		s := pktState{
			outPort: topology.Direction(d.U8()),
			nextOut: topology.Direction(d.U8()),
			outVC:   int32(d.Int()),
		}
		if d.Bool() {
			s.flags |= psEject
		}
		if d.Bool() {
			s.flags |= psDoomed
		}
		s.feeder = topology.Direction(d.U8())
		s.packetID = d.U64()
		if d.Bool() {
			s.flags |= psStreamed
		}
		if d.Bool() {
			s.flags |= psCancelled
		}
		v.states = append(v.states, s)
	}
	nq := d.SliceLen(16)
	if d.Err() == nil && nq > v.Depth {
		d.Corruptf("vc %d holds %d flits over depth %d", v.Index, nq, v.Depth)
		return
	}
	v.queue = v.queue[:0]
	for i := 0; i < nq; i++ {
		if d.Err() != nil {
			return
		}
		v.queue = append(v.queue, c.Decode(d))
	}
	// The allocation bitmaps are derived state, never serialized; rebuild
	// the channel's bits from what just loaded (like HotState.Resync, but
	// per channel — the masks have no cross-channel terms).
	v.syncAlloc()
	v.syncClaim()
}

// SaveState serializes the output book's credit and grant-order state.
// Depths are runtime state too: fault handshakes rewrite them live.
func (b *OutVCBook) SaveState(e *snapshot.Encoder) {
	e.Int(len(b.depths))
	for vc := range b.depths {
		e.Int(int(b.depths[vc]))
		e.Int(int(b.inflight[vc]))
		e.Int(len(b.order[vc]))
		for _, g := range b.order[vc] {
			e.Int(g)
		}
	}
}

// LoadState restores a book written by SaveState; a size mismatch poisons
// the decoder.
func (b *OutVCBook) LoadState(d *snapshot.Decoder) {
	if n := d.SliceLen(16); d.Err() == nil && n != len(b.depths) {
		d.Corruptf("output book tracks %d VCs, snapshot had %d", len(b.depths), n)
		return
	}
	for vc := range b.depths {
		b.depths[vc] = int32(d.Int())
		b.inflight[vc] = int32(d.Int())
		k := d.SliceLen(8)
		if d.Err() != nil {
			return
		}
		b.order[vc] = b.order[vc][:0]
		for j := 0; j < k; j++ {
			b.order[vc] = append(b.order[vc], d.Int())
		}
	}
	b.resyncAlive()
}

// SaveState serializes the link latch. Snapshots are taken at cycle
// boundaries, after Advance and before any Tick: the staged slot is
// provably empty, so only the readable flit, the in-transit stages of a
// multi-cycle D2D pipe, and the serializer timer are written.
func (p *FlitPipe) SaveState(e *snapshot.Encoder, c *flit.Codec) {
	if p.next != nil {
		panic("router: flit pipe snapshot taken mid-cycle")
	}
	if p.cur != nil {
		e.Bool(true)
		c.Encode(e, p.cur)
	} else {
		e.Bool(false)
	}
	e.Int(len(p.inflight))
	for _, df := range p.inflight {
		c.Encode(e, df.f)
		e.Int(int(df.rem))
	}
	e.Int(int(p.gapLeft))
}

// LoadState restores a latch written by SaveState. The pipe's D2D
// parameters are structural (rebuilt from the config at wiring time); a
// stream carrying transit state into a plain latch poisons the decoder.
func (p *FlitPipe) LoadState(d *snapshot.Decoder, c *flit.Codec) {
	p.next = nil
	p.cur = nil
	if d.Bool() && d.Err() == nil {
		p.cur = c.Decode(d)
	}
	n := d.SliceLen(16)
	if d.Err() == nil && n > 0 && !p.long {
		d.Corruptf("flit pipe holds %d in-transit flits but is not a d2d pipe", n)
		return
	}
	p.inflight = p.inflight[:0]
	for i := 0; i < n; i++ {
		if d.Err() != nil {
			return
		}
		p.inflight = append(p.inflight, delayedFlit{f: c.Decode(d), rem: int32(d.Int())})
	}
	p.gapLeft = int32(d.Int())
	if d.Err() == nil && p.gapLeft > 0 && !p.long {
		d.Corruptf("flit pipe has gap timer %d but is not a d2d pipe", p.gapLeft)
	}
}

// SaveState serializes the credit latch: this cycle's readable credits and
// any credits in transit through a multi-cycle D2D pipe. Like the flit
// pipe, the staged side must be empty at a cycle boundary.
func (p *CreditPipe) SaveState(e *snapshot.Encoder) {
	if len(p.next) != 0 {
		panic("router: credit pipe snapshot taken mid-cycle")
	}
	e.Bool(p.readable)
	e.Int(len(p.cur))
	for _, vc := range p.cur {
		e.Int(vc)
	}
	e.Int(len(p.inflight))
	for _, dc := range p.inflight {
		e.Int(int(dc.vc))
		e.Int(int(dc.rem))
	}
}

// LoadState restores a latch written by SaveState.
func (p *CreditPipe) LoadState(d *snapshot.Decoder) {
	p.next = p.next[:0]
	p.readable = d.Bool()
	n := d.SliceLen(8)
	p.cur = p.cur[:0]
	for i := 0; i < n; i++ {
		p.cur = append(p.cur, d.Int())
	}
	k := d.SliceLen(8)
	if d.Err() == nil && k > 0 && !p.long {
		d.Corruptf("credit pipe holds %d in-transit credits but is not a d2d pipe", k)
		return
	}
	p.inflight = p.inflight[:0]
	for i := 0; i < k; i++ {
		p.inflight = append(p.inflight, delayedCredit{vc: int32(d.Int()), rem: int32(d.Int())})
	}
}

// SaveState serializes both half-channels of the link.
func (c *Conn) SaveState(e *snapshot.Encoder, fc *flit.Codec) {
	c.Flit.SaveState(e, fc)
	c.Credit.SaveState(e)
}

// LoadState restores a link written by SaveState.
func (c *Conn) LoadState(d *snapshot.Decoder, fc *flit.Codec) {
	c.Flit.LoadState(d, fc)
	c.Credit.LoadState(d)
}

// SaveState serializes the broken-packet registry, IDs in ascending order
// so the byte stream is deterministic.
func (b *BrokenSet) SaveState(e *snapshot.Encoder) {
	e.Bool(b.faulty)
	ids := make([]uint64, 0, len(b.ids))
	for id := range b.ids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Int(len(ids))
	for _, id := range ids {
		e.U64(id)
		e.I64(b.ids[id])
	}
}

// LoadState restores a registry written by SaveState.
func (b *BrokenSet) LoadState(d *snapshot.Decoder) {
	b.faulty = d.Bool()
	n := d.SliceLen(16)
	for i := 0; i < n; i++ {
		id := d.U64()
		cycle := d.I64()
		if d.Err() != nil {
			return
		}
		b.ids[id] = cycle
	}
}

// SaveRecoveryState serializes the orphan-reap timers and the severed-port
// mask (the mutable recovery state; the wiring is rebuilt at construction).
func (rc *Recovery) SaveRecoveryState(e *snapshot.Encoder) {
	e.Int(len(rc.emptySince))
	for _, s := range rc.emptySince {
		e.I64(s)
	}
	e.U8(rc.severed)
}

// LoadRecoveryState restores state written by SaveRecoveryState.
func (rc *Recovery) LoadRecoveryState(d *snapshot.Decoder) {
	if n := d.SliceLen(8); d.Err() == nil && n != len(rc.emptySince) {
		d.Corruptf("recovery tracks %d VCs, snapshot had %d", len(rc.emptySince), n)
		return
	}
	for i := range rc.emptySince {
		rc.emptySince[i] = d.I64()
	}
	rc.severed = d.U8()
}
