// Package router provides the shared microarchitectural building blocks
// the three router implementations (generic, path-sensitive, RoCo) are
// assembled from: 1-cycle link and credit pipes, virtual-channel buffers,
// output-side credit/allocation bookkeeping, activity counters for the
// energy model, and the Router interface the network fabric drives.
package router

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
)

// FlitPipe is a one-cycle link latch: a flit written during cycle t becomes
// readable during cycle t+1, after the network advances all pipes at the
// cycle boundary. At most one flit per cycle models the single-flit-wide
// physical channel.
type FlitPipe struct {
	cur, next *flit.Flit
}

// Write stages f for delivery next cycle. Writing twice in one cycle
// panics: it means an allocator granted the same link to two flits, which
// is a simulator bug, never a legal outcome.
func (p *FlitPipe) Write(f *flit.Flit) {
	if p.next != nil {
		panic(fmt.Sprintf("router: link written twice in one cycle (%v then %v)", p.next, f))
	}
	p.next = f
}

// Read consumes the flit delivered this cycle, or nil.
func (p *FlitPipe) Read() *flit.Flit {
	f := p.cur
	p.cur = nil
	return f
}

// Busy reports whether the pipe already carries a flit for next cycle.
func (p *FlitPipe) Busy() bool { return p.next != nil }

// Occupancy counts the flits held by the pipe (current and staged); the
// network's flit-conservation auditor uses it to account for link flits.
func (p *FlitPipe) Occupancy() int {
	n := 0
	if p.cur != nil {
		n++
	}
	if p.next != nil {
		n++
	}
	return n
}

// Advance moves staged values into view. The network calls it once per
// cycle boundary. An unconsumed flit is a protocol violation: credit-based
// flow control guarantees the receiver always has room.
func (p *FlitPipe) Advance() {
	if p.cur != nil {
		panic(fmt.Sprintf("router: flit %v was never consumed", p.cur))
	}
	p.cur, p.next = p.next, nil
}

// CreditPipe carries credits upstream with a one-cycle delay. Several
// credits may be emitted in one cycle (e.g. an early ejection draining
// multiple VCs is impossible on one link, but tail-release and regular
// forwarding can coincide across VC indexes).
type CreditPipe struct {
	// cur and next ping-pong between two backing arrays that live for the
	// pipe's lifetime, so steady-state Writes never touch the heap. Read
	// hands out cur without surrendering the header; Writes only ever
	// append to next, which keeps the lease sound until the next Advance.
	cur, next []int
	readable  bool // cur carries this cycle's credits, not yet consumed
}

// Write stages a credit for VC index vc.
func (p *CreditPipe) Write(vc int) { p.next = append(p.next, vc) }

// Read consumes the credits delivered this cycle, or nil. The returned
// slice is only valid until the next Advance.
func (p *CreditPipe) Read() []int {
	if !p.readable {
		return nil
	}
	p.readable = false
	return p.cur
}

// Pending reports whether credits are staged for next cycle.
func (p *CreditPipe) Pending() bool { return len(p.next) > 0 }

// Advance moves staged credits into view.
func (p *CreditPipe) Advance() {
	p.cur, p.next = p.next, p.cur[:0]
	p.readable = len(p.cur) > 0
}

// Conn bundles the two half-channels of one directed router-to-router
// link: flits flowing downstream and credits flowing back upstream.
type Conn struct {
	Flit   FlitPipe
	Credit CreditPipe
}

// Advance advances both pipes.
func (c *Conn) Advance() {
	c.Flit.Advance()
	c.Credit.Advance()
}
