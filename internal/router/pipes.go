// Package router provides the shared microarchitectural building blocks
// the three router implementations (generic, path-sensitive, RoCo) are
// assembled from: 1-cycle link and credit pipes, virtual-channel buffers,
// output-side credit/allocation bookkeeping, activity counters for the
// energy model, and the Router interface the network fabric drives.
package router

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
)

// FlitPipe is a one-cycle link latch: a flit written during cycle t becomes
// readable during cycle t+1, after the network advances all pipes at the
// cycle boundary. At most one flit per cycle models the single-flit-wide
// physical channel.
//
// Die-to-die boundary links extend the latch into a short pipeline
// (SetD2D): a written flit spends latency cycles in transit, and the
// serialization gap rate-limits delivery to one flit per gap cycles — the
// narrower off-chip channel re-serializes each flit over several link
// cycles. Ordinary on-die links never touch the extension and keep the
// plain two-field latch behavior.
type FlitPipe struct {
	cur, next *flit.Flit

	// long selects the multi-cycle path; latency/gap are the D2D pipe
	// parameters (both >= 1), inflight the in-transit FIFO (remaining
	// cycles per flit), and gapLeft the serializer's recovery timer.
	long     bool
	latency  int32
	gap      int32
	gapLeft  int32
	inflight []delayedFlit
}

// delayedFlit is one in-transit flit of a multi-cycle pipe.
type delayedFlit struct {
	f   *flit.Flit
	rem int32 // cycles until it reaches the far end
}

// setD2D turns the latch into a latency-cycle pipe delivering at most one
// flit per gap cycles. Conn.SetD2D is the public entry point.
func (p *FlitPipe) setD2D(latency, gap int) {
	if latency < 1 || gap < 1 {
		panic(fmt.Sprintf("router: d2d flit pipe needs latency and gap >= 1, got %d/%d", latency, gap))
	}
	p.long = latency > 1 || gap > 1
	p.latency = int32(latency)
	p.gap = int32(gap)
}

// Write stages f for delivery next cycle. Writing twice in one cycle
// panics: it means an allocator granted the same link to two flits, which
// is a simulator bug, never a legal outcome.
func (p *FlitPipe) Write(f *flit.Flit) {
	if p.next != nil {
		panic(fmt.Sprintf("router: link written twice in one cycle (%v then %v)", p.next, f))
	}
	p.next = f
}

// Read consumes the flit delivered this cycle, or nil.
func (p *FlitPipe) Read() *flit.Flit {
	f := p.cur
	p.cur = nil
	return f
}

// Busy reports whether the pipe already carries a flit for next cycle.
func (p *FlitPipe) Busy() bool { return p.next != nil }

// Readable reports whether a flit is deliverable this cycle (Read would
// return non-nil). The gated kernels use it to wake the downstream router
// exactly when a multi-cycle pipe completes a transfer.
func (p *FlitPipe) Readable() bool { return p.cur != nil }

// Occupancy counts the flits held by the pipe (current, staged, and — on a
// multi-cycle pipe — in transit); the network's flit-conservation auditor
// uses it to account for link flits.
func (p *FlitPipe) Occupancy() int {
	n := len(p.inflight)
	if p.cur != nil {
		n++
	}
	if p.next != nil {
		n++
	}
	return n
}

// Carries reports whether any flit of the packet is held by the pipe
// (staged, in transit, or deliverable). The orphan reaper probes the link
// feeding a doomed fragment state: while the pipe still carries the
// packet, a straggler can lawfully arrive — possibly many cycles out on a
// serialized die-to-die link, queued behind other packets' flits — so the
// state must not be retired yet.
func (p *FlitPipe) Carries(id uint64) bool {
	if p.cur != nil && p.cur.PacketID == id {
		return true
	}
	if p.next != nil && p.next.PacketID == id {
		return true
	}
	for i := range p.inflight {
		if p.inflight[i].f.PacketID == id {
			return true
		}
	}
	return false
}

// quiescent reports that advancing the pipe is a pure no-op: nothing held
// anywhere and the serializer's recovery timer expired.
func (p *FlitPipe) quiescent() bool {
	return p.cur == nil && p.next == nil && len(p.inflight) == 0 && p.gapLeft == 0
}

// Advance moves staged values into view. The network calls it once per
// cycle boundary. An unconsumed flit is a protocol violation: credit-based
// flow control guarantees the receiver always has room.
func (p *FlitPipe) Advance() {
	if p.cur != nil {
		panic(fmt.Sprintf("router: flit %v was never consumed", p.cur))
	}
	if p.long {
		p.advanceLong()
		return
	}
	p.cur, p.next = p.next, nil
}

// advanceLong steps the multi-cycle pipe: in-transit flits approach the far
// end, the serializer timer runs down, the staged flit enters transit, and
// the front flit lands once its transit is done and the serializer has
// recovered. Delivery order is FIFO; flits queue at the far end behind the
// serializer when gap exceeds 1.
func (p *FlitPipe) advanceLong() {
	for i := range p.inflight {
		if p.inflight[i].rem > 0 {
			p.inflight[i].rem--
		}
	}
	if p.gapLeft > 0 {
		p.gapLeft--
	}
	if p.next != nil {
		p.inflight = append(p.inflight, delayedFlit{f: p.next, rem: p.latency - 1})
		p.next = nil
	}
	if len(p.inflight) > 0 && p.inflight[0].rem == 0 && p.gapLeft == 0 {
		p.cur = p.inflight[0].f
		p.inflight[0].f = nil
		p.inflight = p.inflight[:copy(p.inflight, p.inflight[1:])]
		// The timer is decremented at the top of the NEXT advance before the
		// delivery check runs, so gap (not gap-1) yields one flit per gap
		// cycles. Gap 1 needs no recovery at all.
		if p.gap > 1 {
			p.gapLeft = p.gap
		}
	}
}

// CreditPipe carries credits upstream with a one-cycle delay. Several
// credits may be emitted in one cycle (e.g. an early ejection draining
// multiple VCs is impossible on one link, but tail-release and regular
// forwarding can coincide across VC indexes).
type CreditPipe struct {
	// cur and next ping-pong between two backing arrays that live for the
	// pipe's lifetime, so steady-state Writes never touch the heap. Read
	// hands out cur without surrendering the header; Writes only ever
	// append to next, which keeps the lease sound until the next Advance.
	cur, next []int
	readable  bool // cur carries this cycle's credits, not yet consumed

	// long selects the multi-cycle path of a D2D boundary link: credits
	// spend latency cycles in transit (no serialization gap — a credit is
	// a few bits, not a flit). inflight holds them with remaining cycles.
	long     bool
	latency  int32
	inflight []delayedCredit
}

// delayedCredit is one in-transit credit of a multi-cycle pipe.
type delayedCredit struct {
	vc  int32
	rem int32
}

// setD2D turns the latch into a latency-cycle credit pipe.
func (p *CreditPipe) setD2D(latency int) {
	if latency < 1 {
		panic(fmt.Sprintf("router: d2d credit pipe needs latency >= 1, got %d", latency))
	}
	p.long = latency > 1
	p.latency = int32(latency)
}

// Write stages a credit for VC index vc.
func (p *CreditPipe) Write(vc int) { p.next = append(p.next, vc) }

// Read consumes the credits delivered this cycle, or nil. The returned
// slice is only valid until the next Advance.
func (p *CreditPipe) Read() []int {
	if !p.readable {
		return nil
	}
	p.readable = false
	return p.cur
}

// Pending reports whether credits are staged for next cycle.
func (p *CreditPipe) Pending() bool { return len(p.next) > 0 }

// Readable reports whether credits are deliverable this cycle; the gated
// kernels use it to wake the upstream router when a multi-cycle pipe
// completes a transfer.
func (p *CreditPipe) Readable() bool { return p.readable }

// quiescent reports that advancing the pipe is a pure no-op.
func (p *CreditPipe) quiescent() bool {
	return len(p.next) == 0 && len(p.inflight) == 0 && !p.readable
}

// Advance moves staged credits into view.
func (p *CreditPipe) Advance() {
	if p.long {
		p.advanceLong()
		return
	}
	p.cur, p.next = p.next, p.cur[:0]
	p.readable = len(p.cur) > 0
}

// advanceLong steps the multi-cycle credit pipe: in-transit credits
// approach the far end, staged credits enter transit, and every credit
// whose transit completed lands in cur (several may land together — the
// sideband is not flit-serialized).
func (p *CreditPipe) advanceLong() {
	for i := range p.inflight {
		if p.inflight[i].rem > 0 {
			p.inflight[i].rem--
		}
	}
	for _, vc := range p.next {
		p.inflight = append(p.inflight, delayedCredit{vc: int32(vc), rem: p.latency - 1})
	}
	p.next = p.next[:0]
	p.cur = p.cur[:0]
	n := 0
	for n < len(p.inflight) && p.inflight[n].rem == 0 {
		p.cur = append(p.cur, int(p.inflight[n].vc))
		n++
	}
	if n > 0 {
		p.inflight = p.inflight[:copy(p.inflight, p.inflight[n:])]
	}
	p.readable = len(p.cur) > 0
}

// Conn bundles the two half-channels of one directed router-to-router
// link: flits flowing downstream and credits flowing back upstream.
type Conn struct {
	Flit   FlitPipe
	Credit CreditPipe
}

// SetD2D configures the link as a die-to-die boundary crossing: flits take
// latency cycles and at most one flit leaves per gap cycles (the off-chip
// serializer); credits take the same latency back but are not
// flit-serialized. The network calls it at wiring time, before any
// traffic.
func (c *Conn) SetD2D(latency, gap int) {
	c.Flit.setD2D(latency, gap)
	c.Credit.setD2D(latency)
}

// Long reports whether the link is a multi-cycle D2D pipe. Long conns are
// excluded from the gated kernels' one-shot advance path and instead stay
// on a persistent advance list until Quiescent.
func (c *Conn) Long() bool { return c.Flit.long || c.Credit.long }

// Quiescent reports that advancing the conn is a pure no-op: both pipes
// empty and all timers expired. The gated kernels retire a long conn from
// the advance list only when it is quiescent, so pipes in every non-trivial
// state advance exactly once per cycle — the same as under the reference
// kernel.
func (c *Conn) Quiescent() bool { return c.Flit.quiescent() && c.Credit.quiescent() }

// Advance advances both pipes.
func (c *Conn) Advance() {
	c.Flit.Advance()
	c.Credit.Advance()
}
