package router

// WaitEdge is one observed wait-for dependency: a channel holding a
// blocked packet waiting on a resource at a (usually downstream) router.
type WaitEdge struct {
	// FromNode/FromVC hold the blocked packet's front flit.
	FromNode, FromVC int
	// ToNode/ToVC is a channel the packet is waiting to acquire or to
	// drain (one of possibly several alternatives).
	ToNode, ToVC int
}

// WaitGraphSource lets a router expose its blocked-channel dependencies
// for deadlock analysis. Routers implement it optionally; the network's
// detector skips routers that do not.
type WaitGraphSource interface {
	// WaitEdges returns, for every channel whose front packet is blocked,
	// the set of channels it is waiting on. An entry with ToNode == -1
	// means the packet waits on a non-channel resource (e.g. a link or
	// ejection port) and cannot be part of a channel cycle.
	WaitEdges() []WaitEdge
}
