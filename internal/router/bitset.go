package router

import "math/bits"

// Bitset is a packed set of small non-negative integers, one bit each, in
// 64-bit words. The SoA kernel keeps its per-router activity, dormancy and
// broken masks in Bitsets so membership scans run word-wise: testing 64
// routers costs one load, and iterating the members of a range costs one
// trailing-zeros loop per set bit instead of a branch per router. The
// zero value of a word is "no members", so a freshly made Bitset is empty.
type Bitset []uint64

// NewBitset returns an empty set with capacity for n members.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set adds i to the set.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Test reports whether i is in the set.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// ClearAll empties the set (a memclr, vectorized by the runtime).
func (b Bitset) ClearAll() {
	for i := range b {
		b[i] = 0
	}
}

// SetFirst adds members 0..n-1 to the set.
func (b Bitset) SetFirst(n int) {
	for i := 0; i < n>>6; i++ {
		b[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		b[n>>6] |= (1 << uint(rem)) - 1
	}
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// CopyFrom overwrites the set with src (same capacity).
func (b Bitset) CopyFrom(src Bitset) { copy(b, src) }

// ForEachIn calls fn for every member in [lo, hi), in ascending order.
// The sweep touches only the words overlapping the range, so iterating a
// sparse set over a large range is proportional to words plus members,
// not to the range width.
func (b Bitset) ForEachIn(lo, hi int, fn func(i int)) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	for w := loW; w <= hiW; w++ {
		word := b[w]
		if w == loW {
			word &^= (1 << uint(lo&63)) - 1
		}
		if w == hiW {
			if rem := hi & 63; rem != 0 {
				word &= (1 << uint(rem)) - 1
			}
		}
		for word != 0 {
			fn(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
