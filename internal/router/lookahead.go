package router

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// RouteEngine computes look-ahead routes: the output port a flit will
// request at the router it is about to be sent to. All three router models
// share it — the paper's generic router computes the route in its first
// pipeline stage, which is timing-equivalent to look-ahead in this
// simulator's 2-cycle hop model; RoCo and the Path-Sensitive router exploit
// the look-ahead result for guided queuing and early ejection.
type RouteEngine struct {
	topo topology.Topology
	alg  routing.Algorithm
	// routerAt resolves a node ID to its router, giving the engine access
	// to the neighbor handshake state (fault capability and congestion)
	// that adaptive routing consults.
	routerAt func(id int) Router
	// arena, when enabled, slab-allocates the channels of every router
	// built against this engine (the SoA kernel's memory diet). The
	// engine carries it because it is the one object the network hands
	// every router builder before construction.
	arena *VCArena
}

// NewRouteEngine builds an engine over the given topology and algorithm.
// routerAt may be nil until the network finishes wiring; adaptive decisions
// then fall back to dimension order.
func NewRouteEngine(topo topology.Topology, alg routing.Algorithm, routerAt func(id int) Router) *RouteEngine {
	return &RouteEngine{topo: topo, alg: alg, routerAt: routerAt}
}

// EnableVCArena makes NewVC slab-allocate lazy channels; the network
// enables it before running the router builders when the SoA kernel is
// selected.
func (e *RouteEngine) EnableVCArena() { e.arena = &VCArena{} }

// NewVC builds one virtual channel for a router under construction:
// an eager standalone channel normally, a lazy slab-resident one when
// the arena is enabled. Routers must allocate their channels through
// this so the kernel's layout choice reaches every router kind.
func (e *RouteEngine) NewVC(index, depth int) *VC {
	if e.arena == nil {
		return NewVC(index, depth)
	}
	return e.arena.NewVC(index, depth)
}

// Algorithm returns the engine's routing discipline.
func (e *RouteEngine) Algorithm() routing.Algorithm { return e.alg }

// Topology returns the engine's topology.
func (e *RouteEngine) Topology() topology.Topology { return e.topo }

// RouterAt resolves a node ID to its router (nil until the network finishes
// wiring). The reliability protocol's reachability oracle uses it to consult
// the same CanServe handshake state that look-ahead routing sees.
func (e *RouteEngine) RouterAt(id int) Router {
	if e.routerAt == nil {
		return nil
	}
	return e.routerAt(id)
}

// RouteAt returns the output port flit f will take at node, given that it
// will arrive there through input side from (topology.Local for freshly
// injected packets). Escape-marked packets follow strict XY regardless of
// the algorithm, preserving the deadlock-free escape discipline.
func (e *RouteEngine) RouteAt(node int, from topology.Direction, f *flit.Flit) topology.Direction {
	cur := e.topo.Coord(node)
	dst := e.topo.Coord(f.Dst)
	if cur == dst {
		return topology.Local
	}
	if tor, ok := e.topo.(topology.Toroidal); ok {
		// Torus extension (flat or multi-chip): dimension order around the
		// shortest way; the engine is restricted to XY on tori (see
		// DESIGN.md).
		return routing.TorusDimensionOrder(tor.Width(), tor.Height(), cur, dst)
	}
	switch e.alg {
	case routing.XY:
		return routing.DimensionOrder(cur, dst, flit.XFirst)
	case routing.XYYX:
		return routing.DimensionOrder(cur, dst, f.Mode)
	default:
		return e.adaptiveAt(node, cur, dst, e.topo.Coord(f.Src), from)
	}
}

// adaptiveAt ranks the productive directions at node by downstream
// congestion, skipping directions the router itself cannot serve (module
// faults) and directions leading into completely unreachable neighbors —
// the fault knowledge the paper's handshaking signals provide.
func (e *RouteEngine) adaptiveAt(node int, cur, dst, src topology.Coord, from topology.Direction) topology.Direction {
	dirs := routing.OddEvenDirs(src, cur, dst)
	var self Router
	if e.routerAt != nil {
		self = e.routerAt(node)
	}
	best := topology.Invalid
	bestCost := 0.0
	fallback := dirs[0]
	for _, d := range dirs {
		if self != nil {
			if !self.CanServe(from, d) {
				continue
			}
			if nb, ok := e.topo.Neighbor(node, d); ok {
				nbr := e.routerAt(nb)
				// Skip a neighbor that cannot accept anything on the side
				// we would enter, unless it is the destination itself
				// (ejection is served even by a half-degraded router).
				if nb != e.topo.ID(dst) && nbr != nil && !nbr.CanServe(d.Opposite(), topology.Invalid) {
					continue
				}
			}
		}
		cost := 0.0
		if self != nil {
			cost = self.CongestionCost(d)
		}
		if best == topology.Invalid || cost < bestCost {
			best, bestCost = d, cost
		}
	}
	if best == topology.Invalid {
		// Every productive direction is fault-blocked; keep requesting the
		// first one. The packet stalls, which is the honest outcome for a
		// minimal router hemmed in by faults.
		return fallback
	}
	return best
}

// FirstHop computes the output port for a packet injected at node src,
// trying the packet's preferred mode first. For XY-YX routing the source PE
// knows its own neighbors' health (handshake), so if the preferred first
// hop leads into a fully blocked neighbor it flips the dimension order.
func (e *RouteEngine) FirstHop(src int, f *flit.Flit) topology.Direction {
	out := e.RouteAt(src, topology.Local, f)
	if e.alg != routing.XYYX || out == topology.Local || e.routerAt == nil {
		return out
	}
	if nb, ok := e.topo.Neighbor(src, out); ok {
		nbr := e.routerAt(nb)
		if nbr != nil && !nbr.CanServe(out.Opposite(), topology.Invalid) && nb != f.Dst {
			flipped := f.Mode
			if flipped == flit.XFirst {
				flipped = flit.YFirst
			} else {
				flipped = flit.XFirst
			}
			f.Mode = flipped
			return e.RouteAt(src, topology.Local, f)
		}
	}
	return out
}
