package router

import (
	"fmt"

	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// HotState is a struct-of-arrays mirror of the per-channel state the
// kernel's hot loops consult every cycle: buffered-flit counts, path-set
// classes, and per-router dormancy. Channels across the whole network are
// assigned dense slots — routers bind in ascending node order and each
// router's channels occupy the contiguous range [base[id], base[id+1]) in
// its own grantee-index order — so the coordinator's wake scan, the
// conservation audit, and telemetry occupancy sampling become linear
// sweeps over packed int32/uint8 arrays instead of virtual calls chasing
// per-router pointer graphs.
//
// The mirror is maintained incrementally: every VC queue/states mutation
// (PushFrom, Pop, AbortFront) updates its slot through syncHot, keeping
// occ[slot] equal to the channel's buffered-flit count and busyVCs[id]
// equal to the router's number of non-dormant channels. Since every
// router kind defines Idle as "all channels dormant", RouterBusy is an
// exact mirror of !Idle() — the SoA kernel's sleep decisions match the
// gated kernel's bit for bit. Snapshot loads bypass the incremental hooks
// and call Resync instead.
//
// Concurrency: during a parallel color phase only a channel's owning
// router mutates it, so slot entries and busyVCs[id] are written by at
// most one worker; the coordinator reads them only at phase barriers.
type HotState struct {
	base     []int32 // per router: first slot; len = routers bound + 1
	occ      []int32 // per slot: buffered flits (mirrors len(vc.queue))
	class    []uint8 // per slot: the channel's path-set class (routing.Turn)
	routerOf []int32 // per slot: owning router id
	busyVCs  []int32 // per router: channels with resident flits or packet state
	vcs      []*VC   // per slot: the mirrored channel, for Resync
}

// NewHotState returns an empty table expecting nodes routers to bind.
func NewHotState(nodes int) *HotState {
	hs := &HotState{
		base:    make([]int32, 1, nodes+1),
		busyVCs: make([]int32, nodes),
	}
	return hs
}

// BindRouter registers a router's channels, in their grantee-index order,
// as the next contiguous slot range. Routers must bind in ascending id
// order with no gaps so that slot ranges are derivable from the id alone.
func (hs *HotState) BindRouter(id int, vcs []*VC) {
	if id != len(hs.base)-1 {
		panic(fmt.Sprintf("router: hot-state binding out of order: router %d bound %d-th", id, len(hs.base)-1))
	}
	if id >= len(hs.busyVCs) {
		panic(fmt.Sprintf("router: hot-state binding router %d beyond declared %d nodes", id, len(hs.busyVCs)))
	}
	for _, vc := range vcs {
		if vc.hot != nil {
			panic(fmt.Sprintf("router: channel %d of router %d already hot-bound", vc.Index, id))
		}
		vc.hot = hs
		vc.slot = int32(len(hs.occ))
		hs.occ = append(hs.occ, int32(len(vc.queue)))
		hs.class = append(hs.class, uint8(vc.Class))
		hs.routerOf = append(hs.routerOf, int32(id))
		hs.vcs = append(hs.vcs, vc)
		if len(vc.queue)+len(vc.states) > 0 {
			hs.busyVCs[id]++
		}
	}
	hs.base = append(hs.base, int32(len(hs.occ)))
}

// Routers returns how many routers have bound.
func (hs *HotState) Routers() int { return len(hs.base) - 1 }

// Slots returns the total number of bound channels.
func (hs *HotState) Slots() int { return len(hs.occ) }

// RouterBusy mirrors !router.Idle(): at least one channel holds a
// buffered flit or resident packet state. One array load, no dispatch.
func (hs *HotState) RouterBusy(id int) bool { return hs.busyVCs[id] != 0 }

func (hs *HotState) vcWake(slot int32) { hs.busyVCs[hs.routerOf[slot]]++ }

func (hs *HotState) vcSleep(slot int32) {
	id := hs.routerOf[slot]
	hs.busyVCs[id]--
	if hs.busyVCs[id] < 0 {
		panic(fmt.Sprintf("router: hot-state dormancy underflow on router %d", id))
	}
}

// Resync rebuilds every derived entry from the bound channels. Snapshot
// restore mutates channel internals without going through the mutator
// hooks; the network calls Resync once after the routers load.
func (hs *HotState) Resync() {
	for id := range hs.busyVCs {
		hs.busyVCs[id] = 0
	}
	for i, vc := range hs.vcs {
		hs.occ[i] = int32(len(vc.queue))
		hs.class[i] = uint8(vc.Class)
		if len(vc.queue)+len(vc.states) > 0 {
			hs.busyVCs[hs.routerOf[i]]++
		}
	}
}

// BufferedFlits sums router id's buffered flits from the packed
// occupancy array — equal, by maintenance invariant, to the router's own
// BufferedFlits() sweep over its channel objects.
func (hs *HotState) BufferedFlits(id int) int {
	n := int32(0)
	for _, c := range hs.occ[hs.base[id]:hs.base[id+1]] {
		n += c
	}
	return int(n)
}

// TotalBuffered sums buffered flits across the whole network in one
// linear sweep (the conservation auditor's in-router term).
func (hs *HotState) TotalBuffered() int64 {
	var n int64
	for _, c := range hs.occ {
		n += int64(c)
	}
	return n
}

// OccupancyByClass adds every channel's buffered-flit count into per,
// bucketed by path-set class, and returns the total added — the SoA
// equivalent of summing VCOccupancy over all routers.
func (hs *HotState) OccupancyByClass(per *[routing.NumClasses]int32) int {
	total := int32(0)
	for i, c := range hs.occ {
		if c == 0 {
			continue
		}
		per[hs.class[i]] += c
		total += c
	}
	return int(total)
}

// VCArena slab-allocates channels contiguously so one router's — and
// neighboring routers' — hot channel metadata shares cache lines instead
// of scattering across individually boxed heap objects. Arena channels
// are also lazy: their flit queue and packet-state backing arrays stay
// nil until the first flit arrives, so a dormant channel on a big mesh
// costs only the VC header. The first PushFrom allocates the flit queue
// at full depth and the packet-state array at a small starting capacity
// that grows on demand (amortized, bounded by MaxPacketsPerChannel), so
// the steady state settles at zero allocs per cycle.
type VCArena struct {
	slab []VC
	used int
}

// arenaChunk is how many channels one slab holds. 1024 VCs ≈ one 8x8
// mesh of RoCo routers per slab; big meshes chain slabs, small ones
// waste at most one slab's tail.
const arenaChunk = 1024

// NewVC carves an idle lazy channel out of the arena.
func (a *VCArena) NewVC(index, depth int) *VC {
	if depth < 1 {
		panic("router: VC depth must be >= 1")
	}
	if a.used == len(a.slab) {
		a.slab = make([]VC, arenaChunk)
		a.used = 0
	}
	v := &a.slab[a.used]
	a.used++
	*v = VC{Index: index, Depth: depth, claimFeeder: topology.Invalid}
	return v
}
