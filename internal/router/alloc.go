package router

import (
	"fmt"
	"math/bits"

	"github.com/rocosim/roco/internal/topology"
)

// AllocState holds a router's allocation-stage request bitmaps: one bit
// per channel, in the same flat grantee-index order as Recovery.vcs (and
// therefore the output books and hot-state slots). The masks are exact
// incremental mirrors of the per-VC predicates the VA/SA loops used to
// evaluate channel by channel — NeedsVA, the routed half of SwitchReady,
// and Claimable — maintained by the same mutation funnel that keeps the
// hot-state occupancy mirror consistent (syncAlloc runs inside syncHot)
// plus explicit hooks on the mutators that change routing state without
// touching the queue (GrantRoute, GrantEject, Doom). A router's per-cycle
// request building then starts from a bit test instead of a predicate
// call per channel.
//
// What the masks deliberately do NOT capture is anything that changes
// without a VC mutator running: flit ReadyAt stamps (checked live through
// VC.FrontReady), downstream credits, and look-ahead routes. Those stay
// per-cycle work; the masks only prune which channels that work runs for.
type AllocState struct {
	// needVA: the front flit is a head still awaiting a downstream grant
	// and the packet is not doomed — exactly the channels the VA request
	// loop admits (NeedsVA() && !Doomed()).
	needVA uint64
	// saReady: the front flit belongs to the front packet and is routed
	// (body/tail, granted head, or ejecting head) — SwitchReady minus its
	// per-cycle ReadyAt check. Doomed packets stay in the mask: the SA
	// loops that exclude them (PDR) test Doomed explicitly, as before.
	saReady uint64
	// free / notFull / feeder mirror Claimable: a channel is claimable
	// from side d iff it has no claims at all, or it has a free packet
	// slot and d is already its feeder link.
	free    uint64
	notFull uint64
	feeder  [int(topology.Invalid) + 1]uint64
}

// NeedVA returns the VA request mask: channels whose front head awaits a
// downstream channel grant (and is not doomed).
func (a *AllocState) NeedVA() uint64 { return a.needVA }

// SAReady returns the switch-request mask: channels whose front flit is
// routed and aligned with the front packet. The caller still gates each
// bit on VC.FrontReady (the flit's ReadyAt is per-cycle state).
func (a *AllocState) SAReady() uint64 { return a.saReady }

// Claimable returns the mask of channels a new packet arriving over link
// from may claim — the bitmap equivalent of VC.Claimable(from) across the
// router's channels.
func (a *AllocState) Claimable(from topology.Direction) uint64 {
	return a.free | (a.notFull & a.feeder[from])
}

// bindAlloc wires the channel into the router's allocation bitmaps as bit
// idx and seeds its bits from current state. Called by InitRecovery, which
// owns the canonical flat channel order.
func (v *VC) bindAlloc(a *AllocState, idx int) {
	if idx >= 64 {
		panic(fmt.Sprintf("router: channel %d beyond the 64-bit allocation mask", idx))
	}
	v.alloc = a
	v.abit = 1 << uint(idx)
	v.syncAlloc()
	v.syncClaim()
}

// granteeIndex recovers the channel's flat grantee index from its
// allocation bit, or -1 for a channel not bound to a router (bare
// unit-test VCs).
func (v *VC) granteeIndex() int {
	if v.abit == 0 {
		return -1
	}
	return bits.TrailingZeros64(v.abit)
}

// syncAlloc recomputes the channel's needVA and saReady bits after a
// queue, states, or front-packet routing mutation. No-op for channels not
// bound to a router (bare unit-test VCs).
func (v *VC) syncAlloc() {
	a := v.alloc
	if a == nil {
		return
	}
	a.needVA &^= v.abit
	a.saReady &^= v.abit
	if len(v.queue) == 0 || len(v.states) == 0 || v.queue[0].PacketID != v.states[0].packetID {
		return
	}
	s := &v.states[0]
	if v.queue[0].Type.IsHead() && s.outVC < 0 && s.flags&psEject == 0 {
		if s.flags&psDoomed == 0 {
			a.needVA |= v.abit
		}
		return
	}
	a.saReady |= v.abit
}

// syncClaim recomputes the channel's claim-admission bits after a claim
// count or feeder change.
func (v *VC) syncClaim() {
	a := v.alloc
	if a == nil {
		return
	}
	a.free &^= v.abit
	a.notFull &^= v.abit
	for d := range a.feeder {
		a.feeder[d] &^= v.abit
	}
	if v.claims == 0 {
		a.free |= v.abit
		a.notFull |= v.abit
		return
	}
	if v.claims < MaxPacketsPerChannel {
		a.notFull |= v.abit
	}
	a.feeder[v.claimFeeder] |= v.abit
}

// FrontReady reports whether the front flit's ReadyAt has passed. It is
// the per-cycle half of SwitchReady; callers must know the queue is
// non-empty (an asserted saReady or needVA bit guarantees it).
func (v *VC) FrontReady(cycle int64) bool { return v.queue[0].ReadyAt <= cycle }
