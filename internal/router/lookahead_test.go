package router

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

func TestRouteAtXY(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	e := NewRouteEngine(topo, routing.XY, nil)
	f := &flit.Flit{Src: 0, Dst: topo.ID(topology.Coord{X: 3, Y: 5}), Mode: flit.XFirst}
	// At (1,0), XY goes East; at (3,2), it goes North; at dst, Local.
	if got := e.RouteAt(topo.ID(topology.Coord{X: 1, Y: 0}), topology.West, f); got != topology.East {
		t.Errorf("got %s, want E", got)
	}
	if got := e.RouteAt(topo.ID(topology.Coord{X: 3, Y: 2}), topology.West, f); got != topology.North {
		t.Errorf("got %s, want N", got)
	}
	if got := e.RouteAt(f.Dst, topology.South, f); got != topology.Local {
		t.Errorf("got %s, want Local", got)
	}
}

func TestRouteAtXYYXFollowsMode(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	e := NewRouteEngine(topo, routing.XYYX, nil)
	f := &flit.Flit{Src: 0, Dst: topo.ID(topology.Coord{X: 3, Y: 5}), Mode: flit.YFirst}
	if got := e.RouteAt(0, topology.Local, f); got != topology.North {
		t.Errorf("YFirst at origin should go N, got %s", got)
	}
	f.Mode = flit.XFirst
	if got := e.RouteAt(0, topology.Local, f); got != topology.East {
		t.Errorf("XFirst at origin should go E, got %s", got)
	}
}

func TestRouteAtAdaptiveIsMinimal(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	e := NewRouteEngine(topo, routing.Adaptive, nil)
	for src := 0; src < topo.Nodes(); src += 7 {
		for dst := 0; dst < topo.Nodes(); dst += 5 {
			if src == dst {
				continue
			}
			f := &flit.Flit{Src: src, Dst: dst, Mode: flit.ModeAdaptive}
			cur := src
			for hops := 0; cur != dst; hops++ {
				if hops > 20 {
					t.Fatalf("adaptive route %d->%d did not converge", src, dst)
				}
				d := e.RouteAt(cur, topology.Local, f)
				if d == topology.Local {
					break
				}
				next, ok := topo.Neighbor(cur, d)
				if !ok {
					t.Fatalf("adaptive route left the mesh at %d going %s", cur, d)
				}
				if topology.ManhattanDistance(topo.Coord(next), topo.Coord(dst)) >=
					topology.ManhattanDistance(topo.Coord(cur), topo.Coord(dst)) {
					t.Fatalf("non-minimal adaptive hop %d->%d", cur, next)
				}
				cur = next
			}
		}
	}
}

func TestPipesOneCycleLatency(t *testing.T) {
	var c Conn
	f := &flit.Flit{PacketID: 1}
	c.Flit.Write(f)
	if c.Flit.Read() != nil {
		t.Fatal("flit visible before Advance")
	}
	c.Advance()
	if c.Flit.Read() != f {
		t.Fatal("flit not visible after Advance")
	}
	c.Advance()
	if c.Flit.Read() != nil {
		t.Fatal("flit delivered twice")
	}
}

func TestFlitPipeDoubleWritePanics(t *testing.T) {
	var p FlitPipe
	p.Write(&flit.Flit{})
	defer func() {
		if recover() == nil {
			t.Error("double write should panic")
		}
	}()
	p.Write(&flit.Flit{})
}

func TestFlitPipeUnconsumedPanics(t *testing.T) {
	var p FlitPipe
	p.Write(&flit.Flit{})
	p.Advance()
	defer func() {
		if recover() == nil {
			t.Error("advancing over an unconsumed flit should panic")
		}
	}()
	p.Advance()
}

func TestCreditPipeBatching(t *testing.T) {
	var p CreditPipe
	p.Write(1)
	p.Write(5)
	if p.Read() != nil {
		t.Fatal("credits visible before Advance")
	}
	p.Advance()
	got := p.Read()
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("credits = %v", got)
	}
	p.Advance()
	if p.Read() != nil {
		t.Fatal("credits delivered twice")
	}
}

func TestActivityAdd(t *testing.T) {
	a := Activity{BufferWrites: 1, Cycles: 2, SAOps: 3}
	b := Activity{BufferWrites: 10, Cycles: 20, SAOps: 30, EarlyEjections: 5}
	a.Add(&b)
	if a.BufferWrites != 11 || a.Cycles != 22 || a.SAOps != 33 || a.EarlyEjections != 5 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestContentionProbabilities(t *testing.T) {
	c := Contention{RowRequests: 100, RowFailures: 25, ColRequests: 50, ColFailures: 10}
	if c.RowProbability() != 0.25 || c.ColProbability() != 0.2 {
		t.Error("per-dimension probabilities wrong")
	}
	if got := c.Probability(); got != 35.0/150.0 {
		t.Errorf("combined probability = %v", got)
	}
	var empty Contention
	if empty.Probability() != 0 || empty.RowProbability() != 0 {
		t.Error("empty contention should be 0")
	}
}
