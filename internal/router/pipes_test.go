package router

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
)

// TestFlitPipeOneCycleLatch pins the on-die contract: written at t,
// readable after the t-boundary Advance, exactly once.
func TestFlitPipeOneCycleLatch(t *testing.T) {
	var p FlitPipe
	f := &flit.Flit{}
	p.Write(f)
	if p.Readable() {
		t.Fatal("flit readable before Advance")
	}
	p.Advance()
	if !p.Readable() {
		t.Fatal("flit not readable after Advance")
	}
	if got := p.Read(); got != f {
		t.Fatalf("Read = %v, want the written flit", got)
	}
	p.Advance()
	if p.Read() != nil {
		t.Fatal("flit delivered twice")
	}
}

// TestFlitPipeD2DLatency: with latency L (gap 1), a flit written during
// cycle t is readable during cycle t+L — exactly L Advances later.
func TestFlitPipeD2DLatency(t *testing.T) {
	for _, lat := range []int{1, 2, 3, 5} {
		var p FlitPipe
		p.setD2D(lat, 1)
		f := &flit.Flit{}
		p.Write(f)
		for i := 0; i < lat-1; i++ {
			p.Advance()
			if p.Readable() {
				t.Fatalf("latency %d: flit readable after %d advances", lat, i+1)
			}
		}
		p.Advance()
		if got := p.Read(); got != f {
			t.Fatalf("latency %d: flit not delivered after %d advances", lat, lat)
		}
		if !p.quiescent() {
			t.Fatalf("latency %d: pipe not quiescent after delivery", lat)
		}
	}
}

// TestFlitPipeD2DGapSerializes: with gap G, back-to-back writes deliver G
// cycles apart in FIFO order, later flits queueing behind the serializer.
func TestFlitPipeD2DGapSerializes(t *testing.T) {
	const lat, gap = 2, 3
	var p FlitPipe
	p.setD2D(lat, gap)
	f1, f2 := &flit.Flit{Seq: 1}, &flit.Flit{Seq: 2}
	p.Write(f1)
	p.Advance()
	p.Write(f2)

	var deliveries []int64 // advance count at each delivery
	for cycle := int64(2); cycle < 12 && len(deliveries) < 2; cycle++ {
		p.Advance()
		if p.Readable() {
			got := p.Read()
			want := f1
			if len(deliveries) == 1 {
				want = f2
			}
			if got != want {
				t.Fatalf("delivery %d out of order: got seq %d", len(deliveries), got.Seq)
			}
			deliveries = append(deliveries, cycle)
		}
	}
	if len(deliveries) != 2 {
		t.Fatalf("only %d deliveries observed", len(deliveries))
	}
	if deliveries[0] != lat {
		t.Fatalf("first delivery after %d advances, want %d", deliveries[0], lat)
	}
	if deliveries[1]-deliveries[0] != gap {
		t.Fatalf("deliveries %d apart, want the gap %d", deliveries[1]-deliveries[0], gap)
	}
	if !p.quiescent() {
		// The serializer timer must still run down before quiescence.
		for i := 0; i < gap; i++ {
			p.Advance()
		}
		if !p.quiescent() {
			t.Fatal("pipe never reached quiescence after draining")
		}
	}
}

// TestFlitPipeD2DPlainTiming: latency 1 / gap 1 under setD2D stays the
// plain one-cycle latch (the network treats it as a short conn).
func TestFlitPipeD2DPlainTiming(t *testing.T) {
	var p FlitPipe
	p.setD2D(1, 1)
	if p.long {
		t.Fatal("1/1 d2d pipe should stay a plain latch")
	}
}

// TestCreditPipeD2DLatency: credits take latency cycles and may land
// together (no serialization gap on the sideband).
func TestCreditPipeD2DLatency(t *testing.T) {
	const lat = 4
	var p CreditPipe
	p.setD2D(lat)
	p.Write(0)
	p.Write(2)
	for i := 0; i < lat-1; i++ {
		p.Advance()
		if p.Readable() {
			t.Fatalf("credits readable after %d advances, want %d", i+1, lat)
		}
	}
	p.Advance()
	got := p.Read()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("credits %v, want [0 2]", got)
	}
	if !p.quiescent() {
		t.Fatal("credit pipe not quiescent after delivery")
	}
}

// TestConnQuiescent: a long conn reports quiescence only when both halves
// have drained and every timer expired.
func TestConnQuiescent(t *testing.T) {
	var c Conn
	c.SetD2D(3, 2)
	if !c.Long() {
		t.Fatal("3/2 conn should be long")
	}
	if !c.Quiescent() {
		t.Fatal("fresh conn should be quiescent")
	}
	c.Flit.Write(&flit.Flit{})
	if c.Quiescent() {
		t.Fatal("conn with a staged flit is not quiescent")
	}
	for i := 0; i < 10; i++ {
		if c.Flit.Readable() {
			c.Flit.Read()
		}
		c.Advance()
	}
	if c.Flit.Readable() {
		c.Flit.Read()
	}
	if !c.Quiescent() {
		t.Fatal("conn never drained to quiescence")
	}
}
