package pdr

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// harness wires a mesh of PDR routers with real pipes, driven manually.
type harness struct {
	topo    *topology.Mesh
	engine  *router.RouteEngine
	routers []*Router
	conns   []*router.Conn
	sunk    int
	cycle   int64
}

func newHarness(t *testing.T, w, h int) *harness {
	t.Helper()
	hn := &harness{topo: topology.NewMesh(w, h)}
	hn.routers = make([]*Router, hn.topo.Nodes())
	hn.engine = router.NewRouteEngine(hn.topo, routing.XY, func(id int) router.Router { return hn.routers[id] })
	for id := range hn.routers {
		hn.routers[id] = New(id, hn.engine)
	}
	for id := range hn.routers {
		for _, d := range topology.CardinalDirections {
			nb, ok := hn.topo.Neighbor(id, d)
			if !ok {
				continue
			}
			conn := &router.Conn{}
			hn.conns = append(hn.conns, conn)
			down := hn.routers[nb]
			depths := make([]int, down.NumInputVCs(d.Opposite()))
			for vc := range depths {
				depths[vc] = down.InputVCDepth(d.Opposite(), vc)
			}
			hn.routers[id].AttachOutput(d, conn, depths)
			hn.routers[id].SetNeighbor(d, down)
			down.AttachInput(d.Opposite(), conn)
		}
		hn.routers[id].SetSink(func(f *flit.Flit, cycle int64) { hn.sunk++ })
	}
	return hn
}

func (h *harness) step() {
	for _, r := range h.routers {
		r.Tick(h.cycle)
	}
	for _, c := range h.conns {
		c.Advance()
	}
	h.cycle++
}

func (h *harness) inject(t *testing.T, src, dst, flits int) uint64 {
	t.Helper()
	id := uint64(src*1000 + dst)
	pkt := flit.Packet{ID: id, Src: src, Dst: dst, Flits: flits}
	for _, f := range pkt.Segment() {
		if f.Type.IsHead() {
			f.OutPort = h.engine.FirstHop(src, f)
		}
		for try := 0; !h.routers[src].TryInject(f, h.cycle); try++ {
			if try > 50 {
				t.Fatal("injection starved")
			}
			h.step()
		}
	}
	return id
}

func TestPDRConcatenatedTransferObserved(t *testing.T) {
	// A turning packet must be observed in a fromX (internal transfer)
	// channel at its corner router — the concatenated traversal.
	h := newHarness(t, 4, 4)
	src := h.topo.ID(topology.Coord{X: 0, Y: 1})
	dst := h.topo.ID(topology.Coord{X: 2, Y: 3})
	corner := h.topo.ID(topology.Coord{X: 2, Y: 1})
	pkt := h.inject(t, src, dst, 4)

	sawTransfer := false
	for i := 0; i < 300 && h.sunk < 4; i++ {
		for id, vc := range h.routers[corner].vcs {
			if f := vc.Front(); f != nil && f.PacketID == pkt && portOfVC(id) == portFromX {
				sawTransfer = true
			}
		}
		h.step()
	}
	if !sawTransfer {
		t.Error("turning packet never observed in the internal transfer channel")
	}
	if h.sunk < 4 {
		t.Fatal("packet never delivered")
	}
	// And the corner router's crossbars fired twice per flit: once in the
	// X-module (into the transfer channel) and once in the Y-module.
	if traversals := h.routers[corner].Activity().CrossbarTraversals; traversals < 8 {
		t.Errorf("corner router traversals = %d, want >= 8 (two per flit)", traversals)
	}
}

func TestPDREjectionGoesThroughYModule(t *testing.T) {
	// Even a pure-X packet must transfer into the Y-module to eject: the
	// destination router sees 2 traversals per flit.
	h := newHarness(t, 4, 4)
	src := h.topo.ID(topology.Coord{X: 0, Y: 1})
	dst := h.topo.ID(topology.Coord{X: 2, Y: 1})
	h.inject(t, src, dst, 4)
	for i := 0; i < 300 && h.sunk < 4; i++ {
		h.step()
	}
	if h.sunk < 4 {
		t.Fatal("packet never delivered")
	}
	act := h.routers[dst].Activity()
	if act.CrossbarTraversals != 8 {
		t.Errorf("destination traversals = %d, want 8 (X-module + Y-module per flit)", act.CrossbarTraversals)
	}
	if act.Ejections != 4 {
		t.Errorf("ejections = %d, want 4", act.Ejections)
	}
	if act.EarlyEjections != 0 {
		t.Error("PDR has no early ejection")
	}
}

func TestPDRRejectsNonXYAtConstruction(t *testing.T) {
	engine := router.NewRouteEngine(topology.NewMesh(4, 4), routing.Adaptive, nil)
	defer func() {
		if recover() == nil {
			t.Error("PDR with adaptive routing should panic at construction")
		}
	}()
	New(0, engine)
}

func TestPDRFaultBlocksEverything(t *testing.T) {
	engine := router.NewRouteEngine(topology.NewMesh(4, 4), routing.XY, nil)
	r := New(5, engine)
	r.ApplyFault(fault.Fault{Node: 5, Component: fault.RC})
	if r.CanServe(topology.East, topology.West) || r.InputVCClaimable(topology.East, 0) {
		t.Error("any fault blocks the whole PDR node")
	}
}

func TestPDRArrivalPortMapping(t *testing.T) {
	engine := router.NewRouteEngine(topology.NewMesh(4, 4), routing.XY, nil)
	r := New(5, engine)
	// A link's claimable channels are exactly its arrival port's.
	for vc := 0; vc < NumVCs; vc++ {
		claimable := r.InputVCClaimable(topology.West, vc)
		want := portOfVC(vc) == portFromW
		if claimable != want {
			t.Errorf("vc %d claimable from the west link = %v, want %v", vc, claimable, want)
		}
	}
	// Internal and PE channels are never claimable from any link.
	for _, from := range topology.CardinalDirections {
		for vc := portFromPE * VCsPerPort; vc < (portFromPE+1)*VCsPerPort; vc++ {
			if r.InputVCClaimable(from, vc) {
				t.Errorf("PE channel %d claimable from link %s", vc, from)
			}
		}
		for vc := portFromX * VCsPerPort; vc < (portFromX+1)*VCsPerPort; vc++ {
			if r.InputVCClaimable(from, vc) {
				t.Errorf("transfer channel %d claimable from link %s", vc, from)
			}
		}
	}
}
