package pdr

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/snapshot"
)

// SaveState serializes the router's mutable state, including the internal
// transfer book (the per-tick scratch — vaFailed, request vectors,
// byTarget, nominations — never crosses a cycle boundary and is skipped).
func (r *Router) SaveState(e *snapshot.Encoder, c *flit.Codec) {
	for _, vc := range r.vcs {
		vc.SaveState(e, c)
	}
	for d := 0; d < 5; d++ {
		if r.books[d] == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		r.books[d].SaveState(e)
	}
	r.transferBook.SaveState(e)
	for p := 0; p < numPorts; p++ {
		r.inArb[p].SaveState(e)
	}
	for m := 0; m < 2; m++ {
		for o := 0; o < numOutsPerMod; o++ {
			r.outArb[m][o].SaveState(e)
		}
	}
	for i := range r.vaArb {
		for j := range r.vaArb[i] {
			r.vaArb[i][j].SaveState(e)
		}
	}
	e.Int(r.injVC)
	e.Bool(r.dead)
	r.act.SaveState(e)
	r.cont.SaveState(e)
	r.SaveRecoveryState(e)
}

// LoadState restores state written by SaveState into a freshly built
// router of the same configuration.
func (r *Router) LoadState(d *snapshot.Decoder, c *flit.Codec) {
	for _, vc := range r.vcs {
		vc.LoadState(d, c)
		if d.Err() != nil {
			return
		}
	}
	for dir := 0; dir < 5; dir++ {
		present := d.Bool()
		if d.Err() != nil {
			return
		}
		if present != (r.books[dir] != nil) {
			d.Corruptf("pdr router %d: output book %d presence mismatch", r.id, dir)
			return
		}
		if present {
			r.books[dir].LoadState(d)
		}
	}
	r.transferBook.LoadState(d)
	for p := 0; p < numPorts; p++ {
		r.inArb[p].LoadState(d)
	}
	for m := 0; m < 2; m++ {
		for o := 0; o < numOutsPerMod; o++ {
			r.outArb[m][o].LoadState(d)
		}
	}
	for i := range r.vaArb {
		for j := range r.vaArb[i] {
			r.vaArb[i][j].LoadState(d)
		}
	}
	r.injVC = d.Int()
	r.dead = d.Bool()
	r.act.LoadState(d)
	r.cont.LoadState(d)
	r.LoadRecoveryState(d)
	if d.Err() == nil && (r.injVC < -1 || r.injVC >= NumVCs) {
		d.Corruptf("pdr router %d: injection vc %d out of range", r.id, r.injVC)
	}
}
