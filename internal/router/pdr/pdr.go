// Package pdr implements the Partitioned Dimension-Order Router of the
// paper's related work (Chalasani & Boppana, HPCA'96; May et al., HiPER):
// the router is split into an X-module and a Y-module, each with a 3x3
// crossbar, but — unlike RoCo — the two modules are intertwined: a packet
// that changes dimension (or ejects) must take concatenated switch
// traversals, crossing the X-module's crossbar into an internal transfer
// buffer and then the Y-module's crossbar. The paper contrasts this with
// RoCo's fully decoupled modules; this implementation lets the comparison
// be measured. PDR is a dimension-order design and therefore supports XY
// routing only.
//
// Structure (60 flits of buffering, matching the other routers):
//
//	X-module 3x3: inputs {fromE, fromW, fromPE} -> outputs {E, W, toY}
//	Y-module 3x3: inputs {fromN, fromS, fromX}  -> outputs {N, S, eject}
//
// with 2 VCs of 5-flit buffers per input port.
package pdr

import (
	"fmt"
	"math/bits"

	"github.com/rocosim/roco/internal/arbiter"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

const (
	// VCsPerPort is the number of VCs per input port.
	VCsPerPort = 2
	// BufferDepth is the per-VC depth: 6 ports x 2 VCs x 5 flits = 60.
	BufferDepth = 5
	// NumVCs is the router-wide VC namespace.
	NumVCs = 6 * VCsPerPort

	// Input port indexes.
	portFromE  = 0 // X-module: flits traveling West
	portFromW  = 1 // X-module: flits traveling East
	portFromPE = 2 // X-module: injection
	portFromN  = 3 // Y-module: flits traveling South
	portFromS  = 4 // Y-module: flits traveling North
	portFromX  = 5 // Y-module: internal transfer from the X-module
	numPorts   = 6

	// Module-local output slots.
	outE, outW, outToY   = 0, 1, 2
	outN, outS, outEject = 0, 1, 2
	numOutsPerMod        = 3
)

// portOfVC returns the input port owning VC id.
func portOfVC(id int) int { return id / VCsPerPort }

// arrivalPort maps an arrival side to the input port.
func arrivalPort(from topology.Direction) int {
	switch from {
	case topology.East:
		return portFromE
	case topology.West:
		return portFromW
	case topology.North:
		return portFromN
	case topology.South:
		return portFromS
	default:
		panic(fmt.Sprintf("pdr: no arrival port for side %s", from))
	}
}

// Router is the PDR baseline-extension router.
type Router struct {
	router.Recovery

	id     int
	engine *router.RouteEngine
	sink   router.Sink

	in        [5]*router.Conn
	out       [5]*router.Conn
	books     [5]*router.OutVCBook
	neighbors [5]router.Router

	vcs [NumVCs]*router.VC
	// transferBook tracks the internal toY channel's credits/order like an
	// external link book, pointed at the router's own fromX VCs.
	transferBook *router.OutVCBook

	inArb  [numPorts]*arbiter.RoundRobin         // per input port (2:1)
	outArb [2][numOutsPerMod]*arbiter.RoundRobin // per module output (3:1)
	vaArb  [6][]arbiter.RoundRobin               // per (external dir or internal) x downstream vc; value slab

	injVC int

	dead bool
	// noFastPath disables Tick's dormant-router early return (reference
	// kernel mode).
	noFastPath bool
	act        router.Activity
	cont       router.Contention

	// Per-cycle request scratch as bitmaps over the router-wide VC ids:
	// vaFailed marks failed VA requesters (speculative SA), targReq[b][c]
	// collects the requesters of downstream channel c through book b (a
	// direction, or 5 for the internal transfer), targUsed[b] marks the c
	// with requesters, and vaNext records each requester's look-ahead
	// route.
	vaFailed uint64
	targReq  [6][NumVCs]uint64
	targUsed [6]uint16
	vaNext   [NumVCs]topology.Direction

	nomOut [numPorts]int // nominated module output slot per port, -1 = none
	nomVC  [numPorts]int
}

// fromXMask covers the internal transfer channels (the fromX port's VCs)
// in the router-wide id namespace.
const fromXMask = uint64(1<<VCsPerPort-1) << uint(portFromX*VCsPerPort)

// New returns a PDR router for the given node. The engine must use XY
// routing: PDR is a dimension-order design.
func New(id int, engine *router.RouteEngine) *Router {
	if engine.Algorithm() != routing.XY {
		panic("pdr: the partitioned dimension-order router supports XY routing only")
	}
	r := &Router{id: id, engine: engine, injVC: -1}
	for v := 0; v < NumVCs; v++ {
		r.vcs[v] = engine.NewVC(v, BufferDepth)
	}
	r.transferBook = router.NewOutVCBook(NumVCs, BufferDepth)
	for v := 0; v < NumVCs; v++ {
		if portOfVC(v) != portFromX {
			r.transferBook.SetDepth(v, 0) // only fromX channels are internal targets
		}
	}
	for p := 0; p < numPorts; p++ {
		r.inArb[p] = arbiter.NewRoundRobin(VCsPerPort)
	}
	for m := 0; m < 2; m++ {
		for o := 0; o < numOutsPerMod; o++ {
			r.outArb[m][o] = arbiter.NewRoundRobin(3)
		}
	}
	for i := range r.vaArb {
		r.vaArb[i] = arbiter.NewRoundRobinSlice(NumVCs, NumVCs)
	}
	r.InitRecovery(id, r.vcs[:], r.grantTarget, r.abortCleanup)
	r.SetFeederProbe(func(d topology.Direction, pkt uint64) bool {
		return d.IsCardinal() && r.in[d] != nil && r.in[d].Flit.Carries(pkt)
	})
	return r
}

// grantTarget resolves a VC index to its front packet's grant target. For
// an X-module packet granted the internal transfer leg the target is the
// router's own transfer book and fromX claim (side Local); otherwise it is
// the external link's book and neighbor.
func (r *Router) grantTarget(i int) (router.GrantRef, bool) {
	out := r.vcs[i].OutPort()
	if out == topology.Invalid {
		return router.GrantRef{}, false
	}
	port := portOfVC(i)
	if port <= portFromPE {
		if _, slot := moduleOutOf(port, out); slot == outToY {
			return router.GrantRef{Book: r.transferBook, Claimant: r, Side: topology.Local}, true
		}
	}
	if !out.IsCardinal() {
		return router.GrantRef{}, false
	}
	return router.GrantRef{Book: r.books[out], Claimant: r.neighbors[out], Side: out.Opposite()}, true
}

// abortCleanup releases the injection channel if the aborted packet was
// the one being injected.
func (r *Router) abortCleanup(i int) {
	if r.injVC == i {
		r.injVC = -1
	}
}

// ID returns the node this router serves.
func (r *Router) ID() int { return r.id }

// AttachInput wires an arriving link.
func (r *Router) AttachInput(d topology.Direction, c *router.Conn) { r.in[d] = c }

// AttachOutput wires a departing link and sizes its credit book.
func (r *Router) AttachOutput(d topology.Direction, c *router.Conn, depths []int) {
	r.out[d] = c
	r.books[d] = router.NewOutVCBook(len(depths), BufferDepth)
	for vc, depth := range depths {
		if depth != BufferDepth {
			r.books[d].SetDepth(vc, depth)
		}
	}
}

// SetNeighbor records the router reached through output d.
func (r *Router) SetNeighbor(d topology.Direction, n router.Router) { r.neighbors[d] = n }

// SetSink installs the PE delivery callback.
func (r *Router) SetSink(s router.Sink) { r.sink = s }

// Activity returns the per-component event counters.
func (r *Router) Activity() *router.Activity { return &r.act }

// Contention returns the switch-conflict tallies.
func (r *Router) Contention() *router.Contention { return &r.cont }

// ApplyFault blocks the entire node: the PDR modules are intertwined (the
// Y-module depends on the X-module for injection, transfer and ejection),
// so there is no graceful degradation to fall back to. Applied live,
// resident traffic is condemned and drains as drops.
func (r *Router) ApplyFault(fault.Fault) {
	r.NoteFault()
	r.dead = true
	for _, vc := range r.vcs {
		vc.Condemn()
	}
}

// RefreshOutput re-propagates the downstream input-VC depths into output
// d's credit book after a runtime fault changed them.
func (r *Router) RefreshOutput(d topology.Direction, depths []int) {
	b := r.books[d]
	if b == nil {
		return
	}
	for vc, depth := range depths {
		b.SetDepth(vc, depth)
	}
}

// CanServe reports whether traffic can be served; all-or-nothing, except
// that a severed die-to-die port denies only the traffic crossing it.
func (r *Router) CanServe(from, out topology.Direction) bool {
	return !r.dead && !r.Severed(from) && !r.Severed(out)
}

// CongestionCost estimates pressure on output out.
func (r *Router) CongestionCost(out topology.Direction) float64 {
	b := r.books[out]
	if b == nil {
		return 0
	}
	capacity := b.Size() * BufferDepth
	return float64(capacity-b.FreeSlots()) / float64(capacity)
}

// NumInputVCs returns the router-wide VC namespace size.
func (r *Router) NumInputVCs(topology.Direction) int { return NumVCs }

// InputVCDepth returns the usable depth of VC vc for arrivals on side
// from; channels of other ports are unreachable from that link.
func (r *Router) InputVCDepth(from topology.Direction, vc int) int {
	if r.dead || r.Severed(from) || portOfVC(vc) != arrivalPort(from) {
		return 0
	}
	return r.vcs[vc].Capacity()
}

// InputVCClaimable reports whether VC vc can take a new packet.
func (r *Router) InputVCClaimable(from topology.Direction, vc int) bool {
	return !r.dead && !r.Severed(from) && portOfVC(vc) == arrivalPort(from) && r.vcs[vc].Claimable(from)
}

// ClaimableMask returns the claimable VCs for arrivals on side from as a
// bitmap over the router-wide id namespace (only the arrival port's
// channels can be claimed over a given link).
func (r *Router) ClaimableMask(from topology.Direction) uint64 {
	if r.dead || r.Severed(from) {
		return 0
	}
	return r.Alloc().Claimable(from) & (uint64(1<<VCsPerPort-1) << uint(arrivalPort(from)*VCsPerPort))
}

// ClaimInputVC reserves VC vc for an inbound packet.
func (r *Router) ClaimInputVC(from topology.Direction, vc int) bool {
	if !r.InputVCClaimable(from, vc) {
		return false
	}
	r.vcs[vc].Claim(from)
	return true
}

// ReleaseInputVC returns a claim whose packet will never arrive. Side
// Local means an internal transfer claim on a fromX channel.
func (r *Router) ReleaseInputVC(from topology.Direction, vc int) {
	if r.Severed(from) {
		// SeverPort already purged unbacked claims on the dead interface;
		// honoring the upstream's withdrawal would double-release.
		return
	}
	r.vcs[vc].ReleaseClaim()
}

// Quiescent reports whether no flit is buffered anywhere in the router.
func (r *Router) Quiescent() bool {
	for _, vc := range r.vcs {
		if vc.Len() > 0 {
			return false
		}
	}
	return true
}

// Idle reports whether a tick with empty input pipes would be a pure
// no-op: every VC (external or internal transfer) is dormant — no flits
// buffered, no packet state resident. Bare upstream claims do not block
// idleness, since no tick phase acts on a claim alone.
func (r *Router) Idle() bool {
	for _, vc := range r.vcs {
		if !vc.Dormant() {
			return false
		}
	}
	return true
}

// DisableTickFastPath makes Tick run every phase even when the router is
// Idle; the reference kernel sets it so the ungated baseline executes the
// full tick-everything cost.
func (r *Router) DisableTickFastPath() { r.noFastPath = true }

// SkipCycles replays n idle ticks: only the activity cycle counter moves
// (idle round-robin arbiters hold still), and only on a live node.
func (r *Router) SkipCycles(n int64) {
	if !r.dead {
		r.act.Cycles += n
	}
}

// TryInject offers the next flit of the PE's current packet. All injection
// enters through the X-module's PE port (dimension order starts in X).
func (r *Router) TryInject(f *flit.Flit, cycle int64) bool {
	if r.dead {
		return false
	}
	if f.Type.IsHead() && f.OutPort == topology.Local {
		r.sink(f, cycle)
		if !f.Type.IsTail() {
			r.injVC = -2
		}
		return true
	}
	if r.injVC == -2 {
		r.sink(f, cycle)
		if f.Type.IsTail() {
			r.injVC = -1
		}
		return true
	}
	if f.Type.IsHead() {
		if r.injVC >= 0 {
			return false
		}
		for v := portFromPE * VCsPerPort; v < (portFromPE+1)*VCsPerPort; v++ {
			vc := r.vcs[v]
			if vc.Claimable(topology.Local) && vc.HasRoom() {
				f.ReadyAt = cycle + 1
				vc.Claim(topology.Local)
				vc.PushFrom(f, topology.Local)
				r.act.BufferWrites++
				if !f.Type.IsTail() {
					r.injVC = v
				}
				return true
			}
		}
		return false
	}
	if r.injVC < 0 {
		return false
	}
	vc := r.vcs[r.injVC]
	if !vc.HasRoom() {
		return false
	}
	f.ReadyAt = cycle + 1
	vc.PushFrom(f, topology.Local)
	r.act.BufferWrites++
	if f.Type.IsTail() {
		r.injVC = -1
	}
	return true
}

// moduleOutOf returns (module, output slot) for a packet in port with the
// given route at this router.
func moduleOutOf(port int, outPort topology.Direction) (int, int) {
	if port <= portFromPE { // X-module
		switch outPort {
		case topology.East:
			return 0, outE
		case topology.West:
			return 0, outW
		default:
			// N, S or Local: transfer into the Y-module first.
			return 0, outToY
		}
	}
	switch outPort { // Y-module
	case topology.North:
		return 1, outN
	case topology.South:
		return 1, outS
	case topology.Local:
		return 1, outEject
	default:
		panic(fmt.Sprintf("pdr: Y-module packet routed %s", outPort))
	}
}

// Tick advances the router one cycle.
func (r *Router) Tick(cycle int64) {
	if r.dead {
		r.tickDead(cycle)
		return
	}
	r.act.Cycles++

	for _, d := range topology.CardinalDirections {
		if r.out[d] == nil {
			continue
		}
		for _, vc := range r.out[d].Credit.Read() {
			r.books[d].ReturnCredit(vc)
		}
	}

	for _, d := range topology.CardinalDirections {
		if r.in[d] == nil {
			continue
		}
		f := r.in[d].Flit.Read()
		if f == nil {
			continue
		}
		if r.Severed(d) {
			// The die-to-die interface is dead in both directions: drop the
			// arrival and return no credit (the upstream port is severed too).
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			continue
		}
		f.Hops++
		f.ReadyAt = cycle + 1 + f.Penalty
		if f.Penalty > 0 {
			r.act.RouteComputations++
			f.Penalty = 0
		}
		if f.Rec != nil {
			f.Rec.Visit(r.id, cycle, trace.Arrived)
		}
		r.vcs[f.VC].PushFrom(f, d)
		r.act.BufferWrites++
	}

	// Fast path: with every channel dormant the phases below are all
	// no-ops (the same argument that makes SkipCycles sound), so a
	// router woken only to absorb returning credits skips them.
	if !r.noFastPath && r.Idle() {
		return
	}

	if r.noFastPath || !r.RecoveryQuiet() {
		r.SweepBroken(cycle, false)
		r.drainDoomed(cycle)
		r.ReapOrphans(cycle)
	}
	r.allocateVCs(cycle)
	r.allocateSwitch(cycle)
}

// tickDead is the Tick of a faulted node: arrivals already in flight are
// dropped (with their credits returned so upstream books stay balanced),
// condemned resident traffic drains as drops, and returning credits are
// discarded.
func (r *Router) tickDead(cycle int64) {
	for d := 0; d < 5; d++ {
		if r.in[d] != nil {
			if f := r.in[d].Flit.Read(); f != nil {
				r.act.DroppedFlits++
				r.DropFlit(f, cycle, trace.DropDeadNode)
				if f.VC >= 0 {
					r.in[d].Credit.Write(f.VC)
				}
			}
		}
		if r.out[d] != nil {
			r.out[d].Credit.Read()
		}
	}
	r.drainDoomed(cycle)
	r.ReapOrphans(cycle)
}

// drainDoomed discards flits of fault-blocked packets.
func (r *Router) drainDoomed(cycle int64) {
	for _, vc := range r.vcs {
		for {
			feeder := vc.Feeder()
			f := vc.DrainDoomed()
			if f == nil {
				break
			}
			r.NoteStragglerDrain(vc)
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			if feeder.IsCardinal() && r.in[feeder] != nil {
				r.in[feeder].Credit.Write(vc.Index)
			}
			if portOfVC(vc.Index) == portFromX {
				r.transferBook.ReturnCredit(vc.Index)
			}
			if f.Type.IsTail() {
				break
			}
		}
	}
}

// allocateVCs handles both allocation legs: external links (downstream
// router channels) and the internal X-to-Y transfer (local fromX
// channels). Requesters come off the needVA bitmap; candidates are bitmap
// intersections of the alive and claimable masks.
func (r *Router) allocateVCs(cycle int64) {
	r.vaFailed = 0
	need := r.Alloc().NeedVA()
	if need == 0 {
		return
	}
	// Each external output's downstream claimable set is fetched once per
	// cycle; nothing claims during request building, so the cached mask is
	// exact, and the grant phase still re-checks through ClaimInputVC.
	var nbrClaim [5]uint64
	var nbrClaimOK [5]bool

	for m := need; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		vc := r.vcs[id]
		if !vc.FrontReady(cycle) {
			continue
		}
		r.act.VAOps++
		port := portOfVC(id)
		_, slot := moduleOutOf(port, vc.OutPort())

		if port <= portFromPE && slot == outToY {
			// Internal leg: claim a local fromX channel. The feeder for
			// internal transfers is recorded as Local (no link credits).
			// No claimable channel means no request — and, as before, no
			// speculative SA either.
			if avail := r.Alloc().Claimable(topology.Local) & fromXMask; avail != 0 {
				c := bits.TrailingZeros64(avail)
				r.targReq[5][c] |= 1 << uint(id)
				r.targUsed[5] |= 1 << uint(c)
				r.vaNext[id] = vc.OutPort()
			}
			continue
		}
		if vc.OutPort() == topology.Local {
			// Y-module ejection: the PE interface always has room.
			vc.GrantEject()
			continue
		}

		out := vc.OutPort()
		nbr := r.neighbors[out]
		book := r.books[out]
		if nbr == nil || book == nil {
			continue
		}
		downstream, ok := r.engine.Topology().Neighbor(r.id, out)
		if !ok {
			continue
		}
		from := out.Opposite()
		nextOut := r.engine.RouteAt(downstream, from, vc.Front())
		vc.SetNextOut(nextOut)
		if !nbr.CanServe(from, nextOut) {
			vc.Doom()
			continue
		}
		if !nbrClaimOK[out] {
			nbrClaimOK[out] = true
			nbrClaim[out] = nbr.ClaimableMask(from)
		}
		// Candidates: the downstream VCs of the arrival port for this link.
		target := arrivalPort(from)
		rangeMask := uint64(1<<VCsPerPort-1) << uint(target*VCsPerPort)
		if avail := book.AliveMask() & nbrClaim[out] & rangeMask; avail != 0 {
			c := bits.TrailingZeros64(avail)
			r.targReq[out][c] |= 1 << uint(id)
			r.targUsed[out] |= 1 << uint(c)
			r.vaNext[id] = nextOut
		} else {
			r.vaFailed |= 1 << uint(id)
		}
	}

	for bookIdx := 0; bookIdx < 6; bookIdx++ {
		used := r.targUsed[bookIdx]
		if used == 0 {
			continue
		}
		r.targUsed[bookIdx] = 0
		for uc := used; uc != 0; uc &= uc - 1 {
			c := bits.TrailingZeros16(uc)
			reqs := r.targReq[bookIdx][c]
			r.targReq[bookIdx][c] = 0
			w := r.vaArb[bookIdx][c].GrantMask(reqs)
			r.vaFailed |= reqs &^ (1 << uint(w))
			vc := r.vcs[w]
			if bookIdx == 5 {
				// Internal transfer grant.
				if !r.vcs[c].Claimable(topology.Local) {
					r.vaFailed |= 1 << uint(w)
					continue
				}
				r.vcs[c].Claim(topology.Local)
				r.transferBook.EnqueueGrant(c, w)
				vc.GrantRoute(c, r.vaNext[w])
				r.act.VAGrants++
				continue
			}
			out := topology.Direction(bookIdx)
			nbr := r.neighbors[out]
			if nbr == nil || !nbr.ClaimInputVC(out.Opposite(), c) {
				r.vaFailed |= 1 << uint(w)
				continue
			}
			r.books[out].EnqueueGrant(c, w)
			vc.GrantRoute(c, r.vaNext[w])
			r.act.VAGrants++
		}
	}
}

// creditOK reports whether the front flit may stream toward its target
// (external link or internal transfer channel).
func (r *Router) creditOK(id int, vc *router.VC) bool {
	if vc.EjectNext() {
		return true
	}
	port := portOfVC(id)
	_, slot := moduleOutOf(port, vc.OutPort())
	if port <= portFromPE && slot == outToY {
		return r.transferBook.Credits(vc.OutVC()) > 0 && r.transferBook.MayStream(vc.OutVC(), id)
	}
	if vc.OutPort() == topology.Local {
		return true
	}
	book := r.books[vc.OutPort()]
	return book.Credits(vc.OutVC()) > 0 && book.MayStream(vc.OutVC(), id)
}

// allocateSwitch runs the two 3x3 separable switch allocations and
// forwards winners (externally, internally, or to the PE). Candidates come
// off the saReady bitmap; readyOK (switch-ready, not doomed, with credits)
// is computed once and reused by the contention tally and stage 1, which
// used to evaluate the same predicates twice per channel.
func (r *Router) allocateSwitch(cycle int64) {
	saReady := r.Alloc().SAReady()
	if saReady == 0 && r.vaFailed == 0 {
		return
	}

	// Contention accounting (Figure 3 definition): desire overlap per
	// module output.
	var readyOK uint64
	var desire [numPorts][numOutsPerMod]bool
	for m := saReady; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		vc := r.vcs[id]
		if !vc.FrontReady(cycle) || vc.Doomed() {
			continue
		}
		if !r.creditOK(id, vc) {
			r.act.CreditStalls++
			continue
		}
		readyOK |= 1 << uint(id)
		port := portOfVC(id)
		_, slot := moduleOutOf(port, vc.OutPort())
		desire[port][slot] = true
	}
	for m := 0; m < 2; m++ {
		for o := 0; o < numOutsPerMod; o++ {
			n := 0
			for p := m * 3; p < m*3+3; p++ {
				if desire[p][o] {
					n++
				}
			}
			if n > 0 {
				r.countContention(m, o, n)
			}
		}
	}

	// Stage 1: one nomination per input port. Heads whose VA failed this
	// cycle are charged as speculative arbitration work.
	for p := 0; p < numPorts; p++ {
		r.nomOut[p] = -1
		r.nomVC[p] = -1
		ready := (readyOK >> uint(p*VCsPerPort)) & (1<<VCsPerPort - 1)
		spec := (r.vaFailed >> uint(p*VCsPerPort)) & (1<<VCsPerPort - 1) &^ ready
		r.act.SAOps += int64(bits.OnesCount64(ready) + bits.OnesCount64(spec))
		if ready == 0 {
			continue
		}
		w := r.inArb[p].GrantMask(ready)
		id := p*VCsPerPort + w
		_, slot := moduleOutOf(p, r.vcs[id].OutPort())
		r.nomOut[p] = slot
		r.nomVC[p] = id
	}

	// Stage 2: per module output, arbitrate among its three ports.
	for m := 0; m < 2; m++ {
		for o := 0; o < numOutsPerMod; o++ {
			var reqs uint64
			for i := 0; i < 3; i++ {
				if r.nomOut[m*3+i] == o {
					reqs |= 1 << uint(i)
				}
			}
			w := r.outArb[m][o].GrantMask(reqs)
			if w < 0 {
				continue
			}
			r.act.SAGrants++
			r.traverse(m, o, r.nomVC[m*3+w], cycle)
		}
	}
}

// countContention maps module outputs to Figure 3's row/column split.
func (r *Router) countContention(module, slot, n int) {
	contended := n > 1
	c := 0
	if contended {
		c = n
	}
	if module == 0 && slot != outToY {
		r.cont.RowRequests += int64(n)
		r.cont.RowFailures += int64(c)
	} else if module == 1 && slot != outEject {
		r.cont.ColRequests += int64(n)
		r.cont.ColFailures += int64(c)
	}
}

// traverse moves a winning flit through its module's crossbar: onto the
// external link, into the internal transfer channel (the concatenated
// traversal), or to the PE.
func (r *Router) traverse(module, slot, vcID int, cycle int64) {
	vc := r.vcs[vcID]
	outVC, nextOut, ejectNext, feeder := vc.OutVC(), vc.NextOut(), vc.EjectNext(), vc.Feeder()
	outPort := vc.OutPort()
	vc.MarkStreamed()
	f := vc.Pop()
	r.act.BufferReads++
	r.act.CrossbarTraversals++
	if feeder.IsCardinal() && r.in[feeder] != nil {
		r.in[feeder].Credit.Write(vcID)
	}
	if portOfVC(vcID) == portFromX {
		// The flit leaves an internal transfer channel: return its credit
		// to the X-module side.
		r.transferBook.ReturnCredit(vcID)
	}

	if module == 0 && slot == outToY {
		// Concatenated traversal: the flit lands in a Y-module channel of
		// this same router, route state intact, and re-arbitrates there.
		r.transferBook.Send(outVC, f.Type.IsTail())
		f.ReadyAt = cycle + 1
		target := r.vcs[outVC]
		target.PushFrom(f, topology.Local)
		r.act.BufferWrites++
		return
	}
	if module == 1 && slot == outEject {
		// One extra cycle models the crossbar-to-PE interface latch, as in
		// the generic router.
		r.act.Ejections++
		r.sink(f, cycle+1)
		return
	}

	f.OutPort = nextOut
	if ejectNext {
		f.VC = -1
	} else {
		f.VC = outVC
		r.books[outPort].Send(outVC, f.Type.IsTail())
	}
	f.ReadyAt = 0
	r.act.LinkFlits++
	r.act.LinkFlitsByDir[outPort]++
	r.out[outPort].Flit.Write(f)
}
