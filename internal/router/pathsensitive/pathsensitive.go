// Package pathsensitive implements the paper's second baseline: the
// Path-Sensitive router of Kim et al. (DAC 2005). Arriving flits are
// grouped into four quadrant path sets (NE, NW, SE, SW) by the position of
// their destination relative to the router; each set holds three VCs of
// 5-flit buffers (60 flits total) and is wired to only its two productive
// outputs through a decomposed 4x4 crossbar with half the connections of a
// full crossbar. The router uses look-ahead routing and early ejection
// like RoCo, but its switch allocation has chained dependencies between
// the quadrant sets (each set nominates a single candidate that may target
// either of its outputs), which is why its non-blocking probability is
// 0.125 against RoCo's 0.25 (paper Table 2).
//
// Deadlock freedom is structural: all minimal moves of a packet stay
// within one quadrant, and quadrant moves are monotone in x+y (or x-y), so
// every channel dependency chain strictly advances across the mesh — no
// cycles, under all three routing algorithms.
package pathsensitive

import (
	"math/bits"

	"github.com/rocosim/roco/internal/arbiter"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

const (
	// VCsPerSet is the number of VCs per quadrant path set.
	VCsPerSet = 3
	// BufferDepth is the per-VC depth: 4 sets x 3 VCs x 5 flits = 60.
	BufferDepth = 5
	// NumVCs is the router-wide VC namespace.
	NumVCs = 4 * VCsPerSet

	numSets = 4
)

// setOfVC returns the quadrant path set owning VC id.
func setOfVC(id int) routing.Quadrant { return routing.Quadrant(id / VCsPerSet) }

// groupFor returns the VC group within a quadrant set for an arrival side:
// each set's three VCs hold "flits from possible directions from the
// previous router" (DAC'05) — one group per incoming link of the quadrant
// plus one for local injection. The injection group being dedicated keeps
// transit traffic from starving the PE.
func groupFor(q routing.Quadrant, from topology.Direction) int {
	outs := q.Outputs()
	switch from {
	case outs[0].Opposite():
		return 0
	case outs[1].Opposite():
		return 1
	default:
		return 2 // local injection
	}
}

// Router is the Path-Sensitive baseline.
type Router struct {
	router.Recovery

	id     int
	engine *router.RouteEngine
	sink   router.Sink

	in        [5]*router.Conn
	out       [5]*router.Conn
	books     [5]*router.OutVCBook
	neighbors [5]router.Router

	vcs [NumVCs]*router.VC

	setArb [numSets]*arbiter.RoundRobin // SA stage 1: one 3:1 arbiter per set
	outArb [5]*arbiter.RoundRobin       // SA stage 2: 2:1 per output
	vaArb  [5][]arbiter.RoundRobin      // per (output, downstream vc); value slab

	injVC int

	dead bool
	// noFastPath disables Tick's dormant-router early return (reference
	// kernel mode).
	noFastPath bool
	act        router.Activity
	cont       router.Contention

	// Per-cycle request scratch as bitmaps over the router-wide VC ids:
	// vaFailed marks failed VA requesters (speculative SA), targReq[out][c]
	// collects the requesters of downstream channel c through output out,
	// targUsed[out] marks the c with requesters, and vaNext records each
	// requester's look-ahead route.
	vaFailed uint64
	targReq  [5][NumVCs]uint64
	targUsed [5]uint16
	vaNext   [NumVCs]topology.Direction

	setReqOut [numSets]topology.Direction
	setReqVC  [numSets]int
}

// New returns a Path-Sensitive router for the given node.
func New(id int, engine *router.RouteEngine) *Router {
	r := &Router{id: id, engine: engine, injVC: -1}
	for v := 0; v < NumVCs; v++ {
		r.vcs[v] = engine.NewVC(v, BufferDepth)
	}
	for s := 0; s < numSets; s++ {
		r.setArb[s] = arbiter.NewRoundRobin(VCsPerSet)
	}
	for _, d := range topology.CardinalDirections {
		r.outArb[d] = arbiter.NewRoundRobin(numSets)
		r.vaArb[d] = arbiter.NewRoundRobinSlice(NumVCs, NumVCs)
	}
	r.InitRecovery(id, r.vcs[:], r.grantTarget, r.abortCleanup)
	r.SetFeederProbe(func(d topology.Direction, pkt uint64) bool {
		return d.IsCardinal() && r.in[d] != nil && r.in[d].Flit.Carries(pkt)
	})
	return r
}

// grantTarget resolves a VC index to its front packet's grant target.
func (r *Router) grantTarget(i int) (router.GrantRef, bool) {
	out := r.vcs[i].OutPort()
	if !out.IsCardinal() {
		return router.GrantRef{}, false
	}
	return router.GrantRef{Book: r.books[out], Claimant: r.neighbors[out], Side: out.Opposite()}, true
}

// abortCleanup releases the injection channel if the aborted packet was
// the one being injected.
func (r *Router) abortCleanup(i int) {
	if r.injVC == i {
		r.injVC = -1
	}
}

// ID returns the node this router serves.
func (r *Router) ID() int { return r.id }

// AttachInput wires an arriving link.
func (r *Router) AttachInput(d topology.Direction, c *router.Conn) { r.in[d] = c }

// AttachOutput wires a departing link and sizes its credit book.
func (r *Router) AttachOutput(d topology.Direction, c *router.Conn, depths []int) {
	r.out[d] = c
	r.books[d] = router.NewOutVCBook(len(depths), BufferDepth)
	for vc, depth := range depths {
		if depth != BufferDepth {
			r.books[d].SetDepth(vc, depth)
		}
	}
}

// SetNeighbor records the router reached through output d.
func (r *Router) SetNeighbor(d topology.Direction, n router.Router) { r.neighbors[d] = n }

// SetSink installs the PE delivery callback.
func (r *Router) SetSink(s router.Sink) { r.sink = s }

// Activity returns the per-component event counters.
func (r *Router) Activity() *router.Activity { return &r.act }

// Contention returns the switch-conflict tallies.
func (r *Router) Contention() *router.Contention { return &r.cont }

// ApplyFault blocks the entire node: like the generic router, the
// path-sensitive design has no independent modules to degrade into (paper
// Section 5.4 treats both baselines this way). Applied live, resident
// traffic is condemned and drains as drops.
func (r *Router) ApplyFault(fault.Fault) {
	r.NoteFault()
	r.dead = true
	for _, vc := range r.vcs {
		vc.Condemn()
	}
}

// RefreshOutput re-propagates the downstream input-VC depths into output
// d's credit book after a runtime fault changed them.
func (r *Router) RefreshOutput(d topology.Direction, depths []int) {
	b := r.books[d]
	if b == nil {
		return
	}
	for vc, depth := range depths {
		b.SetDepth(vc, depth)
	}
}

// CanServe reports whether traffic entering on from and leaving through
// out can be served; the router is all-or-nothing, except that a severed
// die-to-die port denies only the traffic crossing it.
func (r *Router) CanServe(from, out topology.Direction) bool {
	return !r.dead && !r.Severed(from) && !r.Severed(out)
}

// CongestionCost estimates pressure on output out.
func (r *Router) CongestionCost(out topology.Direction) float64 {
	b := r.books[out]
	if b == nil {
		return 0
	}
	capacity := b.Size() * BufferDepth
	return float64(capacity-b.FreeSlots()) / float64(capacity)
}

// NumInputVCs returns the router-wide VC namespace size.
func (r *Router) NumInputVCs(topology.Direction) int { return NumVCs }

// InputVCDepth returns the usable depth of VC vc.
func (r *Router) InputVCDepth(from topology.Direction, vc int) int {
	if r.dead || r.Severed(from) {
		return 0
	}
	return r.vcs[vc].Capacity()
}

// InputVCClaimable reports whether VC vc can take a new packet arriving
// over link from.
func (r *Router) InputVCClaimable(from topology.Direction, vc int) bool {
	return !r.dead && !r.Severed(from) && r.vcs[vc].Claimable(from)
}

// ClaimableMask returns every claimable VC as a bitmap over the
// router-wide id namespace (any arriving link can feed any quadrant set).
func (r *Router) ClaimableMask(from topology.Direction) uint64 {
	if r.dead || r.Severed(from) {
		return 0
	}
	return r.Alloc().Claimable(from)
}

// ClaimInputVC reserves VC vc for an inbound packet.
func (r *Router) ClaimInputVC(from topology.Direction, vc int) bool {
	if !r.InputVCClaimable(from, vc) {
		return false
	}
	r.vcs[vc].Claim(from)
	return true
}

// ReleaseInputVC returns a claim whose packet will never arrive.
func (r *Router) ReleaseInputVC(from topology.Direction, vc int) {
	if r.Severed(from) {
		// SeverPort already purged unbacked claims on the dead interface;
		// honoring the upstream's withdrawal would double-release.
		return
	}
	r.vcs[vc].ReleaseClaim()
}

// Quiescent reports whether no flit is buffered anywhere in the router.
func (r *Router) Quiescent() bool {
	for _, vc := range r.vcs {
		if vc.Len() > 0 {
			return false
		}
	}
	return true
}

// Idle reports whether a tick with empty input pipes would be a pure
// no-op: every VC is dormant — no flits buffered, no packet state
// resident. Bare upstream claims do not block idleness, since no tick
// phase acts on a claim alone. (The loopback-delivery sentinel
// injVC == -2 needs no check — Tick never reads injVC, and loopback
// progress comes from TryInject, which wakes the node on its own.)
func (r *Router) Idle() bool {
	for _, vc := range r.vcs {
		if !vc.Dormant() {
			return false
		}
	}
	return true
}

// DisableTickFastPath makes Tick run every phase even when the router is
// Idle; the reference kernel sets it so the ungated baseline executes the
// full tick-everything cost.
func (r *Router) DisableTickFastPath() { r.noFastPath = true }

// SkipCycles replays n idle ticks: only the activity cycle counter moves
// (idle round-robin arbiters hold still), and only on a live node.
func (r *Router) SkipCycles(n int64) {
	if !r.dead {
		r.act.Cycles += n
	}
}

// packetQuadrant returns the path set a packet travels in: the quadrant of
// its destination relative to its source, fixed for the whole journey.
func (r *Router) packetQuadrant(f *flit.Flit) routing.Quadrant {
	topo := r.engine.Topology()
	return routing.PacketQuadrant(topo.Coord(f.Src), topo.Coord(f.Dst))
}

// TryInject offers the next flit of the PE's current packet.
func (r *Router) TryInject(f *flit.Flit, cycle int64) bool {
	if r.dead {
		return false
	}
	if f.Type.IsHead() && f.OutPort == topology.Local {
		r.sink(f, cycle)
		if !f.Type.IsTail() {
			r.injVC = -2
		}
		return true
	}
	if r.injVC == -2 {
		r.sink(f, cycle)
		if f.Type.IsTail() {
			r.injVC = -1
		}
		return true
	}
	if f.Type.IsHead() {
		if r.injVC >= 0 {
			return false
		}
		q := r.packetQuadrant(f)
		{
			id := int(q)*VCsPerSet + groupFor(q, topology.Local)
			vc := r.vcs[id]
			if vc.Claimable(topology.Local) && vc.HasRoom() {
				f.ReadyAt = cycle + 1
				vc.Claim(topology.Local)
				vc.PushFrom(f, topology.Local)
				r.act.BufferWrites++
				if !f.Type.IsTail() {
					r.injVC = id
				}
				return true
			}
		}
		return false
	}
	if r.injVC < 0 {
		return false
	}
	vc := r.vcs[r.injVC]
	if !vc.HasRoom() {
		return false
	}
	f.ReadyAt = cycle + 1
	vc.PushFrom(f, topology.Local)
	r.act.BufferWrites++
	if f.Type.IsTail() {
		r.injVC = -1
	}
	return true
}

// Tick advances the router one cycle.
func (r *Router) Tick(cycle int64) {
	if r.dead {
		r.tickDead(cycle)
		return
	}
	r.act.Cycles++

	for _, d := range topology.CardinalDirections {
		if r.out[d] == nil {
			continue
		}
		for _, vc := range r.out[d].Credit.Read() {
			r.books[d].ReturnCredit(vc)
		}
	}

	for _, d := range topology.CardinalDirections {
		if r.in[d] == nil {
			continue
		}
		f := r.in[d].Flit.Read()
		if f == nil {
			continue
		}
		if r.Severed(d) {
			// The die-to-die interface is dead in both directions: drop the
			// arrival and return no credit (the upstream port is severed too).
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			continue
		}
		f.Hops++
		if f.OutPort == topology.Local {
			r.act.EarlyEjections++
			r.sink(f, cycle)
			continue
		}
		f.ReadyAt = cycle + 1 + f.Penalty
		if f.Penalty > 0 {
			r.act.RouteComputations++
			f.Penalty = 0
		}
		if f.Rec != nil {
			f.Rec.Visit(r.id, cycle, trace.Arrived)
		}
		r.vcs[f.VC].PushFrom(f, d)
		r.act.BufferWrites++
	}

	// Fast path: with every channel dormant the phases below are all
	// no-ops (the same argument that makes SkipCycles sound), so a
	// router woken only to absorb returning credits skips them.
	if !r.noFastPath && r.Idle() {
		return
	}

	if r.noFastPath || !r.RecoveryQuiet() {
		r.SweepBroken(cycle, false)
		r.drainDoomed(cycle)
		r.ReapOrphans(cycle)
	}
	r.allocateVCs(cycle)
	r.allocateSwitch(cycle)
}

// tickDead is the Tick of a faulted node: arrivals already in flight are
// dropped (with their credits returned so upstream books stay balanced),
// condemned resident traffic drains as drops, and returning credits are
// discarded.
func (r *Router) tickDead(cycle int64) {
	for d := 0; d < 5; d++ {
		if r.in[d] != nil {
			if f := r.in[d].Flit.Read(); f != nil {
				r.act.DroppedFlits++
				r.DropFlit(f, cycle, trace.DropDeadNode)
				if f.VC >= 0 {
					r.in[d].Credit.Write(f.VC)
				}
			}
		}
		if r.out[d] != nil {
			r.out[d].Credit.Read()
		}
	}
	r.drainDoomed(cycle)
	r.ReapOrphans(cycle)
}

// drainDoomed discards flits of packets whose route is permanently
// fault-blocked, returning their credits upstream.
func (r *Router) drainDoomed(cycle int64) {
	for _, vc := range r.vcs {
		for {
			feeder := vc.Feeder()
			f := vc.DrainDoomed()
			if f == nil {
				break
			}
			r.NoteStragglerDrain(vc)
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			if feeder.IsCardinal() && r.in[feeder] != nil {
				r.in[feeder].Credit.Write(vc.Index)
			}
			if f.Type.IsTail() {
				break
			}
		}
	}
}

// allocateVCs runs the separable VC allocation pass: each head flit
// requests a channel in the downstream router's quadrant set for its
// destination. Requesters come off the needVA bitmap; the single
// deterministic candidate is checked with one bit test against the cached
// alive-and-claimable mask.
func (r *Router) allocateVCs(cycle int64) {
	r.vaFailed = 0
	need := r.Alloc().NeedVA()
	if need == 0 {
		return
	}
	// Each output's downstream claimable set is fetched once per cycle;
	// nothing claims during request building, so the cached mask is exact,
	// and the grant phase still re-checks through ClaimInputVC.
	var nbrClaim [5]uint64
	var nbrClaimOK [5]bool

	for m := need; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		vc := r.vcs[id]
		if !vc.FrontReady(cycle) {
			continue
		}
		r.act.VAOps++
		if vc.NextOut() == topology.Invalid {
			r.act.RouteComputations++
		}
		out := vc.OutPort()
		nbr := r.neighbors[out]
		book := r.books[out]
		if nbr == nil || book == nil {
			continue
		}
		downstream, ok := r.engine.Topology().Neighbor(r.id, out)
		if !ok {
			continue
		}
		from := out.Opposite()
		head := vc.Front()
		nextOut := r.engine.RouteAt(downstream, from, head)
		vc.SetNextOut(nextOut)
		if nextOut == topology.Local {
			if nbr.CanServe(from, topology.Local) {
				vc.GrantEject()
			} else {
				vc.Doom()
			}
			continue
		}
		if !nbr.CanServe(from, nextOut) {
			// Static fault handling: discard rather than clog.
			vc.Doom()
			continue
		}
		if !nbrClaimOK[out] {
			nbrClaimOK[out] = true
			nbrClaim[out] = nbr.ClaimableMask(from)
		}
		q := r.packetQuadrant(head)
		c := int(q)*VCsPerSet + groupFor(q, from)
		if book.AliveMask()&nbrClaim[out]&(1<<uint(c)) != 0 {
			r.targReq[out][c] |= 1 << uint(id)
			r.targUsed[out] |= 1 << uint(c)
			r.vaNext[id] = nextOut
		} else {
			r.vaFailed |= 1 << uint(id)
		}
	}

	for _, out := range topology.CardinalDirections {
		used := r.targUsed[out]
		if used == 0 {
			continue
		}
		r.targUsed[out] = 0
		for uc := used; uc != 0; uc &= uc - 1 {
			c := bits.TrailingZeros16(uc)
			reqs := r.targReq[out][c]
			r.targReq[out][c] = 0
			w := r.vaArb[out][c].GrantMask(reqs)
			r.vaFailed |= reqs &^ (1 << uint(w))
			nbr := r.neighbors[out]
			if nbr == nil || !nbr.ClaimInputVC(out.Opposite(), c) {
				r.vaFailed |= 1 << uint(w)
				continue
			}
			r.books[out].EnqueueGrant(c, w)
			r.vcs[w].GrantRoute(c, r.vaNext[w])
			r.act.VAGrants++
		}
	}
}

// allocateSwitch runs the chained two-stage allocation over the decomposed
// crossbar: stage 1 nominates one VC per quadrant set, stage 2 arbitrates
// each output between its two adjacent sets.
func (r *Router) allocateSwitch(cycle int64) {
	saReady := r.Alloc().SAReady()
	if saReady == 0 && r.vaFailed == 0 {
		return
	}

	// Figure 3 contention: a path set requests an output when it holds a
	// switch-ready flit for it; the request is contended when the other
	// adjacent set wants the same output this cycle. readyOK (switch-ready
	// with credits) is computed once and reused by stage 1, which used to
	// evaluate the same predicates a second time.
	var readyOK uint64
	var desire [numSets][5]bool
	for m := saReady; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		vc := r.vcs[id]
		if !vc.FrontReady(cycle) {
			continue
		}
		if r.creditOK(vc) {
			readyOK |= 1 << uint(id)
			desire[id/VCsPerSet][vc.OutPort()] = true
		} else {
			r.act.CreditStalls++
		}
	}
	for _, out := range topology.CardinalDirections {
		n := 0
		for s := 0; s < numSets; s++ {
			if desire[s][out] {
				n++
			}
		}
		if n > 0 {
			r.countContention(out, n, n > 1)
		}
	}

	for s := 0; s < numSets; s++ {
		r.setReqOut[s] = topology.Invalid
		r.setReqVC[s] = -1
		ready := (readyOK >> uint(s*VCsPerSet)) & (1<<VCsPerSet - 1)
		// Heads whose VA failed are charged as low-priority speculative
		// arbitration work.
		spec := (r.vaFailed >> uint(s*VCsPerSet)) & (1<<VCsPerSet - 1) &^ ready
		r.act.SAOps += int64(bits.OnesCount64(ready) + bits.OnesCount64(spec))
		if ready == 0 {
			continue
		}
		w := r.setArb[s].GrantMask(ready)
		r.setReqOut[s] = r.vcs[s*VCsPerSet+w].OutPort()
		r.setReqVC[s] = s*VCsPerSet + w
	}

	for _, out := range topology.CardinalDirections {
		var reqs uint64
		for s := 0; s < numSets; s++ {
			if r.setReqOut[s] == out {
				reqs |= 1 << uint(s)
			}
		}
		w := r.outArb[out].GrantMask(reqs)
		if w < 0 {
			continue
		}
		r.act.SAGrants++
		r.traverse(out, r.setReqVC[w], cycle)
	}
}

// creditOK reports whether the front flit may stream downstream: buffer
// space exists and the channel's oldest grant belongs to this VC.
func (r *Router) creditOK(vc *router.VC) bool {
	if vc.EjectNext() {
		return true
	}
	book := r.books[vc.OutPort()]
	return book.Credits(vc.OutVC()) > 0 && book.MayStream(vc.OutVC(), vc.Index)
}

// countContention tallies n requests for output out, all of them contended
// when contended is true (Figure 3).
func (r *Router) countContention(out topology.Direction, n int, contended bool) {
	c := 0
	if contended {
		c = n
	}
	switch {
	case out.IsX():
		r.cont.RowRequests += int64(n)
		r.cont.RowFailures += int64(c)
	case out.IsY():
		r.cont.ColRequests += int64(n)
		r.cont.ColFailures += int64(c)
	}
}

// traverse moves a winning flit through the decomposed crossbar.
func (r *Router) traverse(out topology.Direction, vcID int, cycle int64) {
	vc := r.vcs[vcID]
	outVC, nextOut, ejectNext, feeder := vc.OutVC(), vc.NextOut(), vc.EjectNext(), vc.Feeder()
	vc.MarkStreamed()
	f := vc.Pop()
	r.act.BufferReads++
	r.act.CrossbarTraversals++
	if feeder.IsCardinal() && r.in[feeder] != nil {
		r.in[feeder].Credit.Write(vcID)
	}
	f.OutPort = nextOut
	if ejectNext {
		f.VC = -1
	} else {
		f.VC = outVC
		r.books[out].Send(outVC, f.Type.IsTail())
	}
	f.ReadyAt = 0
	r.act.LinkFlits++
	r.act.LinkFlitsByDir[out]++
	r.out[out].Flit.Write(f)
}
