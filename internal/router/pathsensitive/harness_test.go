package pathsensitive

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// harness wires a mesh of path-sensitive routers with real pipes, driven
// manually for microarchitecture assertions.
type harness struct {
	topo    *topology.Mesh
	engine  *router.RouteEngine
	routers []*Router
	conns   []*router.Conn
	sunk    int
	cycle   int64
}

func newHarness(t *testing.T, w, h int, alg routing.Algorithm) *harness {
	t.Helper()
	hn := &harness{topo: topology.NewMesh(w, h)}
	hn.routers = make([]*Router, hn.topo.Nodes())
	hn.engine = router.NewRouteEngine(hn.topo, alg, func(id int) router.Router { return hn.routers[id] })
	for id := range hn.routers {
		hn.routers[id] = New(id, hn.engine)
	}
	for id := range hn.routers {
		for _, d := range topology.CardinalDirections {
			nb, ok := hn.topo.Neighbor(id, d)
			if !ok {
				continue
			}
			conn := &router.Conn{}
			hn.conns = append(hn.conns, conn)
			down := hn.routers[nb]
			depths := make([]int, down.NumInputVCs(d.Opposite()))
			for vc := range depths {
				depths[vc] = down.InputVCDepth(d.Opposite(), vc)
			}
			hn.routers[id].AttachOutput(d, conn, depths)
			hn.routers[id].SetNeighbor(d, down)
			down.AttachInput(d.Opposite(), conn)
		}
		hn.routers[id].SetSink(func(f *flit.Flit, cycle int64) { hn.sunk++ })
	}
	return hn
}

func (h *harness) step() {
	for _, r := range h.routers {
		r.Tick(h.cycle)
	}
	for _, c := range h.conns {
		c.Advance()
	}
	h.cycle++
}

func (h *harness) inject(t *testing.T, src, dst, flits int) uint64 {
	t.Helper()
	id := uint64(src*1000 + dst)
	pkt := flit.Packet{ID: id, Src: src, Dst: dst, Flits: flits}
	for _, f := range pkt.Segment() {
		if f.Type.IsHead() {
			f.OutPort = h.engine.FirstHop(src, f)
		}
		for try := 0; !h.routers[src].TryInject(f, h.cycle); try++ {
			if try > 50 {
				t.Fatal("injection starved")
			}
			h.step()
		}
	}
	return id
}

// setHolding returns the quadrant set whose channels hold pkt's head at
// node, or -1.
func (h *harness) setHolding(node int, pktID uint64) routing.Quadrant {
	for id, vc := range h.routers[node].vcs {
		if f := vc.Front(); f != nil && f.PacketID == pktID && f.Type.IsHead() {
			return setOfVC(id)
		}
	}
	return routing.Quadrant(255)
}

func TestPacketStaysInItsQuadrantSet(t *testing.T) {
	// A packet whose destination is north-east of its source must occupy
	// NE-set channels at every router on its path — the organizing
	// invariant of the design (and its deadlock argument).
	h := newHarness(t, 4, 4, routing.XY)
	src := h.topo.ID(topology.Coord{X: 0, Y: 0})
	dst := h.topo.ID(topology.Coord{X: 3, Y: 3})
	pkt := h.inject(t, src, dst, 4)

	for i := 0; i < 300 && h.sunk < 4; i++ {
		for node := range h.routers {
			if q := h.setHolding(node, pkt); q != routing.Quadrant(255) && q != routing.NE {
				t.Fatalf("NE packet observed in the %s set at node %d", q, node)
			}
		}
		h.step()
	}
	if h.sunk < 4 {
		t.Fatal("packet never delivered")
	}
}

func TestEarlyEjectionOnPathSensitive(t *testing.T) {
	h := newHarness(t, 4, 4, routing.XY)
	src := h.topo.ID(topology.Coord{X: 0, Y: 2})
	dst := h.topo.ID(topology.Coord{X: 2, Y: 2})
	h.inject(t, src, dst, 4)
	for i := 0; i < 300 && h.sunk < 4; i++ {
		h.step()
	}
	dstRouter := h.routers[dst]
	if dstRouter.Activity().CrossbarTraversals != 0 {
		t.Errorf("destination crossbar fired %d times; path-sensitive routers early-eject", dstRouter.Activity().CrossbarTraversals)
	}
	if dstRouter.Activity().EarlyEjections != 4 {
		t.Errorf("early ejections = %d, want 4", dstRouter.Activity().EarlyEjections)
	}
}

func TestChainedAllocationOnePerSetPerCycle(t *testing.T) {
	// The decomposed crossbar's defining restriction: a set moves at most
	// one flit per cycle even when both its outputs have traffic.
	h := newHarness(t, 4, 4, routing.XY)
	src := h.topo.ID(topology.Coord{X: 0, Y: 0})
	dstE := h.topo.ID(topology.Coord{X: 3, Y: 0}) // pure-east: NE or SE by parity
	dstN := h.topo.ID(topology.Coord{X: 0, Y: 3}) // pure-north: NE or NW by parity
	h.inject(t, src, dstE, 4)
	h.inject(t, src, dstN, 4)

	srcRouter := h.routers[src]
	prev := srcRouter.Activity().CrossbarTraversals
	for i := 0; i < 300 && h.sunk < 8; i++ {
		h.step()
		cur := srcRouter.Activity().CrossbarTraversals
		if cur-prev > 2 {
			t.Fatalf("source router moved %d flits in one cycle; 4 sets allow at most 4 (2 active here)", cur-prev)
		}
		prev = cur
	}
	if h.sunk < 8 {
		t.Fatal("packets never delivered")
	}
}
