package pathsensitive

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

func newTestRouter(alg routing.Algorithm) *Router {
	engine := router.NewRouteEngine(topology.NewMesh(8, 8), alg, nil)
	return New(9, engine) // (1,1)
}

func TestGroupForCoversAllArrivals(t *testing.T) {
	for q := routing.Quadrant(0); q < 4; q++ {
		outs := q.Outputs()
		g0 := groupFor(q, outs[0].Opposite())
		g1 := groupFor(q, outs[1].Opposite())
		g2 := groupFor(q, topology.Local)
		if g0 != 0 || g1 != 1 || g2 != 2 {
			t.Errorf("%s groups = %d,%d,%d", q, g0, g1, g2)
		}
	}
}

func TestSetOfVC(t *testing.T) {
	if setOfVC(0) != routing.NE || setOfVC(5) != routing.NW || setOfVC(11) != routing.SW {
		t.Error("set layout wrong")
	}
}

func TestAnyFaultBlocksNode(t *testing.T) {
	for _, comp := range fault.AllComponents() {
		r := newTestRouter(routing.XY)
		r.ApplyFault(fault.Fault{Node: 9, Component: comp})
		if r.CanServe(topology.East, topology.West) {
			t.Errorf("%s fault should block the path-sensitive router", comp)
		}
		if r.InputVCClaimable(topology.East, 0) {
			t.Errorf("%s: dead router's channels must not be claimable", comp)
		}
		if r.InputVCDepth(topology.East, 0) != 0 {
			t.Errorf("%s: dead router should expose zero-depth channels", comp)
		}
	}
}

func TestInjectionUsesDedicatedGroup(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.SetSink(func(*flit.Flit, int64) {})
	head := flit.Packet{ID: 1, Src: 9, Dst: 27, Flits: 1}.Segment()[0] // 27=(3,3): NE of (1,1)
	head.OutPort = topology.East
	if !r.TryInject(head, 0) {
		t.Fatal("injection failed")
	}
	// The flit must sit in the NE set's injection group (group 2).
	id := int(routing.NE)*VCsPerSet + 2
	if r.vcs[id].Len() != 1 {
		t.Errorf("injected flit not in the NE injection group (vc %d)", id)
	}
}

func TestLoopbackInjection(t *testing.T) {
	r := newTestRouter(routing.XY)
	n := 0
	r.SetSink(func(*flit.Flit, int64) { n++ })
	fl := flit.Packet{ID: 1, Src: 9, Dst: 9, Flits: 4}.Segment()
	for _, f := range fl {
		f.OutPort = topology.Local
		if !r.TryInject(f, 0) {
			t.Fatal("loopback rejected")
		}
	}
	if n != 4 || !r.Quiescent() {
		t.Fatalf("loopback delivered %d flits, quiescent=%v", n, r.Quiescent())
	}
}

func TestNamespaceSize(t *testing.T) {
	r := newTestRouter(routing.XY)
	if r.NumInputVCs(topology.East) != NumVCs || NumVCs != 12 {
		t.Error("path-sensitive namespace should be 12 channels")
	}
}
