package pathsensitive

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/topology"
)

// SaveState serializes the router's mutable state (the per-tick scratch —
// vaFailed, request vectors, byTarget, set nominations — never crosses a
// cycle boundary and is skipped).
func (r *Router) SaveState(e *snapshot.Encoder, c *flit.Codec) {
	for _, vc := range r.vcs {
		vc.SaveState(e, c)
	}
	for d := 0; d < 5; d++ {
		if r.books[d] == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		r.books[d].SaveState(e)
	}
	for s := 0; s < numSets; s++ {
		r.setArb[s].SaveState(e)
	}
	for _, d := range topology.CardinalDirections {
		r.outArb[d].SaveState(e)
		for i := range r.vaArb[d] {
			r.vaArb[d][i].SaveState(e)
		}
	}
	e.Int(r.injVC)
	e.Bool(r.dead)
	r.act.SaveState(e)
	r.cont.SaveState(e)
	r.SaveRecoveryState(e)
}

// LoadState restores state written by SaveState into a freshly built
// router of the same configuration.
func (r *Router) LoadState(d *snapshot.Decoder, c *flit.Codec) {
	for _, vc := range r.vcs {
		vc.LoadState(d, c)
		if d.Err() != nil {
			return
		}
	}
	for dir := 0; dir < 5; dir++ {
		present := d.Bool()
		if d.Err() != nil {
			return
		}
		if present != (r.books[dir] != nil) {
			d.Corruptf("path-sensitive router %d: output book %d presence mismatch", r.id, dir)
			return
		}
		if present {
			r.books[dir].LoadState(d)
		}
	}
	for s := 0; s < numSets; s++ {
		r.setArb[s].LoadState(d)
	}
	for _, dir := range topology.CardinalDirections {
		r.outArb[dir].LoadState(d)
		for i := range r.vaArb[dir] {
			r.vaArb[dir][i].LoadState(d)
		}
	}
	r.injVC = d.Int()
	r.dead = d.Bool()
	r.act.LoadState(d)
	r.cont.LoadState(d)
	r.LoadRecoveryState(d)
	if d.Err() == nil && (r.injVC < -1 || r.injVC >= NumVCs) {
		d.Corruptf("path-sensitive router %d: injection vc %d out of range", r.id, r.injVC)
	}
}
