package router

import (
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// Sink receives flits delivered to a node's processing element. Delivery of
// a tail flit completes a packet.
type Sink func(f *flit.Flit, cycle int64)

// DropSink receives flits a router discards, tagged with the distinct cause
// (broken in flight vs drained by a dead node; the network adds
// unroutable-at-source drops itself, before injection).
type DropSink func(f *flit.Flit, cycle int64, reason trace.DropReason)

// Router is the contract every router microarchitecture implements. The
// network fabric wires routers together with Conn pipes, drives one Tick
// per cycle, and injects/ejects traffic through the PE-facing methods.
//
// Within Tick a router (1) drains its input and credit pipes, buffering or
// early-ejecting arrivals, (2) runs its allocation stages (VA and SA, with
// head flits speculating on SA in parallel with VA), and (3) forwards
// switch winners onto its output pipes and returns credits upstream. Pipes
// advance at cycle boundaries, so routers may be ticked in any order.
type Router interface {
	// ID returns the node this router serves.
	ID() int

	// AttachInput wires the link arriving on side d (flits in, credits
	// out). The network attaches only the links that exist; mesh edge
	// routers keep nil on the missing sides.
	AttachInput(d topology.Direction, c *Conn)
	// AttachOutput wires the link departing on side d (flits out, credits
	// in). depths lists the usable buffer depth of each downstream input
	// VC reachable through this link (indexed by the VC namespace the
	// downstream router interprets flit.VC in); the router sizes its
	// credit book from it. The network computes depths from the
	// downstream router's NumInputVCs/InputVCDepth after faults are
	// installed, so buffer-fault capacity reductions are reflected.
	AttachOutput(d topology.Direction, c *Conn, depths []int)
	// SetNeighbor records the router reached through output d. Routers use
	// it for the neighbor handshake: fault capability (CanServe) and
	// congestion (CongestionCost) checks during look-ahead routing and VA.
	SetNeighbor(d topology.Direction, n Router)
	// SetSink installs the PE-delivery callback.
	SetSink(s Sink)

	// Tick advances the router one cycle.
	Tick(cycle int64)

	// TryInject offers the next flit of the PE's current packet. The head
	// flit carries OutPort (this router's output for it, or Local for a
	// self-addressed packet) already computed by the PE. The router accepts
	// it only if injection buffering and VC allocation permit; acceptance
	// of a head implies the router owns the packet's injection VC until its
	// tail is accepted. Returns false when the flit must be retried next
	// cycle.
	TryInject(f *flit.Flit, cycle int64) bool

	// ApplyFault installs a permanent fault, either before the simulation
	// starts or live mid-run (the network's fault schedule). Baseline
	// routers respond to any fault by blocking the whole node; the RoCo
	// router applies its hardware-recycling reaction per component. A live
	// installation additionally condemns the traffic resident in the failed
	// datapath so in-flight wormholes drain (as drops) instead of wedging;
	// the network then re-propagates the neighbor handshake via
	// RefreshOutput.
	ApplyFault(flt fault.Fault)
	// SeverPort permanently cuts port d in both directions (a die-to-die
	// interface fault on a multi-chip topology). The router dooms resident
	// packets routed through the port, reports zero depths for it, denies
	// CanServe through it, and drops anything still arriving on it; the
	// network severs both endpoints of every boundary link of the struck
	// interface and then re-propagates the neighbor handshake. Implemented
	// by the embedded Recovery.
	SeverPort(d topology.Direction)
	// Severed reports whether port d was cut by SeverPort.
	Severed(d topology.Direction) bool
	// SetReapHorizon stretches the orphan-reap age to cover links whose
	// in-flight horizon exceeds the on-die single cycle (multi-cycle
	// die-to-die pipes); maxLinkDelay is the slowest link's per-flit
	// horizon. Implemented by the embedded Recovery.
	SetReapHorizon(maxLinkDelay int64)
	// RefreshOutput re-propagates the downstream input-VC depths into the
	// credit book of output d after a runtime fault changed them (the
	// credit half of the neighbor handshake). depths is indexed like
	// AttachOutput's.
	RefreshOutput(d topology.Direction, depths []int)
	// CanServe reports whether a flit entering on side from and leaving
	// through out can currently be served, given installed faults. Local
	// out means ejection. Upstream routers consult it (the paper's
	// handshaking signals) during look-ahead routing and VC allocation.
	CanServe(from, out topology.Direction) bool
	// CongestionCost estimates queueing pressure for traffic leaving this
	// router through out; look-ahead adaptive routing at the upstream node
	// uses it to rank productive directions. Higher is worse.
	CongestionCost(out topology.Direction) float64
	// NumInputVCs returns the size of the VC namespace a link arriving on
	// side from addresses, and InputVCDepth the usable depth of each such
	// VC (0 for a dead channel), letting the network propagate
	// buffer-fault capacity reductions into the upstream credit book.
	NumInputVCs(from topology.Direction) int
	InputVCDepth(from topology.Direction, vc int) int

	// InputVCClaimable reports whether input VC vc (in the namespace of
	// side from) is free for a new packet, and ClaimInputVC reserves it.
	// Upstream VA uses the pair during allocation: guided flit queuing
	// lets several upstream links feed one channel, so the reservation
	// must live here at the owning router. ClaimInputVC returns false if
	// another upstream claimed the channel earlier in the same cycle.
	InputVCClaimable(from topology.Direction, vc int) bool
	// ClaimableMask returns every claimable input VC of side from at once,
	// as a bitmap over the same namespace InputVCClaimable indexes (bit vc
	// set iff InputVCClaimable(from, vc)). Upstream VA fetches it once per
	// output per cycle and ANDs it into candidate masks instead of probing
	// channel by channel. Claims taken after the fetch are the caller's
	// concern — the grant phase still goes through ClaimInputVC, which
	// re-checks.
	ClaimableMask(from topology.Direction) uint64
	ClaimInputVC(from topology.Direction, vc int) bool
	// ReleaseInputVC returns a claim previously taken with ClaimInputVC
	// whose packet will never arrive: fault recovery withdraws the
	// upstream grant before any flit streamed.
	ReleaseInputVC(from topology.Direction, vc int)

	// SetDropSink installs the network's drop-accounting callback; every
	// flit a router discards (doomed wormholes, dead-node drains) is
	// reported exactly once, with its reason, so flit conservation stays
	// auditable and loss is attributable.
	SetDropSink(s DropSink)
	// SetBroken shares the network-wide broken-packet registry: packets
	// that lost at least one flit anywhere. Routers sweep it each Tick and
	// doom their resident fragments of broken packets.
	SetBroken(b *BrokenSet)
	// BufferedFlits counts the flits currently buffered in the router's
	// channels (the conservation auditor's in-router term).
	BufferedFlits() int
	// BindHot mirrors the router's channels into the network-wide
	// struct-of-arrays hot-state table (occupancy, class, dormancy). The
	// SoA kernel calls it once per router, in ascending id order, after
	// construction; kernels that never bind pay nothing. Implemented by
	// the embedded Recovery, which already holds the canonical flat
	// channel list in grantee-index order.
	BindHot(hs *HotState)

	// Activity exposes the per-component event counters for the energy
	// model.
	Activity() *Activity
	// VCOccupancy adds the router's currently buffered flits into per,
	// bucketed by each holding channel's path-set class (routing.Turn),
	// and returns the total added. Baseline routers do not assign
	// classes, so their whole occupancy lands in the zero-value bucket
	// (ContinueX); the RoCo router reports the real per-class split.
	// Telemetry samples it at epoch boundaries; it must not mutate
	// router state.
	VCOccupancy(per *[routing.NumClasses]int32) int
	// Contention exposes the switch-conflict tallies for Figure 3.
	Contention() *Contention
	// Quiescent reports whether the router holds no flits (used for drain
	// and deadlock/inactivity detection).
	Quiescent() bool

	// Idle reports whether ticking the router with empty input pipes would
	// be a pure no-op apart from the effects SkipCycles replays: no
	// buffered or claimed VCs, no granted switch state, nothing to sweep.
	// The activity-gated kernel puts Idle routers to sleep.
	Idle() bool
	// SkipCycles replays the state effects of n consecutive idle ticks in
	// O(1): activity cycle counting and any arbitration state that moves
	// even without requests (the RoCo mirror's primary-port toggle). The
	// kernel calls it when waking a slept router so gated and ungated
	// executions stay bit-identical.
	SkipCycles(n int64)
	// DisableTickFastPath makes Tick run every phase even when the router
	// is Idle. The reference kernel sets it on every router so the ungated
	// baseline executes (and benchmarks) the full tick-everything cost;
	// results are identical either way, since the fast path only skips
	// phases that are no-ops on an Idle router.
	DisableTickFastPath()

	// SaveState serializes the router's complete mutable state (channels,
	// credit books, arbiter pointers, fault flags, counters) for a
	// checkpoint, and LoadState restores it into a freshly built router of
	// the same configuration. Both are called only at cycle boundaries,
	// with every kernel worker parked. LoadState reports failures through
	// the decoder's error state, never partially applied panics.
	SaveState(e *snapshot.Encoder, c *flit.Codec)
	LoadState(d *snapshot.Decoder, c *flit.Codec)
}
