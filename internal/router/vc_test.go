package router

import (
	"testing"
	"testing/quick"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/topology"
)

func makePacketFlits(id uint64, n int, out topology.Direction) []*flit.Flit {
	fl := flit.Packet{ID: id, Src: 0, Dst: 1, Flits: n}.Segment()
	for _, f := range fl {
		f.OutPort = out
	}
	return fl
}

func TestVCSinglePacketLifecycle(t *testing.T) {
	vc := NewVC(3, 5)
	if vc.Active() || !vc.Idle() {
		t.Fatal("new VC should be idle")
	}
	fl := makePacketFlits(1, 4, topology.East)

	if !vc.Claimable(topology.West) {
		t.Fatal("idle VC should be claimable")
	}
	vc.Claim(topology.West)
	for _, f := range fl {
		vc.PushFrom(f, topology.West)
	}
	if vc.Len() != 4 || !vc.Active() {
		t.Fatalf("len=%d active=%v", vc.Len(), vc.Active())
	}
	if vc.OutPort() != topology.East || vc.Feeder() != topology.West {
		t.Fatalf("front state wrong: out=%s feeder=%s", vc.OutPort(), vc.Feeder())
	}
	if !vc.NeedsVA() {
		t.Fatal("head at front should need VA")
	}
	vc.GrantRoute(7, topology.North)
	if vc.NeedsVA() || vc.OutVC() != 7 || vc.NextOut() != topology.North {
		t.Fatal("grant not recorded")
	}
	for i := 0; i < 4; i++ {
		if !vc.SwitchReady(1) {
			t.Fatalf("flit %d not switch-ready", i)
		}
		vc.Pop()
	}
	if !vc.Idle() {
		t.Fatal("VC should be idle after tail pop")
	}
}

func TestVCBackToBackSameFeeder(t *testing.T) {
	vc := NewVC(0, 8)
	vc.Claim(topology.South)
	if !vc.Claimable(topology.South) {
		t.Fatal("same-feeder second claim should be allowed")
	}
	if vc.Claimable(topology.North) {
		t.Fatal("different-feeder claim must be rejected while occupied")
	}
	vc.Claim(topology.South)

	p1 := makePacketFlits(1, 2, topology.East)
	p2 := makePacketFlits(2, 2, topology.West)
	for _, f := range p1 {
		vc.PushFrom(f, topology.South)
	}
	for _, f := range p2 {
		vc.PushFrom(f, topology.South)
	}
	// Front packet is p1.
	if vc.OutPort() != topology.East {
		t.Fatalf("front packet out = %s, want E", vc.OutPort())
	}
	vc.GrantRoute(1, topology.East)
	vc.Pop() // p1 head
	vc.Pop() // p1 tail -> p2 becomes front
	if vc.OutPort() != topology.West || !vc.NeedsVA() {
		t.Fatalf("after p1 retires, front should be p2 awaiting VA (out=%s)", vc.OutPort())
	}
	vc.Pop()
	vc.Pop()
	if !vc.Idle() {
		t.Fatal("VC should be idle after both packets retire")
	}
	if !vc.Claimable(topology.North) {
		t.Fatal("drained VC should accept any feeder again")
	}
}

func TestVCClaimWindowBound(t *testing.T) {
	vc := NewVC(0, 4)
	for i := 0; i < MaxPacketsPerChannel; i++ {
		if !vc.Claimable(topology.East) {
			t.Fatalf("claim %d should be allowed", i)
		}
		vc.Claim(topology.East)
	}
	if vc.Claimable(topology.East) {
		t.Fatal("claim window exceeded")
	}
}

func TestVCHeadWithoutClaimPanics(t *testing.T) {
	vc := NewVC(0, 4)
	defer func() {
		if recover() == nil {
			t.Error("head push without claim should panic")
		}
	}()
	vc.PushFrom(makePacketFlits(1, 2, topology.East)[0], topology.East)
}

func TestVCOverflowPanics(t *testing.T) {
	vc := NewVC(0, 1)
	vc.Claim(topology.East)
	fl := makePacketFlits(1, 2, topology.East)
	vc.PushFrom(fl[0], topology.East)
	defer func() {
		if recover() == nil {
			t.Error("overflow should panic")
		}
	}()
	vc.PushFrom(fl[1], topology.East)
}

func TestVCFaultyCapacityAndPenalty(t *testing.T) {
	vc := NewVC(0, 5)
	vc.Faulty = true
	vc.FaultPenalty = 2
	if vc.Capacity() != 1 {
		t.Fatalf("faulty VC capacity = %d, want 1 (bypass latch)", vc.Capacity())
	}
	vc.Claim(topology.East)
	f := makePacketFlits(1, 1, topology.East)[0]
	f.ReadyAt = 10
	vc.PushFrom(f, topology.East)
	if f.ReadyAt != 12 {
		t.Fatalf("virtual-queuing penalty not applied: ReadyAt = %d", f.ReadyAt)
	}
}

func TestVCReadyAtGatesSwitch(t *testing.T) {
	vc := NewVC(0, 5)
	vc.Claim(topology.East)
	f := makePacketFlits(1, 1, topology.East)[0]
	f.ReadyAt = 5
	vc.PushFrom(f, topology.East)
	vc.GrantEject()
	if vc.SwitchReady(4) {
		t.Error("flit must not be switch-ready before ReadyAt")
	}
	if !vc.SwitchReady(5) {
		t.Error("flit must be switch-ready at ReadyAt")
	}
}

func TestOutVCBookCredits(t *testing.T) {
	b := NewOutVCBook(3, 4)
	if b.Credits(0) != 4 {
		t.Fatal("initial credits wrong")
	}
	b.EnqueueGrant(0, 9)
	if !b.MayStream(0, 9) {
		t.Fatal("sole grantee must be allowed to stream")
	}
	if b.MayStream(0, 8) {
		t.Fatal("non-grantee must not stream")
	}
	b.Send(0, false)
	b.Send(0, true)
	if b.Credits(0) != 2 {
		t.Fatalf("credits = %d, want 2", b.Credits(0))
	}
	if b.MayStream(0, 9) {
		t.Fatal("grant retired at tail send")
	}
	b.ReturnCredit(0)
	b.ReturnCredit(0)
	if b.Credits(0) != 4 {
		t.Fatal("credits did not return")
	}
}

func TestOutVCBookGrantOrdering(t *testing.T) {
	b := NewOutVCBook(1, 8)
	b.EnqueueGrant(0, 1)
	b.EnqueueGrant(0, 2)
	if b.MayStream(0, 2) {
		t.Fatal("younger grant must wait")
	}
	b.Send(0, true) // grantee 1's single-flit packet
	if !b.MayStream(0, 2) {
		t.Fatal("after elder's tail, younger streams")
	}
}

func TestOutVCBookCreditUnderflowPanics(t *testing.T) {
	b := NewOutVCBook(1, 1)
	b.EnqueueGrant(0, 0)
	b.Send(0, false)
	defer func() {
		if recover() == nil {
			t.Error("credit underflow should panic")
		}
	}()
	b.Send(0, false)
}

func TestOutVCBookSetDepth(t *testing.T) {
	b := NewOutVCBook(2, 5)
	b.SetDepth(1, 0)
	if b.Alive(1) {
		t.Error("zero-depth channel should be dead")
	}
	b.SetDepth(0, 1)
	if !b.Alive(0) || b.Credits(0) != 1 {
		t.Error("reduced-depth channel should stay alive with 1 credit")
	}
}

func TestVCStateMachineProperty(t *testing.T) {
	// Push/pop arbitrary well-formed packet sequences through a channel;
	// invariants: flit order preserved, states track packets, claims never
	// leak.
	f := func(sizes []uint8) bool {
		vc := NewVC(0, 64)
		var want []uint64
		id := uint64(1)
		admitted := 0
		for _, sz := range sizes {
			n := int(sz%4) + 1
			if admitted >= MaxPacketsPerChannel {
				break
			}
			if !vc.Claimable(topology.East) {
				break
			}
			vc.Claim(topology.East)
			admitted++
			for _, f := range makePacketFlits(id, n, topology.East) {
				if !vc.HasRoom() {
					return true // capacity reached; fine
				}
				vc.PushFrom(f, topology.East)
				want = append(want, id)
			}
			id++
		}
		for _, wantID := range want {
			f := vc.Pop()
			if f.PacketID != wantID {
				return false
			}
		}
		return vc.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVCPurgeClaims(t *testing.T) {
	// An unbacked claim fed over a severed link is released, making the
	// channel claimable from any side again.
	vc := NewVC(0, 8)
	vc.Claim(topology.West)
	if vc.Claimable(topology.North) {
		t.Fatal("claimed VC must reject other feeders")
	}
	vc.PurgeClaims(topology.West)
	if !vc.Claimable(topology.North) {
		t.Fatal("purged VC should accept any feeder")
	}

	// A claim backed by an admitted fragment survives the purge (the
	// fragment retires it through Pop/AbortFront); only the excess claim
	// of a head that never arrived is released.
	vc = NewVC(0, 8)
	vc.Claim(topology.West)
	vc.Claim(topology.West)
	for _, f := range makePacketFlits(1, 2, topology.East) {
		vc.PushFrom(f, topology.West)
	}
	vc.PurgeClaims(topology.West)
	if vc.Claimable(topology.North) {
		t.Fatal("purge must keep the claim backing the admitted fragment")
	}
	vc.Pop()
	vc.Pop() // tail retires the fragment and its claim
	if !vc.Claimable(topology.North) {
		t.Fatal("channel should be free once the fragment retires")
	}

	// A purge for a different link is a no-op.
	vc = NewVC(0, 8)
	vc.Claim(topology.South)
	vc.PurgeClaims(topology.West)
	if vc.Claimable(topology.North) {
		t.Fatal("purge of an unrelated link must not release the claim")
	}
}
