package router

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// MaxPacketsPerChannel bounds how many packets may be admitted to one
// virtual channel at once. VC reallocation is non-atomic: the next packet
// is admitted as soon as the previous packet's tail has been sent by the
// upstream router, so a channel streams back-to-back packets without
// waiting for the full drain — but only packets arriving over the same
// upstream link, which preserves FIFO flit order inside the buffer. The
// window is deliberately deep: a channel behaves as a per-(link, class)
// FIFO whose throughput is bounded by credits and switch bandwidth, not by
// packet-granularity reservation (Table 1 provisions as little as one dy
// channel per direction, which must still sustain near-full link rate).
const MaxPacketsPerChannel = 8

// pktState is the routing state of one packet resident in (or admitted to)
// a channel: its output port at this router, the downstream channel its VA
// granted, and the link its credits return over.
type pktState struct {
	outPort   topology.Direction
	nextOut   topology.Direction
	outVC     int
	ejectNext bool
	doomed    bool
	feeder    topology.Direction
}

// VC is one virtual-channel buffer. Its flit queue is strictly FIFO and
// may hold the tail of one packet and the head of the next; the states
// list tracks per-packet routing state in the same order. Only the front
// packet participates in allocation.
type VC struct {
	// Index is the VC's identity inside its router's VC namespace; it is
	// what upstream routers place into flit.VC.
	Index int
	// Class is the semantic path-set class of the channel (dx, dy, txy,
	// tyx, Injxy, Injyx) for the RoCo router; baseline routers leave the
	// zero value.
	Class routing.Turn
	// Depth is the buffer capacity in flits.
	Depth int

	// Faulty marks a failed buffer operating under virtual queuing: the
	// channel degrades to a single bypass latch (capacity 1) and every
	// flit passing through pays the handshake penalty.
	Faulty bool
	// FaultPenalty is the extra cycles a flit spends before becoming
	// SA-ready in a faulty channel.
	FaultPenalty int64

	claims      int // packets admitted whose tails have not yet popped
	claimFeeder topology.Direction
	states      []pktState
	queue       []*flit.Flit
}

// NewVC returns an idle channel of the given index and depth.
func NewVC(index, depth int) *VC {
	if depth < 1 {
		panic("router: VC depth must be >= 1")
	}
	return &VC{
		Index:       index,
		Depth:       depth,
		claimFeeder: topology.Invalid,
		states:      make([]pktState, 0, MaxPacketsPerChannel),
		queue:       make([]*flit.Flit, 0, depth),
	}
}

// Capacity returns the usable buffer depth, accounting for a buffer fault
// (virtual queuing degrades the channel to its single bypass latch).
func (v *VC) Capacity() int {
	if v.Faulty {
		return 1
	}
	return v.Depth
}

// Len returns the number of buffered flits.
func (v *VC) Len() int { return len(v.queue) }

// HasRoom reports whether one more flit fits.
func (v *VC) HasRoom() bool { return len(v.queue) < v.Capacity() }

// Active reports whether any packet occupies the channel.
func (v *VC) Active() bool { return len(v.states) > 0 }

// Idle reports whether the channel holds neither packets nor claims.
func (v *VC) Idle() bool { return v.claims == 0 && len(v.queue) == 0 }

// Front returns the oldest buffered flit without removing it, or nil.
func (v *VC) Front() *flit.Flit {
	if len(v.queue) == 0 {
		return nil
	}
	return v.queue[0]
}

// OutPort returns the front packet's output port at this router, or
// Invalid when the channel is empty.
func (v *VC) OutPort() topology.Direction {
	if len(v.states) == 0 {
		return topology.Invalid
	}
	return v.states[0].outPort
}

// NextOut returns the front packet's look-ahead route (its output at the
// downstream router), or Invalid.
func (v *VC) NextOut() topology.Direction {
	if len(v.states) == 0 {
		return topology.Invalid
	}
	return v.states[0].nextOut
}

// OutVC returns the downstream channel granted to the front packet, or -1.
func (v *VC) OutVC() int {
	if len(v.states) == 0 {
		return -1
	}
	return v.states[0].outVC
}

// EjectNext reports whether the front packet will be early-ejected at the
// downstream router (no downstream channel needed).
func (v *VC) EjectNext() bool {
	return len(v.states) > 0 && v.states[0].ejectNext
}

// Feeder returns the link the front packet arrived over (Local for
// PE-injected packets), or Invalid.
func (v *VC) Feeder() topology.Direction {
	if len(v.states) == 0 {
		return topology.Invalid
	}
	return v.states[0].feeder
}

// SetNextOut updates the front packet's look-ahead route (adaptive VA
// retries recompute it).
func (v *VC) SetNextOut(d topology.Direction) { v.states[0].nextOut = d }

// GrantRoute records a VA grant for the front packet.
func (v *VC) GrantRoute(outVC int, nextOut topology.Direction) {
	v.states[0].outVC = outVC
	v.states[0].nextOut = nextOut
}

// GrantEject marks the front packet for downstream early ejection.
func (v *VC) GrantEject() {
	v.states[0].ejectNext = true
	v.states[0].nextOut = topology.Local
}

// Doom marks the front packet undeliverable: a permanent fault blocks its
// only route, so the router discards its flits as they drain (the paper's
// static fault handling: "fragmented packets are simply discarded").
// Without discard, the stranded wormhole would assert backpressure forever
// and tree saturation would wedge the whole network.
func (v *VC) Doom() { v.states[0].doomed = true }

// Doomed reports whether the front packet is marked for discard.
func (v *VC) Doomed() bool { return len(v.states) > 0 && v.states[0].doomed }

// Claimable reports whether the channel can admit a new packet arriving
// over link from. Admission requires a free packet slot and, when the
// channel is already occupied or claimed, the same feeder link — flits
// from one link arrive in order, so back-to-back packets stay FIFO.
func (v *VC) Claimable(from topology.Direction) bool {
	if v.claims == 0 {
		return true
	}
	return v.claims < MaxPacketsPerChannel && from == v.claimFeeder
}

// Claim reserves a packet slot for an inbound packet on link from. It
// panics when not claimable: the claim protocol must check first.
func (v *VC) Claim(from topology.Direction) {
	if !v.Claimable(from) {
		panic(fmt.Sprintf("router: claim of unavailable vc %d", v.Index))
	}
	v.claims++
	v.claimFeeder = from
}

// PushFrom buffers a flit that arrived over link from. A head flit opens
// the next admitted packet's state. Pushing into a full channel, or a head
// without a claim, panics: flow control must prevent both.
func (v *VC) PushFrom(f *flit.Flit, from topology.Direction) {
	if !v.HasRoom() {
		panic(fmt.Sprintf("router: overflow on vc %d: %v", v.Index, f))
	}
	if f.Type.IsHead() {
		if len(v.states) >= v.claims {
			panic(fmt.Sprintf("router: head %v pushed into vc %d without a claim", f, v.Index))
		}
		v.states = append(v.states, pktState{
			outPort: f.OutPort,
			nextOut: topology.Invalid,
			outVC:   -1,
			feeder:  from,
		})
	} else if len(v.states) == 0 {
		panic(fmt.Sprintf("router: body/tail %v pushed into idle vc %d", f, v.Index))
	}
	if v.Faulty {
		f.ReadyAt += v.FaultPenalty
	}
	v.queue = append(v.queue, f)
}

// Pop removes and returns the front flit. Popping a tail retires the front
// packet and releases its claim slot.
func (v *VC) Pop() *flit.Flit {
	if len(v.queue) == 0 {
		panic(fmt.Sprintf("router: pop from empty vc %d", v.Index))
	}
	f := v.queue[0]
	copy(v.queue, v.queue[1:])
	v.queue = v.queue[:len(v.queue)-1]
	if f.Type.IsTail() {
		copy(v.states, v.states[1:])
		v.states = v.states[:len(v.states)-1]
		v.claims--
		if v.claims == 0 {
			v.claimFeeder = topology.Invalid
		}
	}
	return f
}

// NeedsVA reports whether the channel's front flit is a head still
// awaiting a downstream channel grant. FIFO order guarantees that a head
// at the front belongs to the front packet state.
func (v *VC) NeedsVA() bool {
	f := v.Front()
	if f == nil || !f.Type.IsHead() || len(v.states) == 0 {
		return false
	}
	return v.states[0].outVC < 0 && !v.states[0].ejectNext
}

// SwitchReady reports whether the front flit may request the switch in the
// given cycle: the front packet is routed (VA done or ejecting next hop)
// and the flit's ReadyAt has passed. Credit availability is the caller's
// concern.
func (v *VC) SwitchReady(cycle int64) bool {
	f := v.Front()
	if f == nil || len(v.states) == 0 || f.ReadyAt > cycle {
		return false
	}
	if f.Type.IsHead() {
		return v.states[0].outVC >= 0 || v.states[0].ejectNext
	}
	// Body/tail flits follow the wormhole their head opened.
	return true
}

// OutVCBook tracks the upstream-side credit state of the downstream
// channels reachable through one output port, and orders non-atomic
// channel handover: several local packets may hold grants to the same
// downstream channel, but only the oldest grant may stream flits until its
// tail has been sent — younger grants wait, so flits of back-to-back
// packets never interleave on the link and the shared downstream FIFO
// stays in order.
type OutVCBook struct {
	depths  []int
	credits []int
	order   [][]int // per channel: FIFO of local grantee VC indexes
	dead    []bool  // downstream channel unusable (fault without recovery)
}

// NewOutVCBook returns a book for n downstream VCs of the given depth.
func NewOutVCBook(n, depth int) *OutVCBook {
	b := &OutVCBook{
		depths:  make([]int, n),
		credits: make([]int, n),
		order:   make([][]int, n),
		dead:    make([]bool, n),
	}
	for i := range b.credits {
		b.depths[i] = depth
		b.credits[i] = depth
	}
	return b
}

// SetDepth adjusts the capacity of one downstream channel; the network
// uses it when a downstream buffer fault degrades a VC to its bypass
// latch. It must be called before traffic flows.
func (b *OutVCBook) SetDepth(vc, depth int) {
	if depth < 0 {
		panic("router: negative VC depth")
	}
	b.depths[vc] = depth
	b.credits[vc] = depth
	b.dead[vc] = depth == 0
}

// Size returns the number of downstream VCs tracked.
func (b *OutVCBook) Size() int { return len(b.credits) }

// Alive reports whether downstream VC vc is usable at all.
func (b *OutVCBook) Alive(vc int) bool { return !b.dead[vc] }

// EnqueueGrant records a local VA grant of downstream channel vc to the
// local channel grantee; grants stream in FIFO order.
func (b *OutVCBook) EnqueueGrant(vc, grantee int) {
	b.order[vc] = append(b.order[vc], grantee)
}

// MayStream reports whether grantee holds the oldest outstanding grant of
// vc and may therefore send flits into it.
func (b *OutVCBook) MayStream(vc, grantee int) bool {
	q := b.order[vc]
	return len(q) > 0 && q[0] == grantee
}

// QueuedGrants returns the number of outstanding local grants of vc; VA
// uses it to spread load across equivalent channels instead of piling
// packets onto the first claimable one.
func (b *OutVCBook) QueuedGrants(vc int) int { return len(b.order[vc]) }

// Credits returns the remaining buffer slots of vc.
func (b *OutVCBook) Credits(vc int) int { return b.credits[vc] }

// Send consumes one credit for a flit entering vc; the tail retires the
// oldest grant, letting the next packet stream.
func (b *OutVCBook) Send(vc int, tail bool) {
	if b.credits[vc] <= 0 {
		panic(fmt.Sprintf("router: credit underflow on downstream vc %d", vc))
	}
	b.credits[vc]--
	if tail {
		q := b.order[vc]
		if len(q) == 0 {
			panic(fmt.Sprintf("router: tail sent into unallocated downstream vc %d", vc))
		}
		copy(q, q[1:])
		b.order[vc] = q[:len(q)-1]
	}
}

// ReturnCredit processes one credit arriving from downstream.
func (b *OutVCBook) ReturnCredit(vc int) {
	if b.credits[vc] >= b.depths[vc] {
		panic(fmt.Sprintf("router: credit overflow on downstream vc %d", vc))
	}
	b.credits[vc]++
}

// FreeSlots sums the outstanding credits across all downstream VCs; the
// adaptive cost function uses it as its congestion signal.
func (b *OutVCBook) FreeSlots() int {
	total := 0
	for _, c := range b.credits {
		total += c
	}
	return total
}
