package router

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// MaxPacketsPerChannel bounds how many packets may be admitted to one
// virtual channel at once. VC reallocation is non-atomic: the next packet
// is admitted as soon as the previous packet's tail has been sent by the
// upstream router, so a channel streams back-to-back packets without
// waiting for the full drain — but only packets arriving over the same
// upstream link, which preserves FIFO flit order inside the buffer. The
// window is deliberately deep: a channel behaves as a per-(link, class)
// FIFO whose throughput is bounded by credits and switch bandwidth, not by
// packet-granularity reservation (Table 1 provisions as little as one dy
// channel per direction, which must still sustain near-full link rate).
const MaxPacketsPerChannel = 8

// pktState flag bits (pktState.flags).
const (
	// psEject: the packet will be early-ejected at the downstream router
	// (no downstream channel needed).
	psEject = 1 << iota
	// psDoomed: the packet is marked for discard (fault handling).
	psDoomed
	// psStreamed: at least one flit of the packet has left this router
	// toward its granted target; recovery uses it to decide whether a
	// cancelled grant's downstream claim may be released.
	psStreamed
	// psCancelled: the packet's VA grant has been withdrawn from the
	// output book (live fault recovery); prevents double cancellation.
	psCancelled
)

// pktState is the routing state of one packet resident in (or admitted to)
// a channel: its output port at this router, the downstream channel its VA
// granted, and the link its credits return over. The layout is packed to
// 16 bytes — Direction fields are single bytes, the four booleans share
// one flag byte, and the downstream channel index fits int32 — so big
// meshes move less per-VC state per cycle. In-memory layout only: the
// snapshot codec still writes each field in its canonical form.
type pktState struct {
	packetID uint64
	outVC    int32
	outPort  topology.Direction
	nextOut  topology.Direction
	feeder   topology.Direction
	flags    uint8
}

// VC is one virtual-channel buffer. Its flit queue is strictly FIFO and
// may hold the tail of one packet and the head of the next; the states
// list tracks per-packet routing state in the same order. Only the front
// packet participates in allocation.
type VC struct {
	// Index is the VC's identity inside its router's VC namespace; it is
	// what upstream routers place into flit.VC.
	Index int
	// Class is the semantic path-set class of the channel (dx, dy, txy,
	// tyx, Injxy, Injyx) for the RoCo router; baseline routers leave the
	// zero value.
	Class routing.Turn
	// Depth is the buffer capacity in flits.
	Depth int

	// Faulty marks a failed buffer operating under virtual queuing: the
	// channel degrades to a single bypass latch (capacity 1) and every
	// flit passing through pays the handshake penalty.
	Faulty bool
	// FaultPenalty is the extra cycles a flit spends before becoming
	// SA-ready in a faulty channel.
	FaultPenalty int64

	// condemned poisons the channel after a live fault kills its datapath:
	// every resident packet is doomed and every future arrival's state
	// opens already doomed, so in-flight wormholes drain instead of
	// wedging.
	condemned bool

	claims      int // packets admitted whose tails have not yet popped
	claimFeeder topology.Direction
	states      []pktState
	queue       []*flit.Flit

	// hot/slot bind the channel into the network-wide struct-of-arrays
	// mirror (see HotState); nil/0 for unbound channels. Every queue or
	// states mutation funnels through syncHot so the mirror stays exact.
	hot  *HotState
	slot int32

	// alloc/abit bind the channel into its router's allocation bitmaps
	// (see AllocState); nil/0 for unbound channels. Queue/states mutations
	// resync through syncHot; routing-state and claim mutations call
	// syncAlloc/syncClaim directly.
	alloc *AllocState
	abit  uint64
}

// NewVC returns an idle channel of the given index and depth.
func NewVC(index, depth int) *VC {
	if depth < 1 {
		panic("router: VC depth must be >= 1")
	}
	return &VC{
		Index:       index,
		Depth:       depth,
		claimFeeder: topology.Invalid,
		states:      make([]pktState, 0, MaxPacketsPerChannel),
		queue:       make([]*flit.Flit, 0, depth),
	}
}

// lazyStateCap is the initial packet-state capacity of a lazily built
// (arena) channel. Most channels hold one or two resident packets at a
// time; starting small and letting append grow toward
// MaxPacketsPerChannel (amortized, bounded) cuts the per-node footprint
// on big meshes without affecting behavior — capacity is never observable.
const lazyStateCap = 2

// ensureBuffers allocates the queue and packet-state backing arrays of a
// lazily built (arena) channel on first use. The flit queue is allocated
// at full depth (it fills within a few cycles of any activity); the
// packet-state array starts at lazyStateCap and grows on demand. Eagerly
// built channels (NewVC) have non-nil backing from birth and skip this.
func (v *VC) ensureBuffers() {
	if v.queue == nil {
		v.queue = make([]*flit.Flit, 0, v.Depth)
	}
	if v.states == nil {
		v.states = make([]pktState, 0, lazyStateCap)
	}
}

// syncHot propagates a queue/states mutation into the bound hot-state
// arrays: the slot's occupancy mirror, and the owning router's dormancy
// count when the channel crosses between dormant and non-dormant. before
// is len(queue)+len(states) sampled at the mutator's entry. It also
// refreshes the allocation bitmaps — every queue/states mutation can move
// the needVA/saReady bits. No-op for unbound channels.
func (v *VC) syncHot(before int) {
	v.syncAlloc()
	hs := v.hot
	if hs == nil {
		return
	}
	hs.occ[v.slot] = int32(len(v.queue))
	after := len(v.queue) + len(v.states)
	if before == 0 {
		if after > 0 {
			hs.vcWake(v.slot)
		}
	} else if after == 0 {
		hs.vcSleep(v.slot)
	}
}

// Capacity returns the usable buffer depth, accounting for a buffer fault
// (virtual queuing degrades the channel to its single bypass latch).
func (v *VC) Capacity() int {
	if v.Faulty {
		return 1
	}
	return v.Depth
}

// Len returns the number of buffered flits.
func (v *VC) Len() int { return len(v.queue) }

// HasRoom reports whether one more flit fits.
func (v *VC) HasRoom() bool { return len(v.queue) < v.Capacity() }

// Active reports whether any packet occupies the channel.
func (v *VC) Active() bool { return len(v.states) > 0 }

// Idle reports whether the channel holds neither packets nor claims.
func (v *VC) Idle() bool { return v.claims == 0 && len(v.queue) == 0 }

// Dormant reports whether ticking the owning router can do nothing with
// this channel: no flit is buffered and no packet state is resident. An
// upstream claim alone does not block dormancy — a claimed channel needs
// no work until its flit lands, and the link pipe carrying that flit
// wakes the router before it does.
func (v *VC) Dormant() bool { return len(v.queue) == 0 && len(v.states) == 0 }

// Front returns the oldest buffered flit without removing it, or nil.
func (v *VC) Front() *flit.Flit {
	if len(v.queue) == 0 {
		return nil
	}
	return v.queue[0]
}

// OutPort returns the front packet's output port at this router, or
// Invalid when the channel is empty.
func (v *VC) OutPort() topology.Direction {
	if len(v.states) == 0 {
		return topology.Invalid
	}
	return v.states[0].outPort
}

// NextOut returns the front packet's look-ahead route (its output at the
// downstream router), or Invalid.
func (v *VC) NextOut() topology.Direction {
	if len(v.states) == 0 {
		return topology.Invalid
	}
	return v.states[0].nextOut
}

// OutVC returns the downstream channel granted to the front packet, or -1.
func (v *VC) OutVC() int {
	if len(v.states) == 0 {
		return -1
	}
	return int(v.states[0].outVC)
}

// EjectNext reports whether the front packet will be early-ejected at the
// downstream router (no downstream channel needed).
func (v *VC) EjectNext() bool {
	return len(v.states) > 0 && v.states[0].flags&psEject != 0
}

// Feeder returns the link the front packet arrived over (Local for
// PE-injected packets), or Invalid.
func (v *VC) Feeder() topology.Direction {
	if len(v.states) == 0 {
		return topology.Invalid
	}
	return v.states[0].feeder
}

// SetNextOut updates the front packet's look-ahead route (adaptive VA
// retries recompute it).
func (v *VC) SetNextOut(d topology.Direction) { v.states[0].nextOut = d }

// GrantRoute records a VA grant for the front packet.
func (v *VC) GrantRoute(outVC int, nextOut topology.Direction) {
	v.states[0].outVC = int32(outVC)
	v.states[0].nextOut = nextOut
	v.syncAlloc()
}

// GrantEject marks the front packet for downstream early ejection.
func (v *VC) GrantEject() {
	v.states[0].flags |= psEject
	v.states[0].nextOut = topology.Local
	v.syncAlloc()
}

// Doom marks the front packet undeliverable: a permanent fault blocks its
// only route, so the router discards its flits as they drain (the paper's
// static fault handling: "fragmented packets are simply discarded").
// Without discard, the stranded wormhole would assert backpressure forever
// and tree saturation would wedge the whole network.
func (v *VC) Doom() {
	v.states[0].flags |= psDoomed
	v.syncAlloc()
}

// Doomed reports whether the front packet is marked for discard.
func (v *VC) Doomed() bool { return len(v.states) > 0 && v.states[0].flags&psDoomed != 0 }

// DoomResidents dooms every packet currently admitted to the channel (a
// live buffer fault: the flits latched in the failed buffer are lost).
// Future arrivals are unaffected.
func (v *VC) DoomResidents() {
	for i := range v.states {
		v.states[i].flags |= psDoomed
	}
	v.syncAlloc()
}

// Condemn permanently poisons the channel after a live fault disables its
// datapath: all resident packets are doomed and every packet admitted
// later arrives doomed, so in-flight wormholes targeting the dead channel
// drain away instead of wedging the network.
func (v *VC) Condemn() {
	v.condemned = true
	v.DoomResidents()
}

// Condemned reports whether the channel has been poisoned by Condemn.
func (v *VC) Condemned() bool { return v.condemned }

// MarkStreamed records that the front packet has begun streaming flits out
// of this router (switch traversal); recovery consults it before releasing
// a cancelled grant's downstream claim.
func (v *VC) MarkStreamed() { v.states[0].flags |= psStreamed }

// FrontState is a read-only snapshot of the front packet's routing state,
// used by the shared fault-recovery sweep.
type FrontState struct {
	PacketID  uint64
	OutPort   topology.Direction
	OutVC     int
	EjectNext bool
	Doomed    bool
	Streamed  bool
	Cancelled bool
}

// FrontState snapshots the front packet's state; ok is false for an idle
// channel.
func (v *VC) FrontState() (FrontState, bool) {
	if len(v.states) == 0 {
		return FrontState{}, false
	}
	s := v.states[0]
	return FrontState{
		PacketID:  s.packetID,
		OutPort:   s.outPort,
		OutVC:     int(s.outVC),
		EjectNext: s.flags&psEject != 0,
		Doomed:    s.flags&psDoomed != 0,
		Streamed:  s.flags&psStreamed != 0,
		Cancelled: s.flags&psCancelled != 0,
	}, true
}

// CancelFrontGrant marks the front packet's VA grant withdrawn (the caller
// removes it from the output book); further sweeps skip it.
func (v *VC) CancelFrontGrant() { v.states[0].flags |= psCancelled }

// frontAligned reports whether the front buffered flit belongs to the
// front packet state. The two can diverge after a live fault: a doomed
// packet's resident flits may all have drained while its state waits for
// flits still in flight, letting the next packet's head reach the queue
// front early.
func (v *VC) frontAligned() bool {
	return len(v.queue) > 0 && len(v.states) > 0 && v.queue[0].PacketID == v.states[0].packetID
}

// FrontPacketBuffered reports whether any buffered flit belongs to the
// front packet state (FIFO: only the queue front can).
func (v *VC) FrontPacketBuffered() bool { return v.frontAligned() }

// DrainDoomed pops and returns the next buffered flit of a doomed front
// packet, or nil when the front packet is not doomed or none of its flits
// are buffered. It never touches flits of the packets queued behind a
// doomed fragment.
func (v *VC) DrainDoomed() *flit.Flit {
	if !v.Doomed() || !v.frontAligned() {
		return nil
	}
	return v.Pop()
}

// AbortFront forcibly retires the front packet state as if its tail had
// popped, releasing its claim slot. Recovery uses it for broken packets
// whose remaining flits were dropped elsewhere and can never arrive; no
// flit of the packet may still be buffered.
func (v *VC) AbortFront() {
	if len(v.states) == 0 {
		panic(fmt.Sprintf("router: abort on idle vc %d", v.Index))
	}
	if v.frontAligned() {
		panic(fmt.Sprintf("router: abort of vc %d front packet with buffered flits", v.Index))
	}
	before := len(v.queue) + len(v.states)
	copy(v.states, v.states[1:])
	v.states = v.states[:len(v.states)-1]
	v.claims--
	if v.claims == 0 {
		v.claimFeeder = topology.Invalid
	}
	v.syncClaim()
	v.syncHot(before)
}

// ReleaseClaim returns one claim slot taken with Claim before any flit of
// the claiming packet arrived (recovery withdraws an upstream grant whose
// packet never streamed). Claims backing admitted packets must be retired
// through Pop or AbortFront instead.
func (v *VC) ReleaseClaim() {
	if v.claims <= len(v.states) {
		panic(fmt.Sprintf("router: release of unheld claim on vc %d", v.Index))
	}
	v.claims--
	if v.claims == 0 {
		v.claimFeeder = topology.Invalid
	}
	v.syncClaim()
}

// PurgeClaims releases every claim fed over link from that no admitted
// packet backs. SeverPort calls it when from is cut by a die-to-die
// interface fault: the heads those claims await were either dropped at
// the dead interface or will never be sent, so no flit can ever fulfill
// them — left in place they latch the feeder and make the channel
// permanently unclaimable, wedging every turn class that maps to it.
func (v *VC) PurgeClaims(from topology.Direction) {
	if v.claimFeeder != from {
		return
	}
	for v.claims > len(v.states) {
		v.ReleaseClaim()
	}
}

// Claimable reports whether the channel can admit a new packet arriving
// over link from. Admission requires a free packet slot and, when the
// channel is already occupied or claimed, the same feeder link — flits
// from one link arrive in order, so back-to-back packets stay FIFO.
func (v *VC) Claimable(from topology.Direction) bool {
	if v.claims == 0 {
		return true
	}
	return v.claims < MaxPacketsPerChannel && from == v.claimFeeder
}

// Claim reserves a packet slot for an inbound packet on link from. It
// panics when not claimable: the claim protocol must check first.
func (v *VC) Claim(from topology.Direction) {
	if !v.Claimable(from) {
		panic(fmt.Sprintf("router: claim of unavailable vc %d", v.Index))
	}
	v.claims++
	v.claimFeeder = from
	v.syncClaim()
}

// PushFrom buffers a flit that arrived over link from. A head flit opens
// the next admitted packet's state. Pushing into a full channel, or a head
// without a claim, panics: flow control must prevent both.
func (v *VC) PushFrom(f *flit.Flit, from topology.Direction) {
	// Overflow is asserted against the physical depth, not Capacity(): a
	// buffer fault installed at runtime shrinks the usable capacity while
	// flits credited under the old regime are still in flight, and those
	// must still land in the physical latches.
	if len(v.queue) >= v.Depth {
		panic(fmt.Sprintf("router: overflow on vc %d: %v", v.Index, f))
	}
	v.ensureBuffers()
	before := len(v.queue) + len(v.states)
	if f.Type.IsHead() {
		if len(v.states) >= v.claims {
			panic(fmt.Sprintf("router: head %v pushed into vc %d without a claim", f, v.Index))
		}
		var flags uint8
		if v.condemned {
			flags = psDoomed
		}
		v.states = append(v.states, pktState{
			outPort:  f.OutPort,
			nextOut:  topology.Invalid,
			outVC:    -1,
			feeder:   from,
			packetID: f.PacketID,
			flags:    flags,
		})
	} else if len(v.states) == 0 {
		panic(fmt.Sprintf("router: body/tail %v pushed into idle vc %d", f, v.Index))
	}
	if v.Faulty {
		f.ReadyAt += v.FaultPenalty
	}
	v.queue = append(v.queue, f)
	v.syncHot(before)
}

// Pop removes and returns the front flit. Popping a tail retires the front
// packet and releases its claim slot.
func (v *VC) Pop() *flit.Flit {
	if len(v.queue) == 0 {
		panic(fmt.Sprintf("router: pop from empty vc %d", v.Index))
	}
	f := v.queue[0]
	before := len(v.queue) + len(v.states)
	copy(v.queue, v.queue[1:])
	v.queue = v.queue[:len(v.queue)-1]
	if f.Type.IsTail() {
		copy(v.states, v.states[1:])
		v.states = v.states[:len(v.states)-1]
		v.claims--
		if v.claims == 0 {
			v.claimFeeder = topology.Invalid
		}
		v.syncClaim()
	}
	v.syncHot(before)
	return f
}

// NeedsVA reports whether the channel's front flit is a head still
// awaiting a downstream channel grant. FIFO order guarantees that a head
// at the front belongs to the front packet state.
func (v *VC) NeedsVA() bool {
	f := v.Front()
	if f == nil || !f.Type.IsHead() || !v.frontAligned() {
		return false
	}
	return v.states[0].outVC < 0 && v.states[0].flags&psEject == 0
}

// SwitchReady reports whether the front flit may request the switch in the
// given cycle: the front packet is routed (VA done or ejecting next hop)
// and the flit's ReadyAt has passed. Credit availability is the caller's
// concern.
func (v *VC) SwitchReady(cycle int64) bool {
	f := v.Front()
	if f == nil || !v.frontAligned() || f.ReadyAt > cycle {
		return false
	}
	if f.Type.IsHead() {
		return v.states[0].outVC >= 0 || v.states[0].flags&psEject != 0
	}
	// Body/tail flits follow the wormhole their head opened.
	return true
}

// OutVCBook tracks the upstream-side credit state of the downstream
// channels reachable through one output port, and orders non-atomic
// channel handover: several local packets may hold grants to the same
// downstream channel, but only the oldest grant may stream flits until its
// tail has been sent — younger grants wait, so flits of back-to-back
// packets never interleave on the link and the shared downstream FIFO
// stays in order.
type OutVCBook struct {
	// depths and inflight are int32: a book exists per output port per
	// node, so halving the credit arrays is a measurable part of the
	// big-mesh memory diet (values are flit counts, far below 2^31).
	depths   []int32
	inflight []int32 // flits sent into the channel, credits not yet returned
	order    [][]int // per channel: FIFO of local grantee VC indexes
	// alive caches Alive(vc) as a bitmap (bit vc set iff depths[vc] > 0)
	// so VA candidate masking is one AND instead of a per-channel load.
	// Maintained by SetDepth and rebuilt on snapshot load; downstream VC
	// namespaces are at most 15 wide, far inside the 64-bit budget.
	alive uint64
}

// NewOutVCBook returns a book for n downstream VCs of the given depth.
func NewOutVCBook(n, depth int) *OutVCBook {
	b := &OutVCBook{
		depths:   make([]int32, n),
		inflight: make([]int32, n),
		order:    make([][]int, n),
	}
	for i := range b.depths {
		b.depths[i] = int32(depth)
	}
	b.resyncAlive()
	return b
}

// resyncAlive rebuilds the alive bitmap from the depths.
func (b *OutVCBook) resyncAlive() {
	b.alive = 0
	for vc, d := range b.depths {
		if d > 0 && vc < 64 {
			b.alive |= 1 << uint(vc)
		}
	}
}

// SetDepth adjusts the capacity of one downstream channel: at wiring time
// when a pre-installed buffer fault degrades a VC to its bypass latch, and
// live when a runtime fault re-propagates the neighbor handshake. The book
// tracks occupancy (flits in flight), not free credits, so a live change
// stays consistent: outstanding flits keep returning their credits and
// available credit is simply recomputed against the new depth.
func (b *OutVCBook) SetDepth(vc, depth int) {
	if depth < 0 {
		panic("router: negative VC depth")
	}
	b.depths[vc] = int32(depth)
	if vc < 64 {
		if depth > 0 {
			b.alive |= 1 << uint(vc)
		} else {
			b.alive &^= 1 << uint(vc)
		}
	}
}

// Size returns the number of downstream VCs tracked.
func (b *OutVCBook) Size() int { return len(b.depths) }

// Alive reports whether downstream VC vc is usable at all.
func (b *OutVCBook) Alive(vc int) bool { return b.depths[vc] > 0 }

// AliveMask returns the usable downstream channels as a bitmap (bit vc
// set iff Alive(vc)); VA request building ANDs it into candidate masks.
func (b *OutVCBook) AliveMask() uint64 { return b.alive }

// EnqueueGrant records a local VA grant of downstream channel vc to the
// local channel grantee; grants stream in FIFO order.
func (b *OutVCBook) EnqueueGrant(vc, grantee int) {
	b.order[vc] = append(b.order[vc], grantee)
}

// MayStream reports whether grantee holds the oldest outstanding grant of
// vc and may therefore send flits into it.
func (b *OutVCBook) MayStream(vc, grantee int) bool {
	q := b.order[vc]
	return len(q) > 0 && q[0] == grantee
}

// QueuedGrants returns the number of outstanding local grants of vc; VA
// uses it to spread load across equivalent channels instead of piling
// packets onto the first claimable one.
func (b *OutVCBook) QueuedGrants(vc int) int { return len(b.order[vc]) }

// Credits returns the remaining buffer slots of vc: its (possibly
// fault-reduced) depth minus the flits in flight. A live depth reduction
// below the current occupancy reads as zero until enough credits return.
func (b *OutVCBook) Credits(vc int) int {
	c := b.depths[vc] - b.inflight[vc]
	if c < 0 {
		return 0
	}
	return int(c)
}

// CancelGrant withdraws grantee's oldest outstanding grant of vc, letting
// the next grant stream; fault recovery calls it when the granted packet
// is doomed. Reports whether a grant was found.
func (b *OutVCBook) CancelGrant(vc, grantee int) bool {
	q := b.order[vc]
	for i, g := range q {
		if g == grantee {
			copy(q[i:], q[i+1:])
			b.order[vc] = q[:len(q)-1]
			return true
		}
	}
	return false
}

// Send consumes one credit for a flit entering vc; the tail retires the
// oldest grant, letting the next packet stream.
func (b *OutVCBook) Send(vc int, tail bool) {
	if b.Credits(vc) <= 0 {
		panic(fmt.Sprintf("router: credit underflow on downstream vc %d", vc))
	}
	b.inflight[vc]++
	if tail {
		q := b.order[vc]
		if len(q) == 0 {
			panic(fmt.Sprintf("router: tail sent into unallocated downstream vc %d", vc))
		}
		copy(q, q[1:])
		b.order[vc] = q[:len(q)-1]
	}
}

// ReturnCredit processes one credit arriving from downstream.
func (b *OutVCBook) ReturnCredit(vc int) {
	if b.inflight[vc] <= 0 {
		panic(fmt.Sprintf("router: credit overflow on downstream vc %d", vc))
	}
	b.inflight[vc]--
}

// FreeSlots sums the outstanding credits across all downstream VCs; the
// adaptive cost function uses it as its congestion signal.
func (b *OutVCBook) FreeSlots() int {
	total := 0
	for vc := range b.depths {
		total += b.Credits(vc)
	}
	return total
}
