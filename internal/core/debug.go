package core

import "fmt"

// DebugVCs renders the state of every non-idle channel, one line per VC
// (empty string for idle channels). It exists for diagnosing stalls in
// tests and the CLI's verbose mode.
func (r *Router) DebugVCs() [NumVCs]string {
	var out [NumVCs]string
	for id, vc := range r.vcs {
		if vc.Idle() {
			continue
		}
		front := "-"
		if f := vc.Front(); f != nil {
			front = f.String()
		}
		out[id] = fmt.Sprintf("class=%s len=%d outPort=%s nextOut=%s outVC=%d eject=%v front=%s",
			vc.Class, vc.Len(), vc.OutPort(), vc.NextOut(), vc.OutVC(), vc.EjectNext(), front)
	}
	return out
}

// DebugProbe reports, for every channel holding a flit, whether its front
// flit is switch-ready and credit-clear at the given cycle, and if not,
// why. Used to distinguish true protocol deadlock from allocator bugs.
func (r *Router) DebugProbe(cycle int64) [NumVCs]string {
	var out [NumVCs]string
	for id, vc := range r.vcs {
		if vc.Len() == 0 {
			continue
		}
		f := vc.Front()
		switch {
		case vc.NeedsVA():
			out[id] = fmt.Sprintf("class=%s len=%d WAIT-VA outPort=%s nextOut=%s front=%s", vc.Class, vc.Len(), vc.OutPort(), vc.NextOut(), f)
		case !vc.SwitchReady(cycle):
			out[id] = fmt.Sprintf("class=%s len=%d NOT-READY readyAt=%d cyc=%d outVC=%d eject=%v front=%s", vc.Class, vc.Len(), f.ReadyAt, cycle, vc.OutVC(), vc.EjectNext(), f)
		case !r.creditOK(vc):
			out[id] = fmt.Sprintf("class=%s len=%d NO-CREDIT outPort=%s outVC=%d credits=%d front=%s", vc.Class, vc.Len(), vc.OutPort(), vc.OutVC(), r.books[vc.OutPort()].Credits(vc.OutVC()), f)
		default:
			out[id] = fmt.Sprintf("class=%s len=%d MOVABLE outPort=%s outVC=%d front=%s", vc.Class, vc.Len(), vc.OutPort(), vc.OutVC(), f)
		}
	}
	return out
}

// DebugClassStats accumulates, per VC class, how many VA attempts and
// grants its channels saw — the retry ratio localizes allocation
// bottlenecks. Enabled by tests and probes only.
type DebugClassStats struct {
	Ops, Grants, SAReady, Moves [8]int64
}

// DebugStats is filled when DebugCollect is non-nil.
var DebugCollect *DebugClassStats
