package core

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/snapshot"
)

// SaveState serializes the router's mutable state. Structure (VC shapes,
// arbiter sizes, which outputs exist) is rebuilt from configuration on
// resume; the per-tick scratch arrays (vaFailed, reqVec, setVec, byTarget)
// are reset at the start of every allocation pass and carry nothing across
// cycle boundaries, so they are not state.
func (r *Router) SaveState(e *snapshot.Encoder, c *flit.Codec) {
	for _, vc := range r.vcs {
		vc.SaveState(e, c)
	}
	for d := 0; d < 5; d++ {
		if r.books[d] == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		r.books[d].SaveState(e)
	}
	for _, arbs := range r.vaArb {
		for i := range arbs {
			arbs[i].SaveState(e)
		}
	}
	for m := 0; m < 2; m++ {
		for p := 0; p < 2; p++ {
			for d := 0; d < 2; d++ {
				r.saArb[m][p][d].SaveState(e)
			}
			r.outArb[m][p].SaveState(e)
			r.outSel[m][p].SaveState(e)
		}
		r.mirror[m].SaveState(e)
	}
	e.Int(r.injVC)
	e.Bool(r.blocked[0])
	e.Bool(r.blocked[1])
	e.Bool(r.saShared[0])
	e.Bool(r.saShared[1])
	e.Bool(r.rcFault)
	e.Bool(r.vaBusy[0])
	e.Bool(r.vaBusy[1])
	r.act.SaveState(e)
	r.cont.SaveState(e)
	r.SaveRecoveryState(e)
}

// LoadState restores state written by SaveState into a freshly built
// router of the same configuration.
func (r *Router) LoadState(d *snapshot.Decoder, c *flit.Codec) {
	for _, vc := range r.vcs {
		vc.LoadState(d, c)
		if d.Err() != nil {
			return
		}
	}
	for dir := 0; dir < 5; dir++ {
		present := d.Bool()
		if d.Err() != nil {
			return
		}
		if present != (r.books[dir] != nil) {
			d.Corruptf("core router %d: output book %d presence mismatch", r.id, dir)
			return
		}
		if present {
			r.books[dir].LoadState(d)
		}
	}
	for _, arbs := range r.vaArb {
		for i := range arbs {
			arbs[i].LoadState(d)
		}
	}
	for m := 0; m < 2; m++ {
		for p := 0; p < 2; p++ {
			for dd := 0; dd < 2; dd++ {
				r.saArb[m][p][dd].LoadState(d)
			}
			r.outArb[m][p].LoadState(d)
			r.outSel[m][p].LoadState(d)
		}
		r.mirror[m].LoadState(d)
	}
	r.injVC = d.Int()
	r.blocked[0] = d.Bool()
	r.blocked[1] = d.Bool()
	r.saShared[0] = d.Bool()
	r.saShared[1] = d.Bool()
	r.rcFault = d.Bool()
	r.vaBusy[0] = d.Bool()
	r.vaBusy[1] = d.Bool()
	r.act.LoadState(d)
	r.cont.LoadState(d)
	r.LoadRecoveryState(d)
	if d.Err() == nil && (r.injVC < -2 || r.injVC >= NumVCs) {
		d.Corruptf("core router %d: injection vc %d out of range", r.id, r.injVC)
	}
}
