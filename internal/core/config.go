// Package core implements the paper's contribution: the RoCo (Row-Column)
// Decoupled Router. The router is split into two fully independent modules
// — a Row-Module switching East/West traffic and a Column-Module switching
// North/South traffic — each with a compact 2x2 crossbar, its own VA and a
// Mirroring-Effect switch allocator. Arriving flits are steered by Guided
// Flit Queuing into path-set VCs named after their dimension transition
// (dx, dy, txy, tyx, Injxy, Injyx; paper Table 1), flits for the local PE
// are ejected early without touching the crossbar, and permanent faults are
// absorbed per component by the Hardware Recycling schemes of Section 4.
//
// # Deadlock discipline
//
// Every non-injection channel is assigned one outgoing direction, matching
// the paper's path-set orientation (path set 1 serves the figure's first
// output, path set 2 the second). With direction-assigned channels the
// class structure maps one-to-one onto per-link virtual channels, so:
//
//   - XY routing is deadlock-free outright (dimension order is acyclic);
//   - XY-YX routing is deadlock-free because Y-first packets ride the tyx
//     channels for their entire X leg, splitting traffic into two disjoint
//     acyclic subnetworks (Injxy->dx->txy->dy and Injyx->dy->tyx), which is
//     what the paper's "two additional dx VCs" buy;
//   - adaptive routing uses the odd-even turn model, deadlock-free on a
//     mesh with any per-link VC count (the paper sketches Duato-style
//     escape VCs instead; the odd-even model provides the same guarantee
//     within Table 1's channel budget — see DESIGN.md).
package core

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

const (
	// VCsPerSet is the number of VCs in one path set (one crossbar input
	// port of one module).
	VCsPerSet = 3
	// BufferDepth is the per-VC depth in flits: 4 path sets x 3 VCs x 5
	// flits = 60 flits per router, matching the generic baseline's total.
	BufferDepth = 5
	// NumVCs is the router-wide VC count (and the namespace upstream
	// routers address flit.VC in).
	NumVCs = 12
)

// Module indexes the two independent halves of the router.
type Module uint8

const (
	// Row is the East/West module.
	Row Module = iota
	// Col is the North/South module.
	Col
	numModules
)

// String names the module.
func (m Module) String() string {
	if m == Row {
		return "row"
	}
	return "column"
}

// ModuleOf returns the module that owns output direction d.
func ModuleOf(d topology.Direction) Module {
	if d.IsX() {
		return Row
	}
	return Col
}

// Outputs returns the module's two output directions, indexed by the local
// direction slot used in switch allocation.
func (m Module) Outputs() [2]topology.Direction {
	if m == Row {
		return [2]topology.Direction{topology.East, topology.West}
	}
	return [2]topology.Direction{topology.North, topology.South}
}

// DirSlot returns the module-local output slot (0 or 1) of direction d.
func DirSlot(d topology.Direction) int {
	switch d {
	case topology.East, topology.North:
		return 0
	case topology.West, topology.South:
		return 1
	default:
		panic(fmt.Sprintf("core: direction %s has no module slot", d))
	}
}

// VC id layout: ids 0-5 belong to the Row-Module (path set 1 then path set
// 2), ids 6-11 to the Column-Module.
//
//	Row  P1: 0 1 2    Row  P2: 3 4 5
//	Col  P1: 6 7 8    Col  P2: 9 10 11

// ModuleOfVC returns the module owning VC id.
func ModuleOfVC(id int) Module {
	if id < VCsPerSet*2 {
		return Row
	}
	return Col
}

// PortOfVC returns the module-local crossbar input port (0 or 1) of VC id.
func PortOfVC(id int) int { return (id / VCsPerSet) % 2 }

// VCConfig is one row of the paper's Table 1: the path-set class of each of
// the 12 VCs plus its direction assignment.
type VCConfig struct {
	Algorithm routing.Algorithm
	// Class is the paper's VC label (dx, dy, txy, tyx, Injxy, Injyx per
	// routing.Turn) for each VC id.
	Class [NumVCs]routing.Turn
	// Dir is the outgoing direction the channel serves. Injection channels
	// keep topology.Invalid (they serve either direction of their module;
	// source channels cannot participate in dependency cycles).
	Dir [NumVCs]topology.Direction

	// admit precomputes Admits as bitmaps: admit[class][nextOut] has bit
	// id set iff Class[id] == class and the channel's direction assignment
	// allows nextOut. Class and Dir are fixed at configuration time, so VA
	// candidate selection reduces to one table load ANDed with the live
	// claimable/alive masks. Built by ConfigFor.
	admit [routing.NumClasses][int(topology.Local) + 1]uint64
}

// AdmitMask returns the channels that may hold a packet of the given mode
// making the given transition toward nextOut, as a bitmap — the bulk form
// of Admits. nextOut must be cardinal.
func (c *VCConfig) AdmitMask(turn routing.Turn, mode flit.RouteMode, nextOut topology.Direction) uint64 {
	return c.admit[c.ClassFor(turn, mode)][nextOut]
}

// ConfigFor returns the Table 1 configuration for a routing algorithm.
func ConfigFor(alg routing.Algorithm) VCConfig {
	cfg := VCConfig{Algorithm: alg}
	for i := range cfg.Dir {
		cfg.Dir[i] = topology.Invalid
	}
	set := func(t routing.Turn, pairs ...any) {
		for i := 0; i < len(pairs); i += 2 {
			id := pairs[i].(int)
			cfg.Class[id] = t
			cfg.Dir[id] = pairs[i+1].(topology.Direction)
		}
	}
	const (
		n, e, s, w = topology.North, topology.East, topology.South, topology.West
		inv        = topology.Invalid
	)
	switch alg {
	case routing.XY:
		// Row P1: dx dx Injxy | Row P2: dx dx Injxy
		// Col P1: dy txy Injyx | Col P2: dy dy txy
		// XY routing needs 8 VCs; the spares are reassigned to the
		// asymmetrically loaded classes (extra dx for Head-of-Line relief
		// in the X dimension, a second Injxy for the dominant injection
		// path), per Section 3.1. Turn channels (txy) never chain along a
		// dimension, so they serve either output of their module.
		set(routing.ContinueX, 0, w, 1, w, 3, e, 4, e)
		set(routing.InjectX, 2, inv, 5, inv)
		set(routing.ContinueY, 6, s, 9, n, 10, s)
		set(routing.TurnXY, 7, inv, 11, inv)
		set(routing.InjectY, 8, inv)
	case routing.XYYX:
		// Row P1: dx tyx Injxy | Row P2: dx dx tyx
		// Col P1: dy txy Injyx | Col P2: dy dy txy
		// tyx channels carry Y-first packets for their whole X leg, so
		// they chain and need the direction split; txy channels do not.
		set(routing.ContinueX, 0, w, 3, e, 4, e)
		set(routing.TurnYX, 1, w, 5, e)
		set(routing.InjectX, 2, inv)
		set(routing.ContinueY, 6, s, 9, n, 10, s)
		set(routing.TurnXY, 7, inv, 11, inv)
		set(routing.InjectY, 8, inv)
	case routing.Adaptive:
		// Row P1: dx tyx Injxy | Row P2: dx dx tyx
		// Col P1: dy txy Injyx | Col P2: dy txy txy
		// Under the odd-even turn model neither turn class chains (a
		// turned packet continues in dx/dy), so both serve either output.
		set(routing.ContinueX, 0, w, 3, e, 4, w)
		set(routing.TurnYX, 1, inv, 5, inv)
		set(routing.InjectX, 2, inv)
		set(routing.ContinueY, 6, s, 9, n)
		set(routing.TurnXY, 7, inv, 10, inv, 11, inv)
		set(routing.InjectY, 8, inv)
	default:
		panic(fmt.Sprintf("core: unknown algorithm %v", alg))
	}
	for id := 0; id < NumVCs; id++ {
		for _, d := range topology.CardinalDirections {
			if cfg.Dir[id] == topology.Invalid || cfg.Dir[id] == d {
				cfg.admit[cfg.Class[id]][d] |= 1 << uint(id)
			}
		}
	}
	return cfg
}

// ClassFor maps the dimension transition of a packet to the channel class
// it must occupy. Under XY-YX routing, Y-first packets ride tyx-class
// channels for their whole X leg (they "switched from Y to X"), keeping the
// two oblivious subnetworks disjoint and acyclic.
func (c *VCConfig) ClassFor(turn routing.Turn, mode flit.RouteMode) routing.Turn {
	if c.Algorithm == routing.XYYX && mode == flit.YFirst && turn == routing.ContinueX {
		return routing.TurnYX
	}
	return turn
}

// Admits reports whether channel id may hold a packet of the given mode
// making the given transition toward nextOut.
func (c *VCConfig) Admits(id int, turn routing.Turn, mode flit.RouteMode, nextOut topology.Direction) bool {
	if c.Class[id] != c.ClassFor(turn, mode) {
		return false
	}
	return c.Dir[id] == topology.Invalid || c.Dir[id] == nextOut
}

// ClassIDs returns the VC ids carrying class t.
func (c *VCConfig) ClassIDs(t routing.Turn) []int {
	var out []int
	for id, cl := range c.Class {
		if cl == t {
			out = append(out, id)
		}
	}
	return out
}

// MinimumVCs returns the number of VCs strictly required for correct
// deadlock-free operation of the algorithm (paper Section 3.1: XY needs 8;
// XY-YX needs 10; adaptive needs 12).
func MinimumVCs(alg routing.Algorithm) int {
	switch alg {
	case routing.XY:
		return 8
	case routing.XYYX:
		return 10
	default:
		return 12
	}
}
