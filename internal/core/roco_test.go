package core

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

func newTestRouter(alg routing.Algorithm) *Router {
	engine := router.NewRouteEngine(topology.NewMesh(4, 4), alg, nil)
	return New(5, engine) // node 5 = (1,1), fully interior
}

func TestCanServeHealthy(t *testing.T) {
	r := newTestRouter(routing.XY)
	cases := []struct {
		from, out topology.Direction
		want      bool
	}{
		{topology.East, topology.West, true},   // dx continuation
		{topology.North, topology.South, true}, // dy continuation
		{topology.East, topology.North, true},  // txy turn
		{topology.East, topology.Local, true},  // early ejection
		{topology.Local, topology.East, true},  // injection
		{topology.North, topology.East, false}, // tyx: XY config has no tyx channels
	}
	for _, tc := range cases {
		if got := r.CanServe(tc.from, tc.out); got != tc.want {
			t.Errorf("CanServe(%s,%s) = %v, want %v", tc.from, tc.out, got, tc.want)
		}
	}
}

func TestCanServeAdaptiveHasAllTurns(t *testing.T) {
	r := newTestRouter(routing.Adaptive)
	if !r.CanServe(topology.North, topology.East) {
		t.Error("adaptive config must serve tyx turns")
	}
}

func TestModuleFaultIsolatesOnlyOneModule(t *testing.T) {
	for _, comp := range []fault.Component{fault.VA, fault.Crossbar, fault.MuxDemux} {
		r := newTestRouter(routing.XY)
		r.ApplyFault(fault.Fault{Node: 5, Component: comp, Module: fault.RowModule})
		if !r.Blocked(Row) || r.Blocked(Col) {
			t.Errorf("%s fault should block exactly the row module", comp)
		}
		if r.CanServe(topology.East, topology.West) {
			t.Errorf("%s: row service should be blocked", comp)
		}
		if !r.CanServe(topology.North, topology.South) {
			t.Errorf("%s: column service should survive", comp)
		}
		if !r.CanServe(topology.East, topology.Local) {
			t.Errorf("%s: early ejection should survive", comp)
		}
		if !r.CanServe(topology.East, topology.Invalid) {
			t.Errorf("%s: partial service should be reported", comp)
		}
	}
}

func TestRecoverableFaultsDoNotBlock(t *testing.T) {
	for _, comp := range []fault.Component{fault.RC, fault.Buffer, fault.SA} {
		r := newTestRouter(routing.XY)
		r.ApplyFault(fault.Fault{Node: 5, Component: comp, Module: fault.RowModule, VC: 0})
		if r.Blocked(Row) || r.Blocked(Col) {
			t.Errorf("%s fault must not block a module (hardware recycling)", comp)
		}
	}
}

func TestBufferFaultDegradesChannel(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.ApplyFault(fault.Fault{Node: 5, Component: fault.Buffer, Module: fault.RowModule, VC: 3})
	if d := r.InputVCDepth(topology.West, 3); d != 1 {
		t.Errorf("faulty buffer depth = %d, want 1 (bypass latch)", d)
	}
	if d := r.InputVCDepth(topology.West, 4); d != BufferDepth {
		t.Errorf("healthy buffer depth = %d, want %d", d, BufferDepth)
	}
}

func TestBlockedModuleDepthsAndClaims(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.ApplyFault(fault.Fault{Node: 5, Component: fault.Crossbar, Module: fault.ColumnModule})
	for id := 0; id < NumVCs; id++ {
		wantDepth := BufferDepth
		if ModuleOfVC(id) == Col {
			wantDepth = 0
		}
		if d := r.InputVCDepth(topology.South, id); d != wantDepth {
			t.Errorf("vc %d depth = %d, want %d", id, d, wantDepth)
		}
		if ModuleOfVC(id) == Col && r.InputVCClaimable(topology.South, id) {
			t.Errorf("vc %d in a blocked module must not be claimable", id)
		}
	}
}

func TestCongestionCostBlockedModule(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.ApplyFault(fault.Fault{Node: 5, Component: fault.VA, Module: fault.RowModule})
	if r.CongestionCost(topology.East) < 1e6 {
		t.Error("blocked module output should be prohibitively expensive")
	}
}

func TestClaimProtocol(t *testing.T) {
	r := newTestRouter(routing.XY)
	if !r.InputVCClaimable(topology.West, 3) {
		t.Fatal("fresh channel should be claimable")
	}
	if !r.ClaimInputVC(topology.West, 3) {
		t.Fatal("claim should succeed")
	}
	if r.ClaimInputVC(topology.East, 3) {
		t.Fatal("cross-feeder claim of an occupied channel must fail")
	}
	if !r.ClaimInputVC(topology.West, 3) {
		t.Fatal("same-feeder back-to-back claim should succeed")
	}
}

func TestLoopbackInjection(t *testing.T) {
	r := newTestRouter(routing.XY)
	var delivered []*flit.Flit
	r.SetSink(func(f *flit.Flit, cycle int64) { delivered = append(delivered, f) })
	fl := flit.Packet{ID: 1, Src: 5, Dst: 5, Flits: 4}.Segment()
	for _, f := range fl {
		f.OutPort = topology.Local
		if !r.TryInject(f, 0) {
			t.Fatal("loopback injection must always be accepted")
		}
	}
	if len(delivered) != 4 {
		t.Fatalf("delivered %d flits, want 4", len(delivered))
	}
	if !r.Quiescent() {
		t.Error("router should be quiescent after loopback")
	}
}

func TestInjectionRespectsBlockedModule(t *testing.T) {
	r := newTestRouter(routing.XY)
	r.ApplyFault(fault.Fault{Node: 5, Component: fault.Crossbar, Module: fault.RowModule})
	head := flit.Packet{ID: 1, Src: 5, Dst: 6, Flits: 1}.Segment()[0]
	head.OutPort = topology.East
	if r.TryInject(head, 0) {
		t.Error("injection into a blocked row module must fail")
	}
	head2 := flit.Packet{ID: 2, Src: 5, Dst: 9, Flits: 1}.Segment()[0]
	head2.OutPort = topology.North
	if !r.TryInject(head2, 0) {
		t.Error("injection into the healthy column module must succeed")
	}
}

func TestNumInputVCs(t *testing.T) {
	r := newTestRouter(routing.XY)
	if r.NumInputVCs(topology.East) != NumVCs {
		t.Error("RoCo addresses a router-wide namespace of 12 channels")
	}
}
