package core

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// harness wires a full mesh of RoCo routers with real pipes but drives
// cycles manually, for microarchitecture-level assertions that the
// network-level tests cannot see.
type harness struct {
	topo    *topology.Mesh
	engine  *router.RouteEngine
	routers []*Router
	conns   []*router.Conn
	sunk    []*flit.Flit
	cycle   int64
}

func newHarness(t *testing.T, w, h int, alg routing.Algorithm) *harness {
	t.Helper()
	hn := &harness{topo: topology.NewMesh(w, h)}
	hn.routers = make([]*Router, hn.topo.Nodes())
	hn.engine = router.NewRouteEngine(hn.topo, alg, func(id int) router.Router { return hn.routers[id] })
	for id := range hn.routers {
		hn.routers[id] = New(id, hn.engine)
	}
	for id := range hn.routers {
		for _, d := range topology.CardinalDirections {
			nb, ok := hn.topo.Neighbor(id, d)
			if !ok {
				continue
			}
			conn := &router.Conn{}
			hn.conns = append(hn.conns, conn)
			down := hn.routers[nb]
			depths := make([]int, down.NumInputVCs(d.Opposite()))
			for vc := range depths {
				depths[vc] = down.InputVCDepth(d.Opposite(), vc)
			}
			hn.routers[id].AttachOutput(d, conn, depths)
			hn.routers[id].SetNeighbor(d, down)
			down.AttachInput(d.Opposite(), conn)
		}
		hn.routers[id].SetSink(func(f *flit.Flit, cycle int64) { hn.sunk = append(hn.sunk, f) })
	}
	return hn
}

func (h *harness) step() {
	for _, r := range h.routers {
		r.Tick(h.cycle)
	}
	for _, c := range h.conns {
		c.Advance()
	}
	h.cycle++
}

// inject pushes a whole packet into src's router over successive cycles.
func (h *harness) inject(t *testing.T, src, dst int, flits int) {
	t.Helper()
	pkt := flit.Packet{ID: uint64(src*1000 + dst), Src: src, Dst: dst, Flits: flits}
	for _, f := range pkt.Segment() {
		if f.Type.IsHead() {
			f.OutPort = h.engine.FirstHop(src, f)
		}
		for try := 0; ; try++ {
			if h.routers[src].TryInject(f, h.cycle) {
				break
			}
			if try > 50 {
				t.Fatal("injection starved")
			}
			h.step()
		}
	}
}

// classAt returns the class of the channel currently holding pkt's head at
// router node, or "" when absent.
func (h *harness) classAt(node int, pktID uint64) string {
	r := h.routers[node]
	for _, vc := range r.vcs {
		if f := vc.Front(); f != nil && f.PacketID == pktID && f.Type.IsHead() {
			return vc.Class.String()
		}
	}
	return ""
}

// runUntilSunk steps until n flits have been delivered (or fails).
func (h *harness) runUntilSunk(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < 500 && len(h.sunk) < n; i++ {
		h.step()
	}
	if len(h.sunk) < n {
		t.Fatalf("only %d/%d flits delivered", len(h.sunk), n)
	}
}

func TestGuidedQueuingPlacesByClass(t *testing.T) {
	// A packet from (0,1) to (3,2) under XY: travels E,E,E then N then
	// ejects. At intermediate routers its head must sit in dx channels; at
	// the turn corner (3,1) in a txy channel.
	h := newHarness(t, 4, 4, routing.XY)
	src := h.topo.ID(topology.Coord{X: 0, Y: 1})
	dst := h.topo.ID(topology.Coord{X: 3, Y: 2})
	corner := h.topo.ID(topology.Coord{X: 3, Y: 1})
	mid := h.topo.ID(topology.Coord{X: 1, Y: 1})
	pktID := uint64(src*1000 + dst)

	h.inject(t, src, dst, 4)
	sawDx, sawTxy := false, false
	for i := 0; i < 200 && len(h.sunk) < 4; i++ {
		if h.classAt(mid, pktID) == "dx" {
			sawDx = true
		}
		if cl := h.classAt(corner, pktID); cl != "" {
			if cl != "txy" {
				t.Fatalf("head at the turn corner sits in %q, want txy", cl)
			}
			sawTxy = true
		}
		h.step()
	}
	if !sawDx {
		t.Error("head never observed in a dx channel mid-row")
	}
	if !sawTxy {
		t.Error("head never observed in a txy channel at the corner")
	}
	h.runUntilSunk(t, 4)
}

func TestGuidedQueuingInjectionClasses(t *testing.T) {
	h := newHarness(t, 4, 4, routing.XY)
	src := h.topo.ID(topology.Coord{X: 1, Y: 1})

	// X-bound packet starts in an Injxy channel.
	dstX := h.topo.ID(topology.Coord{X: 3, Y: 1})
	h.inject(t, src, dstX, 1)
	if cl := h.classAt(src, uint64(src*1000+dstX)); cl != "Injxy" {
		t.Errorf("X-bound injection sits in %q, want Injxy", cl)
	}
	// Y-bound packet starts in the Injyx channel.
	dstY := h.topo.ID(topology.Coord{X: 1, Y: 3})
	h.inject(t, src, dstY, 1)
	if cl := h.classAt(src, uint64(src*1000+dstY)); cl != "Injyx" {
		t.Errorf("Y-bound injection sits in %q, want Injyx", cl)
	}
	h.runUntilSunk(t, 2)
}

func TestEarlyEjectionNeverTouchesCrossbar(t *testing.T) {
	h := newHarness(t, 4, 4, routing.XY)
	src := h.topo.ID(topology.Coord{X: 0, Y: 0})
	dst := h.topo.ID(topology.Coord{X: 2, Y: 0})
	h.inject(t, src, dst, 4)
	h.runUntilSunk(t, 4)

	dstRouter := h.routers[dst]
	if dstRouter.Activity().CrossbarTraversals != 0 {
		t.Errorf("destination router's crossbar fired %d times; early ejection should bypass it",
			dstRouter.Activity().CrossbarTraversals)
	}
	if dstRouter.Activity().EarlyEjections != 4 {
		t.Errorf("early ejections = %d, want 4", dstRouter.Activity().EarlyEjections)
	}
}

func TestYFirstPacketRidesTyx(t *testing.T) {
	// Under XY-YX, a Y-first packet's X leg must occupy tyx-class channels
	// (the deadlock discipline of DESIGN.md 3a).
	h := newHarness(t, 4, 4, routing.XYYX)
	src := h.topo.ID(topology.Coord{X: 0, Y: 0})
	dst := h.topo.ID(topology.Coord{X: 3, Y: 2})
	mid := h.topo.ID(topology.Coord{X: 1, Y: 2}) // on the X leg after the Y leg
	pkt := flit.Packet{ID: 42, Src: src, Dst: dst, Flits: 4, Mode: flit.YFirst}

	for _, f := range pkt.Segment() {
		if f.Type.IsHead() {
			f.OutPort = h.engine.FirstHop(src, f)
		}
		for try := 0; !h.routers[src].TryInject(f, h.cycle); try++ {
			if try > 50 {
				t.Fatal("injection starved")
			}
			h.step()
		}
	}
	sawTyx := false
	for i := 0; i < 300 && len(h.sunk) < 4; i++ {
		if cl := h.classAt(mid, 42); cl != "" {
			if cl != "tyx" {
				t.Fatalf("Y-first packet's X leg sits in %q, want tyx", cl)
			}
			sawTyx = true
		}
		h.step()
	}
	if !sawTyx {
		t.Error("Y-first packet never observed in a tyx channel on its X leg")
	}
	h.runUntilSunk(t, 4)
}

func TestMirrorModulesIndependent(t *testing.T) {
	// Two packets, one pure-X and one pure-Y through the same router, must
	// both be in flight concurrently: the modules do not serialize each
	// other.
	h := newHarness(t, 4, 4, routing.XY)
	center := h.topo.ID(topology.Coord{X: 1, Y: 1})
	westOf := h.topo.ID(topology.Coord{X: 0, Y: 1})
	eastOf := h.topo.ID(topology.Coord{X: 3, Y: 1})
	southOf := h.topo.ID(topology.Coord{X: 1, Y: 0})
	northOf := h.topo.ID(topology.Coord{X: 1, Y: 3})

	h.inject(t, westOf, eastOf, 4)   // X traffic through center
	h.inject(t, southOf, northOf, 4) // Y traffic through center
	h.runUntilSunk(t, 8)

	act := h.routers[center].Activity()
	if act.CrossbarTraversals < 8 {
		t.Errorf("center router switched %d flits, want >= 8", act.CrossbarTraversals)
	}
}
