package core

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// classCounts tallies the number of channels per class.
func classCounts(cfg VCConfig) map[routing.Turn]int {
	out := map[routing.Turn]int{}
	for _, c := range cfg.Class {
		out[c]++
	}
	return out
}

func TestTable1MatchesPaper(t *testing.T) {
	// The exact per-path-set labels of the paper's Table 1.
	want := map[routing.Algorithm][4][3]routing.Turn{
		routing.XY: {
			{routing.ContinueX, routing.ContinueX, routing.InjectX},
			{routing.ContinueX, routing.ContinueX, routing.InjectX},
			{routing.ContinueY, routing.TurnXY, routing.InjectY},
			{routing.ContinueY, routing.ContinueY, routing.TurnXY},
		},
		routing.XYYX: {
			{routing.ContinueX, routing.TurnYX, routing.InjectX},
			{routing.ContinueX, routing.ContinueX, routing.TurnYX},
			{routing.ContinueY, routing.TurnXY, routing.InjectY},
			{routing.ContinueY, routing.ContinueY, routing.TurnXY},
		},
		routing.Adaptive: {
			{routing.ContinueX, routing.TurnYX, routing.InjectX},
			{routing.ContinueX, routing.ContinueX, routing.TurnYX},
			{routing.ContinueY, routing.TurnXY, routing.InjectY},
			{routing.ContinueY, routing.TurnXY, routing.TurnXY},
		},
	}
	for alg, sets := range want {
		cfg := ConfigFor(alg)
		for set := 0; set < 4; set++ {
			for slot := 0; slot < VCsPerSet; slot++ {
				id := set*VCsPerSet + slot
				if cfg.Class[id] != sets[set][slot] {
					t.Errorf("%s: vc %d class = %s, want %s", alg, id, cfg.Class[id], sets[set][slot])
				}
			}
		}
	}
}

func TestTable1ClassTotals(t *testing.T) {
	// Section 3.1's accounting: XY has 4 dx / 3 dy / 2 txy / 2 Injxy /
	// 1 Injyx; XY-YX trades an Injxy and a dx for two tyx; adaptive trades
	// a dy for a txy.
	cases := map[routing.Algorithm]map[routing.Turn]int{
		routing.XY: {
			routing.ContinueX: 4, routing.ContinueY: 3, routing.TurnXY: 2,
			routing.InjectX: 2, routing.InjectY: 1,
		},
		routing.XYYX: {
			routing.ContinueX: 3, routing.ContinueY: 3, routing.TurnXY: 2,
			routing.TurnYX: 2, routing.InjectX: 1, routing.InjectY: 1,
		},
		routing.Adaptive: {
			routing.ContinueX: 3, routing.ContinueY: 2, routing.TurnXY: 3,
			routing.TurnYX: 2, routing.InjectX: 1, routing.InjectY: 1,
		},
	}
	for alg, want := range cases {
		got := classCounts(ConfigFor(alg))
		for class, n := range want {
			if got[class] != n {
				t.Errorf("%s: %d %s channels, want %d", alg, got[class], class, n)
			}
		}
	}
}

func TestChainClassesAreDirectionSplit(t *testing.T) {
	// Every class that chains along a dimension must have channels in both
	// directions (otherwise one travel direction has no channel at all),
	// and every chain channel must carry a direction (head-on sharing of a
	// chain channel deadlocks).
	for _, alg := range routing.Algorithms {
		cfg := ConfigFor(alg)
		chainDirs := map[routing.Turn]map[topology.Direction]int{}
		for id, class := range cfg.Class {
			switch class {
			case routing.ContinueX, routing.ContinueY:
				if cfg.Dir[id] == topology.Invalid {
					t.Errorf("%s: chain channel %d (%s) has no direction", alg, id, class)
					continue
				}
				if chainDirs[class] == nil {
					chainDirs[class] = map[topology.Direction]int{}
				}
				chainDirs[class][cfg.Dir[id]]++
			}
		}
		if chainDirs[routing.ContinueX][topology.East] == 0 || chainDirs[routing.ContinueX][topology.West] == 0 {
			t.Errorf("%s: dx channels must cover both East and West", alg)
		}
		if chainDirs[routing.ContinueY][topology.North] == 0 || chainDirs[routing.ContinueY][topology.South] == 0 {
			t.Errorf("%s: dy channels must cover both North and South", alg)
		}
	}
}

func TestXYYXTyxDirectionSplit(t *testing.T) {
	// Under XY-YX the tyx channels carry Y-first packets' whole X legs, so
	// they chain and must be direction-split.
	cfg := ConfigFor(routing.XYYX)
	dirs := map[topology.Direction]bool{}
	for id, class := range cfg.Class {
		if class == routing.TurnYX {
			if cfg.Dir[id] == topology.Invalid {
				t.Fatalf("XYYX tyx channel %d must be direction-assigned", id)
			}
			dirs[cfg.Dir[id]] = true
		}
	}
	if !dirs[topology.East] || !dirs[topology.West] {
		t.Error("XYYX tyx channels must cover both East and West")
	}
}

func TestAdmitsEveryTransitionHasAChannel(t *testing.T) {
	// For every algorithm, every (turn, mode, direction) combination a
	// packet can actually need must be admitted by at least one channel.
	type need struct {
		turn routing.Turn
		mode flit.RouteMode
		out  topology.Direction
	}
	needsFor := map[routing.Algorithm][]need{
		routing.XY: {
			{routing.ContinueX, flit.XFirst, topology.East},
			{routing.ContinueX, flit.XFirst, topology.West},
			{routing.ContinueY, flit.XFirst, topology.North},
			{routing.ContinueY, flit.XFirst, topology.South},
			{routing.TurnXY, flit.XFirst, topology.North},
			{routing.TurnXY, flit.XFirst, topology.South},
			{routing.InjectX, flit.XFirst, topology.East},
			{routing.InjectY, flit.XFirst, topology.North},
		},
		routing.XYYX: {
			{routing.ContinueX, flit.XFirst, topology.East},
			{routing.ContinueX, flit.XFirst, topology.West},
			{routing.ContinueX, flit.YFirst, topology.East}, // rides tyx
			{routing.ContinueX, flit.YFirst, topology.West},
			{routing.ContinueY, flit.XFirst, topology.North},
			{routing.ContinueY, flit.YFirst, topology.South},
			{routing.TurnXY, flit.XFirst, topology.North},
			{routing.TurnYX, flit.YFirst, topology.East},
			{routing.TurnYX, flit.YFirst, topology.West},
		},
		routing.Adaptive: {
			{routing.ContinueX, flit.ModeAdaptive, topology.East},
			{routing.ContinueX, flit.ModeAdaptive, topology.West},
			{routing.ContinueY, flit.ModeAdaptive, topology.North},
			{routing.ContinueY, flit.ModeAdaptive, topology.South},
			{routing.TurnXY, flit.ModeAdaptive, topology.North},
			{routing.TurnXY, flit.ModeAdaptive, topology.South},
			{routing.TurnYX, flit.ModeAdaptive, topology.East},
			{routing.TurnYX, flit.ModeAdaptive, topology.West},
		},
	}
	for alg, needs := range needsFor {
		cfg := ConfigFor(alg)
		for _, n := range needs {
			found := false
			for id := range cfg.Class {
				if cfg.Admits(id, n.turn, n.mode, n.out) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no channel admits turn=%s mode=%s out=%s", alg, n.turn, n.mode, n.out)
			}
		}
	}
}

func TestModuleLayout(t *testing.T) {
	for id := 0; id < NumVCs; id++ {
		wantModule := Row
		if id >= 6 {
			wantModule = Col
		}
		if ModuleOfVC(id) != wantModule {
			t.Errorf("vc %d module = %s", id, ModuleOfVC(id))
		}
	}
	if PortOfVC(0) != 0 || PortOfVC(3) != 1 || PortOfVC(6) != 0 || PortOfVC(11) != 1 {
		t.Error("port layout wrong")
	}
	if ModuleOf(topology.East) != Row || ModuleOf(topology.North) != Col {
		t.Error("module-of-direction wrong")
	}
	if DirSlot(topology.East) != 0 || DirSlot(topology.South) != 1 {
		t.Error("direction slots wrong")
	}
}

func TestModuleClassesStayInModule(t *testing.T) {
	// dx/tyx/Injxy channels must live in the Row module; dy/txy/Injyx in
	// the Column module — guided flit queuing depends on it.
	for _, alg := range routing.Algorithms {
		cfg := ConfigFor(alg)
		for id, class := range cfg.Class {
			m := ModuleOfVC(id)
			switch class {
			case routing.ContinueX, routing.TurnYX, routing.InjectX:
				if m != Row {
					t.Errorf("%s: %s channel %d must be in the row module", alg, class, id)
				}
			case routing.ContinueY, routing.TurnXY, routing.InjectY:
				if m != Col {
					t.Errorf("%s: %s channel %d must be in the column module", alg, class, id)
				}
			}
		}
	}
}

func TestMinimumVCs(t *testing.T) {
	if MinimumVCs(routing.XY) != 8 || MinimumVCs(routing.XYYX) != 10 || MinimumVCs(routing.Adaptive) != 12 {
		t.Error("minimum VC counts should match Section 3.1")
	}
}
