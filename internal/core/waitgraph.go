package core

import (
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// WaitEdges exposes the router's blocked-channel dependencies for the
// network's deadlock detector: for every channel whose front packet cannot
// currently make progress, the downstream channels it is waiting to
// acquire (VA-blocked heads) or to drain (credit-blocked flits).
func (r *Router) WaitEdges() []router.WaitEdge {
	var out []router.WaitEdge
	topo := r.engine.Topology()
	for id, vc := range r.vcs {
		if vc.Len() == 0 || vc.Doomed() {
			continue
		}
		if vc.NeedsVA() {
			head := vc.Front()
			outPort := vc.OutPort()
			if outPort == topology.Invalid || outPort == topology.Local {
				continue
			}
			down, ok := topo.Neighbor(r.id, outPort)
			if !ok {
				continue
			}
			nbr := r.neighbors[outPort]
			from := outPort.Opposite()
			nextOut := vc.NextOut()
			if nextOut == topology.Invalid || nextOut == topology.Local {
				continue
			}
			turn := routing.TurnOf(from, nextOut)
			blockedAll := true
			var edges []router.WaitEdge
			for cand := range r.cfg.Class {
				if !r.cfg.Admits(cand, turn, head.Mode, nextOut) {
					continue
				}
				if nbr != nil && nbr.InputVCClaimable(from, cand) {
					blockedAll = false
					break
				}
				edges = append(edges, router.WaitEdge{FromNode: r.id, FromVC: id, ToNode: down, ToVC: cand})
			}
			if blockedAll {
				out = append(out, edges...)
			}
			continue
		}
		// Routed packet blocked on credits for its granted channel.
		if vc.OutVC() >= 0 && !vc.EjectNext() && !r.creditOK(vc) {
			if down, ok := topo.Neighbor(r.id, vc.OutPort()); ok {
				out = append(out, router.WaitEdge{FromNode: r.id, FromVC: id, ToNode: down, ToVC: vc.OutVC()})
			}
		}
	}
	return out
}
