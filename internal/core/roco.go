package core

import (
	"fmt"
	"math/bits"

	"github.com/rocosim/roco/internal/arbiter"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// Router is the RoCo decoupled router.
type Router struct {
	router.Recovery

	id     int
	engine *router.RouteEngine
	cfg    VCConfig
	sink   router.Sink

	in        [5]*router.Conn
	out       [5]*router.Conn
	books     [5]*router.OutVCBook
	neighbors [5]router.Router

	vcs [NumVCs]*router.VC

	// Per-module allocation hardware.
	vaArb [5][]arbiter.RoundRobin // per (output dir, downstream vc id); value slab, not boxed

	saArb  [2][2][2]*arbiter.RoundRobin
	mirror [2]*arbiter.Mirror
	outArb [2][2]*arbiter.RoundRobin // separable fallback: per (module, port) nomination
	outSel [2][2]*arbiter.RoundRobin // separable fallback: per (module, direction) selection

	// disableMirror replaces the Mirroring-Effect allocator with a plain
	// separable output stage (one 2:1 arbiter per output, no mirrored
	// global decision). Ablation only: quantifies what the mirror buys.
	disableMirror bool
	// noFastPath disables Tick's dormant-router early return (reference
	// kernel mode).
	noFastPath bool

	injVC int

	// Fault state (Hardware Recycling, paper Section 4).
	blocked  [2]bool // module isolated (VA/crossbar/MUX-DEMUX failure)
	saShared [2]bool // SA offloaded onto the module's VA arbiters
	rcFault  bool    // routing unit failed: neighbors double-route
	vaBusy   [2]bool // VA handled a header this cycle (gates shared SA)

	act  router.Activity
	cont router.Contention

	// Per-cycle request scratch as bitmaps over the router-wide VC ids:
	// vaFailed marks failed VA requesters (speculative SA), targReq[out][c]
	// collects the requesters of downstream channel c through output out,
	// targUsed[out] marks the c with requesters, and vaNext records each
	// requester's look-ahead route.
	vaFailed uint64
	targReq  [5][NumVCs]uint64
	targUsed [5]uint16
	vaNext   [NumVCs]topology.Direction
}

// Module bit masks over the router-wide VC id namespace: ids 0-5 are the
// Row-Module's channels, ids 6-11 the Column-Module's.
const (
	modVCMask = uint64(1)<<(2*VCsPerSet) - 1
	rowVCMask = modVCMask
	colVCMask = modVCMask << (2 * VCsPerSet)
)

// moduleVCMask returns the VC-id bitmap of module m's channels.
func moduleVCMask(m Module) uint64 {
	if m == Row {
		return rowVCMask
	}
	return colVCMask
}

// New returns a RoCo router for the given node, configured per Table 1 for
// the engine's routing algorithm.
func New(id int, engine *router.RouteEngine) *Router {
	r := &Router{id: id, engine: engine, cfg: ConfigFor(engine.Algorithm()), injVC: -1}
	for v := 0; v < NumVCs; v++ {
		vc := engine.NewVC(v, BufferDepth)
		vc.Class = r.cfg.Class[v]
		r.vcs[v] = vc
	}
	for _, d := range topology.CardinalDirections {
		r.vaArb[d] = arbiter.NewRoundRobinSlice(NumVCs, NumVCs)
	}
	for m := 0; m < 2; m++ {
		for p := 0; p < 2; p++ {
			for d := 0; d < 2; d++ {
				r.saArb[m][p][d] = arbiter.NewRoundRobin(VCsPerSet)
			}
			r.outArb[m][p] = arbiter.NewRoundRobin(2)
			r.outSel[m][p] = arbiter.NewRoundRobin(2)
		}
		r.mirror[m] = arbiter.NewMirror()
	}
	r.InitRecovery(id, r.vcs[:], r.grantTarget, r.abortCleanup)
	r.SetFeederProbe(func(d topology.Direction, pkt uint64) bool {
		return d.IsCardinal() && r.in[d] != nil && r.in[d].Flit.Carries(pkt)
	})
	return r
}

// grantTarget resolves a VC index to its front packet's grant target.
func (r *Router) grantTarget(i int) (router.GrantRef, bool) {
	out := r.vcs[i].OutPort()
	if !out.IsCardinal() {
		return router.GrantRef{}, false
	}
	return router.GrantRef{Book: r.books[out], Claimant: r.neighbors[out], Side: out.Opposite()}, true
}

// abortCleanup releases the injection channel if the aborted packet was
// the one being injected.
func (r *Router) abortCleanup(i int) {
	if r.injVC == i {
		r.injVC = -1
	}
}

// DisableMirror switches the router's switch allocation to a plain
// separable output stage. Call before traffic flows; ablation use only.
func (r *Router) DisableMirror() { r.disableMirror = true }

// Config exposes the router's Table 1 VC configuration (tests and the
// Table 1 experiment read it).
func (r *Router) Config() VCConfig { return r.cfg }

// ID returns the node this router serves.
func (r *Router) ID() int { return r.id }

// AttachInput wires an arriving link.
func (r *Router) AttachInput(d topology.Direction, c *router.Conn) { r.in[d] = c }

// AttachOutput wires a departing link and sizes its credit book from the
// downstream per-VC depths.
func (r *Router) AttachOutput(d topology.Direction, c *router.Conn, depths []int) {
	r.out[d] = c
	r.books[d] = router.NewOutVCBook(len(depths), BufferDepth)
	for vc, depth := range depths {
		if depth != BufferDepth {
			r.books[d].SetDepth(vc, depth)
		}
	}
}

// SetNeighbor records the router reached through output d.
func (r *Router) SetNeighbor(d topology.Direction, n router.Router) { r.neighbors[d] = n }

// SetSink installs the PE delivery callback.
func (r *Router) SetSink(s router.Sink) { r.sink = s }

// Activity returns the per-component event counters.
func (r *Router) Activity() *router.Activity { return &r.act }

// Contention returns the switch-conflict tallies.
func (r *Router) Contention() *router.Contention { return &r.cont }

// ApplyFault reacts to a permanent fault per the Hardware Recycling table:
// RC failures are absorbed by downstream double routing, buffer failures by
// virtual queuing over the bypass path, SA failures by offloading onto the
// idle VA arbiters, and VA/crossbar/MUX-DEMUX failures by isolating the
// afflicted module while the other module keeps full service.
func (r *Router) ApplyFault(flt fault.Fault) {
	r.NoteFault()
	m := Module(flt.Module % 2)
	switch flt.Component {
	case fault.RC:
		r.rcFault = true
	case fault.Buffer:
		id := flt.VC % NumVCs
		vc := r.vcs[id]
		vc.Faulty = true
		vc.FaultPenalty = 2 // round-trip of the virtual-queuing handshake
		// Installed live, the failed buffer's contents are lost; virtual
		// queuing protects only traffic arriving after the reconfiguration.
		vc.DoomResidents()
	case fault.SA:
		r.saShared[m] = true
	case fault.VA, fault.Crossbar, fault.MuxDemux:
		r.blocked[m] = true
		// Traffic resident in the isolated module can never traverse its
		// crossbar again; condemn it so the wormholes drain as drops.
		for id, vc := range r.vcs {
			if ModuleOfVC(id) == m {
				vc.Condemn()
			}
		}
	}
}

// RefreshOutput re-propagates the downstream input-VC depths into output
// d's credit book after a runtime fault changed them (the credit half of
// the paper's fault-handshake signals).
func (r *Router) RefreshOutput(d topology.Direction, depths []int) {
	b := r.books[d]
	if b == nil {
		return
	}
	for vc, depth := range depths {
		b.SetDepth(vc, depth)
	}
}

// Blocked reports whether module m is isolated (tests use it).
func (r *Router) Blocked(m Module) bool { return r.blocked[m] }

// CanServe reports whether a flit entering on side from and leaving
// through out can be served. Early ejection (out == Local) survives module
// faults; a cardinal output requires its module alive and a VC class for
// the (from, out) transition to exist in the configuration.
func (r *Router) CanServe(from, out topology.Direction) bool {
	if r.Severed(from) || r.Severed(out) {
		return false
	}
	switch out {
	case topology.Local:
		return true
	case topology.Invalid:
		// "Any service at all": at least one module still operates (the
		// decoupled design's graceful degradation) or ejection suffices.
		return !r.blocked[Row] || !r.blocked[Col]
	}
	if r.blocked[ModuleOf(out)] {
		return false
	}
	turn := routing.TurnOf(from, out)
	for _, mode := range []flit.RouteMode{flit.XFirst, flit.YFirst} {
		for id := range r.cfg.Class {
			if r.cfg.Admits(id, turn, mode, out) && !r.blocked[ModuleOfVC(id)] {
				return true
			}
		}
	}
	return false
}

// CongestionCost estimates pressure on output out from the credit
// occupancy of its book; a blocked module is infinitely expensive.
func (r *Router) CongestionCost(out topology.Direction) float64 {
	if out.IsCardinal() && r.blocked[ModuleOf(out)] {
		return 1e9
	}
	b := r.books[out]
	if b == nil {
		return 0
	}
	capacity := b.Size() * BufferDepth
	return float64(capacity-b.FreeSlots()) / float64(capacity)
}

// NumInputVCs returns the router-wide VC namespace size.
func (r *Router) NumInputVCs(topology.Direction) int { return NumVCs }

// InputVCDepth returns the usable depth of VC vc (1 under virtual queuing,
// 0 inside a blocked module).
func (r *Router) InputVCDepth(from topology.Direction, vc int) int {
	if r.blocked[ModuleOfVC(vc)] || r.Severed(from) {
		return 0
	}
	return r.vcs[vc].Capacity()
}

// InputVCClaimable reports whether VC vc can take a new packet arriving
// over link from.
func (r *Router) InputVCClaimable(from topology.Direction, vc int) bool {
	return !r.blocked[ModuleOfVC(vc)] && !r.Severed(from) && r.vcs[vc].Claimable(from)
}

// ClaimableMask returns every claimable VC as a bitmap over the
// router-wide id namespace, with blocked modules' channels masked out.
func (r *Router) ClaimableMask(from topology.Direction) uint64 {
	if r.Severed(from) {
		return 0
	}
	mask := r.Alloc().Claimable(from)
	if r.blocked[Row] {
		mask &^= rowVCMask
	}
	if r.blocked[Col] {
		mask &^= colVCMask
	}
	return mask
}

// ClaimInputVC reserves VC vc for an inbound packet.
func (r *Router) ClaimInputVC(from topology.Direction, vc int) bool {
	if !r.InputVCClaimable(from, vc) {
		return false
	}
	r.vcs[vc].Claim(from)
	return true
}

// ReleaseInputVC returns a claim whose packet will never arrive.
func (r *Router) ReleaseInputVC(from topology.Direction, vc int) {
	if r.Severed(from) {
		// SeverPort already purged unbacked claims on the dead interface;
		// honoring the upstream's withdrawal would double-release.
		return
	}
	r.vcs[vc].ReleaseClaim()
}

// Quiescent reports whether no flit is buffered anywhere in the router.
func (r *Router) Quiescent() bool {
	for _, vc := range r.vcs {
		if vc.Len() > 0 {
			return false
		}
	}
	return true
}

// Idle reports whether a tick with empty input pipes would leave the
// router bit-identical to SkipCycles replaying it: every VC is dormant —
// no flits buffered, no packet state resident — so sweeping, draining,
// reaping, VA and SA all have nothing to do. Bare upstream claims do not
// block idleness (no tick phase acts on a claim alone, and the dead-grant
// hunt only reads channels with resident packet state). The only state an
// idle tick moves — the cycle counter and each live module's mirror
// primary toggle — is what SkipCycles replays.
func (r *Router) Idle() bool {
	for _, vc := range r.vcs {
		if !vc.Dormant() {
			return false
		}
	}
	return true
}

// DisableTickFastPath makes Tick run every phase even when the router is
// Idle; the reference kernel sets it so the ungated baseline executes the
// full tick-everything cost.
func (r *Router) DisableTickFastPath() { r.noFastPath = true }

// SkipCycles replays n idle ticks in O(1). An idle RoCo tick always counts
// a cycle (blocked modules do not stop the clock), clears the vaBusy
// latches, and runs each unblocked module's Mirror allocation round with
// no requests — which still toggles the primary port. (With saShared the
// module also reaches Allocate on idle ticks, because vaBusy is false; the
// disableMirror fallback uses round-robin arbiters, which hold still.)
func (r *Router) SkipCycles(n int64) {
	r.act.Cycles += n
	r.vaBusy[Row], r.vaBusy[Col] = false, false
	if !r.disableMirror {
		for m := Module(0); m < numModules; m++ {
			if !r.blocked[m] {
				r.mirror[m].SkipRounds(n)
			}
		}
	}
}

// TryInject offers the next flit of the PE's current packet. Self-addressed
// packets are delivered straight back to the PE.
func (r *Router) TryInject(f *flit.Flit, cycle int64) bool {
	if f.Type.IsHead() && f.OutPort == topology.Local {
		// Loopback: the packet never enters the network fabric.
		r.sink(f, cycle)
		if !f.Type.IsTail() {
			r.injVC = -2 // sentinel: loopback packet in progress
		}
		return true
	}
	if r.injVC == -2 {
		r.sink(f, cycle)
		if f.Type.IsTail() {
			r.injVC = -1
		}
		return true
	}
	if f.Type.IsHead() {
		if r.injVC >= 0 {
			return false
		}
		class := routing.InjectX
		if f.OutPort.IsY() {
			class = routing.InjectY
		}
		for id, cl := range r.cfg.Class {
			if cl != class || r.blocked[ModuleOfVC(id)] {
				continue
			}
			vc := r.vcs[id]
			if vc.Claimable(topology.Local) && vc.HasRoom() {
				f.ReadyAt = cycle + 1
				vc.Claim(topology.Local)
				vc.PushFrom(f, topology.Local)
				r.act.BufferWrites++
				if !f.Type.IsTail() {
					r.injVC = id
				}
				return true
			}
		}
		return false
	}
	if r.injVC < 0 {
		return false
	}
	vc := r.vcs[r.injVC]
	if !vc.HasRoom() {
		return false
	}
	f.ReadyAt = cycle + 1
	vc.PushFrom(f, topology.Local)
	r.act.BufferWrites++
	if f.Type.IsTail() {
		r.injVC = -1
	}
	return true
}

// Tick advances the router one cycle.
func (r *Router) Tick(cycle int64) {
	r.act.Cycles++

	// Credits from downstream.
	for _, d := range topology.CardinalDirections {
		if r.out[d] == nil {
			continue
		}
		for _, vc := range r.out[d].Credit.Read() {
			r.books[d].ReturnCredit(vc)
		}
	}

	// Arrivals: early-eject or guided-queue into the upstream-allocated VC.
	for _, d := range topology.CardinalDirections {
		if r.in[d] == nil {
			continue
		}
		f := r.in[d].Flit.Read()
		if f == nil {
			continue
		}
		if r.Severed(d) {
			// The boundary link was cut with this flit in flight; it never
			// reaches the decoders and its wormhole breaks (no credit either
			// — the interface is dead in both directions).
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			continue
		}
		f.Hops++
		if f.OutPort == topology.Local {
			// Early Ejection: delivered straight off the input decoder,
			// skipping SA and switch traversal entirely.
			r.act.EarlyEjections++
			r.sink(f, cycle)
			continue
		}
		if ModuleOfVC(f.VC) != ModuleOf(f.OutPort) {
			panic(fmt.Sprintf("core: guided queuing violation: %v into vc %d", f, f.VC))
		}
		f.ReadyAt = cycle + 1 + f.Penalty
		if f.Penalty > 0 {
			// Double routing on behalf of a neighbor with a failed RC unit.
			r.act.RouteComputations++
			f.Penalty = 0
		}
		if f.Rec != nil {
			f.Rec.Visit(r.id, cycle, trace.Arrived)
		}
		r.vcs[f.VC].PushFrom(f, d)
		r.act.BufferWrites++
	}

	// Fast path: with every channel dormant the recovery and allocation
	// phases below reduce to the idle tick that SkipCycles replays —
	// clear the vaBusy latches and toggle each unblocked module's mirror
	// primary (the cycle counter already moved above).
	if !r.noFastPath && r.Idle() {
		r.vaBusy[Row], r.vaBusy[Col] = false, false
		if !r.disableMirror {
			for m := Module(0); m < numModules; m++ {
				if !r.blocked[m] {
					r.mirror[m].SkipRounds(1)
				}
			}
		}
		return
	}

	// Fault recovery: react to broken packets and dead grants (the RoCo
	// fault-handshake hardware), drain condemned wormholes, retire orphaned
	// fragments.
	if r.noFastPath || !r.RecoveryQuiet() {
		r.SweepBroken(cycle, true)
		r.drainDoomed(cycle)
		r.ReapOrphans(cycle)
	}
	r.vaBusy[Row], r.vaBusy[Col] = false, false
	r.allocateVCs(cycle)
	for m := Module(0); m < numModules; m++ {
		r.allocateSwitch(m, cycle)
	}
}

// drainDoomed discards flits of packets whose route is permanently
// fault-blocked, returning their credits upstream so the rest of the
// network keeps flowing.
func (r *Router) drainDoomed(cycle int64) {
	for _, vc := range r.vcs {
		for {
			feeder := vc.Feeder()
			f := vc.DrainDoomed()
			if f == nil {
				break
			}
			r.NoteStragglerDrain(vc)
			r.act.DroppedFlits++
			r.DropFlit(f, cycle, trace.DropInFlight)
			if feeder.IsCardinal() && r.in[feeder] != nil {
				r.in[feeder].Credit.Write(vc.Index)
			}
			if f.Type.IsTail() {
				break
			}
		}
	}
}

// allocateVCs runs the two modules' separable VC allocators (they are
// physically independent; one pass covers both since requests never cross
// modules). Requesters come off the needVA bitmap with blocked modules
// masked out; candidate selection intersects the configuration's admit
// mask with the cached downstream alive-and-claimable mask.
func (r *Router) allocateVCs(cycle int64) {
	r.vaFailed = 0
	need := r.Alloc().NeedVA()
	if r.blocked[Row] {
		need &^= rowVCMask
	}
	if r.blocked[Col] {
		need &^= colVCMask
	}
	if need == 0 {
		return
	}
	// Each output's downstream claimable set is fetched once per cycle;
	// nothing claims during request building, so the cached mask is exact,
	// and the grant phase still re-checks through ClaimInputVC.
	var nbrClaim [5]uint64
	var nbrClaimOK [5]bool

	for mm := need; mm != 0; mm &= mm - 1 {
		id := bits.TrailingZeros64(mm)
		vc := r.vcs[id]
		if !vc.FrontReady(cycle) {
			continue
		}
		r.vaBusy[ModuleOfVC(id)] = true
		r.act.VAOps++
		if DebugCollect != nil {
			DebugCollect.Ops[vc.Class]++
		}
		if vc.NextOut() == topology.Invalid {
			r.act.RouteComputations++
		}
		c, nextOut, ok := r.selectDownstreamVC(vc, vc.Front(), &nbrClaim, &nbrClaimOK)
		if !ok {
			// A head flit bound for downstream early ejection needs no
			// channel at all; anything else failed allocation this cycle.
			if !vc.EjectNext() {
				r.vaFailed |= 1 << uint(id)
			}
			continue
		}
		out := vc.OutPort()
		r.targReq[out][c] |= 1 << uint(id)
		r.targUsed[out] |= 1 << uint(c)
		r.vaNext[id] = nextOut
	}

	for _, out := range topology.CardinalDirections {
		used := r.targUsed[out]
		if used == 0 {
			continue
		}
		r.targUsed[out] = 0
		for uc := used; uc != 0; uc &= uc - 1 {
			c := bits.TrailingZeros16(uc)
			reqs := r.targReq[out][c]
			r.targReq[out][c] = 0
			w := r.vaArb[out][c].GrantMask(reqs)
			r.vaFailed |= reqs &^ (1 << uint(w))
			nbr := r.neighbors[out]
			if nbr == nil || !nbr.ClaimInputVC(out.Opposite(), c) {
				r.vaFailed |= 1 << uint(w)
				continue
			}
			vc := r.vcs[w]
			r.books[out].EnqueueGrant(c, w)
			vc.GrantRoute(c, r.vaNext[w])
			r.act.VAGrants++
			if DebugCollect != nil {
				DebugCollect.Grants[vc.Class]++
			}
		}
	}
}

// selectDownstreamVC computes the look-ahead route and picks one candidate
// downstream channel for a head flit (the input stage of the separable VA).
// claim/claimOK lazily cache each output's downstream claimable mask for
// the cycle.
func (r *Router) selectDownstreamVC(vc *router.VC, head *flit.Flit, claim *[5]uint64, claimOK *[5]bool) (int, topology.Direction, bool) {
	out := vc.OutPort()
	nbr := r.neighbors[out]
	book := r.books[out]
	if nbr == nil || book == nil {
		return 0, topology.Invalid, false
	}
	downstream, ok := r.engine.Topology().Neighbor(r.id, out)
	if !ok {
		return 0, topology.Invalid, false
	}
	from := out.Opposite() // the side the flit enters the downstream router on
	nextOut := r.engine.RouteAt(downstream, from, head)
	vc.SetNextOut(nextOut)

	if nextOut == topology.Local {
		if !nbr.CanServe(from, topology.Local) {
			vc.Doom()
			return 0, topology.Invalid, false
		}
		// Early ejection downstream: no channel needed.
		vc.GrantEject()
		return 0, topology.Invalid, false // no arbitration required; not a failure
	}
	if !nbr.CanServe(from, nextOut) {
		// A permanent fault blocks the packet's only route; static fault
		// handling discards it rather than letting the stranded wormhole
		// assert backpressure forever.
		vc.Doom()
		return 0, topology.Invalid, false
	}

	if !claimOK[out] {
		claimOK[out] = true
		claim[out] = nbr.ClaimableMask(from)
	}
	turn := routing.TurnOf(from, nextOut)
	c, ok := r.pickCandidate(book.AliveMask()&claim[out], book, turn, nextOut, head)
	return c, nextOut, ok
}

// pickCandidate returns the least-loaded downstream channel among avail
// (the downstream alive-and-claimable mask) that the packet's class and
// direction discipline admits, spreading back-to-back packets across
// equivalent channels.
func (r *Router) pickCandidate(avail uint64, book *router.OutVCBook, turn routing.Turn, nextOut topology.Direction, head *flit.Flit) (int, bool) {
	best, bestLoad := -1, 0
	for m := r.cfg.AdmitMask(turn, head.Mode, nextOut) & avail; m != 0; m &= m - 1 {
		id := bits.TrailingZeros64(m)
		if load := book.QueuedGrants(id); best < 0 || load < bestLoad {
			best, bestLoad = id, load
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// allocateSwitch runs one module's Mirroring-Effect switch allocation and
// forwards the winners through its 2x2 crossbar.
func (r *Router) allocateSwitch(m Module, cycle int64) {
	if r.blocked[m] {
		return
	}
	if r.saShared[m] && r.vaBusy[m] {
		// SA fault with resource sharing: the VA arbiters stand in for the
		// broken SA hardware, but only on cycles they are not processing a
		// header (the VA is a per-packet unit; the paper's Figure 7).
		return
	}

	var has [2][2]bool
	var winner [2][2]int
	base := int(m) * 2 * VCsPerSet

	// Figure 3 contention: a crossbar input port requests a direction when
	// it holds a switch-ready flit for it; the request is contended when
	// the module's other port wants the same direction this cycle. The
	// candidate set comes off the saReady bitmap; readyByDir (switch-ready
	// with credits, split per output direction, module-local bits) is
	// computed once and reused by the nomination stage below, which used
	// to evaluate the same predicates a second time.
	var desire [2][2]bool
	var readyByDir [2]uint64
	for mm := (r.Alloc().SAReady() >> uint(base)) & modVCMask; mm != 0; mm &= mm - 1 {
		i := bits.TrailingZeros64(mm)
		vc := r.vcs[base+i]
		if !vc.FrontReady(cycle) {
			continue
		}
		if !r.creditOK(vc) {
			r.act.CreditStalls++
			continue
		}
		d := DirSlot(vc.OutPort())
		readyByDir[d] |= 1 << uint(i)
		desire[i/VCsPerSet][d] = true
	}
	for d := 0; d < 2; d++ {
		n := 0
		for p := 0; p < 2; p++ {
			if desire[p][d] {
				n++
			}
		}
		if n > 0 {
			r.countContention(outsOf(m)[d], n, n > 1)
		}
	}

	// Failed speculation: the parallel SA requests were issued and
	// arbitrated (energy), but a speculative grant has lower priority than
	// any real request and never displaces one (Peh-Dally speculation), so
	// they cannot affect the matching — they are charged as SAOps only.
	var specByDir [2]uint64
	for mm := (r.vaFailed >> uint(base)) & modVCMask; mm != 0; mm &= mm - 1 {
		i := bits.TrailingZeros64(mm)
		if op := r.vcs[base+i].OutPort(); op.IsCardinal() {
			specByDir[DirSlot(op)] |= 1 << uint(i)
		}
	}

	for p := 0; p < 2; p++ {
		for d := 0; d < 2; d++ {
			winner[p][d] = -1
			reqs := (readyByDir[d] >> uint(p*VCsPerSet)) & (1<<VCsPerSet - 1)
			spec := (specByDir[d] >> uint(p*VCsPerSet)) & (1<<VCsPerSet - 1)
			r.act.SAOps += int64(bits.OnesCount64(reqs) + bits.OnesCount64(spec))
			w := r.saArb[m][p][d].GrantMask(reqs)
			if w >= 0 {
				winner[p][d] = base + p*VCsPerSet + w
				has[p][d] = true
			}
		}
	}

	var dec arbiter.MirrorDecision
	if r.disableMirror {
		// Separable fallback: each input port nominates one direction
		// (its local RR pick among candidate directions), then each
		// output arbitrates among nominating ports — the chained
		// allocation the Mirroring Effect replaces.
		var nominated [2]int // direction nominated per port, or -1
		for p := 0; p < 2; p++ {
			nominated[p] = -1
			var reqs uint64
			if has[p][0] {
				reqs |= 1
			}
			if has[p][1] {
				reqs |= 2
			}
			if w := r.outArb[m][p].GrantMask(reqs); w >= 0 {
				nominated[p] = w
			}
		}
		dec.OutWinner = [2]int{-1, -1}
		for d := 0; d < 2; d++ {
			var reqs uint64
			if nominated[0] == d {
				reqs |= 1
			}
			if nominated[1] == d {
				reqs |= 2
			}
			dec.OutWinner[d] = r.outSel[m][d].GrantMask(reqs)
		}
	} else {
		dec = r.mirror[m].Allocate(has)
	}
	outs := outsOf(m)
	for d := 0; d < 2; d++ {
		p := dec.OutWinner[d]
		if p < 0 {
			continue
		}
		r.act.SAGrants++
		r.traverse(outs[d], winner[p][d], cycle)
	}
}

// outsOf returns the module's output directions.
func outsOf(m Module) [2]topology.Direction { return m.Outputs() }

// creditOK reports whether the front flit may stream downstream: buffer
// space exists and the channel's oldest grant belongs to this VC.
func (r *Router) creditOK(vc *router.VC) bool {
	if vc.EjectNext() {
		return true
	}
	book := r.books[vc.OutPort()]
	return book.Credits(vc.OutVC()) > 0 && book.MayStream(vc.OutVC(), vc.Index)
}

// countContention tallies n requests for output out, all of them contended
// when contended is true (Figure 3).
func (r *Router) countContention(out topology.Direction, n int, contended bool) {
	c := 0
	if contended {
		c = n
	}
	switch {
	case out.IsX():
		r.cont.RowRequests += int64(n)
		r.cont.RowFailures += int64(c)
	case out.IsY():
		r.cont.ColRequests += int64(n)
		r.cont.ColFailures += int64(c)
	}
}

// traverse moves a winning flit through its module's crossbar onto the
// output link. RC-unit faults charge the double-routing penalty to the
// departing flit here.
func (r *Router) traverse(out topology.Direction, vcID int, cycle int64) {
	vc := r.vcs[vcID]
	outVC, nextOut, ejectNext, feeder := vc.OutVC(), vc.NextOut(), vc.EjectNext(), vc.Feeder()
	vc.MarkStreamed()
	f := vc.Pop()
	r.act.BufferReads++
	r.act.CrossbarTraversals++
	if feeder.IsCardinal() && r.in[feeder] != nil {
		r.in[feeder].Credit.Write(vcID)
	}
	f.OutPort = nextOut
	if ejectNext {
		f.VC = -1
	} else {
		f.VC = outVC
		r.books[out].Send(outVC, f.Type.IsTail())
	}
	f.ReadyAt = 0
	if r.rcFault {
		f.Penalty = 1
	}
	r.act.LinkFlits++
	r.act.LinkFlitsByDir[out]++
	r.out[out].Flit.Write(f)
}
