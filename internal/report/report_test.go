package report

import (
	"strings"
	"testing"

	"github.com/rocosim/roco/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Title", "a", "bbbb")
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "| longer | 2    |") {
		t.Errorf("column alignment wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Errorf("ragged table:\n%s", out)
		}
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRowf("%d\t%d", 1, 2)
	if tbl.Rows[0][0] != "1" || tbl.Rows[0][1] != "2" {
		t.Errorf("AddRowf split wrong: %v", tbl.Rows[0])
	}
}

func TestPlotRender(t *testing.T) {
	s := &stats.Series{Label: "roco"}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	p := &Plot{Title: "t", XLabel: "x", YLabel: "y", Series: []*stats.Series{s}, Width: 40, Height: 10}
	var sb strings.Builder
	p.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "roco") || !strings.Contains(out, "*") {
		t.Errorf("plot missing legend or marker:\n%s", out)
	}
	if !strings.Contains(out, "81.0") {
		t.Errorf("plot missing y-axis max:\n%s", out)
	}
}

func TestPlotClipsAtYMax(t *testing.T) {
	s := &stats.Series{Label: "x"}
	s.Append(0, 10)
	s.Append(1, 1e9) // saturation blow-up
	p := &Plot{Series: []*stats.Series{s}, YMax: 100, Width: 20, Height: 5}
	var sb strings.Builder
	p.Render(&sb)
	if !strings.Contains(sb.String(), "100.0") {
		t.Errorf("plot should clip at YMax:\n%s", sb.String())
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	(&Plot{Title: "none"}).Render(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "x,y")
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
