package report

import (
	"fmt"
	"io"
	"strings"
)

// Heatmap renders a W x H grid of values as ASCII shades, used for
// per-node link-utilization maps. Values are normalized to the grid
// maximum.
type Heatmap struct {
	Title  string
	Width  int
	Height int
	// Value[y*Width+x] is the cell intensity.
	Value []float64
	// ChipW and ChipH, when positive, draw die-boundary separators every
	// ChipW columns and ChipH rows (hierarchical multi-chip grids).
	ChipW, ChipH int
}

// shades from cold to hot.
var shades = []byte{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// Render writes the heatmap to w, row y = Height-1 at the top (matching
// the coordinate system: Y grows northward).
func (h *Heatmap) Render(w io.Writer) {
	if h.Width*h.Height != len(h.Value) {
		panic(fmt.Sprintf("report: heatmap shape %dx%d does not match %d values", h.Width, h.Height, len(h.Value)))
	}
	max := 0.0
	for _, v := range h.Value {
		if v > max {
			max = v
		}
	}
	if h.Title != "" {
		fmt.Fprintf(w, "%s (max %.3f)\n", h.Title, max)
	}
	rowLen := 2 * h.Width
	if h.ChipW > 0 && h.Width > h.ChipW {
		rowLen += (h.Width - 1) / h.ChipW
	}
	for y := h.Height - 1; y >= 0; y-- {
		if h.ChipH > 0 && y != h.Height-1 && (y+1)%h.ChipH == 0 {
			fmt.Fprintf(w, "  %s\n", strings.Repeat("-", rowLen))
		}
		var sb strings.Builder
		for x := 0; x < h.Width; x++ {
			if h.ChipW > 0 && x != 0 && x%h.ChipW == 0 {
				sb.WriteByte('|')
			}
			v := h.Value[y*h.Width+x]
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(shades)-1))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
			sb.WriteByte(shades[idx]) // double width for square-ish cells
		}
		fmt.Fprintf(w, "  %s\n", sb.String())
	}
	fmt.Fprintf(w, "  scale: '%c' = 0 ... '%c' = max\n\n", shades[0], shades[len(shades)-1])
}
