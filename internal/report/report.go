// Package report renders experiment results as ASCII tables and simple
// line plots for the command-line harness, so every figure and table of
// the paper can be regenerated and inspected in a terminal.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/rocosim/roco/internal/stats"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends one row of formatted cells.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Plot renders one or more series as an ASCII line chart (x ascending),
// using a distinct marker per series. It is deliberately simple: enough to
// see knees and crossovers in latency-versus-load curves.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []*stats.Series
	// YMax clips the vertical axis (0 = auto). Latency curves blow up at
	// saturation; clipping keeps the pre-saturation shape readable.
	YMax float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render writes the plot to w.
func (p *Plot) Render(w io.Writer) {
	if p.Width == 0 {
		p.Width = 64
	}
	if p.Height == 0 {
		p.Height = 18
	}
	if len(p.Series) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", p.Title)
		return
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			if !math.IsInf(s.Y[i], 0) && !math.IsNaN(s.Y[i]) {
				ymax = math.Max(ymax, s.Y[i])
			}
		}
	}
	if p.YMax > 0 && ymax > p.YMax {
		ymax = p.YMax
	}
	if math.IsInf(ymax, -1) || ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if math.IsNaN(y) {
				continue
			}
			if y > ymax {
				y = ymax
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(p.Width-1))
			row := p.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(p.Height-1))
			if row >= 0 && row < p.Height && col >= 0 && col < p.Width {
				grid[row][col] = m
			}
		}
	}

	if p.Title != "" {
		fmt.Fprintf(w, "%s\n", p.Title)
	}
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.1f", ymax)
		case p.Height - 1:
			label = fmt.Sprintf("%8.1f", ymin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(rowBytes))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", p.Width))
	fmt.Fprintf(w, "%s  %-10.3f%s%10.3f\n", strings.Repeat(" ", 8), xmin,
		strings.Repeat(" ", maxInt(0, p.Width-20)), xmax)
	legend := make([]string, 0, len(p.Series))
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	fmt.Fprintf(w, "          %s   [%s vs %s]\n\n", strings.Join(legend, "   "), p.YLabel, p.XLabel)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderCSV writes the table as CSV (headers first), for spreadsheet or
// plotting-tool import.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
