// Package protocol implements the end-to-end reliable-delivery layer over
// the on-chip network: per-source sequence numbers stamped at injection, a
// retransmission timer with exponential backoff and a retry cap, duplicate
// suppression at the ejection port, and terminal give-up backed by a
// fault-region reachability oracle. The network owns the mechanisms (packet
// launch, broken-set membership, the route engine); this package owns the
// policy and bookkeeping. Everything here is deterministic — timer order is
// a total order over (deadline, source, sequence) — so activity-gated and
// reference kernel runs stay bit-identical with the protocol enabled.
package protocol

import (
	"container/heap"
	"fmt"

	"github.com/rocosim/roco/internal/flit"
)

// Params tunes the retransmission policy. The zero value selects defaults
// sized for the paper's 8x8 mesh.
type Params struct {
	// Timeout is the base retransmission timeout in cycles: how long a
	// source waits for its copy's tail to be delivered before inspecting
	// it. Each retransmission doubles the wait (exponential backoff).
	Timeout int64
	// MaxTimeout caps the backoff. The network additionally clamps it to
	// half its inactivity limit so a backed-off timer can never outlive
	// the run's liveness window.
	MaxTimeout int64
	// MaxRetries caps retransmissions per logical packet; a packet whose
	// copies keep breaking past the cap is given up with
	// RetriesExhausted.
	MaxRetries int
}

// Normalized fills zero fields with defaults and repairs inconsistent
// combinations. Idempotent.
func (p Params) Normalized() Params {
	if p.Timeout <= 0 {
		p.Timeout = 256
	}
	if p.MaxTimeout <= 0 {
		p.MaxTimeout = 4096
	}
	if p.MaxTimeout < p.Timeout {
		p.MaxTimeout = p.Timeout
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 16
	}
	return p
}

// GiveUpReason says why the protocol stopped retransmitting a packet.
type GiveUpReason uint8

const (
	// Unreachable: the fault-region map proves no fresh copy can reach
	// the destination (every route the discipline could take crosses a
	// fault that denies service).
	Unreachable GiveUpReason = iota
	// RetriesExhausted: the retry cap was hit while the oracle still
	// considered the destination reachable (e.g. adaptive routing kept
	// steering copies into a fault the conservative oracle routes
	// around).
	RetriesExhausted
)

// String names the reason.
func (r GiveUpReason) String() string {
	switch r {
	case Unreachable:
		return "unreachable"
	case RetriesExhausted:
		return "retries-exhausted"
	default:
		return "?"
	}
}

// GiveUp records one logical packet the protocol terminally abandoned.
type GiveUp struct {
	// Src, Dst, Seq and Origin identify the logical packet (Origin is the
	// first attempt's physical packet ID; measurement windows key on it).
	Src, Dst int
	Seq      uint64
	Origin   uint64
	// Attempts counts transmissions tried, Cycle when the give-up was
	// decided, Reason why.
	Attempts int
	Cycle    int64
	Reason   GiveUpReason
}

// Entry is the live retransmission state of one unresolved logical packet.
type Entry struct {
	// Src, Dst, Seq, Origin: the logical identity (see GiveUp).
	Src, Dst int
	Seq      uint64
	Origin   uint64
	// CurID is the physical packet ID of the latest copy; the network
	// tests it against the broken set to decide whether the copy is
	// provably lost.
	CurID uint64
	// CreatedAt is the logical packet's creation cycle (latency is
	// measured from here no matter which copy delivers).
	CreatedAt int64
	// Attempts counts transmissions so far (1 = only the original).
	Attempts int

	timeout  int64 // current timeout (doubles per retransmission)
	deadline int64 // next timer expiry
	resolved bool  // lazily deletes the entry from the timer heap
}

// Env supplies the network-side mechanisms Expire consults. All three
// callbacks must be deterministic functions of simulation state.
type Env struct {
	// CopyBroken reports whether the given physical copy lost a flit (the
	// network's broken set). A broken copy can never deliver its tail.
	CopyBroken func(packetID uint64) bool
	// Deliverable consults the fault-region map: can a fresh copy still
	// reach dst, and in which dimension-order mode should it be launched
	// (fault-region rerouting picks the surviving order under XY-YX)?
	Deliverable func(src, dst int) (bool, flit.RouteMode)
	// Launch enqueues a fresh copy of the entry's packet at its source PE
	// and returns the copy's physical packet ID.
	Launch func(e *Entry, mode flit.RouteMode) uint64
}

// Tracker is the per-run protocol state: one retransmission entry per
// unresolved logical packet, a deadline-ordered timer heap, and per-source
// resolved windows for duplicate suppression.
type Tracker struct {
	params  Params
	entries map[entryKey]*Entry
	timers  entryHeap
	wins    []window
	nextSeq []uint64

	pending         int
	retransmissions int64
	recovered       int64
	giveUps         []GiveUp
}

type entryKey struct {
	src int
	seq uint64
}

// NewTracker builds a tracker for a nodes-node network.
func NewTracker(nodes int, p Params) *Tracker {
	return &Tracker{
		params:  p.Normalized(),
		entries: make(map[entryKey]*Entry),
		wins:    make([]window, nodes),
		nextSeq: make([]uint64, nodes),
	}
}

// Params returns the normalized policy in effect.
func (t *Tracker) Params() Params { return t.params }

// Stamp registers a fresh logical packet at its first transmission and
// returns its per-source sequence number (1-based; 0 never occurs, so a
// zero SrcSeq on a flit always means "protocol off").
func (t *Tracker) Stamp(src, dst int, packetID uint64, createdAt int64) uint64 {
	t.nextSeq[src]++
	seq := t.nextSeq[src]
	e := &Entry{
		Src: src, Dst: dst, Seq: seq,
		Origin: packetID, CurID: packetID,
		CreatedAt: createdAt, Attempts: 1,
		timeout:  t.params.Timeout,
		deadline: createdAt + t.params.Timeout,
	}
	t.entries[entryKey{src, seq}] = e
	heap.Push(&t.timers, e)
	t.pending++
	return seq
}

// Resolved reports whether the logical packet (src, seq) has already been
// accepted (delivered) or abandoned. The ejection port consults it to
// suppress duplicate flits.
func (t *Tracker) Resolved(src int, seq uint64) bool {
	return t.wins[src].has(seq)
}

// Ack records the tail delivery of logical packet (src, seq). It returns
// whether the delivery was accepted (false = duplicate, suppress it) and
// whether the accepted copy was a retransmission (a recovered packet).
func (t *Tracker) Ack(src int, seq uint64, cycle int64) (accepted, retransmitted bool) {
	if t.wins[src].has(seq) {
		return false, false
	}
	t.wins[src].add(seq)
	k := entryKey{src, seq}
	e, ok := t.entries[k]
	if !ok {
		panic(fmt.Sprintf("protocol: ack for untracked packet src=%d seq=%d", src, seq))
	}
	e.resolved = true
	delete(t.entries, k)
	t.pending--
	if e.Attempts > 1 {
		t.recovered++
		return true, true
	}
	return true, false
}

// Expire runs the retransmission timers for the cycle: every entry whose
// deadline has passed is inspected. A copy not provably lost re-arms the
// timer unchanged (it may still deliver; retransmitting would risk
// duplicates and the copy's break — if it ever comes — restarts the clock
// anyway). A broken copy triggers the terminal checks: give up when the
// oracle proves the destination unreachable or the retry cap is hit,
// otherwise launch a fresh copy with doubled (capped) timeout. It returns
// the number of retransmissions plus give-ups decided this call, so the
// caller can note liveness progress.
func (t *Tracker) Expire(cycle int64, env Env) int {
	acted := 0
	for t.timers.Len() > 0 && t.timers[0].deadline <= cycle {
		e := heap.Pop(&t.timers).(*Entry)
		if e.resolved {
			continue
		}
		if !env.CopyBroken(e.CurID) {
			e.deadline = cycle + e.timeout
			heap.Push(&t.timers, e)
			continue
		}
		ok, mode := env.Deliverable(e.Src, e.Dst)
		switch {
		case !ok:
			t.giveUp(e, cycle, Unreachable)
		case e.Attempts > t.params.MaxRetries:
			t.giveUp(e, cycle, RetriesExhausted)
		default:
			e.CurID = env.Launch(e, mode)
			e.Attempts++
			t.retransmissions++
			e.timeout *= 2
			if e.timeout > t.params.MaxTimeout {
				e.timeout = t.params.MaxTimeout
			}
			e.deadline = cycle + e.timeout
			heap.Push(&t.timers, e)
		}
		acted++
	}
	return acted
}

// giveUp terminally abandons an entry. Abandonment marks the packet
// resolved in the duplicate window too: the abandoned copy is broken and
// can never deliver its tail, but stray non-tail flits of it may still
// reach the ejection port and must be suppressed from goodput.
func (t *Tracker) giveUp(e *Entry, cycle int64, reason GiveUpReason) {
	e.resolved = true
	delete(t.entries, entryKey{e.Src, e.Seq})
	t.wins[e.Src].add(e.Seq)
	t.pending--
	t.giveUps = append(t.giveUps, GiveUp{
		Src: e.Src, Dst: e.Dst, Seq: e.Seq, Origin: e.Origin,
		Attempts: e.Attempts, Cycle: cycle, Reason: reason,
	})
}

// Pending returns the number of unresolved logical packets; the network's
// drain condition requires it to reach zero.
func (t *Tracker) Pending() int { return t.pending }

// Retransmissions returns the total copies launched beyond first attempts.
func (t *Tracker) Retransmissions() int64 { return t.retransmissions }

// Recovered returns the logical packets whose accepted delivery was a
// retransmitted copy — losses the protocol repaired.
func (t *Tracker) Recovered() int64 { return t.recovered }

// GiveUps returns the packets terminally abandoned, in decision order.
func (t *Tracker) GiveUps() []GiveUp { return t.giveUps }

// window tracks the resolved sequence numbers of one source, compacted as
// a contiguous prefix plus an overflow set. Sequence numbers are issued
// densely from 1 and mostly resolve near-in-order, so the overflow stays
// tiny and the window never grows with run length.
type window struct {
	contig uint64 // every seq in [1, contig] is resolved
	over   map[uint64]struct{}
}

func (w *window) has(seq uint64) bool {
	if seq <= w.contig {
		return true
	}
	_, ok := w.over[seq]
	return ok
}

func (w *window) add(seq uint64) {
	if seq <= w.contig {
		return
	}
	if seq == w.contig+1 {
		w.contig++
		for {
			if _, ok := w.over[w.contig+1]; !ok {
				break
			}
			w.contig++
			delete(w.over, w.contig)
		}
		return
	}
	if w.over == nil {
		w.over = make(map[uint64]struct{})
	}
	w.over[seq] = struct{}{}
}

// entryHeap orders entries by (deadline, src, seq) — a total order, so
// expiry processing is deterministic regardless of map iteration.
type entryHeap []*Entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(*Entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
