package protocol

import (
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
)

// Oracle is the fault-region reachability map: it decides whether a fresh
// copy launched at src can still reach dst under the faults currently
// installed, by replaying the exact service checks the simulator applies
// along the route — the source PE's CanServe gate at injection and the
// per-hop look-ahead CanServe gate that dooms blocked wormholes.
//
// For dimension-order disciplines (XY, XY-YX, torus) the route of a copy
// is a function of (src, dst, mode) alone, so the walk is exact: the
// oracle says deliverable if and only if the copy cannot be source-dropped
// or doomed by the current fault map. For minimal adaptive routing the
// route also depends on live congestion, so the oracle answers the weaker
// question "does any odd-even-legal, service-clean path exist" — it never
// gives up falsely, and copies that adaptive routing keeps steering into
// faults anyway are bounded by the retry cap instead.
//
// Faults never heal, so answers only ever flip from deliverable to not;
// results are cached per (src, dst) until Invalidate is called after a
// fault installation.
type Oracle struct {
	engine *router.RouteEngine
	cache  map[uint64]oracleResult
}

type oracleResult struct {
	ok   bool
	mode flit.RouteMode
}

// NewOracle builds an oracle over the network's route engine.
func NewOracle(engine *router.RouteEngine) *Oracle {
	return &Oracle{engine: engine, cache: make(map[uint64]oracleResult)}
}

// Invalidate drops all cached answers; the network calls it after
// installing a runtime fault.
func (o *Oracle) Invalidate() {
	clear(o.cache)
}

// Deliverable reports whether a fresh copy can still reach dst from src,
// and the route mode the copy should be launched with. Under XY-YX the
// mode is the surviving dimension order — the protocol's fault-region
// rerouting: if faults cut the XY path but not the YX path, retransmitted
// copies flip their dimension order instead of dying on the broken one.
func (o *Oracle) Deliverable(src, dst int) (bool, flit.RouteMode) {
	key := uint64(src)<<32 | uint64(uint32(dst))
	if r, ok := o.cache[key]; ok {
		return r.ok, r.mode
	}
	r := o.compute(src, dst)
	o.cache[key] = r
	return r.ok, r.mode
}

func (o *Oracle) compute(src, dst int) oracleResult {
	_, torus := o.engine.Topology().(topology.Toroidal)
	switch alg := o.engine.Algorithm(); {
	case torus || alg == routing.XY:
		return oracleResult{ok: o.walk(src, dst, flit.XFirst), mode: flit.XFirst}
	case alg == routing.XYYX:
		if o.walk(src, dst, flit.XFirst) {
			return oracleResult{ok: true, mode: flit.XFirst}
		}
		if o.walk(src, dst, flit.YFirst) {
			return oracleResult{ok: true, mode: flit.YFirst}
		}
		return oracleResult{mode: flit.XFirst}
	default:
		return oracleResult{ok: o.search(src, dst), mode: flit.ModeAdaptive}
	}
}

// walk replays a dimension-order route hop by hop, applying the simulator's
// own service gates: at every node (the source included) the router must
// CanServe(entry side, computed output) — the very check that source-drops
// unroutable packets at injection and dooms wormholes at the upstream
// look-ahead. Reaching the Local output means the ejection gate passed and
// the copy delivers.
func (o *Oracle) walk(src, dst int, mode flit.RouteMode) bool {
	topo := o.engine.Topology()
	f := &flit.Flit{Type: flit.HeadTail, Src: src, Dst: dst, Mode: mode}
	node, from := src, topology.Local
	for hops := 0; hops <= topo.Nodes(); hops++ {
		r := o.engine.RouterAt(node)
		if r == nil {
			return false
		}
		out := o.engine.RouteAt(node, from, f)
		if !r.CanServe(from, out) {
			return false
		}
		if out == topology.Local {
			return true
		}
		nb, ok := topo.Neighbor(node, out)
		if !ok {
			return false
		}
		node, from = nb, out.Opposite()
	}
	// Dimension-order routes are loop-free; running past the hop bound
	// means the engine is misconfigured, and "unreachable" is the safe
	// answer (the copy would never deliver either).
	return false
}

// search explores the odd-even-legal route graph breadth-first for minimal
// adaptive routing. States are (node, entry side) because the turn-model
// and CanServe gates both depend on the side a copy enters on. Edges apply
// the same filters adaptiveAt does: the router must serve the turn and the
// next node must accept traffic on the entered side (unless it is the
// destination, whose ejection is gated separately).
func (o *Oracle) search(src, dst int) bool {
	topo := o.engine.Topology()
	srcC, dstC := topo.Coord(src), topo.Coord(dst)
	const sides = int(topology.Local) + 1
	visited := make([]bool, topo.Nodes()*sides)
	type state struct {
		node int
		from topology.Direction
	}
	queue := []state{{src, topology.Local}}
	visited[src*sides+int(topology.Local)] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		r := o.engine.RouterAt(s.node)
		if r == nil {
			continue
		}
		if s.node == dst {
			if r.CanServe(s.from, topology.Local) {
				return true
			}
			continue
		}
		for _, d := range routing.OddEvenDirs(srcC, topo.Coord(s.node), dstC) {
			if !r.CanServe(s.from, d) {
				continue
			}
			nb, ok := topo.Neighbor(s.node, d)
			if !ok {
				continue
			}
			if nbr := o.engine.RouterAt(nb); nb != dst && nbr != nil && !nbr.CanServe(d.Opposite(), topology.Invalid) {
				continue
			}
			idx := nb*sides + int(d.Opposite())
			if visited[idx] {
				continue
			}
			visited[idx] = true
			queue = append(queue, state{nb, d.Opposite()})
		}
	}
	return false
}
