package protocol

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
)

// env builds an Env over closures with convenient defaults: no copy broken,
// everything deliverable, launches allocate sequential IDs from 1000.
type envState struct {
	broken   map[uint64]bool
	reach    bool
	launched []uint64
	nextID   uint64
}

func (s *envState) env() Env {
	return Env{
		CopyBroken:  func(id uint64) bool { return s.broken[id] },
		Deliverable: func(src, dst int) (bool, flit.RouteMode) { return s.reach, flit.XFirst },
		Launch: func(e *Entry, mode flit.RouteMode) uint64 {
			s.nextID++
			s.launched = append(s.launched, s.nextID)
			return s.nextID
		},
	}
}

func newEnvState() *envState {
	return &envState{broken: make(map[uint64]bool), reach: true, nextID: 999}
}

func TestStampSequencesPerSource(t *testing.T) {
	tr := NewTracker(4, Params{})
	if got := tr.Stamp(0, 3, 10, 0); got != 1 {
		t.Fatalf("first seq of source 0 = %d, want 1", got)
	}
	if got := tr.Stamp(0, 2, 11, 0); got != 2 {
		t.Fatalf("second seq of source 0 = %d, want 2", got)
	}
	if got := tr.Stamp(1, 3, 12, 0); got != 1 {
		t.Fatalf("first seq of source 1 = %d, want 1; sequences must be per-source", got)
	}
	if tr.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", tr.Pending())
	}
}

func TestAckAcceptsOnceThenSuppresses(t *testing.T) {
	tr := NewTracker(2, Params{})
	seq := tr.Stamp(0, 1, 100, 0)
	if tr.Resolved(0, seq) {
		t.Fatal("fresh packet already resolved")
	}
	acc, retx := tr.Ack(0, seq, 40)
	if !acc || retx {
		t.Fatalf("first ack: accepted=%v retransmitted=%v, want true,false", acc, retx)
	}
	if !tr.Resolved(0, seq) {
		t.Fatal("acked packet not resolved")
	}
	if acc, _ := tr.Ack(0, seq, 41); acc {
		t.Fatal("duplicate ack accepted")
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending = %d after ack, want 0", tr.Pending())
	}
}

func TestAckUntrackedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ack of a never-stamped packet must panic")
		}
	}()
	tr := NewTracker(2, Params{})
	tr.Ack(0, 7, 0)
}

func TestExpireReArmsAliveCopiesWithoutBackoff(t *testing.T) {
	tr := NewTracker(1, Params{Timeout: 10, MaxRetries: 3})
	tr.Stamp(0, 0, 50, 0)
	s := newEnvState()
	// The copy is not broken: expiry re-arms the same timeout and neither
	// retransmits nor gives up, across many deadlines.
	for cycle := int64(10); cycle <= 50; cycle += 10 {
		if acted := tr.Expire(cycle, s.env()); acted != 0 {
			t.Fatalf("cycle %d: expire acted %d times on an alive copy", cycle, acted)
		}
	}
	if len(s.launched) != 0 || tr.Retransmissions() != 0 || len(tr.GiveUps()) != 0 {
		t.Fatalf("alive copy triggered protocol action: launched=%v", s.launched)
	}
}

func TestExpireRetransmitsBrokenCopyWithExponentialBackoff(t *testing.T) {
	tr := NewTracker(1, Params{Timeout: 10, MaxTimeout: 35, MaxRetries: 10})
	tr.Stamp(0, 0, 50, 0) // deadline 10
	s := newEnvState()
	s.broken[50] = true

	// Deadlines follow doubled-then-capped timeouts: 10, then +20, +35, +35...
	wantDeadlines := []int64{10, 30, 65, 100, 135}
	cycle := int64(0)
	for i, d := range wantDeadlines {
		if acted := tr.Expire(d-1, s.env()); acted != 0 {
			t.Fatalf("retx %d: timer fired before deadline %d", i, d)
		}
		if acted := tr.Expire(d, s.env()); acted != 1 {
			t.Fatalf("retx %d: expire at %d acted 0 times", i, d)
		}
		if len(s.launched) != i+1 {
			t.Fatalf("retx %d: %d copies launched", i, len(s.launched))
		}
		s.broken[s.launched[i]] = true // this copy breaks too
		cycle = d
	}
	_ = cycle
	if tr.Retransmissions() != int64(len(wantDeadlines)) {
		t.Fatalf("retransmissions = %d, want %d", tr.Retransmissions(), len(wantDeadlines))
	}
}

func TestExpireGivesUpWhenUnreachable(t *testing.T) {
	tr := NewTracker(1, Params{Timeout: 10, MaxRetries: 5})
	seq := tr.Stamp(0, 0, 7, 0)
	s := newEnvState()
	s.broken[7] = true
	s.reach = false
	if acted := tr.Expire(10, s.env()); acted != 1 {
		t.Fatal("expire did not act on a broken unreachable packet")
	}
	gs := tr.GiveUps()
	if len(gs) != 1 || gs[0].Reason != Unreachable || gs[0].Seq != seq || gs[0].Attempts != 1 {
		t.Fatalf("give-ups = %+v", gs)
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending = %d after give-up", tr.Pending())
	}
	// Abandonment also closes the duplicate window: stray flits of the
	// broken copy must be suppressed.
	if !tr.Resolved(0, seq) {
		t.Fatal("given-up packet not resolved for duplicate suppression")
	}
	if len(s.launched) != 0 {
		t.Fatal("launched a copy despite unreachable destination")
	}
}

func TestExpireGivesUpAfterRetryCap(t *testing.T) {
	tr := NewTracker(1, Params{Timeout: 1, MaxTimeout: 1, MaxRetries: 3})
	tr.Stamp(0, 0, 42, 0)
	s := newEnvState()
	s.broken[42] = true
	cycle := int64(0)
	for i := 0; i < 10 && len(tr.GiveUps()) == 0; i++ {
		cycle += 1
		tr.Expire(cycle, s.env())
		for _, id := range s.launched {
			s.broken[id] = true
		}
	}
	gs := tr.GiveUps()
	if len(gs) != 1 || gs[0].Reason != RetriesExhausted {
		t.Fatalf("give-ups = %+v, want one RetriesExhausted", gs)
	}
	// MaxRetries=3 allows the original + 3 retransmissions.
	if len(s.launched) != 3 {
		t.Fatalf("launched %d copies, want 3 (the retry cap)", len(s.launched))
	}
	if gs[0].Attempts != 4 {
		t.Fatalf("give-up after %d attempts, want 4", gs[0].Attempts)
	}
}

func TestRecoveredCountsRetransmittedDeliveries(t *testing.T) {
	tr := NewTracker(1, Params{Timeout: 10, MaxRetries: 5})
	seq := tr.Stamp(0, 0, 1, 0)
	s := newEnvState()
	s.broken[1] = true
	tr.Expire(10, s.env()) // launches copy 1000
	acc, retx := tr.Ack(0, seq, 20)
	if !acc || !retx {
		t.Fatalf("ack of retransmitted copy: accepted=%v retransmitted=%v", acc, retx)
	}
	if tr.Recovered() != 1 {
		t.Fatalf("recovered = %d, want 1", tr.Recovered())
	}
}

func TestExpireOrderIsDeterministic(t *testing.T) {
	// Many entries share one deadline; expiry must process them in (src,
	// seq) order regardless of heap internals.
	tr := NewTracker(8, Params{Timeout: 10, MaxRetries: 1})
	var order []int
	s := newEnvState()
	env := s.env()
	env.Launch = func(e *Entry, mode flit.RouteMode) uint64 {
		order = append(order, e.Src)
		s.nextID++
		return s.nextID
	}
	for src := 7; src >= 0; src-- {
		id := uint64(100 + src)
		tr.Stamp(src, 0, id, 0)
		s.broken[id] = true
	}
	tr.Expire(10, env)
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("expiry processed sources out of order: %v", order)
		}
	}
	if len(order) != 8 {
		t.Fatalf("expired %d entries, want 8", len(order))
	}
}

func TestWindowCompaction(t *testing.T) {
	var w window
	// Resolve out of order: 2, 3, 5 then 1 closes the prefix through 3; 4
	// closes through 5.
	for _, s := range []uint64{2, 3, 5} {
		w.add(s)
	}
	if w.contig != 0 || len(w.over) != 3 {
		t.Fatalf("window before prefix close: contig=%d over=%v", w.contig, w.over)
	}
	w.add(1)
	if w.contig != 3 || len(w.over) != 1 {
		t.Fatalf("window after adding 1: contig=%d over=%v", w.contig, w.over)
	}
	w.add(4)
	if w.contig != 5 || len(w.over) != 0 {
		t.Fatalf("window after adding 4: contig=%d over=%v", w.contig, w.over)
	}
	for s := uint64(1); s <= 5; s++ {
		if !w.has(s) {
			t.Fatalf("seq %d lost by compaction", s)
		}
	}
	if w.has(6) {
		t.Fatal("unresolved seq reported resolved")
	}
}

func TestParamsNormalized(t *testing.T) {
	p := Params{}.Normalized()
	if p.Timeout != 256 || p.MaxTimeout != 4096 || p.MaxRetries != 16 {
		t.Fatalf("defaults = %+v", p)
	}
	p = Params{Timeout: 100, MaxTimeout: 50}.Normalized()
	if p.MaxTimeout != 100 {
		t.Fatalf("MaxTimeout below Timeout not repaired: %+v", p)
	}
	if q := p.Normalized(); q != p {
		t.Fatalf("Normalized not idempotent: %+v vs %+v", p, q)
	}
}
