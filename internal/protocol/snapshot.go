package protocol

import (
	"container/heap"
	"sort"

	"github.com/rocosim/roco/internal/snapshot"
)

// SaveState serializes the tracker: policy (for validation), per-source
// sequence counters and duplicate windows, the unresolved entries, and the
// lifetime counters. Entries are written sorted by (src, seq) so the byte
// stream is deterministic regardless of map iteration order. The timer
// heap is not serialized: it holds exactly the unresolved entries (plus
// lazily-deleted resolved ones, which are observationally inert), and its
// comparison is a total order, so rebuilding it from the entries yields an
// identical expiry sequence.
func (t *Tracker) SaveState(e *snapshot.Encoder) {
	e.I64(t.params.Timeout)
	e.I64(t.params.MaxTimeout)
	e.Int(t.params.MaxRetries)

	e.Int(len(t.wins))
	for i := range t.wins {
		w := &t.wins[i]
		e.U64(t.nextSeq[i])
		e.U64(w.contig)
		over := make([]uint64, 0, len(w.over))
		for s := range w.over {
			over = append(over, s)
		}
		sort.Slice(over, func(a, b int) bool { return over[a] < over[b] })
		e.Int(len(over))
		for _, s := range over {
			e.U64(s)
		}
	}

	keys := make([]entryKey, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].src != keys[b].src {
			return keys[a].src < keys[b].src
		}
		return keys[a].seq < keys[b].seq
	})
	e.Int(len(keys))
	for _, k := range keys {
		en := t.entries[k]
		e.Int(en.Src)
		e.Int(en.Dst)
		e.U64(en.Seq)
		e.U64(en.Origin)
		e.U64(en.CurID)
		e.I64(en.CreatedAt)
		e.Int(en.Attempts)
		e.I64(en.timeout)
		e.I64(en.deadline)
	}

	e.I64(t.retransmissions)
	e.I64(t.recovered)
	e.Int(len(t.giveUps))
	for _, g := range t.giveUps {
		e.Int(g.Src)
		e.Int(g.Dst)
		e.U64(g.Seq)
		e.U64(g.Origin)
		e.Int(g.Attempts)
		e.I64(g.Cycle)
		e.U8(uint8(g.Reason))
	}
}

// LoadState restores a tracker written by SaveState. The receiver must be
// fresh from NewTracker with the same node count and (normalized) policy;
// a mismatch poisons the decoder.
func (t *Tracker) LoadState(d *snapshot.Decoder) {
	if len(t.entries) != 0 || len(t.giveUps) != 0 {
		d.Corruptf("loading protocol state into a used tracker")
		return
	}
	if to, mx, mr := d.I64(), d.I64(), d.Int(); d.Err() == nil &&
		(to != t.params.Timeout || mx != t.params.MaxTimeout || mr != t.params.MaxRetries) {
		d.Corruptf("protocol params (%d,%d,%d) do not match snapshot (%d,%d,%d)",
			t.params.Timeout, t.params.MaxTimeout, t.params.MaxRetries, to, mx, mr)
		return
	}

	nodes := d.SliceLen(16)
	if d.Err() == nil && nodes != len(t.wins) {
		d.Corruptf("protocol tracker has %d nodes, snapshot had %d", len(t.wins), nodes)
		return
	}
	for i := 0; i < nodes; i++ {
		w := &t.wins[i]
		t.nextSeq[i] = d.U64()
		w.contig = d.U64()
		k := d.SliceLen(8)
		if k > 0 {
			w.over = make(map[uint64]struct{}, k)
		}
		for j := 0; j < k; j++ {
			w.over[d.U64()] = struct{}{}
		}
		if d.Err() != nil {
			return
		}
	}

	n := d.SliceLen(8 * 9)
	for i := 0; i < n; i++ {
		en := &Entry{
			Src:       d.Int(),
			Dst:       d.Int(),
			Seq:       d.U64(),
			Origin:    d.U64(),
			CurID:     d.U64(),
			CreatedAt: d.I64(),
			Attempts:  d.Int(),
			timeout:   d.I64(),
			deadline:  d.I64(),
		}
		if d.Err() != nil {
			return
		}
		t.entries[entryKey{en.Src, en.Seq}] = en
		t.timers = append(t.timers, en)
	}
	heap.Init(&t.timers)
	t.pending = len(t.entries)

	t.retransmissions = d.I64()
	t.recovered = d.I64()
	g := d.SliceLen(8)
	for i := 0; i < g; i++ {
		t.giveUps = append(t.giveUps, GiveUp{
			Src:      d.Int(),
			Dst:      d.Int(),
			Seq:      d.U64(),
			Origin:   d.U64(),
			Attempts: d.Int(),
			Cycle:    d.I64(),
			Reason:   GiveUpReason(d.U8()),
		})
		if d.Err() != nil {
			return
		}
	}
}
