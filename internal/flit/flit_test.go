package flit

import (
	"testing"
	"testing/quick"

	"github.com/rocosim/roco/internal/topology"
)

func TestTypePredicates(t *testing.T) {
	if !Head.IsHead() || Head.IsTail() {
		t.Error("Head flags wrong")
	}
	if Body.IsHead() || Body.IsTail() {
		t.Error("Body flags wrong")
	}
	if Tail.IsHead() || !Tail.IsTail() {
		t.Error("Tail flags wrong")
	}
	if !HeadTail.IsHead() || !HeadTail.IsTail() {
		t.Error("HeadTail flags wrong")
	}
}

func TestSegmentFourFlits(t *testing.T) {
	p := Packet{ID: 7, Src: 1, Dst: 9, Flits: 4, CreatedAt: 100, Mode: YFirst}
	fl := p.Segment()
	if len(fl) != 4 {
		t.Fatalf("got %d flits", len(fl))
	}
	wantTypes := []Type{Head, Body, Body, Tail}
	for i, f := range fl {
		if f.Type != wantTypes[i] {
			t.Errorf("flit %d type %v, want %v", i, f.Type, wantTypes[i])
		}
		if f.PacketID != 7 || f.Src != 1 || f.Dst != 9 || f.CreatedAt != 100 || f.Mode != YFirst || f.Seq != i {
			t.Errorf("flit %d fields wrong: %+v", i, f)
		}
		if f.OutPort != topology.Invalid || f.VC != -1 {
			t.Errorf("flit %d routing state should be unset", i)
		}
	}
}

func TestSegmentSingleFlit(t *testing.T) {
	fl := Packet{ID: 1, Flits: 1}.Segment()
	if len(fl) != 1 || fl[0].Type != HeadTail {
		t.Fatalf("single-flit packet should be one HeadTail, got %v", fl)
	}
}

func TestSegmentInvariants(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%16) + 1
		fl := Packet{ID: 3, Flits: count}.Segment()
		if len(fl) != count {
			return false
		}
		heads, tails := 0, 0
		for _, f := range fl {
			if f.Type.IsHead() {
				heads++
			}
			if f.Type.IsTail() {
				tails++
			}
		}
		// Exactly one head and one tail per packet, head first, tail last.
		return heads == 1 && tails == 1 && fl[0].Type.IsHead() && fl[count-1].Type.IsTail()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentZeroFlitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Segment of empty packet should panic")
		}
	}()
	Packet{Flits: 0}.Segment()
}

func TestRouteModeStrings(t *testing.T) {
	if XFirst.String() != "XY" || YFirst.String() != "YX" || ModeAdaptive.String() != "AD" {
		t.Error("RouteMode strings wrong")
	}
}
