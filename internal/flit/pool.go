package flit

import (
	"fmt"

	"github.com/rocosim/roco/internal/topology"
)

// Pool is a free list of Flit structs. The simulation kernel allocates
// every flit of every packet and discards it on delivery or drop; at any
// instant only the in-flight population is live, so recycling dead flits
// makes the steady-state hot path allocation-free after warm-up.
//
// Lifetime rule: a flit handed to Put must be completely dead — no router
// buffer, pipe, source backlog, or trace record may still reference it.
// Put scrubs the struct (including its Rec pointer, so a recycled flit can
// never resurrect another packet's trace) and panics on double-insertion.
// The network defers Put to the end of the cycle in which the flit died,
// because delivery and drop sinks run mid-cycle while callers still hold
// the pointer. A nil *Pool is valid and degrades to plain allocation,
// which the reference kernel uses to preserve pre-pooling behavior.
type Pool struct {
	free []*Flit
}

// slabSize is the number of flits a dry pool allocates at once. Under
// sustained load (most visibly at saturation, where the in-flight
// population keeps growing) the pool would otherwise fall back to one heap
// allocation per flit; refilling from a slab amortizes that to one
// allocation per slabSize flits, which rounds to zero allocations per
// simulated cycle.
const slabSize = 256

// Get returns a zeroed flit, recycled when the free list has one and drawn
// from a freshly allocated slab otherwise.
func (p *Pool) Get() *Flit {
	if p == nil {
		return &Flit{}
	}
	if len(p.free) == 0 {
		slab := make([]Flit, slabSize)
		if cap(p.free) < slabSize {
			p.free = make([]*Flit, 0, slabSize)
		}
		for i := range slab {
			p.free = append(p.free, &slab[i])
		}
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	f.pooled = false
	return f
}

// Put recycles a dead flit. It scrubs every field so stale routing state
// and trace references cannot leak into the flit's next life.
func (p *Pool) Put(f *Flit) {
	if p == nil {
		return
	}
	if f.pooled {
		panic(fmt.Sprintf("flit: double recycle of pkt=%d seq=%d", f.PacketID, f.Seq))
	}
	*f = Flit{pooled: true}
	p.free = append(p.free, f)
}

// Len returns the number of recycled flits currently free (tests use it).
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// AppendSegment segments the packet and appends its flits to dst, drawing
// the structs from pool (nil pool allocates fresh). It is the pooled form
// of Packet.Segment and fills the same fields.
func AppendSegment(dst []*Flit, p Packet, pool *Pool) []*Flit {
	if p.Flits < 1 {
		panic(fmt.Sprintf("flit: packet %d has %d flits; need at least 1", p.ID, p.Flits))
	}
	for i := 0; i < p.Flits; i++ {
		t := Body
		switch {
		case p.Flits == 1:
			t = HeadTail
		case i == 0:
			t = Head
		case i == p.Flits-1:
			t = Tail
		}
		f := pool.Get()
		f.Type = t
		f.PacketID = p.ID
		f.Seq = i
		f.Src = p.Src
		f.Dst = p.Dst
		f.Mode = p.Mode
		f.OutPort = topology.Invalid
		f.VC = -1
		f.CreatedAt = p.CreatedAt
		f.SrcSeq = p.SrcSeq
		f.Origin = p.Origin
		dst = append(dst, f)
	}
	return dst
}
