package flit

import (
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// Codec serializes flits for checkpointing. Flits are value-serialized in
// the single container that owns them (a source backlog, a VC queue, a
// link pipe), so the codec needs no identity map for the flits themselves;
// the one cross-reference a flit carries — its trace record — is restored
// through Records, keyed by packet ID.
type Codec struct {
	// Records maps packet ID to the decoded trace record, for relinking
	// Flit.Rec on load. The trace collector must therefore be decoded
	// before any flit.
	Records map[uint64]*trace.Record
	// Pool supplies structs on decode (nil allocates fresh). Freshly
	// allocated and recycled flits behave identically — every live field
	// is written below — so the choice never affects results.
	Pool *Pool
}

// Encode serializes one live flit.
func (c *Codec) Encode(e *snapshot.Encoder, f *Flit) {
	e.U8(uint8(f.Type))
	e.U64(f.PacketID)
	e.Int(f.Seq)
	e.Int(f.Src)
	e.Int(f.Dst)
	e.U8(uint8(f.Mode))
	e.U8(uint8(f.OutPort))
	e.Int(f.VC)
	e.I64(f.CreatedAt)
	e.I64(f.InjectedAt)
	e.Int(f.Hops)
	e.I64(f.ReadyAt)
	e.Bool(f.CrossedX)
	e.Bool(f.CrossedY)
	e.Bool(f.Rec != nil)
	e.I64(f.Penalty)
	e.U64(f.SrcSeq)
	e.U64(f.Origin)
}

// Decode restores one flit written by Encode.
func (c *Codec) Decode(d *snapshot.Decoder) *Flit {
	f := c.Pool.Get()
	f.Type = Type(d.U8())
	f.PacketID = d.U64()
	f.Seq = d.Int()
	f.Src = d.Int()
	f.Dst = d.Int()
	f.Mode = RouteMode(d.U8())
	f.OutPort = topology.Direction(d.U8())
	f.VC = d.Int()
	f.CreatedAt = d.I64()
	f.InjectedAt = d.I64()
	f.Hops = d.Int()
	f.ReadyAt = d.I64()
	f.CrossedX = d.Bool()
	f.CrossedY = d.Bool()
	if d.Bool() {
		rec, ok := c.Records[f.PacketID]
		if !ok {
			d.Corruptf("flit %d references a missing trace record", f.PacketID)
		}
		f.Rec = rec
	}
	f.Penalty = d.I64()
	f.SrcSeq = d.U64()
	f.Origin = d.U64()
	return f
}
