// Package flit defines the unit of on-chip network transfer. A packet is
// segmented into flits (flow-control digits): one head flit carrying the
// routing state, zero or more body flits, and a tail flit that releases the
// wormhole. The paper's configuration is four 128-bit flits per packet.
package flit

import (
	"fmt"

	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// Type distinguishes the role of a flit inside its packet.
type Type uint8

const (
	// Head is the first flit of a packet; it carries routing information
	// and performs VC allocation.
	Head Type = iota
	// Body is an interior flit; it follows the wormhole opened by the head.
	Body
	// Tail is the final flit; delivering it releases the packet's VCs.
	Tail
	// HeadTail marks a single-flit packet (head and tail at once).
	HeadTail
)

// String returns a one-letter mnemonic for the flit type.
func (t Type) String() string {
	switch t {
	case Head:
		return "H"
	case Body:
		return "B"
	case Tail:
		return "T"
	case HeadTail:
		return "X"
	default:
		return "?"
	}
}

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (t Type) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (t Type) IsTail() bool { return t == Tail || t == HeadTail }

// RouteMode records the oblivious dimension order chosen for a packet at
// injection time. XY routing always uses XFirst; XY-YX routing picks XFirst
// or YFirst with equal probability per packet; adaptive routing sets
// ModeAdaptive.
type RouteMode uint8

const (
	// XFirst routes the packet fully in X, then in Y (dimension order).
	XFirst RouteMode = iota
	// YFirst routes the packet fully in Y, then in X.
	YFirst
	// ModeAdaptive lets each hop pick any minimal productive direction.
	ModeAdaptive
)

// String names the route mode.
func (m RouteMode) String() string {
	switch m {
	case XFirst:
		return "XY"
	case YFirst:
		return "YX"
	case ModeAdaptive:
		return "AD"
	default:
		return "?"
	}
}

// Flit is a single flow-control digit in flight. Flits are allocated once
// per packet transfer and mutated in place as they progress hop by hop.
type Flit struct {
	// Type is the flit's role in its packet.
	Type Type
	// PacketID identifies the owning packet uniquely across the run.
	PacketID uint64
	// Seq is the flit's index within the packet (0 = head).
	Seq int
	// Src and Dst are the injecting and destination node IDs.
	Src, Dst int
	// Mode is the packet's dimension-order discipline (see RouteMode).
	Mode RouteMode
	// OutPort is the output port the flit will request at the router it is
	// currently heading to (or buffered in). It is produced by look-ahead
	// routing at the upstream router and stamped before link traversal;
	// topology.Local means "eject here".
	OutPort topology.Direction
	// VC is the virtual-channel index (within the destination input
	// structure of the current link) allocated by the upstream router's VA.
	// Its interpretation is router-specific; -1 means "no VC" (used for
	// early-ejected flits, which bypass buffering entirely).
	VC int
	// CreatedAt is the cycle the packet was generated at the source PE
	// (before source queuing); latency is measured from here.
	CreatedAt int64
	// InjectedAt is the cycle the head flit entered the network proper.
	InjectedAt int64
	// Hops counts link traversals so far (maintained by the simulator).
	Hops int
	// ReadyAt is the first cycle the flit may participate in allocation at
	// its current router. Arrival sets it to the cycle after buffering;
	// fault-recovery mechanisms (double routing, virtual queuing) impose
	// their latency penalties by pushing it further out.
	ReadyAt int64
	// CrossedX and CrossedY record torus dateline crossings in each
	// dimension; packets on a torus switch to the second VC class of a
	// dimension after crossing its dateline (unused on meshes).
	CrossedX, CrossedY bool
	// Rec, when non-nil on a head flit, collects the packet's journey
	// (sampled tracing); routers record arrivals, deliveries and drops.
	Rec *trace.Record
	// Penalty is extra buffering delay the flit must pay on its next
	// arrival, charged by the sender. The double-routing recovery scheme
	// uses it: a router with a failed RC unit cannot look ahead, so the
	// downstream router performs current-node routing first (+1 cycle).
	// Consumed (reset) when the flit is buffered.
	Penalty int64
	// SrcSeq is the per-source end-to-end sequence number of the logical
	// packet, stamped by the reliability protocol at first injection and
	// preserved across retransmissions. Zero when the protocol is off.
	SrcSeq uint64
	// Origin is the PacketID of the logical packet's first transmission
	// attempt. Retransmitted copies carry fresh PacketIDs (the physical
	// identity routers and the broken-set key on) but keep Origin, so
	// measurement windows and traces follow the logical packet. Equal to
	// PacketID on first attempts and whenever the protocol is off.
	Origin uint64

	// pooled guards against double-recycling: set by Pool.Put, cleared by
	// Pool.Get. A live flit always reads false.
	pooled bool
}

// String renders a compact debugging representation.
func (f *Flit) String() string {
	return fmt.Sprintf("%s pkt=%d seq=%d %d->%d out=%s vc=%d", f.Type, f.PacketID, f.Seq, f.Src, f.Dst, f.OutPort, f.VC)
}

// Packet describes a packet to be injected. The simulator segments it into
// flits at the source PE.
type Packet struct {
	ID        uint64
	Src, Dst  int
	Flits     int
	CreatedAt int64
	Mode      RouteMode
	// SrcSeq and Origin carry the end-to-end reliability identity (see the
	// same fields on Flit). The network stamps Origin = ID on every first
	// attempt, so the two identities coincide whenever the protocol is off;
	// retransmissions keep the origin's value. Standalone router harnesses
	// may leave both zero.
	SrcSeq uint64
	Origin uint64
}

// Segment expands the packet into its flits. The head flit carries the
// packet's routing state; OutPort and VC are left Invalid/-1 for the source
// PE to fill in at injection time.
func (p Packet) Segment() []*Flit {
	return AppendSegment(make([]*Flit, 0, p.Flits), p, nil)
}
