// Package metrics collects the simulation outcomes the paper reports:
// average network latency, throughput, packet completion probability, and
// the composite Performance-Energy-Fault-tolerance (PEF) metric.
package metrics

import (
	"fmt"
	"math"

	"github.com/rocosim/roco/internal/stats"
)

// Latency accumulates end-to-end packet latencies (creation at the source
// PE to tail delivery, in cycles), with a histogram for tail quantiles.
type Latency struct {
	run  stats.Running
	hist *stats.Histogram
}

// NewLatency returns an empty accumulator.
func NewLatency() *Latency {
	return &Latency{hist: stats.NewHistogram(4096, 1)}
}

// Record adds one delivered packet's latency.
func (l *Latency) Record(cycles int64) {
	l.run.Add(float64(cycles))
	l.hist.Add(float64(cycles))
}

// Count returns the number of delivered packets recorded.
func (l *Latency) Count() int64 { return l.run.Count() }

// Average returns the mean latency in cycles.
func (l *Latency) Average() float64 { return l.run.Mean() }

// StdDev returns the latency standard deviation.
func (l *Latency) StdDev() float64 { return l.run.StdDev() }

// Max returns the largest observed latency.
func (l *Latency) Max() float64 { return l.run.Max() }

// Quantile returns an upper bound on the q-quantile latency.
func (l *Latency) Quantile(q float64) float64 { return l.hist.Quantile(q) }

// Completion tracks offered versus delivered packets; its ratio is the
// paper's packet completion probability.
type Completion struct {
	Generated int64
	Delivered int64
}

// Probability returns delivered/generated, or 1 for an idle run (a
// fault-free network with no offered traffic trivially completes).
func (c Completion) Probability() float64 {
	if c.Generated == 0 {
		return 1
	}
	return float64(c.Delivered) / float64(c.Generated)
}

// PEF computes the paper's composite metric:
//
//	PEF = (AverageLatency x EnergyPerPacket) / CompletionProbability
//
// i.e. the energy-delay product divided by the completion probability; in a
// fault-free network PEF reduces to EDP. Units: nJ*cycles/probability.
func PEF(avgLatency, energyPerPacketNJ, completionProb float64) float64 {
	if completionProb <= 0 {
		return math.Inf(1)
	}
	return avgLatency * energyPerPacketNJ / completionProb
}

// Throughput converts delivered flits over a cycle span into
// flits/node/cycle, the accepted-traffic measure.
func Throughput(deliveredFlits, cycles int64, nodes int) float64 {
	if cycles <= 0 || nodes <= 0 {
		return 0
	}
	return float64(deliveredFlits) / float64(cycles) / float64(nodes)
}

// Summary bundles the outcome of one simulation run.
type Summary struct {
	AvgLatency     float64
	P95Latency     float64
	P99Latency     float64
	MaxLatency     float64
	AvgSourceQ     float64 // mean cycles a tail flit waited at the source PE
	DeliveredPkts  int64
	GeneratedPkts  int64
	Completion     float64
	ThroughputFNC  float64 // flits/node/cycle accepted
	Cycles         int64
	EnergyPerPktNJ float64
	TotalEnergyNJ  float64
	DynamicNJ      float64
	LeakageNJ      float64
	PEF            float64
	ContentionRow  float64
	ContentionCol  float64
	ContentionAll  float64
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("lat=%.2f cyc (p99=%.0f) delivered=%d/%d compl=%.3f thr=%.3f f/n/c E/pkt=%.3f nJ PEF=%.2f",
		s.AvgLatency, s.P99Latency, s.DeliveredPkts, s.GeneratedPkts, s.Completion, s.ThroughputFNC, s.EnergyPerPktNJ, s.PEF)
}
