package metrics

// Degradation quantifies how delivery throughput behaved around one
// runtime fault, in the style of the paper's Figure 13: the rate before
// the fault, the worst windowed rate after it, and how long the network
// took to recover to a fraction of its pre-fault rate.
type Degradation struct {
	// FaultCycle is when the fault was installed.
	FaultCycle int64
	// PreRate is the mean delivery rate (flits/cycle) over the window
	// before the fault.
	PreRate float64
	// FloorRate is the worst single-bucket rate observed after the fault.
	FloorRate float64
	// PostRate is the windowed rate at the moment recovery was declared.
	PostRate float64
	// RecoveryCycles is the distance from the fault to the start of the
	// first post-fault window whose rate reached the recovery threshold
	// (meaningful only when Recovered).
	RecoveryCycles int64
	// Recovered reports whether the threshold was reached again at all.
	Recovered bool
}

// MeasureDegradation computes the Degradation around faultCycle from a
// delivery time series: buckets[i] counts flits delivered during cycles
// [i*bucketCycles, (i+1)*bucketCycles). The pre-fault rate averages up to
// windowBuckets buckets before the fault's bucket; recovery is declared at
// the first post-fault position where the mean rate over the next (up to)
// windowBuckets buckets reaches threshold*PreRate. A zero pre-fault rate
// counts as immediately recovered: there was no throughput to lose.
func MeasureDegradation(buckets []int64, bucketCycles, faultCycle int64, windowBuckets int, threshold float64) Degradation {
	d := Degradation{FaultCycle: faultCycle}
	if bucketCycles < 1 || windowBuckets < 1 {
		panic("metrics: degradation window must be positive")
	}
	fb := faultCycle / bucketCycles
	if fb > int64(len(buckets)) {
		fb = int64(len(buckets))
	}

	lo := fb - int64(windowBuckets)
	if lo < 0 {
		lo = 0
	}
	if fb > lo {
		var sum int64
		for _, b := range buckets[lo:fb] {
			sum += b
		}
		d.PreRate = float64(sum) / float64((fb-lo)*bucketCycles)
	}
	if d.PreRate == 0 {
		d.Recovered = true
		return d
	}

	// The fault's own bucket mixes pre- and post-fault cycles; scan from
	// the next full bucket.
	first := true
	for b := fb + 1; b < int64(len(buckets)); b++ {
		rate := float64(buckets[b]) / float64(bucketCycles)
		if first || rate < d.FloorRate {
			d.FloorRate = rate
			first = false
		}
		if !d.Recovered {
			hi := b + int64(windowBuckets)
			if hi > int64(len(buckets)) {
				hi = int64(len(buckets))
			}
			var sum int64
			for _, v := range buckets[b:hi] {
				sum += v
			}
			rate := float64(sum) / float64((hi-b)*bucketCycles)
			if rate >= threshold*d.PreRate {
				d.Recovered = true
				d.PostRate = rate
				d.RecoveryCycles = b*bucketCycles - faultCycle
				if d.RecoveryCycles < 1 {
					d.RecoveryCycles = 1
				}
			}
		}
	}
	return d
}
