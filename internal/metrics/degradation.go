package metrics

// Degradation quantifies how delivery throughput behaved around one
// runtime fault, in the style of the paper's Figure 13: the rate before
// the fault, the worst windowed rate after it, and how long the network
// took to recover to a fraction of its pre-fault rate.
type Degradation struct {
	// FaultCycle is when the fault was installed.
	FaultCycle int64
	// PreRate is the mean delivery rate (flits/cycle) over the window
	// before the fault.
	PreRate float64
	// FloorRate is the worst single-bucket rate observed after the fault.
	FloorRate float64
	// PostRate is the windowed rate at the moment recovery was declared.
	PostRate float64
	// RecoveryCycles is the distance from the fault to the start of the
	// first post-fault window whose rate reached the recovery threshold
	// (meaningful only when Recovered).
	RecoveryCycles int64
	// Recovered reports whether the threshold was reached again at all.
	Recovered bool
	// PreGoodput, FloorGoodput and PostGoodput are the same three
	// measurements taken on the goodput series — deliveries of flits that
	// completed a logical packet exactly once (duplicates from the
	// reliability protocol excluded). Without a goodput series they equal
	// their raw counterparts.
	PreGoodput, FloorGoodput, PostGoodput float64
}

// MeasureDegradation computes the Degradation around faultCycle from a
// delivery time series: buckets[i] counts flits delivered during cycles
// [i*bucketCycles, (i+1)*bucketCycles). The pre-fault rate averages up to
// windowBuckets buckets before the fault's bucket; recovery is declared at
// the first post-fault position where the mean rate over the next (up to)
// windowBuckets buckets reaches threshold*PreRate. A zero pre-fault rate
// counts as immediately recovered: there was no throughput to lose.
//
// goodBuckets, when non-nil, is the goodput companion series (deliveries
// excluding protocol duplicates); the goodput fields are measured on it at
// the same positions the raw series selected, so the pair stays directly
// comparable. A nil goodBuckets copies the raw measurements into the
// goodput fields.
func MeasureDegradation(buckets, goodBuckets []int64, bucketCycles, faultCycle int64, windowBuckets int, threshold float64) Degradation {
	d := Degradation{FaultCycle: faultCycle}
	if bucketCycles < 1 || windowBuckets < 1 {
		panic("metrics: degradation window must be positive")
	}
	good := func(b int64) int64 {
		if goodBuckets == nil {
			if b < int64(len(buckets)) {
				return buckets[b]
			}
			return 0
		}
		if b < int64(len(goodBuckets)) {
			return goodBuckets[b]
		}
		return 0
	}
	fb := faultCycle / bucketCycles
	if fb > int64(len(buckets)) {
		fb = int64(len(buckets))
	}

	lo := fb - int64(windowBuckets)
	if lo < 0 {
		lo = 0
	}
	if fb > lo {
		var sum, goodSum int64
		for b := lo; b < fb; b++ {
			sum += buckets[b]
			goodSum += good(b)
		}
		span := float64((fb - lo) * bucketCycles)
		d.PreRate = float64(sum) / span
		d.PreGoodput = float64(goodSum) / span
	}
	if d.PreRate == 0 {
		d.Recovered = true
		return d
	}

	// The fault's own bucket mixes pre- and post-fault cycles; scan from
	// the next full bucket.
	first := true
	for b := fb + 1; b < int64(len(buckets)); b++ {
		rate := float64(buckets[b]) / float64(bucketCycles)
		if first || rate < d.FloorRate {
			d.FloorRate = rate
			// The goodput floor is reported at the raw floor's position —
			// the same moment in time — not as an independent minimum.
			d.FloorGoodput = float64(good(b)) / float64(bucketCycles)
			first = false
		}
		if !d.Recovered {
			hi := b + int64(windowBuckets)
			if hi > int64(len(buckets)) {
				hi = int64(len(buckets))
			}
			var sum, goodSum int64
			for v := b; v < hi; v++ {
				sum += buckets[v]
				goodSum += good(v)
			}
			span := float64((hi - b) * bucketCycles)
			rate := float64(sum) / span
			if rate >= threshold*d.PreRate {
				d.Recovered = true
				d.PostRate = rate
				d.PostGoodput = float64(goodSum) / span
				d.RecoveryCycles = b*bucketCycles - faultCycle
				if d.RecoveryCycles < 1 {
					d.RecoveryCycles = 1
				}
			}
		}
	}
	return d
}
