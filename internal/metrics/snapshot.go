package metrics

import "github.com/rocosim/roco/internal/snapshot"

// SaveState serializes the latency accumulator and histogram.
func (l *Latency) SaveState(e *snapshot.Encoder) {
	l.run.SaveState(e)
	l.hist.SaveState(e)
}

// LoadState restores state written by SaveState. The receiver must come
// from NewLatency so the histogram shape matches.
func (l *Latency) LoadState(d *snapshot.Decoder) {
	l.run.LoadState(d)
	l.hist.LoadState(d)
}

// SaveState serializes the completion counters.
func (c *Completion) SaveState(e *snapshot.Encoder) {
	e.I64(c.Generated)
	e.I64(c.Delivered)
}

// LoadState restores counters written by SaveState.
func (c *Completion) LoadState(d *snapshot.Decoder) {
	c.Generated = d.I64()
	c.Delivered = d.I64()
}
