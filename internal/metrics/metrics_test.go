package metrics

import (
	"math"
	"testing"
)

func TestLatencyStats(t *testing.T) {
	l := NewLatency()
	for _, v := range []int64{10, 20, 30, 40} {
		l.Record(v)
	}
	if l.Count() != 4 || l.Average() != 25 {
		t.Fatalf("avg = %v (n=%d)", l.Average(), l.Count())
	}
	if l.Max() != 40 {
		t.Errorf("max = %v", l.Max())
	}
	if q := l.Quantile(0.5); q < 19 || q > 22 {
		t.Errorf("median = %v", q)
	}
}

func TestCompletionProbability(t *testing.T) {
	if p := (Completion{Generated: 100, Delivered: 75}).Probability(); p != 0.75 {
		t.Errorf("completion = %v", p)
	}
	if p := (Completion{}).Probability(); p != 1 {
		t.Errorf("idle completion = %v, want 1", p)
	}
}

func TestPEF(t *testing.T) {
	// PEF = latency x energy / completion; with completion 1 it is the EDP.
	if got := PEF(20, 0.5, 1); got != 10 {
		t.Errorf("PEF = %v, want 10", got)
	}
	if got := PEF(20, 0.5, 0.5); got != 20 {
		t.Errorf("PEF = %v, want 20", got)
	}
	if !math.IsInf(PEF(20, 0.5, 0), 1) {
		t.Error("PEF with zero completion should be +Inf")
	}
}

func TestThroughput(t *testing.T) {
	if thr := Throughput(6400, 100, 64); thr != 1.0 {
		t.Errorf("throughput = %v", thr)
	}
	if Throughput(1, 0, 64) != 0 {
		t.Error("zero cycles should give zero throughput")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{AvgLatency: 20, Completion: 1, DeliveredPkts: 10, GeneratedPkts: 10}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}
