package power

import (
	"math"
	"testing"

	"github.com/rocosim/roco/internal/router"
)

func TestStructuralOrdering(t *testing.T) {
	gen := NewProfile(GenericStructure())
	ps := NewProfile(PathSensitiveStructure())
	rc := NewProfile(RoCoStructure())

	// The 2x2 crossbars must be the cheapest to traverse, the 5x5 the most
	// expensive; the decomposed 4x4 sits between.
	if !(rc.CrossbarXfer < ps.CrossbarXfer && ps.CrossbarXfer < gen.CrossbarXfer) {
		t.Errorf("crossbar energy ordering wrong: roco=%g ps=%g gen=%g",
			rc.CrossbarXfer, ps.CrossbarXfer, gen.CrossbarXfer)
	}
	// Smaller arbiters: 2v:1 < 3v:1 < 5v:1.
	if !(rc.VAOp < ps.VAOp && ps.VAOp < gen.VAOp) {
		t.Errorf("VA energy ordering wrong: roco=%g ps=%g gen=%g", rc.VAOp, ps.VAOp, gen.VAOp)
	}
	// Identical buffering means identical per-flit buffer energy.
	if rc.BufferWrite != gen.BufferWrite || rc.BufferRead != gen.BufferRead {
		t.Error("buffer energies should not depend on the router kind")
	}
	// Crossbar leakage tracks crosspoint count: generic's 25 > roco's 8.
	if !(rc.LeakagePerCycle < gen.LeakagePerCycle) {
		t.Errorf("leakage ordering wrong: roco=%g gen=%g", rc.LeakagePerCycle, gen.LeakagePerCycle)
	}
}

func TestAccountArithmetic(t *testing.T) {
	p := Profile{
		BufferWrite: 1, BufferRead: 2, CrossbarXfer: 3, LinkXfer: 4,
		VAOp: 5, SAOp: 6, RouteComp: 7, EjectDelivery: 8, LeakagePerCycle: 10,
	}
	a := &router.Activity{
		BufferWrites: 1, BufferReads: 1, CrossbarTraversals: 1, LinkFlits: 1,
		VAOps: 1, SAOps: 1, RouteComputations: 1, Ejections: 1, EarlyEjections: 1,
		Cycles: 2,
	}
	rep := Account(p, a)
	wantDyn := 1.0 + 2 + 3 + 4 + 5 + 6 + 7 + 8*2
	if rep.DynamicNJ != wantDyn {
		t.Errorf("dynamic = %v, want %v", rep.DynamicNJ, wantDyn)
	}
	if rep.LeakageNJ != 20 {
		t.Errorf("leakage = %v, want 20", rep.LeakageNJ)
	}
	if rep.TotalNJ() != wantDyn+20 {
		t.Error("total mismatch")
	}
	if rep.PerPacketNJ(2) != (wantDyn+20)/2 {
		t.Error("per-packet mismatch")
	}
	if rep.PerPacketNJ(0) != 0 {
		t.Error("per-packet with no deliveries should be 0")
	}
}

func TestSqrtf(t *testing.T) {
	for _, v := range []float64{1, 4, 16, 25, 2} {
		if math.Abs(sqrtf(v)-math.Sqrt(v)) > 1e-9 {
			t.Errorf("sqrtf(%v) = %v", v, sqrtf(v))
		}
	}
	if sqrtf(0) != 0 {
		t.Error("sqrtf(0) should be 0")
	}
}

func TestProfileString(t *testing.T) {
	if NewProfile(RoCoStructure()).String() == "" {
		t.Error("empty profile string")
	}
}

func TestAccountDetailedMatchesAccount(t *testing.T) {
	p := NewProfile(RoCoStructure())
	a := &router.Activity{
		BufferWrites: 100, BufferReads: 90, CrossbarTraversals: 90,
		LinkFlits: 80, VAOps: 30, SAOps: 120, RouteComputations: 25,
		Ejections: 5, EarlyEjections: 10, Cycles: 1000,
	}
	sum := Account(p, a)
	split := AccountDetailed(p, a)
	if diff := split.TotalNJ() - sum.TotalNJ(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown total %v != account total %v", split.TotalNJ(), sum.TotalNJ())
	}
	if split.BuffersNJ <= 0 || split.LeakageNJ <= 0 {
		t.Error("breakdown groups should be positive for nonzero activity")
	}
}
