// Package power implements the energy model of the evaluation. The paper
// synthesizes the three routers in a TSMC 90 nm library (1 V, 500 MHz),
// extracts per-component dynamic and leakage power at 50% switching
// activity, and back-annotates those numbers into the cycle-accurate
// simulator, multiplying by observed activity factors.
//
// This reproduction substitutes the synthesis step with an analytic
// structural model (documented in DESIGN.md): each event's energy scales
// with the size of the hardware that serves it — crossbar energy with the
// input-output product, arbiter energy with request fan-in, buffer energy
// with flit width and depth — normalized to 90 nm magnitudes. Because all
// three routers are costed by the same formulas, the relative comparisons
// (Figure 13's 20%/6% energy-per-packet gaps) follow from their structures,
// exactly as in the paper.
package power

import (
	"fmt"

	"github.com/rocosim/roco/internal/router"
)

// Profile holds the per-event energies (in nJ) and per-cycle leakage (in
// nJ/cycle) of one router instance.
type Profile struct {
	Name string

	// Per-event dynamic energies, nJ.
	BufferWrite   float64
	BufferRead    float64
	CrossbarXfer  float64
	LinkXfer      float64
	VAOp          float64
	SAOp          float64
	RouteComp     float64
	EjectDelivery float64

	// D2DXfer is the per-flit energy of one die-to-die boundary-link
	// traversal (nJ), replacing LinkXfer on those hops. Zero on a
	// single-die profile; the run layer sets it from the configured
	// interface class (D2DParallelXfer or D2DSerialXfer) and applies the
	// difference through D2DPremiumNJ, since activity counters price every
	// link flit at LinkXfer first.
	D2DXfer float64

	// LeakagePerCycle is the router's static energy per cycle, nJ.
	LeakagePerCycle float64
}

// Technology constants for the 90 nm / 1 V / 500 MHz operating point.
// Values are per-bit or per-unit normalizations chosen to land total
// router power in the hundreds-of-milliwatts range typical of published
// 90 nm NoC routers; see DESIGN.md for the substitution rationale.
const (
	FlitBits = 128

	// eBufBit is the energy to write or read one bit of an input buffer
	// (register-file cell), nJ.
	eBufBitWrite = 3.8e-5
	eBufBitRead  = 3.1e-5
	// eXbarBitPort is the crossbar traversal energy per bit per attached
	// port-pair unit: a P_in x P_out crossbar costs
	// eXbarBitPort * bits * sqrt(Pin*Pout) per traversal.
	eXbarBitPort = 1.35e-5
	// eLinkBit is the per-bit link traversal energy (1 mm wire at 90 nm).
	eLinkBit = 3.9e-5
	// eD2DParBit is the per-bit energy of a parallel die-to-die crossing
	// (dense micro-bump interface: short but heavily loaded wires plus
	// boundary latches — roughly 5x an on-die 1 mm hop).
	eD2DParBit = 2.0e-4
	// eD2DSerBit is the per-bit energy of a serialized die-to-die lane,
	// including the serializer/deserializer overhead of time-multiplexing
	// the flit onto a narrow off-chip channel.
	eD2DSerBit = 6.5e-4
	// eArbReq is the arbitration energy per request line evaluated.
	eArbReq = 5.2e-5
	// eRoute is the energy of one route computation.
	eRoute = 2.6e-4
	// eEject is the PE-interface delivery energy per flit.
	eEject = 8.0e-4
	// leakPerBufferBit is static energy per buffered bit per cycle.
	// Leakage is a large fraction of total energy at 90 nm (the paper's
	// energy model separates dynamic and leakage for exactly this
	// reason); these constants put a router's static power at ~13 mW,
	// roughly 40% of its total at 30% load.
	leakPerBufferBit = 3.2e-6
	// leakPerXbarPoint is static energy per crossbar crosspoint (bit x
	// port-pair) per cycle.
	leakPerXbarPoint = 6.8e-7
	// leakBase is the fixed control-logic leakage per router per cycle.
	leakBase = 1.4e-4
)

// Structure describes the hardware shape of a router variant; the profile
// is derived from it.
type Structure struct {
	Name string
	// BufferFlits is the total buffering (flits) in the router.
	BufferFlits int
	// Crossbars lists the (inputs, outputs) of each switch fabric in the
	// router: one 5x5 for the generic router, one decomposed 4x4 (costed
	// as half a full 4x4) for the path-sensitive router, two 2x2 for RoCo.
	Crossbars [][2]int
	// CrossbarScale discounts partially populated fabrics (the
	// path-sensitive router's decomposed crossbar has half the
	// crosspoints of a full 4x4).
	CrossbarScale float64
	// VAFanIn and SAFanIn are the average request fan-ins of one VA/SA
	// arbitration operation (paper Figure 2: 5v:1 arbiters for the generic
	// VA versus 2v:1 for RoCo).
	VAFanIn int
	SAFanIn int
}

// GenericStructure is the paper's generic 5-port router: 60 flits of
// buffering, one full 5x5 crossbar, 5v:1 VA arbiters (v=3) and 5:1 SA
// output arbiters.
func GenericStructure() Structure {
	return Structure{
		Name:          "generic",
		BufferFlits:   60,
		Crossbars:     [][2]int{{5, 5}},
		CrossbarScale: 1,
		VAFanIn:       15, // 5v:1, v=3
		SAFanIn:       5,  // P:1 output stage over 5 ports
	}
}

// PathSensitiveStructure is the DAC'05 path-sensitive router: 60 flits,
// one decomposed 4x4 crossbar with half the connections, quadrant path
// sets.
func PathSensitiveStructure() Structure {
	return Structure{
		Name:        "path-sensitive",
		BufferFlits: 60,
		Crossbars:   [][2]int{{4, 4}},
		// The decomposed crossbar has half the crosspoints of a full 4x4,
		// but its wires still span the full four-port footprint, and wire
		// capacitance dominates traversal energy — hence a discount well
		// short of 0.5.
		CrossbarScale: 0.85,
		VAFanIn:       9, // 3v:1 within a quadrant neighborhood, v=3
		SAFanIn:       2, // 2:1 output stage (two path sets per output)
	}
}

// RoCoStructure is the proposed router: 60 flits split over two modules,
// each with a compact 2x2 crossbar, 2v:1 VA arbiters and the single 2:1
// mirror arbiter per module.
func RoCoStructure() Structure {
	return Structure{
		Name:          "roco",
		BufferFlits:   60,
		Crossbars:     [][2]int{{2, 2}, {2, 2}},
		CrossbarScale: 1,
		VAFanIn:       6, // 2v:1, v=3
		SAFanIn:       2, // mirror allocator: one 2:1 global arbiter
	}
}

// PDRStructure is the partitioned dimension-order router of the related
// work: two 3x3 crossbars (X and Y modules) whose operation is intertwined
// through an internal transfer channel.
func PDRStructure() Structure {
	return Structure{
		Name:          "pdr",
		BufferFlits:   60,
		Crossbars:     [][2]int{{3, 3}, {3, 3}},
		CrossbarScale: 1,
		VAFanIn:       4, // 2v:1, v=2
		SAFanIn:       3, // 3:1 output stage
	}
}

// NewProfile derives the per-event energy profile of a router structure.
func NewProfile(s Structure) Profile {
	bufBits := float64(s.BufferFlits * FlitBits)
	var xbarXfer, xbarPoints float64
	for _, cb := range s.Crossbars {
		size := sqrtf(float64(cb[0] * cb[1]))
		xbarXfer += eXbarBitPort * FlitBits * size * s.CrossbarScale
		xbarPoints += float64(cb[0]*cb[1]) * FlitBits * s.CrossbarScale
	}
	// A flit traverses one fabric per hop; with multiple fabrics the
	// traversal cost is that of one (they are parallel, not chained).
	xbarXfer /= float64(len(s.Crossbars))

	return Profile{
		Name:            s.Name,
		BufferWrite:     eBufBitWrite * FlitBits,
		BufferRead:      eBufBitRead * FlitBits,
		CrossbarXfer:    xbarXfer,
		LinkXfer:        eLinkBit * FlitBits,
		VAOp:            eArbReq * float64(s.VAFanIn),
		SAOp:            eArbReq * float64(s.SAFanIn),
		RouteComp:       eRoute,
		EjectDelivery:   eEject,
		LeakagePerCycle: leakBase + leakPerBufferBit*bufBits + leakPerXbarPoint*xbarPoints,
	}
}

// D2DParallelXfer returns the per-flit energy of one parallel die-to-die
// boundary crossing, and D2DSerialXfer its serialized-lane counterpart.
// The run layer writes one of them into Profile.D2DXfer on chiplet
// topologies.
func D2DParallelXfer() float64 { return eD2DParBit * FlitBits }

// D2DSerialXfer returns the per-flit energy of one serialized die-to-die
// boundary crossing.
func D2DSerialXfer() float64 { return eD2DSerBit * FlitBits }

// D2DPremiumNJ is the extra energy of repricing d2dFlits boundary-link
// traversals at the profile's die-to-die cost: the activity counters
// charged every link flit LinkXfer already, so only the difference is
// added. Zero when the profile has no D2D cost (single-die runs).
func D2DPremiumNJ(p Profile, d2dFlits int64) float64 {
	if d2dFlits <= 0 || p.D2DXfer <= p.LinkXfer {
		return 0
	}
	return (p.D2DXfer - p.LinkXfer) * float64(d2dFlits)
}

func sqrtf(x float64) float64 {
	// Newton iteration; avoids importing math for one call and keeps the
	// package free of float edge cases (inputs are small positive ints).
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Report is the energy outcome of one run.
type Report struct {
	DynamicNJ float64
	LeakageNJ float64
}

// TotalNJ returns dynamic plus leakage energy.
func (r Report) TotalNJ() float64 { return r.DynamicNJ + r.LeakageNJ }

// PerPacketNJ divides the total energy across delivered packets, the
// paper's "energy consumption per packet" (total network energy over a
// period divided by packets delivered in that period).
func (r Report) PerPacketNJ(delivered int64) float64 {
	if delivered <= 0 {
		return 0
	}
	return r.TotalNJ() / float64(delivered)
}

// Account converts accumulated router activity into energy.
func Account(p Profile, a *router.Activity) Report {
	dyn := p.BufferWrite*float64(a.BufferWrites) +
		p.BufferRead*float64(a.BufferReads) +
		p.CrossbarXfer*float64(a.CrossbarTraversals) +
		p.LinkXfer*float64(a.LinkFlits) +
		p.VAOp*float64(a.VAOps) +
		p.SAOp*float64(a.SAOps) +
		p.RouteComp*float64(a.RouteComputations) +
		p.EjectDelivery*float64(a.Ejections+a.EarlyEjections)
	leak := p.LeakagePerCycle * float64(a.Cycles)
	return Report{DynamicNJ: dyn, LeakageNJ: leak}
}

// String renders the profile for reports.
func (p Profile) String() string {
	return fmt.Sprintf("%s: bufW=%.2e bufR=%.2e xbar=%.2e link=%.2e va=%.2e sa=%.2e leak/cyc=%.2e nJ",
		p.Name, p.BufferWrite, p.BufferRead, p.CrossbarXfer, p.LinkXfer, p.VAOp, p.SAOp, p.LeakagePerCycle)
}

// Breakdown splits a run's energy by component group, the view the
// paper's Figure 13 discussion reasons about (buffer energy versus
// crossbar energy versus arbitration).
type Breakdown struct {
	BuffersNJ     float64
	CrossbarNJ    float64
	LinksNJ       float64
	ArbitrationNJ float64
	RoutingNJ     float64
	EjectionNJ    float64
	LeakageNJ     float64
}

// TotalNJ sums all groups.
func (b Breakdown) TotalNJ() float64 {
	return b.BuffersNJ + b.CrossbarNJ + b.LinksNJ + b.ArbitrationNJ + b.RoutingNJ + b.EjectionNJ + b.LeakageNJ
}

// AccountDetailed converts activity into a per-component energy split.
// Its totals equal Account's.
func AccountDetailed(p Profile, a *router.Activity) Breakdown {
	return Breakdown{
		BuffersNJ:     p.BufferWrite*float64(a.BufferWrites) + p.BufferRead*float64(a.BufferReads),
		CrossbarNJ:    p.CrossbarXfer * float64(a.CrossbarTraversals),
		LinksNJ:       p.LinkXfer * float64(a.LinkFlits),
		ArbitrationNJ: p.VAOp*float64(a.VAOps) + p.SAOp*float64(a.SAOps),
		RoutingNJ:     p.RouteComp * float64(a.RouteComputations),
		EjectionNJ:    p.EjectDelivery * float64(a.Ejections+a.EarlyEjections),
		LeakageNJ:     p.LeakagePerCycle * float64(a.Cycles),
	}
}
