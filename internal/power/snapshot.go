package power

import "github.com/rocosim/roco/internal/snapshot"

// SaveState serializes the energy split.
func (b *Breakdown) SaveState(e *snapshot.Encoder) {
	e.F64(b.BuffersNJ)
	e.F64(b.CrossbarNJ)
	e.F64(b.LinksNJ)
	e.F64(b.ArbitrationNJ)
	e.F64(b.RoutingNJ)
	e.F64(b.EjectionNJ)
	e.F64(b.LeakageNJ)
}

// LoadState restores a split written by SaveState.
func (b *Breakdown) LoadState(d *snapshot.Decoder) {
	b.BuffersNJ = d.F64()
	b.CrossbarNJ = d.F64()
	b.LinksNJ = d.F64()
	b.ArbitrationNJ = d.F64()
	b.RoutingNJ = d.F64()
	b.EjectionNJ = d.F64()
	b.LeakageNJ = d.F64()
}
