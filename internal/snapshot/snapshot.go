// Package snapshot implements the versioned, checksummed binary codec
// behind deterministic checkpoint/resume: a sticky-error Encoder/Decoder
// pair over fixed-width little-endian primitives, a self-describing frame
// format (magic, version, length, CRC64), and crash-safe file persistence
// (same-directory temp file, fsync, atomic rename). Higher layers compose
// the primitives into full simulation-state serializers; this package
// knows nothing about routers or flits.
//
// # Frame format
//
// A snapshot frame is
//
//	"ROCOSNAP" | version u32 | payload length u64 | payload | CRC64 u64
//
// with all integers little-endian and the CRC64 (ECMA polynomial) taken
// over the payload bytes alone. Read verifies the magic, version, length
// and checksum before handing out a single payload byte, so any torn or
// truncated write — at every byte boundary — surfaces as ErrCorrupt,
// never as a partially decoded state.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Version is the current snapshot format version. Readers reject frames
// written by a different version (state layouts are not cross-version
// compatible). Version 2 added multi-cycle D2D pipe stages to the link
// codec, a Port field to fault events, and severed-port masks to routers.
const Version = 2

// magic leads every frame; eight bytes so the header reads as two aligned
// words.
const magic = "ROCOSNAP"

// ErrCorrupt reports a frame that failed structural validation: bad magic,
// impossible length, checksum mismatch, a truncated payload, or a decoder
// that ran past the data. It is the typed error the kill-mid-write
// recovery path keys on.
var ErrCorrupt = errors.New("snapshot: corrupt or truncated")

// ErrVersion reports a structurally valid frame written by an
// incompatible format version.
var ErrVersion = errors.New("snapshot: incompatible format version")

// crcTable is the ECMA CRC64 table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Encoder accumulates a snapshot payload in memory. All methods append
// fixed-width little-endian encodings; the zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Len returns the payload size accumulated so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 (two's-complement bit pattern).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bit pattern, preserving the exact
// value (including signed zeros and NaN payloads).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(v []byte) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(v string) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// WriteTo writes the complete frame (header, payload, checksum). It
// implements io.WriterTo; the encoder may keep accumulating and be written
// again, producing a fresh frame each time.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 0, len(magic)+4+8)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(e.buf)))
	var total int64
	for _, chunk := range [][]byte{hdr, e.buf, binary.LittleEndian.AppendUint64(nil, crc64.Checksum(e.buf, crcTable))} {
		k, err := w.Write(chunk)
		total += int64(k)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Decoder consumes a verified snapshot payload. The first failed read
// poisons the decoder (Err turns non-nil) and every subsequent read
// returns zero values, so calling code decodes straight-line and checks
// the error once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Read consumes a complete frame from r, verifying the magic, version,
// length and checksum before returning a decoder over the payload. Any
// structural defect — including truncation at every possible byte
// boundary — returns an error wrapping ErrCorrupt (or ErrVersion for a
// valid frame of a foreign version).
func Read(r io.Reader) (*Decoder, error) {
	hdr := make([]byte, len(magic)+4+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: frame version %d, reader version %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(hdr[len(magic)+4:])
	// An impossible length must not drive a huge allocation: read
	// incrementally through a limited reader and let truncation surface
	// as a short read.
	const maxChunk = 1 << 20
	payload := make([]byte, 0, min64(n, maxChunk))
	remaining := n
	for remaining > 0 {
		chunk := min64(remaining, maxChunk)
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
		}
		remaining -= uint64(chunk)
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: short checksum: %v", ErrCorrupt, err)
	}
	if got, want := crc64.Checksum(payload, crcTable), binary.LittleEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &Decoder{buf: payload}, nil
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}

// Err returns the first decoding failure (nil while healthy).
func (d *Decoder) Err() error { return d.err }

// Corruptf poisons the decoder with a semantic-validation failure (a
// structural check by calling code, e.g. a state count that cannot match
// the constructed network). No-op if already poisoned.
func (d *Decoder) Corruptf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Finish reports the final decoder state: the sticky error if any,
// otherwise an ErrCorrupt if payload bytes remain unconsumed (a layout
// mismatch between writer and reader).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// take reserves n payload bytes, poisoning the decoder when fewer remain.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = fmt.Errorf("%w: payload exhausted", ErrCorrupt)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool, poisoning the decoder on any byte other than 0 or 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Corruptf("invalid bool byte")
		return false
	}
}

// Bytes reads a length-prefixed byte slice (always a fresh copy).
func (d *Decoder) Bytes() []byte {
	n := d.SliceLen(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Bytes()) }

// SliceLen reads a slice length prefix and validates it against the
// remaining payload: a slice of n elements of at least elemBytes each
// cannot outsize the bytes left, so a corrupt length can never drive an
// oversized allocation. elemBytes below 1 is treated as 1.
func (d *Decoder) SliceLen(elemBytes int) int {
	if elemBytes < 1 {
		elemBytes = 1
	}
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > (len(d.buf)-d.off)/elemBytes {
		d.Corruptf("implausible slice length %d", n)
		return 0
	}
	return n
}

// WriteFileAtomic persists one frame crash-safely: the frame is written to
// a temp file in the target's directory, synced to stable storage, and
// atomically renamed over path; the directory is then synced so the rename
// itself is durable. A crash at any instant leaves either the complete old
// file or the complete new one — never a torn mix — and stray temp files
// from crashed writers are ignored by Latest.
func WriteFileAtomic(path string, e *Encoder) error {
	return writeAtomic(path, func(w io.Writer) error {
		_, err := e.WriteTo(w)
		return err
	})
}

// WriteBytesAtomic persists raw bytes with the same crash-safety protocol
// as WriteFileAtomic (temp file, fsync, atomic rename, directory sync)
// but no snapshot framing — for client-facing artifacts like campaign
// result files that must be servable verbatim.
func WriteBytesAtomic(path string, data []byte) error {
	return writeAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// writeAtomic runs the temp-fsync-rename-dirsync protocol around one
// write callback.
func writeAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		// Sync the directory so the rename survives power loss. Failure to
		// sync a directory is non-fatal on filesystems that do not support
		// it; the rename itself already happened.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// WriteJSONFileAtomic frames a JSON document inside a snapshot frame
// (magic, version, length, CRC64) and persists it crash-safely — the
// job-manifest format of the campaign service. The checksum means a torn
// manifest surfaces as ErrCorrupt on read, never as half-parsed JSON.
func WriteJSONFileAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	e := NewEncoder()
	e.Bytes(data)
	return WriteFileAtomic(path, e)
}

// ReadJSONFile reads a frame written by WriteJSONFileAtomic and
// unmarshals its JSON payload into v. Structural damage (truncation,
// checksum mismatch, malformed JSON) returns an error wrapping
// ErrCorrupt; a foreign format version returns ErrVersion.
func ReadJSONFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := Read(f)
	if err != nil {
		return err
	}
	data := d.Bytes()
	if err := d.Finish(); err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: manifest JSON: %v", ErrCorrupt, err)
	}
	return nil
}

// SweepTemp removes stale in-progress atomic-write files (the
// ".tmp-*" leftovers of a writer killed mid-write) from dir, returning
// the paths removed. Call it only when the caller owns the directory —
// at resume or checkpoint startup — never while another writer may be
// mid-protocol. A missing directory sweeps nothing.
func SweepTemp(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, tmpPrefix+"*"))
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, name := range names {
		if rerr := os.Remove(name); rerr == nil {
			removed = append(removed, name)
		} else if err == nil && !errors.Is(rerr, os.ErrNotExist) {
			err = rerr
		}
	}
	return removed, err
}

// tmpPrefix marks in-progress atomic writes; Latest skips such files.
const tmpPrefix = ".tmp-"

// ErrNoSnapshot reports that a directory holds no valid snapshot to
// resume from.
var ErrNoSnapshot = errors.New("snapshot: no valid snapshot found")

// Latest returns the newest structurally valid snapshot file in dir among
// those matching the glob pattern (e.g. "ckpt-*.rocosnap"). Files are
// ordered by name descending — checkpoint writers embed a zero-padded
// cycle number precisely so that lexical order is temporal order — and
// each candidate's frame is fully verified (checksum included) before it
// is chosen, so a torn newest file falls back to the previous valid one.
// Returns ErrNoSnapshot when nothing valid remains.
func Latest(dir, pattern string) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return "", err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		if strings.HasPrefix(filepath.Base(name), tmpPrefix) {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			continue
		}
		_, err = Read(f)
		f.Close()
		if err == nil {
			return name, nil
		}
	}
	return "", ErrNoSnapshot
}
