package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(1)
	a := root.Split(0)
	b := root.Split(1)
	if a.Uint64() == b.Uint64() {
		t.Error("split streams should differ")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		got := float64(c) / samples
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %.3f, want ~0.1", i, got)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / 100000; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %.3f", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) must be true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for trial := 0; trial < 100; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 100000; i++ {
		v := r.Pareto(1.25, 4, 3000)
		if v < 4 || v > 3000 {
			t.Fatalf("bounded Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// A heavy-tailed distribution has far more mass near the minimum than
	// an exponential with the same mean, and still produces very large
	// samples.
	r := NewRNG(19)
	const samples = 200000
	var small, large int
	for i := 0; i < samples; i++ {
		v := r.Pareto(1.25, 4, 3000)
		if v < 8 {
			small++
		}
		if v > 400 {
			large++
		}
	}
	if float64(small)/samples < 0.5 {
		t.Errorf("Pareto should concentrate near xmin (got %.3f below 2*xmin)", float64(small)/samples)
	}
	if large == 0 {
		t.Error("Pareto should produce occasional very large samples")
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.Count() != 8 || r.Mean() != 5 {
		t.Fatalf("mean = %v (n=%d), want 5 (8)", r.Mean(), r.Count())
	}
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningMerge(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				xs[i] = float64(i)
			}
		}
		var all, a, b Running
		for i, v := range xs {
			all.Add(v)
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-6 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(100, 1)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); q < 49 || q > 52 {
		t.Errorf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0.99); q < 98 || q > 101 {
		t.Errorf("p99 = %v, want ~99", q)
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %v, want 50.5", h.Mean())
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(10, 1)
	h.Add(5)
	h.Add(1e9)
	if !math.IsInf(h.Quantile(0.99), 1) {
		t.Error("overflow samples should push high quantiles to +Inf")
	}
}

func TestSeriesSortedAndLookup(t *testing.T) {
	s := &Series{Label: "x"}
	s.Append(3, 30)
	s.Append(1, 10)
	s.Append(2, 20)
	sorted := s.Sorted()
	if sorted.X[0] != 1 || sorted.X[2] != 3 {
		t.Errorf("Sorted order wrong: %v", sorted.X)
	}
	if s.YAt(2) != 20 {
		t.Errorf("YAt(2) = %v", s.YAt(2))
	}
	if !math.IsNaN(s.YAt(99)) {
		t.Error("YAt missing x should be NaN")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(23)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(10)
	}
	if m := sum / n; math.Abs(m-10) > 0.2 {
		t.Errorf("exponential mean = %v, want ~10", m)
	}
}
