package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count/mean/variance/min/max in one pass (Welford's
// algorithm). The zero value is ready to use.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds a sample into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count returns the number of samples.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// String summarizes the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.0f max=%.0f", r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Histogram is a fixed-width-bucket histogram over [0, width*buckets), with
// an overflow bucket for larger samples. It supports quantile queries,
// which the latency analysis uses for tail statistics.
type Histogram struct {
	width   float64
	counts  []int64
	over    int64
	total   int64
	running Running
}

// NewHistogram returns a histogram of the given bucket count and width.
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets < 1 || width <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{width: width, counts: make([]int64, buckets)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	h.running.Add(x)
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		h.over++
		return
	}
	h.counts[i]++
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the exact (not binned) mean of the samples.
func (h *Histogram) Mean() float64 { return h.running.Mean() }

// Quantile returns an upper bound of the q-quantile (0 <= q <= 1) using the
// bucket boundaries. Samples in the overflow bucket report +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return float64(i+1) * h.width
		}
	}
	return math.Inf(1)
}

// Series is a simple (x, y) sequence, used for figure data (latency vs
// injection rate and friends).
type Series struct {
	Label string
	X, Y  []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, or NaN when x is absent.
func (s *Series) YAt(x float64) float64 {
	for i, v := range s.X {
		if v == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Sorted returns a copy of the series with points ordered by x.
func (s *Series) Sorted() *Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := &Series{Label: s.Label}
	for _, i := range idx {
		out.Append(s.X[i], s.Y[i])
	}
	return out
}
