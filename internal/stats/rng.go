// Package stats supplies the deterministic random-number machinery and the
// statistics accumulators used throughout the simulator. All randomness in a
// simulation flows from explicitly seeded RNG instances so that every
// experiment is exactly reproducible.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// the simulator gives each node its own stream.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed nonzero state for any seed value.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream from r, keyed by id. Each node of the
// network uses a split stream so that changing one node's behavior does not
// perturb another's randomness.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is negligible for the small n the simulator uses, but the
	// rejection loop keeps it exact regardless.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pareto draws from a bounded Pareto distribution with shape alpha on
// [xmin, xmax]. Bounded Pareto ON/OFF periods are the standard construction
// for self-similar traffic (Barford & Crovella), which the paper uses for
// its web-traffic workload.
func (r *RNG) Pareto(alpha, xmin, xmax float64) float64 {
	if alpha <= 0 || xmin <= 0 || xmax <= xmin {
		panic("stats: invalid bounded-Pareto parameters")
	}
	u := r.Float64()
	ha := math.Pow(xmax, alpha)
	la := math.Pow(xmin, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Exponential draws from an exponential distribution with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: non-positive exponential mean")
	}
	return -mean * math.Log(1-r.Float64())
}
