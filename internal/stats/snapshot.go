package stats

import "github.com/rocosim/roco/internal/snapshot"

// State exposes the raw xoshiro256** state for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

// SaveState serializes the generator state.
func (r *RNG) SaveState(e *snapshot.Encoder) {
	for _, w := range r.s {
		e.U64(w)
	}
}

// LoadState restores a state written by SaveState.
func (r *RNG) LoadState(d *snapshot.Decoder) {
	for i := range r.s {
		r.s[i] = d.U64()
	}
}

// SaveState serializes the accumulator.
func (r *Running) SaveState(e *snapshot.Encoder) {
	e.I64(r.n)
	e.F64(r.mean)
	e.F64(r.m2)
	e.F64(r.min)
	e.F64(r.max)
}

// LoadState restores an accumulator written by SaveState.
func (r *Running) LoadState(d *snapshot.Decoder) {
	r.n = d.I64()
	r.mean = d.F64()
	r.m2 = d.F64()
	r.min = d.F64()
	r.max = d.F64()
}

// SaveState serializes the histogram, shape included.
func (h *Histogram) SaveState(e *snapshot.Encoder) {
	e.F64(h.width)
	e.Int(len(h.counts))
	for _, c := range h.counts {
		e.I64(c)
	}
	e.I64(h.over)
	e.I64(h.total)
	h.running.SaveState(e)
}

// LoadState restores a histogram written by SaveState into h, which must
// have the same shape (bucket count and width) — a mismatch poisons the
// decoder instead of silently rebinning.
func (h *Histogram) LoadState(d *snapshot.Decoder) {
	if w := d.F64(); w != h.width {
		d.Corruptf("histogram width %v, want %v", w, h.width)
	}
	n := d.SliceLen(8)
	if n != len(h.counts) {
		d.Corruptf("histogram buckets %d, want %d", n, len(h.counts))
		return
	}
	for i := range h.counts {
		h.counts[i] = d.I64()
	}
	h.over = d.I64()
	h.total = d.I64()
	h.running.LoadState(d)
}
