package network

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/router/pdr"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/traffic"
)

func pdrBuilder(id int, e *router.RouteEngine) router.Router { return pdr.New(id, e) }

func pdrConfig(pattern traffic.Pattern, rate float64, seed uint64) Config {
	cfg := smokeConfig(routing.XY, pattern, rate, seed)
	cfg.Build = pdrBuilder
	return cfg
}

func TestPDRDrains(t *testing.T) {
	for _, pattern := range []traffic.Pattern{traffic.Uniform, traffic.Transpose} {
		res := New(pdrConfig(pattern, 0.10, 19)).Run()
		if res.Summary.Completion != 1 {
			t.Fatalf("%s: completion %.3f", pattern, res.Summary.Completion)
		}
		if res.Summary.AvgLatency < 3 || res.Summary.AvgLatency > 60 {
			t.Fatalf("%s: implausible latency %.2f", pattern, res.Summary.AvgLatency)
		}
		t.Logf("%s: %s", pattern, res.Summary)
	}
}

func TestPDRHighLoadNoDeadlock(t *testing.T) {
	cfg := pdrConfig(traffic.Uniform, 0.35, 23)
	cfg.MeasurePackets = 5000
	res := New(cfg).Run()
	if res.Summary.Completion < 0.99 {
		t.Fatalf("completion %.3f at 35%% load; deadlock suspected", res.Summary.Completion)
	}
}

func TestPDRConcatenatedTraversalCost(t *testing.T) {
	// The paper's criticism made measurable: every dimension change (and
	// every ejection) crosses both crossbars, so PDR's traversal count per
	// delivered flit exceeds RoCo's, and its latency is higher.
	pdrRes := New(pdrConfig(traffic.Uniform, 0.15, 29)).Run()
	rocoRes := New(rocoConfig(routing.XY, traffic.Uniform, 0.15, 29)).Run()

	pdrXbar := float64(pdrRes.Activity.CrossbarTraversals) / float64(pdrRes.DeliveredFlits)
	rocoXbar := float64(rocoRes.Activity.CrossbarTraversals) / float64(rocoRes.DeliveredFlits)
	if pdrXbar <= rocoXbar {
		t.Errorf("PDR traversals/flit %.2f should exceed RoCo's %.2f (concatenated traversals)", pdrXbar, rocoXbar)
	}
	if pdrRes.Summary.AvgLatency <= rocoRes.Summary.AvgLatency {
		t.Errorf("PDR latency %.2f should exceed RoCo's %.2f", pdrRes.Summary.AvgLatency, rocoRes.Summary.AvgLatency)
	}
	t.Logf("traversals/flit: pdr=%.2f roco=%.2f; latency: pdr=%.2f roco=%.2f",
		pdrXbar, rocoXbar, pdrRes.Summary.AvgLatency, rocoRes.Summary.AvgLatency)
}

func TestPDRFaultBlocksNode(t *testing.T) {
	cfg := pdrConfig(traffic.Uniform, 0.15, 31)
	cfg.Faults = []fault.Fault{{Node: 5, Component: fault.Crossbar}}
	cfg.InactivityLimit = 1500
	res := New(cfg).Run()
	if res.Summary.Completion >= 1 {
		t.Error("a PDR fault should take the whole node off-line")
	}
	if res.Summary.Completion < 0.3 {
		t.Errorf("completion %.3f implausibly low with discard in place", res.Summary.Completion)
	}
}

func TestPDRRejectsNonXY(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PDR with adaptive routing should panic")
		}
	}()
	cfg := smokeConfig(routing.Adaptive, traffic.Uniform, 0.1, 1)
	cfg.Build = pdrBuilder
	New(cfg)
}
