package network

import (
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/telemetry"
	"github.com/rocosim/roco/internal/traffic"
)

// withTelemetry arms epoch sampling on a kernel-test configuration.
func withTelemetry(cfg Config, every int64) Config {
	cfg.TelemetryEvery = every
	cfg.TelemetryProfile = power.NewProfile(power.RoCoStructure())
	return cfg
}

// telemetryKernels enumerates the three execution strategies every
// telemetry contract must hold under.
var telemetryKernels = []struct {
	name  string
	apply func(*Config)
}{
	{"reference", func(c *Config) { c.ReferenceKernel = true }},
	{"gated", func(c *Config) {}},
	{"sharded", func(c *Config) { c.Shards = 4; c.Workers = 4 }},
}

// TestTelemetryDoesNotChangeResult is the observer-effect contract:
// enabling epoch sampling must leave every other Result field bit-identical
// to a telemetry-off run, on all three kernels. Telemetry reads event
// counters at barriers and snapshots VC occupancy read-only; any
// divergence here means sampling mutated simulation state.
func TestTelemetryDoesNotChangeResult(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"roco", rocoBuilder},
	}
	for _, b := range builders {
		b := b
		for _, k := range telemetryKernels {
			k := k
			for _, seed := range []uint64{1, 42} {
				seed := seed
				t.Run(b.name+"/"+k.name, func(t *testing.T) {
					t.Parallel()
					plain := kernelConfig(b.build, seed)
					k.apply(&plain)
					sampled := withTelemetry(kernelConfig(b.build, seed), 64)
					k.apply(&sampled)

					want := New(plain).Run()
					got := New(sampled).Run()
					if got.Telemetry == nil || len(got.Telemetry.Epochs) == 0 {
						t.Fatalf("seed %d: telemetry enabled but no epochs collected", seed)
					}
					got.Telemetry = nil
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d: telemetry changed the Result\n  with: %+v\n  without: %+v",
							seed, got.Summary, want.Summary)
					}
				})
			}
		}
	}
}

// TestTelemetrySeriesKernelIndependent pins the stronger claim: the epoch
// stream itself — counters, occupancy snapshots, energy — is identical
// whichever kernel produced it, because sampling happens at cycle barriers
// where all kernels agree on every counter telemetry reads.
func TestTelemetrySeriesKernelIndependent(t *testing.T) {
	for _, seed := range []uint64{1, 99} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			series := make([]*telemetry.Series, len(telemetryKernels))
			for i, k := range telemetryKernels {
				cfg := withTelemetry(kernelConfig(rocoBuilder, seed), 128)
				k.apply(&cfg)
				series[i] = New(cfg).Run().Telemetry
			}
			for i := 1; i < len(series); i++ {
				if !reflect.DeepEqual(series[i], series[0]) {
					t.Fatalf("seed %d: %s kernel produced a different telemetry series than %s",
						seed, telemetryKernels[i].name, telemetryKernels[0].name)
				}
			}
		})
	}
}

// TestTelemetryReconcilesWithLedger cross-checks the epoch totals against
// the flit-conservation ledger the auditor runs on: summed over all epochs
// (the final partial one included), generated/delivered/dropped flits must
// equal the network's own genFlits/delFlitsAll/dropFlitsAll counts, and
// the per-epoch deltas must sum to the same totals.
func TestTelemetryReconcilesWithLedger(t *testing.T) {
	cfg := withTelemetry(kernelConfig(rocoBuilder, 7), 100)
	n := New(cfg)
	res := n.Run()

	tot := n.tele.Totals()
	if tot.Generated != n.genFlits || tot.Delivered != n.delFlitsAll || tot.Dropped != n.dropFlitsAll {
		t.Fatalf("telemetry totals diverge from conservation ledger: gen %d/%d del %d/%d drop %d/%d",
			tot.Generated, n.genFlits, tot.Delivered, n.delFlitsAll, tot.Dropped, n.dropFlitsAll)
	}
	if tot.Cycles != n.cycle {
		t.Fatalf("telemetry covered %d cycles, run took %d", tot.Cycles, n.cycle)
	}

	var gen, del, drop, cycles int64
	for i := range res.Telemetry.Epochs {
		e := &res.Telemetry.Epochs[i]
		gen += e.Generated
		del += e.Delivered
		drop += e.Dropped
		cycles += e.Cycles
	}
	if gen != tot.Generated || del != tot.Delivered || drop != tot.Dropped || cycles != tot.Cycles {
		t.Fatalf("epoch sums diverge from totals: gen %d/%d del %d/%d drop %d/%d cycles %d/%d",
			gen, tot.Generated, del, tot.Delivered, drop, tot.Dropped, cycles, tot.Cycles)
	}
	if gen == 0 || del == 0 {
		t.Fatal("reconciliation is vacuous: no flits counted")
	}
}

// TestTelemetryStepAllocsUnderLoad repeats the steady-state allocation
// guard with epoch sampling armed: the collector's ring and scratch are
// preallocated, so Step must stay within the same (amortised) budget as a
// telemetry-off run.
func TestTelemetryStepAllocsUnderLoad(t *testing.T) {
	cfg := withTelemetry(kernelConfig(genericBuilder, 3), 64)
	cfg.MeasurePackets = 1_000_000 // never stop generating during the probe
	n := New(cfg)
	for i := 0; i < 2000; i++ { // warm pools, worklists, and the epoch ring
		n.Step()
	}
	allocs := testing.AllocsPerRun(500, func() { n.Step() })
	if allocs > 1 {
		t.Fatalf("loaded Step with telemetry allocates %v objects per cycle, want <= 1 amortised", allocs)
	}
}

// TestTelemetryStepZeroAllocsWhenIdle extends the idle clock-gating guard:
// even with an epoch closing every 8 cycles, an idle network's Step must
// not allocate.
func TestTelemetryStepZeroAllocsWhenIdle(t *testing.T) {
	cfg := withTelemetry(smokeConfig(routing.XY, traffic.Uniform, 0, 5), 8)
	cfg.Traffic.Rate = 0
	n := New(cfg)
	for i := 0; i < 64; i++ {
		n.Step()
	}
	allocs := testing.AllocsPerRun(200, func() { n.Step() })
	if allocs != 0 {
		t.Fatalf("idle Step with telemetry allocates %v objects per cycle, want 0", allocs)
	}
}
