// Parallel kernel support: the canonical color-phased tick schedule, the
// staged delivery/drop sinks replayed at color barriers, and the shard
// worker pool. See DESIGN.md "Parallel kernel" for the full argument; the
// short form:
//
// All intra-cycle cross-router interactions of a ticking router reach at
// most graph distance 2 — it mutates state at distance <= 1 (claims input
// VCs at its downstream neighbors, releases claims during recovery, writes
// its conn pipes' staging halves) and dynamically reads state at distance
// <= 1 (downstream claimability, congestion costs of the lookahead route).
// The only distance-2 reads are of fault state (CanServe), which changes
// exclusively in the sequential fault-installation phase and is therefore
// stable across a cycle's tick phases. Routers at graph distance >= 3 thus
// neither touch common mutable state nor observe each other's same-cycle
// effects, so they may tick in any order — or concurrently — with results
// identical to any sequential interleaving.
//
// The schedule makes that executable: a deterministic greedy coloring of
// the distance-<=2 conflict graph partitions the routers into color
// classes of pairwise distance >= 3, and every kernel (reference, gated
// sequential, gated sharded) ticks colors in ascending order with router
// ids ascending within a color. Delivery and drop sinks are the one piece
// of genuinely global state a tick touches (latency accumulators, delivery
// buckets, the broken-packet registry, the reliability tracker), so during
// tick phases they stage events into the emitting node's shard buffer and
// the coordinator replays them at each color barrier in shard-major order
// — which, because shards are contiguous id ranges, is exactly ascending
// id within the color. Shards=N is therefore bit-identical to Shards=1,
// and Workers only decides how many goroutines claim shards inside one
// color phase.
package network

import (
	"sync/atomic"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
)

// sinkEvent is one deferred delivery (drop=false) or drop (drop=true)
// emitted by a router tick while the sinks were staging.
type sinkEvent struct {
	f      *flit.Flit
	node   int32
	drop   bool
	reason trace.DropReason
	cycle  int64
}

// buildSchedule computes the canonical tick schedule for a topology: a
// greedy coloring (ascending id) of the distance-<=2 conflict graph,
// bucketed by color and then by shard, plus the node->shard map. Shards
// are contiguous id ranges of near-equal size, so within a color the
// shard-major traversal visits ids in ascending order.
func buildSchedule(topo topology.Topology, shards int) (sched [][][]int, shardOf []int) {
	nodes := topo.Nodes()
	colorOf := make([]int, nodes)
	mark := make([]int, nodes)
	for i := range mark {
		colorOf[i] = -1
		mark[i] = -1
	}
	var nbhd []int
	colors := 0
	for v := 0; v < nodes; v++ {
		// Conflict neighborhood: every node within graph distance 2
		// (deduplicated — torus wrap links can reach a node twice).
		nbhd = nbhd[:0]
		collect := func(u int) {
			if mark[u] != v {
				mark[u] = v
				nbhd = append(nbhd, u)
			}
		}
		for _, d := range topology.CardinalDirections {
			u, ok := topo.Neighbor(v, d)
			if !ok {
				continue
			}
			collect(u)
			for _, d2 := range topology.CardinalDirections {
				if w, ok := topo.Neighbor(u, d2); ok {
					collect(w)
				}
			}
		}
		// Smallest color unused in the neighborhood. Degree is at most 12
		// on a 2D torus, so the bitmask never overflows.
		used := 0
		for _, u := range nbhd {
			if c := colorOf[u]; c >= 0 {
				used |= 1 << c
			}
		}
		c := 0
		for used&(1<<c) != 0 {
			c++
		}
		colorOf[v] = c
		if c+1 > colors {
			colors = c + 1
		}
	}

	shardOf = make([]int, nodes)
	for v := range shardOf {
		shardOf[v] = v * shards / nodes
	}
	sched = make([][][]int, colors)
	for c := range sched {
		sched[c] = make([][]int, shards)
	}
	for v := 0; v < nodes; v++ {
		c, s := colorOf[v], shardOf[v]
		sched[c][s] = append(sched[c][s], v)
	}
	return sched, shardOf
}

// poolFor returns the shard-local flit pool for packets sourced at node id
// (nil in the reference kernel, which allocates fresh).
func (n *Network) poolFor(id int) *flit.Pool {
	if n.pools == nil {
		return nil
	}
	return n.pools[n.shardOf[id]]
}

// tickColors runs one cycle's router ticks through the canonical schedule:
// colors ascending, a barrier after each color, and the color's staged
// sink events replayed at the barrier. With more than one worker the
// shards of a color tick concurrently; the replay order (shard-major =
// ascending id within the color) never depends on the worker count.
func (n *Network) tickColors(t int64) {
	n.staging = true
	parallel := n.workers > 1
	if parallel && n.wp == nil {
		n.startWorkers()
	}
	for c := range n.sched {
		if parallel {
			n.runColorParallel(c, t)
		} else {
			for s := range n.sched[c] {
				n.tickShardColor(c, s, t)
			}
		}
		n.replayStaged()
	}
	n.staging = false
}

// tickShardColor ticks one shard's routers of one color, in ascending id
// order. In the gated kernel only active routers tick (settling their
// skipped cycles first) and the ticked ids are logged for the wake scan;
// the reference kernel ticks everything.
func (n *Network) tickShardColor(c, s int, t int64) {
	ids := n.sched[c][s]
	if n.cfg.ReferenceKernel {
		for _, id := range ids {
			n.routers[id].Tick(t)
		}
		return
	}
	if n.activeBits != nil {
		n.tickShardColorSoA(c, s, t)
		return
	}
	ticked := n.shardTicked[s]
	for _, id := range ids {
		if !n.active[id] {
			continue
		}
		n.settleTo(id, t-1)
		n.routers[id].Tick(t)
		n.lastRun[id] = t
		ticked = append(ticked, id)
	}
	n.shardTicked[s] = ticked
}

// replayStaged applies the staged delivery/drop events accumulated during
// the color phase that just finished, shard by shard. Event pointers are
// cleared as they are consumed so the retained buffers never pin flits
// past their recycling.
func (n *Network) replayStaged() {
	for s := range n.sinkBufs {
		buf := n.sinkBufs[s]
		for i := range buf {
			ev := buf[i]
			buf[i].f = nil
			if ev.drop {
				n.noteDrop(ev.f, ev.cycle, ev.reason)
			} else {
				n.deliver(int(ev.node), ev.f, ev.cycle)
			}
		}
		n.sinkBufs[s] = buf[:0]
	}
}

// workerPool executes color phases across persistent goroutines. The
// coordinator publishes (color, cycle), resets the shard cursor, and
// signals every helper; helpers and the coordinator then race to claim
// shard indexes off the atomic cursor until the color is exhausted. Each
// shard is claimed exactly once, and all state a shard tick touches (its
// routers, their conn halves, the shard's ticked list and sink buffer) is
// private to the claimant for the duration of the phase.
type workerPool struct {
	n      *Network
	starts []chan struct{}
	done   chan any
	next   atomic.Int64
	color  int
	cycle  int64
}

// startWorkers launches workers-1 helper goroutines (the coordinator is
// the remaining worker). Called lazily on the first parallel tick phase;
// collect stops the helpers.
func (n *Network) startWorkers() {
	wp := &workerPool{n: n, done: make(chan any, n.workers-1)}
	wp.starts = make([]chan struct{}, n.workers-1)
	for i := range wp.starts {
		start := make(chan struct{}, 1)
		wp.starts[i] = start
		go func() {
			for range start {
				wp.done <- wp.runPhase()
			}
		}()
	}
	n.wp = wp
}

// stopWorkers shuts the helper goroutines down (idempotent). The pool is
// restartable: the next parallel tick phase simply launches a fresh one.
func (n *Network) stopWorkers() {
	if n.wp == nil {
		return
	}
	for _, start := range n.wp.starts {
		close(start)
	}
	n.wp = nil
}

// runPhase claims and ticks shards of the current color until none remain,
// converting a panic (an auditor or router invariant tripping on a helper
// goroutine) into a value the coordinator re-raises.
func (wp *workerPool) runPhase() (panicked any) {
	defer func() { panicked = recover() }()
	shardsOfColor := wp.n.sched[wp.color]
	for {
		s := int(wp.next.Add(1)) - 1
		if s >= len(shardsOfColor) {
			return nil
		}
		wp.n.tickShardColor(wp.color, s, wp.cycle)
	}
}

// runColorParallel executes one color phase across the worker pool and
// blocks until every shard of the color has ticked.
func (n *Network) runColorParallel(color int, t int64) {
	wp := n.wp
	wp.color, wp.cycle = color, t
	wp.next.Store(0)
	for _, start := range wp.starts {
		start <- struct{}{}
	}
	own := wp.runPhase()
	var helper any
	for range wp.starts {
		if v := <-wp.done; v != nil && helper == nil {
			helper = v
		}
	}
	if own != nil {
		panic(own)
	}
	if helper != nil {
		panic(helper)
	}
}
