package network

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
)

// maxStuckReported caps the per-flit detail in a watchdog report; the
// totals still cover everything.
const maxStuckReported = 16

// WatchdogReport is the livelock/starvation diagnostic built when a run
// terminates through the inactivity rule: nothing was delivered for
// InactivityLimit cycles even though undelivered traffic remains. It
// complements DetectDeadlock (which needs a true wait-for cycle) by also
// catching wedges without one — a packet granted into a channel that a
// runtime fault killed, a starved source, a livelocked adaptive loop.
type WatchdogReport struct {
	// Cycle is when the watchdog fired; LastDelivery the most recent
	// delivery; InactiveFor their distance.
	Cycle, LastDelivery, InactiveFor int64
	// BacklogFlits and BufferedFlits locate the undelivered traffic:
	// still at the sources vs. inside the network.
	BacklogFlits, BufferedFlits int64
	// Stuck lists the oldest stalled buffered packets (up to
	// maxStuckReported, by stall age); TotalStuck counts all of them.
	Stuck      []router.StuckFlit
	TotalStuck int
	// Deadlock is the wait-for cycle if one exists (nil otherwise: the
	// network is wedged without a cyclic dependency).
	Deadlock *DeadlockReport
	// Faults lists the runtime faults installed before the wedge.
	Faults []fault.Event
}

// buildWatchdog assembles the diagnostic from the current network state.
func (n *Network) buildWatchdog() *WatchdogReport {
	last := n.lastDelivery
	if last < n.measureStart {
		last = n.measureStart
	}
	w := &WatchdogReport{
		Cycle:        n.cycle,
		LastDelivery: n.lastDelivery,
		InactiveFor:  n.cycle - last,
		BacklogFlits: n.backlogFlits,
		Faults:       append([]fault.Event(nil), n.faultLog...),
	}
	for _, r := range n.routers {
		w.BufferedFlits += int64(r.BufferedFlits())
		if src, ok := r.(router.StallSource); ok {
			w.Stuck = append(w.Stuck, src.StallScan(n.cycle)...)
		}
	}
	w.TotalStuck = len(w.Stuck)
	sort.Slice(w.Stuck, func(i, j int) bool { return w.Stuck[i].StallAge > w.Stuck[j].StallAge })
	if len(w.Stuck) > maxStuckReported {
		w.Stuck = w.Stuck[:maxStuckReported]
	}
	if rep, ok := n.DetectDeadlock(); ok {
		w.Deadlock = &rep
	}
	return w
}

// String renders the report as a multi-line diagnostic.
func (w *WatchdogReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "watchdog: no delivery for %d cycles (cycle %d, last delivery %d)\n",
		w.InactiveFor, w.Cycle, w.LastDelivery)
	fmt.Fprintf(&sb, "  undelivered: %d flits at sources, %d buffered in routers, %d stalled packets\n",
		w.BacklogFlits, w.BufferedFlits, w.TotalStuck)
	for _, f := range w.Faults {
		fmt.Fprintf(&sb, "  fault @%d: %v\n", f.Cycle, f.Fault)
	}
	if w.Deadlock != nil {
		fmt.Fprintf(&sb, "  %s\n", w.Deadlock.String())
	}
	for _, s := range w.Stuck {
		state := "wedged"
		if s.Doomed {
			state = "draining"
		}
		fmt.Fprintf(&sb, "  stuck pkt %d (%d->%d, %d hops) at n%d vc%d: stalled %d cycles, %s\n",
			s.PacketID, s.Src, s.Dst, s.Hops, s.Node, s.VC, s.StallAge, state)
	}
	return strings.TrimRight(sb.String(), "\n")
}
