package network

import (
	"fmt"
	"strings"

	"github.com/rocosim/roco/internal/router"
)

// WaitEdge re-exports the wait-for dependency type routers report
// (router.WaitEdge).
type WaitEdge = router.WaitEdge

// DeadlockReport describes a wait-for cycle found in a quiesced network.
type DeadlockReport struct {
	Cycle []WaitEdge
}

// String renders the cycle.
func (r DeadlockReport) String() string {
	if len(r.Cycle) == 0 {
		return "no deadlock"
	}
	var sb strings.Builder
	sb.WriteString("wait cycle:")
	for _, e := range r.Cycle {
		fmt.Fprintf(&sb, " (n%d,vc%d)->(n%d,vc%d)", e.FromNode, e.FromVC, e.ToNode, e.ToVC)
	}
	return sb.String()
}

// DetectDeadlock builds the wait-for graph across all routers that expose
// it and searches for a cycle. A packet waiting on several alternative
// channels (an adaptive VA request) blocks only if ALL alternatives are
// blocked, so edges to any free channel break the wait; the routers only
// report edges for currently unavailable targets.
//
// Returns ok=false when no cycle exists among the reported dependencies.
func (n *Network) DetectDeadlock() (DeadlockReport, bool) {
	type nodeKey struct{ node, vc int }
	adj := map[nodeKey][]WaitEdge{}
	for _, r := range n.routers {
		src, okSrc := r.(router.WaitGraphSource)
		if !okSrc {
			continue
		}
		for _, e := range src.WaitEdges() {
			if e.ToNode < 0 {
				continue
			}
			k := nodeKey{e.FromNode, e.FromVC}
			adj[k] = append(adj[k], e)
		}
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[nodeKey]int{}
	parentEdge := map[nodeKey]WaitEdge{}

	var cycle []WaitEdge
	var dfs func(k nodeKey) bool
	dfs = func(k nodeKey) bool {
		color[k] = gray
		for _, e := range adj[k] {
			next := nodeKey{e.ToNode, e.ToVC}
			switch color[next] {
			case white:
				parentEdge[next] = e
				if dfs(next) {
					return true
				}
			case gray:
				// Found a cycle: unwind from k back to next.
				cycle = []WaitEdge{e}
				for at := k; at != next; {
					pe := parentEdge[at]
					cycle = append([]WaitEdge{pe}, cycle...)
					at = nodeKey{pe.FromNode, pe.FromVC}
				}
				return true
			}
		}
		color[k] = black
		return false
	}
	for k := range adj {
		if color[k] == white && dfs(k) {
			return DeadlockReport{Cycle: cycle}, true
		}
	}
	return DeadlockReport{}, false
}
