package network

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// edgeConfig is a small, dense scenario for pipeline-timing edge cases: a
// 4x4 mesh at high load so the central routers always hold flits in every
// pipeline stage, with the conservation auditor on the tightest interval
// (any double-drop or lost flit panics the run).
func edgeConfig(seed uint64, events []fault.Event) Config {
	return Config{
		Topo:            topology.NewMesh(4, 4),
		Algorithm:       routing.XY,
		Build:           rocoBuilder,
		Traffic:         traffic.Config{Pattern: traffic.Uniform, Rate: 0.4, FlitsPerPacket: 4},
		WarmupPackets:   100,
		MeasurePackets:  1200,
		InactivityLimit: 1000,
		MaxCycles:       200_000,
		Seed:            seed,
		AuditEvery:      1,
		Schedule:        fault.NewSchedule(events),
	}
}

// TestFaultSweepHitsEveryPipelineStage installs a module-killing crossbar
// fault at every cycle offset across a window, so some run necessarily
// catches a head flit mid-switch-allocation (and others catch body flits
// in the pipe, tails at the crossbar, fresh arrivals, and empty routers).
// Every run must drain with the per-cycle conservation audit green, and
// its drop ledger must agree with the broken-packet accounting.
func TestFaultSweepHitsEveryPipelineStage(t *testing.T) {
	for offset := int64(0); offset < 24; offset++ {
		cycle := 100 + offset
		events := []fault.Event{{
			Cycle: cycle,
			Fault: fault.Fault{Node: 5, Component: fault.Crossbar, Module: fault.RowModule},
		}}
		res := New(edgeConfig(11, events)).Run()
		if res.Watchdog != nil {
			t.Fatalf("offset %d: run wedged:\n%s", offset, res.Watchdog)
		}
		if res.Saturated {
			t.Fatalf("offset %d: run hit MaxCycles", offset)
		}
		if got := res.Drops.Total(); got != res.DroppedFlits {
			t.Fatalf("offset %d: drop breakdown %+v does not sum to DroppedFlits %d",
				offset, res.Drops, res.DroppedFlits)
		}
		// A broken packet lost at least one flit and at most all of them;
		// outside those bounds the ledger double- or under-counted.
		if res.BrokenPackets > res.DroppedFlits {
			t.Fatalf("offset %d: %d broken packets but only %d dropped flits",
				offset, res.BrokenPackets, res.DroppedFlits)
		}
		if res.DroppedFlits > 4*res.BrokenPackets {
			t.Fatalf("offset %d: %d dropped flits exceed 4 flits per broken packet (%d broken)",
				offset, res.DroppedFlits, res.BrokenPackets)
		}
	}
}

// TestFaultStrikesSameModuleTwice lands a second crossbar fault on a
// module already dead. The second installation must be idempotent: no
// resident is condemned twice (the per-cycle audit panics on a double
// drop), the run still drains, and the second fault's attribution row
// shows it caused no new unroutable wave beyond ordinary traffic decay.
func TestFaultStrikesSameModuleTwice(t *testing.T) {
	strike := fault.Fault{Node: 5, Component: fault.Crossbar, Module: fault.RowModule}
	events := []fault.Event{
		{Cycle: 110, Fault: strike},
		{Cycle: 174, Fault: strike},
	}
	res := New(edgeConfig(3, events)).Run()
	if res.Watchdog != nil {
		t.Fatalf("run wedged after double strike:\n%s", res.Watchdog)
	}
	if len(res.FaultLog) != 2 {
		t.Fatalf("FaultLog has %d records, want 2", len(res.FaultLog))
	}
	if got := res.Drops.Total(); got != res.DroppedFlits {
		t.Fatalf("drop breakdown %+v does not sum to DroppedFlits %d", res.Drops, res.DroppedFlits)
	}

	// The single-strike run is the control: the redundant second fault must
	// not change what traffic is lost (same seed, same workload, and the
	// struck module was already dead).
	ctrl := New(edgeConfig(3, events[:1])).Run()
	if ctrl.Watchdog != nil {
		t.Fatalf("control run wedged:\n%s", ctrl.Watchdog)
	}
	if res.DroppedFlits != ctrl.DroppedFlits || res.BrokenPackets != ctrl.BrokenPackets {
		t.Fatalf("redundant second strike changed the ledger: dropped %d vs %d, broken %d vs %d",
			res.DroppedFlits, ctrl.DroppedFlits, res.BrokenPackets, ctrl.BrokenPackets)
	}
}

// TestFaultStrikesBothModules kills the row module and then the column
// module of the same router — the full-router-death path: residents of
// both modules drain, upstream neighbors stop routing into the dead node,
// and the inactivity rule must not be needed (the network still drains
// because drops are progress for the conservation ledger).
func TestFaultStrikesBothModules(t *testing.T) {
	events := []fault.Event{
		{Cycle: 110, Fault: fault.Fault{Node: 5, Component: fault.Crossbar, Module: fault.RowModule}},
		{Cycle: 150, Fault: fault.Fault{Node: 5, Component: fault.VA, Module: fault.ColumnModule}},
	}
	res := New(edgeConfig(7, events)).Run()
	if res.Saturated {
		t.Fatal("run hit MaxCycles")
	}
	if got := res.Drops.Total(); got != res.DroppedFlits {
		t.Fatalf("drop breakdown %+v does not sum to DroppedFlits %d", res.Drops, res.DroppedFlits)
	}
	if res.Drops.DeadDrain == 0 && res.Drops.InFlight == 0 {
		t.Fatal("killing both modules of a loaded router dropped nothing")
	}
	// With node 5 fully dead, sources keep drawing destinations behind it;
	// those packets must be classified unroutable at the source, not lost
	// silently.
	if res.Drops.Unroutable == 0 {
		t.Fatal("no unroutable-at-source drops despite a fully dead router")
	}
}
