package network

import (
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/traffic"
)

// TestSoAKernelMatchesReference is the correctness contract of the SoA
// kernel: for every router kind and seed, the struct-of-arrays run and
// the tick-everything reference run must produce bit-identical Results.
// Any divergence means the hot-state mirror drifted from the routers'
// own state (a missed syncHot path) or the bitset sweep ticked a
// different set or order than the canonical schedule.
func TestSoAKernelMatchesReference(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
		{"pdr", pdrBuilder},
	}
	for _, b := range builders {
		b := b
		for _, seed := range []uint64{1, 42, 99} {
			seed := seed
			t.Run(b.name, func(t *testing.T) {
				t.Parallel()
				ref := kernelConfig(b.build, seed)
				ref.ReferenceKernel = true
				soa := kernelConfig(b.build, seed)
				soa.SoAKernel = true

				want := New(ref).Run()
				got := New(soa).Run()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: SoA kernel diverged from reference\n soa: %+v\n ref: %+v",
						seed, got.Summary, want.Summary)
				}
			})
		}
	}
}

// TestSoAKernelMatchesReferenceAlgorithms covers the remaining routing
// disciplines (XY is exercised above): the adaptive cost scan and the
// XY-YX mode flip read neighbor state mid-tick, so they are the paths
// most likely to expose an order divergence in the bitset sweep.
func TestSoAKernelMatchesReferenceAlgorithms(t *testing.T) {
	for _, alg := range []routing.Algorithm{routing.XYYX, routing.Adaptive} {
		alg := alg
		for _, b := range []struct {
			name  string
			build func(int, *router.RouteEngine) router.Router
		}{
			{"generic", genericBuilder},
			{"roco", rocoBuilder},
		} {
			b := b
			t.Run(b.name+"/"+alg.String(), func(t *testing.T) {
				t.Parallel()
				ref := kernelConfig(b.build, 5)
				ref.Algorithm = alg
				ref.ReferenceKernel = true
				soa := kernelConfig(b.build, 5)
				soa.Algorithm = alg
				soa.SoAKernel = true

				want := New(ref).Run()
				got := New(soa).Run()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v: SoA kernel diverged from reference\n soa: %+v\n ref: %+v",
						alg, got.Summary, want.Summary)
				}
			})
		}
	}
}

// TestSoAKernelMatchesReferenceUnderFaults repeats the bit-identity check
// with a Poisson runtime-fault schedule striking mid-run: fault wakes,
// the broken-mask updates, condemned-channel drains, and recovery scans
// all happen while routers sleep and wake through the bitsets.
func TestSoAKernelMatchesReferenceUnderFaults(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
	}
	for _, b := range builders {
		b := b
		for _, seed := range []uint64{7, 1234} {
			seed := seed
			t.Run(b.name, func(t *testing.T) {
				t.Parallel()
				sched := fault.PoissonSchedule(fault.NonCritical, 120, 600, 64, core.NumVCs, stats.NewRNG(seed^0xfa17))

				ref := kernelConfig(b.build, seed)
				ref.Schedule = sched
				ref.ReferenceKernel = true
				soa := kernelConfig(b.build, seed)
				soa.Schedule = sched
				soa.SoAKernel = true

				want := New(ref).Run()
				got := New(soa).Run()
				if len(want.FaultLog) == 0 {
					t.Fatalf("seed %d: fault schedule installed no faults; test is vacuous", seed)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: SoA kernel diverged from reference under faults\n soa: %+v\n ref: %+v",
						seed, got.Summary, want.Summary)
				}
			})
		}
	}
}

// TestSoAKernelMatchesReferenceReliable closes the equivalence matrix:
// the retransmission protocol's wake path (wakeNext on launch) and the
// duplicate-suppressing delivery accounting under the SoA loop.
func TestSoAKernelMatchesReferenceReliable(t *testing.T) {
	const seed = 21
	sched := fault.PoissonSchedule(fault.NonCritical, 100, 500, 64, core.NumVCs, stats.NewRNG(seed^0xfa17))

	ref := kernelConfig(rocoBuilder, seed)
	ref.Schedule = sched
	ref.Reliable = true
	ref.ReferenceKernel = true
	soa := kernelConfig(rocoBuilder, seed)
	soa.Schedule = sched
	soa.Reliable = true
	soa.SoAKernel = true

	want := New(ref).Run()
	got := New(soa).Run()
	if len(want.FaultLog) == 0 {
		t.Fatal("fault schedule installed no faults; test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SoA kernel diverged from reference under the reliability protocol\n soa: %+v\n ref: %+v",
			got.Summary, want.Summary)
	}
}

// TestSoAKernelSharded pins that the SoA bitset sweep composes with the
// parallel color-phased schedule: Shards=4/Workers=2 must match the
// sequential SoA run (and, transitively, the reference kernel).
func TestSoAKernelSharded(t *testing.T) {
	const seed = 11
	seq := kernelConfig(rocoBuilder, seed)
	seq.SoAKernel = true
	par := kernelConfig(rocoBuilder, seed)
	par.SoAKernel = true
	par.Shards = 4
	par.Workers = 2

	want := New(seq).Run()
	got := New(par).Run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded SoA kernel diverged from sequential SoA\n sharded: %+v\n     seq: %+v",
			got.Summary, want.Summary)
	}
}

// TestSoAHotStateMirrorsRouters is the transition-invariant probe behind
// the bitset design: at every cycle boundary of a faulty mid-load run,
// the packed hot state must agree with the routers' own virtual answers
// — RouterBusy(id) == !Idle(id) (dormant→active on injection or fault
// strike, active→dormant on drain, with no missed edge in either
// direction) and BufferedFlits from the occupancy array equal to the
// router's channel sweep. The broken mask must cover exactly the nodes
// the fault log has struck.
func TestSoAHotStateMirrorsRouters(t *testing.T) {
	cfg := kernelConfig(rocoBuilder, 13)
	cfg.SoAKernel = true
	cfg.Schedule = fault.NewSchedule([]fault.Event{
		{Cycle: 120, Fault: fault.Fault{Node: 27, Component: fault.Crossbar, Module: fault.RowModule}},
		{Cycle: 240, Fault: fault.Fault{Node: 36, Component: fault.Buffer, Module: fault.ColumnModule, VC: 1}},
	})
	n := New(cfg)
	hs := n.HotState()
	if hs == nil {
		t.Fatal("SoA network has no hot state")
	}
	nodes := cfg.Topo.Nodes()
	sawBusy, sawDrained := false, false
	faulted := map[int]bool{}
	for step := 0; step < 600; step++ {
		n.Step()
		for id := 0; id < nodes; id++ {
			busy := hs.RouterBusy(id)
			if idle := n.Router(id).Idle(); busy == idle {
				t.Fatalf("cycle %d: hot state says router %d busy=%v but Idle()=%v", n.Cycle(), id, busy, idle)
			}
			if got, want := hs.BufferedFlits(id), n.Router(id).BufferedFlits(); got != want {
				t.Fatalf("cycle %d: hot occupancy of router %d is %d, router says %d", n.Cycle(), id, got, want)
			}
			if busy {
				sawBusy = true
			} else if sawBusy {
				sawDrained = true
			}
		}
		if n.Cycle() > 120 {
			faulted[27] = true
		}
		if n.Cycle() > 240 {
			faulted[36] = true
		}
		for id := 0; id < nodes; id++ {
			if got, want := n.BrokenMask().Test(id), faulted[id]; got != want {
				t.Fatalf("cycle %d: broken mask of router %d is %v, want %v", n.Cycle(), id, got, want)
			}
		}
	}
	if !sawBusy || !sawDrained {
		t.Fatalf("probe saw no dormant→active→dormant transition (busy=%v drained=%v); workload too idle", sawBusy, sawDrained)
	}
	if n.BrokenMask().Count() != 2 {
		t.Fatalf("broken mask holds %d routers after 2 faults", n.BrokenMask().Count())
	}
}

// TestSoAStepZeroAllocsWhenIdle pins the SoA kernel's idle cost: bitset
// sweeps over an empty active set must not touch the heap.
func TestSoAStepZeroAllocsWhenIdle(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0, 5)
	cfg.Traffic.Rate = 0
	cfg.SoAKernel = true
	n := New(cfg)
	for i := 0; i < 8; i++ {
		n.Step()
	}
	allocs := testing.AllocsPerRun(200, func() { n.Step() })
	if allocs != 0 {
		t.Fatalf("idle SoA Step allocates %v objects per cycle, want 0", allocs)
	}
}

// TestSoAStepZeroAllocsUnderLoad asserts the loaded steady state of the
// SoA kernel is allocation-free: lazy channel buffers were all faulted
// in during warm-up (each allocates exactly once, at full capacity),
// flits recycle through the pools, and the hot-state updates are pure
// array writes. Rare amortized slice regrowth (delivery buckets) stays
// well under one object per cycle and truncates to zero.
func TestSoAStepZeroAllocsUnderLoad(t *testing.T) {
	cfg := kernelConfig(genericBuilder, 3)
	cfg.SoAKernel = true
	cfg.MeasurePackets = 1_000_000 // never stop generating during the probe
	n := New(cfg)
	for i := 0; i < 2000; i++ { // warm pools, worklists, and lazy VC buffers
		n.Step()
	}
	allocs := testing.AllocsPerRun(500, func() { n.Step() })
	if allocs != 0 {
		t.Fatalf("loaded SoA Step allocates %v objects per cycle, want 0", allocs)
	}
}
