// Package network assembles routers into a complete on-chip network and
// drives the cycle-accurate simulation: it wires the 1-cycle link and
// credit pipes, runs the per-node processing elements (packet generation,
// source queuing, injection, and delivery accounting), installs permanent
// faults, and decides termination — drain completion for healthy runs, the
// paper's inactivity rule for faulty ones.
package network

import (
	"fmt"
	"math"
	"runtime"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/metrics"
	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/protocol"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/telemetry"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
	"github.com/rocosim/roco/internal/traffic"
)

// Config parameterizes one simulation run.
type Config struct {
	// Topo is the network topology (the paper's evaluation uses an 8x8
	// mesh).
	Topo topology.Topology
	// Algorithm is the routing discipline.
	Algorithm routing.Algorithm
	// Build constructs the router for one node; the caller selects the
	// microarchitecture (generic, path-sensitive, RoCo) here.
	Build func(id int, engine *router.RouteEngine) router.Router
	// Traffic describes the workload. Its FlitsPerPacket is authoritative.
	Traffic traffic.Config
	// WarmupPackets are generated and routed before measurement starts;
	// MeasurePackets are the measured population (paper: 20k + 1M; the
	// default harness scales these down — see DESIGN.md).
	WarmupPackets, MeasurePackets int64
	// Faults are installed before the first cycle.
	Faults []fault.Fault
	// Schedule holds runtime fault events, installed at the start of their
	// cycle's Step. Unlike Faults, scheduled faults strike a live network:
	// the afflicted router dooms resident traffic and the network
	// re-propagates the neighbor handshake so upstream routers reroute.
	Schedule fault.Schedule
	// AuditEvery runs the flit-conservation auditor every AuditEvery cycles
	// (0 audits only at termination). The auditor asserts that every
	// generated flit is delivered, dropped, backlogged, buffered, or on a
	// link — a violated invariant panics with the full breakdown.
	AuditEvery int64
	// MaxCycles hard-caps the run (saturation guard). Zero selects a
	// generous default.
	MaxCycles int64
	// InactivityLimit terminates a run when no packet has been delivered
	// for this many cycles after generation finished — the paper's rule
	// for faulty networks ("twice the fault-free completion time" is the
	// spirit; a fixed window is its practical form). Zero selects a
	// default.
	InactivityLimit int64
	// Seed drives all randomness in the run.
	Seed uint64
	// TraceEvery samples packet journeys: every TraceEvery-th generated
	// packet gets a trace record (0 disables tracing).
	TraceEvery uint64
	// ReferenceKernel selects the ungated cycle loop: every router ticked
	// and every pipe advanced every cycle, flits freshly allocated. It is
	// the determinism oracle and benchmark baseline for the activity-gated
	// kernel (the default); results are bit-identical either way.
	ReferenceKernel bool
	// SoAKernel selects the struct-of-arrays variant of the activity-gated
	// loop: per-channel hot state (occupancy, path-set class, dormancy) is
	// mirrored into packed parallel arrays indexed by a dense (router,
	// port, vc) slot, the active/dormant and broken sets become uint64
	// bitsets, channels are slab-allocated with lazy buffer backing, and
	// the per-color tick scan walks words of activeBits∧colorMask instead
	// of testing a bool per router. Results are bit-identical to the
	// reference and gated kernels for every router kind, algorithm, fault
	// schedule, and Reliable mode; snapshots remain kernel-canonical.
	// Ignored when ReferenceKernel is set. See DESIGN.md "SoA kernel".
	SoAKernel bool
	// Shards partitions the mesh into spatially contiguous shards (by
	// ascending node id) that tick in parallel inside each color phase of
	// the canonical schedule (see DESIGN.md "Parallel kernel"). The shard
	// count fixes the deterministic replay order of delivery/drop events
	// and the flit-pool partition, but results are bit-identical for every
	// value: Shards=N matches Shards=1 and the reference kernel exactly.
	// 0 or 1 selects the sequential path; the reference kernel always runs
	// single-sharded.
	Shards int
	// Workers caps the goroutines executing shard ticks (0 = one per
	// shard up to GOMAXPROCS, 1 = tick shards inline on the coordinator).
	// Pure execution concurrency: results never depend on Workers.
	Workers int
	// TelemetryEvery samples the telemetry collector every TelemetryEvery
	// cycles (0 disables it). Sampling happens on the coordinator at
	// cycle boundaries, after every kernel barrier, and reads only
	// counters that are bit-identical across kernels — enabling it never
	// changes a run's Result, and disabling it costs one comparison per
	// cycle.
	TelemetryEvery int64
	// TelemetryCapacity bounds the telemetry epoch ring (0 selects the
	// package default); the oldest epochs are evicted first, with their
	// contribution preserved in the cumulative totals.
	TelemetryCapacity int
	// TelemetryProfile prices the telemetry energy series. The zero
	// profile yields all-zero energy series (the network deliberately
	// does not know router technology parameters; the public layer
	// threads the router-kind profile through here).
	TelemetryProfile power.Profile
	// D2DLatency and D2DGap shape the die-to-die boundary links of a
	// chiplet topology (one implementing topology.Classed): every D2D link
	// becomes a multi-cycle pipe with D2DLatency cycles of transit and at
	// most one flit accepted per D2DGap cycles (the serializer of a narrow
	// off-chip lane). Values below 1 are treated as 1; 1/1 leaves the link
	// a plain one-cycle latch. Ignored on single-die topologies.
	D2DLatency, D2DGap int
	// Reliable enables the end-to-end delivery protocol: sources track
	// every logical packet, retransmit copies whose flits a fault
	// destroyed (with exponential backoff and fault-region rerouting),
	// suppress duplicates at the ejection port, and give up only when the
	// reachability oracle proves the destination cut off or the retry cap
	// is hit. See internal/protocol and DESIGN.md "Delivery guarantees".
	Reliable bool
	// Protocol tunes the retransmission policy (zero values select
	// defaults; MaxTimeout is additionally clamped to InactivityLimit/2
	// so a backed-off timer can never outlive the liveness window).
	Protocol protocol.Params
}

// Result carries everything a run measured.
type Result struct {
	Summary    metrics.Summary
	Latency    *metrics.Latency
	Completion metrics.Completion
	// Activity is the sum over all routers, measured from the end of
	// warm-up; Contention likewise. PerRouter keeps the per-node split
	// (indexed by node ID) for utilization heatmaps.
	Activity   router.Activity
	PerRouter  []router.Activity
	Contention router.Contention
	// MeasuredCycles is the span from the end of warm-up to termination.
	MeasuredCycles int64
	// TotalCycles is the full run length.
	TotalCycles int64
	// DeliveredFlits counts measured-window flit deliveries.
	DeliveredFlits int64
	// Saturated reports that the run hit MaxCycles before draining.
	Saturated bool
	// DroppedFlits counts every flit discarded anywhere (fault recovery,
	// dead-node drains, source drops of unroutable packets); Drops splits
	// the count by cause.
	DroppedFlits int64
	Drops        DropBreakdown
	// BrokenPackets counts packets that lost at least one flit.
	BrokenPackets int64
	// D2DLinkFlits counts measured-window flit traversals of die-to-die
	// boundary links (zero on single-die topologies); the power layer
	// prices these at the off-chip per-flit energy instead of the on-die
	// link energy.
	D2DLinkFlits int64
	// FaultLog lists the runtime faults installed, each with the
	// degradation measured around it (paper Figure 13 style).
	FaultLog []FaultRecord
	// Telemetry is the epoch time-series snapshot (nil unless
	// Config.TelemetryEvery was set). The final partial epoch is flushed
	// at collection time. Deliberately excluded from the bit-identity
	// contract between telemetry-on and telemetry-off runs; every other
	// field is covered by it.
	Telemetry *telemetry.Series
	// Watchdog is the livelock/starvation diagnostic, non-nil only when
	// the run terminated through the inactivity rule.
	Watchdog *WatchdogReport

	// Reliability protocol outcomes (Config.Reliable runs only; all zero
	// otherwise). Retransmissions counts extra copies launched;
	// RecoveredPackets the logical packets whose accepted delivery was a
	// retransmitted copy; DuplicatePackets/DuplicateFlits the traffic the
	// ejection port suppressed; GiveUps the packets terminally abandoned;
	// ResidualLoss the logical packets never delivered (give-ups plus any
	// still pending when the run was cut off).
	Retransmissions  int64
	RecoveredPackets int64
	DuplicatePackets int64
	DuplicateFlits   int64
	GiveUps          []protocol.GiveUp
	ResidualLoss     int64
}

// DropBreakdown splits a flit-drop count by cause.
type DropBreakdown struct {
	// Unroutable: discarded at the source PE because faults deny the
	// packet's first hop or local ejection.
	Unroutable int64
	// InFlight: broken inside the network by a live fault (condemned
	// buffers, doomed wormholes, collateral backlog of a broken packet).
	InFlight int64
	// DeadDrain: drained by a router that died whole.
	DeadDrain int64
}

// note tallies one drop under its reason.
func (d *DropBreakdown) note(r trace.DropReason) {
	switch r {
	case trace.DropUnroutable:
		d.Unroutable++
	case trace.DropInFlight:
		d.InFlight++
	case trace.DropDeadNode:
		d.DeadDrain++
	}
}

// Total sums the three causes.
func (d DropBreakdown) Total() int64 { return d.Unroutable + d.InFlight + d.DeadDrain }

// FaultRecord pairs one installed runtime fault with the throughput
// degradation measured around it and the drops attributed to it (every
// drop between this fault's installation and the next one's).
type FaultRecord struct {
	Event       fault.Event
	Degradation metrics.Degradation
	Drops       DropBreakdown
}

// bucketCycles is the width of the delivery-rate buckets behind the
// degradation metrics.
const bucketCycles = 32

// link records one directed wiring edge so a runtime fault at the
// downstream node can re-propagate its input-VC depths upstream.
type link struct {
	up   int
	out  topology.Direction
	down int
}

// pe is the processing element attached to one router: an infinite source
// queue of segmented packets plus delivery bookkeeping.
type pe struct {
	id  int
	gen traffic.Generator
	// mode is this PE's private RNG stream for injection-mode coin flips
	// (XY-vs-YX under O1TURN, adaptive seeding). Splitting one stream per
	// PE from the user seed keeps generation deterministic regardless of
	// how the mesh is sharded.
	mode *stats.RNG
	// backlog[head:] holds the flits awaiting injection, across packets in
	// order. Consuming by index instead of re-slicing keeps the front
	// capacity alive, so once drained the array is reset and reused —
	// steady-state generation appends without reallocating.
	backlog []*flit.Flit
	head    int
}

// consumeFront retires the backlog's front flit, recycling the array once
// every queued flit has been consumed.
func (p *pe) consumeFront() {
	p.head++
	if p.head == len(p.backlog) {
		p.backlog = p.backlog[:0]
		p.head = 0
	}
}

// Network is a fully wired simulation instance.
type Network struct {
	cfg     Config
	topo    topology.Topology
	engine  *router.RouteEngine
	routers []router.Router
	pes     []*pe
	conns   []*router.Conn
	gens    []traffic.Generator
	rng     *stats.RNG

	nextPacketID uint64
	generated    int64 // all packets created
	deliveredAll int64 // all packets delivered (tails)
	cycle        int64

	// Flit-conservation ledger: every generated flit is in exactly one of
	// backlog, a router buffer, a link pipe, delivered, or dropped.
	genFlits     int64
	delFlitsAll  int64
	dropFlitsAll int64
	backlogFlits int64

	schedule fault.Schedule
	faultLog []fault.Event
	links    []link
	broken   *router.BrokenSet
	buckets  []int64 // delivered flits per bucketCycles-wide bucket
	watchdog *WatchdogReport

	// Drop attribution: global by-reason tallies plus a per-runtime-fault
	// breakdown (faultDrops parallels faultLog; drops land in the most
	// recently installed fault's row).
	drops      DropBreakdown
	faultDrops []DropBreakdown

	// Reliability protocol state (Config.Reliable only; nil otherwise).
	// goodBuckets parallels buckets but counts only non-duplicate
	// deliveries — the goodput series behind degradation reporting.
	rel         *protocol.Tracker
	oracle      *protocol.Oracle
	goodBuckets []int64
	dupFlits    int64
	dupPackets  int64
	// lastProgress is the inactivity-rule clock: the last cycle the run
	// made observable forward progress (a tail delivered, a retransmission
	// launched, a packet given up). Without the protocol it equals
	// lastDelivery, preserving the pre-protocol termination rule bit for
	// bit.
	lastProgress int64

	tracer *trace.Collector

	measuring      bool
	measureStart   int64
	latency        *metrics.Latency
	srcQueue       stats.Running
	completion     metrics.Completion
	deliveredFlits int64
	lastDelivery   int64

	// nextAudit is the first cycle the conservation auditor runs at again
	// (MaxInt64 when disabled), replacing a per-cycle modulo check.
	nextAudit int64

	// nextTelemetry is the first cycle the telemetry collector samples
	// at again (MaxInt64 when disabled), same pattern as nextAudit.
	nextTelemetry int64
	tele          *telemetry.Collector

	// Activity-gated kernel state (see DESIGN.md "Simulation kernel").
	// Unused in ReferenceKernel mode; pools stays nil there so flits are
	// freshly allocated exactly as the pre-gating kernel did.
	pools       []*flit.Pool // per-shard flit free lists
	graveyard   []*flit.Flit // flits that died this cycle, recycled at end of Step
	active      []bool       // routers ticking this cycle
	nextActive  []bool       // wakes accumulated for next cycle
	lastRun     []int64      // last cycle each router ticked; -1 = never
	shardTicked [][]int      // scratch: routers ticked this Step, per shard
	adjConns    [][]int      // conn indexes touching each node (gated bool kernel)
	advance     []int        // scratch: conns with staged traffic this Step
	connMark    []int64      // last cycle each conn was marked for advance

	// Multi-cycle die-to-die link state (chiplet topologies with
	// D2DLatency/D2DGap > 1; nil otherwise). A long conn cannot use the
	// one-shot advance above — its in-transit flits need an Advance every
	// cycle until delivery — so staged traffic moves it onto longActive,
	// where it advances each cycle (waking the reader the cycle traffic
	// lands) until quiescent. Shared by both gated kernels; the reference
	// kernel advances every conn anyway.
	isLong     []bool
	longOn     []bool
	longActive []int

	// SoA kernel state (Config.SoAKernel; see soa.go and DESIGN.md "SoA
	// kernel"). The bool-array fields above (active, nextActive, adjConns)
	// stay nil in this mode; everything else gated is shared. hot is the
	// struct-of-arrays mirror of every channel's occupancy and dormancy;
	// activeBits/nextActiveBits replace the bool active sets; brokenBits
	// marks routers with at least one installed fault; colorMask and
	// shardLo turn the canonical schedule into word-wise bitset sweeps;
	// adjOff/adjList is the CSR form of adjConns.
	hot            *router.HotState
	activeBits     router.Bitset
	nextActiveBits router.Bitset
	brokenBits     router.Bitset
	colorMask      []router.Bitset
	shardLo        []int
	adjOff         []int32
	adjList        []int32

	// Canonical tick schedule and sharding state (see DESIGN.md "Parallel
	// kernel"). Both kernels tick through sched — colors ascending, router
	// ids ascending within a color — and both stage delivery/drop events
	// during the tick phases, replaying them at each color barrier in
	// shard-major (= ascending id) order, so sequential, sharded, and
	// reference executions are bit-identical.
	shards   int
	workers  int
	sched    [][][]int // [color][shard] -> router ids, ascending
	shardOf  []int     // node id -> shard
	sinkBufs [][]sinkEvent
	staging  bool // tick phases in progress: sinks buffer instead of applying
	wp       *workerPool
}

// New wires a network per cfg.
func New(cfg Config) *Network {
	if cfg.Topo == nil {
		panic("network: nil topology")
	}
	if cfg.Build == nil {
		panic("network: nil router builder")
	}
	if cfg.Traffic.FlitsPerPacket < 1 {
		panic("network: FlitsPerPacket must be >= 1")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000
	}
	if cfg.InactivityLimit == 0 {
		cfg.InactivityLimit = 8192
	}
	if cfg.ReferenceKernel {
		// The reference kernel is the ungated oracle; a simultaneous SoA
		// request is normalized away (mirroring how it forces Shards=1).
		cfg.SoAKernel = false
	}

	n := &Network{
		cfg:      cfg,
		topo:     cfg.Topo,
		latency:  metrics.NewLatency(),
		rng:      stats.NewRNG(cfg.Seed),
		tracer:   &trace.Collector{},
		schedule: cfg.Schedule,
		broken:   router.NewBrokenSet(),
	}
	if cfg.Reliable {
		params := cfg.Protocol.Normalized()
		// A backed-off timer sleeping longer than the inactivity window
		// would let the liveness rule kill a run the protocol was still
		// going to repair; cap the backoff at half the window so every
		// pending packet is re-examined well inside it.
		if lim := cfg.InactivityLimit / 2; params.MaxTimeout > lim {
			params.MaxTimeout = lim
		}
		if params.Timeout > params.MaxTimeout {
			params.Timeout = params.MaxTimeout
		}
		n.rel = protocol.NewTracker(cfg.Topo.Nodes(), params)
	}
	nodes := cfg.Topo.Nodes()
	n.routers = make([]router.Router, nodes)
	n.engine = router.NewRouteEngine(cfg.Topo, cfg.Algorithm, func(id int) router.Router { return n.routers[id] })
	if cfg.SoAKernel {
		// Must precede the builders: every router allocates its channels
		// through the engine, and the arena makes them slab-resident with
		// lazy buffer backing (the memory diet).
		n.engine.EnableVCArena()
	}
	if n.rel != nil {
		n.oracle = protocol.NewOracle(n.engine)
	}
	for id := 0; id < nodes; id++ {
		n.routers[id] = cfg.Build(id, n.engine)
	}

	// Install faults before wiring so credit books see degraded depths.
	for _, flt := range cfg.Faults {
		n.validateFault(flt, nodes)
		// Arm the recovery scans network-wide (routers also self-arm in
		// ApplyFault; this covers install orderings where the faulted
		// router has not been handed the registry yet).
		n.broken.MarkFaulty()
		if flt.Component == fault.D2DIf {
			// Pre-wiring sever: SeverPort only marks port masks (nothing is
			// resident yet), and the wiring loop below reads the degraded
			// depths through InputVCDepth like any other static fault.
			n.severInterface(flt)
			continue
		}
		n.routers[flt.Node].ApplyFault(flt)
	}
	for _, ev := range cfg.Schedule.Events() {
		n.validateFault(ev.Fault, nodes)
	}

	// Wire every directed link with a Conn; size credit books from the
	// downstream router's (possibly fault-degraded) VC depths.
	for id := 0; id < nodes; id++ {
		for _, d := range topology.CardinalDirections {
			nb, ok := cfg.Topo.Neighbor(id, d)
			if !ok {
				continue
			}
			conn := &router.Conn{}
			n.conns = append(n.conns, conn)
			from := d.Opposite()
			down := n.routers[nb]
			depths := make([]int, down.NumInputVCs(from))
			for vc := range depths {
				depths[vc] = down.InputVCDepth(from, vc)
			}
			n.routers[id].AttachOutput(d, conn, depths)
			n.routers[id].SetNeighbor(d, down)
			down.AttachInput(from, conn)
			n.links = append(n.links, link{up: id, out: d, down: nb})
		}
		id := id
		// During the tick phases of a cycle the sinks stage their events
		// into the emitting node's shard buffer; the coordinator replays
		// them in canonical order at each color barrier. Outside the tick
		// phases (injection loopback, fault installation, source drops)
		// they apply directly.
		n.routers[id].SetSink(func(f *flit.Flit, cycle int64) {
			if n.staging {
				s := n.shardOf[id]
				n.sinkBufs[s] = append(n.sinkBufs[s], sinkEvent{f: f, node: int32(id), cycle: cycle})
				return
			}
			n.deliver(id, f, cycle)
		})
		n.routers[id].SetDropSink(func(f *flit.Flit, cycle int64, reason trace.DropReason) {
			if n.staging {
				s := n.shardOf[id]
				n.sinkBufs[s] = append(n.sinkBufs[s], sinkEvent{f: f, node: int32(id), drop: true, reason: reason, cycle: cycle})
				return
			}
			n.noteDrop(f, cycle, reason)
		})
		n.routers[id].SetBroken(n.broken)
	}

	// Die-to-die boundary links of a chiplet topology become multi-cycle
	// pipes; the long-conn advance lists exist only when at least one link
	// actually carries transit state.
	if cl, ok := cfg.Topo.(topology.Classed); ok && (cfg.D2DLatency > 1 || cfg.D2DGap > 1) {
		lat, gap := cfg.D2DLatency, cfg.D2DGap
		if lat < 1 {
			lat = 1
		}
		if gap < 1 {
			gap = 1
		}
		long := false
		n.isLong = make([]bool, len(n.conns))
		for i, l := range n.links {
			if cl.LinkClass(l.up, l.out) == topology.D2D {
				n.conns[i].SetD2D(lat, gap)
				n.isLong[i] = n.conns[i].Long()
				long = long || n.isLong[i]
			}
		}
		if long {
			n.longOn = make([]bool, len(n.conns))
			// A serialized boundary link stretches the straggler horizon of
			// every router a wormhole can span: flits of a broken packet
			// trickle in spaced up to max(latency, gap) cycles apart, at the
			// crossing and at every hop downstream of it. Orphan reaping
			// must outwait that spacing or a straggler lands in a retired
			// (possibly reclaimed) channel.
			delay := int64(lat)
			if int64(gap) > delay {
				delay = int64(gap)
			}
			for _, r := range n.routers {
				r.SetReapHorizon(delay)
			}
		} else {
			n.isLong = nil
		}
	}

	// Shard partition and canonical color schedule. The reference kernel
	// always runs single-sharded (it is the sequential oracle); workers
	// never exceed shards, and the default is one worker per shard up to
	// the machine's parallelism.
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	if cfg.ReferenceKernel {
		shards = 1
	}
	n.shards = shards
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	n.workers = workers
	n.sched, n.shardOf = buildSchedule(cfg.Topo, shards)
	n.sinkBufs = make([][]sinkEvent, shards)

	// Traffic generators, one independent stream per node.
	n.gens = traffic.New(cfg.Traffic, cfg.Topo, n.rng.Split(0x726166666963)) // "raffic"
	modeBase := n.rng.Split(0x6d6f6465)                                      // "mode"
	n.pes = make([]*pe, nodes)
	for id := range n.pes {
		n.pes[id] = &pe{id: id, gen: n.gens[id], mode: modeBase.Split(uint64(id))}
	}

	n.nextAudit = math.MaxInt64
	if cfg.AuditEvery > 0 {
		n.nextAudit = cfg.AuditEvery
	}
	n.nextTelemetry = math.MaxInt64
	if cfg.TelemetryEvery > 0 {
		links := make([]int, nodes)
		for id := range links {
			for _, d := range topology.CardinalDirections {
				if _, ok := cfg.Topo.Neighbor(id, d); ok {
					links[id]++
				}
			}
		}
		n.tele = telemetry.New(telemetry.Config{
			Every:    cfg.TelemetryEvery,
			Capacity: cfg.TelemetryCapacity,
			Nodes:    nodes,
			Links:    links,
			Profile:  cfg.TelemetryProfile,
		})
		n.nextTelemetry = cfg.TelemetryEvery
	}
	if cfg.ReferenceKernel {
		// Tick everything, fully: the reference baseline also forgoes the
		// routers' dormant early return, so it executes (and benchmarks)
		// the pre-gating tick-everything cost.
		for _, r := range n.routers {
			r.DisableTickFastPath()
		}
	} else {
		n.pools = make([]*flit.Pool, shards)
		for i := range n.pools {
			n.pools[i] = &flit.Pool{}
		}
		n.shardTicked = make([][]int, shards)
		n.lastRun = make([]int64, nodes)
		for id := range n.lastRun {
			n.lastRun[id] = -1
		}
		n.connMark = make([]int64, len(n.conns))
		for i := range n.connMark {
			n.connMark[i] = -1
		}
		if cfg.SoAKernel {
			n.initSoA(nodes)
		} else {
			n.active = make([]bool, nodes)
			n.nextActive = make([]bool, nodes)
			n.adjConns = make([][]int, nodes)
			for i, l := range n.links {
				n.adjConns[l.up] = append(n.adjConns[l.up], i)
				n.adjConns[l.down] = append(n.adjConns[l.down], i)
			}
		}
	}
	return n
}

// Engine exposes the route engine (tests use it).
func (n *Network) Engine() *router.RouteEngine { return n.engine }

// Router exposes one router (tests use it).
func (n *Network) Router(id int) router.Router { return n.routers[id] }

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// Deliverable reports the reliability oracle's current answer for a fresh
// copy from src to dst (tests use it to check give-up soundness). Panics
// unless Config.Reliable is set.
func (n *Network) Deliverable(src, dst int) bool {
	ok, _ := n.oracle.Deliverable(src, dst)
	return ok
}

// deliver is the sink shared by all routers.
func (n *Network) deliver(node int, f *flit.Flit, cycle int64) {
	if f.Dst != node {
		panic(fmt.Sprintf("network: flit %v delivered to wrong node %d", f, node))
	}
	// The flit is dead once accounting completes, but callers (loopback
	// injection, the PE latch) may still read it this cycle — recycle at
	// the end of Step, not here.
	if n.pools != nil {
		n.graveyard = append(n.graveyard, f)
	}
	// Measurement windows follow the logical packet: Origin is the first
	// attempt's ID, so a retransmitted copy of a measured packet stays
	// measured (and equals PacketID whenever the protocol is off).
	measured := f.Origin >= uint64(n.cfg.WarmupPackets)
	n.delFlitsAll++
	b := cycle / bucketCycles
	for int64(len(n.buckets)) <= b {
		n.buckets = append(n.buckets, 0)
	}
	n.buckets[b]++
	dup := false
	if n.rel != nil {
		// Duplicate suppression at the ejection port: flits of a logical
		// packet already delivered or abandoned count as raw throughput
		// but not goodput, and never complete a packet twice.
		dup = n.rel.Resolved(f.Src, f.SrcSeq)
		for int64(len(n.goodBuckets)) <= b {
			n.goodBuckets = append(n.goodBuckets, 0)
		}
		if dup {
			n.dupFlits++
		} else {
			n.goodBuckets[b]++
		}
	}
	if measured {
		n.deliveredFlits++
	}
	if f.Rec != nil && f.Type.IsHead() {
		f.Rec.Visit(node, cycle, trace.Delivered)
	}
	if !f.Type.IsTail() {
		return
	}
	n.deliveredAll++
	n.lastDelivery = cycle
	n.lastProgress = cycle
	if n.broken.Contains(f.PacketID) {
		panic(fmt.Sprintf("network: broken packet %d delivered its tail", f.PacketID))
	}
	if n.rel != nil {
		accepted, _ := n.rel.Ack(f.Src, f.SrcSeq, cycle)
		if !accepted {
			// Structurally this cannot happen — retransmission launches
			// only after the previous copy broke, and broken copies never
			// deliver tails — but the ACK layer stays the authority.
			n.dupPackets++
			return
		}
	}
	if measured {
		n.completion.Delivered++
		n.latency.Record(cycle - f.CreatedAt)
		n.srcQueue.Add(float64(f.InjectedAt - f.CreatedAt))
	}
}

// targetPackets returns the total generation budget.
func (n *Network) targetPackets() int64 { return n.cfg.WarmupPackets + n.cfg.MeasurePackets }

// generate runs every PE's traffic source for this cycle.
func (n *Network) generate() {
	if n.generated >= n.targetPackets() {
		return
	}
	fpp := n.cfg.Traffic.FlitsPerPacket
	for _, p := range n.pes {
		if n.generated >= n.targetPackets() {
			break
		}
		dst, ok := p.gen.NextPacket(n.cycle)
		if !ok {
			continue
		}
		mode := routing.InjectionMode(n.cfg.Algorithm, func() bool { return p.mode.Bernoulli(0.5) })
		pkt := flit.Packet{
			ID:        n.nextPacketID,
			Src:       p.id,
			Dst:       dst,
			Flits:     fpp,
			CreatedAt: n.cycle,
			Mode:      mode,
			Origin:    n.nextPacketID,
		}
		if n.rel != nil {
			pkt.SrcSeq = n.rel.Stamp(p.id, dst, pkt.ID, n.cycle)
		}
		n.nextPacketID++
		n.generated++
		head := len(p.backlog)
		p.backlog = flit.AppendSegment(p.backlog, pkt, n.poolFor(p.id))
		if n.cfg.TraceEvery > 0 && pkt.ID%n.cfg.TraceEvery == 0 {
			p.backlog[head].Rec = n.tracer.NewRecord(pkt.ID, pkt.Src, pkt.Dst, pkt.CreatedAt)
		}
		n.genFlits += int64(fpp)
		n.backlogFlits += int64(fpp)

		// The warm-up boundary: reset measurement state the moment the
		// first measured packet is created. Measured-ness is a property of
		// the packet ID (IDs are assigned in creation order), so packets
		// created earlier in the boundary cycle stay unmeasured.
		if pkt.ID >= uint64(n.cfg.WarmupPackets) {
			if !n.measuring {
				n.beginMeasurement()
			}
			n.completion.Generated++
		}
	}
}

// beginMeasurement zeroes the activity and contention counters so energy
// and contention reflect steady state only.
func (n *Network) beginMeasurement() {
	n.measuring = true
	n.measureStart = n.cycle
	// Replay pending sleep cycles into the pre-boundary counters first:
	// SkipCycles is not purely statistical — a slept RoCo module's mirror
	// primary must flip for those cycles no matter where the measurement
	// boundary lands. The replayed Cycles counts are then zeroed along
	// with everything else, so future settles count activity from the
	// boundary cycle on — exactly what the ungated kernel measures.
	for id := range n.lastRun {
		n.settleTo(id, n.cycle-1)
	}
	for _, r := range n.routers {
		*r.Activity() = router.Activity{}
		*r.Contention() = router.Contention{}
	}
}

// noteDrop is the drop sink shared by all routers: it keeps the
// conservation ledger, attributes the drop to its cause (and to the most
// recently installed runtime fault), and registers the packet as broken so
// its remaining fragments everywhere are doomed.
func (n *Network) noteDrop(f *flit.Flit, cycle int64, reason trace.DropReason) {
	n.dropFlitsAll++
	n.drops.note(reason)
	if k := len(n.faultDrops); k > 0 {
		n.faultDrops[k-1].note(reason)
	}
	n.broken.Add(f.PacketID, cycle)
	// Dead-node drains and doomed-wormhole drops read the flit (VC, tail
	// type) after reporting it — defer recycling to the end of Step.
	if n.pools != nil {
		n.graveyard = append(n.graveyard, f)
	}
}

// dropAtSource discards the PE's front backlog flit (never injected).
func (n *Network) dropAtSource(p *pe, reason trace.DropReason) {
	f := p.backlog[p.head]
	p.consumeFront()
	n.backlogFlits--
	if f.Rec != nil && f.Type.IsHead() {
		f.Rec.Drop(p.id, n.cycle, reason)
	}
	n.noteDrop(f, n.cycle, reason)
}

// inject advances every PE's source queue by at most one flit (the PE link
// is one flit wide).
func (n *Network) inject() {
	if n.backlogFlits == 0 {
		return
	}
	for _, p := range n.pes {
		// Flits of packets already broken by an in-flight loss will never
		// be accepted; discard them so the source queue keeps draining.
		// (Unroutable heads drain with their whole packet below, so the
		// flits swept here always belong to packets broken in flight.)
		for p.head < len(p.backlog) && n.broken.Contains(p.backlog[p.head].PacketID) {
			n.dropAtSource(p, trace.DropInFlight)
		}
		if p.head == len(p.backlog) {
			continue
		}
		f := p.backlog[p.head]
		if f.Type.IsHead() {
			f.OutPort = n.engine.FirstHop(p.id, f)
			// Source drop: faults left the local router unable to serve the
			// packet's first hop (e.g. its injection module is blocked, or
			// the whole node is dead). Discard the packet whole — retrying
			// a permanent fault forever would wedge the source queue.
			if f.OutPort != topology.Local && !n.routers[p.id].CanServe(topology.Local, f.OutPort) {
				for p.head < len(p.backlog) {
					tail := p.backlog[p.head].Type.IsTail()
					n.dropAtSource(p, trace.DropUnroutable)
					if tail {
						break
					}
				}
				continue
			}
		}
		if n.routers[p.id].TryInject(f, n.cycle) {
			f.InjectedAt = n.cycle
			if f.Rec != nil {
				f.Rec.Visit(p.id, n.cycle, trace.Injected)
			}
			p.consumeFront()
			n.backlogFlits--
			// The accepted flit needs the router's allocators next cycle.
			n.wakeNext(p.id)
		}
	}
}

// retransmitDue runs the reliability protocol's timers for this cycle:
// copies a fault provably destroyed are relaunched (with backoff and
// fault-region rerouting) or terminally given up. It runs at the same
// point of Step in both kernels — after generation, before router ticks —
// so gated and reference executions stay bit-identical. Relaunched copies
// enter the source PE's ordinary backlog: injection itself wakes the
// source router in the gated kernel, exactly as fresh traffic does.
func (n *Network) retransmitDue() {
	if n.rel == nil {
		return
	}
	fpp := n.cfg.Traffic.FlitsPerPacket
	acted := n.rel.Expire(n.cycle, protocol.Env{
		CopyBroken:  n.broken.Contains,
		Deliverable: n.oracle.Deliverable,
		Launch: func(e *protocol.Entry, mode flit.RouteMode) uint64 {
			id := n.nextPacketID
			n.nextPacketID++
			pkt := flit.Packet{
				ID:  id,
				Src: e.Src, Dst: e.Dst,
				Flits: fpp,
				// Latency is end-to-end for the logical packet: the copy
				// inherits the original creation time.
				CreatedAt: e.CreatedAt,
				Mode:      mode,
				SrcSeq:    e.Seq,
				Origin:    e.Origin,
			}
			p := n.pes[e.Src]
			p.backlog = flit.AppendSegment(p.backlog, pkt, n.poolFor(e.Src))
			// The copy's flits are new in the conservation ledger (the
			// originals were already accounted as dropped), but not new
			// logical packets: generated/completion counts stay untouched.
			n.genFlits += int64(fpp)
			n.backlogFlits += int64(fpp)
			// Wake the source router so the backlogged copy injects
			// promptly even if the node was asleep.
			n.wakeNext(e.Src)
			return id
		},
	})
	if acted > 0 {
		// Retransmissions and give-ups are forward progress for the
		// inactivity rule: each entry can act at most 1+MaxRetries times,
		// so this cannot postpone termination unboundedly.
		n.lastProgress = n.cycle
	}
}

// Step advances the simulation one cycle.
func (n *Network) Step() {
	switch {
	case n.cfg.ReferenceKernel:
		n.stepReference()
	case n.activeBits != nil:
		n.stepSoA()
	default:
		n.stepGated()
	}
}

// stepReference is the ungated cycle loop: tick every router in canonical
// color order, advance every pipe. It is the oracle the gated kernel (at
// any shard count) must match bit for bit.
func (n *Network) stepReference() {
	n.installDueFaults()
	n.generate()
	n.retransmitDue()
	n.tickColors(n.cycle)
	n.inject()
	for _, c := range n.conns {
		c.Advance()
	}
	n.finishCycle()
}

// stepGated is the activity-gated cycle loop — the software analog of the
// paper's clock gating. Only routers in the active set tick; a ticked
// router that ends the cycle idle falls out of the set, and sleepers are
// woken by staged link/credit traffic, accepted injections, and fault
// installation. Skipped ticks are pure no-ops except for the effects
// Router.SkipCycles replays at wake-up, so gated and reference executions
// produce bit-identical results. Only pipes with staged traffic advance.
func (n *Network) stepGated() {
	n.installDueFaults()
	n.generate()
	n.retransmitDue()
	t := n.cycle

	n.tickColors(t)

	n.inject()

	// All pipe staging happens inside router ticks, so only conns touching
	// a ticked router can carry traffic: advance exactly those, and wake
	// each half-channel's reader so the staged content is consumed next
	// cycle (a flit wakes the downstream node, credits the upstream one).
	// The scan runs shard-major over the per-shard ticked lists; its order
	// is immaterial (bools, connMark dedup, independent pipe advances) but
	// kept deterministic anyway.
	for s := range n.shardTicked {
		ticked := n.shardTicked[s]
		for _, id := range ticked {
			if !n.routers[id].Idle() {
				n.nextActive[id] = true
			}
			for _, c := range n.adjConns[id] {
				if n.connMark[c] == t {
					continue
				}
				conn := n.conns[c]
				if n.isLong != nil && n.isLong[c] {
					// Multi-cycle D2D pipe: staged traffic moves it onto the
					// persistent advance list instead of the one-shot path;
					// the long pass below wakes the readers when traffic
					// actually lands.
					n.connMark[c] = t
					if !n.longOn[c] && !conn.Quiescent() {
						n.longOn[c] = true
						n.longActive = append(n.longActive, c)
					}
					continue
				}
				busy, pending := conn.Flit.Busy(), conn.Credit.Pending()
				if !busy && !pending {
					continue
				}
				n.connMark[c] = t
				n.advance = append(n.advance, c)
				if busy {
					n.nextActive[n.links[c].down] = true
				}
				if pending {
					n.nextActive[n.links[c].up] = true
				}
			}
		}
		n.shardTicked[s] = ticked[:0]
	}
	for _, c := range n.advance {
		n.conns[c].Advance()
	}
	n.advance = n.advance[:0]
	n.advanceLongConns(func(id int) { n.nextActive[id] = true })

	for id := range n.active {
		n.active[id] = n.nextActive[id]
		n.nextActive[id] = false
	}

	// Recycle the flits that died this cycle into their source shard's
	// pool. Deferred to here because delivery and drop sinks run mid-cycle
	// while callers still hold (and in places read) the pointers.
	for i, f := range n.graveyard {
		n.pools[n.shardOf[f.Src]].Put(f)
		n.graveyard[i] = nil
	}
	n.graveyard = n.graveyard[:0]

	n.finishCycle()
}

// advanceLongConns steps every multi-cycle D2D pipe with traffic in
// transit, waking the reader halves (through wake, which marks a router
// active for the next cycle) whenever a flit or credit lands. A pipe
// leaves the list only when quiescent, so gap-recovering serializers and
// mid-transit flits keep advancing even while both endpoint routers
// sleep. No-op on single-die topologies.
func (n *Network) advanceLongConns(wake func(id int)) {
	if len(n.longActive) == 0 {
		return
	}
	w := 0
	for _, c := range n.longActive {
		conn := n.conns[c]
		conn.Advance()
		if conn.Flit.Readable() {
			wake(n.links[c].down)
		}
		if conn.Credit.Readable() {
			wake(n.links[c].up)
		}
		if conn.Quiescent() {
			n.longOn[c] = false
		} else {
			n.longActive[w] = c
			w++
		}
	}
	n.longActive = n.longActive[:w]
}

// finishCycle advances the clock, runs the conservation auditor when its
// next scheduled cycle arrives, and closes a telemetry epoch likewise.
// Both run on the coordinator with every worker parked, so the telemetry
// sample reads quiescent router state under any kernel.
func (n *Network) finishCycle() {
	n.cycle++
	if n.cycle >= n.nextAudit {
		n.audit()
		n.nextAudit = n.cycle + n.cfg.AuditEvery
	}
	if n.cycle >= n.nextTelemetry {
		n.tele.Sample(n.cycle, n.routers, n.telemetryCounters())
		n.nextTelemetry = n.cycle + n.cfg.TelemetryEvery
	}
}

// telemetryCounters snapshots the network-side cumulative counters the
// telemetry collector folds into each epoch.
func (n *Network) telemetryCounters() telemetry.NetSample {
	s := telemetry.NetSample{
		GenFlits:  n.genFlits,
		DelFlits:  n.delFlitsAll,
		DropFlits: n.dropFlitsAll,
	}
	if n.rel != nil {
		s.Retransmissions = n.rel.Retransmissions()
		s.Recovered = n.rel.Recovered()
		s.GiveUps = int64(len(n.rel.GiveUps()))
	}
	return s
}

// Telemetry exposes the live collector (nil unless Config.TelemetryEvery
// is set); the HTTP metrics endpoint serves from it while a run executes.
func (n *Network) Telemetry() *telemetry.Collector { return n.tele }

// settleTo replays router id's skipped idle cycles through upTo, so its
// activity counters and tick-invariant arbitration state match a router
// that was ticked every cycle.
func (n *Network) settleTo(id int, upTo int64) {
	if gap := upTo - n.lastRun[id]; gap > 0 {
		n.routers[id].SkipCycles(gap)
		n.lastRun[id] = upTo
	}
}

// validateFault panics on a structurally impossible fault: a nonexistent
// node, or a die-to-die interface fault on a topology without chiplet
// boundaries (or aimed at a side with none).
func (n *Network) validateFault(flt fault.Fault, nodes int) {
	if flt.Node < 0 || flt.Node >= nodes {
		panic(fmt.Sprintf("network: fault at nonexistent node %d", flt.Node))
	}
	if flt.Component != fault.D2DIf {
		return
	}
	ch, ok := n.topo.(topology.Chiplet)
	if !ok {
		panic("network: D2D interface fault on a topology without chiplet boundaries")
	}
	if !flt.Port.IsCardinal() {
		panic(fmt.Sprintf("network: D2D interface fault needs a cardinal side, got %v", flt.Port))
	}
	if len(ch.InterfaceNodes(ch.ChipOf(flt.Node), flt.Port)) == 0 {
		panic(fmt.Sprintf("network: node %d's chiplet has no %v die-to-die interface", flt.Node, flt.Port))
	}
}

// severInterface cuts every boundary link of one die-to-die interface in
// both directions: the fault's node selects the chiplet, its Port the
// interface side, and both endpoint routers of each boundary link sever
// their facing ports. Returns the routers touched (pairs of endpoints).
func (n *Network) severInterface(flt fault.Fault) []int {
	ch := n.topo.(topology.Chiplet)
	var touched []int
	for _, u := range ch.InterfaceNodes(ch.ChipOf(flt.Node), flt.Port) {
		v, ok := n.topo.Neighbor(u, flt.Port)
		if !ok {
			continue
		}
		n.routers[u].SeverPort(flt.Port)
		n.routers[v].SeverPort(flt.Port.Opposite())
		touched = append(touched, u, v)
	}
	return touched
}

// installInterfaceFault applies one scheduled die-to-die interface fault to
// a live network: the whole interface severs at once (every boundary link,
// both directions), resident traffic routed through it is doomed by the
// endpoint routers, and the neighbor handshake re-propagates around the
// cut. One fault log entry covers the entire interface.
func (n *Network) installInterfaceFault(ev fault.Event) {
	ch := n.topo.(topology.Chiplet)
	ifNodes := ch.InterfaceNodes(ch.ChipOf(ev.Fault.Node), ev.Fault.Port)
	if n.gatedKernel() {
		// Replay sleep under pre-fault rules and wake for this very cycle:
		// both endpoints of every boundary link (their port masks change)
		// and their upstream neighbors (propagateHandshake mutates their
		// credit books), mirroring the per-node install below.
		settled := make(map[int]bool)
		touch := func(id int) {
			if settled[id] {
				return
			}
			settled[id] = true
			n.settleTo(id, n.cycle-1)
			n.wakeNow(id)
		}
		for _, u := range ifNodes {
			v, ok := n.topo.Neighbor(u, ev.Fault.Port)
			if !ok {
				continue
			}
			touch(u)
			touch(v)
			for _, l := range n.links {
				if l.down == u || l.down == v {
					touch(l.up)
				}
			}
		}
	}
	n.broken.MarkFaulty()
	for _, u := range n.severInterface(ev.Fault) {
		if n.brokenBits != nil {
			n.brokenBits.Set(u)
		}
		n.propagateHandshake(u)
	}
	n.faultLog = append(n.faultLog, ev)
	n.faultDrops = append(n.faultDrops, DropBreakdown{})
	if n.oracle != nil {
		n.oracle.Invalidate()
	}
}

// installDueFaults applies the runtime fault events scheduled for this
// cycle, then re-propagates the neighbor handshake: every upstream router
// of an afflicted node re-reads its input-VC depths so credit books (and
// through them VA and adaptive routing) see the degradation immediately.
func (n *Network) installDueFaults() {
	for _, ev := range n.schedule.Due(n.cycle) {
		if ev.Fault.Component == fault.D2DIf {
			n.installInterfaceFault(ev)
			continue
		}
		node := ev.Fault.Node
		if n.gatedKernel() {
			// Replay the node's sleep under pre-fault rules before the
			// fault changes them, then wake it and its upstream neighbors
			// for this very cycle so reactions are not delayed.
			n.settleTo(node, n.cycle-1)
			n.wakeNow(node)
			for _, l := range n.links {
				if l.down == node {
					// propagateHandshake is about to mutate the upstream
					// credit book; replay that router's sleep first so the
					// replayed ticks happen under pre-fault state.
					n.settleTo(l.up, n.cycle-1)
					n.wakeNow(l.up)
				}
			}
		}
		if n.brokenBits != nil {
			n.brokenBits.Set(node)
		}
		n.broken.MarkFaulty()
		n.routers[node].ApplyFault(ev.Fault)
		n.propagateHandshake(node)
		n.faultLog = append(n.faultLog, ev)
		n.faultDrops = append(n.faultDrops, DropBreakdown{})
		if n.oracle != nil {
			// The fault-region map changed; cached reachability answers
			// are stale.
			n.oracle.Invalidate()
		}
	}
}

// propagateHandshake pushes node's current input-VC depths into every
// upstream credit book.
func (n *Network) propagateHandshake(node int) {
	down := n.routers[node]
	for _, l := range n.links {
		if l.down != node {
			continue
		}
		from := l.out.Opposite()
		depths := make([]int, down.NumInputVCs(from))
		for vc := range depths {
			depths[vc] = down.InputVCDepth(from, vc)
		}
		n.routers[l.up].RefreshOutput(l.out, depths)
	}
}

// audit asserts flit conservation: every generated flit is accounted for as
// delivered, dropped, awaiting injection, buffered in a router, or in
// flight on a link. A violation is a simulator bug (a flit was silently
// lost or double-counted) and panics with the breakdown.
func (n *Network) audit() {
	var buffered, inPipes int64
	if n.hot != nil {
		// One linear sweep over the packed occupancy array; equal to the
		// per-router virtual sweep by the hot-state maintenance invariant.
		buffered = n.hot.TotalBuffered()
	} else {
		for _, r := range n.routers {
			buffered += int64(r.BufferedFlits())
		}
	}
	for _, c := range n.conns {
		inPipes += int64(c.Flit.Occupancy())
	}
	total := n.delFlitsAll + n.dropFlitsAll + n.backlogFlits + buffered + inPipes
	if total != n.genFlits {
		panic(fmt.Sprintf(
			"network: flit conservation violated at cycle %d: generated %d != delivered %d + dropped %d + backlog %d + buffered %d + in-pipes %d (= %d)",
			n.cycle, n.genFlits, n.delFlitsAll, n.dropFlitsAll, n.backlogFlits, buffered, inPipes, total))
	}
}

// drained reports whether every generated flit has been delivered or
// dropped, all source queues are empty, and — under the reliability
// protocol — every logical packet is resolved (delivered, or given up with
// a reason). A pending retransmission timer keeps the run alive even when
// no flit is in flight: the source still owes the network a copy.
func (n *Network) drained() bool {
	if n.backlogFlits != 0 || n.genFlits != n.delFlitsAll+n.dropFlitsAll {
		return false
	}
	return n.rel == nil || n.rel.Pending() == 0
}

// Run executes the configured simulation to termination and returns the
// measurements.
func (n *Network) Run() Result {
	res, _ := n.RunHooked(nil)
	return res
}

// RunHooked executes like Run but invokes hook at every cycle boundary
// (after the Step completes, before termination checks). The hook may
// snapshot the network — boundaries are the only valid snapshot points —
// and returning true stops the run early; the second result reports such
// an interruption. A nil hook degrades to Run exactly.
func (n *Network) RunHooked(hook func() (stop bool)) (Result, bool) {
	// Ensure measurement still starts when WarmupPackets is zero — but
	// never restart it on a resumed network (measureStart and the activity
	// counters carry over from the snapshot).
	if n.cfg.WarmupPackets == 0 && !n.measuring {
		n.beginMeasurement()
	}
	saturated := false
	for {
		n.Step()
		if hook != nil && hook() {
			return n.collect(false), true
		}
		if n.generated >= n.targetPackets() {
			if n.drained() {
				break
			}
			// Inactivity rule for faulty (or deadlocked) networks. The
			// clock is lastProgress so a pending retransmission timer (a
			// liveness mechanism, not live traffic) cannot stop the rule
			// from firing on a wedged network.
			last := n.lastProgress
			if last < n.measureStart {
				last = n.measureStart
			}
			if n.cycle-last > n.cfg.InactivityLimit {
				n.watchdog = n.buildWatchdog()
				break
			}
		}
		if n.cycle >= n.cfg.MaxCycles {
			saturated = true
			break
		}
	}
	return n.collect(saturated), false
}

// RunCycles advances exactly c cycles (tests and fixed-horizon experiments
// use it), then collects results.
func (n *Network) RunCycles(c int64) Result {
	if n.cfg.WarmupPackets == 0 && !n.measuring {
		n.beginMeasurement()
	}
	for i := int64(0); i < c; i++ {
		n.Step()
	}
	return n.collect(false)
}

// collect aggregates measurements into a Result. The energy fields of the
// Summary are zero here; the caller applies a power profile (the network
// does not know the router technology parameters).
func (n *Network) collect(saturated bool) Result {
	n.stopWorkers()
	// Replay any outstanding sleep so per-router activity is complete.
	for id := range n.lastRun {
		n.settleTo(id, n.cycle-1)
	}
	n.audit() // conservation always holds at termination
	if n.tele != nil {
		// Flush the final partial epoch (idempotent when the clock sits
		// exactly on an epoch boundary).
		n.tele.Sample(n.cycle, n.routers, n.telemetryCounters())
	}
	res := Result{
		Latency:        n.latency,
		Completion:     n.completion,
		MeasuredCycles: n.cycle - n.measureStart,
		TotalCycles:    n.cycle,
		DeliveredFlits: n.deliveredFlits,
		Saturated:      saturated,
		DroppedFlits:   n.dropFlitsAll,
		Drops:          n.drops,
		BrokenPackets:  int64(n.broken.Len()),
		Watchdog:       n.watchdog,
	}
	if n.tele != nil {
		res.Telemetry = n.tele.Snapshot()
	}
	if n.rel != nil {
		res.Retransmissions = n.rel.Retransmissions()
		res.RecoveredPackets = n.rel.Recovered()
		res.DuplicatePackets = n.dupPackets
		res.DuplicateFlits = n.dupFlits
		res.GiveUps = n.rel.GiveUps()
		// Residual loss: give-ups are decided losses; entries still
		// pending here were cut off mid-recovery (watchdog or MaxCycles
		// terminations only — a drained run has none).
		res.ResidualLoss = int64(len(res.GiveUps) + n.rel.Pending())
	}
	for i, ev := range n.faultLog {
		res.FaultLog = append(res.FaultLog, FaultRecord{
			Event:       ev,
			Degradation: metrics.MeasureDegradation(n.buckets, n.goodBuckets, bucketCycles, ev.Cycle, 8, 0.7),
			Drops:       n.faultDrops[i],
		})
	}
	res.PerRouter = make([]router.Activity, len(n.routers))
	for i, r := range n.routers {
		res.PerRouter[i] = *r.Activity()
		res.Activity.Add(r.Activity())
		res.Contention.Add(r.Contention())
	}
	if cl, ok := n.topo.(topology.Classed); ok {
		// Die-to-die traffic splits out of the link-flit total so the power
		// layer can price boundary crossings at the off-chip energy.
		for _, l := range n.links {
			if cl.LinkClass(l.up, l.out) == topology.D2D {
				res.D2DLinkFlits += res.PerRouter[l.up].LinkFlitsByDir[l.out]
			}
		}
	}
	res.Summary = metrics.Summary{
		AvgLatency:    n.latency.Average(),
		P95Latency:    n.latency.Quantile(0.95),
		P99Latency:    n.latency.Quantile(0.99),
		MaxLatency:    n.latency.Max(),
		DeliveredPkts: n.completion.Delivered,
		GeneratedPkts: n.completion.Generated,
		Completion:    n.completion.Probability(),
		ThroughputFNC: metrics.Throughput(n.deliveredFlits, res.MeasuredCycles, n.topo.Nodes()),
		Cycles:        n.cycle,
		AvgSourceQ:    n.srcQueue.Mean(),
		ContentionRow: res.Contention.RowProbability(),
		ContentionCol: res.Contention.ColProbability(),
		ContentionAll: res.Contention.Probability(),
	}
	return res
}

// WindowPoint is one fixed-width time window's delivery statistics.
type WindowPoint struct {
	// StartCycle is the window's first cycle.
	StartCycle int64
	// Delivered counts packets completed in the window.
	Delivered int64
	// AvgLatency is the mean latency of those packets (0 when none).
	AvgLatency float64
	// Dropped counts flits discarded in the window (fault recovery).
	Dropped int64
}

// RunWindows executes the configured simulation while splitting delivered-
// packet statistics into fixed-width windows, for time-series views of
// warm-up convergence and traffic burstiness. It must be called instead of
// Run, before any stepping.
func (n *Network) RunWindows(windowCycles int64) (Result, []WindowPoint) {
	if windowCycles < 1 {
		panic("network: window width must be >= 1")
	}
	if n.cfg.WarmupPackets == 0 && !n.measuring {
		n.beginMeasurement()
	}
	var points []WindowPoint
	cur := WindowPoint{StartCycle: n.cycle}
	var latSum float64
	flush := func() {
		if cur.Delivered > 0 {
			cur.AvgLatency = latSum / float64(cur.Delivered)
		}
		points = append(points, cur)
	}

	// Per-window deltas are reconstructed from the global accumulator
	// (count and running sum) after each cycle.
	lastCount := n.latency.Count()
	lastSum := n.latency.Average() * float64(lastCount)
	lastDropped := n.dropFlitsAll
	saturated := false
	for {
		n.Step()
		count := n.latency.Count()
		sum := n.latency.Average() * float64(count)
		cur.Delivered += count - lastCount
		cur.Dropped += n.dropFlitsAll - lastDropped
		latSum += sum - lastSum
		lastCount, lastSum, lastDropped = count, sum, n.dropFlitsAll

		if n.cycle-cur.StartCycle >= windowCycles {
			flush()
			cur = WindowPoint{StartCycle: n.cycle}
			latSum = 0
		}
		if n.generated >= n.targetPackets() {
			if n.drained() {
				break
			}
			last := n.lastProgress
			if last < n.measureStart {
				last = n.measureStart
			}
			if n.cycle-last > n.cfg.InactivityLimit {
				n.watchdog = n.buildWatchdog()
				break
			}
		}
		if n.cycle >= n.cfg.MaxCycles {
			saturated = true
			break
		}
	}
	flush()
	return n.collect(saturated), points
}

// Traces returns the sampled packet journeys (empty without TraceEvery).
func (n *Network) Traces() []*trace.Record { return n.tracer.Records() }

// Quiescent reports whether no router holds any flit.
func (n *Network) Quiescent() bool {
	for _, r := range n.routers {
		if !r.Quiescent() {
			return false
		}
	}
	return true
}
