// Struct-of-arrays kernel: the activity-gated cycle loop re-driven by
// packed hot state. The gated kernel (network.go) keeps its per-router
// bool active sets and per-router virtual Idle() scans; this variant
// mirrors every channel's occupancy and dormancy into the shared
// router.HotState arrays and keeps the active/dormant and broken sets as
// uint64 bitsets, so the per-color tick scan is a word-wise sweep of
// activeBits∧colorMask and the post-tick wake scan reads one packed
// int32 per router instead of virtually dispatching into its channel
// objects.
//
// Bit-identity with the gated kernel (and hence the reference kernel)
// holds because the SoA structures are pure mirrors, never sources of
// truth that diverge:
//
//   - The tick set each cycle is the same: activeBits holds exactly the
//     ids the gated kernel's active[] holds, since both are written from
//     the same wake events (staged link/credit traffic, accepted
//     injections, retransmission launches, fault installation) at the
//     same points of Step.
//   - The tick order is the same: within a color phase the bitset sweep
//     visits ids ascending, which is precisely the order sched[c][s]
//     lists them in.
//   - The sleep decision is the same: HotState.RouterBusy(id) mirrors
//     !router.Idle() exactly, because every router kind defines Idle as
//     "all channels dormant" and every channel queue/states mutation
//     updates the mirror inline (router.VC.syncHot).
//
// Snapshots stay kernel-canonical: the hot state is derived, never
// serialized, and LoadState rebuilds it with HotState.Resync after the
// routers restore (see snapshot.go).
package network

import (
	"math/bits"

	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/topology"
)

// initSoA builds the SoA kernel's packed state after the mesh is wired:
// the channel hot-state mirror, the activity and broken bitsets, the
// per-color schedule masks, the shard id ranges, and the CSR adjacency.
func (n *Network) initSoA(nodes int) {
	n.activeBits = router.NewBitset(nodes)
	n.nextActiveBits = router.NewBitset(nodes)
	n.brokenBits = router.NewBitset(nodes)
	for _, flt := range n.cfg.Faults {
		n.brokenBits.Set(flt.Node)
	}
	n.markSeveredBroken()

	n.hot = router.NewHotState(nodes)
	for _, r := range n.routers {
		r.BindHot(n.hot)
	}

	// CSR adjacency: conn indexes touching each node, flattened. Same
	// per-node visit order as the gated kernel's adjConns (ascending conn
	// index), two flat arrays instead of nodes slice headers.
	n.adjOff = make([]int32, nodes+1)
	for _, l := range n.links {
		n.adjOff[l.up+1]++
		n.adjOff[l.down+1]++
	}
	for id := 0; id < nodes; id++ {
		n.adjOff[id+1] += n.adjOff[id]
	}
	n.adjList = make([]int32, n.adjOff[nodes])
	fill := make([]int32, nodes)
	copy(fill, n.adjOff[:nodes])
	for i, l := range n.links {
		n.adjList[fill[l.up]] = int32(i)
		fill[l.up]++
		n.adjList[fill[l.down]] = int32(i)
		fill[l.down]++
	}

	// colorMask[c] holds every router of color c; shards are contiguous
	// ascending-id ranges, so masking a color against [shardLo[s],
	// shardLo[s+1]) reproduces sched[c][s] exactly.
	n.colorMask = make([]router.Bitset, len(n.sched))
	for c := range n.sched {
		m := router.NewBitset(nodes)
		for s := range n.sched[c] {
			for _, id := range n.sched[c][s] {
				m.Set(id)
			}
		}
		n.colorMask[c] = m
	}
	n.shardLo = make([]int, n.shards+1)
	n.shardLo[n.shards] = nodes
	for v := nodes - 1; v >= 0; v-- {
		n.shardLo[n.shardOf[v]] = v
	}
}

// markSeveredBroken sets the fault-mask bit of every router with a severed
// die-to-die port, for diagnostic parity with per-node faults (a static
// interface fault touches endpoint pairs, not just the fault's named
// node). No-op outside the SoA kernel; never consulted for correctness.
func (n *Network) markSeveredBroken() {
	if n.brokenBits == nil {
		return
	}
	for id, r := range n.routers {
		for _, d := range topology.CardinalDirections {
			if r.Severed(d) {
				n.brokenBits.Set(id)
				break
			}
		}
	}
}

// gatedKernel reports whether this network runs an activity-gated loop
// (bool-array or bitset variant) rather than the reference loop.
func (n *Network) gatedKernel() bool { return n.active != nil || n.activeBits != nil }

// wakeNext marks router id active for the next cycle, in whichever
// representation the kernel keeps. No-op under the reference kernel.
func (n *Network) wakeNext(id int) {
	if n.nextActive != nil {
		n.nextActive[id] = true
	} else if n.nextActiveBits != nil {
		n.nextActiveBits.Set(id)
	}
}

// wakeNow marks router id active for the current cycle (fault
// installation wakes routers mid-Step, before the tick phases).
func (n *Network) wakeNow(id int) {
	if n.active != nil {
		n.active[id] = true
	} else if n.activeBits != nil {
		n.activeBits.Set(id)
	}
}

// HotState exposes the SoA mirror (nil unless Config.SoAKernel); tests
// assert its transition invariants against the routers' virtual state.
func (n *Network) HotState() *router.HotState { return n.hot }

// ActiveMask returns the SoA kernel's current active set (nil otherwise);
// read-only for tests.
func (n *Network) ActiveMask() router.Bitset { return n.activeBits }

// BrokenMask returns the SoA kernel's fault mask: routers with at least
// one installed fault (nil unless Config.SoAKernel). Diagnostics and
// tests read it; recovery correctness never depends on it (the broken
// registry and per-router fault state remain authoritative).
func (n *Network) BrokenMask() router.Bitset { return n.brokenBits }

// stepSoA is the SoA cycle loop. Phase order is identical to stepGated —
// faults, generation, retransmission, color-phased ticks, injection,
// conn wake scan, active-set swap, graveyard recycling, cycle close —
// only the representations differ.
func (n *Network) stepSoA() {
	n.installDueFaults()
	n.generate()
	n.retransmitDue()
	t := n.cycle

	n.tickColors(t)

	n.inject()

	// Wake scan: a ticked router stays active while any of its channels
	// is non-dormant (one packed counter read), and staged traffic on an
	// adjacent conn advances the pipe and wakes the reader half.
	for s := range n.shardTicked {
		ticked := n.shardTicked[s]
		for _, id := range ticked {
			if n.hot.RouterBusy(id) {
				n.nextActiveBits.Set(id)
			}
			for k := n.adjOff[id]; k < n.adjOff[id+1]; k++ {
				c := int(n.adjList[k])
				if n.connMark[c] == t {
					continue
				}
				conn := n.conns[c]
				if n.isLong != nil && n.isLong[c] {
					// Multi-cycle D2D pipe: moves onto the persistent advance
					// list; the long pass below wakes readers when traffic
					// actually lands.
					n.connMark[c] = t
					if !n.longOn[c] && !conn.Quiescent() {
						n.longOn[c] = true
						n.longActive = append(n.longActive, c)
					}
					continue
				}
				busy, pending := conn.Flit.Busy(), conn.Credit.Pending()
				if !busy && !pending {
					continue
				}
				n.connMark[c] = t
				n.advance = append(n.advance, c)
				if busy {
					n.nextActiveBits.Set(n.links[c].down)
				}
				if pending {
					n.nextActiveBits.Set(n.links[c].up)
				}
			}
		}
		n.shardTicked[s] = ticked[:0]
	}
	for _, c := range n.advance {
		n.conns[c].Advance()
	}
	n.advance = n.advance[:0]
	n.advanceLongConns(func(id int) { n.nextActiveBits.Set(id) })

	// Active-set swap: two word-wise array passes instead of a per-router
	// bool loop.
	n.activeBits.CopyFrom(n.nextActiveBits)
	n.nextActiveBits.ClearAll()

	for i, f := range n.graveyard {
		n.pools[n.shardOf[f.Src]].Put(f)
		n.graveyard[i] = nil
	}
	n.graveyard = n.graveyard[:0]

	n.finishCycle()
}

// tickShardColorSoA ticks the active routers of one (color, shard) cell
// by sweeping the words of activeBits∧colorMask clipped to the shard's
// contiguous id range. Set bits come out in ascending id order — exactly
// the order sched[c][s] lists — so the tick sequence matches the gated
// kernel's bit for bit. activeBits is read-only during the tick phases
// (wakes for the next cycle go to nextActiveBits on the coordinator), so
// concurrent shard sweeps of one color never race.
func (n *Network) tickShardColorSoA(c, s int, t int64) {
	lo, hi := n.shardLo[s], n.shardLo[s+1]
	if lo >= hi {
		return
	}
	mask := n.colorMask[c]
	act := n.activeBits
	ticked := n.shardTicked[s]
	loW, hiW := lo>>6, (hi-1)>>6
	for w := loW; w <= hiW; w++ {
		word := act[w] & mask[w]
		if w == loW {
			word &^= (1 << uint(lo&63)) - 1
		}
		if w == hiW {
			if rem := hi & 63; rem != 0 {
				word &= (1 << uint(rem)) - 1
			}
		}
		for word != 0 {
			id := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			n.settleTo(id, t-1)
			n.routers[id].Tick(t)
			n.lastRun[id] = t
			ticked = append(ticked, id)
		}
	}
	n.shardTicked[s] = ticked
}
