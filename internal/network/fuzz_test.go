package network

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/protocol"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// TestRandomizedConfigurations drives many random (router, algorithm,
// traffic, rate, mesh, packet size, faults) combinations and checks global
// invariants on each: the run terminates, flits are conserved (delivered +
// dropped + in-flight accounts for everything injected), and a fault-free
// run completes fully. This is the repository's broad-spectrum regression
// net: any protocol violation surfaces as a panic or an invariant failure.
func TestRandomizedConfigurations(t *testing.T) {
	rng := stats.NewRNG(20260704)
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
		xy    bool // XY only (PDR)
	}{
		{"generic", genericBuilder, false},
		{"pathsensitive", psBuilder, false},
		{"roco", rocoBuilder, false},
		{"pdr", pdrBuilder, true},
	}
	patterns := []traffic.Pattern{traffic.Uniform, traffic.Transpose, traffic.SelfSimilar, traffic.BitComplement, traffic.Hotspot}

	const trials = 60
	for trial := 0; trial < trials; trial++ {
		b := builders[rng.Intn(len(builders))]
		alg := routing.Algorithms[rng.Intn(3)]
		if b.xy {
			alg = routing.XY
		}
		pattern := patterns[rng.Intn(len(patterns))]
		rate := 0.05 + 0.25*rng.Float64()
		w := 3 + rng.Intn(5)
		h := 3 + rng.Intn(5)
		flits := 1 + rng.Intn(6)
		var faults []fault.Fault
		withFaults := rng.Bernoulli(0.4)
		if withFaults {
			class := fault.Critical
			if rng.Bernoulli(0.5) {
				class = fault.NonCritical
			}
			faults = fault.RandomSet(class, 1+rng.Intn(2), w*h, 12, rng)
		}

		name := fmt.Sprintf("%02d-%s-%s-%s-%dx%d-f%d-flt%d",
			trial, b.name, alg, pattern, w, h, flits, len(faults))
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Topo:      topology.NewMesh(w, h),
				Algorithm: alg,
				Build:     b.build,
				Traffic: traffic.Config{
					Pattern: pattern, Rate: rate, FlitsPerPacket: flits,
					HotspotNode: rng.Intn(w * h), HotspotFraction: 0.25,
				},
				WarmupPackets:   100,
				MeasurePackets:  800,
				Faults:          faults,
				InactivityLimit: 1200,
				MaxCycles:       600_000,
				Seed:            rng.Uint64(),
			}
			res := New(cfg).Run()

			if !withFaults && !res.Saturated && res.Summary.Completion != 1 {
				t.Fatalf("fault-free unsaturated run lost traffic: %.3f", res.Summary.Completion)
			}
			// Flit conservation: every measured delivered flit crossed the
			// crossbars it claims; grants match traversals.
			a := res.Activity
			if a.SAGrants != a.CrossbarTraversals {
				t.Fatalf("grants %d != traversals %d", a.SAGrants, a.CrossbarTraversals)
			}
			if a.VAGrants > a.VAOps {
				t.Fatal("more VA grants than attempts")
			}
			if res.Summary.Completion > 1.0001 {
				t.Fatalf("completion %v exceeds 1", res.Summary.Completion)
			}
		})
	}
}

// FuzzDynamicFaults fuzzes the runtime fault-injection path: a random
// fault schedule strikes a live network mid-run, with the conservation
// auditor armed on a tight interval. Whatever the schedule, a run must
// terminate — either drained or with a watchdog report — and every
// generated flit must stay accounted for (the audit panics otherwise).
// Odd rel bytes run with the reliable-delivery protocol on, under a
// rel-derived base timeout, checking its invariants too: no duplicate
// deliveries, and residual loss exactly the give-up count when drained.
// The shard count (1-4) is fuzzed alongside, as is the kernel choice
// (bit 1 of ckpt selects the struct-of-arrays kernel); every multi-shard
// run is additionally replayed at Shards=1 and must match it bit for
// bit. Odd ckpt bytes additionally replay the run with a snapshot taken mid-run
// and a resume from it: both the snapshotting run and the resumed run
// must reproduce the uninterrupted Result exactly, whatever fault
// schedule the fuzzer strikes the network with.
func FuzzDynamicFaults(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(300), uint8(27), uint8(3), uint8(0), uint8(0), uint8(1))
	f.Add(uint64(7), uint8(2), uint16(50), uint8(5), uint8(0), uint8(1), uint8(1), uint8(0))
	f.Add(uint64(42), uint8(1), uint16(900), uint8(0), uint8(5), uint8(3), uint8(2), uint8(3))
	f.Add(uint64(99), uint8(3), uint16(1), uint8(15), uint8(2), uint8(129), uint8(3), uint8(255))

	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
		alg   routing.Algorithm
	}{
		{"generic", genericBuilder, routing.XY},
		{"pathsensitive", psBuilder, routing.Adaptive},
		{"roco", rocoBuilder, routing.Adaptive},
		{"pdr", pdrBuilder, routing.XY},
	}

	f.Fuzz(func(t *testing.T, seed uint64, builder uint8, faultCycle uint16, node uint8, comp uint8, rel uint8, shards uint8, ckpt uint8) {
		b := builders[int(builder)%len(builders)]
		const w, h = 4, 4
		rng := stats.NewRNG(seed)
		events := []fault.Event{{
			Cycle: int64(faultCycle),
			Fault: fault.Fault{
				Node:      int(node) % (w * h),
				Component: fault.AllComponents()[int(comp)%len(fault.AllComponents())],
				Module:    fault.Module(rng.Uint64() % 2),
				VC:        int(rng.Uint64() % 12),
			},
		}}
		// Sometimes pile on a second fault at a distinct node later in the run.
		if seed%3 == 0 {
			second := events[0].Fault
			second.Node = (second.Node + 1 + int(rng.Uint64()%uint64(w*h-1))) % (w * h)
			events = append(events, fault.Event{Cycle: events[0].Cycle + 64, Fault: second})
		}

		cfg := Config{
			Topo:      topology.NewMesh(w, h),
			Algorithm: b.alg,
			Build:     b.build,
			Traffic: traffic.Config{
				Pattern: traffic.Uniform, Rate: 0.05 + 0.2*rng.Float64(), FlitsPerPacket: 1 + int(rng.Uint64()%6),
			},
			WarmupPackets:   100,
			MeasurePackets:  600,
			InactivityLimit: 800,
			MaxCycles:       300_000,
			Seed:            rng.Uint64(),
			AuditEvery:      16,
			Schedule:        fault.NewSchedule(events),
		}
		if rel%2 == 1 {
			cfg.Reliable = true
			cfg.Protocol = protocol.Params{Timeout: 16 + int64(rel)}
		}
		cfg.Shards = 1 + int(shards)%4
		cfg.Workers = cfg.Shards
		cfg.SoAKernel = ckpt&2 != 0
		res := New(cfg).Run()

		if cfg.Shards > 1 {
			serial := cfg
			serial.Shards = 1
			serial.Workers = 1
			if want := New(serial).Run(); !reflect.DeepEqual(res, want) {
				t.Fatalf("%s: Shards=%d diverged from Shards=1\n sharded: %+v\n  serial: %+v",
					b.name, cfg.Shards, res.Summary, want.Summary)
			}
		}

		if ckpt%2 == 1 {
			// Replay with a snapshot taken mid-run (the fuzzer picks the
			// cycle), then resume from it; neither may perturb the Result.
			snapCycle := 25 + int64(ckpt)
			n := New(cfg)
			var frame bytes.Buffer
			ckptRes, _ := n.RunHooked(func() bool {
				if n.Cycle() == snapCycle {
					e := snapshot.NewEncoder()
					n.SaveState(e)
					if _, err := e.WriteTo(&frame); err != nil {
						t.Fatalf("%s: writing snapshot frame: %v", b.name, err)
					}
				}
				return false
			})
			if !reflect.DeepEqual(ckptRes, res) {
				t.Fatalf("%s: snapshotting at cycle %d perturbed the run\n got: %+v\nwant: %+v",
					b.name, snapCycle, ckptRes.Summary, res.Summary)
			}
			if frame.Len() > 0 { // run may legitimately end before snapCycle
				d, err := snapshot.Read(bytes.NewReader(frame.Bytes()))
				if err != nil {
					t.Fatalf("%s: reading snapshot frame: %v", b.name, err)
				}
				rn, err := Restore(cfg, d)
				if err != nil {
					t.Fatalf("%s: restoring snapshot: %v", b.name, err)
				}
				if resumed := rn.Run(); !reflect.DeepEqual(resumed, res) {
					t.Fatalf("%s: run resumed from cycle %d diverged\n resumed: %+v\n    want: %+v",
						b.name, snapCycle, resumed.Summary, res.Summary)
				}
			}
		}

		if res.Saturated {
			t.Fatalf("%s: run hit MaxCycles instead of draining or watchdogging", b.name)
		}
		if res.Summary.Completion > 1.0001 {
			t.Fatalf("%s: completion %v exceeds 1", b.name, res.Summary.Completion)
		}
		if res.Watchdog != nil && res.Watchdog.String() == "" {
			t.Fatalf("%s: watchdog fired with an empty diagnostic", b.name)
		}
		if res.Watchdog == nil && res.DroppedFlits == 0 && len(res.FaultLog) > 0 &&
			res.Summary.Completion < 1 && !res.Saturated {
			t.Fatalf("%s: lost traffic without dropping or wedging", b.name)
		}
		if cfg.Reliable {
			if res.DuplicatePackets != 0 {
				t.Fatalf("%s: %d duplicate deliveries under the protocol", b.name, res.DuplicatePackets)
			}
			if res.Watchdog == nil && res.ResidualLoss != int64(len(res.GiveUps)) {
				t.Fatalf("%s: drained with residual loss %d != %d give-ups",
					b.name, res.ResidualLoss, len(res.GiveUps))
			}
		}
	})
}
