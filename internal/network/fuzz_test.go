package network

import (
	"fmt"
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// TestRandomizedConfigurations drives many random (router, algorithm,
// traffic, rate, mesh, packet size, faults) combinations and checks global
// invariants on each: the run terminates, flits are conserved (delivered +
// dropped + in-flight accounts for everything injected), and a fault-free
// run completes fully. This is the repository's broad-spectrum regression
// net: any protocol violation surfaces as a panic or an invariant failure.
func TestRandomizedConfigurations(t *testing.T) {
	rng := stats.NewRNG(20260704)
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
		xy    bool // XY only (PDR)
	}{
		{"generic", genericBuilder, false},
		{"pathsensitive", psBuilder, false},
		{"roco", rocoBuilder, false},
		{"pdr", pdrBuilder, true},
	}
	patterns := []traffic.Pattern{traffic.Uniform, traffic.Transpose, traffic.SelfSimilar, traffic.BitComplement, traffic.Hotspot}

	const trials = 60
	for trial := 0; trial < trials; trial++ {
		b := builders[rng.Intn(len(builders))]
		alg := routing.Algorithms[rng.Intn(3)]
		if b.xy {
			alg = routing.XY
		}
		pattern := patterns[rng.Intn(len(patterns))]
		rate := 0.05 + 0.25*rng.Float64()
		w := 3 + rng.Intn(5)
		h := 3 + rng.Intn(5)
		flits := 1 + rng.Intn(6)
		var faults []fault.Fault
		withFaults := rng.Bernoulli(0.4)
		if withFaults {
			class := fault.Critical
			if rng.Bernoulli(0.5) {
				class = fault.NonCritical
			}
			faults = fault.RandomSet(class, 1+rng.Intn(2), w*h, 12, rng)
		}

		name := fmt.Sprintf("%02d-%s-%s-%s-%dx%d-f%d-flt%d",
			trial, b.name, alg, pattern, w, h, flits, len(faults))
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Topo:      topology.NewMesh(w, h),
				Algorithm: alg,
				Build:     b.build,
				Traffic: traffic.Config{
					Pattern: pattern, Rate: rate, FlitsPerPacket: flits,
					HotspotNode: rng.Intn(w * h), HotspotFraction: 0.25,
				},
				WarmupPackets:   100,
				MeasurePackets:  800,
				Faults:          faults,
				InactivityLimit: 1200,
				MaxCycles:       600_000,
				Seed:            rng.Uint64(),
			}
			res := New(cfg).Run()

			if !withFaults && !res.Saturated && res.Summary.Completion != 1 {
				t.Fatalf("fault-free unsaturated run lost traffic: %.3f", res.Summary.Completion)
			}
			// Flit conservation: every measured delivered flit crossed the
			// crossbars it claims; grants match traversals.
			a := res.Activity
			if a.SAGrants != a.CrossbarTraversals {
				t.Fatalf("grants %d != traversals %d", a.SAGrants, a.CrossbarTraversals)
			}
			if a.VAGrants > a.VAOps {
				t.Fatal("more VA grants than attempts")
			}
			if res.Summary.Completion > 1.0001 {
				t.Fatalf("completion %v exceeds 1", res.Summary.Completion)
			}
		})
	}
}
