package network

import (
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/protocol"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// stormSchedule mixes the two fault classes the protocol must survive: a
// dense storm of non-critical (VC-level) faults, which break in-flight
// wormholes while the module keeps serving — the losses retransmission
// repairs — and a sparser storm of critical module faults, which kill
// routes outright and force the oracle-backed give-up path.
func stormSchedule(seed uint64) fault.Schedule {
	soft := fault.PoissonSchedule(fault.NonCritical, 40, 2500, 64, core.NumVCs, stats.NewRNG(seed^0x5707))
	hard := fault.PoissonSchedule(fault.Critical, 900, 2500, 64, core.NumVCs, stats.NewRNG(seed^0xdead))
	return fault.NewSchedule(append(soft.Events(), hard.Events()...))
}

// stormConfig is the chaos-soak scenario: an 8x8 RoCo mesh under uniform
// traffic with a Poisson storm of runtime faults, the reliability protocol
// armed with a short base timeout, and the conservation auditor running
// tightly throughout.
func stormConfig(seed uint64) Config {
	return Config{
		Topo:            topology.NewMesh(8, 8),
		Algorithm:       routing.XY,
		Build:           rocoBuilder,
		Traffic:         traffic.Config{Pattern: traffic.Uniform, Rate: 0.35, FlitsPerPacket: 4},
		WarmupPackets:   500,
		MeasurePackets:  4000,
		InactivityLimit: 4000,
		MaxCycles:       400_000,
		Seed:            seed,
		AuditEvery:      64,
		Schedule:        stormSchedule(seed),
		Reliable:        true,
		Protocol:        protocol.Params{Timeout: 64, MaxRetries: 16},
	}
}

// TestReliableFaultStormExactlyOnce is the acceptance criterion of the
// reliability layer: under a Poisson fault storm, every logical packet
// whose destination remains reachable is delivered exactly once, residual
// loss is exactly the set of packets the oracle proved undeliverable, and
// the flit-conservation auditor (running every 64 cycles) never fires.
func TestReliableFaultStormExactlyOnce(t *testing.T) {
	for _, seed := range []uint64{3, 21} {
		cfg := stormConfig(seed)
		n := New(cfg)
		res := n.Run()

		if len(res.FaultLog) < 5 {
			t.Fatalf("seed %d: storm installed only %d faults; scenario is too tame", seed, len(res.FaultLog))
		}
		if res.Watchdog != nil {
			t.Fatalf("seed %d: run did not drain under the protocol:\n%s", seed, res.Watchdog)
		}
		if res.Saturated {
			t.Fatalf("seed %d: run hit MaxCycles", seed)
		}

		// Non-vacuousness: the storm must have broken packets and the
		// protocol must have repaired some of them.
		if res.BrokenPackets == 0 || res.Retransmissions == 0 {
			t.Fatalf("seed %d: storm broke %d packets, protocol retransmitted %d — scenario is vacuous",
				seed, res.BrokenPackets, res.Retransmissions)
		}
		if res.RecoveredPackets == 0 {
			t.Errorf("seed %d: no packet was recovered by retransmission", seed)
		}

		// Exactly once: the ejection port never accepted a second tail.
		if res.DuplicatePackets != 0 {
			t.Errorf("seed %d: %d duplicate packet deliveries", seed, res.DuplicatePackets)
		}

		// Give-ups are sound: the protocol abandoned a packet only when the
		// fault map proves its destination unreachable (faults never heal,
		// so the oracle's end-of-run answer is authoritative for the whole
		// suffix of the run).
		for _, g := range res.GiveUps {
			if g.Reason != protocol.Unreachable {
				t.Errorf("seed %d: give-up %+v not proven unreachable", seed, g)
			}
			if n.Deliverable(g.Src, g.Dst) {
				t.Errorf("seed %d: gave up on %d->%d but the oracle says it is deliverable", seed, g.Src, g.Dst)
			}
		}

		// Zero residual loss beyond proven-unreachable packets, and every
		// reachable measured packet delivered: generated = delivered +
		// measured give-ups, with nothing left pending.
		if res.ResidualLoss != int64(len(res.GiveUps)) {
			t.Errorf("seed %d: residual loss %d != %d give-ups (packets left pending at exit)",
				seed, res.ResidualLoss, len(res.GiveUps))
		}
		var measuredGiveUps int64
		for _, g := range res.GiveUps {
			if g.Origin >= uint64(cfg.WarmupPackets) {
				measuredGiveUps++
			}
		}
		if got, want := res.Completion.Delivered, res.Completion.Generated-measuredGiveUps; got != want {
			t.Errorf("seed %d: delivered %d of %d generated with %d measured give-ups — %d reachable packets lost",
				seed, got, res.Completion.Generated, measuredGiveUps, want-got)
		}
	}
}

// TestReliableGatedMatchesReference extends the kernel bit-identity
// contract to protocol-enabled runs: retransmission timers, duplicate
// suppression, and give-up decisions must be deterministic and identical
// across the gated and reference kernels.
func TestReliableGatedMatchesReference(t *testing.T) {
	for _, seed := range []uint64{3, 77} {
		ref := stormConfig(seed)
		ref.ReferenceKernel = true
		gated := stormConfig(seed)

		want := New(ref).Run()
		got := New(gated).Run()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: gated kernel diverged from reference with the protocol on\n gated: %+v\n   ref: %+v",
				seed, got.Summary, want.Summary)
		}
	}
}

// TestReliableOffIsBitIdenticalToSeed: with Reliable off, the protocol
// machinery must be completely inert — a run with the same seed produces
// the same Summary whether the field exists or not is unprovable here, but
// the run must report zero protocol activity.
func TestReliableOffReportsNothing(t *testing.T) {
	cfg := stormConfig(5)
	cfg.Reliable = false
	res := New(cfg).Run()
	if res.Retransmissions != 0 || res.RecoveredPackets != 0 || res.DuplicateFlits != 0 ||
		res.ResidualLoss != 0 || len(res.GiveUps) != 0 {
		t.Fatalf("protocol stats nonzero with Reliable off: %+v", res)
	}
	if res.Drops.Total() != res.DroppedFlits {
		t.Fatalf("drop breakdown %+v does not sum to DroppedFlits %d", res.Drops, res.DroppedFlits)
	}
}

// TestReliableRerouteFlipsDimensionOrder exercises fault-region rerouting
// under XY-YX: a fault cutting the XFirst path of a pending packet must
// make the retransmitted copy travel YFirst and deliver.
func TestReliableRerouteFlipsDimensionOrder(t *testing.T) {
	cfg := stormConfig(9)
	cfg.Algorithm = routing.XYYX
	n := New(cfg)
	res := n.Run()
	if res.Watchdog != nil {
		t.Fatalf("XYYX storm run did not drain:\n%s", res.Watchdog)
	}
	if res.Retransmissions == 0 {
		t.Fatalf("no retransmissions; rerouting path unexercised")
	}
	if res.DuplicatePackets != 0 {
		t.Errorf("%d duplicate deliveries under XYYX", res.DuplicatePackets)
	}
	for _, g := range res.GiveUps {
		if g.Reason == protocol.Unreachable && n.Deliverable(g.Src, g.Dst) {
			t.Errorf("gave up on %d->%d but a surviving dimension order exists", g.Src, g.Dst)
		}
	}
}

// TestReliableAdaptiveBounded: under minimal adaptive routing the oracle is
// conservative (any odd-even service-clean path counts as reachable), so
// give-ups may cite RetriesExhausted — but the run must still drain with
// zero duplicates and residual loss equal to its give-ups.
func TestReliableAdaptiveBounded(t *testing.T) {
	cfg := stormConfig(13)
	cfg.Algorithm = routing.Adaptive
	cfg.Build = func(id int, e *router.RouteEngine) router.Router { return core.New(id, e) }
	res := New(cfg).Run()
	if res.Watchdog != nil {
		t.Skipf("adaptive storm wedged (allowed: minimal routing hemmed in by faults): %s", res.Watchdog)
	}
	if res.DuplicatePackets != 0 {
		t.Errorf("%d duplicate deliveries under adaptive routing", res.DuplicatePackets)
	}
	if res.ResidualLoss != int64(len(res.GiveUps)) {
		t.Errorf("residual loss %d != %d give-ups", res.ResidualLoss, len(res.GiveUps))
	}
}
