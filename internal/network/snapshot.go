// Checkpoint/resume for a live network. SaveState serializes every piece
// of mutable simulation state — counters, fault bookkeeping, protocol
// tracker, telemetry ring, PE backlogs and RNG streams, router internals,
// and link pipes — at a cycle boundary; LoadState restores it into a
// network freshly built from the same Config. The contract is exactness:
// a resumed network continues bit-identically to one that never stopped,
// under every kernel (reference, gated, sharded) and both Reliable modes.
//
// Canonicalization makes that kernel-independence work. Before saving,
// every router is settled to cycle-1 (replaying any skipped idle cycles —
// a behavior-invariant operation, the same one beginMeasurement and
// collect already perform), so the byte stream never encodes which
// routers happened to be asleep under which kernel. On load the gated
// kernel wakes everything for one cycle; ticking an idle router is
// equivalent to skipping it (the same theorem that makes the gated kernel
// match the reference), so the resumed run re-converges to the original
// active set within a cycle while producing identical results.
package network

import (
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/traffic"
)

// SaveState serializes the network's complete mutable state. It must be
// called at a cycle boundary — after a Step returned and before the next
// one starts — which is the only time the pipes' staged halves are
// provably empty. Workers are parked first (the pool restarts lazily on
// the next Step), so the traversal reads quiescent state.
func (n *Network) SaveState(e *snapshot.Encoder) {
	n.stopWorkers()
	if n.lastRun != nil {
		// Replay outstanding sleep so router state is canonical: identical
		// bytes regardless of kernel or of which routers were dormant.
		for id := range n.lastRun {
			n.settleTo(id, n.cycle-1)
		}
	}
	if len(n.graveyard) != 0 || len(n.advance) != 0 {
		panic("network: snapshot taken mid-cycle")
	}

	e.I64(n.cycle)
	e.U64(n.nextPacketID)
	e.I64(n.generated)
	e.I64(n.deliveredAll)
	e.I64(n.genFlits)
	e.I64(n.delFlitsAll)
	e.I64(n.dropFlitsAll)
	e.I64(n.backlogFlits)

	// The trace collector goes first: flits reference its records by
	// pointer, and the codec relinks them by packet ID on decode.
	n.tracer.SaveState(e)
	c := &flit.Codec{}

	n.broken.SaveState(e)
	n.schedule.SaveState(e)
	e.Int(len(n.faultLog))
	for i, ev := range n.faultLog {
		ev.SaveState(e)
		saveDrops(e, n.faultDrops[i])
	}
	saveDrops(e, n.drops)

	e.Int(len(n.buckets))
	for _, b := range n.buckets {
		e.I64(b)
	}
	e.Int(len(n.goodBuckets))
	for _, b := range n.goodBuckets {
		e.I64(b)
	}
	e.I64(n.dupFlits)
	e.I64(n.dupPackets)
	e.I64(n.lastProgress)
	e.I64(n.lastDelivery)

	e.Bool(n.measuring)
	e.I64(n.measureStart)
	e.I64(n.deliveredFlits)
	n.latency.SaveState(e)
	n.srcQueue.SaveState(e)
	n.completion.SaveState(e)

	e.I64(n.nextAudit)
	e.I64(n.nextTelemetry)

	e.Bool(n.rel != nil)
	if n.rel != nil {
		n.rel.SaveState(e)
	}
	e.Bool(n.tele != nil)
	if n.tele != nil {
		n.tele.SaveState(e)
	}

	traffic.SaveState(e, n.gens)
	e.Int(len(n.pes))
	for _, p := range n.pes {
		p.mode.SaveState(e)
		pending := p.backlog[p.head:]
		e.Int(len(pending))
		for _, f := range pending {
			c.Encode(e, f)
		}
	}

	for _, r := range n.routers {
		r.SaveState(e, c)
	}
	e.Int(len(n.conns))
	for _, conn := range n.conns {
		conn.SaveState(e, c)
	}
}

// LoadState restores state written by SaveState into a network freshly
// built by New from the same Config. Failures surface through the
// decoder's sticky error; the network must be discarded if Err is
// non-nil afterwards (state may be partially applied, never silently
// wrong).
func (n *Network) LoadState(d *snapshot.Decoder) {
	if n.cycle != 0 || n.generated != 0 {
		d.Corruptf("loading network state into a stepped network")
		return
	}

	n.cycle = d.I64()
	n.nextPacketID = d.U64()
	n.generated = d.I64()
	n.deliveredAll = d.I64()
	n.genFlits = d.I64()
	n.delFlitsAll = d.I64()
	n.dropFlitsAll = d.I64()
	n.backlogFlits = d.I64()
	if d.Err() != nil {
		return
	}
	if n.cycle < 0 || n.generated < 0 || n.genFlits < 0 {
		d.Corruptf("negative network counters")
		return
	}

	byID := n.tracer.LoadState(d)
	if d.Err() != nil {
		return
	}
	// Decoded flits draw from the pool of their owning container's shard;
	// pools are empty on a fresh network, so Get falls through to plain
	// allocation either way — the pool choice never affects behavior.
	c := &flit.Codec{Records: byID}

	n.broken.LoadState(d)
	n.schedule.LoadState(d)
	nf := d.SliceLen(8)
	for i := 0; i < nf; i++ {
		n.faultLog = append(n.faultLog, fault.LoadEvent(d))
		n.faultDrops = append(n.faultDrops, loadDrops(d))
		if d.Err() != nil {
			return
		}
	}
	n.drops = loadDrops(d)

	nb := d.SliceLen(8)
	for i := 0; i < nb; i++ {
		n.buckets = append(n.buckets, d.I64())
	}
	ng := d.SliceLen(8)
	if ng > 0 && n.rel == nil {
		d.Corruptf("goodput buckets present without the reliability protocol")
		return
	}
	for i := 0; i < ng; i++ {
		n.goodBuckets = append(n.goodBuckets, d.I64())
	}
	n.dupFlits = d.I64()
	n.dupPackets = d.I64()
	n.lastProgress = d.I64()
	n.lastDelivery = d.I64()

	n.measuring = d.Bool()
	n.measureStart = d.I64()
	n.deliveredFlits = d.I64()
	n.latency.LoadState(d)
	n.srcQueue.LoadState(d)
	n.completion.LoadState(d)

	n.nextAudit = d.I64()
	n.nextTelemetry = d.I64()

	if rel := d.Bool(); d.Err() == nil && rel != (n.rel != nil) {
		d.Corruptf("snapshot reliability mode does not match configuration")
		return
	}
	if n.rel != nil {
		n.rel.LoadState(d)
	}
	if tele := d.Bool(); d.Err() == nil && tele != (n.tele != nil) {
		d.Corruptf("snapshot telemetry mode does not match configuration")
		return
	}
	if n.tele != nil {
		n.tele.LoadState(d)
	}

	traffic.LoadState(d, n.gens)
	np := d.SliceLen(32)
	if d.Err() == nil && np != len(n.pes) {
		d.Corruptf("snapshot has %d processing elements, config built %d", np, len(n.pes))
		return
	}
	var backlog int64
	for _, p := range n.pes {
		p.mode.LoadState(d)
		k := d.SliceLen(8)
		if d.Err() != nil {
			return
		}
		p.backlog = p.backlog[:0]
		p.head = 0
		for j := 0; j < k; j++ {
			p.backlog = append(p.backlog, c.Decode(d))
		}
		backlog += int64(k)
	}
	if d.Err() == nil && backlog != n.backlogFlits {
		d.Corruptf("backlog ledger %d does not match %d serialized flits", n.backlogFlits, backlog)
		return
	}

	for _, r := range n.routers {
		r.LoadState(d, c)
		if d.Err() != nil {
			return
		}
	}
	nc := d.SliceLen(2)
	if d.Err() == nil && nc != len(n.conns) {
		d.Corruptf("snapshot has %d links, config built %d", nc, len(n.conns))
		return
	}
	for _, conn := range n.conns {
		conn.LoadState(d, c)
		if d.Err() != nil {
			return
		}
	}
	if n.isLong != nil {
		// Rebuild the multi-cycle D2D advance list from the restored pipe
		// state: every long conn with traffic in transit (or a recovering
		// serializer) must keep advancing from the first resumed cycle.
		n.longActive = n.longActive[:0]
		for c := range n.conns {
			n.longOn[c] = false
			if n.isLong[c] && !n.conns[c].Quiescent() {
				n.longOn[c] = true
				n.longActive = append(n.longActive, c)
			}
		}
	}

	// Cross-check flit conservation before declaring the load good: the
	// CRC guards the bytes, this guards the semantics (a snapshot from a
	// structurally different run mislabeled as compatible).
	var buffered, inPipes int64
	for _, r := range n.routers {
		buffered += int64(r.BufferedFlits())
	}
	for _, conn := range n.conns {
		inPipes += int64(conn.Flit.Occupancy())
	}
	if total := n.delFlitsAll + n.dropFlitsAll + n.backlogFlits + buffered + inPipes; total != n.genFlits {
		d.Corruptf("flit conservation violated on load: generated %d, accounted %d", n.genFlits, total)
		return
	}

	// Wake the gated kernel whole. The snapshot settled every router to
	// cycle-1, so lastRun picks up there and the first resumed cycle ticks
	// everything once; idle routers fall back out of the active set
	// immediately, re-converging to the original run's set with identical
	// state (an idle tick and a skipped-then-settled cycle are equivalent).
	// The SoA kernel does the same through its bitsets, then rebuilds the
	// derived hot-state mirror, which the routers' LoadState bypassed.
	if n.gatedKernel() {
		if n.active != nil {
			for id := range n.active {
				n.active[id] = true
				n.nextActive[id] = false
			}
		} else {
			n.activeBits.SetFirst(len(n.routers))
			n.nextActiveBits.ClearAll()
		}
		for id := range n.lastRun {
			n.lastRun[id] = n.cycle - 1
		}
		for i := range n.connMark {
			n.connMark[i] = -1
		}
		if n.hot != nil {
			n.hot.Resync()
		}
		if n.brokenBits != nil {
			// Re-derive the fault mask from the restored runtime fault log
			// (construction covered only the pre-installed Config.Faults).
			for _, ev := range n.faultLog {
				n.brokenBits.Set(ev.Fault.Node)
			}
			n.markSeveredBroken()
		}
	}
}

// Restore builds a network from cfg and loads a snapshot into it,
// returning the decoder's final verdict (including trailing-byte
// detection). cfg must describe the run that produced the snapshot;
// kernel-selection fields (ReferenceKernel, SoAKernel, Shards, Workers)
// are free to differ — the snapshot is kernel-canonical.
func Restore(cfg Config, d *snapshot.Decoder) (*Network, error) {
	n := New(cfg)
	n.LoadState(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return n, nil
}

func saveDrops(e *snapshot.Encoder, b DropBreakdown) {
	e.I64(b.Unroutable)
	e.I64(b.InFlight)
	e.I64(b.DeadDrain)
}

func loadDrops(d *snapshot.Decoder) DropBreakdown {
	return DropBreakdown{
		Unroutable: d.I64(),
		InFlight:   d.I64(),
		DeadDrain:  d.I64(),
	}
}
