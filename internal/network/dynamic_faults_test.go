package network

import (
	"strings"
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// dynamicFaultConfig is the acceptance scenario from the paper's
// graceful-degradation experiments: an 8x8 mesh under uniform traffic with
// one critical-class fault striking a central node mid-measurement. The
// conservation auditor runs every 64 cycles throughout.
func dynamicFaultConfig(build func(int, *router.RouteEngine) router.Router, seed uint64, events []fault.Event) Config {
	return Config{
		Topo:            topology.NewMesh(8, 8),
		Algorithm:       routing.XY,
		Build:           build,
		Traffic:         traffic.Config{Pattern: traffic.Uniform, Rate: 0.25, FlitsPerPacket: 4},
		WarmupPackets:   500,
		MeasurePackets:  4000,
		InactivityLimit: 1000,
		MaxCycles:       400_000,
		Seed:            seed,
		AuditEvery:      64,
		Schedule:        fault.NewSchedule(events),
	}
}

func centralCrossbarFault(cycle int64) []fault.Event {
	return []fault.Event{{
		Cycle: cycle,
		Fault: fault.Fault{Node: 27, Component: fault.Crossbar, Module: fault.RowModule},
	}}
}

// TestRuntimeFaultRoCoRecovers: a crossbar fault killing one RoCo module
// mid-run must degrade gracefully — resident fragments are dropped, upstream
// grants into the dead module are hunted down, and delivery throughput
// recovers within a bounded, measured number of cycles. The run drains
// fully (no watchdog) and the periodic conservation audit holds throughout.
func TestRuntimeFaultRoCoRecovers(t *testing.T) {
	res := New(dynamicFaultConfig(rocoBuilder, 2, centralCrossbarFault(800))).Run()
	if res.Watchdog != nil {
		t.Fatalf("RoCo should drain after a module fault, but the watchdog fired:\n%s", res.Watchdog)
	}
	if len(res.FaultLog) != 1 {
		t.Fatalf("FaultLog has %d records, want 1", len(res.FaultLog))
	}
	rec := res.FaultLog[0]
	if rec.Event.Cycle != 800 || rec.Event.Fault.Node != 27 {
		t.Fatalf("fault record %+v does not match the scheduled event", rec.Event)
	}
	d := rec.Degradation
	if d.PreRate <= 0 {
		t.Fatalf("pre-fault delivery rate %v must be positive mid-measurement", d.PreRate)
	}
	if !d.Recovered {
		t.Fatalf("throughput never recovered: %+v", d)
	}
	if d.RecoveryCycles <= 0 || d.RecoveryCycles > 1000 {
		t.Fatalf("recovery took %d cycles, want a small finite bound", d.RecoveryCycles)
	}
	if d.FloorRate >= d.PreRate {
		t.Errorf("fault left no dent: floor %v >= pre-fault %v", d.FloorRate, d.PreRate)
	}
	if res.DroppedFlits == 0 || res.BrokenPackets == 0 {
		t.Errorf("a mid-run module fault must break resident packets (dropped=%d broken=%d)",
			res.DroppedFlits, res.BrokenPackets)
	}
	if c := res.Summary.Completion; c <= 0.9 || c >= 1 {
		t.Errorf("completion %v, want high-but-lossy after losing one module", c)
	}
}

// TestRuntimeFaultGenericBaselineWatchdog: the same scenario on the generic
// baseline wedges — a packet VC-granted into the node that dies before any
// of its flits stream holds its channel forever, because the baseline has no
// hardware to revoke grants into dead neighbors. The run must still
// terminate (inactivity rule) and produce a structured watchdog diagnostic
// naming the stuck packets, and conservation must still hold: the wedged
// flits are accounted for as buffered, not lost.
func TestRuntimeFaultGenericBaselineWatchdog(t *testing.T) {
	res := New(dynamicFaultConfig(genericBuilder, 2, centralCrossbarFault(800))).Run()
	wd := res.Watchdog
	if wd == nil {
		t.Fatal("generic baseline should wedge on a granted-but-unstreamed packet, but the run drained")
	}
	if wd.TotalStuck == 0 || len(wd.Stuck) == 0 {
		t.Fatalf("watchdog fired with no stuck flits: %+v", wd)
	}
	if wd.InactiveFor < 1000 {
		t.Errorf("watchdog fired after only %d inactive cycles (limit 1000)", wd.InactiveFor)
	}
	if len(wd.Faults) != 1 || wd.Faults[0].Fault.Node != 27 {
		t.Errorf("watchdog should cite the installed fault, got %+v", wd.Faults)
	}
	out := wd.String()
	for _, want := range []string{"watchdog", "node 27", "stuck"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, out)
		}
	}
	for _, s := range wd.Stuck {
		if s.StallAge < 1000 {
			t.Errorf("reported stuck flit %+v younger than the inactivity window", s)
		}
	}
}

// TestRuntimeFaultMatrixConservation drives every router kind through a
// mid-run fault of every component class on a small mesh with a tight audit
// interval. The audit panics on any conservation violation, so completing
// the matrix is the assertion; beyond that every run must either drain or
// explain itself with a watchdog report.
func TestRuntimeFaultMatrixConservation(t *testing.T) {
	builders := map[string]struct {
		build func(int, *router.RouteEngine) router.Router
		alg   routing.Algorithm
	}{
		"generic":       {genericBuilder, routing.XY},
		"pathsensitive": {psBuilder, routing.Adaptive},
		"roco":          {rocoBuilder, routing.Adaptive},
		"pdr":           {pdrBuilder, routing.XY},
	}
	for name, b := range builders {
		for _, comp := range fault.AllComponents() {
			cfg := smokeConfig(b.alg, traffic.Uniform, 0.20, 9)
			cfg.Build = b.build
			cfg.InactivityLimit = 800
			cfg.AuditEvery = 16
			cfg.Schedule = fault.NewSchedule([]fault.Event{{
				Cycle: 400,
				Fault: fault.Fault{Node: 5, Component: comp, Module: fault.ColumnModule, VC: 2},
			}})
			res := New(cfg).Run()
			if len(res.FaultLog) != 1 {
				t.Errorf("%s/%s: fault never installed", name, comp)
			}
			if res.Watchdog == nil && res.Summary.Completion <= 0 {
				t.Errorf("%s/%s: drained yet delivered nothing", name, comp)
			}
		}
	}
}

// TestRuntimeFaultEqualsStaticFault: a fault scheduled at cycle 0 must
// behave like the same fault configured statically — the live-installation
// path reduces to the pre-wired path when there is no resident traffic.
func TestRuntimeFaultEqualsStaticFault(t *testing.T) {
	flt := fault.Fault{Node: 6, Component: fault.Crossbar, Module: fault.RowModule}

	static := smokeConfig(routing.Adaptive, traffic.Uniform, 0.15, 11)
	static.Build = rocoBuilder
	static.Faults = []fault.Fault{flt}
	static.InactivityLimit = 800

	dynamic := smokeConfig(routing.Adaptive, traffic.Uniform, 0.15, 11)
	dynamic.Build = rocoBuilder
	dynamic.Schedule = fault.NewSchedule([]fault.Event{{Cycle: 0, Fault: flt}})
	dynamic.InactivityLimit = 800
	dynamic.AuditEvery = 32

	s := New(static).Run()
	d := New(dynamic).Run()
	if s.Summary.DeliveredPkts != d.Summary.DeliveredPkts ||
		s.Summary.AvgLatency != d.Summary.AvgLatency {
		t.Errorf("cycle-0 scheduled fault diverged from static fault: delivered %d vs %d, latency %v vs %v",
			s.Summary.DeliveredPkts, d.Summary.DeliveredPkts, s.Summary.AvgLatency, d.Summary.AvgLatency)
	}
}
