package network

import (
	"testing"

	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/router/generic"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

func genericBuilder(id int, e *router.RouteEngine) router.Router { return generic.New(id, e) }

func smokeConfig(alg routing.Algorithm, pattern traffic.Pattern, rate float64, seed uint64) Config {
	return Config{
		Topo:      topology.NewMesh(4, 4),
		Algorithm: alg,
		Build:     genericBuilder,
		Traffic: traffic.Config{
			Pattern:        pattern,
			Rate:           rate,
			FlitsPerPacket: 4,
		},
		WarmupPackets:  200,
		MeasurePackets: 2000,
		Seed:           seed,
	}
}

func TestGenericDrainsUniformXY(t *testing.T) {
	for _, alg := range routing.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res := New(smokeConfig(alg, traffic.Uniform, 0.10, 42)).Run()
			if res.Saturated {
				t.Fatalf("low-load run saturated: %+v", res.Summary)
			}
			if got := res.Summary.Completion; got != 1 {
				t.Fatalf("completion = %v, want 1 (undelivered packets at low load => lost or deadlocked)", got)
			}
			if res.Summary.AvgLatency < 4 || res.Summary.AvgLatency > 60 {
				t.Fatalf("implausible avg latency %v cycles for a 4x4 mesh at 10%% load", res.Summary.AvgLatency)
			}
			t.Logf("%s: %s", alg, res.Summary)
		})
	}
}

func TestGenericHighLoadStillDelivers(t *testing.T) {
	for _, alg := range routing.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			cfg := smokeConfig(alg, traffic.Uniform, 0.35, 7)
			cfg.MeasurePackets = 4000
			res := New(cfg).Run()
			if res.Summary.Completion < 0.99 {
				t.Fatalf("completion = %v at 35%% load; deadlock or livelock suspected", res.Summary.Completion)
			}
			t.Logf("%s: %s", alg, res.Summary)
		})
	}
}

func TestGenericTransposeDrains(t *testing.T) {
	res := New(smokeConfig(routing.XY, traffic.Transpose, 0.10, 3)).Run()
	if res.Summary.Completion != 1 {
		t.Fatalf("completion = %v, want 1", res.Summary.Completion)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(smokeConfig(routing.Adaptive, traffic.Uniform, 0.20, 99)).Run()
	b := New(smokeConfig(routing.Adaptive, traffic.Uniform, 0.20, 99)).Run()
	if a.Summary.AvgLatency != b.Summary.AvgLatency || a.TotalCycles != b.TotalCycles {
		t.Fatalf("same seed diverged: %v vs %v cycles %d vs %d",
			a.Summary.AvgLatency, b.Summary.AvgLatency, a.TotalCycles, b.TotalCycles)
	}
	c := New(smokeConfig(routing.Adaptive, traffic.Uniform, 0.20, 100)).Run()
	if a.TotalCycles == c.TotalCycles && a.Summary.AvgLatency == c.Summary.AvgLatency {
		t.Fatalf("different seeds produced identical runs; RNG plumbing broken")
	}
}
