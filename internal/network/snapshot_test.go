package network

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/trace"
	"github.com/rocosim/roco/internal/traffic"
)

// ckptConfig is the checkpoint-equivalence workload: an 8x8 mesh under a
// Poisson runtime-fault schedule with tracing, telemetry, and audits all
// armed, so a resumed run must reproduce every observable series — not
// just the summary numbers.
func ckptConfig(build func(int, *router.RouteEngine) router.Router, seed uint64, reliable bool) Config {
	return Config{
		Topo:            topology.NewMesh(8, 8),
		Algorithm:       routing.XY,
		Build:           build,
		Traffic:         traffic.Config{Pattern: traffic.Uniform, Rate: 0.15, FlitsPerPacket: 4},
		WarmupPackets:   200,
		MeasurePackets:  1500,
		InactivityLimit: 1500,
		MaxCycles:       400_000,
		Seed:            seed,
		AuditEvery:      64,
		TelemetryEvery:  128,
		TraceEvery:      7,
		Reliable:        reliable,
		Schedule:        fault.PoissonSchedule(fault.NonCritical, 60, 400, 64, core.NumVCs, stats.NewRNG(seed^0xfa17)),
	}
}

// checkpointCycle is where the equivalence runs snapshot: past warm-up and
// the first fault installations, well before drain.
const checkpointCycle = 100

// runCheckpointed runs cfg to completion, snapshotting at checkpointCycle
// on the way, and returns the result, the traces, and the snapshot frame.
func runCheckpointed(t *testing.T, cfg Config) (Result, []*trace.Record, []byte) {
	t.Helper()
	n := New(cfg)
	var frame bytes.Buffer
	res, interrupted := n.RunHooked(func() bool {
		if n.Cycle() == checkpointCycle {
			e := snapshot.NewEncoder()
			n.SaveState(e)
			if _, err := e.WriteTo(&frame); err != nil {
				t.Fatalf("writing snapshot frame: %v", err)
			}
		}
		return false
	})
	if interrupted {
		t.Fatal("RunHooked reported an interruption with a non-stopping hook")
	}
	if frame.Len() == 0 {
		t.Fatalf("run finished in %d cycles, before checkpoint cycle %d", res.TotalCycles, checkpointCycle)
	}
	return res, n.Traces(), frame.Bytes()
}

// resume restores a snapshot frame under cfg and runs it to completion.
func resume(t *testing.T, cfg Config, frame []byte) (Result, []*trace.Record) {
	t.Helper()
	d, err := snapshot.Read(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("reading snapshot frame: %v", err)
	}
	n, err := Restore(cfg, d)
	if err != nil {
		t.Fatalf("restoring network: %v", err)
	}
	return n.Run(), n.Traces()
}

// TestCheckpointResumeEquivalence is the bit-identity contract of
// checkpoint/resume: for every kernel and both Reliable modes, a run that
// snapshots mid-flight must (a) finish identically to one that never
// snapshots, and (b) a network restored from that snapshot must finish
// identically too — Result, fault log, telemetry series, and packet
// traces all bit-equal.
func TestCheckpointResumeEquivalence(t *testing.T) {
	kernels := []struct {
		name  string
		apply func(*Config)
	}{
		{"reference", func(c *Config) { c.ReferenceKernel = true }},
		{"gated", func(c *Config) { c.Shards = 1 }},
		{"sharded", func(c *Config) { c.Shards = 4; c.Workers = 4 }},
		{"soa", func(c *Config) { c.SoAKernel = true }},
		{"soa-sharded", func(c *Config) { c.SoAKernel = true; c.Shards = 4; c.Workers = 4 }},
	}
	for _, reliable := range []bool{false, true} {
		for _, k := range kernels {
			k, reliable := k, reliable
			name := k.name
			if reliable {
				name += "/reliable"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				const seed = 41
				base := ckptConfig(rocoBuilder, seed, reliable)
				k.apply(&base)
				n0 := New(base)
				want := n0.Run()
				wantTraces := n0.Traces()
				if len(want.FaultLog) == 0 {
					t.Fatal("fault schedule installed no faults; test is vacuous")
				}
				if want.TotalCycles <= checkpointCycle {
					t.Fatalf("run too short (%d cycles) to checkpoint at %d", want.TotalCycles, checkpointCycle)
				}

				got, gotTraces, frame := runCheckpointed(t, base)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("snapshotting mid-run perturbed the results\n got: %+v\nwant: %+v", got.Summary, want.Summary)
				}
				if !reflect.DeepEqual(gotTraces, wantTraces) {
					t.Fatal("snapshotting mid-run perturbed the packet traces")
				}

				resumed, resumedTraces := resume(t, base, frame)
				if !reflect.DeepEqual(resumed, want) {
					t.Fatalf("resumed run diverged from uninterrupted run\n resumed: %+v\n    want: %+v", resumed.Summary, want.Summary)
				}
				if !reflect.DeepEqual(resumedTraces, wantTraces) {
					t.Fatal("resumed run diverged on packet traces")
				}
			})
		}
	}
}

// TestCheckpointCrossKernelResume pins the kernel-canonical property of
// the byte stream: a snapshot taken under one kernel resumes under any
// other with bit-identical results (the settle-before-save normalization
// erases which routers were dormant).
func TestCheckpointCrossKernelResume(t *testing.T) {
	const seed = 17
	ref := ckptConfig(rocoBuilder, seed, true)
	ref.ReferenceKernel = true
	want := New(ref).Run()
	if len(want.FaultLog) == 0 {
		t.Fatal("fault schedule installed no faults; test is vacuous")
	}
	_, _, frame := runCheckpointed(t, ref)

	for _, k := range []struct {
		name  string
		apply func(*Config)
	}{
		{"gated", func(c *Config) { c.ReferenceKernel = false; c.Shards = 1 }},
		{"sharded", func(c *Config) { c.ReferenceKernel = false; c.Shards = 4; c.Workers = 4 }},
		{"soa", func(c *Config) { c.ReferenceKernel = false; c.SoAKernel = true }},
	} {
		cfg := ckptConfig(rocoBuilder, seed, true)
		k.apply(&cfg)
		resumed, _ := resume(t, cfg, frame)
		if !reflect.DeepEqual(resumed, want) {
			t.Fatalf("%s resume of a reference-kernel snapshot diverged\n resumed: %+v\n    want: %+v",
				k.name, resumed.Summary, want.Summary)
		}
	}

	// And the reverse direction: sharded snapshot, reference resume.
	sh := ckptConfig(rocoBuilder, seed, true)
	sh.Shards = 4
	sh.Workers = 4
	_, _, frame = runCheckpointed(t, sh)
	resumed, _ := resume(t, ref, frame)
	if !reflect.DeepEqual(resumed, want) {
		t.Fatalf("reference resume of a sharded snapshot diverged\n resumed: %+v\n    want: %+v",
			resumed.Summary, want.Summary)
	}

	// SoA snapshot, reference resume: the settle-before-save plus the
	// derived (never serialized) hot state keep the byte stream identical
	// to the other kernels'.
	so := ckptConfig(rocoBuilder, seed, true)
	so.SoAKernel = true
	_, _, frame = runCheckpointed(t, so)
	resumed, _ = resume(t, ref, frame)
	if !reflect.DeepEqual(resumed, want) {
		t.Fatalf("reference resume of an SoA snapshot diverged\n resumed: %+v\n    want: %+v",
			resumed.Summary, want.Summary)
	}
}

// TestCheckpointAllRouterKinds runs the save/resume equivalence across
// every router microarchitecture (each has its own serialized layout).
func TestCheckpointAllRouterKinds(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
		{"pdr", pdrBuilder},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			cfg := ckptConfig(b.build, 29, true)
			cfg.Shards = 2
			cfg.Workers = 2
			want := New(cfg).Run()
			_, _, frame := runCheckpointed(t, cfg)
			resumed, _ := resume(t, cfg, frame)
			if !reflect.DeepEqual(resumed, want) {
				t.Fatalf("%s resumed run diverged\n resumed: %+v\n    want: %+v", b.name, resumed.Summary, want.Summary)
			}
		})
	}
}

// TestCheckpointResumeRejectsWrongConfig pins the semantic-validation
// paths: a snapshot loaded under a structurally different configuration
// must poison the decoder with a typed corruption error, not resume into
// silently wrong state.
func TestCheckpointResumeRejectsWrongConfig(t *testing.T) {
	cfg := ckptConfig(rocoBuilder, 7, true)
	_, _, frame := runCheckpointed(t, cfg)

	mutations := []struct {
		name  string
		apply func(*Config)
	}{
		{"smaller mesh", func(c *Config) {
			c.Topo = topology.NewMesh(4, 4)
			c.Schedule = fault.PoissonSchedule(fault.NonCritical, 60, 400, 16, core.NumVCs, stats.NewRNG(7^0xfa17))
		}},
		{"protocol off", func(c *Config) { c.Reliable = false }},
		{"telemetry off", func(c *Config) { c.TelemetryEvery = 0 }},
		{"no fault schedule", func(c *Config) { c.Schedule = fault.Schedule{} }},
		{"different workload", func(c *Config) { c.Traffic.Pattern = traffic.SelfSimilar }},
	}
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			bad := ckptConfig(rocoBuilder, 7, true)
			m.apply(&bad)
			d, err := snapshot.Read(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("reading snapshot frame: %v", err)
			}
			if _, err := Restore(bad, d); err == nil {
				t.Fatal("restore under a mismatched configuration succeeded")
			}
		})
	}
}
