package network

import (
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// shardConfig is a 16x16 run with a Poisson runtime-fault schedule and the
// reliability protocol armed — the hardest determinism surface the kernel
// has: retransmission timers, duplicate suppression, broken-packet
// registration, and fault recovery all in play while shards tick
// concurrently.
func shardConfig(build func(int, *router.RouteEngine) router.Router, seed uint64) Config {
	return Config{
		Topo:            topology.NewMesh(16, 16),
		Algorithm:       routing.XY,
		Build:           build,
		Traffic:         traffic.Config{Pattern: traffic.Uniform, Rate: 0.15, FlitsPerPacket: 4},
		WarmupPackets:   300,
		MeasurePackets:  2000,
		InactivityLimit: 1500,
		MaxCycles:       400_000,
		Seed:            seed,
		AuditEvery:      64,
		Reliable:        true,
		Schedule:        fault.PoissonSchedule(fault.NonCritical, 150, 700, 256, core.NumVCs, stats.NewRNG(seed^0xfa17)),
	}
}

// TestShardedKernelMatchesReference is the determinism contract of the
// sharded parallel kernel: for every router kind, Shards ∈ {1, 2, 4} (with
// enough workers to actually run shards concurrently) must produce Results
// bit-identical to the sequential reference kernel — same latency
// histogram, same per-router activity, same fault log, same reliability
// outcomes. Run under -race in make check, this doubles as the data-race
// proof of the color-phased schedule.
func TestShardedKernelMatchesReference(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			const seed = 11
			ref := shardConfig(b.build, seed)
			ref.ReferenceKernel = true
			want := New(ref).Run()
			if len(want.FaultLog) == 0 {
				t.Fatal("fault schedule installed no faults; test is vacuous")
			}
			for _, shards := range []int{1, 2, 4} {
				cfg := shardConfig(b.build, seed)
				cfg.Shards = shards
				cfg.Workers = shards
				got := New(cfg).Run()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Shards=%d diverged from reference\n sharded: %+v\n     ref: %+v",
						shards, got.Summary, want.Summary)
				}
			}
		})
	}
}

// TestShardedKernelAllAlgorithms sweeps the routing disciplines (the
// adaptive lookahead is the kernel's only dynamic distance-1 read; O1TURN
// exercises the per-PE mode RNG) at Shards=4 against Shards=1, faults off,
// on all three router kinds.
func TestShardedKernelAllAlgorithms(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
	}
	for _, alg := range []routing.Algorithm{routing.XY, routing.XYYX, routing.Adaptive} {
		for _, b := range builders {
			alg, b := alg, b
			t.Run(alg.String()+"/"+b.name, func(t *testing.T) {
				t.Parallel()
				base := shardConfig(b.build, 23)
				base.Algorithm = alg
				base.Schedule = fault.Schedule{}
				base.Reliable = false
				want := New(base).Run()
				cfg := shardConfig(b.build, 23)
				cfg.Algorithm = alg
				cfg.Schedule = fault.Schedule{}
				cfg.Reliable = false
				cfg.Shards = 4
				cfg.Workers = 4
				got := New(cfg).Run()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s Shards=4 diverged from Shards=1\n sharded: %+v\n  serial: %+v",
						alg, got.Summary, want.Summary)
				}
			})
		}
	}
}

// TestShardedKernelWorkerCountIrrelevant pins the shards/workers split:
// the shard count fixes the results, the worker count must not.
func TestShardedKernelWorkerCountIrrelevant(t *testing.T) {
	base := shardConfig(rocoBuilder, 5)
	base.Shards = 4
	base.Workers = 1
	want := New(base).Run()
	for _, workers := range []int{2, 3, 0} {
		cfg := shardConfig(rocoBuilder, 5)
		cfg.Shards = 4
		cfg.Workers = workers
		got := New(cfg).Run()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d changed the results of a Shards=4 run", workers)
		}
	}
}
