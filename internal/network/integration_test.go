package network

import (
	"testing"

	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// TestAllRoutersAllTrafficDrain sweeps the full (router x algorithm x
// traffic) matrix at low load; every combination must deliver everything.
func TestAllRoutersAllTrafficDrain(t *testing.T) {
	patterns := []traffic.Pattern{traffic.Uniform, traffic.Transpose, traffic.SelfSimilar, traffic.MPEG2, traffic.BitComplement}
	for name, build := range allBuilders {
		for _, alg := range routing.Algorithms {
			for _, p := range patterns {
				cfg := smokeConfig(alg, p, 0.08, 97)
				cfg.Build = build
				cfg.MeasurePackets = 1500
				cfg.MaxCycles = 400_000
				res := New(cfg).Run()
				if res.Summary.Completion != 1 {
					t.Errorf("%s/%s/%s: completion %.3f", name, alg, p, res.Summary.Completion)
				}
			}
		}
	}
}

// TestEightByEightMediumLoad exercises the paper's mesh size end to end.
func TestEightByEightMediumLoad(t *testing.T) {
	for name, build := range allBuilders {
		cfg := Config{
			Topo:          topology.NewMesh(8, 8),
			Algorithm:     routing.XY,
			Build:         build,
			Traffic:       traffic.Config{Pattern: traffic.Uniform, Rate: 0.25, FlitsPerPacket: 4},
			WarmupPackets: 500, MeasurePackets: 6000,
			Seed: 12,
		}
		res := New(cfg).Run()
		if res.Summary.Completion != 1 {
			t.Errorf("%s: completion %.3f at 25%% load on 8x8", name, res.Summary.Completion)
		}
		if res.Summary.AvgLatency < 10 || res.Summary.AvgLatency > 80 {
			t.Errorf("%s: implausible 8x8 latency %.2f", name, res.Summary.AvgLatency)
		}
	}
}

// TestZeroLoadLatency: at vanishing load, per-hop cost is ~2 cycles plus
// serialization; routers with early ejection save 2 cycles at the
// destination.
func TestZeroLoadLatency(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0.01, 5)
	cfg.MeasurePackets = 500
	gen := New(cfg).Run().Summary.AvgLatency

	cfgR := rocoConfig(routing.XY, traffic.Uniform, 0.01, 5)
	cfgR.MeasurePackets = 500
	rc := New(cfgR).Run().Summary.AvgLatency

	diff := gen - rc
	if diff < 1 || diff > 3.5 {
		t.Errorf("early ejection should save ~2 cycles at zero load; generic=%.2f roco=%.2f", gen, rc)
	}
}

// TestEnergyActivityConservation: flit conservation invariants over the
// measured window — every delivered flit crossed (hops) links, buffer
// reads never exceed writes.
func TestEnergyActivityConservation(t *testing.T) {
	cfg := rocoConfig(routing.XY, traffic.Uniform, 0.15, 42)
	res := New(cfg).Run()
	a := res.Activity
	// Reads may slightly exceed writes: the measurement window opens at the
	// warm-up boundary, and flits buffered just before it are read just
	// after. The slack is bounded by the network's in-flight population.
	if a.BufferReads > a.BufferWrites+60*16 {
		t.Errorf("reads %d exceed writes %d beyond in-flight slack", a.BufferReads, a.BufferWrites)
	}
	if a.CrossbarTraversals != a.BufferReads {
		t.Errorf("every buffer read must cross the switch: reads=%d xbar=%d", a.BufferReads, a.CrossbarTraversals)
	}
	if a.SAGrants != a.CrossbarTraversals {
		t.Errorf("switch grants %d != traversals %d", a.SAGrants, a.CrossbarTraversals)
	}
	if a.VAGrants > a.VAOps {
		t.Error("more VA grants than operations")
	}
}

// TestCustomTopologySizes: the simulator is not hard-wired to 8x8.
func TestCustomTopologySizes(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 5}, {6, 4}} {
		cfg := Config{
			Topo:          topology.NewMesh(dims[0], dims[1]),
			Algorithm:     routing.XY,
			Build:         rocoBuilder,
			Traffic:       traffic.Config{Pattern: traffic.Uniform, Rate: 0.1, FlitsPerPacket: 4},
			WarmupPackets: 100, MeasurePackets: 1000,
			Seed: 3,
		}
		res := New(cfg).Run()
		if res.Summary.Completion != 1 {
			t.Errorf("%dx%d: completion %.3f", dims[0], dims[1], res.Summary.Completion)
		}
	}
}

// TestSingleFlitPackets: HeadTail packets flow through all machinery.
func TestSingleFlitPackets(t *testing.T) {
	for name, build := range allBuilders {
		cfg := smokeConfig(routing.XY, traffic.Uniform, 0.10, 8)
		cfg.Build = build
		cfg.Traffic.FlitsPerPacket = 1
		cfg.MeasurePackets = 2000
		res := New(cfg).Run()
		if res.Summary.Completion != 1 {
			t.Errorf("%s: single-flit completion %.3f", name, res.Summary.Completion)
		}
	}
}

// TestLongPackets: 8-flit packets stress wormhole spanning multiple
// routers.
func TestLongPackets(t *testing.T) {
	for name, build := range allBuilders {
		cfg := smokeConfig(routing.Adaptive, traffic.Uniform, 0.16, 9)
		cfg.Build = build
		cfg.Traffic.FlitsPerPacket = 8
		cfg.MeasurePackets = 2000
		res := New(cfg).Run()
		if res.Summary.Completion != 1 {
			t.Errorf("%s: 8-flit completion %.3f", name, res.Summary.Completion)
		}
	}
}

// TestRunCyclesFixedHorizon exercises the fixed-horizon API.
func TestRunCyclesFixedHorizon(t *testing.T) {
	cfg := rocoConfig(routing.XY, traffic.Uniform, 0.2, 10)
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1 << 30 // open-ended generation
	n := New(cfg)
	res := n.RunCycles(2000)
	if res.TotalCycles != 2000 {
		t.Errorf("RunCycles ran %d cycles", res.TotalCycles)
	}
	if res.Summary.DeliveredPkts == 0 {
		t.Error("fixed-horizon run delivered nothing")
	}
}

// TestHotspotBackpressure: the network must survive (not panic, not lose
// flits) when a large share of traffic converges on one node.
func TestHotspotBackpressure(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Hotspot, 0.2, 44)
	cfg.Traffic.HotspotNode = 5
	cfg.Traffic.HotspotFraction = 0.5
	cfg.MeasurePackets = 3000
	cfg.MaxCycles = 300_000
	res := New(cfg).Run()
	if res.Summary.Completion != 1 && !res.Saturated {
		t.Errorf("hotspot run lost traffic without saturating: %.3f", res.Summary.Completion)
	}
}

// TestMaxCyclesCap: a run past saturation must stop at MaxCycles and
// report it.
func TestMaxCyclesCap(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0.9, 51) // far past saturation
	cfg.MeasurePackets = 1 << 30
	cfg.MaxCycles = 3000
	res := New(cfg).Run()
	if !res.Saturated {
		t.Error("run past saturation should report Saturated")
	}
	if res.TotalCycles != 3000 {
		t.Errorf("ran %d cycles, want exactly MaxCycles", res.TotalCycles)
	}
}

// TestQuiescentAfterDrain: a drained network holds no flits anywhere.
func TestQuiescentAfterDrain(t *testing.T) {
	cfg := rocoConfig(routing.XY, traffic.Uniform, 0.1, 52)
	cfg.MeasurePackets = 500
	n := New(cfg)
	n.Run()
	if !n.Quiescent() {
		t.Error("network not quiescent after a drained run")
	}
}

// TestZeroRateRun: an idle network terminates immediately with vacuous
// completion.
func TestZeroRateRun(t *testing.T) {
	cfg := rocoConfig(routing.XY, traffic.Uniform, 0, 53)
	cfg.MeasurePackets = 1
	cfg.MaxCycles = 2000
	res := New(cfg).Run()
	if res.Summary.Completion != 1 {
		t.Errorf("idle completion = %v, want vacuous 1", res.Summary.Completion)
	}
}

// TestWarmupLargerThanMeasure: the measurement window still works when the
// warm-up dominates.
func TestWarmupLargerThanMeasure(t *testing.T) {
	cfg := rocoConfig(routing.XY, traffic.Uniform, 0.1, 54)
	cfg.WarmupPackets = 2000
	cfg.MeasurePackets = 100
	res := New(cfg).Run()
	if res.Summary.GeneratedPkts != 100 || res.Summary.Completion != 1 {
		t.Errorf("measured %d/%v, want 100 generated at completion 1",
			res.Summary.GeneratedPkts, res.Summary.Completion)
	}
}
