package network

import (
	"testing"

	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/traffic"
)

// TestNoDeadlockAtHighLoad runs each wait-graph-capable router at heavy
// load, samples the wait graph periodically, and asserts no channel cycle
// ever forms — the dynamic counterpart of the deadlock-freedom arguments
// in DESIGN.md.
func TestNoDeadlockAtHighLoad(t *testing.T) {
	cases := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"roco", rocoBuilder},
	}
	for _, tc := range cases {
		for _, alg := range routing.Algorithms {
			cfg := smokeConfig(alg, traffic.Uniform, 0.40, 77)
			cfg.Build = tc.build
			cfg.WarmupPackets = 0
			cfg.MeasurePackets = 1 << 30
			n := New(cfg)
			for step := 0; step < 40; step++ {
				for i := 0; i < 50; i++ {
					n.Step()
				}
				if report, found := n.DetectDeadlock(); found {
					t.Fatalf("%s/%s: %s", tc.name, alg, report)
				}
			}
		}
	}
}

// TestDeadlockDetectorFindsInjectedCycle feeds the detector a fabricated
// wait cycle through a stub router and checks it is reported.
func TestDeadlockDetectorFindsInjectedCycle(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0, 1)
	n := New(cfg)
	// Replace router 0 with a stub exposing a synthetic 2-edge cycle.
	stub := &waitStub{edges: []WaitEdge{
		{FromNode: 0, FromVC: 1, ToNode: 1, ToVC: 2},
		{FromNode: 1, FromVC: 2, ToNode: 0, ToVC: 1},
	}}
	n.routers[0] = stubRouter{n.routers[0], stub}
	report, found := n.DetectDeadlock()
	if !found {
		t.Fatal("detector missed an explicit cycle")
	}
	if len(report.Cycle) != 2 {
		t.Fatalf("cycle length %d, want 2 (%s)", len(report.Cycle), report)
	}
	if report.String() == "" {
		t.Error("empty report string")
	}
}

// TestDeadlockDetectorMultiNodeCycle hand-constructs a four-router wait-for
// cycle (0→1→5→4→0 on the 4x4 mesh) plus an acyclic distractor chain hanging
// off it, and checks the detector walks the full loop and reports it closed.
func TestDeadlockDetectorMultiNodeCycle(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0, 1)
	n := New(cfg)
	edges := map[int][]WaitEdge{
		0: {{FromNode: 0, FromVC: 0, ToNode: 1, ToVC: 1}},
		1: {
			{FromNode: 1, FromVC: 1, ToNode: 5, ToVC: 0},
			// Distractor: a wait that leads out of the cycle and dead-ends.
			{FromNode: 1, FromVC: 2, ToNode: 2, ToVC: 0},
		},
		5: {{FromNode: 5, FromVC: 0, ToNode: 4, ToVC: 2}},
		4: {{FromNode: 4, FromVC: 2, ToNode: 0, ToVC: 0}},
	}
	for id, e := range edges {
		n.routers[id] = stubRouter{n.routers[id], &waitStub{edges: e}}
	}
	report, found := n.DetectDeadlock()
	if !found {
		t.Fatal("detector missed a four-node cycle")
	}
	if len(report.Cycle) != 4 {
		t.Fatalf("cycle length %d, want 4 (%s)", len(report.Cycle), report)
	}
	// The reported edges must chain head-to-tail and close the loop.
	for i, e := range report.Cycle {
		next := report.Cycle[(i+1)%len(report.Cycle)]
		if e.ToNode != next.FromNode || e.ToVC != next.FromVC {
			t.Fatalf("edge %d (%+v) does not chain into %+v", i, e, next)
		}
	}
}

// TestDeadlockDetectorIgnoresAcyclicWaits: a long dependency chain without a
// back edge must not be reported — waiting is not deadlock.
func TestDeadlockDetectorIgnoresAcyclicWaits(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0, 1)
	n := New(cfg)
	for i := 0; i < 4; i++ {
		n.routers[i] = stubRouter{n.routers[i], &waitStub{edges: []WaitEdge{
			{FromNode: i, FromVC: 0, ToNode: i + 1, ToVC: 0},
		}}}
	}
	if report, found := n.DetectDeadlock(); found {
		t.Fatalf("false positive on an acyclic chain: %s", report)
	}
}

type waitStub struct{ edges []WaitEdge }

func (w *waitStub) WaitEdges() []WaitEdge { return w.edges }

// stubRouter wraps a real router, overriding only the wait graph.
type stubRouter struct {
	router.Router
	stub *waitStub
}

func (s stubRouter) WaitEdges() []WaitEdge { return s.stub.WaitEdges() }
