package network

import (
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

func rocoBuilder(id int, e *router.RouteEngine) router.Router { return core.New(id, e) }

func rocoConfig(alg routing.Algorithm, pattern traffic.Pattern, rate float64, seed uint64) Config {
	cfg := smokeConfig(alg, pattern, rate, seed)
	cfg.Build = rocoBuilder
	return cfg
}

func TestRoCoDrainsAllAlgorithms(t *testing.T) {
	for _, alg := range routing.Algorithms {
		for _, pattern := range []traffic.Pattern{traffic.Uniform, traffic.Transpose} {
			alg, pattern := alg, pattern
			t.Run(alg.String()+"/"+pattern.String(), func(t *testing.T) {
				res := New(rocoConfig(alg, pattern, 0.10, 21)).Run()
				if res.Saturated {
					t.Fatalf("low-load run saturated: %+v", res.Summary)
				}
				if got := res.Summary.Completion; got != 1 {
					t.Fatalf("completion = %v, want 1", got)
				}
				if res.Summary.AvgLatency < 3 || res.Summary.AvgLatency > 60 {
					t.Fatalf("implausible avg latency %v", res.Summary.AvgLatency)
				}
				t.Logf("%s/%s: %s", alg, pattern, res.Summary)
			})
		}
	}
}

func TestRoCoHighLoadNoDeadlock(t *testing.T) {
	for _, alg := range routing.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			cfg := rocoConfig(alg, traffic.Uniform, 0.38, 5)
			cfg.MeasurePackets = 5000
			res := New(cfg).Run()
			if res.Summary.Completion < 0.99 {
				t.Fatalf("completion = %v at 38%% load; deadlock suspected", res.Summary.Completion)
			}
			t.Logf("%s: %s", alg, res.Summary)
		})
	}
}

func TestRoCoBeatsGenericLatency(t *testing.T) {
	// The headline claim, in miniature: at a moderate load the RoCo router
	// should deliver lower average latency than the generic router.
	for _, alg := range routing.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			g := New(smokeConfig(alg, traffic.Uniform, 0.25, 11)).Run()
			rc := New(rocoConfig(alg, traffic.Uniform, 0.25, 11)).Run()
			if rc.Summary.AvgLatency >= g.Summary.AvgLatency {
				t.Fatalf("RoCo latency %.2f >= generic %.2f under %s",
					rc.Summary.AvgLatency, g.Summary.AvgLatency, alg)
			}
			t.Logf("%s: roco=%.2f generic=%.2f", alg, rc.Summary.AvgLatency, g.Summary.AvgLatency)
		})
	}
}

func TestRoCoEarlyEjectionCounts(t *testing.T) {
	res := New(rocoConfig(routing.XY, traffic.Uniform, 0.10, 2)).Run()
	if res.Activity.EarlyEjections == 0 {
		t.Fatal("no early ejections recorded; the mechanism is not firing")
	}
	if res.Activity.Ejections != 0 {
		t.Fatalf("RoCo recorded %d crossbar ejections; all ejections should be early", res.Activity.Ejections)
	}
}

func TestRoCoGracefulDegradationCriticalFault(t *testing.T) {
	// One crossbar fault in the middle of the mesh: the RoCo network keeps a
	// much larger share of traffic flowing than the generic network, whose
	// afflicted node blocks entirely.
	flts := []fault.Fault{{Node: 5, Component: fault.Crossbar, Module: fault.RowModule}}

	gCfg := smokeConfig(routing.XY, traffic.Uniform, 0.15, 9)
	gCfg.Faults = flts
	gCfg.InactivityLimit = 1000
	g := New(gCfg).Run()

	rCfg := rocoConfig(routing.XY, traffic.Uniform, 0.15, 9)
	rCfg.Faults = flts
	rCfg.InactivityLimit = 1000
	rc := New(rCfg).Run()

	if rc.Summary.Completion <= g.Summary.Completion {
		t.Fatalf("RoCo completion %.3f <= generic %.3f under a row-module crossbar fault",
			rc.Summary.Completion, g.Summary.Completion)
	}
	if rc.Summary.Completion < 0.5 {
		t.Fatalf("RoCo completion %.3f implausibly low for one module fault", rc.Summary.Completion)
	}
	t.Logf("completion: roco=%.3f generic=%.3f", rc.Summary.Completion, g.Summary.Completion)
}

func TestRoCoNonCriticalFaultsFullyRecovered(t *testing.T) {
	// RC and buffer faults are absorbed by double routing and virtual
	// queuing: every packet still completes, with a latency penalty only.
	for _, comp := range []fault.Component{fault.RC, fault.Buffer} {
		comp := comp
		t.Run(comp.String(), func(t *testing.T) {
			cfg := rocoConfig(routing.XY, traffic.Uniform, 0.15, 17)
			cfg.Faults = []fault.Fault{{Node: 5, Component: comp, Module: fault.RowModule, VC: 0}}
			cfg.InactivityLimit = 2000
			res := New(cfg).Run()
			if res.Summary.Completion != 1 {
				t.Fatalf("completion = %v with a %s fault; recovery scheme not working", res.Summary.Completion, comp)
			}
			t.Logf("%s: %s", comp, res.Summary)
		})
	}
}

func TestRoCoColumnModuleFaultBlocksOnlyColumn(t *testing.T) {
	top := topology.NewMesh(4, 4)
	cfg := rocoConfig(routing.XY, traffic.Uniform, 0.0, 1)
	n := New(cfg)
	r := n.Router(5).(*core.Router)
	r.ApplyFault(fault.Fault{Node: 5, Component: fault.VA, Module: fault.ColumnModule})
	if !r.Blocked(core.Col) || r.Blocked(core.Row) {
		t.Fatal("VA fault in column module should block only the column module")
	}
	if r.CanServe(topology.East, topology.West) != true {
		t.Fatal("row module service should survive a column-module fault")
	}
	if r.CanServe(topology.East, topology.North) {
		t.Fatal("column-module service should be blocked")
	}
	if !r.CanServe(topology.East, topology.Local) {
		t.Fatal("early ejection should survive a module fault")
	}
	_ = top
}
