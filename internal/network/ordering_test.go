package network

import (
	"testing"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/traffic"
)

// orderChecker wraps a router to intercept its sink and assert wormhole
// integrity: every packet's flits arrive in sequence order with no
// interleaving gaps, and the tail arrives exactly once.
type orderChecker struct {
	router.Router
	t    *testing.T
	seen map[uint64]int
}

func (o *orderChecker) SetSink(s router.Sink) {
	o.Router.SetSink(func(f *flit.Flit, cycle int64) {
		want := o.seen[f.PacketID]
		if f.Seq != want {
			o.t.Errorf("pkt %d: flit seq %d delivered, want %d (flit order violated)", f.PacketID, f.Seq, want)
		}
		o.seen[f.PacketID] = want + 1
		s(f, cycle)
	})
}

// TestWormholeFlitOrdering asserts per-packet flit order end to end for
// every router architecture at a load high enough to force channel
// multiplexing and back-to-back reallocation.
func TestWormholeFlitOrdering(t *testing.T) {
	for name, build := range allBuilders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			seen := map[uint64]int{}
			cfg := smokeConfig(routing.XY, traffic.Uniform, 0.30, 61)
			cfg.MeasurePackets = 4000
			cfg.Build = func(id int, e *router.RouteEngine) router.Router {
				return &orderChecker{Router: build(id, e), t: t, seen: seen}
			}
			res := New(cfg).Run()
			if res.Summary.Completion != 1 {
				t.Fatalf("completion %.3f", res.Summary.Completion)
			}
			// Every completed packet saw exactly 4 flits.
			for pkt, n := range seen {
				if n != 4 {
					t.Fatalf("pkt %d delivered %d flits, want 4", pkt, n)
				}
			}
		})
	}
}

// TestWormholeFlitOrderingPDR repeats the check for the PDR extension
// (XY only), whose internal transfer channel re-buffers flits mid-router.
func TestWormholeFlitOrderingPDR(t *testing.T) {
	seen := map[uint64]int{}
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0.25, 62)
	cfg.MeasurePackets = 3000
	cfg.Build = func(id int, e *router.RouteEngine) router.Router {
		return &orderChecker{Router: pdrBuilder(id, e), t: t, seen: seen}
	}
	res := New(cfg).Run()
	if res.Summary.Completion != 1 {
		t.Fatalf("completion %.3f", res.Summary.Completion)
	}
}
