package network

import (
	"testing"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/traffic"
)

// builders used across the fault matrix.
var allBuilders = map[string]func(int, *router.RouteEngine) router.Router{
	"generic":       genericBuilder,
	"pathsensitive": psBuilder,
	"roco":          rocoBuilder,
}

func faultConfig(build func(int, *router.RouteEngine) router.Router, alg routing.Algorithm, flts []fault.Fault, seed uint64) Config {
	cfg := smokeConfig(alg, traffic.Uniform, 0.20, seed)
	cfg.Build = build
	cfg.Faults = flts
	cfg.MeasurePackets = 3000
	cfg.InactivityLimit = 1500
	return cfg
}

// TestFaultMatrixNoPanics drives every router kind under every component
// fault and every routing algorithm; the simulation must terminate cleanly
// (panics here mean a protocol violation in degraded operation).
func TestFaultMatrixNoPanics(t *testing.T) {
	rng := stats.NewRNG(123)
	for name, build := range allBuilders {
		for _, alg := range routing.Algorithms {
			for _, comp := range fault.AllComponents() {
				flt := fault.Fault{
					Node:      5 + int(rng.Uint64()%6),
					Component: comp,
					Module:    fault.Module(rng.Uint64() % 2),
					VC:        int(rng.Uint64() % 12),
				}
				res := New(faultConfig(build, alg, []fault.Fault{flt}, 4)).Run()
				if res.Summary.Completion <= 0 {
					t.Errorf("%s/%s/%s: nothing delivered at all", name, alg, comp)
				}
			}
		}
	}
}

// TestRoCoFaultToleranceOrdering: with critical faults under deterministic
// routing, RoCo must complete more traffic than both baselines (Figure 11a).
func TestRoCoFaultToleranceOrdering(t *testing.T) {
	rng := stats.NewRNG(55)
	better := 0
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		flts := fault.RandomSet(fault.Critical, 2, 16, 12, rng)
		g := New(faultConfig(genericBuilder, routing.XY, flts, 8)).Run().Summary.Completion
		rc := New(faultConfig(rocoBuilder, routing.XY, flts, 8)).Run().Summary.Completion
		if rc > g {
			better++
		}
		t.Logf("trial %d: generic=%.3f roco=%.3f", trial, g, rc)
	}
	if better < trials {
		t.Errorf("RoCo beat generic completion in only %d/%d critical-fault trials", better, trials)
	}
}

// TestAdaptiveRoutesAroundFaults: with a critical fault, adaptive routing
// should complete more traffic than deterministic routing on the baselines
// (alternate paths, paper Section 5.4).
func TestAdaptiveRoutesAroundFaults(t *testing.T) {
	flts := []fault.Fault{{Node: 5, Component: fault.Crossbar}}
	xy := New(faultConfig(genericBuilder, routing.XY, flts, 21)).Run().Summary.Completion
	ad := New(faultConfig(genericBuilder, routing.Adaptive, flts, 21)).Run().Summary.Completion
	if ad <= xy {
		t.Errorf("adaptive completion %.3f should beat deterministic %.3f around a dead node", ad, xy)
	}
	t.Logf("generic: xy=%.3f adaptive=%.3f", xy, ad)
}

// TestRCFaultLatencyPenalty: double routing recovers completely but costs
// latency on flits leaving the afflicted router.
func TestRCFaultLatencyPenalty(t *testing.T) {
	base := New(faultConfig(rocoBuilder, routing.XY, nil, 31)).Run()
	flt := []fault.Fault{{Node: 5, Component: fault.RC}}
	faulty := New(faultConfig(rocoBuilder, routing.XY, flt, 31)).Run()
	if faulty.Summary.Completion != 1 {
		t.Fatalf("RC fault should be fully recovered, completion=%.3f", faulty.Summary.Completion)
	}
	if faulty.Summary.AvgLatency <= base.Summary.AvgLatency {
		t.Errorf("double routing should cost latency: base=%.2f faulty=%.2f",
			base.Summary.AvgLatency, faulty.Summary.AvgLatency)
	}
}

// TestInactivityTermination: a run that cannot complete must stop within
// the inactivity window rather than spin to MaxCycles.
func TestInactivityTermination(t *testing.T) {
	flts := []fault.Fault{{Node: 5, Component: fault.Crossbar}}
	cfg := faultConfig(genericBuilder, routing.XY, flts, 77)
	cfg.InactivityLimit = 500
	cfg.MaxCycles = 500000
	res := New(cfg).Run()
	if res.Saturated {
		t.Error("faulty run should terminate by inactivity, not MaxCycles")
	}
	if res.Summary.Completion >= 1 {
		t.Error("a dead central node must strand some deterministic traffic")
	}
}

// TestBufferFaultCreditBookSync: the upstream credit book must see the
// degraded depth of a faulty downstream buffer (no overflow panics, full
// completion).
func TestBufferFaultCreditBookSync(t *testing.T) {
	for vc := 0; vc < 12; vc += 5 {
		flt := []fault.Fault{{Node: 5, Component: fault.Buffer, Module: fault.RowModule, VC: vc}}
		res := New(faultConfig(rocoBuilder, routing.XY, flt, 13)).Run()
		if res.Summary.Completion != 1 {
			t.Errorf("vc %d: buffer fault should be fully recovered (completion %.3f)", vc, res.Summary.Completion)
		}
	}
}

// TestSAFaultDegradedButAlive: SA-fault recovery shares the VA arbiters;
// traffic still completes with some slowdown.
func TestSAFaultDegradedButAlive(t *testing.T) {
	flt := []fault.Fault{{Node: 5, Component: fault.SA, Module: fault.ColumnModule}}
	res := New(faultConfig(rocoBuilder, routing.XY, flt, 17)).Run()
	if res.Summary.Completion != 1 {
		t.Errorf("SA fault with resource sharing should complete all traffic, got %.3f", res.Summary.Completion)
	}
}

// TestMultipleFaults: four simultaneous critical faults must not wedge or
// panic any architecture.
func TestMultipleFaults(t *testing.T) {
	rng := stats.NewRNG(3)
	flts := fault.RandomSet(fault.Critical, 4, 16, 12, rng)
	for name, build := range allBuilders {
		res := New(faultConfig(build, routing.Adaptive, flts, 6)).Run()
		t.Logf("%s: completion %.3f", name, res.Summary.Completion)
		if res.Summary.Completion <= 0.2 {
			t.Errorf("%s: completion %.3f implausibly low under 4 faults with adaptive routing", name, res.Summary.Completion)
		}
	}
}
