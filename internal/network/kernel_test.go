package network

import (
	"reflect"
	"testing"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// kernelConfig is a mid-load 8x8 run, small enough to finish quickly but
// busy enough that routers sleep and wake many times per run.
func kernelConfig(build func(int, *router.RouteEngine) router.Router, seed uint64) Config {
	return Config{
		Topo:            topology.NewMesh(8, 8),
		Algorithm:       routing.XY,
		Build:           build,
		Traffic:         traffic.Config{Pattern: traffic.Uniform, Rate: 0.15, FlitsPerPacket: 4},
		WarmupPackets:   300,
		MeasurePackets:  1500,
		InactivityLimit: 1000,
		MaxCycles:       400_000,
		Seed:            seed,
		AuditEvery:      64,
	}
}

// TestGatedKernelMatchesReference is the correctness contract of the
// activity-gated kernel: for every router kind and seed, the gated run and
// the tick-everything reference run must produce bit-identical Results —
// same latency histogram, same per-router activity counters, same fault
// log. Any divergence means a router was left asleep through a cycle that
// would have done work (under-waking) or SkipCycles mis-replayed an idle
// tick.
func TestGatedKernelMatchesReference(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
		{"pdr", pdrBuilder},
	}
	for _, b := range builders {
		b := b
		for _, seed := range []uint64{1, 42, 99} {
			seed := seed
			t.Run(b.name, func(t *testing.T) {
				t.Parallel()
				ref := kernelConfig(b.build, seed)
				ref.ReferenceKernel = true
				gated := kernelConfig(b.build, seed)

				want := New(ref).Run()
				got := New(gated).Run()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: gated kernel diverged from reference\n gated: %+v\n   ref: %+v",
						seed, got.Summary, want.Summary)
				}
			})
		}
	}
}

// TestGatedKernelMatchesReferenceUnderFaults repeats the bit-identity
// check with a Poisson runtime-fault schedule striking mid-run, so the
// settle-before-ApplyFault path and the fault wake rules are on the hook
// too.
func TestGatedKernelMatchesReferenceUnderFaults(t *testing.T) {
	builders := []struct {
		name  string
		build func(int, *router.RouteEngine) router.Router
	}{
		{"generic", genericBuilder},
		{"pathsensitive", psBuilder},
		{"roco", rocoBuilder},
	}
	for _, b := range builders {
		b := b
		for _, seed := range []uint64{7, 1234} {
			seed := seed
			t.Run(b.name, func(t *testing.T) {
				t.Parallel()
				sched := fault.PoissonSchedule(fault.NonCritical, 120, 600, 64, core.NumVCs, stats.NewRNG(seed^0xfa17))

				ref := kernelConfig(b.build, seed)
				ref.Schedule = sched
				ref.ReferenceKernel = true
				gated := kernelConfig(b.build, seed)
				gated.Schedule = sched

				want := New(ref).Run()
				got := New(gated).Run()
				if len(want.FaultLog) == 0 {
					t.Fatalf("seed %d: fault schedule installed no faults; test is vacuous", seed)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: gated kernel diverged from reference under faults\n gated: %+v\n   ref: %+v",
						seed, got.Summary, want.Summary)
				}
			})
		}
	}
}

// TestStepZeroAllocsWhenIdle pins the clock-gating payoff: once a network
// has nothing to generate, inject, tick, or advance, Step must not touch
// the heap at all.
func TestStepZeroAllocsWhenIdle(t *testing.T) {
	cfg := smokeConfig(routing.XY, traffic.Uniform, 0, 5)
	cfg.Traffic.Rate = 0
	n := New(cfg)
	for i := 0; i < 8; i++ {
		n.Step()
	}
	allocs := testing.AllocsPerRun(200, func() { n.Step() })
	if allocs != 0 {
		t.Fatalf("idle Step allocates %v objects per cycle, want 0", allocs)
	}
}

// TestStepBoundedAllocsUnderLoad asserts the steady-state Step of a
// loaded network stays (amortised) allocation-free: flits come from the
// pool, arbitration scratch lives on the router structs, and the
// worklists are reused. A small budget absorbs rare slice regrowth.
func TestStepBoundedAllocsUnderLoad(t *testing.T) {
	cfg := kernelConfig(genericBuilder, 3)
	cfg.MeasurePackets = 1_000_000 // never stop generating during the probe
	n := New(cfg)
	for i := 0; i < 2000; i++ { // warm pools and worklists to steady state
		n.Step()
	}
	allocs := testing.AllocsPerRun(500, func() { n.Step() })
	if allocs > 1 {
		t.Fatalf("loaded Step allocates %v objects per cycle, want <= 1 amortised", allocs)
	}
}
