package network

import (
	"testing"

	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/router/pathsensitive"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/traffic"
)

func psBuilder(id int, e *router.RouteEngine) router.Router { return pathsensitive.New(id, e) }

func psConfig(alg routing.Algorithm, pattern traffic.Pattern, rate float64, seed uint64) Config {
	cfg := smokeConfig(alg, pattern, rate, seed)
	cfg.Build = psBuilder
	return cfg
}

func TestPathSensitiveDrainsAllAlgorithms(t *testing.T) {
	for _, alg := range routing.Algorithms {
		for _, pattern := range []traffic.Pattern{traffic.Uniform, traffic.Transpose} {
			alg, pattern := alg, pattern
			t.Run(alg.String()+"/"+pattern.String(), func(t *testing.T) {
				res := New(psConfig(alg, pattern, 0.10, 33)).Run()
				if res.Summary.Completion != 1 {
					t.Fatalf("completion = %v, want 1", res.Summary.Completion)
				}
				if res.Summary.AvgLatency < 3 || res.Summary.AvgLatency > 60 {
					t.Fatalf("implausible avg latency %v", res.Summary.AvgLatency)
				}
				t.Logf("%s/%s: %s", alg, pattern, res.Summary)
			})
		}
	}
}

func TestPathSensitiveHighLoadNoDeadlock(t *testing.T) {
	for _, alg := range routing.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			cfg := psConfig(alg, traffic.Uniform, 0.38, 13)
			cfg.MeasurePackets = 5000
			res := New(cfg).Run()
			if res.Summary.Completion < 0.99 {
				t.Fatalf("completion = %v at 38%% load; deadlock suspected", res.Summary.Completion)
			}
			t.Logf("%s: %s", alg, res.Summary)
		})
	}
}

// TestLatencyOrdering checks the paper's headline ordering at moderate
// load: RoCo < Path-Sensitive < Generic.
func TestLatencyOrdering(t *testing.T) {
	for _, alg := range routing.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			g := New(smokeConfig(alg, traffic.Uniform, 0.25, 77)).Run().Summary.AvgLatency
			p := New(psConfig(alg, traffic.Uniform, 0.25, 77)).Run().Summary.AvgLatency
			rc := New(rocoConfig(alg, traffic.Uniform, 0.25, 77)).Run().Summary.AvgLatency
			t.Logf("%s: generic=%.2f path-sensitive=%.2f roco=%.2f", alg, g, p, rc)
			if !(rc < g) {
				t.Errorf("RoCo (%.2f) should beat generic (%.2f)", rc, g)
			}
			if !(p < g) {
				t.Errorf("path-sensitive (%.2f) should beat generic (%.2f)", p, g)
			}
		})
	}
}
