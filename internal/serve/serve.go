// Package serve is the graceful-HTTP-shutdown plumbing shared by
// rocosim -serve and rocoserve: serve a handler until SIGINT/SIGTERM
// (or an explicit stop), then drain in-flight requests under a timeout
// before forcing the remaining connections closed. It exists so both
// binaries shut down the same way — previously rocosim -serve lingered
// forever after a run and had to be killed.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultDrain is the in-flight drain timeout when Options.Drain is zero.
const DefaultDrain = 10 * time.Second

// Options parameterizes Start.
type Options struct {
	// Drain caps how long Wait lets in-flight requests finish after the
	// stop signal before forcing connections closed (0 = DefaultDrain).
	Drain time.Duration
	// Stop, when it becomes receivable (or is closed), triggers shutdown
	// like a signal would. Optional.
	Stop <-chan struct{}
	// BeforeDrain runs after the stop signal and before the drain begins
	// — the place to end long-lived streams (SSE subscribers, campaign
	// workers) that would otherwise hold the drain open to its timeout.
	BeforeDrain func()
	// Logf receives shutdown progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// Server is an http.Server being drained by Wait when the process is
// told to stop.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error
	opts Options
}

// Start begins serving h on ln in a background goroutine and returns
// immediately. A nil h serves http.DefaultServeMux (where expvar and
// net/http/pprof register themselves). Call Wait to block until the
// process is told to stop.
func Start(ln net.Listener, h http.Handler, opts Options) *Server {
	if opts.Drain <= 0 {
		opts.Drain = DefaultDrain
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		ln:   ln,
		errc: make(chan error, 1),
		opts: opts,
	}
	go func() { s.errc <- s.srv.Serve(ln) }()
	return s
}

// Addr returns the listener's resolved address (useful when the caller
// asked for port 0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Wait blocks until SIGINT/SIGTERM arrives or Options.Stop fires, runs
// BeforeDrain, then shuts the server down gracefully: no new
// connections, in-flight requests drained for at most Options.Drain,
// stragglers force-closed. It returns nil after a clean shutdown, the
// serve error if the listener failed first, or the shutdown error when
// the drain timed out.
func (s *Server) Wait() error {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	logf := s.opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	select {
	case err := <-s.errc:
		// The listener died on its own; nothing left to drain.
		return err
	case sig := <-sigc:
		logf("caught %v; draining for up to %v", sig, s.opts.Drain)
	case <-s.opts.Stop:
		logf("stop requested; draining for up to %v", s.opts.Drain)
	}
	if s.opts.BeforeDrain != nil {
		s.opts.BeforeDrain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.Drain)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		logf("drain timed out; forcing connections closed")
		_ = s.srv.Close()
	}
	if serr := <-s.errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return err
}
