package trace

import (
	"strings"
	"testing"
)

func TestRecordJourney(t *testing.T) {
	var c Collector
	r := c.NewRecord(7, 1, 9, 100)
	r.Visit(1, 100, Injected)
	r.Visit(2, 102, Arrived)
	r.Visit(9, 104, Delivered)

	if !r.Completed() {
		t.Error("delivered packet should be complete")
	}
	hops := r.HopLatencies()
	if len(hops) != 2 || hops[0] != 2 || hops[1] != 2 {
		t.Errorf("hop latencies %v", hops)
	}
	s := r.String()
	for _, want := range []string{"pkt 7", "1->9", "inject@100", "deliver"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q: %s", want, s)
		}
	}
}

func TestDroppedPacketIncomplete(t *testing.T) {
	var c Collector
	r := c.NewRecord(1, 0, 5, 0)
	r.Visit(0, 0, Injected)
	r.Visit(3, 4, Dropped)
	if r.Completed() {
		t.Error("dropped packet must not report complete")
	}
}

func TestCollectorOrdering(t *testing.T) {
	var c Collector
	c.NewRecord(5, 0, 1, 0)
	c.NewRecord(2, 0, 1, 0)
	c.NewRecord(9, 0, 1, 0)
	recs := c.Records()
	if c.Len() != 3 || recs[0].PacketID != 2 || recs[2].PacketID != 9 {
		t.Errorf("collector ordering wrong: %v", recs)
	}
}

func TestEmptyRecord(t *testing.T) {
	r := &Record{PacketID: 1}
	if r.Completed() || r.HopLatencies() != nil {
		t.Error("empty record should be incomplete with no hops")
	}
}

func TestVisitKindStrings(t *testing.T) {
	want := map[VisitKind]string{Injected: "inject", Arrived: "arrive", Delivered: "deliver", Dropped: "drop"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
