package trace

import "github.com/rocosim/roco/internal/snapshot"

// SaveState serializes every record in insertion order.
func (c *Collector) SaveState(e *snapshot.Encoder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.Int(len(c.records))
	for _, r := range c.records {
		e.U64(r.PacketID)
		e.Int(r.Src)
		e.Int(r.Dst)
		e.I64(r.CreatedAt)
		e.Int(len(r.Visits))
		for _, v := range r.Visits {
			e.Int(v.Node)
			e.I64(v.Cycle)
			e.U8(uint8(v.Kind))
			e.U8(uint8(v.Reason))
		}
	}
}

// LoadState restores a collector written by SaveState into an empty
// collector and returns the records keyed by packet ID, for relinking the
// Rec pointers of in-flight flits (decode the collector before any flit).
func (c *Collector) LoadState(d *snapshot.Decoder) map[uint64]*Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.records) != 0 {
		d.Corruptf("loading trace state into a non-empty collector")
		return nil
	}
	n := d.SliceLen(8)
	byID := make(map[uint64]*Record, n)
	for i := 0; i < n; i++ {
		r := &Record{
			PacketID:  d.U64(),
			Src:       d.Int(),
			Dst:       d.Int(),
			CreatedAt: d.I64(),
		}
		k := d.SliceLen(8)
		// Mirror NewRecord's preallocation so resumed records grow the
		// same way live ones do.
		r.Visits = make([]Visit, 0, max(16, k))
		for j := 0; j < k; j++ {
			r.Visits = append(r.Visits, Visit{
				Node:   d.Int(),
				Cycle:  d.I64(),
				Kind:   VisitKind(d.U8()),
				Reason: DropReason(d.U8()),
			})
		}
		if d.Err() != nil {
			return nil
		}
		c.records = append(c.records, r)
		byID[r.PacketID] = r
	}
	return byID
}
