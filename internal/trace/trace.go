// Package trace records per-packet journeys through the network: which
// routers a packet visited, when, and how long each hop took. Tracing is
// sampling-based — the network attaches a recorder to selected packets'
// head flits — so it costs nothing for untraced traffic.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Visit is one router observation of a traced packet.
type Visit struct {
	// Node is the router (or PE) that observed the flit.
	Node int
	// Cycle is the observation time.
	Cycle int64
	// Kind describes the observation.
	Kind VisitKind
	// Reason qualifies Dropped observations (zero-valued otherwise).
	Reason DropReason
}

// DropReason distinguishes why fault handling discarded a packet. The
// three causes have very different recovery implications: an
// unroutable-at-source packet never entered the network, a broken-in-flight
// packet lost part of its wormhole to a live fault, and a dead-node drain
// is collateral traffic discarded by a router that was killed whole.
type DropReason uint8

const (
	// DropUnroutable: the source PE discarded the packet because the
	// installed faults leave its first hop (or local ejection) unservable.
	DropUnroutable DropReason = iota
	// DropInFlight: a fault broke the packet while it was in the network —
	// a condemned buffer, a doomed wormhole, or a route that a new fault
	// made permanently unservable mid-journey.
	DropInFlight
	// DropDeadNode: a router that died whole drained the arriving flit.
	DropDeadNode

	// NumDropReasons sizes per-reason counters.
	NumDropReasons
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropUnroutable:
		return "unroutable-at-source"
	case DropInFlight:
		return "broken-in-flight"
	case DropDeadNode:
		return "dead-node-drain"
	default:
		return "?"
	}
}

// VisitKind classifies trace events.
type VisitKind uint8

const (
	// Injected: the head flit entered the network at its source router.
	Injected VisitKind = iota
	// Arrived: the head flit was buffered at a router.
	Arrived
	// Delivered: the head flit reached its destination PE.
	Delivered
	// Dropped: fault handling discarded the packet. Visit.Reason carries
	// the distinct cause (unroutable at source, broken in flight, or
	// drained by a dead node).
	Dropped
)

// String names the event.
func (k VisitKind) String() string {
	switch k {
	case Injected:
		return "inject"
	case Arrived:
		return "arrive"
	case Delivered:
		return "deliver"
	case Dropped:
		return "drop"
	default:
		return "?"
	}
}

// Record is the journey of one traced packet.
type Record struct {
	PacketID  uint64
	Src, Dst  int
	CreatedAt int64
	Visits    []Visit
}

// Visit appends one observation. Records are owned by a single packet and
// touched from the (single-threaded) simulation loop; no locking needed.
func (r *Record) Visit(node int, cycle int64, kind VisitKind) {
	r.Visits = append(r.Visits, Visit{Node: node, Cycle: cycle, Kind: kind})
}

// Drop appends a Dropped observation with its cause.
func (r *Record) Drop(node int, cycle int64, reason DropReason) {
	r.Visits = append(r.Visits, Visit{Node: node, Cycle: cycle, Kind: Dropped, Reason: reason})
}

// HopLatencies returns the cycle deltas between consecutive observations —
// the per-hop latency breakdown.
func (r *Record) HopLatencies() []int64 {
	if len(r.Visits) < 2 {
		return nil
	}
	out := make([]int64, 0, len(r.Visits)-1)
	for i := 1; i < len(r.Visits); i++ {
		out = append(out, r.Visits[i].Cycle-r.Visits[i-1].Cycle)
	}
	return out
}

// Completed reports whether the packet reached its destination.
func (r *Record) Completed() bool {
	return len(r.Visits) > 0 && r.Visits[len(r.Visits)-1].Kind == Delivered
}

// String renders the journey on one line, e.g.
//
//	pkt 42: 3 ->(2) 4 ->(5) 12 [deliver @118]
func (r *Record) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pkt %d %d->%d:", r.PacketID, r.Src, r.Dst)
	for i, v := range r.Visits {
		kind := v.Kind.String()
		if v.Kind == Dropped {
			kind = fmt.Sprintf("%s(%s)", v.Kind, v.Reason)
		}
		if i == 0 {
			fmt.Fprintf(&sb, " %s@%d n%d", kind, v.Cycle, v.Node)
			continue
		}
		fmt.Fprintf(&sb, " ->(%d) %s n%d", v.Cycle-r.Visits[i-1].Cycle, kind, v.Node)
	}
	return sb.String()
}

// Collector accumulates the records of all traced packets in a run. It is
// safe for concurrent use (parallel experiment sweeps share nothing, but
// the guard is cheap and prevents accidents).
type Collector struct {
	mu      sync.Mutex
	records []*Record
}

// NewRecord registers and returns a fresh record for one packet.
func (c *Collector) NewRecord(packetID uint64, src, dst int, createdAt int64) *Record {
	// A journey on an 8x8 mesh is injection + up to 14 hops + delivery;
	// sizing Visits up front keeps traced runs off the append-regrow path.
	r := &Record{
		PacketID: packetID, Src: src, Dst: dst, CreatedAt: createdAt,
		Visits: make([]Visit, 0, 16),
	}
	c.mu.Lock()
	c.records = append(c.records, r)
	c.mu.Unlock()
	return r
}

// Records returns the collected journeys sorted by packet ID.
func (c *Collector) Records() []*Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Record, len(c.records))
	copy(out, c.records)
	sort.Slice(out, func(i, j int) bool { return out[i].PacketID < out[j].PacketID })
	return out
}

// Len returns the number of traced packets.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}
