package arbiter

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinGrantsAssertedLine(t *testing.T) {
	a := NewRoundRobin(4)
	reqs := []bool{false, true, false, true}
	for i := 0; i < 16; i++ {
		w := a.Grant(reqs)
		if w != 1 && w != 3 {
			t.Fatalf("granted unasserted line %d", w)
		}
	}
}

func TestRoundRobinNoRequest(t *testing.T) {
	a := NewRoundRobin(3)
	if w := a.Grant([]bool{false, false, false}); w != -1 {
		t.Fatalf("empty request vector granted %d", w)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	a := NewRoundRobin(4)
	all := []bool{true, true, true, true}
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[a.Grant(all)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("line %d granted %d/400 times under full load; round-robin should be exact", i, c)
		}
	}
}

func TestRoundRobinNoStarvation(t *testing.T) {
	// A persistently asserted line must be granted within n rounds no
	// matter what the other lines do.
	f := func(pattern []uint8) bool {
		a := NewRoundRobin(5)
		waiting := 0
		for i := 0; i < len(pattern); i++ {
			reqs := make([]bool, 5)
			reqs[4] = true // our line
			for j := 0; j < 4; j++ {
				reqs[j] = pattern[i]&(1<<j) != 0
			}
			if a.Grant(reqs) == 4 {
				waiting = 0
			} else {
				waiting++
				if waiting >= 5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinPeekDoesNotAdvance(t *testing.T) {
	a := NewRoundRobin(3)
	reqs := []bool{true, true, true}
	p := a.Peek(reqs)
	if g := a.Grant(reqs); g != p {
		t.Errorf("Peek %d then Grant %d", p, g)
	}
}

func TestRoundRobinSizeMismatchPanics(t *testing.T) {
	a := NewRoundRobin(3)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch should panic")
		}
	}()
	a.Grant([]bool{true})
}

// allPatterns enumerates every 2x2 request matrix.
func allPatterns() [][2][2]bool {
	var out [][2][2]bool
	for m := 0; m < 16; m++ {
		var has [2][2]bool
		has[0][0] = m&1 != 0
		has[0][1] = m&2 != 0
		has[1][0] = m&4 != 0
		has[1][1] = m&8 != 0
		out = append(out, has)
	}
	return out
}

func TestMirrorAlwaysMaximal(t *testing.T) {
	// The Mirroring Effect's whole point: the decision is a maximal
	// matching for every request pattern, at every point of the arbiter's
	// internal rotation.
	for _, has := range allPatterns() {
		m := NewMirror()
		for round := 0; round < 8; round++ {
			dec := m.Allocate(has)
			if !dec.IsMaximal(has) {
				t.Fatalf("round %d: decision %v not maximal for %v", round, dec, has)
			}
		}
	}
}

func TestMirrorFullMatchingWhenPossible(t *testing.T) {
	// Whenever a perfect 2-edge matching exists, the mirror finds it.
	for _, has := range allPatterns() {
		perfect := (has[0][0] && has[1][1]) || (has[0][1] && has[1][0])
		if !perfect {
			continue
		}
		m := NewMirror()
		for round := 0; round < 8; round++ {
			dec := m.Allocate(has)
			if dec.OutWinner[0] < 0 || dec.OutWinner[1] < 0 {
				t.Fatalf("perfect matching exists for %v but got %v", has, dec)
			}
		}
	}
}

func TestMirrorFairnessUnderConflict(t *testing.T) {
	// Both ports want only direction 0: grants must alternate.
	m := NewMirror()
	has := [2][2]bool{{true, false}, {true, false}}
	counts := [2]int{}
	for i := 0; i < 100; i++ {
		dec := m.Allocate(has)
		if dec.OutWinner[0] < 0 {
			t.Fatal("output 0 must be granted")
		}
		if dec.OutWinner[1] != -1 {
			t.Fatal("output 1 has no requests")
		}
		counts[dec.OutWinner[0]]++
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Errorf("conflicting ports granted %v, want 50/50", counts)
	}
}

func TestMirrorDecisionValidity(t *testing.T) {
	f := func(bits uint8, rounds uint8) bool {
		var has [2][2]bool
		has[0][0] = bits&1 != 0
		has[0][1] = bits&2 != 0
		has[1][0] = bits&4 != 0
		has[1][1] = bits&8 != 0
		m := NewMirror()
		for i := 0; i < int(rounds%16)+1; i++ {
			dec := m.Allocate(has)
			// Never grant a non-request; never give one port two outputs.
			if dec.OutWinner[0] >= 0 && !has[dec.OutWinner[0]][0] {
				return false
			}
			if dec.OutWinner[1] >= 0 && !has[dec.OutWinner[1]][1] {
				return false
			}
			if dec.OutWinner[0] >= 0 && dec.OutWinner[0] == dec.OutWinner[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
