// Package arbiter implements the arbitration primitives the three router
// microarchitectures are built from: round-robin arbiters (the v:1 and P:1
// units of separable VA/SA stages) and the paper's Mirror allocator, which
// achieves maximal matching on a 2x2 crossbar with a single global 2:1
// arbiter per module.
package arbiter

import "math/bits"

// maskWidth is the widest request set the bitmap fast path serves; wider
// arbiters fall back to the slice scan. Every arbiter in the simulator is
// far narrower (the widest is the generic router's 15-input VA arbiter).
const maskWidth = 64

// RoundRobin is an n-input round-robin arbiter. The input granted most
// recently gets the lowest priority in the next round, which provides
// strong fairness — the same discipline assumed by the paper's separable
// allocators.
type RoundRobin struct {
	n    int
	next int // index with highest priority in the next round
}

// NewRoundRobin returns an arbiter over n request lines.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic("arbiter: round-robin needs at least one input")
	}
	return &RoundRobin{n: n}
}

// NewRoundRobinSlice returns count independent n-input arbiters backed by
// a single allocation; &s[i] behaves exactly like NewRoundRobin(n).
// Routers with many arbiters of one shape (e.g. one per (output port,
// downstream VC) pair) use it to avoid boxing each 16-byte arbiter in its
// own heap object on big meshes.
func NewRoundRobinSlice(count, n int) []RoundRobin {
	if n < 1 {
		panic("arbiter: round-robin needs at least one input")
	}
	s := make([]RoundRobin, count)
	for i := range s {
		s[i].n = n
	}
	return s
}

// Size returns the number of request lines.
func (a *RoundRobin) Size() int { return a.n }

// GrantMask returns the index of the winning request line in the bitmap
// req (bit i asserted means line i requests), or -1 when req is zero. The
// priority pointer advances past the winner. Requires n <= 64; bits at
// positions >= n must be zero.
//
// The winner is found without a scan: rotating req right by next moves the
// highest-priority line to bit 0, so the first asserted line in round-robin
// order is the rotated word's lowest set bit. The left-shift half of the
// rotation parks bits above position n-1; they are harmless, because when
// req is non-zero at least one real bit lands in [0, n) and TrailingZeros64
// finds it first. (Go defines shifts >= the word width as zero, so the
// next == 0 and n == 64 edges are safe.)
func (a *RoundRobin) GrantMask(req uint64) int {
	idx := a.peekMask(req)
	if idx >= 0 {
		a.next = idx + 1
		if a.next == a.n {
			a.next = 0
		}
	}
	return idx
}

// PeekMask returns the index GrantMask would return without advancing the
// priority pointer, or -1 when req is zero. Requires n <= 64.
func (a *RoundRobin) PeekMask(req uint64) int {
	return a.peekMask(req)
}

// peekMask is the shared rotate-and-count core of GrantMask and PeekMask.
func (a *RoundRobin) peekMask(req uint64) int {
	if req == 0 {
		return -1
	}
	if a.n > maskWidth {
		panic("arbiter: bitmap grant on an arbiter wider than 64 lines")
	}
	r := (req >> uint(a.next)) | (req << (uint(a.n) - uint(a.next)))
	idx := a.next + bits.TrailingZeros64(r)
	if idx >= a.n {
		idx -= a.n
	}
	return idx
}

// Grant returns the index of the winning request, or -1 if no line is
// asserted. The priority pointer advances past the winner. It is a
// compatibility shim over GrantMask; wide (> 64 line) arbiters keep the
// slice scan.
func (a *RoundRobin) Grant(requests []bool) int {
	if len(requests) != a.n {
		panic("arbiter: request vector size mismatch")
	}
	if a.n <= maskWidth {
		return a.GrantMask(packRequests(requests))
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if requests[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// Peek returns the index that would win without advancing the priority
// pointer, or -1 if no line is asserted. Shim over PeekMask, like Grant.
func (a *RoundRobin) Peek(requests []bool) int {
	if len(requests) != a.n {
		panic("arbiter: request vector size mismatch")
	}
	if a.n <= maskWidth {
		return a.PeekMask(packRequests(requests))
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if requests[idx] {
			return idx
		}
	}
	return -1
}

// packRequests folds a request slice (length <= 64) into a bitmap.
func packRequests(requests []bool) uint64 {
	var req uint64
	for i, r := range requests {
		if r {
			req |= 1 << uint(i)
		}
	}
	return req
}

// Reset restores the priority pointer to input 0.
func (a *RoundRobin) Reset() { a.next = 0 }

// MirrorDecision is the outcome of one Mirror-allocator round for a 2x2
// module: which input port drives which of the module's two output
// directions. -1 entries mean the corresponding output stays idle.
type MirrorDecision struct {
	// OutWinner[d] is the input port index (0 or 1) granted output
	// direction d (0 or 1), or -1 when that output is unmatched.
	OutWinner [2]int
}

// Mirror implements the paper's "Mirroring Effect" switch allocator for a
// 2x2 crossbar module. Each input port presents, per output direction, a
// locally arbitrated candidate (has[port][dir]). A single global 2:1
// arbiter decides the primary port's direction; the other port is granted
// the mirrored (opposite) direction, which by construction yields a maximal
// matching. The primary port alternates every round so neither port
// starves.
type Mirror struct {
	global  *RoundRobin // 2:1 arbiter over the primary port's two directions
	primary int         // which input port the global decision is made at
}

// NewMirror returns a Mirror allocator for one 2x2 module.
func NewMirror() *Mirror {
	return &Mirror{global: NewRoundRobin(2)}
}

// Allocate computes one allocation round. has[p][d] reports whether input
// port p holds a switch-ready flit for output direction d. The result is a
// maximal matching of the 2x2 module: if any complete (2-edge) matching
// exists among the requests, Allocate finds one.
func (m *Mirror) Allocate(has [2][2]bool) MirrorDecision {
	dec := MirrorDecision{OutWinner: [2]int{-1, -1}}
	p := m.primary
	q := 1 - p

	// Global arbitration happens only at the primary port: pick its
	// direction among those it has candidates for, preferring a direction
	// whose mirror the other port can fill (that is what makes the matching
	// maximal rather than merely conflict-free).
	var reqs uint64
	if has[p][0] {
		reqs |= 1
	}
	if has[p][1] {
		reqs |= 2
	}
	// Prefer the direction that lets port q take the opposite output.
	pDir := -1
	if reqs == 3 {
		// Both directions available at the primary port: steer toward full
		// utilization when only one choice mirrors, otherwise round-robin.
		switch {
		case has[q][1] && !has[q][0]:
			pDir = 0
		case has[q][0] && !has[q][1]:
			pDir = 1
		default:
			pDir = m.global.GrantMask(reqs)
		}
	} else {
		pDir = m.global.GrantMask(reqs)
	}

	if pDir >= 0 {
		dec.OutWinner[pDir] = p
		// Mirroring Effect: the other port is granted the opposite
		// direction without a second global arbitration.
		if has[q][1-pDir] {
			dec.OutWinner[1-pDir] = q
		}
	} else {
		// Primary port idle: the secondary port may use either output.
		switch {
		case has[q][0] && has[q][1]:
			d := m.global.GrantMask(3)
			dec.OutWinner[d] = q
		case has[q][0]:
			dec.OutWinner[0] = q
		case has[q][1]:
			dec.OutWinner[1] = q
		}
	}

	m.primary = 1 - m.primary
	return dec
}

// SkipRounds replays the state effect of n request-free allocation rounds
// without running them. An idle round leaves the global arbiter untouched
// (no request wins) but still toggles the primary port, so skipping n
// rounds flips the primary iff n is odd. The activity-gated simulation
// kernel uses this to keep a slept RoCo module bit-identical to one ticked
// every cycle.
func (m *Mirror) SkipRounds(n int64) {
	if n%2 == 1 {
		m.primary = 1 - m.primary
	}
}

// IsMaximal reports whether dec is a maximal matching for the request
// pattern has: no unmatched output could be matched to an unmatched input
// that requests it. Used by tests and assertions.
func (dec MirrorDecision) IsMaximal(has [2][2]bool) bool {
	used := [2]bool{}
	for d := 0; d < 2; d++ {
		if w := dec.OutWinner[d]; w >= 0 {
			if !has[w][d] {
				return false // granted a non-existent request
			}
			if used[w] {
				return false // one port granted two outputs
			}
			used[w] = true
		}
	}
	for d := 0; d < 2; d++ {
		if dec.OutWinner[d] != -1 {
			continue
		}
		for p := 0; p < 2; p++ {
			if has[p][d] && !used[p] {
				return false // an augmenting edge was left on the table
			}
		}
	}
	return true
}
