package arbiter

import "testing"

// refRoundRobin is the pre-bitmap reference implementation: a linear scan
// from the priority pointer. GrantMask/PeekMask must agree with it on every
// width, request pattern, and pointer state — it is the spec the rotate +
// trailing-zeros fast path is checked against.
type refRoundRobin struct {
	n    int
	next int
}

func (a *refRoundRobin) peek(requests []bool) int {
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if requests[idx] {
			return idx
		}
	}
	return -1
}

func (a *refRoundRobin) grant(requests []bool) int {
	idx := a.peek(requests)
	if idx >= 0 {
		a.next = (idx + 1) % a.n
	}
	return idx
}

// unpack expands bitmap req into a width-n request slice.
func unpack(req uint64, n int) []bool {
	s := make([]bool, n)
	for i := 0; i < n; i++ {
		s[i] = req&(1<<uint(i)) != 0
	}
	return s
}

// FuzzGrantMask differentially checks the bitmap arbiter against the
// reference scan: same winners from GrantMask/PeekMask and from the Grant/
// Peek shims, across random widths (1..64), request patterns, and pointer
// states reached by running many rounds. Run `go test -fuzz=FuzzGrantMask
// ./internal/arbiter` to explore beyond the seed corpus; the seed corpus
// itself runs in `make check` under the race detector.
func FuzzGrantMask(f *testing.F) {
	f.Add(uint8(0), uint64(0))       // width 1, no requests
	f.Add(uint8(0), uint64(1))       // width 1, one request
	f.Add(uint8(63), ^uint64(0))     // width 64, all lines hot
	f.Add(uint8(63), uint64(1)<<63)  // width 64, only the top line
	f.Add(uint8(14), uint64(0x5555)) // width 15 (generic VA shape), alternating
	f.Add(uint8(2), uint64(5))       // width 3 (per-port VC shape)
	f.Add(uint8(1), uint64(2))       // width 2 (mirror global shape)
	f.Add(uint8(31), uint64(0xdeadbeef))

	f.Fuzz(func(t *testing.T, widthSeed uint8, pattern uint64) {
		n := int(widthSeed)%64 + 1
		fast := NewRoundRobin(n)
		ref := &refRoundRobin{n: n}

		// Evolve the request pattern with an xorshift so one fuzz input
		// exercises many (pattern, pointer) combinations; the pointer walks
		// to arbitrary positions as grants land.
		x := pattern | 1
		for round := 0; round < 128; round++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			req := x
			if round%4 == 0 {
				req = 0 // idle rounds: pointers must hold still
			}
			if n < 64 {
				req &= uint64(1)<<uint(n) - 1
			}
			slice := unpack(req, n)

			if got, want := fast.PeekMask(req), ref.peek(slice); got != want {
				t.Fatalf("n=%d round=%d req=%#x next=%d: PeekMask=%d ref.peek=%d", n, round, req, ref.next, got, want)
			}
			if got, want := fast.Peek(slice), ref.peek(slice); got != want {
				t.Fatalf("n=%d round=%d req=%#x next=%d: Peek=%d ref.peek=%d", n, round, req, ref.next, got, want)
			}
			wantG := ref.grant(slice)
			var gotG int
			if round%2 == 0 {
				gotG = fast.GrantMask(req)
			} else {
				gotG = fast.Grant(slice)
			}
			if gotG != wantG {
				t.Fatalf("n=%d round=%d req=%#x: grant fast=%d ref=%d", n, round, req, gotG, wantG)
			}
			if fast.next != ref.next {
				t.Fatalf("n=%d round=%d req=%#x: pointer fast=%d ref=%d", n, round, req, fast.next, ref.next)
			}
		}
	})
}
