package arbiter

import "github.com/rocosim/roco/internal/snapshot"

// SaveState serializes the priority pointer.
func (a *RoundRobin) SaveState(e *snapshot.Encoder) { e.Int(a.next) }

// LoadState restores a priority pointer written by SaveState; an index
// outside the arbiter's range poisons the decoder.
func (a *RoundRobin) LoadState(d *snapshot.Decoder) {
	next := d.Int()
	if d.Err() != nil {
		return
	}
	if next < 0 || next >= a.n {
		d.Corruptf("round-robin pointer %d out of range [0,%d)", next, a.n)
		return
	}
	a.next = next
}

// SaveState serializes the mirror allocator: its global arbiter pointer
// and the primary-port toggle.
func (m *Mirror) SaveState(e *snapshot.Encoder) {
	m.global.SaveState(e)
	e.Int(m.primary)
}

// LoadState restores mirror state written by SaveState.
func (m *Mirror) LoadState(d *snapshot.Decoder) {
	m.global.LoadState(d)
	p := d.Int()
	if d.Err() != nil {
		return
	}
	if p != 0 && p != 1 {
		d.Corruptf("mirror primary %d", p)
		return
	}
	m.primary = p
}
