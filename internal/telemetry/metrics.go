package telemetry

import (
	"fmt"
	"net/http"
	"strings"

	"github.com/rocosim/roco/internal/routing"
)

// Metrics returns an http.Handler serving the collector's state in the
// Prometheus text exposition format (version 0.0.4), hand-rolled on the
// standard library only. Counters come from the eviction-proof totals;
// gauges from the most recent closed epoch. The handler takes the
// collector lock for the duration of one scrape — cheap next to the
// epoch granularity the collector samples at.
func Metrics(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		c.mu.Lock()
		writeMetrics(&b, c)
		c.mu.Unlock()
		_, _ = w.Write([]byte(b.String()))
	})
}

func counter(b *strings.Builder, name, help string, v int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func writeMetrics(b *strings.Builder, c *Collector) {
	t := c.totals
	counter(b, "roco_epochs_total", "Telemetry epochs sampled.", t.Epochs)
	counter(b, "roco_cycles_total", "Simulated cycles covered by telemetry.", t.Cycles)
	counter(b, "roco_flits_generated_total", "Flits generated at source PEs.", t.Generated)
	counter(b, "roco_flits_delivered_total", "Flits delivered to destination PEs.", t.Delivered)
	counter(b, "roco_flits_dropped_total", "Flits discarded by fault handling.", t.Dropped)
	counter(b, "roco_retransmissions_total", "Reliable-delivery copies launched beyond first attempts.", t.Retransmissions)
	counter(b, "roco_recovered_packets_total", "Packets whose accepted delivery was a retransmitted copy.", t.Recovered)
	counter(b, "roco_giveups_total", "Packets terminally abandoned by the reliable-delivery protocol.", t.GiveUps)
	counter(b, "roco_link_flits_total", "Flits driven onto inter-router links.", t.LinkFlits)
	counter(b, "roco_crossbar_traversals_total", "Flits crossing a switch fabric.", t.CrossbarFlits)
	counter(b, "roco_sa_grants_total", "Switch-allocator grants.", t.SAGrants)
	counter(b, "roco_sa_conflicts_total", "Contended switch-allocator requests (Figure 3 numerator).", t.SAConflicts)
	counter(b, "roco_credit_stalls_total", "Channel-cycles a switch-ready flit stalled on zero downstream credit.", t.CreditStalls)
	counter(b, "roco_ejections_total", "Flits delivered through the crossbar ejection path.", t.Ejections)
	counter(b, "roco_early_ejections_total", "Flits delivered through the early-ejection bypass.", t.EarlyEjections)

	fmt.Fprintf(b, "# HELP roco_energy_nanojoules_total Energy by router module, nJ.\n# TYPE roco_energy_nanojoules_total counter\n")
	for _, m := range []struct {
		name string
		v    float64
	}{
		{"buffers", t.Energy.BuffersNJ},
		{"crossbar", t.Energy.CrossbarNJ},
		{"links", t.Energy.LinksNJ},
		{"arbitration", t.Energy.ArbitrationNJ},
		{"routing", t.Energy.RoutingNJ},
		{"ejection", t.Energy.EjectionNJ},
		{"leakage", t.Energy.LeakageNJ},
	} {
		fmt.Fprintf(b, "roco_energy_nanojoules_total{module=%q} %g\n", m.name, m.v)
	}

	e := c.latestLocked()
	if e == nil {
		return
	}
	gauge(b, "roco_epoch_cycles", "Width of the most recent telemetry epoch, cycles.", float64(e.Cycles))
	gauge(b, "roco_epoch_end_cycle", "Closing cycle of the most recent telemetry epoch.", float64(e.EndCycle))

	links := 0
	for _, l := range c.cfg.Links {
		links += l
	}
	var linkUtil, xbarUtil float64
	if links > 0 && e.Cycles > 0 {
		linkUtil = float64(e.LinkFlits) / float64(links) / float64(e.Cycles)
	}
	if c.cfg.Nodes > 0 && e.Cycles > 0 {
		xbarUtil = float64(e.CrossbarFlits) / float64(c.cfg.Nodes) / float64(e.Cycles)
	}
	gauge(b, "roco_link_utilization", "Network-mean link utilization over the latest epoch, flits/link/cycle.", linkUtil)
	gauge(b, "roco_crossbar_utilization", "Network-mean crossbar traversals per node per cycle over the latest epoch.", xbarUtil)

	eject := e.Ejections + e.EarlyEjections
	var earlyRatio float64
	if eject > 0 {
		earlyRatio = float64(e.EarlyEjections) / float64(eject)
	}
	gauge(b, "roco_early_ejection_ratio", "Fraction of latest-epoch deliveries that used the early-ejection bypass.", earlyRatio)

	fmt.Fprintf(b, "# HELP roco_vc_occupancy_flits Buffered flits by path-set class at the latest epoch boundary.\n# TYPE roco_vc_occupancy_flits gauge\n")
	for cl := 0; cl < routing.NumClasses; cl++ {
		fmt.Fprintf(b, "roco_vc_occupancy_flits{class=%q} %d\n", ClassName(cl), e.Occupancy[cl])
	}

	fmt.Fprintf(b, "# HELP roco_node_link_utilization Per-node link utilization over the latest epoch, flits/link/cycle.\n# TYPE roco_node_link_utilization gauge\n")
	for id := range e.Nodes {
		fmt.Fprintf(b, "roco_node_link_utilization{node=\"%d\"} %g\n",
			id, e.Nodes[id].LinkUtilization(c.cfg.Links[id], e.Cycles))
	}
}
