// Package telemetry implements the epoch-based time-series collector
// behind Config.TelemetryEvery: a fixed-size ring of preallocated epoch
// records, each snapshotting the per-router and per-module counters the
// paper's evaluation reasons about — link and crossbar utilization, VC
// occupancy by path-set class (dx/dy/txy/tyx/Inj*), switch-allocator
// grants and conflicts, early-ejection hits, credit stalls,
// retransmission activity, and the per-module energy split of the power
// model.
//
// The collector is sampled by the simulation coordinator at epoch
// boundaries, after every kernel barrier has been crossed: the routers'
// event counters are updated at event time identically by the
// reference, activity-gated, and sharded kernels, so the sampled stream
// is bit-identical across kernels and sampling never perturbs a run
// (the bit-identical-Results contract). Nothing in the per-cycle hot
// path touches the collector — a disabled collector costs one int64
// comparison per cycle in the network, and an enabled one allocates
// only at construction time.
//
// Concurrency: the simulation goroutine calls Sample; HTTP handlers
// (see Metrics) read concurrently through the same mutex. The lock is
// taken once per epoch and once per scrape, never per cycle.
package telemetry

import (
	"sync"

	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
)

// DefaultCapacity is the epoch-ring size when Config.Capacity is zero:
// enough history for a long run at coarse epochs while bounding memory
// (a 64-node epoch record is ~12 KB).
const DefaultCapacity = 512

// Config sizes a collector.
type Config struct {
	// Every is the epoch length in cycles (must be > 0; the network
	// simply builds no collector when telemetry is off).
	Every int64
	// Capacity bounds the ring in epochs (0 selects DefaultCapacity).
	// When the ring is full the oldest epoch is evicted; cumulative
	// totals survive eviction.
	Capacity int
	// Nodes is the router count.
	Nodes int
	// Links[i] is node i's live outgoing link count, the denominator of
	// its link-utilization series (mesh edge nodes have fewer links).
	Links []int
	// Profile prices the per-module energy series. A zero profile
	// yields all-zero energy series (direct network users who did not
	// thread a power profile through still get the activity series).
	Profile power.Profile
}

// NodeSample is one router's activity during one epoch: deltas of the
// per-event counters plus an instantaneous VC-occupancy snapshot taken
// at the epoch boundary.
type NodeSample struct {
	LinkFlits          int64
	CrossbarTraversals int64
	BufferWrites       int64
	BufferReads        int64
	VAOps              int64
	VAGrants           int64
	SAOps              int64
	SAGrants           int64
	RouteComputations  int64
	Ejections          int64
	EarlyEjections     int64
	DroppedFlits       int64
	CreditStalls       int64
	// Occupancy is the flits buffered at the epoch's closing cycle,
	// split by path-set class (indexed by routing.Turn; baseline
	// routers report everything under ContinueX).
	Occupancy [routing.NumClasses]int32
	// OccupancyTotal sums Occupancy.
	OccupancyTotal int32
}

// LinkUtilization returns the node's mean outgoing-link utilization in
// flits per link per cycle over the epoch.
func (s *NodeSample) LinkUtilization(links int, cycles int64) float64 {
	if links <= 0 || cycles <= 0 {
		return 0
	}
	return float64(s.LinkFlits) / float64(links) / float64(cycles)
}

// Epoch is one closed sampling interval (StartCycle, EndCycle].
type Epoch struct {
	// Index is the epoch's global sequence number, stable across ring
	// eviction.
	Index int64
	// StartCycle/EndCycle delimit the interval; Cycles is its width.
	StartCycle int64
	EndCycle   int64
	Cycles     int64

	// Network-wide flit-ledger deltas (reconciled against the
	// flit-conservation auditor by the telemetry tests).
	Generated int64
	Delivered int64
	Dropped   int64

	// Reliable-delivery protocol deltas (zero without Config.Reliable).
	Retransmissions int64
	Recovered       int64
	GiveUps         int64

	// Aggregates over all nodes.
	LinkFlits      int64
	CrossbarFlits  int64
	SAGrants       int64
	SAConflicts    int64 // contended switch requests (Figure 3 numerator)
	CreditStalls   int64
	Ejections      int64
	EarlyEjections int64
	Occupancy      [routing.NumClasses]int64
	OccupancyTotal int64

	// Energy is the epoch's per-module energy split. Dynamic terms
	// price the epoch's event deltas; leakage is LeakagePerCycle x
	// nodes x Cycles, synthesized network-side so the stream never
	// reads the per-router cycle counters (which lag in the gated
	// kernel until wake-up replay).
	Energy power.Breakdown

	// Nodes is the per-router split, indexed by node id.
	Nodes []NodeSample
}

// Totals accumulates every epoch ever sampled, surviving ring eviction;
// the Prometheus counters are served from here.
type Totals struct {
	Epochs int64
	Cycles int64

	Generated int64
	Delivered int64
	Dropped   int64

	Retransmissions int64
	Recovered       int64
	GiveUps         int64

	LinkFlits      int64
	CrossbarFlits  int64
	SAGrants       int64
	SAConflicts    int64
	CreditStalls   int64
	Ejections      int64
	EarlyEjections int64

	Energy power.Breakdown
}

// NetSample is the network-side counter snapshot handed to Sample: the
// flit-conservation ledger plus the reliability tracker's counters, all
// cumulative since the start of the run.
type NetSample struct {
	GenFlits        int64
	DelFlits        int64
	DropFlits       int64
	Retransmissions int64
	Recovered       int64
	GiveUps         int64
}

// Series is an immutable snapshot of a collector: the retained epochs
// in chronological order plus the eviction-proof totals. It is the
// programmatic result surface (network Result.Telemetry).
type Series struct {
	// Every is the epoch length in cycles.
	Every int64
	// Nodes is the router count; Links the per-node live link counts.
	Nodes int
	Links []int
	// Epochs lists the retained epochs, oldest first.
	Epochs []Epoch
	// Evicted counts epochs pushed out of the ring (their contribution
	// survives in Totals).
	Evicted int64
	// Totals accumulates every epoch ever sampled.
	Totals Totals
}

// Collector samples router and network counters into the epoch ring.
type Collector struct {
	mu  sync.Mutex
	cfg Config

	ring    []Epoch
	start   int // ring index of the oldest retained epoch
	count   int // retained epochs
	evicted int64

	lastCycle int64
	prevAct   []router.Activity
	prevCont  router.Contention
	prevNet   NetSample
	scratch   router.Activity // per-epoch summed delta, for energy pricing

	totals Totals
}

// New builds a collector, preallocating the full ring (including every
// epoch's Nodes slice) so Sample never allocates.
func New(cfg Config) *Collector {
	if cfg.Every <= 0 {
		panic("telemetry: Every must be > 0")
	}
	if cfg.Nodes <= 0 {
		panic("telemetry: Nodes must be > 0")
	}
	if len(cfg.Links) != cfg.Nodes {
		panic("telemetry: Links must have one entry per node")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	c := &Collector{
		cfg:     cfg,
		ring:    make([]Epoch, cfg.Capacity),
		prevAct: make([]router.Activity, cfg.Nodes),
	}
	for i := range c.ring {
		c.ring[i].Nodes = make([]NodeSample, cfg.Nodes)
	}
	return c
}

// Every returns the configured epoch length.
func (c *Collector) Every() int64 { return c.cfg.Every }

// Sample closes the epoch ending at cycle: it reads every router's
// event counters (deltas against the previous epoch), snapshots VC
// occupancy, prices the epoch's energy, and folds the network ledger
// deltas in. Allocation-free. A call with no elapsed cycles is a no-op,
// so the final partial-epoch flush at collection time is idempotent.
//
// The caller must guarantee quiescence: all kernel workers parked, no
// router mid-tick. The network calls it from the coordinator at cycle
// boundaries.
func (c *Collector) Sample(cycle int64, routers []router.Router, net NetSample) {
	cycles := cycle - c.lastCycle
	if cycles <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Claim the next ring slot, evicting the oldest epoch when full.
	var slot int
	if c.count < len(c.ring) {
		slot = (c.start + c.count) % len(c.ring)
		c.count++
	} else {
		slot = c.start
		c.start = (c.start + 1) % len(c.ring)
		c.evicted++
	}
	e := &c.ring[slot]
	nodes := e.Nodes
	*e = Epoch{
		Index:      c.totals.Epochs,
		StartCycle: c.lastCycle,
		EndCycle:   cycle,
		Cycles:     cycles,
		Nodes:      nodes,
	}

	c.scratch = router.Activity{}
	var cont router.Contention
	for i, r := range routers {
		cur := r.Activity()
		prev := &c.prevAct[i]
		ns := &e.Nodes[i]
		*ns = NodeSample{
			LinkFlits:          cur.LinkFlits - prev.LinkFlits,
			CrossbarTraversals: cur.CrossbarTraversals - prev.CrossbarTraversals,
			BufferWrites:       cur.BufferWrites - prev.BufferWrites,
			BufferReads:        cur.BufferReads - prev.BufferReads,
			VAOps:              cur.VAOps - prev.VAOps,
			VAGrants:           cur.VAGrants - prev.VAGrants,
			SAOps:              cur.SAOps - prev.SAOps,
			SAGrants:           cur.SAGrants - prev.SAGrants,
			RouteComputations:  cur.RouteComputations - prev.RouteComputations,
			Ejections:          cur.Ejections - prev.Ejections,
			EarlyEjections:     cur.EarlyEjections - prev.EarlyEjections,
			DroppedFlits:       cur.DroppedFlits - prev.DroppedFlits,
			CreditStalls:       cur.CreditStalls - prev.CreditStalls,
		}
		ns.OccupancyTotal = int32(r.VCOccupancy(&ns.Occupancy))
		// Deliberately not copying cur.Cycles into the delta: the
		// per-router cycle counter lags under the activity-gated kernel
		// (sleep is replayed at wake-up), so reading it would make the
		// stream kernel-dependent. Leakage is synthesized below from
		// the epoch width instead.
		*prev = *cur
		cont.Add(r.Contention())

		c.scratch.LinkFlits += ns.LinkFlits
		c.scratch.CrossbarTraversals += ns.CrossbarTraversals
		c.scratch.BufferWrites += ns.BufferWrites
		c.scratch.BufferReads += ns.BufferReads
		c.scratch.VAOps += ns.VAOps
		c.scratch.SAOps += ns.SAOps
		c.scratch.RouteComputations += ns.RouteComputations
		c.scratch.Ejections += ns.Ejections
		c.scratch.EarlyEjections += ns.EarlyEjections

		e.SAGrants += ns.SAGrants
		e.CreditStalls += ns.CreditStalls
		e.Ejections += ns.Ejections
		e.EarlyEjections += ns.EarlyEjections
		for cl, occ := range ns.Occupancy {
			e.Occupancy[cl] += int64(occ)
		}
		e.OccupancyTotal += int64(ns.OccupancyTotal)
	}
	e.LinkFlits = c.scratch.LinkFlits
	e.CrossbarFlits = c.scratch.CrossbarTraversals
	e.SAConflicts = (cont.RowFailures + cont.ColFailures) -
		(c.prevCont.RowFailures + c.prevCont.ColFailures)
	c.prevCont = cont

	e.Generated = net.GenFlits - c.prevNet.GenFlits
	e.Delivered = net.DelFlits - c.prevNet.DelFlits
	e.Dropped = net.DropFlits - c.prevNet.DropFlits
	e.Retransmissions = net.Retransmissions - c.prevNet.Retransmissions
	e.Recovered = net.Recovered - c.prevNet.Recovered
	e.GiveUps = net.GiveUps - c.prevNet.GiveUps
	c.prevNet = net

	// Per-module energy: dynamic terms from the epoch's event deltas,
	// leakage synthesized from the epoch width (see above).
	c.scratch.Cycles = cycles * int64(c.cfg.Nodes)
	e.Energy = power.AccountDetailed(c.cfg.Profile, &c.scratch)

	c.totals.Epochs++
	c.totals.Cycles += cycles
	c.totals.Generated += e.Generated
	c.totals.Delivered += e.Delivered
	c.totals.Dropped += e.Dropped
	c.totals.Retransmissions += e.Retransmissions
	c.totals.Recovered += e.Recovered
	c.totals.GiveUps += e.GiveUps
	c.totals.LinkFlits += e.LinkFlits
	c.totals.CrossbarFlits += e.CrossbarFlits
	c.totals.SAGrants += e.SAGrants
	c.totals.SAConflicts += e.SAConflicts
	c.totals.CreditStalls += e.CreditStalls
	c.totals.Ejections += e.Ejections
	c.totals.EarlyEjections += e.EarlyEjections
	c.totals.Energy.BuffersNJ += e.Energy.BuffersNJ
	c.totals.Energy.CrossbarNJ += e.Energy.CrossbarNJ
	c.totals.Energy.LinksNJ += e.Energy.LinksNJ
	c.totals.Energy.ArbitrationNJ += e.Energy.ArbitrationNJ
	c.totals.Energy.RoutingNJ += e.Energy.RoutingNJ
	c.totals.Energy.EjectionNJ += e.Energy.EjectionNJ
	c.totals.Energy.LeakageNJ += e.Energy.LeakageNJ

	c.lastCycle = cycle
}

// Totals returns the eviction-proof cumulative counters.
func (c *Collector) Totals() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// Snapshot deep-copies the retained epochs (oldest first) and totals
// into an immutable Series. Called once at collection time and per
// offline export; not a hot path.
func (c *Collector) Snapshot() *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Series{
		Every:   c.cfg.Every,
		Nodes:   c.cfg.Nodes,
		Links:   append([]int(nil), c.cfg.Links...),
		Epochs:  make([]Epoch, c.count),
		Evicted: c.evicted,
		Totals:  c.totals,
	}
	for i := 0; i < c.count; i++ {
		src := &c.ring[(c.start+i)%len(c.ring)]
		s.Epochs[i] = *src
		s.Epochs[i].Nodes = append([]NodeSample(nil), src.Nodes...)
	}
	return s
}

// SnapshotSince is Snapshot restricted to the retained epochs with
// Index greater than since — the incremental read behind live epoch
// streaming (pass the last Index already seen; -1 reads everything
// retained). Returns nil when no retained epoch is newer.
func (c *Collector) SnapshotSince(since int64) *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Epoch indices are assigned sequentially, so the retained window
	// [first, first+count) intersects (since, inf) in a contiguous tail.
	skip := 0
	if c.count > 0 {
		first := c.ring[c.start].Index
		if since >= first {
			skip = int(since - first + 1)
		}
	}
	if skip >= c.count {
		return nil
	}
	s := &Series{
		Every:   c.cfg.Every,
		Nodes:   c.cfg.Nodes,
		Links:   append([]int(nil), c.cfg.Links...),
		Epochs:  make([]Epoch, c.count-skip),
		Evicted: c.evicted,
		Totals:  c.totals,
	}
	for i := skip; i < c.count; i++ {
		src := &c.ring[(c.start+i)%len(c.ring)]
		s.Epochs[i-skip] = *src
		s.Epochs[i-skip].Nodes = append([]NodeSample(nil), src.Nodes...)
	}
	return s
}

// latestLocked returns the most recent epoch, or nil. Callers hold mu.
func (c *Collector) latestLocked() *Epoch {
	if c.count == 0 {
		return nil
	}
	return &c.ring[(c.start+c.count-1)%len(c.ring)]
}

// LinkUtilization returns the network-mean outgoing-link utilization of
// one epoch, in flits per link per cycle.
func (s *Series) LinkUtilization(e *Epoch) float64 {
	links := 0
	for _, l := range s.Links {
		links += l
	}
	if links == 0 || e.Cycles == 0 {
		return 0
	}
	return float64(e.LinkFlits) / float64(links) / float64(e.Cycles)
}

// CrossbarUtilization returns one epoch's mean crossbar traversals per
// node per cycle.
func (s *Series) CrossbarUtilization(e *Epoch) float64 {
	if s.Nodes == 0 || e.Cycles == 0 {
		return 0
	}
	return float64(e.CrossbarFlits) / float64(s.Nodes) / float64(e.Cycles)
}

// ClassName names occupancy class i with the paper's VC-class
// vocabulary (dx, dy, txy, tyx, Injxy, Injyx).
func ClassName(i int) string { return routing.Turn(i).String() }
