package telemetry

import (
	"github.com/rocosim/roco/internal/snapshot"
)

func saveNodeSample(e *snapshot.Encoder, s *NodeSample) {
	e.I64(s.LinkFlits)
	e.I64(s.CrossbarTraversals)
	e.I64(s.BufferWrites)
	e.I64(s.BufferReads)
	e.I64(s.VAOps)
	e.I64(s.VAGrants)
	e.I64(s.SAOps)
	e.I64(s.SAGrants)
	e.I64(s.RouteComputations)
	e.I64(s.Ejections)
	e.I64(s.EarlyEjections)
	e.I64(s.DroppedFlits)
	e.I64(s.CreditStalls)
	for _, o := range s.Occupancy {
		e.U32(uint32(o))
	}
	e.U32(uint32(s.OccupancyTotal))
}

func loadNodeSample(d *snapshot.Decoder, s *NodeSample) {
	s.LinkFlits = d.I64()
	s.CrossbarTraversals = d.I64()
	s.BufferWrites = d.I64()
	s.BufferReads = d.I64()
	s.VAOps = d.I64()
	s.VAGrants = d.I64()
	s.SAOps = d.I64()
	s.SAGrants = d.I64()
	s.RouteComputations = d.I64()
	s.Ejections = d.I64()
	s.EarlyEjections = d.I64()
	s.DroppedFlits = d.I64()
	s.CreditStalls = d.I64()
	for i := range s.Occupancy {
		s.Occupancy[i] = int32(d.U32())
	}
	s.OccupancyTotal = int32(d.U32())
}

func saveEpoch(e *snapshot.Encoder, ep *Epoch) {
	e.I64(ep.Index)
	e.I64(ep.StartCycle)
	e.I64(ep.EndCycle)
	e.I64(ep.Cycles)
	e.I64(ep.Generated)
	e.I64(ep.Delivered)
	e.I64(ep.Dropped)
	e.I64(ep.Retransmissions)
	e.I64(ep.Recovered)
	e.I64(ep.GiveUps)
	e.I64(ep.LinkFlits)
	e.I64(ep.CrossbarFlits)
	e.I64(ep.SAGrants)
	e.I64(ep.SAConflicts)
	e.I64(ep.CreditStalls)
	e.I64(ep.Ejections)
	e.I64(ep.EarlyEjections)
	for _, o := range ep.Occupancy {
		e.I64(o)
	}
	e.I64(ep.OccupancyTotal)
	ep.Energy.SaveState(e)
	e.Int(len(ep.Nodes))
	for i := range ep.Nodes {
		saveNodeSample(e, &ep.Nodes[i])
	}
}

// loadEpoch fills ep in place, preserving its preallocated Nodes slice.
func loadEpoch(d *snapshot.Decoder, ep *Epoch) {
	ep.Index = d.I64()
	ep.StartCycle = d.I64()
	ep.EndCycle = d.I64()
	ep.Cycles = d.I64()
	ep.Generated = d.I64()
	ep.Delivered = d.I64()
	ep.Dropped = d.I64()
	ep.Retransmissions = d.I64()
	ep.Recovered = d.I64()
	ep.GiveUps = d.I64()
	ep.LinkFlits = d.I64()
	ep.CrossbarFlits = d.I64()
	ep.SAGrants = d.I64()
	ep.SAConflicts = d.I64()
	ep.CreditStalls = d.I64()
	ep.Ejections = d.I64()
	ep.EarlyEjections = d.I64()
	for i := range ep.Occupancy {
		ep.Occupancy[i] = d.I64()
	}
	ep.OccupancyTotal = d.I64()
	ep.Energy.LoadState(d)
	if n := d.SliceLen(8); d.Err() == nil && n != len(ep.Nodes) {
		d.Corruptf("epoch has %d node samples, collector is sized for %d", n, len(ep.Nodes))
		return
	}
	for i := range ep.Nodes {
		loadNodeSample(d, &ep.Nodes[i])
	}
}

func saveTotals(e *snapshot.Encoder, t *Totals) {
	e.I64(t.Epochs)
	e.I64(t.Cycles)
	e.I64(t.Generated)
	e.I64(t.Delivered)
	e.I64(t.Dropped)
	e.I64(t.Retransmissions)
	e.I64(t.Recovered)
	e.I64(t.GiveUps)
	e.I64(t.LinkFlits)
	e.I64(t.CrossbarFlits)
	e.I64(t.SAGrants)
	e.I64(t.SAConflicts)
	e.I64(t.CreditStalls)
	e.I64(t.Ejections)
	e.I64(t.EarlyEjections)
	t.Energy.SaveState(e)
}

func loadTotals(d *snapshot.Decoder, t *Totals) {
	t.Epochs = d.I64()
	t.Cycles = d.I64()
	t.Generated = d.I64()
	t.Delivered = d.I64()
	t.Dropped = d.I64()
	t.Retransmissions = d.I64()
	t.Recovered = d.I64()
	t.GiveUps = d.I64()
	t.LinkFlits = d.I64()
	t.CrossbarFlits = d.I64()
	t.SAGrants = d.I64()
	t.SAConflicts = d.I64()
	t.CreditStalls = d.I64()
	t.Ejections = d.I64()
	t.EarlyEjections = d.I64()
	t.Energy.LoadState(d)
}

// SaveState serializes the collector: the retained epochs in logical
// (oldest-first) order, eviction count, the previous-epoch baselines, and
// the cumulative totals. The ring's physical rotation is not preserved —
// only its logical content matters (eviction order and Snapshot output are
// functions of the logical sequence alone).
func (c *Collector) SaveState(e *snapshot.Encoder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.I64(c.cfg.Every)
	e.Int(len(c.ring))
	e.Int(c.cfg.Nodes)
	e.Int(c.count)
	for i := 0; i < c.count; i++ {
		saveEpoch(e, &c.ring[(c.start+i)%len(c.ring)])
	}
	e.I64(c.evicted)
	e.I64(c.lastCycle)
	for i := range c.prevAct {
		c.prevAct[i].SaveState(e)
	}
	c.prevCont.SaveState(e)
	e.I64(c.prevNet.GenFlits)
	e.I64(c.prevNet.DelFlits)
	e.I64(c.prevNet.DropFlits)
	e.I64(c.prevNet.Retransmissions)
	e.I64(c.prevNet.Recovered)
	e.I64(c.prevNet.GiveUps)
	saveTotals(e, &c.totals)
}

// LoadState restores a collector written by SaveState into a freshly built
// collector with the same configuration; a shape mismatch poisons the
// decoder. Retained epochs land at ring positions 0..count-1 (start = 0),
// which is logically identical to any rotation of the live ring.
func (c *Collector) LoadState(d *snapshot.Decoder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if every := d.I64(); d.Err() == nil && every != c.cfg.Every {
		d.Corruptf("telemetry epoch length %d, snapshot had %d", c.cfg.Every, every)
		return
	}
	if capEp := d.Int(); d.Err() == nil && capEp != len(c.ring) {
		d.Corruptf("telemetry ring capacity %d, snapshot had %d", len(c.ring), capEp)
		return
	}
	if nodes := d.Int(); d.Err() == nil && nodes != c.cfg.Nodes {
		d.Corruptf("telemetry node count %d, snapshot had %d", c.cfg.Nodes, nodes)
		return
	}
	count := d.Int()
	if d.Err() != nil {
		return
	}
	if count < 0 || count > len(c.ring) {
		d.Corruptf("telemetry ring holds %d epochs over capacity %d", count, len(c.ring))
		return
	}
	c.start = 0
	c.count = count
	for i := 0; i < count; i++ {
		loadEpoch(d, &c.ring[i])
		if d.Err() != nil {
			return
		}
	}
	c.evicted = d.I64()
	c.lastCycle = d.I64()
	for i := range c.prevAct {
		c.prevAct[i].LoadState(d)
	}
	c.prevCont.LoadState(d)
	c.prevNet.GenFlits = d.I64()
	c.prevNet.DelFlits = d.I64()
	c.prevNet.DropFlits = d.I64()
	c.prevNet.Retransmissions = d.I64()
	c.prevNet.Recovered = d.I64()
	c.prevNet.GiveUps = d.I64()
	loadTotals(d, &c.totals)
}
