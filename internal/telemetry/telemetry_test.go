package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/routing"
)

// fakeRouter satisfies router.Router through a nil embed and overrides
// only the three methods Sample reads: Activity, Contention, and
// VCOccupancy. Calling anything else nil-panics, which doubles as a
// guard that sampling never touches mutating router methods.
type fakeRouter struct {
	router.Router
	act  router.Activity
	cont router.Contention
	occ  [routing.NumClasses]int32
}

func (f *fakeRouter) Activity() *router.Activity     { return &f.act }
func (f *fakeRouter) Contention() *router.Contention { return &f.cont }

func (f *fakeRouter) VCOccupancy(per *[routing.NumClasses]int32) int {
	total := 0
	for cl, n := range f.occ {
		per[cl] += n
		total += int(n)
	}
	return total
}

// testCollector builds a collector over n fake routers with 2 links each.
func testCollector(n, capacity int) (*Collector, []*fakeRouter, []router.Router) {
	links := make([]int, n)
	for i := range links {
		links[i] = 2
	}
	c := New(Config{
		Every:    100,
		Capacity: capacity,
		Nodes:    n,
		Links:    links,
		Profile:  power.NewProfile(power.RoCoStructure()),
	})
	fakes := make([]*fakeRouter, n)
	routers := make([]router.Router, n)
	for i := range fakes {
		fakes[i] = &fakeRouter{}
		routers[i] = fakes[i]
	}
	return c, fakes, routers
}

func TestSampleDeltasAndTotals(t *testing.T) {
	c, fakes, routers := testCollector(2, 8)

	fakes[0].act.LinkFlits = 10
	fakes[0].act.SAGrants = 7
	fakes[0].act.EarlyEjections = 3
	fakes[0].cont.RowFailures = 4
	fakes[0].occ[int(routing.TurnXY)] = 5
	fakes[1].act.CreditStalls = 6
	c.Sample(100, routers, NetSample{GenFlits: 40, DelFlits: 30})

	fakes[0].act.LinkFlits = 25 // +15 in epoch 1
	fakes[0].cont.RowFailures = 9
	fakes[0].occ[int(routing.TurnXY)] = 0
	c.Sample(250, routers, NetSample{GenFlits: 100, DelFlits: 90})

	s := c.Snapshot()
	if len(s.Epochs) != 2 || s.Evicted != 0 {
		t.Fatalf("got %d epochs, %d evicted, want 2, 0", len(s.Epochs), s.Evicted)
	}
	e0, e1 := &s.Epochs[0], &s.Epochs[1]
	if e0.Index != 0 || e0.StartCycle != 0 || e0.EndCycle != 100 || e0.Cycles != 100 {
		t.Fatalf("epoch 0 bounds wrong: %+v", e0)
	}
	if e1.Index != 1 || e1.StartCycle != 100 || e1.EndCycle != 250 || e1.Cycles != 150 {
		t.Fatalf("epoch 1 bounds wrong: %+v", e1)
	}
	if e0.LinkFlits != 10 || e1.LinkFlits != 15 {
		t.Fatalf("link-flit deltas wrong: %d, %d, want 10, 15", e0.LinkFlits, e1.LinkFlits)
	}
	if e0.SAGrants != 7 || e0.CreditStalls != 6 || e0.EarlyEjections != 3 {
		t.Fatalf("epoch 0 aggregates wrong: %+v", e0)
	}
	if e0.SAConflicts != 4 || e1.SAConflicts != 5 {
		t.Fatalf("SA-conflict deltas wrong: %d, %d, want 4, 5", e0.SAConflicts, e1.SAConflicts)
	}
	if e0.Occupancy[int(routing.TurnXY)] != 5 || e0.OccupancyTotal != 5 {
		t.Fatalf("epoch 0 occupancy wrong: %+v", e0.Occupancy)
	}
	if e1.OccupancyTotal != 0 {
		t.Fatalf("epoch 1 occupancy snapshot should be instantaneous, got %d", e1.OccupancyTotal)
	}
	if e0.Generated != 40 || e1.Generated != 60 || e0.Delivered != 30 || e1.Delivered != 60 {
		t.Fatalf("ledger deltas wrong: %+v %+v", e0, e1)
	}
	if e0.Energy.LeakageNJ <= 0 || e1.Energy.LeakageNJ <= e0.Energy.LeakageNJ {
		t.Fatalf("leakage must scale with epoch width: %g then %g", e0.Energy.LeakageNJ, e1.Energy.LeakageNJ)
	}
	tot := c.Totals()
	if tot.Epochs != 2 || tot.Cycles != 250 || tot.Generated != 100 || tot.LinkFlits != 25 || tot.SAConflicts != 9 {
		t.Fatalf("totals wrong: %+v", tot)
	}
	if s.LinkUtilization(e0) != 10.0/4/100 {
		t.Fatalf("link utilization wrong: %g", s.LinkUtilization(e0))
	}
}

func TestRingEvictionPreservesTotals(t *testing.T) {
	c, fakes, routers := testCollector(1, 2)
	for i := int64(1); i <= 5; i++ {
		fakes[0].act.LinkFlits = 10 * i
		c.Sample(100*i, routers, NetSample{GenFlits: i})
	}
	s := c.Snapshot()
	if len(s.Epochs) != 2 || s.Evicted != 3 {
		t.Fatalf("got %d retained, %d evicted, want 2, 3", len(s.Epochs), s.Evicted)
	}
	if s.Epochs[0].Index != 3 || s.Epochs[1].Index != 4 {
		t.Fatalf("retained wrong epochs: %d, %d", s.Epochs[0].Index, s.Epochs[1].Index)
	}
	if s.Totals.Epochs != 5 || s.Totals.Cycles != 500 || s.Totals.LinkFlits != 50 || s.Totals.Generated != 5 {
		t.Fatalf("totals must survive eviction: %+v", s.Totals)
	}
}

func TestSampleIdempotentAtSameCycle(t *testing.T) {
	c, _, routers := testCollector(1, 4)
	c.Sample(100, routers, NetSample{})
	c.Sample(100, routers, NetSample{}) // no elapsed cycles: must be a no-op
	c.Sample(90, routers, NetSample{})  // never goes backwards either
	if tot := c.Totals(); tot.Epochs != 1 {
		t.Fatalf("repeated flush recorded %d epochs, want 1", tot.Epochs)
	}
}

func TestSampleDoesNotAllocate(t *testing.T) {
	c, fakes, routers := testCollector(16, 4)
	cycle := int64(0)
	allocs := testing.AllocsPerRun(100, func() {
		cycle += 100
		fakes[3].act.LinkFlits += 17
		c.Sample(cycle, routers, NetSample{GenFlits: cycle})
	})
	if allocs != 0 {
		t.Fatalf("Sample allocates %v objects per epoch, want 0 (ring eviction included)", allocs)
	}
}

func TestMetricsHandler(t *testing.T) {
	c, fakes, routers := testCollector(2, 4)
	fakes[0].act.LinkFlits = 12
	fakes[0].act.EarlyEjections = 2
	fakes[0].act.Ejections = 2
	fakes[1].occ[int(routing.ContinueY)] = 3
	c.Sample(100, routers, NetSample{GenFlits: 80, DelFlits: 60})

	srv := httptest.NewServer(Metrics(c))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("wrong content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"roco_flits_generated_total 80",
		"roco_flits_delivered_total 60",
		"roco_link_flits_total 12",
		"roco_link_utilization 0.03",
		"roco_crossbar_utilization",
		"roco_early_ejection_ratio 0.5",
		`roco_vc_occupancy_flits{class="dy"} 3`,
		`roco_energy_nanojoules_total{module="leakage"}`,
		`roco_node_link_utilization{node="0"} 0.06`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Every series line must parse as "name value" or "name{labels} value",
	// and every series must be preceded by HELP and TYPE headers.
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if h, ok := strings.CutPrefix(line, "# HELP "); ok {
			seen[strings.SplitN(h, " ", 2)[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed series line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
			name = name[:i]
		}
		if !seen[name] {
			t.Fatalf("series %q has no preceding HELP header", name)
		}
	}
}

func TestMetricsBeforeFirstEpoch(t *testing.T) {
	c, _, _ := testCollector(1, 4)
	srv := httptest.NewServer(Metrics(c))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "roco_epochs_total 0") {
		t.Fatal("empty collector must still serve its counters")
	}
	if strings.Contains(string(raw), "roco_link_utilization") {
		t.Fatal("gauges must be absent before the first epoch closes")
	}
}
