package topology

import "fmt"

// LinkClass classifies one directed link of a topology by its physical
// substrate. Flat single-die topologies have only on-die wires; the
// hierarchical multi-chip topologies additionally expose die-to-die (D2D)
// boundary links, which the network wires with their own latency,
// serialization bandwidth, and per-flit energy.
type LinkClass uint8

const (
	// OnDie is an ordinary 1-cycle on-die wire.
	OnDie LinkClass = iota
	// D2D is a die-to-die boundary link between two chiplets.
	D2D
)

// String names the link class for reports.
func (c LinkClass) String() string {
	if c == D2D {
		return "d2d"
	}
	return "on-die"
}

// Classed is implemented by topologies whose links are not all equal.
// LinkClass classifies the directed link leaving id through d; it returns
// OnDie for links that do not exist (callers gate on Neighbor). Flat
// topologies simply do not implement the interface.
type Classed interface {
	LinkClass(id int, d Direction) LinkClass
}

// Toroidal marks a topology whose grid wraps around at the edges (Torus,
// MultiChipTorus). Consumers needing torus-specific treatment — wrap-aware
// dimension-order routing, dateline VC classes, double-link dedup in the
// shard scheduler — test for this interface instead of a concrete type.
type Toroidal interface {
	Topology
	// Toroidal reports true; the method exists only as a marker.
	Toroidal() bool
}

// Toroidal marks the flat torus as wrapping.
func (t *Torus) Toroidal() bool { return true }

// Chiplet is implemented by hierarchical multi-chip topologies: a CX x CY
// grid of chiplets, each a ChipW x ChipH grid of nodes, stitched by D2D
// boundary links. Node ids and coordinates remain those of the flat global
// grid (width CX*ChipW, height CY*ChipH), so every flat-grid consumer —
// routing disciplines, shard scheduler, heatmaps — works unchanged; the
// interface only adds the hierarchical view.
type Chiplet interface {
	Topology
	Classed
	// Chips returns the chiplet grid dimensions.
	Chips() (cx, cy int)
	// ChipSize returns the per-chiplet node grid dimensions.
	ChipSize() (w, h int)
	// ChipOf returns the chiplet coordinate holding node id.
	ChipOf(id int) Coord
	// InterfaceNodes returns the nodes of chip whose link in direction d is
	// a D2D boundary link (the near side of the chip's d-facing interface),
	// in ascending id order. It returns nil when no interface exists on
	// that side (grid edge on a multi-chip mesh, or an on-die wrap).
	InterfaceNodes(chip Coord, d Direction) []int
}

// multichip holds the shared geometry of both multi-chip topologies: the
// flat global grid plus the chiplet tiling.
type multichip struct {
	cx, cy int // chiplet grid
	pw, ph int // nodes per chiplet
	w, h   int // global grid (cx*pw x cy*ph)
}

func newMultichip(kind string, chipsX, chipsY, chipW, chipH int) multichip {
	if chipsX < 1 || chipsY < 1 {
		panic(fmt.Sprintf("topology: %s needs at least a 1x1 chiplet grid, got %dx%d", kind, chipsX, chipsY))
	}
	if chipW < 1 || chipH < 1 {
		panic(fmt.Sprintf("topology: %s chiplets need at least 1x1 nodes, got %dx%d", kind, chipW, chipH))
	}
	w, h := chipsX*chipW, chipsY*chipH
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: %s global grid must be at least 2x2, got %dx%d", kind, w, h))
	}
	return multichip{cx: chipsX, cy: chipsY, pw: chipW, ph: chipH, w: w, h: h}
}

// Nodes returns the global node count.
func (m *multichip) Nodes() int { return m.w * m.h }

// Width returns the global X dimension.
func (m *multichip) Width() int { return m.w }

// Height returns the global Y dimension.
func (m *multichip) Height() int { return m.h }

// Chips returns the chiplet grid dimensions.
func (m *multichip) Chips() (int, int) { return m.cx, m.cy }

// ChipSize returns the per-chiplet node grid dimensions.
func (m *multichip) ChipSize() (int, int) { return m.pw, m.ph }

// Coord returns the global position of node id in row-major order.
func (m *multichip) Coord(id int) Coord {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("topology: node id %d out of range [0,%d)", id, m.Nodes()))
	}
	return Coord{X: id % m.w, Y: id / m.w}
}

// ID returns the node at global position c.
func (m *multichip) ID(c Coord) int {
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d multichip grid", c, m.w, m.h))
	}
	return c.Y*m.w + c.X
}

// ChipOf returns the chiplet coordinate holding node id.
func (m *multichip) ChipOf(id int) Coord {
	c := m.Coord(id)
	return Coord{X: c.X / m.pw, Y: c.Y / m.ph}
}

// step moves c one hop in direction d without bounds handling; the boolean
// is false for non-cardinal directions.
func step(c Coord, d Direction) (Coord, bool) {
	switch d {
	case North:
		c.Y++
	case East:
		c.X++
	case South:
		c.Y--
	case West:
		c.X--
	default:
		return c, false
	}
	return c, true
}

// interfaceNodes enumerates the near side of chip's d-facing interface
// under the concrete topology's neighbor relation (mesh edges yield nil;
// torus wraps onto the same chiplet are on-die and yield nil too).
func (m *multichip) interfaceNodes(chip Coord, d Direction, neighbor func(id int, d Direction) (int, bool)) []int {
	if chip.X < 0 || chip.X >= m.cx || chip.Y < 0 || chip.Y >= m.cy {
		panic(fmt.Sprintf("topology: chiplet %v outside %dx%d grid", chip, m.cx, m.cy))
	}
	// The near-side nodes are the chip-local edge row/column facing d.
	x0, y0 := chip.X*m.pw, chip.Y*m.ph
	var ids []int
	add := func(c Coord) {
		id := m.ID(c)
		if nbr, ok := neighbor(id, d); ok && m.ChipOf(nbr) != m.ChipOf(id) {
			ids = append(ids, id)
		}
	}
	switch d {
	case North:
		for x := x0; x < x0+m.pw; x++ {
			add(Coord{X: x, Y: y0 + m.ph - 1})
		}
	case East:
		for y := y0; y < y0+m.ph; y++ {
			add(Coord{X: x0 + m.pw - 1, Y: y})
		}
	case South:
		for x := x0; x < x0+m.pw; x++ {
			add(Coord{X: x, Y: y0})
		}
	case West:
		for y := y0; y < y0+m.ph; y++ {
			add(Coord{X: x0, Y: y})
		}
	}
	return ids
}

// MultiChipMesh is a CX x CY grid of chiplets, each a ChipW x ChipH node
// mesh, stitched into one flat global mesh by die-to-die boundary links.
// Connectivity and node numbering are exactly those of the equivalent flat
// Mesh — a 1x1-chiplet configuration IS the flat mesh — but links that
// cross a chiplet boundary carry LinkClass D2D, which the network wires
// with multi-cycle latency, a serialization gap, and a higher per-flit
// energy.
type MultiChipMesh struct {
	multichip
}

// NewMultiChipMesh returns a chipsX x chipsY grid of chipW x chipH
// chiplets. The global grid (chipsX*chipW x chipsY*chipH) must be at least
// 2x2.
func NewMultiChipMesh(chipsX, chipsY, chipW, chipH int) *MultiChipMesh {
	return &MultiChipMesh{newMultichip("multichip mesh", chipsX, chipsY, chipW, chipH)}
}

// Neighbor returns the node adjacent to id in direction d on the flat
// global mesh; edges have no wrap-around links.
func (m *MultiChipMesh) Neighbor(id int, d Direction) (int, bool) {
	c := m.Coord(id)
	c, ok := step(c, d)
	if !ok || c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		return 0, false
	}
	return m.ID(c), true
}

// LinkClass reports D2D for links crossing a chiplet boundary.
func (m *MultiChipMesh) LinkClass(id int, d Direction) LinkClass {
	nbr, ok := m.Neighbor(id, d)
	if ok && m.ChipOf(nbr) != m.ChipOf(id) {
		return D2D
	}
	return OnDie
}

// InterfaceNodes returns the near-side nodes of chip's d-facing D2D
// interface (nil at the global mesh edge).
func (m *MultiChipMesh) InterfaceNodes(chip Coord, d Direction) []int {
	return m.interfaceNodes(chip, d, m.Neighbor)
}

// MultiChipTorus is MultiChipMesh with wrap-around links at the global
// edges. Wrap links between distinct chiplets are D2D like any other
// boundary link; with a single chiplet in a dimension the wrap folds back
// onto the same die and stays on-die (so a 1x1-chiplet configuration IS
// the flat torus).
type MultiChipTorus struct {
	multichip
}

// NewMultiChipTorus returns a chipsX x chipsY toroidal grid of chipW x
// chipH chiplets. The global grid must be at least 2x2.
func NewMultiChipTorus(chipsX, chipsY, chipW, chipH int) *MultiChipTorus {
	return &MultiChipTorus{newMultichip("multichip torus", chipsX, chipsY, chipW, chipH)}
}

// Neighbor returns the node adjacent to id in direction d, wrapping around
// at the global edges. The boolean is false only for Local/Invalid.
func (t *MultiChipTorus) Neighbor(id int, d Direction) (int, bool) {
	c := t.Coord(id)
	c, ok := step(c, d)
	if !ok {
		return 0, false
	}
	c.X = (c.X + t.w) % t.w
	c.Y = (c.Y + t.h) % t.h
	return t.ID(c), true
}

// Toroidal marks the multi-chip torus as wrapping.
func (t *MultiChipTorus) Toroidal() bool { return true }

// LinkClass reports D2D for links crossing a chiplet boundary (including
// wrap links between edge chiplets).
func (t *MultiChipTorus) LinkClass(id int, d Direction) LinkClass {
	nbr, ok := t.Neighbor(id, d)
	if ok && t.ChipOf(nbr) != t.ChipOf(id) {
		return D2D
	}
	return OnDie
}

// InterfaceNodes returns the near-side nodes of chip's d-facing D2D
// interface (nil when the wrap folds back onto the same chiplet).
func (t *MultiChipTorus) InterfaceNodes(chip Coord, d Direction) []int {
	return t.interfaceNodes(chip, d, t.Neighbor)
}
