package topology

import (
	"testing"
	"testing/quick"
)

func TestDirectionOpposite(t *testing.T) {
	cases := map[Direction]Direction{
		North: South, South: North, East: West, West: East, Local: Local,
	}
	for d, want := range cases {
		if got := d.Opposite(); got != want {
			t.Errorf("Opposite(%s) = %s, want %s", d, got, want)
		}
	}
	if Invalid.Opposite() != Invalid {
		t.Error("Opposite(Invalid) should be Invalid")
	}
}

func TestDirectionDimensions(t *testing.T) {
	for _, d := range CardinalDirections {
		if d.IsX() == d.IsY() {
			t.Errorf("%s must lie in exactly one dimension", d)
		}
		if !d.IsCardinal() {
			t.Errorf("%s should be cardinal", d)
		}
	}
	if Local.IsCardinal() || Local.IsX() || Local.IsY() {
		t.Error("Local is not a cardinal direction")
	}
}

func TestDirectionStrings(t *testing.T) {
	want := map[Direction]string{North: "N", East: "E", South: "S", West: "W", Local: "L", Invalid: "?"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("String(%d) = %q, want %q", d, d.String(), s)
		}
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for id := 0; id < m.Nodes(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewMesh(4, 3)
	// Interior node.
	id := m.ID(Coord{1, 1})
	for _, tc := range []struct {
		d    Direction
		want Coord
	}{
		{North, Coord{1, 2}}, {South, Coord{1, 0}}, {East, Coord{2, 1}}, {West, Coord{0, 1}},
	} {
		nb, ok := m.Neighbor(id, tc.d)
		if !ok || m.Coord(nb) != tc.want {
			t.Errorf("Neighbor(%v, %s) = %v,%v want %v", m.Coord(id), tc.d, m.Coord(nb), ok, tc.want)
		}
	}
	// Edges have no wrap-around.
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), West); ok {
		t.Error("west edge should have no west neighbor")
	}
	if _, ok := m.Neighbor(m.ID(Coord{3, 2}), North); ok {
		t.Error("north edge should have no north neighbor")
	}
	if _, ok := m.Neighbor(id, Local); ok {
		t.Error("Local is not a link")
	}
}

func TestMeshNeighborSymmetry(t *testing.T) {
	m := NewMesh(5, 7)
	for id := 0; id < m.Nodes(); id++ {
		for _, d := range CardinalDirections {
			nb, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(nb, d.Opposite())
			if !ok2 || back != id {
				t.Fatalf("neighbor symmetry broken at %d dir %s", id, d)
			}
		}
	}
}

func TestTorusWrapAround(t *testing.T) {
	tr := NewTorus(4, 4)
	nb, ok := tr.Neighbor(tr.ID(Coord{0, 0}), West)
	if !ok || tr.Coord(nb) != (Coord{3, 0}) {
		t.Errorf("torus west wrap = %v, want (3,0)", tr.Coord(nb))
	}
	nb, ok = tr.Neighbor(tr.ID(Coord{2, 3}), North)
	if !ok || tr.Coord(nb) != (Coord{2, 0}) {
		t.Errorf("torus north wrap = %v, want (2,0)", tr.Coord(nb))
	}
	// Every torus node has all four neighbors.
	for id := 0; id < tr.Nodes(); id++ {
		for _, d := range CardinalDirections {
			if _, ok := tr.Neighbor(id, d); !ok {
				t.Fatalf("torus node %d missing neighbor %s", id, d)
			}
		}
	}
}

func TestTorusNeighborSymmetry(t *testing.T) {
	tr := NewTorus(3, 5)
	for id := 0; id < tr.Nodes(); id++ {
		for _, d := range CardinalDirections {
			nb, _ := tr.Neighbor(id, d)
			back, _ := tr.Neighbor(nb, d.Opposite())
			if back != id {
				t.Fatalf("torus symmetry broken at %d dir %s", id, d)
			}
		}
	}
}

func TestManhattanDistanceProperties(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		d := ManhattanDistance(a, b)
		// Symmetric, non-negative, zero iff equal.
		if d != ManhattanDistance(b, a) || d < 0 {
			return false
		}
		return (d == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeshPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMesh(1,1) should panic")
		}
	}()
	NewMesh(1, 1)
}

func TestCoordOutOfRangePanics(t *testing.T) {
	m := NewMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Coord(99) should panic")
		}
	}()
	m.Coord(99)
}
