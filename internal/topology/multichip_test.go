package topology

import "testing"

// TestMultichipMatchesFlatGrid pins the load-bearing equivalence: a
// multi-chip topology's neighbor relation and numbering are exactly the
// flat grid's, chiplets only reclassify links.
func TestMultichipMatchesFlatGrid(t *testing.T) {
	mesh := NewMesh(8, 6)
	mc := NewMultiChipMesh(4, 2, 2, 3)
	torus := NewTorus(8, 6)
	mct := NewMultiChipTorus(4, 2, 2, 3)
	for _, pair := range []struct {
		name       string
		flat, chip Topology
	}{{"mesh", mesh, mc}, {"torus", torus, mct}} {
		if pair.flat.Nodes() != pair.chip.Nodes() {
			t.Fatalf("%s: node counts differ", pair.name)
		}
		for id := 0; id < pair.flat.Nodes(); id++ {
			if pair.flat.Coord(id) != pair.chip.Coord(id) {
				t.Fatalf("%s: coord of %d differs", pair.name, id)
			}
			for _, d := range CardinalDirections {
				fn, fok := pair.flat.Neighbor(id, d)
				cn, cok := pair.chip.Neighbor(id, d)
				if fn != cn || fok != cok {
					t.Fatalf("%s: neighbor(%d, %s) = (%d,%v) flat vs (%d,%v) multichip",
						pair.name, id, d, fn, fok, cn, cok)
				}
			}
		}
	}
}

func TestMultichipChipOf(t *testing.T) {
	m := NewMultiChipMesh(2, 2, 4, 4)
	cases := []struct {
		id   int
		chip Coord
	}{
		{0, Coord{0, 0}}, {3, Coord{0, 0}}, {4, Coord{1, 0}}, {7, Coord{1, 0}},
		{8 * 3, Coord{0, 0}}, {8*4 + 2, Coord{0, 1}}, {8*7 + 7, Coord{1, 1}},
	}
	for _, c := range cases {
		if got := m.ChipOf(c.id); got != c.chip {
			t.Errorf("ChipOf(%d) = %v, want %v", c.id, got, c.chip)
		}
	}
}

// TestMultichipLinkClass checks that exactly the boundary-crossing links
// are D2D, against a brute-force chip comparison.
func TestMultichipLinkClass(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo Chiplet
	}{
		{"mesh", NewMultiChipMesh(3, 2, 2, 3)},
		{"torus", NewMultiChipTorus(3, 2, 2, 3)},
	} {
		var d2d int
		for id := 0; id < tc.topo.Nodes(); id++ {
			for _, d := range CardinalDirections {
				nbr, ok := tc.topo.Neighbor(id, d)
				want := OnDie
				if ok && tc.topo.ChipOf(nbr) != tc.topo.ChipOf(id) {
					want = D2D
					d2d++
				}
				if got := tc.topo.LinkClass(id, d); got != want {
					t.Errorf("%s: LinkClass(%d, %s) = %v, want %v", tc.name, id, d, got, want)
				}
			}
		}
		if d2d == 0 {
			t.Errorf("%s: no D2D links found; test is vacuous", tc.name)
		}
	}
}

// TestMultichipSingleChipHasNoD2D: a 1x1 chiplet grid is the flat
// topology — every link on-die, even the torus wraps.
func TestMultichipSingleChipHasNoD2D(t *testing.T) {
	for _, topo := range []Chiplet{NewMultiChipMesh(1, 1, 6, 6), NewMultiChipTorus(1, 1, 6, 6)} {
		for id := 0; id < topo.Nodes(); id++ {
			for _, d := range CardinalDirections {
				if topo.LinkClass(id, d) != OnDie {
					t.Fatalf("1x1 chiplet grid has a D2D link at node %d %s", id, d)
				}
			}
		}
		for _, d := range CardinalDirections {
			if ns := topo.InterfaceNodes(Coord{0, 0}, d); ns != nil {
				t.Fatalf("1x1 chiplet grid reports interface nodes %v toward %s", ns, d)
			}
		}
	}
}

func TestMultichipInterfaceNodes(t *testing.T) {
	m := NewMultiChipMesh(2, 2, 4, 4)
	// Chip (0,0)'s east interface: the x=3 column, y=0..3.
	want := []int{3, 8 + 3, 16 + 3, 24 + 3}
	got := m.InterfaceNodes(Coord{0, 0}, East)
	if len(got) != len(want) {
		t.Fatalf("east interface of chip (0,0): got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("east interface of chip (0,0): got %v, want %v", got, want)
		}
	}
	// The global west edge has no interface on a mesh.
	if ns := m.InterfaceNodes(Coord{0, 0}, West); ns != nil {
		t.Fatalf("mesh edge reported interface nodes %v", ns)
	}
	// On the torus the same west side wraps to chip (1,0): a real D2D
	// interface.
	tor := NewMultiChipTorus(2, 2, 4, 4)
	if ns := tor.InterfaceNodes(Coord{0, 0}, West); len(ns) != 4 {
		t.Fatalf("torus west wrap interface: got %v, want 4 nodes", ns)
	}
	// Every interface node's link in the interface direction is D2D.
	for _, tc := range []struct {
		topo Chiplet
		name string
	}{{m, "mesh"}, {tor, "torus"}} {
		cx, cy := tc.topo.Chips()
		for x := 0; x < cx; x++ {
			for y := 0; y < cy; y++ {
				for _, d := range CardinalDirections {
					for _, id := range tc.topo.InterfaceNodes(Coord{x, y}, d) {
						if tc.topo.LinkClass(id, d) != D2D {
							t.Fatalf("%s: interface node %d of chip (%d,%d) toward %s has an on-die link", tc.name, id, x, y, d)
						}
						if tc.topo.ChipOf(id) != (Coord{x, y}) {
							t.Fatalf("%s: interface node %d not in chip (%d,%d)", tc.name, id, x, y)
						}
					}
				}
			}
		}
	}
}
