// Package topology provides the geometric substrate for on-chip networks:
// port directions, node coordinates, and regular grid topologies (2D mesh
// and torus). Routers and routing algorithms are expressed in terms of the
// Direction and Topology types defined here.
package topology

import "fmt"

// Direction identifies a router port. The four cardinal directions name the
// inter-router links of a 2D grid; Local names the port that connects the
// router to its attached processing element (PE).
type Direction uint8

const (
	North Direction = iota
	East
	South
	West
	Local
	// Invalid is the zero-content sentinel for "no direction".
	Invalid
)

// NumPorts is the number of ports of a full 5-port router (4 links + PE).
const NumPorts = 5

// CardinalDirections lists the four link directions in a fixed order.
var CardinalDirections = [4]Direction{North, East, South, West}

// String returns the conventional single-letter abbreviation of d.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return "?"
	}
}

// Opposite returns the direction a flit leaving through d arrives from at
// the neighboring router. Opposite(Local) is Local: a flit handed to the PE
// stays at the node.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case East:
		return West
	case South:
		return North
	case West:
		return East
	case Local:
		return Local
	default:
		return Invalid
	}
}

// IsCardinal reports whether d is one of the four link directions.
func (d Direction) IsCardinal() bool {
	return d == North || d == East || d == South || d == West
}

// IsX reports whether d lies in the X dimension (East or West).
func (d Direction) IsX() bool { return d == East || d == West }

// IsY reports whether d lies in the Y dimension (North or South).
func (d Direction) IsY() bool { return d == North || d == South }

// Coord is a node position on the grid. X grows eastward, Y grows
// northward, with (0,0) at the south-west corner.
type Coord struct {
	X, Y int
}

// String formats the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Topology describes a regular grid of routers.
type Topology interface {
	// Nodes returns the number of routers.
	Nodes() int
	// Coord returns the position of node id. It panics if id is out of
	// range.
	Coord(id int) Coord
	// ID returns the node at position c. It panics if c is outside the
	// grid.
	ID(c Coord) int
	// Neighbor returns the node reached by leaving id through d, and
	// whether such a link exists (mesh edges have no wrap-around links).
	Neighbor(id int, d Direction) (int, bool)
	// Width and Height return the grid dimensions.
	Width() int
	Height() int
}

// Mesh is a W x H 2D mesh: nodes are connected to their immediate
// neighbors, with no wrap-around links at the edges. It is the topology the
// paper evaluates (8 x 8).
type Mesh struct {
	w, h int
}

// NewMesh returns a width x height mesh. Both dimensions must be at least 2.
func NewMesh(width, height int) *Mesh {
	if width < 2 || height < 2 {
		panic(fmt.Sprintf("topology: mesh dimensions must be >= 2, got %dx%d", width, height))
	}
	return &Mesh{w: width, h: height}
}

// Nodes returns width * height.
func (m *Mesh) Nodes() int { return m.w * m.h }

// Width returns the X dimension of the mesh.
func (m *Mesh) Width() int { return m.w }

// Height returns the Y dimension of the mesh.
func (m *Mesh) Height() int { return m.h }

// Coord returns the position of node id in row-major order.
func (m *Mesh) Coord(id int) Coord {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("topology: node id %d out of range [0,%d)", id, m.Nodes()))
	}
	return Coord{X: id % m.w, Y: id / m.w}
}

// ID returns the node at position c.
func (m *Mesh) ID(c Coord) int {
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d mesh", c, m.w, m.h))
	}
	return c.Y*m.w + c.X
}

// Neighbor returns the node adjacent to id in direction d. The boolean is
// false at mesh edges and for Local/Invalid directions.
func (m *Mesh) Neighbor(id int, d Direction) (int, bool) {
	c := m.Coord(id)
	switch d {
	case North:
		c.Y++
	case East:
		c.X++
	case South:
		c.Y--
	case West:
		c.X--
	default:
		return 0, false
	}
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		return 0, false
	}
	return m.ID(c), true
}

// Torus is a W x H 2D torus: like Mesh, but with wrap-around links at the
// edges. The paper's evaluation uses a mesh; the torus is provided as an
// extension for experiments beyond the paper.
type Torus struct {
	w, h int
}

// NewTorus returns a width x height torus. Both dimensions must be at
// least 2.
func NewTorus(width, height int) *Torus {
	if width < 2 || height < 2 {
		panic(fmt.Sprintf("topology: torus dimensions must be >= 2, got %dx%d", width, height))
	}
	return &Torus{w: width, h: height}
}

// Nodes returns width * height.
func (t *Torus) Nodes() int { return t.w * t.h }

// Width returns the X dimension of the torus.
func (t *Torus) Width() int { return t.w }

// Height returns the Y dimension of the torus.
func (t *Torus) Height() int { return t.h }

// Coord returns the position of node id in row-major order.
func (t *Torus) Coord(id int) Coord {
	if id < 0 || id >= t.Nodes() {
		panic(fmt.Sprintf("topology: node id %d out of range [0,%d)", id, t.Nodes()))
	}
	return Coord{X: id % t.w, Y: id / t.w}
}

// ID returns the node at position c.
func (t *Torus) ID(c Coord) int {
	if c.X < 0 || c.X >= t.w || c.Y < 0 || c.Y >= t.h {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d torus", c, t.w, t.h))
	}
	return c.Y*t.w + c.X
}

// Neighbor returns the node adjacent to id in direction d, wrapping around
// at the edges. The boolean is false only for Local/Invalid directions.
func (t *Torus) Neighbor(id int, d Direction) (int, bool) {
	c := t.Coord(id)
	switch d {
	case North:
		c.Y = (c.Y + 1) % t.h
	case East:
		c.X = (c.X + 1) % t.w
	case South:
		c.Y = (c.Y - 1 + t.h) % t.h
	case West:
		c.X = (c.X - 1 + t.w) % t.w
	default:
		return 0, false
	}
	return t.ID(c), true
}

// ManhattanDistance returns the minimal hop count between two coordinates
// on a mesh.
func ManhattanDistance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
