// The HTTP/JSON surface over a Manager — the rocoserve API. Routing
// uses the go1.22 method+wildcard mux patterns; every response body is
// JSON except /jobs/{id}/result (the raw persisted result bytes) and
// /jobs/{id}/events (text/event-stream).
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/rocosim/roco"
)

// RetryAfter is the Retry-After hint (seconds) sent with 429 responses
// when admission sheds load.
const RetryAfter = 1

// Handler builds the rocoserve HTTP API over m:
//
//	POST /jobs              — submit a Spec; 202 + Job, 400 invalid,
//	                          429 + Retry-After when the queue is full
//	GET  /jobs              — list all jobs
//	GET  /jobs/{id}         — one job's record
//	POST /jobs/{id}/cancel  — cancel (idempotent)
//	GET  /jobs/{id}/result  — the result JSON (exact single-run bytes)
//	GET  /jobs/{id}/events  — SSE stream of state/progress/epoch events
//	GET  /stats             — queue and state counts
//	GET  /healthz           — liveness ("ok\n")
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		j, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", fmt.Sprint(RetryAfter))
			httpError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrStopping):
			httpError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		default:
			w.Header().Set("Location", "/jobs/"+j.ID)
			writeJSON(w, http.StatusAccepted, j)
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, ErrUnknownJob)
			return
		}
		writeJSON(w, http.StatusOK, j)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		j, _ := m.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, j)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.Result(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownJob):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNoResult):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
		}
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(m, w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok")
	})
	return mux
}

// serveEvents streams a job's events as server-sent events until the
// job terminates, the client disconnects, or the manager shuts down.
// Heartbeat comments keep idle connections alive through proxies.
func serveEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := m.Subscribe(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("campaign: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-m.Done():
			return
		}
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// httpError writes the error envelope with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// writeJSON writes v with roco's canonical JSON encoding and a status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = roco.WriteJSON(w, v)
}
