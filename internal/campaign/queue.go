// The bounded priority queue behind job scheduling: higher Spec.Priority
// first, FIFO within a level (by admission sequence), with a hard cap on
// open jobs enforced at admission — the "shed load at the door" half of
// graceful degradation. Retries and recovered jobs re-enter past the cap
// check: they were already admitted once and bounding them again could
// only lose accepted work.
package campaign

import "container/heap"

// queued pairs a job with its admission sequence number (the FIFO
// tiebreak within a priority level).
type queued struct {
	j   *job
	seq uint64
}

// prioQueue is a max-heap on (Priority, -seq).
type prioQueue []queued

func (q prioQueue) Len() int { return len(q) }

func (q prioQueue) Less(a, b int) bool {
	if q[a].j.Spec.Priority != q[b].j.Spec.Priority {
		return q[a].j.Spec.Priority > q[b].j.Spec.Priority
	}
	return q[a].seq < q[b].seq
}

func (q prioQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }

// Push appends (heap.Interface contract; use push on the manager).
func (q *prioQueue) Push(x any) { *q = append(*q, x.(queued)) }

// Pop removes the last element (heap.Interface contract).
func (q *prioQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = queued{}
	*q = old[:n-1]
	return it
}

// pushJob enqueues j. Caller holds m.mu.
func (m *Manager) pushJob(j *job) {
	m.seq++
	heap.Push(&m.queue, queued{j: j, seq: m.seq})
	m.cond.Broadcast()
}

// popJob dequeues the highest-priority job, or nil when empty. Caller
// holds m.mu.
func (m *Manager) popJob() *job {
	if m.queue.Len() == 0 {
		return nil
	}
	return heap.Pop(&m.queue).(queued).j
}
