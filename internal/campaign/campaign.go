// Package campaign implements the crash-surviving simulation job
// service behind cmd/rocoserve: a bounded priority queue with admission
// control, a worker pool running jobs as checkpointed roco.Sim
// instances, exponential-backoff retries with a cap, per-job
// wall-clock deadlines and simulated-cycle budgets enforced through
// context cancellation, and recovery — on process restart every
// non-terminal job is rescanned from its on-disk manifest and resumed
// from its latest valid snapshot, bit-identically.
//
// The design philosophy mirrors the paper's: degrade gracefully instead
// of falling over. A full queue rejects new work immediately (HTTP 429)
// rather than queueing unboundedly; a slow subscriber loses events
// rather than stalling the simulation; a killed process loses at most
// one checkpoint interval of compute, never a job.
//
// On-disk layout, under the manager's data directory:
//
//	jobs/<id>/manifest.rjson  — the Job record, CRC-framed JSON
//	                            (snapshot.WriteJSONFileAtomic)
//	jobs/<id>/snaps/          — ckpt-*.rocosnap checkpoint frames
//	jobs/<id>/result.json     — the final roco.Result, raw JSON,
//	                            written atomically before the manifest
//	                            flips to "succeeded"
package campaign

import (
	"fmt"
	"time"

	"github.com/rocosim/roco"
)

// State is a job's position in its lifecycle.
//
// The machine:
//
//	queued ──► running ──► succeeded
//	  ▲           │  ├───► failed      (terminal, structured Failure)
//	  │           │  └───► canceled    (terminal, client asked)
//	  │           ▼
//	  └──── backoff               (retryable failure, waiting out the delay)
//
// A graceful shutdown moves running jobs back to queued (resumable, the
// attempt is not charged); a SIGKILL leaves them "running" on disk and
// recovery requeues them to resume from the latest snapshot.
type State string

// The job states. Succeeded, Failed and Canceled are terminal.
const (
	Queued    State = "queued"
	Running   State = "running"
	Backoff   State = "backoff"
	Succeeded State = "succeeded"
	Failed    State = "failed"
	Canceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Succeeded || s == Failed || s == Canceled }

// FailureKind classifies a job failure.
type FailureKind string

// The failure kinds. FailPanic and FailCheckpoint are retryable (up to
// Spec.MaxRetries); the rest are terminal on first occurrence.
const (
	// FailDeadline: the wall-clock deadline expired mid-run.
	FailDeadline FailureKind = "deadline"
	// FailCycleBudget: the simulated-cycle budget ran out.
	FailCycleBudget FailureKind = "cycle-budget"
	// FailLivelock: the livelock watchdog terminated the run with traffic
	// wedged; Message carries the structured watchdog report.
	FailLivelock FailureKind = "livelock"
	// FailPanic: the simulation panicked (retryable — the retry resumes
	// from the last snapshot).
	FailPanic FailureKind = "panic"
	// FailCheckpoint: a snapshot write failed (retryable — typically a
	// transient filesystem condition).
	FailCheckpoint FailureKind = "checkpoint"
	// FailSnapshot: resume was refused (config fingerprint mismatch or a
	// foreign snapshot version); terminal, since rerunning cannot help.
	FailSnapshot FailureKind = "snapshot"
	// FailRetries: the retry cap was exhausted; Message carries the last
	// underlying failure.
	FailRetries FailureKind = "retries-exhausted"
)

// Failure is one structured job failure.
type Failure struct {
	Kind    FailureKind `json:"kind"`
	Message string      `json:"message"`
	// Attempt is the 1-based attempt that failed; Cycle the simulation
	// clock when it did (0 when the run never started).
	Attempt int   `json:"attempt"`
	Cycle   int64 `json:"cycle,omitempty"`
	At      int64 `json:"at_unix_ms"`
}

func (f Failure) String() string {
	return fmt.Sprintf("%s (attempt %d): %s", f.Kind, f.Attempt, f.Message)
}

// Spec is a client-submitted job description.
type Spec struct {
	// Config is the simulation to run, validated at admission.
	Config roco.Config `json:"config"`
	// Priority orders the queue: higher runs first, FIFO within a
	// priority level.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS is the job's wall-clock budget in milliseconds, measured
	// from admission across all attempts; expiry is a terminal deadline
	// failure. 0 = no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// CycleBudget caps the simulated clock; a run that reaches it stops
	// (snapshot flushed for inspection) and fails terminally with
	// cycle-budget. 0 = unlimited.
	CycleBudget int64 `json:"cycle_budget,omitempty"`
	// MaxRetries is how many times a retryable failure (panic, checkpoint
	// write error) is retried with exponential backoff before the job
	// fails terminally.
	MaxRetries int `json:"max_retries,omitempty"`
	// CheckpointEvery overrides the manager's snapshot cadence in cycles
	// (0 = manager default). Smaller loses less compute to a crash,
	// larger checkpoints cheaper.
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// Label is a free-form client tag echoed in status output.
	Label string `json:"label,omitempty"`
}

// Job is the persisted record of one submission — the manifest schema.
type Job struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Attempts counts run attempts started (a graceful-shutdown
	// interruption is not charged).
	Attempts int `json:"attempts"`
	// Failure is the failure that put the job in its current state;
	// Retried lists earlier failures that were retried.
	Failure *Failure  `json:"failure,omitempty"`
	Retried []Failure `json:"retried,omitempty"`
	// Cycle is the latest simulation cycle persisted to a snapshot —
	// resume-safe progress, not a live counter.
	Cycle int64 `json:"cycle"`
	// Timestamps, unix milliseconds (0 = not yet).
	SubmittedAt int64 `json:"submitted_at_unix_ms"`
	StartedAt   int64 `json:"started_at_unix_ms,omitempty"`
	FinishedAt  int64 `json:"finished_at_unix_ms,omitempty"`
	NextRetryAt int64 `json:"next_retry_at_unix_ms,omitempty"`
}

// Deadline returns the job's absolute wall-clock deadline and whether
// one is set.
func (j *Job) Deadline() (time.Time, bool) {
	if j.Spec.DeadlineMS <= 0 {
		return time.Time{}, false
	}
	return time.UnixMilli(j.SubmittedAt).Add(time.Duration(j.Spec.DeadlineMS) * time.Millisecond), true
}

// Event is one job-lifecycle or progress notification, delivered to SSE
// subscribers. Type is "state" (State/Failure meaningful), "progress"
// (Cycle meaningful — a snapshot just persisted), or "epoch" (Epoch
// meaningful — one closed telemetry epoch).
type Event struct {
	Type    string               `json:"type"`
	JobID   string               `json:"job"`
	State   State                `json:"state,omitempty"`
	Cycle   int64                `json:"cycle,omitempty"`
	Failure *Failure             `json:"failure,omitempty"`
	Epoch   *roco.TelemetryEpoch `json:"epoch,omitempty"`
}

// nowMS is the wall clock in unix milliseconds.
func nowMS() int64 { return time.Now().UnixMilli() }
