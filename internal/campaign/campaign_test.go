// Manager-level tests: the kill-restart equivalence contract (a job
// resumed over a killed process's on-disk state finishes bit-identical
// to an uninterrupted run), graceful load shedding under overload,
// retry-to-cap, deadline and cycle-budget enforcement, livelock
// conversion, and snapshot-refusal handling.
package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rocosim/roco"
	"github.com/rocosim/roco/internal/snapshot"
)

// testConfig is a small, fast mesh with telemetry on, so results carry
// the full epoch series the equivalence checks have to reproduce.
func testConfig(seed uint64) roco.Config {
	return roco.Config{
		Width: 4, Height: 4,
		Router: roco.RoCo, Algorithm: roco.XY, Traffic: roco.Uniform,
		InjectionRate:  0.2,
		WarmupPackets:  50,
		MeasurePackets: 400,
		Seed:           seed,
		TelemetryEvery: 64,
	}
}

// runJSON renders an uninterrupted run's result with the canonical
// encoding — the exact bytes a succeeded job must serve.
func runJSON(t *testing.T, cfg roco.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := roco.WriteJSON(&buf, roco.Run(cfg)); err != nil {
		t.Fatalf("encode reference result: %v", err)
	}
	return buf.Bytes()
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string, within time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// craftKilledJob fabricates exactly the on-disk state a SIGKILLed server
// leaves behind for a mid-run job: a manifest frozen at state "running",
// a genuine mid-run snapshot, and a torn temp file from a write the kill
// interrupted.
func craftKilledJob(t *testing.T, dir, id string, cfg roco.Config) {
	t.Helper()
	snaps := filepath.Join(dir, "jobs", id, "snaps")
	if err := os.MkdirAll(snaps, 0o755); err != nil {
		t.Fatal(err)
	}
	sim := roco.NewSim(cfg)
	_, interrupted, err := sim.RunCheckpointed(roco.CheckpointOptions{
		Every: 64, Dir: snaps, CycleBudget: 150,
	})
	if err != nil || !interrupted {
		t.Fatalf("crafting mid-run snapshot: interrupted=%v err=%v", interrupted, err)
	}
	if err := os.WriteFile(filepath.Join(snaps, ".tmp-torn"), []byte("torn by kill"), 0o644); err != nil {
		t.Fatal(err)
	}
	man := Job{
		ID:          id,
		Spec:        Spec{Config: cfg},
		State:       Running,
		Attempts:    1,
		Cycle:       sim.Cycle(),
		SubmittedAt: nowMS(),
		StartedAt:   nowMS(),
	}
	if err := snapshot.WriteJSONFileAtomic(filepath.Join(dir, "jobs", id, "manifest.rjson"), &man); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartEquivalence is the acceptance contract: for every
// kernel (gated, reference, SoA) with Reliable both off and on, a job
// whose process was killed mid-run — manifest stuck at "running", torn
// temp file in the snapshot directory — is recovered by Open, resumed
// from its latest valid snapshot, and finishes with result bytes
// identical to an uninterrupted run's.
func TestKillRestartEquivalence(t *testing.T) {
	kernels := []struct {
		name string
		mut  func(*roco.Config)
	}{
		{"gated", func(*roco.Config) {}},
		{"reference", func(c *roco.Config) { c.ReferenceKernel = true }},
		{"soa", func(c *roco.Config) { c.SoAKernel = true }},
	}
	dir := t.TempDir()
	type expect struct {
		id   string
		want []byte
	}
	var exps []expect
	seed := uint64(11)
	for _, k := range kernels {
		for _, reliable := range []bool{false, true} {
			cfg := testConfig(seed)
			seed++
			cfg.Reliable = reliable
			if reliable {
				cfg.InactivityLimit = 1500
			}
			k.mut(&cfg)
			id := fmt.Sprintf("j-kill-%s-rel%v", k.name, reliable)
			craftKilledJob(t, dir, id, cfg)
			exps = append(exps, expect{id: id, want: runJSON(t, cfg)})
		}
	}
	m, err := Open(Options{Dir: dir, Workers: 2, CheckpointEvery: 64, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	for _, e := range exps {
		j := waitTerminal(t, m, e.id, 2*time.Minute)
		if j.State != Succeeded {
			t.Fatalf("%s: state %s, failure %v", e.id, j.State, j.Failure)
		}
		if j.Attempts != 1 {
			t.Errorf("%s: recovery charged extra attempts: %d", e.id, j.Attempts)
		}
		got, err := m.Result(e.id)
		if err != nil {
			t.Fatalf("%s: result: %v", e.id, err)
		}
		if !bytes.Equal(got, e.want) {
			t.Errorf("%s: resumed result differs from uninterrupted run (%d vs %d bytes)", e.id, len(got), len(e.want))
		}
		if _, err := os.Stat(filepath.Join(dir, "jobs", e.id, "snaps", ".tmp-torn")); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s: torn temp file survived resume (err=%v)", e.id, err)
		}
	}
}

// TestOverloadShedsAndCompletes: a full queue rejects new submissions
// with ErrQueueFull while every accepted job still completes within its
// deadline; capacity freed by completion re-admits.
func TestOverloadShedsAndCompletes(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir(), Workers: 1, QueueCap: 2, CheckpointEvery: 256, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	spec := func(seed uint64) Spec {
		cfg := testConfig(seed)
		cfg.MeasurePackets = 2000
		return Spec{Config: cfg, DeadlineMS: 120_000}
	}
	j1, err := m.Submit(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(spec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission over cap 2: err=%v, want ErrQueueFull", err)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if j := waitTerminal(t, m, id, time.Minute); j.State != Succeeded {
			t.Fatalf("accepted job %s: state %s, failure %v", id, j.State, j.Failure)
		}
	}
	j4, err := m.Submit(spec(4))
	if err != nil {
		t.Fatalf("admission after drain: %v", err)
	}
	if j := waitTerminal(t, m, j4.ID, time.Minute); j.State != Succeeded {
		t.Fatalf("post-drain job: state %s, failure %v", j.State, j.Failure)
	}
}

// TestRetryBackoffToCap: a persistently failing job is retried with
// backoff until the cap, then fails terminally with retries-exhausted
// and the full failure history.
func TestRetryBackoffToCap(t *testing.T) {
	m, err := Open(Options{
		Dir: t.TempDir(), Workers: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		Logf:   t.Logf,
		preRun: func(*Job) error { return errors.New("injected persistent fault") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	j, err := m.Submit(Spec{Config: testConfig(5), MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID, time.Minute)
	if got.State != Failed {
		t.Fatalf("state %s, want failed", got.State)
	}
	if got.Failure == nil || got.Failure.Kind != FailRetries {
		t.Fatalf("failure %v, want kind %s", got.Failure, FailRetries)
	}
	if got.Attempts != 3 {
		t.Errorf("attempts %d, want 3 (1 + MaxRetries 2)", got.Attempts)
	}
	if len(got.Retried) != 3 {
		t.Errorf("retried history has %d entries, want 3", len(got.Retried))
	}
}

// TestRetryThenSucceed: transient failures are retried and the job
// still produces the exact uninterrupted-run result bytes.
func TestRetryThenSucceed(t *testing.T) {
	var calls atomic.Int32
	m, err := Open(Options{
		Dir: t.TempDir(), Workers: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		Logf: t.Logf,
		preRun: func(*Job) error {
			if calls.Add(1) <= 2 {
				return errors.New("injected transient fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	cfg := testConfig(6)
	want := runJSON(t, cfg)
	j, err := m.Submit(Spec{Config: cfg, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID, time.Minute)
	if got.State != Succeeded {
		t.Fatalf("state %s, failure %v", got.State, got.Failure)
	}
	if got.Attempts != 3 || len(got.Retried) != 2 {
		t.Errorf("attempts %d retried %d, want 3 and 2", got.Attempts, len(got.Retried))
	}
	data, err := m.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("result after retries differs from uninterrupted run")
	}
}

// TestWrongFingerprintTerminal: a manifest whose config disagrees with
// its own snapshots (fingerprint mismatch) must fail terminally with the
// snapshot kind — rerunning cannot fix it, so no retries are burned.
func TestWrongFingerprintTerminal(t *testing.T) {
	dir := t.TempDir()
	id := "j-badfp"
	snaps := filepath.Join(dir, "jobs", id, "snaps")
	if err := os.MkdirAll(snaps, 0o755); err != nil {
		t.Fatal(err)
	}
	foreign := roco.NewSim(testConfig(8))
	if _, interrupted, err := foreign.RunCheckpointed(roco.CheckpointOptions{
		Every: 64, Dir: snaps, CycleBudget: 150,
	}); err != nil || !interrupted {
		t.Fatalf("crafting foreign snapshot: interrupted=%v err=%v", interrupted, err)
	}
	man := Job{
		ID:          id,
		Spec:        Spec{Config: testConfig(7), MaxRetries: 5},
		State:       Queued,
		SubmittedAt: nowMS(),
	}
	if err := snapshot.WriteJSONFileAtomic(filepath.Join(dir, "jobs", id, "manifest.rjson"), &man); err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Dir: dir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	got := waitTerminal(t, m, id, time.Minute)
	if got.State != Failed || got.Failure == nil || got.Failure.Kind != FailSnapshot {
		t.Fatalf("state %s failure %v, want failed/%s", got.State, got.Failure, FailSnapshot)
	}
	if got.Attempts != 1 {
		t.Errorf("terminal snapshot refusal burned %d attempts, want 1", got.Attempts)
	}
}

// TestDeadlineTerminal: an expired wall-clock deadline stops the run at
// the next cycle boundary and fails the job terminally — deadlines span
// attempts, so no retry is attempted.
func TestDeadlineTerminal(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir(), Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	j, err := m.Submit(Spec{Config: testConfig(9), DeadlineMS: 1, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID, time.Minute)
	if got.State != Failed || got.Failure == nil || got.Failure.Kind != FailDeadline {
		t.Fatalf("state %s failure %v, want failed/%s", got.State, got.Failure, FailDeadline)
	}
	if got.Attempts != 1 {
		t.Errorf("deadline expiry burned %d attempts, want 1", got.Attempts)
	}
}

// TestCycleBudgetTerminal: the simulated-cycle budget stops the run with
// a final snapshot and a terminal cycle-budget failure at (or just past)
// the budget cycle.
func TestCycleBudgetTerminal(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Workers: 1, CheckpointEvery: 64, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	j, err := m.Submit(Spec{Config: testConfig(10), CycleBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID, time.Minute)
	if got.State != Failed || got.Failure == nil || got.Failure.Kind != FailCycleBudget {
		t.Fatalf("state %s failure %v, want failed/%s", got.State, got.Failure, FailCycleBudget)
	}
	if got.Cycle < 100 {
		t.Errorf("budget failure at cycle %d, want >= 100", got.Cycle)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "jobs", j.ID, "snaps", "ckpt-*.rocosnap"))
	if err != nil || len(snaps) == 0 {
		t.Errorf("budget stop left no snapshot for inspection (err=%v)", err)
	}
}

// TestLivelockBecomesStructuredFailure: a run the livelock watchdog
// terminates becomes a terminal failure carrying the watchdog report —
// the scenario from the graceful-degradation experiments where the
// generic baseline wedges on a mid-run crossbar fault.
func TestLivelockBecomesStructuredFailure(t *testing.T) {
	cfg := roco.Config{
		Width: 8, Height: 8,
		Router: roco.Generic, Algorithm: roco.XY, Traffic: roco.Uniform,
		InjectionRate:   0.25,
		WarmupPackets:   500,
		MeasurePackets:  4000,
		Seed:            2,
		InactivityLimit: 1000,
		AuditEvery:      64,
		FaultSchedule: []roco.TimedFault{
			{Cycle: 800, Fault: roco.Fault{Node: 27, Component: roco.Crossbar}},
		},
	}
	m, err := Open(Options{Dir: t.TempDir(), Workers: 1, CheckpointEvery: 4096, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	j, err := m.Submit(Spec{Config: cfg, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID, 2*time.Minute)
	if got.State != Failed || got.Failure == nil || got.Failure.Kind != FailLivelock {
		t.Fatalf("state %s failure %v, want failed/%s", got.State, got.Failure, FailLivelock)
	}
	if !bytes.Contains([]byte(got.Failure.Message), []byte("watchdog")) {
		t.Errorf("livelock failure should carry the watchdog report, got %q", got.Failure.Message)
	}
	if got.Attempts != 1 {
		t.Errorf("livelock burned %d attempts, want 1 (not retryable)", got.Attempts)
	}
	if _, err := m.Result(j.ID); err != nil {
		t.Errorf("wedged run's partial result should be kept for diagnosis: %v", err)
	}
}

// TestGracefulStopParksResumable: Stop interrupts a running job at a
// cycle boundary, parks it on disk as queued with the attempt uncharged,
// and a fresh Open resumes it to the exact uninterrupted result.
func TestGracefulStopParksResumable(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(12)
	cfg.MeasurePackets = 20000
	want := runJSON(t, cfg)
	m, err := Open(Options{Dir: dir, Workers: 1, CheckpointEvery: 64, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(Spec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Let it get past its first checkpoint so the stop genuinely
	// interrupts a mid-run simulation.
	deadline := time.Now().Add(time.Minute)
	for {
		cur, _ := m.Get(j.ID)
		if cur.State == Running && cur.Cycle >= 64 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before it could be interrupted (%s); raise MeasurePackets", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached its first checkpoint (state %s)", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.Stop()
	parked, _ := m.Get(j.ID)
	if parked.State != Queued {
		t.Fatalf("after graceful stop: state %s, want queued", parked.State)
	}
	if parked.Attempts != 0 {
		t.Errorf("graceful stop charged the attempt: %d, want 0", parked.Attempts)
	}
	if parked.Cycle == 0 {
		t.Error("parked job recorded no snapshotted progress")
	}
	m2, err := Open(Options{Dir: dir, Workers: 1, CheckpointEvery: 64, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	fin := waitTerminal(t, m2, j.ID, 2*time.Minute)
	if fin.State != Succeeded {
		t.Fatalf("resumed job: state %s, failure %v", fin.State, fin.Failure)
	}
	got, err := m2.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed-after-stop result differs from uninterrupted run")
	}
}

// TestCancel covers both cancel paths: a queued job terminates
// immediately, a running one at its next cycle boundary.
func TestCancel(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir(), Workers: 1, CheckpointEvery: 64, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	long := testConfig(13)
	long.MeasurePackets = 50000
	running, err := m.Submit(Spec{Config: long})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Spec{Config: testConfig(14)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if j, _ := m.Get(queued.ID); j.State != Canceled {
		t.Fatalf("queued cancel: state %s, want canceled", j.State)
	}
	if err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if j := waitTerminal(t, m, running.ID, time.Minute); j.State != Canceled {
		t.Fatalf("running cancel: state %s, want canceled", j.State)
	}
	if err := m.Cancel(running.ID); err != nil {
		t.Errorf("cancel must be idempotent, got %v", err)
	}
	if err := m.Cancel("j-no-such"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown cancel: err=%v, want ErrUnknownJob", err)
	}
}

// TestSubmitValidation rejects invalid configurations and negative
// limits at the door.
func TestSubmitValidation(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir(), Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	bad := testConfig(1)
	bad.InjectionRate = -1
	if _, err := m.Submit(Spec{Config: bad}); err == nil {
		t.Error("negative injection rate admitted")
	}
	if _, err := m.Submit(Spec{Config: testConfig(1), MaxRetries: -1}); err == nil {
		t.Error("negative max_retries admitted")
	}
	if _, err := m.Submit(Spec{Config: testConfig(1), DeadlineMS: -5}); err == nil {
		t.Error("negative deadline admitted")
	}
}
