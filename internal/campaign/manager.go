// The campaign manager: admission, scheduling, execution, retry and
// crash recovery. One Manager owns one data directory; cmd/rocoserve
// wraps it with the HTTP surface in server.go.
package campaign

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/rocosim/roco"
	"github.com/rocosim/roco/internal/snapshot"
)

// Admission and lookup errors surfaced to the HTTP layer.
var (
	// ErrQueueFull: the open-job cap is reached; the client should retry
	// later (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("campaign: queue full")
	// ErrUnknownJob: no job with that ID.
	ErrUnknownJob = errors.New("campaign: unknown job")
	// ErrStopping: the manager is shutting down and admits nothing new.
	ErrStopping = errors.New("campaign: shutting down")
	// ErrNoResult: the job has no result file (not finished, or failed
	// before producing one).
	ErrNoResult = errors.New("campaign: no result available")
)

// Cancellation causes threaded through job contexts; settle keys on them
// to tell a graceful shutdown (requeue, attempt uncharged) from a client
// cancel (terminal) from a deadline expiry (terminal failure).
var (
	errShutdown = errors.New("campaign: interrupted by shutdown")
	errCanceled = errors.New("campaign: canceled by client")
)

// Options parameterizes a Manager.
type Options struct {
	// Dir is the data directory (created if missing); job state lives
	// under Dir/jobs/<id>/.
	Dir string
	// Workers sizes the pool running jobs concurrently (default 2).
	Workers int
	// QueueCap bounds open (non-terminal) jobs; admission beyond it
	// returns ErrQueueFull (default 64). Retries and recovered jobs
	// bypass the cap — they were admitted once already.
	QueueCap int
	// CheckpointEvery is the default snapshot cadence in cycles for jobs
	// that do not set Spec.CheckpointEvery (default 2048).
	CheckpointEvery int64
	// RetryBase and RetryMax shape the retry backoff: attempt n waits
	// RetryBase<<(n-1), capped at RetryMax (defaults 250ms and 30s) —
	// the same doubled-then-capped discipline as the reliable-delivery
	// retransmission tracker.
	RetryBase, RetryMax time.Duration
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// preRun is a test seam (in-package tests only): invoked before each
	// attempt's simulation; a non-nil error counts as a retryable
	// panic-class failure.
	preRun func(*Job) error
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 2048
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 250 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// job is the in-memory wrapper around a persisted Job record.
type job struct {
	Job
	ctx       context.Context
	cancel    context.CancelCauseFunc
	ctxClean  context.CancelFunc // releases the deadline timer
	subs      map[chan Event]struct{}
	lastEpoch int64 // last telemetry epoch index streamed to subscribers
}

// Manager runs a campaign: it owns the job table, the priority queue,
// the worker pool and the data directory. Build one with Open.
type Manager struct {
	opts Options
	mu   sync.Mutex
	cond *sync.Cond
	jobs map[string]*job
	// queue holds runnable jobs; stale entries (canceled while queued)
	// are skipped at pop time.
	queue    prioQueue
	seq      uint64
	open     int // non-terminal jobs, the admission counter
	stopping bool
	quit     chan struct{}
	timers   map[string]*time.Timer
	wg       sync.WaitGroup
	// preRun is a test seam: invoked before each attempt's simulation;
	// a non-nil error is treated as a retryable panic-class failure.
	preRun func(*Job) error
}

// Open builds a Manager over dir: it creates the layout, recovers every
// job left on disk by a previous process — non-terminal jobs re-enter
// the queue in submission order and resume from their latest valid
// snapshot when they run — and starts the worker pool.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	m := &Manager{
		opts:   opts,
		jobs:   make(map[string]*job),
		quit:   make(chan struct{}),
		timers: make(map[string]*time.Timer),
		preRun: opts.preRun,
	}
	m.cond = sync.NewCond(&m.mu)
	if err := os.MkdirAll(m.jobsDir(), 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(m.jobsDir())
	if err != nil {
		return nil, err
	}
	var recovered []*job
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		var rec Job
		path := filepath.Join(m.jobsDir(), ent.Name(), "manifest.rjson")
		if rerr := snapshot.ReadJSONFile(path, &rec); rerr != nil {
			// A torn manifest means the process died inside the atomic
			// write of a brand-new job; there is nothing to resume.
			opts.Logf("campaign: skipping %s: %v", path, rerr)
			continue
		}
		j := &job{Job: rec, subs: make(map[chan Event]struct{})}
		m.jobs[rec.ID] = j
		if !rec.State.Terminal() {
			m.open++
			recovered = append(recovered, j)
		}
	}
	sort.Slice(recovered, func(a, b int) bool {
		if recovered[a].SubmittedAt != recovered[b].SubmittedAt {
			return recovered[a].SubmittedAt < recovered[b].SubmittedAt
		}
		return recovered[a].ID < recovered[b].ID
	})
	for _, j := range recovered {
		if j.State != Queued {
			// Running (killed mid-run — snapshots carry the progress) and
			// backoff (its timer died with the process) both requeue. The
			// kill interrupted the running attempt without settling it, so
			// it is uncharged — a crash is the service's failure, not the
			// job's.
			if j.State == Running && j.Attempts > 0 {
				j.Attempts--
			}
			j.State = Queued
			j.NextRetryAt = 0
			m.persistLocked(j)
		}
		m.pushJob(j)
		opts.Logf("campaign: recovered job %s at cycle %d (attempt %d)", j.ID, j.Cycle, j.Attempts)
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Done reports manager shutdown; long-lived streams (SSE) select on it.
func (m *Manager) Done() <-chan struct{} { return m.quit }

// Stop shuts the manager down gracefully: no new admissions, backoff
// timers stopped, running jobs cancelled at their next cycle boundary —
// each flushes a final snapshot and is persisted back to "queued" with
// the attempt uncharged, so the next Open resumes it — and every
// subscriber channel closed. Blocks until the workers have drained.
// Idempotent.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopping {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.stopping = true
	close(m.quit)
	for id, t := range m.timers {
		t.Stop()
		delete(m.timers, id)
	}
	for _, j := range m.jobs {
		if j.cancel != nil {
			j.cancel(errShutdown)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	for _, j := range m.jobs {
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
	m.mu.Unlock()
}

// Submit admits one job: the configuration is validated, the manifest
// persisted, and the job queued. Returns ErrQueueFull when the open-job
// cap is reached (the graceful-shedding contract) and ErrStopping
// during shutdown.
func (m *Manager) Submit(spec Spec) (Job, error) {
	if err := spec.Config.Validate(); err != nil {
		return Job{}, fmt.Errorf("campaign: invalid config: %w", err)
	}
	if spec.CycleBudget < 0 || spec.DeadlineMS < 0 || spec.MaxRetries < 0 || spec.CheckpointEvery < 0 {
		return Job{}, errors.New("campaign: negative cycle_budget/deadline_ms/max_retries/checkpoint_every")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopping {
		return Job{}, ErrStopping
	}
	if m.open >= m.opts.QueueCap {
		return Job{}, ErrQueueFull
	}
	j := &job{
		Job: Job{
			ID:          newID(),
			Spec:        spec,
			State:       Queued,
			SubmittedAt: nowMS(),
		},
		subs: make(map[chan Event]struct{}),
	}
	if err := os.MkdirAll(m.snapsDir(j.ID), 0o755); err != nil {
		return Job{}, err
	}
	if err := m.persistErrLocked(j); err != nil {
		return Job{}, err
	}
	m.jobs[j.ID] = j
	m.open++
	m.pushJob(j)
	m.opts.Logf("campaign: job %s admitted (priority %d, %d open)", j.ID, spec.Priority, m.open)
	return j.Job, nil
}

// Get returns a snapshot of one job's record.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.Job, true
}

// Jobs returns snapshots of every known job, oldest submission first.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.Job)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SubmittedAt != out[b].SubmittedAt {
			return out[a].SubmittedAt < out[b].SubmittedAt
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Stats summarizes the manager for /stats and admission headers.
type Stats struct {
	Workers  int           `json:"workers"`
	QueueCap int           `json:"queue_cap"`
	Open     int           `json:"open"`
	ByState  map[State]int `json:"by_state"`
}

// Stats returns a consistent snapshot of the job counts.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Workers: m.opts.Workers, QueueCap: m.opts.QueueCap, Open: m.open, ByState: make(map[State]int)}
	for _, j := range m.jobs {
		s.ByState[j.State]++
	}
	return s
}

// Result returns the job's persisted result JSON (the exact bytes a
// plain roco run would have produced). ErrNoResult until the job has
// one; ErrUnknownJob for a foreign ID.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	_, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	data, err := os.ReadFile(m.resultPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoResult
	}
	return data, err
}

// Cancel ends a job: queued and backoff jobs terminate immediately, a
// running job is cancelled at its next cycle boundary (final snapshot
// flushed). Terminal jobs are left alone (no error — cancel is
// idempotent).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	switch j.State {
	case Queued:
		// The heap entry goes stale; workers skip non-queued pops.
		m.finishLocked(j, Canceled, nil)
	case Backoff:
		if t := m.timers[id]; t != nil {
			t.Stop()
			delete(m.timers, id)
		}
		m.finishLocked(j, Canceled, nil)
	case Running:
		if j.cancel != nil {
			j.cancel(errCanceled)
		}
	}
	return nil
}

// Subscribe opens an event stream for one job: an initial "state" event,
// then progress/epoch/state events until the job reaches a terminal
// state (channel closed). A slow consumer loses events rather than
// stalling the simulation — the channel is bounded and sends are
// non-blocking. The returned cancel is idempotent and must be called.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrUnknownJob
	}
	ch := make(chan Event, 64)
	ch <- Event{Type: "state", JobID: j.ID, State: j.State, Cycle: j.Cycle, Failure: j.Failure}
	if j.State.Terminal() || m.stopping {
		close(ch)
		return ch, func() {}, nil
	}
	j.subs[ch] = struct{}{}
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// worker is one pool goroutine: pop the best runnable job, run it,
// repeat until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for !m.stopping && m.queue.Len() == 0 {
			m.cond.Wait()
		}
		if m.stopping {
			m.mu.Unlock()
			return
		}
		j := m.popJob()
		if j == nil || j.State != Queued {
			continue // stale heap entry (canceled while queued)
		}
		m.startLocked(j)
		m.mu.Unlock()
		m.runJob(j)
		m.mu.Lock()
	}
}

// startLocked transitions a popped job to running: attempt charged,
// cancellation context (with the wall-clock deadline, when set) armed,
// manifest persisted. Caller holds m.mu.
func (m *Manager) startLocked(j *job) {
	j.State = Running
	j.Attempts++
	j.NextRetryAt = 0
	if j.StartedAt == 0 {
		j.StartedAt = nowMS()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	clean := context.CancelFunc(func() {})
	if dl, ok := j.Deadline(); ok {
		ctx, clean = context.WithDeadline(ctx, dl)
	}
	j.ctx, j.cancel, j.ctxClean = ctx, cancel, clean
	m.persistLocked(j)
	m.publishLocked(j, Event{Type: "state", JobID: j.ID, State: Running, Cycle: j.Cycle})
	m.opts.Logf("campaign: job %s running (attempt %d)", j.ID, j.Attempts)
}

// outcome is one attempt's classified ending.
type outcome struct {
	res        roco.Result
	haveResult bool
	ok         bool     // completed normally
	requeue    bool     // graceful shutdown: resume next Open, uncharged
	canceled   bool     // client cancel
	failure    *Failure // everything else
}

// runJob executes one attempt and settles the job's new state.
func (m *Manager) runJob(j *job) {
	out := m.execute(j)
	m.settle(j, out)
}

// execute runs one attempt under panic recovery: resume from the latest
// valid snapshot when one exists, otherwise start fresh, then drive the
// checkpointed, cancellable run path.
func (m *Manager) execute(j *job) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = outcome{failure: &Failure{Kind: FailPanic, Message: fmt.Sprintf("%v", r)}}
		}
	}()
	snaps := m.snapsDir(j.ID)
	var sim *roco.Sim
	switch s, err := roco.ResumeLatest(snaps, j.Spec.Config); {
	case err == nil:
		sim = s
		m.opts.Logf("campaign: job %s resumed from snapshot at cycle %d", j.ID, s.Cycle())
	case errors.Is(err, roco.ErrNoSnapshot):
		sim = roco.NewSim(j.Spec.Config)
	case errors.Is(err, roco.ErrConfigMismatch) || errors.Is(err, roco.ErrSnapshotVersion):
		// Rerunning cannot fix a manifest that disagrees with its own
		// snapshots; fail terminally with the typed reason.
		return outcome{failure: &Failure{Kind: FailSnapshot, Message: err.Error()}}
	default:
		return outcome{failure: &Failure{Kind: FailCheckpoint, Message: err.Error()}}
	}
	if m.preRun != nil {
		if err := m.preRun(&j.Job); err != nil {
			return outcome{failure: &Failure{Kind: FailPanic, Message: err.Error()}}
		}
	}
	every := j.Spec.CheckpointEvery
	if every <= 0 {
		every = m.opts.CheckpointEvery
	}
	res, interrupted, err := sim.RunCheckpointed(roco.CheckpointOptions{
		Every:       every,
		Dir:         snaps,
		Context:     j.ctx,
		CycleBudget: j.Spec.CycleBudget,
		Progress:    func(cycle int64) { m.progress(j, sim, cycle) },
	})
	cyc := sim.Cycle()
	if err != nil {
		return outcome{failure: &Failure{Kind: FailCheckpoint, Message: err.Error(), Cycle: cyc}}
	}
	if interrupted {
		if cause := context.Cause(j.ctx); cause != nil {
			switch {
			case errors.Is(cause, errShutdown):
				return outcome{requeue: true}
			case errors.Is(cause, errCanceled):
				return outcome{canceled: true}
			case errors.Is(cause, context.DeadlineExceeded):
				return outcome{failure: &Failure{
					Kind:    FailDeadline,
					Message: fmt.Sprintf("wall-clock deadline (%d ms from admission) expired at cycle %d", j.Spec.DeadlineMS, cyc),
					Cycle:   cyc,
				}}
			default:
				return outcome{failure: &Failure{Kind: FailPanic, Message: cause.Error(), Cycle: cyc}}
			}
		}
		return outcome{failure: &Failure{
			Kind:    FailCycleBudget,
			Message: fmt.Sprintf("cycle budget %d exhausted at cycle %d", j.Spec.CycleBudget, cyc),
			Cycle:   cyc,
		}}
	}
	if res.Watchdog != "" {
		// PR 1's livelock report, converted into a structured job failure.
		return outcome{res: res, haveResult: true, failure: &Failure{
			Kind:    FailLivelock,
			Message: res.Watchdog,
			Cycle:   res.Cycles,
		}}
	}
	return outcome{res: res, haveResult: true, ok: true}
}

// retryable reports whether a failure kind is worth another attempt.
func retryable(k FailureKind) bool { return k == FailPanic || k == FailCheckpoint }

// settle applies one attempt's outcome to the job record: success
// persists the result before the state flips (a crash between the two
// re-runs deterministically to the same bytes), retryable failures back
// off and requeue, everything else terminates with a structured Failure.
func (m *Manager) settle(j *job, out outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.ctxClean()
	j.ctx, j.cancel, j.ctxClean = nil, nil, nil

	switch {
	case out.requeue:
		j.Attempts-- // a shutdown is not the job's failure
		j.State = Queued
		m.persistLocked(j)
		m.publishLocked(j, Event{Type: "state", JobID: j.ID, State: Queued, Cycle: j.Cycle})
		m.opts.Logf("campaign: job %s parked resumable at cycle %d", j.ID, j.Cycle)
	case out.canceled:
		m.finishLocked(j, Canceled, nil)
	case out.ok:
		var buf bytes.Buffer
		if err := roco.WriteJSON(&buf, out.res); err != nil {
			m.retryOrFailLocked(j, &Failure{Kind: FailCheckpoint, Message: "result encode: " + err.Error(), Cycle: out.res.Cycles})
			return
		}
		if err := snapshot.WriteBytesAtomic(m.resultPath(j.ID), buf.Bytes()); err != nil {
			m.retryOrFailLocked(j, &Failure{Kind: FailCheckpoint, Message: "result write: " + err.Error(), Cycle: out.res.Cycles})
			return
		}
		j.Cycle = out.res.Cycles
		m.finishLocked(j, Succeeded, nil)
	case out.failure != nil:
		out.failure.Attempt = j.Attempts
		out.failure.At = nowMS()
		if out.failure.Cycle > j.Cycle {
			j.Cycle = out.failure.Cycle
		}
		if out.haveResult {
			// Keep the partial/wedged result on disk for diagnosis; the
			// job still fails.
			var buf bytes.Buffer
			if roco.WriteJSON(&buf, out.res) == nil {
				_ = snapshot.WriteBytesAtomic(m.resultPath(j.ID), buf.Bytes())
			}
		}
		if retryable(out.failure.Kind) {
			m.retryOrFailLocked(j, out.failure)
		} else {
			m.finishLocked(j, Failed, out.failure)
		}
	}
}

// retryOrFailLocked either schedules another attempt after the backoff
// delay or, with the cap exhausted, fails the job terminally. Caller
// holds m.mu.
func (m *Manager) retryOrFailLocked(j *job, f *Failure) {
	f.Attempt = j.Attempts
	if f.At == 0 {
		f.At = nowMS()
	}
	if j.Attempts > j.Spec.MaxRetries {
		j.Retried = append(j.Retried, *f)
		m.finishLocked(j, Failed, &Failure{
			Kind:    FailRetries,
			Message: fmt.Sprintf("retry cap reached after %d attempts; last failure: %s", j.Attempts, f),
			Attempt: j.Attempts,
			Cycle:   f.Cycle,
			At:      f.At,
		})
		return
	}
	if m.stopping {
		// Shutdown raced the failure: park resumable; recovery retries.
		j.Retried = append(j.Retried, *f)
		j.State = Queued
		m.persistLocked(j)
		return
	}
	delay := m.backoff(j.Attempts)
	j.Retried = append(j.Retried, *f)
	j.State = Backoff
	j.NextRetryAt = nowMS() + delay.Milliseconds()
	m.persistLocked(j)
	m.publishLocked(j, Event{Type: "state", JobID: j.ID, State: Backoff, Cycle: j.Cycle, Failure: f})
	m.opts.Logf("campaign: job %s attempt %d failed (%s); retrying in %v", j.ID, j.Attempts, f.Kind, delay)
	id := j.ID
	m.timers[id] = time.AfterFunc(delay, func() { m.requeue(id) })
}

// backoff returns the doubled-then-capped retry delay for an attempt.
func (m *Manager) backoff(attempt int) time.Duration {
	d := m.opts.RetryBase
	for i := 1; i < attempt && d < m.opts.RetryMax; i++ {
		d *= 2
	}
	if d > m.opts.RetryMax {
		d = m.opts.RetryMax
	}
	return d
}

// requeue moves a backoff job whose delay elapsed back into the queue.
func (m *Manager) requeue(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.timers, id)
	j, ok := m.jobs[id]
	if !ok || m.stopping || j.State != Backoff {
		return
	}
	j.State = Queued
	j.NextRetryAt = 0
	m.persistLocked(j)
	m.publishLocked(j, Event{Type: "state", JobID: j.ID, State: Queued, Cycle: j.Cycle})
	m.pushJob(j)
}

// finishLocked moves a job to a terminal state, persists it, emits the
// final event and closes every subscriber stream. Caller holds m.mu.
func (m *Manager) finishLocked(j *job, st State, f *Failure) {
	j.State = st
	j.Failure = f
	j.FinishedAt = nowMS()
	j.NextRetryAt = 0
	m.open--
	m.persistLocked(j)
	m.publishLocked(j, Event{Type: "state", JobID: j.ID, State: st, Cycle: j.Cycle, Failure: f})
	for ch := range j.subs {
		close(ch)
	}
	j.subs = make(map[chan Event]struct{})
	if f != nil {
		m.opts.Logf("campaign: job %s %s: %s", j.ID, st, f)
	} else {
		m.opts.Logf("campaign: job %s %s at cycle %d", j.ID, st, j.Cycle)
	}
}

// progress runs on the simulation goroutine after every snapshot write:
// it records resume-safe progress and streams freshly closed telemetry
// epochs to subscribers.
func (m *Manager) progress(j *job, sim *roco.Sim, cycle int64) {
	m.mu.Lock()
	j.Cycle = cycle
	hasSubs := len(j.subs) > 0
	last := j.lastEpoch
	m.mu.Unlock()
	if !hasSubs {
		return
	}
	var events []Event
	if t := sim.TelemetrySince(last); t != nil {
		for i := range t.Epochs {
			e := t.Epochs[i]
			e.Nodes = nil // per-node grids are too heavy for a live stream
			events = append(events, Event{Type: "epoch", JobID: j.ID, Cycle: e.EndCycle, Epoch: &e})
			last = e.Index
		}
	}
	m.mu.Lock()
	j.lastEpoch = last
	m.publishLocked(j, Event{Type: "progress", JobID: j.ID, State: Running, Cycle: cycle})
	for i := range events {
		m.publishLocked(j, events[i])
	}
	m.mu.Unlock()
}

// publishLocked fans an event out to the job's subscribers,
// non-blocking: a full channel drops the event (slow consumers shed
// load; they never stall the simulation). Caller holds m.mu.
func (m *Manager) publishLocked(j *job, ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// persistLocked writes the manifest, logging (not propagating) failures:
// mid-lifecycle persistence is best-effort, and the state families that
// must not advance past a failed write (results, snapshots) have their
// own error paths. Caller holds m.mu.
func (m *Manager) persistLocked(j *job) {
	if err := m.persistErrLocked(j); err != nil {
		m.opts.Logf("campaign: job %s: manifest write failed: %v", j.ID, err)
	}
}

// persistErrLocked writes the manifest crash-safely and returns the
// error. Caller holds m.mu.
func (m *Manager) persistErrLocked(j *job) error {
	return snapshot.WriteJSONFileAtomic(m.manifestPath(j.ID), &j.Job)
}

func (m *Manager) jobsDir() string             { return filepath.Join(m.opts.Dir, "jobs") }
func (m *Manager) jobDir(id string) string     { return filepath.Join(m.jobsDir(), id) }
func (m *Manager) snapsDir(id string) string   { return filepath.Join(m.jobDir(id), "snaps") }
func (m *Manager) resultPath(id string) string { return filepath.Join(m.jobDir(id), "result.json") }
func (m *Manager) manifestPath(id string) string {
	return filepath.Join(m.jobDir(id), "manifest.rjson")
}

// newID draws a random 96-bit job ID.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("campaign: rand: " + err.Error())
	}
	return "j-" + hex.EncodeToString(b[:])
}
