// HTTP-surface tests: the submit/poll/result happy path driven entirely
// through JSON with string enum tokens, 429 + Retry-After load shedding,
// SSE event streaming, cancellation, and the error statuses.
package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(m))
	t.Cleanup(func() { ts.Close(); m.Stop() })
	return m, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, r io.Reader) Job {
	t.Helper()
	var j Job
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		t.Fatalf("decoding job: %v", err)
	}
	return j
}

// TestServerSubmitPollResult drives the whole happy path over HTTP with
// a hand-written JSON spec using the string enum tokens, and checks the
// served result bytes equal an uninterrupted direct run's.
func TestServerSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CheckpointEvery: 64})
	cfg := testConfig(3)
	want := runJSON(t, cfg)
	body := `{"config": {
		"Width": 4, "Height": 4,
		"Router": "roco", "Algorithm": "xy", "Traffic": "uniform",
		"InjectionRate": 0.2,
		"WarmupPackets": 50, "MeasurePackets": 400,
		"Seed": 3, "TelemetryEvery": 64
	}, "label": "happy-path"}`
	resp := postJSON(t, ts.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/jobs/") {
		t.Errorf("Location header %q", loc)
	}
	j := decodeJob(t, resp.Body)
	resp.Body.Close()
	if j.Spec.Label != "happy-path" || j.State != Queued {
		t.Fatalf("submitted job %+v", j)
	}

	deadline := time.Now().Add(time.Minute)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeJob(t, r.Body)
		r.Body.Close()
		if cur.State.Terminal() {
			if cur.State != Succeeded {
				t.Fatalf("job %s: %v", cur.State, cur.Failure)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", r.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("served result bytes differ from a direct uninterrupted run")
	}

	for _, path := range []string{"/healthz", "/stats", "/jobs"} {
		r, err := http.Get(ts.URL + path)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %v status %d", path, err, r.StatusCode)
		}
		r.Body.Close()
	}
}

// TestServerShedsWith429: submissions past the open-job cap get 429 and
// a Retry-After hint while accepted work keeps running.
func TestServerShedsWith429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueCap: 1, CheckpointEvery: 256})
	long := testConfig(21)
	long.MeasurePackets = 50000
	spec, _ := json.Marshal(Spec{Config: long})
	if resp := postJSON(t, ts.URL+"/jobs", string(spec)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	resp := postJSON(t, ts.URL+"/jobs", string(spec))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprint(RetryAfter) {
		t.Errorf("Retry-After %q, want %q", ra, fmt.Sprint(RetryAfter))
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body should carry the error envelope (err=%v, %+v)", err, e)
	}
}

// TestServerSSE streams a job's events end-to-end: the stream carries
// state transitions (and progress/epoch events when subscribed mid-run)
// and closes when the job terminates.
func TestServerSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CheckpointEvery: 64})
	cfg := testConfig(22)
	cfg.MeasurePackets = 5000
	spec, _ := json.Marshal(Spec{Config: cfg})
	resp := postJSON(t, ts.URL+"/jobs", string(spec))
	j := decodeJob(t, resp.Body)
	resp.Body.Close()

	es, err := http.Get(ts.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var stream strings.Builder
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		stream.WriteString(sc.Text())
		stream.WriteByte('\n')
	}
	out := stream.String()
	if !strings.Contains(out, "event: state") {
		t.Errorf("stream carried no state events:\n%s", out)
	}
	if !strings.Contains(out, `"state":"succeeded"`) {
		t.Errorf("stream never reported success:\n%s", out)
	}
}

// TestServerCancel cancels over HTTP and sees the terminal state.
func TestServerCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CheckpointEvery: 64})
	long := testConfig(23)
	long.MeasurePackets = 50000
	spec, _ := json.Marshal(Spec{Config: long})
	resp := postJSON(t, ts.URL+"/jobs", string(spec))
	j := decodeJob(t, resp.Body)
	resp.Body.Close()
	cr := postJSON(t, ts.URL+"/jobs/"+j.ID+"/cancel", "")
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", cr.StatusCode)
	}
	cr.Body.Close()
	deadline := time.Now().Add(time.Minute)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeJob(t, r.Body)
		r.Body.Close()
		if cur.State.Terminal() {
			if cur.State != Canceled {
				t.Fatalf("state %s, want canceled", cur.State)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never terminated after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerErrors: malformed and invalid submissions get 400, unknown
// jobs 404, and a result requested before one exists 409.
func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{"config": {"Router": "warp-drive"}}`, http.StatusBadRequest},
		{`{"config": {"Width": 4, "Height": 4, "InjectionRate": -2}}`, http.StatusBadRequest},
		{`{"config": {}, "unknown_field": 1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/jobs", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("submit %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}
	r, _ := http.Get(ts.URL + "/jobs/j-no-such")
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
	r.Body.Close()

	long := testConfig(24)
	long.MeasurePackets = 50000
	spec, _ := json.Marshal(Spec{Config: long})
	resp := postJSON(t, ts.URL+"/jobs", string(spec))
	j := decodeJob(t, resp.Body)
	resp.Body.Close()
	rr, _ := http.Get(ts.URL + "/jobs/" + j.ID + "/result")
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("early result: status %d, want 409", rr.StatusCode)
	}
	rr.Body.Close()
}
