// Package routing implements the three routing disciplines the paper
// evaluates — deterministic XY (dimension-order), oblivious XY-YX, and
// minimal adaptive routing with escape channels — together with the
// look-ahead helpers the RoCo and Path-Sensitive routers rely on.
//
// All functions are expressed over the mesh topology. Routing is minimal
// throughout: every hop reduces the Manhattan distance to the destination.
package routing

import (
	"fmt"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/topology"
)

// Algorithm selects the routing discipline for a simulation run.
type Algorithm uint8

const (
	// XY is deterministic dimension-order routing: fully in X, then in Y.
	XY Algorithm = iota
	// XYYX is oblivious routing: each packet picks X-first or Y-first with
	// equal probability at injection and follows it deterministically.
	XYYX
	// Adaptive is minimal adaptive routing: each hop may pick any
	// productive direction; deadlock freedom comes from an escape VC class
	// restricted to XY order (Duato's protocol).
	Adaptive
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case XY:
		return "XY"
	case XYYX:
		return "XY-YX"
	case Adaptive:
		return "Adaptive"
	default:
		return "?"
	}
}

// Algorithms lists all supported disciplines in evaluation order.
var Algorithms = [3]Algorithm{XY, XYYX, Adaptive}

// XDirection returns the productive X direction from cur toward dst, or
// Invalid when the X offset is zero.
func XDirection(cur, dst topology.Coord) topology.Direction {
	switch {
	case dst.X > cur.X:
		return topology.East
	case dst.X < cur.X:
		return topology.West
	default:
		return topology.Invalid
	}
}

// YDirection returns the productive Y direction from cur toward dst, or
// Invalid when the Y offset is zero.
func YDirection(cur, dst topology.Coord) topology.Direction {
	switch {
	case dst.Y > cur.Y:
		return topology.North
	case dst.Y < cur.Y:
		return topology.South
	default:
		return topology.Invalid
	}
}

// DimensionOrder returns the output port dimension-order routing takes at
// cur for a packet headed to dst. mode selects X-first or Y-first;
// ModeAdaptive packets follow X-first here because DimensionOrder is their
// escape discipline. Returns Local at the destination.
func DimensionOrder(cur, dst topology.Coord, mode flit.RouteMode) topology.Direction {
	if cur == dst {
		return topology.Local
	}
	first, second := XDirection(cur, dst), YDirection(cur, dst)
	if mode == flit.YFirst {
		first, second = second, first
	}
	if first != topology.Invalid {
		return first
	}
	return second
}

// Productive returns the set of minimal directions from cur toward dst
// (zero, one, or two entries). An empty set means cur == dst.
func Productive(cur, dst topology.Coord) []topology.Direction {
	dirs := make([]topology.Direction, 0, 2)
	if d := XDirection(cur, dst); d != topology.Invalid {
		dirs = append(dirs, d)
	}
	if d := YDirection(cur, dst); d != topology.Invalid {
		dirs = append(dirs, d)
	}
	return dirs
}

// OddEvenDirs returns the minimal productive directions permitted by
// Chiu's odd-even turn model for a packet injected at src, currently at
// cur, headed to dst. The turn model forbids East-North and East-South
// turns in even columns and North-West and South-West turns in odd
// columns, which makes minimal adaptive routing deadlock-free on a mesh
// with any number of virtual channels per link — the discipline this
// reproduction uses for the paper's "minimal adaptive routing" (see
// DESIGN.md for the rationale).
func OddEvenDirs(src, cur, dst topology.Coord) []topology.Direction {
	if cur == dst {
		return nil
	}
	ex, ey := dst.X-cur.X, dst.Y-cur.Y
	yDir := topology.North
	if ey < 0 {
		yDir = topology.South
	}
	if ex == 0 {
		return []topology.Direction{yDir}
	}
	dirs := make([]topology.Direction, 0, 2)
	if ex > 0 {
		if ey == 0 {
			return []topology.Direction{topology.East}
		}
		if cur.X%2 == 1 || cur.X == src.X {
			dirs = append(dirs, yDir)
		}
		if dst.X%2 == 1 || ex != 1 {
			dirs = append(dirs, topology.East)
		}
		return dirs
	}
	dirs = append(dirs, topology.West)
	if cur.X%2 == 0 && ey != 0 {
		dirs = append(dirs, yDir)
	}
	return dirs
}

// Quadrant identifies the destination quadrant relative to a router — the
// organizing principle of the Path-Sensitive router's path sets.
type Quadrant uint8

const (
	NE Quadrant = iota
	NW
	SE
	SW
)

// String names the quadrant.
func (q Quadrant) String() string {
	switch q {
	case NE:
		return "NE"
	case NW:
		return "NW"
	case SE:
		return "SE"
	case SW:
		return "SW"
	default:
		return "?"
	}
}

// Outputs returns the two output directions a quadrant path set is wired to
// in the decomposed 4x4 crossbar.
func (q Quadrant) Outputs() [2]topology.Direction {
	switch q {
	case NE:
		return [2]topology.Direction{topology.North, topology.East}
	case NW:
		return [2]topology.Direction{topology.North, topology.West}
	case SE:
		return [2]topology.Direction{topology.South, topology.East}
	default:
		return [2]topology.Direction{topology.South, topology.West}
	}
}

// QuadrantOf returns the quadrant of dst relative to cur. Destinations on
// an axis are folded deterministically: pure-east and pure-north go to NE,
// pure-west to NW, pure-south to SE. cur == dst also reports NE; callers
// handle ejection before consulting the quadrant.
func QuadrantOf(cur, dst topology.Coord) Quadrant {
	east := dst.X > cur.X
	west := dst.X < cur.X
	north := dst.Y > cur.Y
	south := dst.Y < cur.Y
	switch {
	case north && west:
		return NW
	case south && east:
		return SE
	case south && west:
		return SW
	case west:
		return NW
	case south:
		return SE
	default:
		// north-east proper, pure east, pure north, and cur == dst.
		return NE
	}
}

// PacketQuadrant returns the path set a packet travels in for its whole
// journey: the quadrant of its destination relative to its SOURCE. Every
// minimal move stays inside this quadrant, so the packet never changes
// sets, the four subnetworks are fully independent, and each is monotone
// (hence acyclic). Axis-aligned pairs, which could use either adjacent
// quadrant, are folded by destination parity so axis traffic spreads over
// both candidate sets instead of overloading one.
func PacketQuadrant(src, dst topology.Coord) Quadrant {
	east := dst.X > src.X
	west := dst.X < src.X
	north := dst.Y > src.Y
	south := dst.Y < src.Y
	even := (dst.X+dst.Y)%2 == 0
	switch {
	case north && east:
		return NE
	case north && west:
		return NW
	case south && east:
		return SE
	case south && west:
		return SW
	case north: // pure column, going north: NE or NW both work
		if even {
			return NE
		}
		return NW
	case south:
		if even {
			return SE
		}
		return SW
	case east: // pure row, going east
		if even {
			return NE
		}
		return SE
	case west:
		if even {
			return NW
		}
		return SW
	default:
		return NE // src == dst; callers never route these
	}
}

// Route computes the output port for one hop under the given algorithm.
// For Adaptive, it returns the preferred direction among the productive set
// as ranked by the supplied cost function (lower cost wins; ties prefer the
// X dimension, which empirically balances an XY-warmed network). A nil cost
// function makes adaptive routing fall back to dimension order.
func Route(alg Algorithm, cur, dst topology.Coord, mode flit.RouteMode, cost func(topology.Direction) float64) topology.Direction {
	if cur == dst {
		return topology.Local
	}
	switch alg {
	case XY:
		return DimensionOrder(cur, dst, flit.XFirst)
	case XYYX:
		return DimensionOrder(cur, dst, mode)
	case Adaptive:
		// Route treats cur as the packet's source for the turn-model
		// check; callers that know the true source should use OddEvenDirs
		// directly (the route engine does).
		dirs := OddEvenDirs(cur, cur, dst)
		if len(dirs) == 1 || cost == nil {
			return dirs[0]
		}
		best := dirs[0]
		bestCost := cost(best)
		for _, d := range dirs[1:] {
			if c := cost(d); c < bestCost {
				best, bestCost = d, c
			}
		}
		return best
	default:
		panic(fmt.Sprintf("routing: unknown algorithm %d", alg))
	}
}

// InjectionMode draws the packet route mode appropriate for the algorithm:
// XFirst for XY, a fair coin between XFirst and YFirst for XY-YX, and
// ModeAdaptive for adaptive routing. coin supplies the randomness (used
// only for XY-YX).
func InjectionMode(alg Algorithm, coin func() bool) flit.RouteMode {
	switch alg {
	case XY:
		return flit.XFirst
	case XYYX:
		if coin() {
			return flit.XFirst
		}
		return flit.YFirst
	case Adaptive:
		return flit.ModeAdaptive
	default:
		panic(fmt.Sprintf("routing: unknown algorithm %d", alg))
	}
}

// Turn describes the dimension transition a flit makes at a router,
// which is what selects its RoCo VC class (dx, dy, txy, tyx, Inj*).
type Turn uint8

const (
	// ContinueX: arrived traveling in X, leaves in X (dx class).
	ContinueX Turn = iota
	// ContinueY: arrived traveling in Y, leaves in Y (dy class).
	ContinueY
	// TurnXY: arrived traveling in X, leaves in Y (txy class).
	TurnXY
	// TurnYX: arrived traveling in Y, leaves in X (tyx class).
	TurnYX
	// InjectX: injected by the local PE, leaves in X (Injxy class).
	InjectX
	// InjectY: injected by the local PE, leaves in Y (Injyx class).
	InjectY
	// Eject: leaves through the Local port (no VC class; early ejection).
	Eject
)

// NumClasses is the number of buffer-holding path-set classes (dx, dy,
// txy, tyx, Injxy, Injyx) — every Turn value except Eject, which names
// the bufferless early-ejection path. Telemetry indexes per-class VC
// occupancy arrays by Turn over [0, NumClasses).
const NumClasses = 6

// String names the turn using the paper's VC-class vocabulary.
func (t Turn) String() string {
	switch t {
	case ContinueX:
		return "dx"
	case ContinueY:
		return "dy"
	case TurnXY:
		return "txy"
	case TurnYX:
		return "tyx"
	case InjectX:
		return "Injxy"
	case InjectY:
		return "Injyx"
	case Eject:
		return "eject"
	default:
		return "?"
	}
}

// TurnOf classifies the transition of a flit that arrives from direction
// from (the port it enters on, i.e. the opposite of its travel direction;
// topology.Local for injected flits) and leaves through out.
func TurnOf(from, out topology.Direction) Turn {
	if out == topology.Local {
		return Eject
	}
	switch {
	case from == topology.Local && out.IsX():
		return InjectX
	case from == topology.Local && out.IsY():
		return InjectY
	case from.IsX() && out.IsX():
		return ContinueX
	case from.IsY() && out.IsY():
		return ContinueY
	case from.IsX() && out.IsY():
		return TurnXY
	case from.IsY() && out.IsX():
		return TurnYX
	default:
		panic(fmt.Sprintf("routing: impossible turn %s->%s", from, out))
	}
}

// TorusDirection returns the shortest-way direction for one dimension of
// a w-wide ring from cur to dst (Invalid when equal), preferring the
// positive direction on ties. pos/neg name the ring's two directions.
func torusRingDirection(cur, dst, size int, pos, neg topology.Direction) topology.Direction {
	if cur == dst {
		return topology.Invalid
	}
	forward := (dst - cur + size) % size // hops going positive
	if forward <= size-forward {
		return pos
	}
	return neg
}

// TorusDimensionOrder is dimension-order routing on a 2D torus: fully
// around the X ring (shortest way), then the Y ring. Only XFirst order is
// supported (the torus extension is generic-router XY only; see
// DESIGN.md).
func TorusDimensionOrder(width, height int, cur, dst topology.Coord) topology.Direction {
	if cur == dst {
		return topology.Local
	}
	if d := torusRingDirection(cur.X, dst.X, width, topology.East, topology.West); d != topology.Invalid {
		return d
	}
	return torusRingDirection(cur.Y, dst.Y, height, topology.North, topology.South)
}

// TorusHopWraps reports whether a hop from cur in direction d crosses the
// torus dateline of its dimension (the wrap edge between coordinate size-1
// and 0). Dateline crossings switch the packet onto the second VC class,
// which is what breaks the ring's channel-dependency cycle.
func TorusHopWraps(width, height int, cur topology.Coord, d topology.Direction) bool {
	switch d {
	case topology.East:
		return cur.X == width-1
	case topology.West:
		return cur.X == 0
	case topology.North:
		return cur.Y == height-1
	case topology.South:
		return cur.Y == 0
	default:
		return false
	}
}
