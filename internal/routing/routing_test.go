package routing

import (
	"testing"
	"testing/quick"

	"github.com/rocosim/roco/internal/flit"
	"github.com/rocosim/roco/internal/topology"
)

type coordPair struct{ AX, AY, BX, BY uint8 }

func (p coordPair) coords(w, h int) (a, b topology.Coord) {
	a = topology.Coord{X: int(p.AX) % w, Y: int(p.AY) % h}
	b = topology.Coord{X: int(p.BX) % w, Y: int(p.BY) % h}
	return
}

func TestDimensionOrderXY(t *testing.T) {
	cur := topology.Coord{X: 3, Y: 3}
	cases := []struct {
		dst  topology.Coord
		want topology.Direction
	}{
		{topology.Coord{X: 5, Y: 1}, topology.East},
		{topology.Coord{X: 1, Y: 7}, topology.West},
		{topology.Coord{X: 3, Y: 7}, topology.North},
		{topology.Coord{X: 3, Y: 1}, topology.South},
		{topology.Coord{X: 3, Y: 3}, topology.Local},
	}
	for _, tc := range cases {
		if got := DimensionOrder(cur, tc.dst, flit.XFirst); got != tc.want {
			t.Errorf("XY %v->%v = %s, want %s", cur, tc.dst, got, tc.want)
		}
	}
}

func TestDimensionOrderYX(t *testing.T) {
	cur := topology.Coord{X: 3, Y: 3}
	if got := DimensionOrder(cur, topology.Coord{X: 5, Y: 1}, flit.YFirst); got != topology.South {
		t.Errorf("YX should move Y first, got %s", got)
	}
	if got := DimensionOrder(cur, topology.Coord{X: 5, Y: 3}, flit.YFirst); got != topology.East {
		t.Errorf("YX with zero Y offset should move X, got %s", got)
	}
}

func TestDimensionOrderReachesDestination(t *testing.T) {
	f := func(p coordPair, yFirst bool) bool {
		cur, dst := p.coords(8, 8)
		mode := flit.XFirst
		if yFirst {
			mode = flit.YFirst
		}
		for steps := 0; steps < 64; steps++ {
			d := DimensionOrder(cur, dst, mode)
			if d == topology.Local {
				return cur == dst
			}
			cur = step(cur, d)
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func step(c topology.Coord, d topology.Direction) topology.Coord {
	switch d {
	case topology.North:
		c.Y++
	case topology.South:
		c.Y--
	case topology.East:
		c.X++
	case topology.West:
		c.X--
	}
	return c
}

func TestProductiveAlwaysReduceDistance(t *testing.T) {
	f := func(p coordPair) bool {
		cur, dst := p.coords(8, 8)
		for _, d := range Productive(cur, dst) {
			if topology.ManhattanDistance(step(cur, d), dst) != topology.ManhattanDistance(cur, dst)-1 {
				return false
			}
		}
		return len(Productive(cur, dst)) > 0 || cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOddEvenDirsNonEmptyAndMinimal(t *testing.T) {
	// The odd-even route function must always offer at least one
	// productive direction, and every offered direction must be minimal.
	f := func(p coordPair, sx, sy uint8) bool {
		cur, dst := p.coords(8, 8)
		src := topology.Coord{X: int(sx) % 8, Y: int(sy) % 8}
		if cur == dst {
			return len(OddEvenDirs(src, cur, dst)) == 0
		}
		dirs := OddEvenDirs(src, cur, dst)
		if len(dirs) == 0 {
			return false
		}
		prod := Productive(cur, dst)
		for _, d := range dirs {
			ok := false
			for _, pd := range prod {
				if d == pd {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOddEvenTurnRules(t *testing.T) {
	// Walk every (src, dst) pair on a 6x6 mesh taking arbitrary permitted
	// directions; verify the forbidden turns never occur and the packet
	// always arrives.
	for sx := 0; sx < 6; sx++ {
		for sy := 0; sy < 6; sy++ {
			for dx := 0; dx < 6; dx++ {
				for dy := 0; dy < 6; dy++ {
					src := topology.Coord{X: sx, Y: sy}
					dst := topology.Coord{X: dx, Y: dy}
					cur := src
					var prev topology.Direction = topology.Invalid
					for steps := 0; steps < 24; steps++ {
						if cur == dst {
							break
						}
						dirs := OddEvenDirs(src, cur, dst)
						if len(dirs) == 0 {
							t.Fatalf("no dirs at %v for %v->%v", cur, src, dst)
						}
						d := dirs[steps%len(dirs)] // arbitrary adaptive choice
						if prev != topology.Invalid {
							checkOddEvenTurn(t, prev, d, cur)
						}
						cur = step(cur, d)
						prev = d
					}
					if cur != dst {
						t.Fatalf("%v->%v did not arrive", src, dst)
					}
				}
			}
		}
	}
}

// checkOddEvenTurn asserts Chiu's prohibitions: no EN/ES turn in an even
// column, no NW/SW turn in an odd column.
func checkOddEvenTurn(t *testing.T, prev, next topology.Direction, at topology.Coord) {
	t.Helper()
	even := at.X%2 == 0
	if prev == topology.East && (next == topology.North || next == topology.South) && even {
		t.Fatalf("E->%s turn at even column %v", next, at)
	}
	if (prev == topology.North || prev == topology.South) && next == topology.West && !even {
		t.Fatalf("%s->W turn at odd column %v", prev, at)
	}
}

func TestQuadrantOutputs(t *testing.T) {
	if NE.Outputs() != [2]topology.Direction{topology.North, topology.East} {
		t.Error("NE outputs wrong")
	}
	if SW.Outputs() != [2]topology.Direction{topology.South, topology.West} {
		t.Error("SW outputs wrong")
	}
}

func TestPacketQuadrantContainsAllMoves(t *testing.T) {
	// Every minimal move of a packet must be one of its quadrant's two
	// outputs — the invariant the Path-Sensitive router's deadlock freedom
	// rests on.
	f := func(p coordPair) bool {
		src, dst := p.coords(8, 8)
		if src == dst {
			return true
		}
		q := PacketQuadrant(src, dst)
		outs := q.Outputs()
		cur := src
		for steps := 0; steps < 32 && cur != dst; steps++ {
			moved := false
			for _, d := range Productive(cur, dst) {
				if d == outs[0] || d == outs[1] {
					cur = step(cur, d)
					moved = true
					break
				}
			}
			if !moved {
				return false // stuck: a productive move left the quadrant
			}
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPacketQuadrantAxisBalance(t *testing.T) {
	// Pure-axis pairs must spread over both adjacent quadrants.
	counts := map[Quadrant]int{}
	for y := 0; y < 8; y++ {
		src := topology.Coord{X: 3, Y: 0}
		dst := topology.Coord{X: 3, Y: y}
		if y == 0 {
			continue
		}
		counts[PacketQuadrant(src, dst)]++
	}
	if counts[NE] == 0 || counts[NW] == 0 {
		t.Errorf("pure-north traffic should split between NE and NW: %v", counts)
	}
}

func TestTurnOf(t *testing.T) {
	cases := []struct {
		from, out topology.Direction
		want      Turn
	}{
		{topology.East, topology.West, ContinueX},
		{topology.West, topology.East, ContinueX},
		{topology.North, topology.South, ContinueY},
		{topology.East, topology.North, TurnXY},
		{topology.West, topology.South, TurnXY},
		{topology.North, topology.East, TurnYX},
		{topology.South, topology.West, TurnYX},
		{topology.Local, topology.East, InjectX},
		{topology.Local, topology.South, InjectY},
		{topology.East, topology.Local, Eject},
	}
	for _, tc := range cases {
		if got := TurnOf(tc.from, tc.out); got != tc.want {
			t.Errorf("TurnOf(%s,%s) = %s, want %s", tc.from, tc.out, got, tc.want)
		}
	}
}

func TestInjectionMode(t *testing.T) {
	if InjectionMode(XY, func() bool { return true }) != flit.XFirst {
		t.Error("XY must inject XFirst")
	}
	if InjectionMode(Adaptive, func() bool { return false }) != flit.ModeAdaptive {
		t.Error("adaptive must inject ModeAdaptive")
	}
	if InjectionMode(XYYX, func() bool { return true }) != flit.XFirst {
		t.Error("XYYX heads should follow the coin")
	}
	if InjectionMode(XYYX, func() bool { return false }) != flit.YFirst {
		t.Error("XYYX tails should follow the coin")
	}
}

func TestRouteMatchesDimensionOrder(t *testing.T) {
	f := func(p coordPair) bool {
		cur, dst := p.coords(8, 8)
		return Route(XY, cur, dst, flit.XFirst, nil) == DimensionOrder(cur, dst, flit.XFirst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if XY.String() != "XY" || XYYX.String() != "XY-YX" || Adaptive.String() != "Adaptive" {
		t.Error("algorithm names wrong")
	}
}

func TestTorusDimensionOrderShortestWay(t *testing.T) {
	// On an 8-ring, (7,0)->(0,0) is one wrap hop East, not seven West.
	if d := TorusDimensionOrder(8, 8, topology.Coord{X: 7, Y: 0}, topology.Coord{X: 0, Y: 0}); d != topology.East {
		t.Errorf("wrap shortcut = %s, want E", d)
	}
	if d := TorusDimensionOrder(8, 8, topology.Coord{X: 0, Y: 1}, topology.Coord{X: 6, Y: 1}); d != topology.West {
		t.Errorf("short way to +6 = %s, want W (wrap)", d)
	}
	if d := TorusDimensionOrder(8, 8, topology.Coord{X: 2, Y: 2}, topology.Coord{X: 2, Y: 7}); d != topology.South {
		t.Errorf("short way to +5 in Y = %s, want S (wrap)", d)
	}
	if d := TorusDimensionOrder(8, 8, topology.Coord{X: 3, Y: 3}, topology.Coord{X: 3, Y: 3}); d != topology.Local {
		t.Errorf("self route = %s, want Local", d)
	}
}

func TestTorusDimensionOrderConverges(t *testing.T) {
	topo := topology.NewTorus(8, 8)
	for src := 0; src < topo.Nodes(); src += 5 {
		for dst := 0; dst < topo.Nodes(); dst += 3 {
			cur := topo.Coord(src)
			want := topo.Coord(dst)
			for hops := 0; cur != want; hops++ {
				if hops > 8 { // torus diameter is 8 on an 8x8
					t.Fatalf("%v->%v exceeded the torus diameter", topo.Coord(src), want)
				}
				d := TorusDimensionOrder(8, 8, cur, want)
				nb, ok := topo.Neighbor(topo.ID(cur), d)
				if !ok {
					t.Fatalf("route left the torus")
				}
				cur = topo.Coord(nb)
			}
		}
	}
}

func TestTorusHopWraps(t *testing.T) {
	cases := []struct {
		cur  topology.Coord
		d    topology.Direction
		want bool
	}{
		{topology.Coord{X: 7, Y: 0}, topology.East, true},
		{topology.Coord{X: 0, Y: 0}, topology.West, true},
		{topology.Coord{X: 3, Y: 7}, topology.North, true},
		{topology.Coord{X: 3, Y: 0}, topology.South, true},
		{topology.Coord{X: 3, Y: 3}, topology.East, false},
		{topology.Coord{X: 0, Y: 0}, topology.East, false},
	}
	for _, tc := range cases {
		if got := TorusHopWraps(8, 8, tc.cur, tc.d); got != tc.want {
			t.Errorf("TorusHopWraps(%v, %s) = %v", tc.cur, tc.d, got)
		}
	}
}
