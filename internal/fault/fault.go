// Package fault models permanent (hard) intra-router failures after the
// paper's Section 4: a taxonomy of the six major router components, their
// classification along the message-centric / router-centric and critical /
// non-critical axes (paper Table 3), and generation of the random fault
// sets used by the evaluation (Figures 11, 12 and 14).
package fault

import (
	"fmt"

	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
)

// Component names the six major router components of the paper's fault
// model.
type Component uint8

const (
	// RC is the routing-computation unit (per-packet, message-centric,
	// non-critical: recoverable by double routing at the neighbors).
	RC Component = iota
	// Buffer is a VC buffer (per-flit, message-centric; non-critical when a
	// bypass path exists, enabling virtual queuing).
	Buffer
	// VA is the virtual-channel allocator (per-packet, router-centric,
	// non-critical pathway but unrecoverable by sharing: the module must be
	// disabled).
	VA
	// SA is the switch allocator (per-flit, router-centric, non-critical
	// pathway; recoverable by offloading onto the idle VA arbiters).
	SA
	// Crossbar is the switch fabric (per-flit, router-centric, critical
	// pathway: the module must be disabled).
	Crossbar
	// MuxDemux covers the input decoders and output multiplexers (per-flit,
	// message-centric, critical pathway: the module must be disabled).
	MuxDemux

	numComponents
)

// D2DIf is a die-to-die interface failure on a multi-chip topology: every
// boundary link of one chiplet-to-chiplet interface is severed in both
// directions in a single event. It is a link-level site, not one of the
// paper's six intra-router components, so it is excluded from
// AllComponents and from the random Class populations; fault schedules
// name it explicitly (Fault.Port selects the interface).
const D2DIf Component = numComponents

// String names the component.
func (c Component) String() string {
	switch c {
	case RC:
		return "RC"
	case Buffer:
		return "Buffer"
	case VA:
		return "VA"
	case SA:
		return "SA"
	case Crossbar:
		return "Crossbar"
	case MuxDemux:
		return "MUX/DEMUX"
	case D2DIf:
		return "D2D-IF"
	default:
		return "?"
	}
}

// Centricity distinguishes components that operate on a single message in
// isolation (message-centric) from those that arbitrate across messages and
// need router-wide state (router-centric).
type Centricity uint8

const (
	MessageCentric Centricity = iota
	RouterCentric
)

// String names the centricity class.
func (c Centricity) String() string {
	if c == MessageCentric {
		return "message-centric"
	}
	return "router-centric"
}

// OperationRegime distinguishes per-flit components (exercised by every
// flit) from per-packet components (exercised only by head flits).
type OperationRegime uint8

const (
	PerFlit OperationRegime = iota
	PerPacket
)

// String names the operation regime.
func (r OperationRegime) String() string {
	if r == PerFlit {
		return "per-flit"
	}
	return "per-packet"
}

// Classification captures one row of the paper's Table 3 for a component.
type Classification struct {
	Component  Component
	Centricity Centricity
	Regime     OperationRegime
	// Critical reports whether the component lies on the critical datapath
	// (buffers are critical only without a bypass path; this reproduction
	// models buffers with bypass paths, matching the virtual-queuing
	// recovery scheme, so Buffer is non-critical here).
	Critical bool
	// RoCoRecoverable reports whether the RoCo hardware-recycling schemes
	// can keep the affected module in (possibly degraded) service.
	RoCoRecoverable bool
	// Recovery names the RoCo reaction.
	Recovery string
}

// Classify returns the Table 3 row for a component.
func Classify(c Component) Classification {
	switch c {
	case RC:
		return Classification{c, MessageCentric, PerPacket, false, true, "double routing at downstream nodes"}
	case Buffer:
		return Classification{c, MessageCentric, PerFlit, false, true, "virtual queuing over the buffer bypass path"}
	case VA:
		return Classification{c, RouterCentric, PerPacket, false, false, "disable the affected module"}
	case SA:
		return Classification{c, RouterCentric, PerFlit, false, true, "offload arbitration onto idle VA arbiters"}
	case Crossbar:
		return Classification{c, RouterCentric, PerFlit, true, false, "disable the affected module"}
	case MuxDemux:
		return Classification{c, MessageCentric, PerFlit, true, false, "disable the affected module"}
	case D2DIf:
		return Classification{c, MessageCentric, PerFlit, true, false, "sever the interface; traffic reroutes around the boundary cut"}
	default:
		panic(fmt.Sprintf("fault: unknown component %d", c))
	}
}

// Class selects which fault population an experiment draws from. The
// paper's Figure 11 injects router-centric / critical-pathway faults;
// Figure 12 injects message-centric / non-critical faults.
type Class uint8

const (
	// Critical selects router-centric and critical-pathway components
	// (VA, SA, Crossbar, MUX/DEMUX).
	Critical Class = iota
	// NonCritical selects message-centric, non-critical components with a
	// recovery scheme (RC, Buffer).
	NonCritical
)

// String names the class as the figures do.
func (c Class) String() string {
	if c == Critical {
		return "router-centric/critical"
	}
	return "message-centric/non-critical"
}

// Components returns the component population of the class.
func (c Class) Components() []Component {
	if c == Critical {
		return []Component{VA, SA, Crossbar, MuxDemux}
	}
	return []Component{RC, Buffer}
}

// Module identifies which RoCo module a fault lands in. Baseline routers
// ignore the module (any fault blocks the whole node).
type Module uint8

const (
	RowModule Module = iota
	ColumnModule
	numModules
)

// String names the module.
func (m Module) String() string {
	if m == RowModule {
		return "row"
	}
	return "column"
}

// Fault is one permanent intra-router failure. Faults install either
// statically before the first cycle or live mid-run via a Schedule; the
// router reaction (Hardware Recycling or whole-node blocking) is the
// same, but a live installation additionally dooms the traffic resident
// in the failed component.
type Fault struct {
	// Node is the afflicted router.
	Node int
	// Component is the failed unit.
	Component Component
	// Module localizes the fault within a RoCo router; baselines ignore it.
	Module Module
	// VC localizes a Buffer fault to one virtual channel (an index into the
	// afflicted module's or router's VC space); ignored otherwise.
	VC int
	// Port selects the boundary side of a D2DIf fault: the severed
	// interface is the one between Node's chiplet and the adjacent chiplet
	// in this direction. Ignored by every other component.
	Port topology.Direction
}

// String renders the fault for logs and reports.
func (f Fault) String() string {
	if f.Component == D2DIf {
		return fmt.Sprintf("node %d: %s fault (chip interface toward %s)", f.Node, f.Component, f.Port)
	}
	s := fmt.Sprintf("node %d: %s fault (%s module", f.Node, f.Component, f.Module)
	if f.Component == Buffer {
		s += fmt.Sprintf(", vc %d", f.VC)
	}
	return s + ")"
}

// RandomSet draws count faults of the given class, matching the paper's
// "randomly injected into the network infrastructure": each fault strikes
// a distinct node drawn uniformly from all nodes (distinct so k faults
// degrade k routers), with the component drawn uniformly from the class
// population, a uniform module, and a uniform VC index in
// [0, vcsPerModule) for Buffer faults. Panics when count > nodes.
func RandomSet(class Class, count, nodes, vcsPerModule int, rng *stats.RNG) []Fault {
	if count > nodes {
		panic("fault: more faults than nodes")
	}
	comps := class.Components()
	perm := rng.Perm(nodes)
	out := make([]Fault, count)
	for i := range out {
		out[i] = Fault{
			Node:      perm[i],
			Component: comps[rng.Intn(len(comps))],
			Module:    Module(rng.Intn(int(numModules))),
			VC:        rng.Intn(vcsPerModule),
		}
	}
	return out
}

// AllComponents lists every component in declaration order.
func AllComponents() []Component {
	out := make([]Component, 0, int(numComponents))
	for c := Component(0); c < numComponents; c++ {
		out = append(out, c)
	}
	return out
}
