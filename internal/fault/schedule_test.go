package fault

import (
	"testing"

	"github.com/rocosim/roco/internal/stats"
)

func TestScheduleDueOrderAndCursor(t *testing.T) {
	s := NewSchedule([]Event{
		{Cycle: 30, Fault: Fault{Node: 3, Component: VA}},
		{Cycle: 10, Fault: Fault{Node: 1, Component: Crossbar}},
		{Cycle: 10, Fault: Fault{Node: 2, Component: SA}},
	})
	if s.Len() != 3 || s.Pending() != 3 {
		t.Fatalf("Len=%d Pending=%d, want 3/3", s.Len(), s.Pending())
	}
	if got := s.Due(5); len(got) != 0 {
		t.Fatalf("nothing due at cycle 5, got %d events", len(got))
	}
	due := s.Due(10)
	if len(due) != 2 || due[0].Fault.Node != 1 || due[1].Fault.Node != 2 {
		t.Fatalf("cycle 10 due = %+v, want nodes 1,2 in insertion-stable order", due)
	}
	if got := s.Due(10); len(got) != 0 {
		t.Fatal("events delivered twice")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending=%d after two consumed, want 1", s.Pending())
	}
	// A late caller gets everything overdue at once.
	if due := s.Due(100); len(due) != 1 || due[0].Cycle != 30 {
		t.Fatalf("overdue delivery = %+v, want the cycle-30 event", due)
	}
	if s.Pending() != 0 {
		t.Fatal("schedule should be exhausted")
	}
}

func TestScheduleEventsSortedCopy(t *testing.T) {
	src := []Event{
		{Cycle: 20, Fault: Fault{Node: 1}},
		{Cycle: 5, Fault: Fault{Node: 0}},
	}
	s := NewSchedule(src)
	ev := s.Events()
	if ev[0].Cycle != 5 || ev[1].Cycle != 20 {
		t.Fatalf("events not sorted by cycle: %+v", ev)
	}
	src[0].Cycle = 999 // the schedule must own its storage
	if s.Events()[1].Cycle != 20 {
		t.Fatal("schedule aliases the caller's slice")
	}
}

func TestPoissonScheduleDeterministicAndDistinct(t *testing.T) {
	a := PoissonSchedule(Critical, 500, 100000, 64, 12, stats.NewRNG(7))
	b := PoissonSchedule(Critical, 500, 100000, 64, 12, stats.NewRNG(7))
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different lengths: %d vs %d", a.Len(), b.Len())
	}
	if a.Len() == 0 {
		t.Fatal("mttf 500 over 100k cycles should draw events")
	}
	seen := map[int]bool{}
	lastCycle := int64(-1)
	for i, ev := range a.Events() {
		if ev != b.Events()[i] {
			t.Fatal("same seed produced different schedules")
		}
		if ev.Cycle <= lastCycle && seen[ev.Fault.Node] {
			t.Fatal("events out of order")
		}
		if ev.Cycle < 0 || ev.Cycle > 100000 {
			t.Fatalf("event cycle %d outside horizon", ev.Cycle)
		}
		lastCycle = ev.Cycle
		if seen[ev.Fault.Node] {
			t.Fatalf("node %d struck twice", ev.Fault.Node)
		}
		seen[ev.Fault.Node] = true
		if ev.Fault.Component == RC || ev.Fault.Component == Buffer {
			t.Fatalf("critical schedule drew %s", ev.Fault.Component)
		}
	}
}

func TestPoissonScheduleStopsAtNodeExhaustion(t *testing.T) {
	s := PoissonSchedule(NonCritical, 1, 1_000_000, 4, 12, stats.NewRNG(3))
	if s.Len() > 4 {
		t.Fatalf("%d events over 4 nodes; faults must strike distinct nodes", s.Len())
	}
}

func TestPoissonScheduleBadMTTFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive mttf should panic")
		}
	}()
	PoissonSchedule(Critical, 0, 1000, 16, 12, stats.NewRNG(1))
}
