package fault

import (
	"sort"

	"github.com/rocosim/roco/internal/stats"
)

// Event is one scheduled runtime fault: Fault strikes at the beginning of
// cycle Cycle (before generation, ticking and injection of that cycle).
type Event struct {
	Cycle int64
	Fault Fault
}

// Schedule is an ordered sequence of runtime fault events that the network
// consumes as simulated time passes: Network.Step installs every event
// whose cycle has been reached, live, while traffic is in flight. The zero
// value is an empty schedule. A Schedule is a value type; copies share the
// underlying event list but advance their consumption cursor
// independently.
type Schedule struct {
	events []Event
	next   int
}

// NewSchedule returns a schedule over the given events, copied and
// stable-sorted by cycle (events in the same cycle keep their relative
// order).
func NewSchedule(events []Event) Schedule {
	out := make([]Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return Schedule{events: out}
}

// Len returns the total number of events, consumed or not.
func (s *Schedule) Len() int { return len(s.events) }

// Pending returns the number of events not yet handed out by Due.
func (s *Schedule) Pending() int { return len(s.events) - s.next }

// Events returns a copy of the full event list in schedule order.
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Due returns the events whose cycle is <= cycle and that have not been
// returned before, advancing the consumption cursor past them. The
// returned slice aliases the schedule's storage; callers must not modify
// it.
func (s *Schedule) Due(cycle int64) []Event {
	start := s.next
	for s.next < len(s.events) && s.events[s.next].Cycle <= cycle {
		s.next++
	}
	return s.events[start:s.next]
}

// PoissonSchedule draws fault arrivals as a Poisson process: inter-arrival
// times are exponential with the given mean time to failure (in cycles),
// truncated at horizon. Like RandomSet, each fault strikes a distinct
// random node (so k events degrade k routers), with the component drawn
// uniformly from the class population, a uniform module, and a uniform VC
// in [0, vcsPerModule) for Buffer faults. The process stops early once
// every node has failed.
func PoissonSchedule(class Class, mttf float64, horizon int64, nodes, vcsPerModule int, rng *stats.RNG) Schedule {
	if mttf <= 0 {
		panic("fault: MTTF must be positive")
	}
	comps := class.Components()
	perm := rng.Perm(nodes)
	var events []Event
	t := int64(0)
	for i := 0; i < nodes; i++ {
		t += int64(rng.Exponential(mttf)) + 1
		if t > horizon {
			break
		}
		events = append(events, Event{
			Cycle: t,
			Fault: Fault{
				Node:      perm[i],
				Component: comps[rng.Intn(len(comps))],
				Module:    Module(rng.Intn(int(numModules))),
				VC:        rng.Intn(vcsPerModule),
			},
		})
	}
	return NewSchedule(events)
}
