package fault

import (
	"github.com/rocosim/roco/internal/snapshot"
	"github.com/rocosim/roco/internal/topology"
)

// SaveState serializes one event (the network's fault log uses it too).
func (ev Event) SaveState(e *snapshot.Encoder) {
	e.I64(ev.Cycle)
	e.Int(ev.Fault.Node)
	e.U8(uint8(ev.Fault.Component))
	e.U8(uint8(ev.Fault.Module))
	e.Int(ev.Fault.VC)
	e.U8(uint8(ev.Fault.Port))
}

// LoadEvent restores an event written by Event.SaveState.
func LoadEvent(d *snapshot.Decoder) Event {
	return Event{
		Cycle: d.I64(),
		Fault: Fault{
			Node:      d.Int(),
			Component: Component(d.U8()),
			Module:    Module(d.U8()),
			VC:        d.Int(),
			Port:      topology.Direction(d.U8()),
		},
	}
}

// SaveState serializes the schedule's consumption cursor. The event list
// itself is configuration (rebuilt from the run's Config on resume); only
// the cursor is runtime state.
func (s *Schedule) SaveState(e *snapshot.Encoder) {
	e.Int(len(s.events))
	e.Int(s.next)
}

// LoadState restores a cursor written by SaveState into a schedule rebuilt
// from the same configuration; an event-count mismatch (a different
// schedule) poisons the decoder.
func (s *Schedule) LoadState(d *snapshot.Decoder) {
	n := d.Int()
	next := d.Int()
	if d.Err() != nil {
		return
	}
	if n != len(s.events) {
		d.Corruptf("fault schedule has %d events, snapshot had %d", len(s.events), n)
		return
	}
	if next < 0 || next > len(s.events) {
		d.Corruptf("fault schedule cursor %d out of range", next)
		return
	}
	s.next = next
}
