package fault

import (
	"testing"

	"github.com/rocosim/roco/internal/stats"
)

func TestTable3Classification(t *testing.T) {
	cases := []struct {
		c           Component
		centricity  Centricity
		regime      OperationRegime
		critical    bool
		recoverable bool
	}{
		{RC, MessageCentric, PerPacket, false, true},
		{Buffer, MessageCentric, PerFlit, false, true},
		{VA, RouterCentric, PerPacket, false, false},
		{SA, RouterCentric, PerFlit, false, true},
		{Crossbar, RouterCentric, PerFlit, true, false},
		{MuxDemux, MessageCentric, PerFlit, true, false},
	}
	for _, tc := range cases {
		got := Classify(tc.c)
		if got.Centricity != tc.centricity || got.Regime != tc.regime ||
			got.Critical != tc.critical || got.RoCoRecoverable != tc.recoverable {
			t.Errorf("Classify(%s) = %+v", tc.c, got)
		}
		if got.Recovery == "" {
			t.Errorf("Classify(%s) has no recovery description", tc.c)
		}
	}
}

func TestClassPopulations(t *testing.T) {
	crit := Critical.Components()
	if len(crit) != 4 {
		t.Fatalf("critical class has %d components", len(crit))
	}
	for _, c := range crit {
		cl := Classify(c)
		if cl.Centricity != RouterCentric && !cl.Critical {
			t.Errorf("%s in the critical population but neither router-centric nor critical-path", c)
		}
	}
	for _, c := range NonCritical.Components() {
		cl := Classify(c)
		if !cl.RoCoRecoverable {
			t.Errorf("%s in the non-critical population but not recoverable", c)
		}
	}
}

func TestRandomSetDistinctNodes(t *testing.T) {
	rng := stats.NewRNG(9)
	for trial := 0; trial < 50; trial++ {
		set := RandomSet(Critical, 4, 64, 12, rng)
		if len(set) != 4 {
			t.Fatalf("got %d faults", len(set))
		}
		seen := map[int]bool{}
		for _, f := range set {
			if seen[f.Node] {
				t.Fatalf("duplicate node %d in fault set", f.Node)
			}
			seen[f.Node] = true
			if f.Node < 0 || f.Node >= 64 {
				t.Fatalf("node %d out of range", f.Node)
			}
			if f.VC < 0 || f.VC >= 12 {
				t.Fatalf("vc %d out of range", f.VC)
			}
		}
	}
}

func TestRandomSetDrawsFromClass(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		for _, f := range RandomSet(NonCritical, 4, 64, 12, rng) {
			if f.Component != RC && f.Component != Buffer {
				t.Fatalf("non-critical set contained %s", f.Component)
			}
		}
		for _, f := range RandomSet(Critical, 4, 64, 12, rng) {
			if f.Component == RC || f.Component == Buffer {
				t.Fatalf("critical set contained %s", f.Component)
			}
		}
	}
}

func TestRandomSetDeterministic(t *testing.T) {
	a := RandomSet(Critical, 4, 64, 12, stats.NewRNG(5))
	b := RandomSet(Critical, 4, 64, 12, stats.NewRNG(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fault sets")
		}
	}
}

func TestRandomSetTooManyFaultsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("more faults than nodes should panic")
		}
	}()
	RandomSet(Critical, 5, 4, 12, stats.NewRNG(1))
}

func TestStrings(t *testing.T) {
	if RC.String() != "RC" || MuxDemux.String() != "MUX/DEMUX" {
		t.Error("component names wrong")
	}
	if MessageCentric.String() != "message-centric" || RouterCentric.String() != "router-centric" {
		t.Error("centricity names wrong")
	}
	if PerFlit.String() != "per-flit" || PerPacket.String() != "per-packet" {
		t.Error("regime names wrong")
	}
	f := Fault{Node: 3, Component: Buffer, Module: ColumnModule, VC: 7}
	if f.String() == "" {
		t.Error("fault string empty")
	}
	if len(AllComponents()) != 6 {
		t.Error("AllComponents should list 6 components")
	}
}
