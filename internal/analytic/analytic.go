// Package analytic provides the closed-form results of the paper's
// Section 3.2: the count of non-blocking (maximal) input-output matchings
// of a crossbar (Equation 1) and the non-blocking probabilities of the
// three router architectures (Table 2), together with a Monte-Carlo
// cross-check that samples random request patterns.
package analytic

import (
	"math"

	"github.com/rocosim/roco/internal/stats"
)

// NonBlockingCount returns F(N), the number of request patterns of an
// N x N crossbar in which every output is requested by exactly one input —
// the paper's Equation 1:
//
//	F(N) = N! - sum_{j=1..N} C(N,j) * F(N-j),  F(1) = 0, F(2) = 1
//
// (F is the derangement count: each of the N inputs requests one of the
// N-1 outputs other than its own, and the non-blocking patterns are the
// permutations without fixed points.)
func NonBlockingCount(n int) float64 {
	if n < 1 {
		panic("analytic: N must be >= 1")
	}
	f := make([]float64, n+1)
	f[0] = 1 // the empty matching, needed to ground the recurrence
	if n >= 1 {
		f[1] = 0
	}
	for k := 2; k <= n; k++ {
		v := factorial(k)
		for j := 1; j <= k; j++ {
			v -= binomial(k, j) * f[k-j]
		}
		f[k] = v
	}
	return f[n]
}

func factorial(n int) float64 {
	v := 1.0
	for i := 2; i <= n; i++ {
		v *= float64(i)
	}
	return v
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return factorial(n) / (factorial(k) * factorial(n-k))
}

// GenericNonBlocking returns the probability that a full N x N crossbar
// achieves maximal matching when each input requests one of its N-1
// foreign outputs uniformly: F(N) / (N-1)^N. For N = 5 this is the paper's
// 0.043.
func GenericNonBlocking(n int) float64 {
	return NonBlockingCount(n) / math.Pow(float64(n-1), float64(n))
}

// PathSensitiveNonBlocking returns the non-blocking probability of the
// Path-Sensitive router's decomposed crossbar: each output is contended by
// two quadrant path sets whose requests are chained, giving 2 favorable
// patterns out of 2^4 (the paper's 0.125).
func PathSensitiveNonBlocking() float64 { return 2.0 / 16.0 }

// RoCoNonBlocking returns the non-blocking probability of the RoCo router:
// each 2x2 module achieves maximal matching in 2 of its 4 request
// patterns, and the two modules are independent: (1 - 0.5)^2 ... the paper
// writes it as (1-0.5)^2 = 0.25.
func RoCoNonBlocking() float64 { return 0.25 }

// MonteCarloGeneric estimates GenericNonBlocking by sampling: each of the
// n inputs requests a uniform foreign output; the pattern is non-blocking
// when all outputs are distinct (and, with each input requesting a foreign
// output, every output is then covered).
func MonteCarloGeneric(n int, samples int, rng *stats.RNG) float64 {
	hits := 0
	seen := make([]bool, n)
	for s := 0; s < samples; s++ {
		for i := range seen {
			seen[i] = false
		}
		ok := true
		for i := 0; i < n; i++ {
			o := rng.Intn(n - 1)
			if o >= i {
				o++
			}
			if seen[o] {
				ok = false
				break
			}
			seen[o] = true
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// MonteCarloRoCo estimates the RoCo module-pair non-blocking probability:
// each module's two inputs independently request one of its two outputs;
// the router is non-blocking when both modules see a perfect matching.
func MonteCarloRoCo(samples int, rng *stats.RNG) float64 {
	hits := 0
	for s := 0; s < samples; s++ {
		ok := true
		for m := 0; m < 2; m++ {
			a, b := rng.Intn(2), rng.Intn(2)
			if a == b {
				ok = false
			}
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// MonteCarloPathSensitive estimates the Path-Sensitive non-blocking
// probability: the four quadrant sets each request one of their two
// outputs; the pattern is non-blocking when all four outputs are covered
// exactly once. The adjacency (NE,NW share North; NE,SE share East; ...)
// admits exactly 2 of the 16 patterns.
func MonteCarloPathSensitive(samples int, rng *stats.RNG) float64 {
	// Set outputs: NE:{N,E}, NW:{N,W}, SE:{S,E}, SW:{S,W} with
	// N=0,E=1,S=2,W=3.
	outputs := [4][2]int{{0, 1}, {0, 3}, {2, 1}, {2, 3}}
	hits := 0
	var seen [4]bool
	for s := 0; s < samples; s++ {
		seen = [4]bool{}
		ok := true
		for q := 0; q < 4; q++ {
			o := outputs[q][rng.Intn(2)]
			if seen[o] {
				ok = false
				break
			}
			seen[o] = true
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// VAComplexity captures the virtual-channel-allocator hardware comparison
// of the paper's Figure 2: how many arbiters each design needs and how
// wide they are, for v VCs per port, under the two routing-function
// regimes (R => v: the routing function returns a single VC; R => P: it
// returns the VCs of a single physical channel).
type VAComplexity struct {
	Design string
	// FirstStageArbiters x FirstStageFanIn describes the per-input stage
	// (zero arbiters when the regime needs none).
	FirstStageArbiters int
	FirstStageFanIn    int
	// SecondStageArbiters x SecondStageFanIn describes the output stage.
	SecondStageArbiters int
	SecondStageFanIn    int
}

// GenericVAComplexity returns Figure 2(a): the generic 5-port router needs
// 5v arbiters of size 5v:1 (R => v regime has no first stage; R => P adds
// 5v first-stage v:1 arbiters).
func GenericVAComplexity(v int, routingReturnsPC bool) VAComplexity {
	c := VAComplexity{
		Design:              "generic",
		SecondStageArbiters: 5 * v,
		SecondStageFanIn:    5 * v,
	}
	if routingReturnsPC {
		c.FirstStageArbiters = 5 * v
		c.FirstStageFanIn = v
	}
	return c
}

// RoCoVAComplexity returns Figure 2(b): early ejection removes the PE path
// set, leaving 4 ports split into two decoupled pairs, so the RoCo router
// needs only 4v arbiters of size 2v:1 — fewer and smaller than the generic
// case.
func RoCoVAComplexity(v int, routingReturnsPC bool) VAComplexity {
	c := VAComplexity{
		Design:              "roco",
		SecondStageArbiters: 4 * v,
		SecondStageFanIn:    2 * v,
	}
	if routingReturnsPC {
		c.FirstStageArbiters = 4 * v
		c.FirstStageFanIn = v
	}
	return c
}
