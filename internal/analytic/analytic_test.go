package analytic

import (
	"math"
	"testing"

	"github.com/rocosim/roco/internal/stats"
)

func TestNonBlockingCountIsDerangements(t *testing.T) {
	// F(N) from the paper's recurrence equals the derangement numbers.
	want := []float64{1, 0, 1, 2, 9, 44, 265, 1854}
	for n := 1; n < len(want); n++ {
		if got := NonBlockingCount(n); got != want[n] {
			t.Errorf("F(%d) = %v, want %v", n, got, want[n])
		}
	}
}

func TestTable2Values(t *testing.T) {
	// The paper's Table 2: 0.043, 0.125, 0.25.
	if g := GenericNonBlocking(5); math.Abs(g-44.0/1024.0) > 1e-12 {
		t.Errorf("generic = %v, want 44/1024", g)
	}
	if math.Abs(GenericNonBlocking(5)-0.043) > 0.0005 {
		t.Errorf("generic = %v, want ~0.043", GenericNonBlocking(5))
	}
	if PathSensitiveNonBlocking() != 0.125 {
		t.Error("path-sensitive should be 0.125")
	}
	if RoCoNonBlocking() != 0.25 {
		t.Error("RoCo should be 0.25")
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	rng := stats.NewRNG(1)
	const samples = 500000
	if mc := MonteCarloGeneric(5, samples, rng); math.Abs(mc-GenericNonBlocking(5)) > 0.003 {
		t.Errorf("generic MC = %v, analytic %v", mc, GenericNonBlocking(5))
	}
	if mc := MonteCarloRoCo(samples, rng); math.Abs(mc-0.25) > 0.003 {
		t.Errorf("RoCo MC = %v, want 0.25", mc)
	}
	if mc := MonteCarloPathSensitive(samples, rng); math.Abs(mc-0.125) > 0.003 {
		t.Errorf("path-sensitive MC = %v, want 0.125", mc)
	}
}

func TestMonteCarloGenericOtherSizes(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, n := range []int{3, 4} {
		want := NonBlockingCount(n) / math.Pow(float64(n-1), float64(n))
		if mc := MonteCarloGeneric(n, 400000, rng); math.Abs(mc-want) > 0.005 {
			t.Errorf("N=%d: MC %v vs analytic %v", n, mc, want)
		}
	}
}

func TestOrderingMatchesPaper(t *testing.T) {
	// RoCo is ~6x the generic probability and 2x the path-sensitive one.
	g, p, r := GenericNonBlocking(5), PathSensitiveNonBlocking(), RoCoNonBlocking()
	if !(r > p && p > g) {
		t.Errorf("ordering wrong: %v %v %v", g, p, r)
	}
	if ratio := r / g; ratio < 5.5 || ratio > 6.5 {
		t.Errorf("RoCo/generic = %v, want ~5.8", ratio)
	}
	if r/p != 2 {
		t.Errorf("RoCo/path-sensitive = %v, want 2", r/p)
	}
}

func TestFigure2VAComplexity(t *testing.T) {
	// The paper's claim: RoCo needs FEWER (4v vs 5v) and SMALLER (2v:1 vs
	// 5v:1) arbiters, in both routing-function regimes.
	for _, pc := range []bool{false, true} {
		g := GenericVAComplexity(3, pc)
		r := RoCoVAComplexity(3, pc)
		if !(r.SecondStageArbiters < g.SecondStageArbiters) {
			t.Errorf("pc=%v: RoCo should need fewer arbiters (%d vs %d)", pc, r.SecondStageArbiters, g.SecondStageArbiters)
		}
		if !(r.SecondStageFanIn < g.SecondStageFanIn) {
			t.Errorf("pc=%v: RoCo arbiters should be smaller (%d vs %d)", pc, r.SecondStageFanIn, g.SecondStageFanIn)
		}
	}
	g := GenericVAComplexity(3, false)
	if g.SecondStageArbiters != 15 || g.SecondStageFanIn != 15 {
		t.Errorf("generic v=3: %d arbiters of %d:1, want 15 of 15:1", g.SecondStageArbiters, g.SecondStageFanIn)
	}
	r := RoCoVAComplexity(3, true)
	if r.SecondStageArbiters != 12 || r.SecondStageFanIn != 6 || r.FirstStageArbiters != 12 || r.FirstStageFanIn != 3 {
		t.Errorf("roco v=3 R=>P: %+v", r)
	}
}
