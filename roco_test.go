package roco

import (
	"math"
	"strings"
	"testing"
)

func quickConfig(k RouterKind, alg Algorithm, tp TrafficPattern, rate float64) Config {
	return Config{
		Router: k, Algorithm: alg, Traffic: tp,
		InjectionRate: rate,
		WarmupPackets: 500, MeasurePackets: 4000,
		Seed: 7,
	}
}

func TestRunDefaults(t *testing.T) {
	res := Run(quickConfig(RoCo, XY, Uniform, 0.15))
	if res.Completion != 1 {
		t.Fatalf("completion = %v", res.Completion)
	}
	if res.AvgLatency <= 0 || res.EnergyPerPacketNJ <= 0 || res.PEF <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.PEF != res.AvgLatency*res.EnergyPerPacketNJ/res.Completion {
		t.Error("PEF must equal EDP/completion")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := Run(quickConfig(RoCo, Adaptive, Uniform, 0.2))
	b := Run(quickConfig(RoCo, Adaptive, Uniform, 0.2))
	if a.AvgLatency != b.AvgLatency || a.Cycles != b.Cycles || a.EnergyPerPacketNJ != b.EnergyPerPacketNJ {
		t.Error("same config+seed must reproduce exactly")
	}
}

func TestHeadlineLatencyOrdering(t *testing.T) {
	// The paper's core performance claim at moderate load.
	gen := Run(quickConfig(Generic, XY, Uniform, 0.25))
	rc := Run(quickConfig(RoCo, XY, Uniform, 0.25))
	if rc.AvgLatency >= gen.AvgLatency {
		t.Errorf("RoCo %.2f should beat generic %.2f at 25%% load", rc.AvgLatency, gen.AvgLatency)
	}
}

func TestHeadlineEnergyOrdering(t *testing.T) {
	// Figure 13: RoCo ~20% below generic, ~6% below path-sensitive.
	gen := Run(quickConfig(Generic, XY, Uniform, 0.30))
	ps := Run(quickConfig(PathSensitive, XY, Uniform, 0.30))
	rc := Run(quickConfig(RoCo, XY, Uniform, 0.30))
	gGap := 1 - rc.EnergyPerPacketNJ/gen.EnergyPerPacketNJ
	pGap := 1 - rc.EnergyPerPacketNJ/ps.EnergyPerPacketNJ
	t.Logf("energy: gen=%.3f ps=%.3f roco=%.3f (gaps %.1f%%, %.1f%%)",
		gen.EnergyPerPacketNJ, ps.EnergyPerPacketNJ, rc.EnergyPerPacketNJ, gGap*100, pGap*100)
	if gGap < 0.10 || gGap > 0.35 {
		t.Errorf("RoCo-vs-generic energy gap %.1f%%, want ~20%%", gGap*100)
	}
	if pGap < 0.02 || pGap > 0.15 {
		t.Errorf("RoCo-vs-path-sensitive energy gap %.1f%%, want ~6%%", pGap*100)
	}
}

func TestTable2ExactValues(t *testing.T) {
	res := Table2(200000, 1)
	if math.Abs(res.Generic-0.043) > 0.001 {
		t.Errorf("generic = %v", res.Generic)
	}
	if res.PathSensitive != 0.125 || res.RoCo != 0.25 {
		t.Error("table 2 analytic values wrong")
	}
	if math.Abs(res.GenericMC-res.Generic) > 0.005 ||
		math.Abs(res.PathSensitiveMC-0.125) > 0.005 ||
		math.Abs(res.MC-0.25) > 0.005 {
		t.Error("Monte-Carlo estimates diverge from analytic values")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "0.250") {
		t.Error("table 2 rendering missing values")
	}
}

func TestTable1Rendering(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	out := sb.String()
	for _, want := range []string{"dx tyx Injxy", "dy txy Injyx", "XY-YX", "Adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	var sb strings.Builder
	Table3(&sb)
	out := sb.String()
	for _, want := range []string{"Crossbar", "virtual queuing", "double routing", "router-centric"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

func TestRandomFaultsReproducible(t *testing.T) {
	a := RandomFaults(CriticalFaults, 4, 8, 8, 5)
	b := RandomFaults(CriticalFaults, 4, 8, 8, 5)
	if len(a) != 4 {
		t.Fatalf("got %d faults", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault sets not reproducible")
		}
	}
}

func TestFaultedRunLosesTraffic(t *testing.T) {
	cfg := quickConfig(Generic, XY, Uniform, 0.30)
	cfg.Faults = []Fault{{Node: 27, Component: Crossbar}}
	cfg.InactivityLimit = 2000
	res := Run(cfg)
	if res.Completion >= 1 {
		t.Error("a dead central node must strand deterministic traffic")
	}
	if res.Completion < 0.3 {
		t.Errorf("completion %.3f implausibly low with packet discard in place", res.Completion)
	}
}

func TestLatencySweepShape(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 3000
	sweep := RunLatencySweep(opts, Uniform, XY, []float64{0.05, 0.20})
	for _, k := range RouterKinds {
		lat := sweep.Latency[k]
		if len(lat) != 2 || lat[0] <= 0 {
			t.Fatalf("%s: bad sweep %v", k, lat)
		}
		if lat[1] < lat[0] {
			t.Errorf("%s: latency should not fall with load (%v)", k, lat)
		}
	}
	var sb strings.Builder
	sweep.Render(&sb)
	if !strings.Contains(sb.String(), "RoCo") {
		t.Error("sweep rendering missing router names")
	}
}

func TestEnumStrings(t *testing.T) {
	if Generic.String() != "Generic VC Router" || RoCo.String() != "RoCo" {
		t.Error("router names wrong")
	}
	if XY.String() != "XY" || Adaptive.String() != "Adaptive" {
		t.Error("algorithm names wrong")
	}
	if Uniform.String() != "uniform" || SelfSimilar.String() != "self-similar" {
		t.Error("traffic names wrong")
	}
	if CriticalFaults.String() == NonCriticalFaults.String() {
		t.Error("fault class names must differ")
	}
	if Crossbar.String() != "Crossbar" {
		t.Error("component names wrong")
	}
}

func TestMirrorAblation(t *testing.T) {
	mirror := Run(quickConfig(RoCo, XY, Uniform, 0.30))
	cfg := quickConfig(RoCo, XY, Uniform, 0.30)
	cfg.DisableMirrorSA = true
	separable := Run(cfg)
	if separable.Completion != 1 {
		t.Fatalf("separable-SA ablation lost traffic: %.3f", separable.Completion)
	}
	t.Logf("mirror=%.2f separable=%.2f", mirror.AvgLatency, separable.AvgLatency)
	if separable.AvgLatency < mirror.AvgLatency*0.98 {
		t.Errorf("the mirror allocator should not lose to the separable stage (mirror=%.2f separable=%.2f)",
			mirror.AvgLatency, separable.AvgLatency)
	}
}

func TestResultString(t *testing.T) {
	if Run(quickConfig(RoCo, XY, Uniform, 0.1)).String() == "" {
		t.Error("empty result string")
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(RoCo, XY, Uniform, 0.3)
	if cfg.WarmupPackets != 20000 || cfg.MeasurePackets != 1000000 {
		t.Error("paper run lengths wrong")
	}
	if cfg.Width != 8 || cfg.Height != 8 || cfg.FlitsPerPacket != 4 {
		t.Error("paper mesh/packet shape wrong")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
}
