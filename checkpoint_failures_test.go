// CheckpointOptions failure paths and the cancellable run surface:
// unwritable directories, write errors mid-frame, empty-directory
// resume, stale temp sweeping, context cancellation and cycle budgets
// (each with resume equivalence).
package roco

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// smallCkptConfig is a faster sibling of ckptTestConfig for tests that
// need several full runs.
func smallCkptConfig(seed uint64) Config {
	return Config{
		Width: 4, Height: 4,
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate:  0.2,
		WarmupPackets:  50,
		MeasurePackets: 400,
		Seed:           seed,
		TelemetryEvery: 64,
	}
}

// TestRunCheckpointedUnwritableDir: a checkpoint directory that cannot
// be created (its parent is a regular file — fails for any uid, root
// included) must surface as an error from RunCheckpointed, not as a run
// that silently lost its crash-safety.
func TestRunCheckpointedUnwritableDir(t *testing.T) {
	base := t.TempDir()
	plain := filepath.Join(base, "plainfile")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sim := NewSim(smallCkptConfig(1))
	_, _, err := sim.RunCheckpointed(CheckpointOptions{
		Every: 64, Dir: filepath.Join(plain, "sub"),
	})
	if err == nil {
		t.Fatal("checkpointing under a regular file should fail")
	}
}

// TestRunCheckpointedWriteErrorStopsRun: when a periodic snapshot write
// starts failing mid-run (directory ripped out from under the Sim), the
// run must stop and report the write error — a run that can no longer
// checkpoint has lost the property the caller asked for.
func TestRunCheckpointedWriteErrorStopsRun(t *testing.T) {
	dir := t.TempDir()
	ckpts := filepath.Join(dir, "ckpts")
	sim := NewSim(smallCkptConfig(2))
	fired := false
	_, _, err := sim.RunCheckpointed(CheckpointOptions{
		Every: 64, Dir: ckpts,
		Progress: func(cycle int64) {
			if !fired {
				fired = true
				// Replace the directory with a regular file so the next
				// periodic write cannot even create its temp file.
				if err := os.RemoveAll(ckpts); err != nil {
					t.Errorf("removing checkpoint dir: %v", err)
				}
				if err := os.WriteFile(ckpts, []byte("usurped"), 0o644); err != nil {
					t.Errorf("usurping checkpoint dir: %v", err)
				}
			}
		},
	})
	if !fired {
		t.Fatal("run finished without a single periodic snapshot; shrink Every")
	}
	if err == nil {
		t.Fatal("write failure mid-run should surface as an error")
	}
}

// failAfter errors once n bytes have been accepted — a disk filling up
// mid-frame.
type failAfter struct {
	n    int
	boom error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.boom
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.boom
	}
	f.n -= len(p)
	return len(p), nil
}

// TestCheckpointWriteErrorMidFrame: an io error partway through the
// frame propagates out of Checkpoint.
func TestCheckpointWriteErrorMidFrame(t *testing.T) {
	boom := errors.New("disk full")
	sim := NewSim(smallCkptConfig(3))
	for _, budget := range []int{0, 1, 7, 64, 4096} {
		err := sim.Checkpoint(&failAfter{n: budget, boom: boom})
		if !errors.Is(err, boom) {
			t.Fatalf("budget %d: err=%v, want the writer's error", budget, err)
		}
	}
	// The failed writes must not have perturbed the simulation: a full
	// checkpoint still round-trips.
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatalf("clean checkpoint after failed ones: %v", err)
	}
	if _, err := Resume(bytes.NewReader(buf.Bytes()), smallCkptConfig(3)); err != nil {
		t.Fatalf("resume after failed writes: %v", err)
	}
}

// TestResumeLatestEmptyAndMissingDir: both an empty directory and a
// nonexistent one are ErrNoSnapshot — "nothing to resume", not a crash.
func TestResumeLatestEmptyAndMissingDir(t *testing.T) {
	cfg := smallCkptConfig(4)
	if _, err := ResumeLatest(t.TempDir(), cfg); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: err=%v, want ErrNoSnapshot", err)
	}
	missing := filepath.Join(t.TempDir(), "never-created")
	if _, err := ResumeLatest(missing, cfg); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing dir: err=%v, want ErrNoSnapshot", err)
	}
}

// TestStaleTempSweep: stale temp files from a killed writer are swept by
// both resume startup and the first checkpoint write into a directory.
func TestStaleTempSweep(t *testing.T) {
	cfg := smallCkptConfig(5)
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-killed-writer")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeLatest(dir, cfg); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err=%v, want ErrNoSnapshot", err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ResumeLatest left the stale temp behind (err=%v)", err)
	}

	if err := os.WriteFile(stale, []byte("torn again"), 0o644); err != nil {
		t.Fatal(err)
	}
	sim := NewSim(cfg)
	if err := sim.CheckpointFile(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("CheckpointFile left the stale temp behind (err=%v)", err)
	}
	// The sweep must not eat valid snapshots: the one just written
	// resumes.
	if _, err := ResumeLatest(dir, cfg); err != nil {
		t.Fatalf("resume of the fresh snapshot: %v", err)
	}
}

// TestRunCheckpointedContextCancel: cancelling the context stops the run
// at the next cycle boundary with a final snapshot, context.Cause
// reports the caller's cause, and resuming finishes bit-identical to an
// uninterrupted run.
func TestRunCheckpointedContextCancel(t *testing.T) {
	cfg := smallCkptConfig(6)
	want := Run(cfg)
	dir := t.TempDir()
	cause := errors.New("operator asked")
	ctx, cancel := context.WithCancelCause(context.Background())
	sim := NewSim(cfg)
	res, interrupted, err := sim.RunCheckpointed(CheckpointOptions{
		Every: 64, Dir: dir, Context: ctx,
		Progress: func(cycle int64) {
			if cycle >= 128 {
				cancel(cause)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("cancelled run reported no interruption")
	}
	if res.Cycles >= want.Cycles {
		t.Fatalf("interrupted at cycle %d, not before the full run's %d", res.Cycles, want.Cycles)
	}
	if got := context.Cause(ctx); !errors.Is(got, cause) {
		t.Fatalf("context.Cause=%v, want the caller's cause", got)
	}
	resumed, err := ResumeLatest(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Run(); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed-after-cancel result differs from uninterrupted run")
	}
}

// TestRunCheckpointedCycleBudget: the budget stops the run at the budget
// cycle with a snapshot flushed, and a resumed run granted the rest of
// its time finishes bit-identical.
func TestRunCheckpointedCycleBudget(t *testing.T) {
	cfg := smallCkptConfig(7)
	want := Run(cfg)
	dir := t.TempDir()
	sim := NewSim(cfg)
	res, interrupted, err := sim.RunCheckpointed(CheckpointOptions{
		Every: 64, Dir: dir, CycleBudget: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("budgeted run reported no interruption")
	}
	if sim.Cycle() < 200 || sim.Cycle() > 200+1 {
		t.Fatalf("stopped at cycle %d, want the budget boundary", sim.Cycle())
	}
	if res.Cycles >= want.Cycles {
		t.Fatalf("budget did not actually cut the run short (%d vs %d)", res.Cycles, want.Cycles)
	}
	resumed, err := ResumeLatest(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Run(); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed-after-budget result differs from uninterrupted run")
	}
}

// TestRunCheckpointedBudgetWithoutDir: Context/CycleBudget alone make
// the run cancellable without any snapshot directory — and Progress is
// never called in that mode.
func TestRunCheckpointedBudgetWithoutDir(t *testing.T) {
	sim := NewSim(smallCkptConfig(8))
	calls := 0
	_, interrupted, err := sim.RunCheckpointed(CheckpointOptions{
		CycleBudget: 100,
		Progress:    func(int64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("budget without dir should still interrupt")
	}
	if calls != 0 {
		t.Fatalf("Progress fired %d times with no Dir, want 0", calls)
	}
}
