.PHONY: check vet test doccheck bench bench-paper fuzz soak checkresume profile

# The pre-merge gate: vet + build + tests + race detector + doc gate +
# the checkpoint-equivalence and rocoserve crash-recovery smokes.
check: vet
	sh scripts/check.sh
	$(MAKE) checkresume

# Static analysis alone (also the first step of check.sh).
vet:
	go vet ./...

# Checkpoint-equivalence smoke under the race detector: periodic
# snapshots must not perturb a run, a resumed run must continue
# bit-identically for every kernel, and parking/restarting the worker
# pool around a save must be race-free.
checkresume:
	go test -race -count=1 -run 'TestCheckpointResumeEquivalence|TestCheckpointCrossKernelResume|TestRunCheckpointed' ./internal/network .

test:
	go test ./...

# The documentation gate alone (also part of `make check`): package
# comments, exported-identifier docs, live markdown links.
doccheck:
	sh scripts/doccheck.sh

# Kernel benchmarks (gated vs reference, three router kinds, three
# loads), shard-scaling benchmarks (RoCo, three mesh sizes, 1-8 shards),
# the telemetry-overhead benchmarks (epoch sampling off vs on), the
# data-layout benchmarks (gated vs struct-of-arrays kernel on big
# meshes), the allocation-stage benchmarks (three router kinds at
# and beyond saturation), and the chiplet-topology benchmarks (flat die
# vs chiplet seams); writes BENCH_kernel.json, BENCH_shard.json,
# BENCH_telemetry.json, BENCH_layout.json, BENCH_alloc.json and
# BENCH_chiplet.json, with raw output under bench/out/.
bench:
	sh scripts/bench.sh kernel
	sh scripts/bench.sh shard
	sh scripts/bench.sh telemetry
	sh scripts/bench.sh layout
	sh scripts/bench.sh alloc
	sh scripts/bench.sh chiplet

# CPU profile of the saturated 64x64 step (gated kernel, RoCo router) —
# the allocation-stage hot path DESIGN.md 4i targets. Writes the profile
# and the bench binary under bench/out/ (git-ignored); inspect with
# `go tool pprof bench/out/profile.test bench/out/cpu.pprof`.
profile:
	mkdir -p bench/out
	go test -run '^$$' -bench 'BenchmarkLayout/64x64/sat/gated' -benchtime 200x \
		-cpuprofile bench/out/cpu.pprof -o bench/out/profile.test ./bench/
	go tool pprof -top -nodecount 15 bench/out/profile.test bench/out/cpu.pprof

# The paper-table benchmarks at the repository root.
bench-paper:
	go test -bench=. -benchmem .

# Extended fuzzing of the runtime fault-injection path.
fuzz:
	go test ./internal/network -run '^$$' -fuzz FuzzDynamicFaults -fuzztime 60s

# Fault-storm chaos soak: the reliable-delivery protocol under a Poisson
# storm of runtime faults, with the race detector on.
soak:
	go test -race -run 'TestReliable' -count=1 ./internal/network
	go test -race -run 'TestSoakReliableFaultStorm' -count=1 .
