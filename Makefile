.PHONY: check test bench bench-paper fuzz soak

# The pre-merge gate: vet + build + tests + race detector.
check:
	sh scripts/check.sh

test:
	go test ./...

# Kernel benchmarks (gated vs reference, three router kinds, three
# loads) and shard-scaling benchmarks (RoCo, three mesh sizes, 1-8
# shards); writes BENCH_kernel.json and BENCH_shard.json.
bench:
	sh scripts/bench.sh kernel
	sh scripts/bench.sh shard

# The paper-table benchmarks at the repository root.
bench-paper:
	go test -bench=. -benchmem .

# Extended fuzzing of the runtime fault-injection path.
fuzz:
	go test ./internal/network -run '^$$' -fuzz FuzzDynamicFaults -fuzztime 60s

# Fault-storm chaos soak: the reliable-delivery protocol under a Poisson
# storm of runtime faults, with the race detector on.
soak:
	go test -race -run 'TestReliable' -count=1 ./internal/network
	go test -race -run 'TestSoakReliableFaultStorm' -count=1 .
