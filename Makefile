.PHONY: check test bench fuzz

# The pre-merge gate: vet + build + tests + race detector.
check:
	sh scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# Extended fuzzing of the runtime fault-injection path.
fuzz:
	go test ./internal/network -run '^$$' -fuzz FuzzDynamicFaults -fuzztime 60s
