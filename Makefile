.PHONY: check test bench bench-paper fuzz

# The pre-merge gate: vet + build + tests + race detector.
check:
	sh scripts/check.sh

test:
	go test ./...

# Kernel benchmarks (gated vs reference, three router kinds, three
# loads); writes BENCH_kernel.json.
bench:
	sh scripts/bench.sh

# The paper-table benchmarks at the repository root.
bench-paper:
	go test -bench=. -benchmem .

# Extended fuzzing of the runtime fault-injection path.
fuzz:
	go test ./internal/network -run '^$$' -fuzz FuzzDynamicFaults -fuzztime 60s
