.PHONY: check vet test doccheck bench bench-paper fuzz soak checkresume

# The pre-merge gate: vet + build + tests + race detector + doc gate +
# the checkpoint-equivalence and rocoserve crash-recovery smokes.
check: vet
	sh scripts/check.sh
	$(MAKE) checkresume

# Static analysis alone (also the first step of check.sh).
vet:
	go vet ./...

# Checkpoint-equivalence smoke under the race detector: periodic
# snapshots must not perturb a run, a resumed run must continue
# bit-identically for every kernel, and parking/restarting the worker
# pool around a save must be race-free.
checkresume:
	go test -race -count=1 -run 'TestCheckpointResumeEquivalence|TestCheckpointCrossKernelResume|TestRunCheckpointed' ./internal/network .

test:
	go test ./...

# The documentation gate alone (also part of `make check`): package
# comments, exported-identifier docs, live markdown links.
doccheck:
	sh scripts/doccheck.sh

# Kernel benchmarks (gated vs reference, three router kinds, three
# loads), shard-scaling benchmarks (RoCo, three mesh sizes, 1-8 shards),
# the telemetry-overhead benchmarks (epoch sampling off vs on), and the
# data-layout benchmarks (gated vs struct-of-arrays kernel on big
# meshes); writes BENCH_kernel.json, BENCH_shard.json,
# BENCH_telemetry.json and BENCH_layout.json, with raw output under
# bench/out/.
bench:
	sh scripts/bench.sh kernel
	sh scripts/bench.sh shard
	sh scripts/bench.sh telemetry
	sh scripts/bench.sh layout

# The paper-table benchmarks at the repository root.
bench-paper:
	go test -bench=. -benchmem .

# Extended fuzzing of the runtime fault-injection path.
fuzz:
	go test ./internal/network -run '^$$' -fuzz FuzzDynamicFaults -fuzztime 60s

# Fault-storm chaos soak: the reliable-delivery protocol under a Poisson
# storm of runtime faults, with the race detector on.
soak:
	go test -race -run 'TestReliable' -count=1 ./internal/network
	go test -race -run 'TestSoakReliableFaultStorm' -count=1 .
