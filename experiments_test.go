package roco

import (
	"reflect"
	"testing"
)

// TestRunAllOrderWithWorkers pins the dispatch contract of the experiment
// drivers: whatever the worker count, runAll returns results in the input
// order of the configs. Each config gets a distinct seed and rate so a
// misplaced result cannot accidentally equal the right one.
func TestRunAllOrderWithWorkers(t *testing.T) {
	mkCfgs := func() []Config {
		var cfgs []Config
		for i := 0; i < 8; i++ {
			cfgs = append(cfgs, Config{
				Width: 4, Height: 4,
				Router:        RoCo,
				Algorithm:     XY,
				Traffic:       Uniform,
				InjectionRate: 0.05 + 0.02*float64(i),
				WarmupPackets: 50, MeasurePackets: 400,
				Seed: uint64(100 + i),
			})
		}
		return cfgs
	}
	serial := Options{Workers: 1}
	want := runAll(serial, mkCfgs())
	for _, workers := range []int{2, 4, 0} {
		opts := Options{Workers: workers, Parallel: true}
		got := runAll(opts, mkCfgs())
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("Workers=%d: result %d out of order or nondeterministic", workers, i)
			}
		}
	}
}

// TestRunAllSharedBudget checks that the worker budget is split between
// config-level parallelism and per-run shards without changing results:
// sharded configs under a small shared budget must match serial unsharded
// runs bit for bit.
func TestRunAllSharedBudget(t *testing.T) {
	mkCfgs := func(shards int) []Config {
		var cfgs []Config
		for i := 0; i < 4; i++ {
			cfgs = append(cfgs, Config{
				Width: 8, Height: 8,
				Router:        RoCo,
				Algorithm:     XY,
				Traffic:       Uniform,
				InjectionRate: 0.10,
				WarmupPackets: 50, MeasurePackets: 500,
				Seed:   uint64(7 + i),
				Shards: shards,
			})
		}
		return cfgs
	}
	want := runAll(Options{Workers: 1}, mkCfgs(1))
	got := runAll(Options{Workers: 4}, mkCfgs(4))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded runs under a shared worker budget diverged from serial unsharded runs")
	}
}
