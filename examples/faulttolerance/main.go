// Fault tolerance: demonstrate graceful degradation. We inject permanent
// faults into random routers and compare how much traffic each
// architecture still delivers — the experiment behind the paper's Figures
// 11, 12 and 14.
//
// A crossbar fault takes a whole generic or path-sensitive router
// off-line, but only isolates one of the RoCo router's two modules; RC and
// buffer faults are fully absorbed by RoCo's hardware-recycling schemes
// (double routing and virtual queuing).
package main

import (
	"fmt"

	"github.com/rocosim/roco"
)

func main() {
	const rate = 0.30 // the paper's fault-experiment load

	for _, class := range []roco.FaultClass{roco.CriticalFaults, roco.NonCriticalFaults} {
		fmt.Printf("=== %s faults, XY routing, %d%% injection ===\n", class, int(rate*100))
		fmt.Printf("%-8s %-20s %12s %12s %10s\n", "faults", "router", "completion", "latency", "PEF")
		for _, count := range []int{1, 2, 4} {
			faults := roco.RandomFaults(class, count, 8, 8, 99)
			for _, kind := range roco.RouterKinds {
				res := roco.Run(roco.Config{
					Router:          kind,
					Algorithm:       roco.XY,
					Traffic:         roco.Uniform,
					InjectionRate:   rate,
					Seed:            42,
					Faults:          faults,
					MeasurePackets:  15000,
					InactivityLimit: 3000,
				})
				fmt.Printf("%-8d %-20s %12.3f %12.1f %10.2f\n",
					count, kind, res.Completion, res.AvgLatency, res.PEF)
			}
		}
		fmt.Println()
	}

	fmt.Println("Expected: under critical faults the baselines lose entire routers")
	fmt.Println("while RoCo keeps one module serving; under non-critical faults")
	fmt.Println("RoCo recovers completely (completion = 1.0) with only a small")
	fmt.Println("latency penalty from the recovery handshakes.")
}
