// Quickstart: simulate the three router architectures on the paper's 8x8
// mesh at a moderate load and print the headline comparison — latency,
// energy per packet, and the PEF composite.
package main

import (
	"fmt"

	"github.com/rocosim/roco"
)

func main() {
	fmt.Println("RoCo reproduction quickstart: 8x8 mesh, XY routing, uniform traffic, 25% load")
	fmt.Println()
	fmt.Printf("%-20s %12s %14s %10s\n", "router", "latency(cyc)", "energy(nJ/pkt)", "PEF")
	for _, kind := range roco.RouterKinds {
		res := roco.Run(roco.Config{
			Router:        kind,
			Algorithm:     roco.XY,
			Traffic:       roco.Uniform,
			InjectionRate: 0.25,
			Seed:          42,
		})
		fmt.Printf("%-20s %12.2f %14.3f %10.2f\n",
			kind, res.AvgLatency, res.EnergyPerPacketNJ, res.PEF)
	}
	fmt.Println()
	fmt.Println("The RoCo decoupled router should show the lowest latency, the")
	fmt.Println("lowest energy per packet, and therefore the best (lowest) PEF.")
}
