// Observability: the simulator's introspection tools — sampled packet
// journeys, a link-utilization heatmap, the per-component energy split,
// a windowed delivery time series that makes self-similar burstiness
// visible, and the epoch telemetry layer: Result.Telemetry time series
// plus the live Prometheus /metrics endpoint of a LiveRun.
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"github.com/rocosim/roco"
)

func main() {
	base := roco.Config{
		Router:         roco.RoCo,
		Algorithm:      roco.XY,
		InjectionRate:  0.25,
		WarmupPackets:  500,
		MeasurePackets: 8000,
		Seed:           3,
	}

	fmt.Println("== Sampled packet journeys (uniform traffic) ==")
	cfg := base
	cfg.Traffic = roco.Uniform
	_, traces := roco.RunTraced(cfg, 5)
	for _, tr := range traces {
		fmt.Println(" ", tr)
	}

	fmt.Println()
	fmt.Println("== Link utilization and energy split ==")
	d := roco.RunDetailed(cfg)
	d.RenderHeatmap(os.Stdout)
	e := d.Energy
	fmt.Printf("energy: buffers %.0f nJ, crossbars %.0f nJ, links %.0f nJ, leakage %.0f nJ\n",
		e.BuffersNJ, e.CrossbarNJ, e.LinksNJ, e.LeakageNJ)

	fmt.Println()
	fmt.Println("== Windowed deliveries: uniform vs self-similar ==")
	for _, tp := range []roco.TrafficPattern{roco.Uniform, roco.SelfSimilar} {
		cfg := base
		cfg.Traffic = tp
		_, windows := roco.RunWindowed(cfg, 250)
		fmt.Printf("%-13s:", tp)
		for i, w := range windows {
			if i >= 12 {
				break
			}
			fmt.Printf(" %4d", w.Delivered)
		}
		fmt.Println("  (packets per 250-cycle window)")
	}
	fmt.Println()
	fmt.Println("Self-similar windows swing harder than uniform ones (per-node")
	fmt.Println("bursts partly smooth out in the 64-node aggregate); the dispersion")
	fmt.Println("gap is what differentiates the paper's Figure 9 from Figure 8.")

	// Epoch telemetry: set Config.TelemetryEvery and the Result grows a
	// time series of per-epoch counters — utilizations, VC occupancy by
	// path-set class, SA conflicts, early ejections, per-module energy.
	// The stream is identical whichever kernel ran the simulation, and
	// enabling it never changes the other Result fields.
	fmt.Println()
	fmt.Println("== Epoch telemetry (TelemetryEvery = 500) ==")
	cfg.TelemetryEvery = 500
	res := roco.Run(cfg)
	tel := res.Telemetry
	fmt.Println("epoch  cycles  link-util  xbar-util  early-ej  occupancy by class")
	for i := range tel.Epochs {
		ep := &tel.Epochs[i]
		fmt.Printf("%5d  %6d  %9.3f  %9.3f  %8d  %v\n",
			ep.Index, ep.Cycles, ep.LinkUtilization, ep.CrossbarUtilization,
			ep.EarlyEjections, ep.Occupancy)
	}
	fmt.Printf("classes: %v; totals: %d flits over %d cycles, %.1f nJ\n",
		roco.VCClassNames, tel.Totals.Delivered, tel.Totals.Cycles, tel.Totals.Energy.TotalNJ())
	fmt.Println()
	mid := &tel.Epochs[len(tel.Epochs)/2]
	tel.RenderHeatmap(os.Stdout, mid)

	// The same series streams live: a LiveRun exposes the collector as a
	// Prometheus /metrics handler while the simulation executes (rocosim
	// -serve wraps exactly this). Here an httptest server stands in for
	// a real listener and is scraped after the run completes.
	fmt.Println()
	fmt.Println("== Live /metrics (LiveRun + Prometheus text format) ==")
	live := roco.NewLiveRun(cfg)
	srv := httptest.NewServer(live.MetricsHandler())
	defer srv.Close()
	live.Run()
	resp, err := http.Get(srv.URL)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "roco_flits_") || strings.HasPrefix(line, "roco_link_utilization") ||
			strings.HasPrefix(line, "roco_energy_nanojoules_total{module=\"buffers\"}") {
			fmt.Println(" ", line)
		}
	}
}
