// Observability: the simulator's introspection tools — sampled packet
// journeys, a link-utilization heatmap, the per-component energy split,
// and a windowed delivery time series that makes self-similar burstiness
// visible.
package main

import (
	"fmt"
	"os"

	"github.com/rocosim/roco"
)

func main() {
	base := roco.Config{
		Router:         roco.RoCo,
		Algorithm:      roco.XY,
		InjectionRate:  0.25,
		WarmupPackets:  500,
		MeasurePackets: 8000,
		Seed:           3,
	}

	fmt.Println("== Sampled packet journeys (uniform traffic) ==")
	cfg := base
	cfg.Traffic = roco.Uniform
	_, traces := roco.RunTraced(cfg, 5)
	for _, tr := range traces {
		fmt.Println(" ", tr)
	}

	fmt.Println()
	fmt.Println("== Link utilization and energy split ==")
	d := roco.RunDetailed(cfg)
	d.RenderHeatmap(os.Stdout)
	e := d.Energy
	fmt.Printf("energy: buffers %.0f nJ, crossbars %.0f nJ, links %.0f nJ, leakage %.0f nJ\n",
		e.BuffersNJ, e.CrossbarNJ, e.LinksNJ, e.LeakageNJ)

	fmt.Println()
	fmt.Println("== Windowed deliveries: uniform vs self-similar ==")
	for _, tp := range []roco.TrafficPattern{roco.Uniform, roco.SelfSimilar} {
		cfg := base
		cfg.Traffic = tp
		_, windows := roco.RunWindowed(cfg, 250)
		fmt.Printf("%-13s:", tp)
		for i, w := range windows {
			if i >= 12 {
				break
			}
			fmt.Printf(" %4d", w.Delivered)
		}
		fmt.Println("  (packets per 250-cycle window)")
	}
	fmt.Println()
	fmt.Println("Self-similar windows swing harder than uniform ones (per-node")
	fmt.Println("bursts partly smooth out in the 64-node aggregate); the dispersion")
	fmt.Println("gap is what differentiates the paper's Figure 9 from Figure 8.")
}
