// Traffic sweep: latency-versus-load curves for the three routers across
// the paper's workloads, rendered as ASCII plots — a miniature of Figures
// 8, 9 and 10.
package main

import (
	"fmt"
	"os"

	"github.com/rocosim/roco"
)

func main() {
	opts := roco.DefaultOptions()
	opts.Warmup, opts.Measure = 1000, 10000 // quick demo scale
	opts.Seed = 7

	for _, tp := range []roco.TrafficPattern{roco.Uniform, roco.SelfSimilar, roco.Transpose} {
		sweep := roco.RunLatencySweep(opts, tp, roco.XY, roco.LatencyRates)
		sweep.Render(os.Stdout)
	}
	fmt.Println("Each panel compares the generic, path-sensitive and RoCo routers")
	fmt.Println("under XY routing; run cmd/rocobench for the full figure suite.")
}
