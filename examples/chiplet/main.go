// Chiplet topologies: a multi-chip mesh stitched from die-to-die links,
// and what happens when one whole D2D interface dies mid-run.
//
// The run tiles the familiar 8x8 mesh as a 2x2 grid of 4x4-node chiplets
// whose boundary links carry serialized off-package signaling (higher
// latency, narrower bandwidth, pricier per flit). At mid-run a fault
// strikes the east interface of chip (0,0) — every boundary link between
// columns 3 and 4 on the top half of the machine, in one event. Under
// the reliable-delivery protocol the network degrades instead of
// wedging: flows the cut makes unreachable are proven undeliverable and
// given up, everything else keeps flowing around the severed seam.
package main

import (
	"fmt"

	"github.com/rocosim/roco"
)

func run(class roco.D2DClass, faulted bool) roco.Result {
	cfg := roco.Config{
		Router:        roco.RoCo,
		Algorithm:     roco.XY,
		Traffic:       roco.Uniform,
		InjectionRate: 0.10,
		Seed:          42,
		// A 2x2 grid of 4x4-node chiplets: the same 64 nodes as the flat
		// 8x8 mesh, but the links crossing die boundaries now pay the
		// D2D class's latency, serialization gap, and energy premium.
		ChipsX: 2, ChipsY: 2, ChipW: 4, ChipH: 4,
		D2DClass:       class,
		Reliable:       true,
		WarmupPackets:  500,
		MeasurePackets: 12000,
	}
	if faulted {
		cfg.FaultSchedule = []roco.TimedFault{
			{Cycle: 3000, Fault: roco.Fault{
				Node: 0, Component: roco.D2DInterface, Side: roco.SideEast,
			}},
		}
	}
	return roco.Run(cfg)
}

func main() {
	fmt.Println("=== Boundary-link classes: same 64 nodes, different seams ===")
	fmt.Printf("%-10s %12s %12s %12s %14s\n",
		"class", "latency", "completion", "D2D flits", "D2D extra nJ")
	for _, class := range []roco.D2DClass{roco.D2DParallel, roco.D2DSerial} {
		res := run(class, false)
		fmt.Printf("%-10s %12.2f %12.3f %12d %14.2f\n",
			class, res.AvgLatency, res.Completion, res.D2DFlits, res.D2DEnergyNJ)
	}

	fmt.Println()
	fmt.Println("=== Severing chip (0,0)'s east D2D interface at cycle 3000 ===")
	res := run(roco.D2DSerial, true)
	ev := res.FaultEvents[0]
	fmt.Printf("goodput before the cut:   %.3f flits/cycle\n", ev.PreGoodput)
	fmt.Printf("goodput floor after it:   %.3f flits/cycle\n", ev.FloorGoodput)
	fmt.Printf("steady state afterwards:  %.3f flits/cycle\n", ev.PostGoodput)
	fmt.Printf("flows proven unreachable: %d given up, residual loss %d\n",
		len(res.GiveUps), res.ResidualLoss)
	fmt.Printf("everything else:          completion %.3f of %d generated packets\n",
		res.Completion, res.GeneratedPackets)

	fmt.Println()
	fmt.Println("Expected: the serial class delivers the same packets as the")
	fmt.Println("parallel one at higher latency and boundary energy. After the")
	fmt.Println("interface fault goodput dips while the broken copies are")
	fmt.Println("reaped, then recovers near the pre-fault rate: only flows that")
	fmt.Println("must cross the severed seam are abandoned, each proven")
	fmt.Println("unreachable by the fault map rather than timed out — so the")
	fmt.Println("accounting closes (completion + give-ups = 1, zero residual).")
}
