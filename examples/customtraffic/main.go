// Custom traffic: use the public API's extension patterns (hotspot and
// bit-complement, beyond the paper's three workloads) and sweep the
// hotspot concentration to see how the three routers degrade when traffic
// converges on one node.
package main

import (
	"fmt"

	"github.com/rocosim/roco"
)

func main() {
	fmt.Println("Hotspot sweep: 8x8 mesh, XY routing, 20% load, hotspot at node 27 (3,3)")
	fmt.Printf("%-10s %-20s %12s %12s\n", "hot frac", "router", "latency", "throughput")
	for _, frac := range []float64{0.0, 0.1, 0.2, 0.4} {
		for _, kind := range roco.RouterKinds {
			res := roco.Run(roco.Config{
				Router:          kind,
				Algorithm:       roco.XY,
				Traffic:         roco.Hotspot,
				InjectionRate:   0.20,
				HotspotNode:     27,
				HotspotFraction: frac,
				Seed:            11,
				MeasurePackets:  15000,
				MaxCycles:       400000,
			})
			fmt.Printf("%-10.2f %-20s %12.2f %12.3f\n", frac, kind, res.AvgLatency, res.Throughput)
		}
	}
	fmt.Println()

	fmt.Println("Bit-complement: every node b talks to node ^b (adversarial for XY)")
	fmt.Printf("%-20s %12s\n", "router", "latency")
	for _, kind := range roco.RouterKinds {
		res := roco.Run(roco.Config{
			Router:         kind,
			Algorithm:      roco.Adaptive,
			Traffic:        roco.BitComplement,
			InjectionRate:  0.15,
			Seed:           11,
			MeasurePackets: 15000,
			MaxCycles:      400000,
		})
		fmt.Printf("%-20s %12.2f\n", kind, res.AvgLatency)
	}
}
