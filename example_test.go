package roco_test

import (
	"fmt"
	"os"

	"github.com/rocosim/roco"
)

// The simplest use: run one simulation and read its headline metrics.
func ExampleRun() {
	res := roco.Run(roco.Config{
		Router:         roco.RoCo,
		Algorithm:      roco.XY,
		Traffic:        roco.Uniform,
		InjectionRate:  0.15,
		WarmupPackets:  200,
		MeasurePackets: 2000,
		Seed:           1,
	})
	fmt.Printf("completion %.0f%%, all packets delivered: %v\n",
		res.Completion*100, res.DeliveredPackets == res.GeneratedPackets)
	// Output:
	// completion 100%, all packets delivered: true
}

// Inject permanent faults and observe graceful degradation.
func ExampleRun_faults() {
	faults := roco.RandomFaults(roco.NonCriticalFaults, 2, 8, 8, 7)
	res := roco.Run(roco.Config{
		Router:          roco.RoCo,
		Algorithm:       roco.XY,
		Traffic:         roco.Uniform,
		InjectionRate:   0.15,
		WarmupPackets:   200,
		MeasurePackets:  2000,
		Seed:            1,
		Faults:          faults,
		InactivityLimit: 1500,
	})
	// Non-critical faults (RC, buffer) are fully recovered by RoCo's
	// hardware-recycling schemes.
	fmt.Printf("completion with 2 recoverable faults: %.2f\n", res.Completion)
	// Output:
	// completion with 2 recoverable faults: 1.00
}

// Regenerate the paper's Table 2 (non-blocking probabilities).
func ExampleTable2() {
	res := roco.Table2(100000, 1)
	fmt.Printf("generic %.3f, path-sensitive %.3f, roco %.3f\n",
		res.Generic, res.PathSensitive, res.RoCo)
	// Output:
	// generic 0.043, path-sensitive 0.125, roco 0.250
}

// Render the paper's Table 1 (RoCo VC configurations).
func ExampleTable1() {
	roco.Table1(os.Stdout)
	// Output:
	// Table 1 — RoCo VC buffer configuration per routing algorithm
	// | routing  | Row P1       | Row P2      | Col P1       | Col P2     |
	// | -------- | ------------ | ----------- | ------------ | ---------- |
	// | XY       | dx dx Injxy  | dx dx Injxy | dy txy Injyx | dy dy txy  |
	// | XY-YX    | dx tyx Injxy | dx dx tyx   | dy txy Injyx | dy dy txy  |
	// | Adaptive | dx tyx Injxy | dx dx tyx   | dy txy Injyx | dy txy txy |
}
