package roco

import (
	"fmt"
	"io"

	"github.com/rocosim/roco/internal/report"
)

// The studies below go beyond the paper's figures: they sweep structural
// parameters the paper holds fixed (mesh size, packet length) to show how
// the RoCo advantage scales. DESIGN.md lists them as extensions.

// ScalingPoint is one mesh size's result set.
type ScalingPoint struct {
	Width, Height int
	// Latency[k] is the average latency of router k at this size.
	Latency map[RouterKind]float64
	// Energy[k] is energy per packet.
	Energy map[RouterKind]float64
}

// ScalingStudy sweeps mesh sizes at a fixed injection rate, showing how
// the decoupled design's advantages evolve with network diameter.
type ScalingStudy struct {
	Rate      float64
	Algorithm Algorithm
	Points    []ScalingPoint
}

// RunScalingStudy measures the three routers across the given square mesh
// sizes at one injection rate.
func RunScalingStudy(opts Options, alg Algorithm, rate float64, sizes []int) ScalingStudy {
	study := ScalingStudy{Rate: rate, Algorithm: alg}
	var cfgs []Config
	for _, size := range sizes {
		for _, k := range RouterKinds {
			cfg := opts.baseConfig(k, alg, Uniform, rate)
			cfg.Width, cfg.Height = size, size
			cfg.MaxCycles = 40 * (opts.Warmup + opts.Measure)
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(opts, cfgs)
	i := 0
	for _, size := range sizes {
		pt := ScalingPoint{
			Width: size, Height: size,
			Latency: map[RouterKind]float64{},
			Energy:  map[RouterKind]float64{},
		}
		for _, k := range RouterKinds {
			pt.Latency[k] = results[i].AvgLatency
			pt.Energy[k] = results[i].EnergyPerPacketNJ
			i++
		}
		study.Points = append(study.Points, pt)
	}
	return study
}

// Render writes the study as a table.
func (s ScalingStudy) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Mesh-size scaling — %s routing, %.0f%% injection (latency cycles / energy nJ)", s.Algorithm, s.Rate*100),
		append([]string{"mesh"}, routerHeaders()...)...)
	for _, pt := range s.Points {
		cells := []string{fmt.Sprintf("%dx%d", pt.Width, pt.Height)}
		for _, k := range RouterKinds {
			cells = append(cells, fmt.Sprintf("%.1f / %.2f", pt.Latency[k], pt.Energy[k]))
		}
		tbl.AddRow(cells...)
	}
	tbl.Render(w)
}

// PacketSizePoint is one packet length's result set.
type PacketSizePoint struct {
	Flits   int
	Latency map[RouterKind]float64
}

// PacketSizeStudy sweeps packet lengths at a fixed flit rate: longer
// wormholes stress channel handover and HoL blocking differently.
type PacketSizeStudy struct {
	Rate      float64
	Algorithm Algorithm
	Points    []PacketSizePoint
}

// RunPacketSizeStudy measures the three routers across packet lengths.
func RunPacketSizeStudy(opts Options, alg Algorithm, rate float64, sizes []int) PacketSizeStudy {
	study := PacketSizeStudy{Rate: rate, Algorithm: alg}
	var cfgs []Config
	for _, flits := range sizes {
		for _, k := range RouterKinds {
			cfg := opts.baseConfig(k, alg, Uniform, rate)
			cfg.FlitsPerPacket = flits
			cfg.MaxCycles = 40 * (opts.Warmup + opts.Measure)
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(opts, cfgs)
	i := 0
	for _, flits := range sizes {
		pt := PacketSizePoint{Flits: flits, Latency: map[RouterKind]float64{}}
		for _, k := range RouterKinds {
			pt.Latency[k] = results[i].AvgLatency
			i++
		}
		study.Points = append(study.Points, pt)
	}
	return study
}

// Render writes the study as a table.
func (s PacketSizeStudy) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Packet-length scaling — %s routing, %.0f%% injection (latency cycles)", s.Algorithm, s.Rate*100),
		append([]string{"flits/packet"}, routerHeaders()...)...)
	for _, pt := range s.Points {
		cells := []string{fmt.Sprintf("%d", pt.Flits)}
		for _, k := range RouterKinds {
			cells = append(cells, fmt.Sprintf("%.1f", pt.Latency[k]))
		}
		tbl.AddRow(cells...)
	}
	tbl.Render(w)
}
