package roco

import (
	"strings"
	"testing"
)

func TestRunDetailedUtilization(t *testing.T) {
	cfg := quickConfig(RoCo, XY, Uniform, 0.25)
	d := RunDetailed(cfg)
	if d.Completion != 1 {
		t.Fatalf("completion %.3f", d.Completion)
	}
	util := d.LinkUtilization()
	if len(util) != 64 {
		t.Fatalf("got %d nodes", len(util))
	}
	// Under uniform XY the mesh center carries more traffic than the
	// corners — the defining spatial signature.
	center := (util[27] + util[28] + util[35] + util[36]) / 4
	corners := (util[0] + util[7] + util[56] + util[63]) / 4
	if center <= corners {
		t.Errorf("center utilization %.3f should exceed corners %.3f", center, corners)
	}
	for id, u := range util {
		if u < 0 || u > 1.0 {
			t.Errorf("node %d utilization %.3f out of [0,1]", id, u)
		}
	}
}

func TestRunDetailedMatchesRun(t *testing.T) {
	cfg := quickConfig(Generic, XY, Uniform, 0.2)
	a := Run(cfg)
	b := RunDetailed(cfg)
	if a.AvgLatency != b.AvgLatency || a.EnergyPerPacketNJ != b.EnergyPerPacketNJ {
		t.Error("RunDetailed must reproduce Run's measurements exactly")
	}
}

func TestRenderHeatmap(t *testing.T) {
	d := RunDetailed(quickConfig(RoCo, XY, Uniform, 0.2))
	var sb strings.Builder
	d.RenderHeatmap(&sb)
	out := sb.String()
	if !strings.Contains(out, "Link utilization") || len(strings.Split(out, "\n")) < 9 {
		t.Errorf("heatmap rendering wrong:\n%s", out)
	}
}

func TestDetailedDropsUnderFaults(t *testing.T) {
	cfg := quickConfig(Generic, XY, Uniform, 0.25)
	cfg.Faults = []Fault{{Node: 27, Component: Crossbar}}
	cfg.InactivityLimit = 1500
	d := RunDetailed(cfg)
	var dropped int64
	for _, n := range d.Nodes {
		dropped += n.Dropped
	}
	if dropped == 0 {
		t.Error("a dead node should force some discards")
	}
	if d.Nodes[27].Delivered != 0 {
		t.Error("a dead node must not deliver anything")
	}
}

func TestReplicate(t *testing.T) {
	cfg := quickConfig(RoCo, XY, Uniform, 0.2)
	cfg.MeasurePackets = 2000
	rep := Replicate(cfg, 4)
	if rep.Runs != 4 {
		t.Fatalf("runs = %d", rep.Runs)
	}
	if rep.AvgLatency.Mean <= 0 || rep.AvgLatency.HalfCI95 < 0 {
		t.Fatalf("bad latency interval %+v", rep.AvgLatency)
	}
	if rep.Completion.Mean != 1 {
		t.Errorf("completion mean %.3f", rep.Completion.Mean)
	}
	// Different seeds must differ (CI > 0 except in pathological cases).
	if rep.AvgLatency.HalfCI95 == 0 {
		t.Error("replicated runs were identical; seed plumbing broken")
	}
	if rep.AvgLatency.String() == "" {
		t.Error("interval string empty")
	}
}

func TestIntervalSingleRun(t *testing.T) {
	iv := interval([]float64{5})
	if iv.Mean != 5 || iv.HalfCI95 != 0 {
		t.Errorf("single-sample interval %+v", iv)
	}
}

func TestEnergyBreakdownTotals(t *testing.T) {
	d := RunDetailed(quickConfig(RoCo, XY, Uniform, 0.2))
	e := d.Energy
	total := e.BuffersNJ + e.CrossbarNJ + e.LinksNJ + e.ArbitrationNJ + e.RoutingNJ + e.EjectionNJ + e.LeakageNJ
	want := d.DynamicNJ + d.LeakageNJ
	if diff := total - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("breakdown total %.6f != result total %.6f", total, want)
	}
	if e.BuffersNJ <= 0 || e.CrossbarNJ <= 0 || e.LeakageNJ <= 0 {
		t.Errorf("breakdown groups should be positive: %+v", e)
	}
	// The RoCo structural signature: buffer energy dominates its small
	// crossbars by a wide margin.
	if e.CrossbarNJ >= e.BuffersNJ {
		t.Errorf("RoCo crossbar energy %.1f should be far below buffer energy %.1f", e.CrossbarNJ, e.BuffersNJ)
	}
}
