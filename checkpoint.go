// Checkpoint/resume: crash-safe snapshots of a running simulation with
// bit-identical continuation. A Sim wraps a live network; Checkpoint
// serializes its complete state behind a config fingerprint, Resume
// restores it under the same configuration (kernel-selection knobs are
// free to differ — snapshots are kernel-canonical), and RunCheckpointed
// drives a run with periodic atomic snapshot files plus a final flush on
// an external stop signal. A resumed run finishes with exactly the
// Result, fault log, and telemetry series of one that never stopped.
package roco

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/snapshot"
)

// ErrCorruptSnapshot reports a snapshot that failed structural or
// semantic validation: truncated at any byte, checksum mismatch, or
// state inconsistent with the restoring configuration. Torn writes from
// a killed process surface as this error, never as silently wrong state.
var ErrCorruptSnapshot = snapshot.ErrCorrupt

// ErrSnapshotVersion reports a structurally valid snapshot written by an
// incompatible format version.
var ErrSnapshotVersion = snapshot.ErrVersion

// ErrNoSnapshot reports that a checkpoint directory holds no valid
// snapshot to resume from.
var ErrNoSnapshot = snapshot.ErrNoSnapshot

// ErrConfigMismatch reports a resume attempted under a configuration
// that differs from the one that wrote the snapshot (kernel-selection
// fields excepted).
var ErrConfigMismatch = errors.New("roco: configuration does not match snapshot")

// snapshotPattern names checkpoint files; the zero-padded cycle number
// makes lexical order temporal order, which Latest relies on.
const snapshotPattern = "ckpt-*.rocosnap"

// Sim is a simulation instance that can be checkpointed. Unlike Run,
// which owns its network for the whole call, a Sim exposes the run's
// lifecycle: step it to completion with Run or RunCheckpointed, snapshot
// it at any cycle boundary with Checkpoint.
type Sim struct {
	cfg     Config
	net     *network.Network
	profile power.Profile
	// sweptDir remembers the checkpoint directory already swept of stale
	// temp files, so CheckpointFile sweeps once per directory, not once
	// per snapshot.
	sweptDir string
}

// NewSim builds a checkpoint-capable simulation. Panics on an invalid
// configuration, like Run.
func NewSim(cfg Config) *Sim {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("roco: invalid config: %v", err))
	}
	net, profile := buildNetwork(cfg, 0)
	return &Sim{cfg: cfg, net: net, profile: profile}
}

// Cycle returns the current simulation time.
func (s *Sim) Cycle() int64 { return s.net.Cycle() }

// Run executes the simulation to termination and returns the
// measurements. A resumed Sim continues from its snapshot and produces
// a Result bit-identical to an uninterrupted run.
func (s *Sim) Run() Result {
	return summarize(s.cfg, s.net.Run(), s.profile)
}

// Checkpoint writes one snapshot frame — config fingerprint plus the
// network's complete state — to w. It must be called at a cycle
// boundary: before the first Run, or from a RunCheckpointed hook, or
// after Run returned.
func (s *Sim) Checkpoint(w io.Writer) error {
	e := snapshot.NewEncoder()
	e.U64(fingerprint(s.cfg))
	s.net.SaveState(e)
	_, err := e.WriteTo(w)
	return err
}

// CheckpointFile writes a snapshot crash-safely into dir as
// ckpt-<cycle>.rocosnap: temp file, fsync, atomic rename, directory
// sync. A crash mid-write leaves the previous snapshot intact and the
// torn temp file ignored by ResumeLatest. The first write into a
// directory sweeps stale temp files left by previously killed writers
// (the Sim owns its checkpoint directory for the duration of the run).
func (s *Sim) CheckpointFile(dir string) error {
	if s.sweptDir != dir {
		if _, err := snapshot.SweepTemp(dir); err != nil {
			return err
		}
		s.sweptDir = dir
	}
	e := snapshot.NewEncoder()
	e.U64(fingerprint(s.cfg))
	s.net.SaveState(e)
	name := filepath.Join(dir, fmt.Sprintf("ckpt-%012d.rocosnap", s.net.Cycle()))
	return snapshot.WriteFileAtomic(name, e)
}

// CheckpointOptions parameterizes RunCheckpointed.
type CheckpointOptions struct {
	// Every writes a snapshot into Dir every Every cycles (0 disables
	// periodic snapshots).
	Every int64
	// Dir receives the snapshot files. Required when Every > 0 or Stop
	// is set; optional with Context/CycleBudget alone (the run is then
	// cancellable but leaves no snapshot behind).
	Dir string
	// Stop, when it becomes receivable (or is closed), stops the run at
	// the next cycle boundary after flushing a final snapshot — the hook
	// signal handlers use to make an interrupt resumable.
	Stop <-chan struct{}
	// Context, when non-nil, makes the run cancellable: at the first
	// cycle boundary after the context is done the run flushes a final
	// snapshot (when Dir is set) and returns interrupted. Cancellation
	// and deadline expiry behave identically; the caller disambiguates
	// through context.Cause. A nil Context is context.Background.
	Context context.Context
	// CycleBudget stops the run — interrupted, final snapshot flushed —
	// once the simulation clock reaches this cycle (0 = unlimited). The
	// budget is absolute simulated time, so a resumed run granted a new
	// slice passes a larger value to continue.
	CycleBudget int64
	// Progress, when set, is invoked after every snapshot written
	// (periodic and final-flush alike) with the cycle just persisted. It
	// runs on the simulation goroutine; keep it cheap. Never called when
	// Dir is empty.
	Progress func(cycle int64)
}

// RunCheckpointed executes the simulation with periodic crash-safe
// snapshots. It returns the Result (partial when interrupted), whether
// something ended the run early (Stop, Context, or CycleBudget), and the
// first snapshot-write error if any (a write failure on a final flush
// also ends the run; a periodic write failure stops the run too, since a
// run that can no longer checkpoint has lost the property the caller
// asked for).
func (s *Sim) RunCheckpointed(opts CheckpointOptions) (Result, bool, error) {
	if (opts.Every > 0 || opts.Stop != nil) && opts.Dir == "" {
		return Result{}, false, errors.New("roco: CheckpointOptions.Dir is required")
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return Result{}, false, err
		}
	}
	var done <-chan struct{}
	if opts.Context != nil {
		done = opts.Context.Done()
	}
	var werr error
	res, interrupted := s.net.RunHooked(func() bool {
		stop := false
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				stop = true
			default:
			}
		}
		if !stop && done != nil {
			select {
			case <-done:
				stop = true
			default:
			}
		}
		if !stop && opts.CycleBudget > 0 && s.net.Cycle() >= opts.CycleBudget {
			stop = true
		}
		if opts.Dir != "" && (stop || (opts.Every > 0 && s.net.Cycle()%opts.Every == 0)) {
			if err := s.CheckpointFile(opts.Dir); err != nil {
				if werr == nil {
					werr = err
				}
				return true
			}
			if opts.Progress != nil {
				opts.Progress(s.net.Cycle())
			}
		}
		return stop
	})
	return summarize(s.cfg, res, s.profile), interrupted, werr
}

// Resume restores a simulation from one snapshot frame. cfg must be the
// configuration that wrote the snapshot — checked by fingerprint before
// any state is decoded — except for ReferenceKernel, SoAKernel, Shards
// and Workers, which select execution strategy, not simulation
// semantics.
// Returns ErrConfigMismatch, ErrCorruptSnapshot or ErrSnapshotVersion
// as appropriate.
func Resume(r io.Reader, cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	got := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if want := fingerprint(cfg); got != want {
		return nil, fmt.Errorf("%w: snapshot fingerprint %016x, configuration %016x", ErrConfigMismatch, got, want)
	}
	net, profile := buildNetwork(cfg, 0)
	net.LoadState(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, net: net, profile: profile}, nil
}

// ResumeLatest resumes from the newest valid snapshot in dir, skipping
// torn or truncated files (each candidate is fully checksum-verified
// before it is chosen). Stale temp files from previously killed writers
// are swept first — resume startup is the one moment the directory is
// provably quiescent. Returns ErrNoSnapshot when none qualifies.
func ResumeLatest(dir string, cfg Config) (*Sim, error) {
	if _, err := snapshot.SweepTemp(dir); err != nil {
		return nil, err
	}
	name, err := snapshot.Latest(dir, snapshotPattern)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sim, err := Resume(f, cfg)
	if err != nil {
		return nil, err
	}
	sim.sweptDir = dir
	return sim, nil
}

// fingerprint hashes the normalized configuration, excluding the fields
// that pick an execution strategy: snapshots are kernel-canonical, so a
// run checkpointed under the reference kernel legitimately resumes
// sharded (and vice versa).
func fingerprint(cfg Config) uint64 {
	norm := cfg
	norm.ReferenceKernel = false
	norm.SoAKernel = false
	norm.Shards = 0
	norm.Workers = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", norm)
	return h.Sum64()
}
