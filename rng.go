package roco

import "github.com/rocosim/roco/internal/stats"

// newFaultRNG seeds the RNG used for random fault-set generation; split
// off the user seed so fault placement and traffic randomness are
// independent streams.
func newFaultRNG(seed uint64) *stats.RNG {
	return stats.NewRNG(seed ^ 0xfa171f5e7)
}
