package roco

import (
	"testing"
)

func torusConfig(rate float64) Config {
	cfg := quickConfig(Generic, XY, Uniform, rate)
	cfg.Torus = true
	return cfg
}

func TestTorusDrains(t *testing.T) {
	res := Run(torusConfig(0.15))
	if res.Completion != 1 {
		t.Fatalf("completion %.3f", res.Completion)
	}
	if res.AvgLatency <= 0 || res.AvgLatency > 40 {
		t.Fatalf("implausible torus latency %.2f", res.AvgLatency)
	}
}

func TestTorusHighLoadNoDeadlock(t *testing.T) {
	// The dateline discipline is what makes the torus rings acyclic; a
	// heavy sustained load is where a missing class switch would wedge.
	cfg := torusConfig(0.40)
	cfg.MeasurePackets = 8000
	res := Run(cfg)
	if res.Completion < 0.999 {
		t.Fatalf("completion %.4f at 40%% load; dateline deadlock suspected", res.Completion)
	}
}

func TestTorusShorterPathsThanMesh(t *testing.T) {
	// Wrap-around links halve the average distance; the torus must beat
	// the mesh on latency at identical load.
	mesh := Run(quickConfig(Generic, XY, Uniform, 0.15))
	tor := Run(torusConfig(0.15))
	if tor.AvgLatency >= mesh.AvgLatency {
		t.Errorf("torus latency %.2f should beat mesh %.2f", tor.AvgLatency, mesh.AvgLatency)
	}
}

func TestTorusTransposeAndLongPackets(t *testing.T) {
	cfg := torusConfig(0.10)
	cfg.Traffic = Transpose
	if res := Run(cfg); res.Completion != 1 {
		t.Errorf("transpose on torus lost traffic: %.3f", res.Completion)
	}
	cfg = torusConfig(0.10)
	cfg.FlitsPerPacket = 8
	if res := Run(cfg); res.Completion != 1 {
		t.Errorf("8-flit packets on torus lost traffic: %.3f", res.Completion)
	}
}

func TestTorusRejectsUnsupportedCombos(t *testing.T) {
	bad := []Config{
		{Torus: true, Router: RoCo, Algorithm: XY, InjectionRate: 0.1},
		{Torus: true, Router: Generic, Algorithm: Adaptive, InjectionRate: 0.1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestTorusOddDimensions(t *testing.T) {
	cfg := torusConfig(0.12)
	cfg.Width, cfg.Height = 5, 7
	if res := Run(cfg); res.Completion != 1 {
		t.Errorf("5x7 torus lost traffic: %.3f", res.Completion)
	}
}
