package roco

import "testing"

// TestSoakReliableFaultStorm is the public-API chaos soak: a long run
// under a Poisson storm of runtime faults with the reliable-delivery
// protocol on and the conservation auditor running tightly. Every packet
// whose destination stays reachable must be delivered exactly once —
// residual loss equals the packets terminally abandoned, no duplicates, no
// wedge. Skipped under -short.
func TestSoakReliableFaultStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := Config{
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate: 0.35,
		WarmupPackets: 2000, MeasurePackets: 50000,
		Seed:              7,
		AuditEvery:        64,
		InactivityLimit:   4000,
		Reliable:          true,
		RetransmitTimeout: 64,
	}
	cfg.FaultSchedule = append(
		PoissonFaultSchedule(NonCriticalFaults, 100, 8000, 8, 8, 11),
		PoissonFaultSchedule(CriticalFaults, 2500, 8000, 8, 8, 13)...)
	res := Run(cfg)

	if res.Watchdog != "" {
		t.Fatalf("storm run wedged:\n%s", res.Watchdog)
	}
	if res.Saturated {
		t.Fatal("storm run hit MaxCycles")
	}
	if len(res.FaultEvents) < 10 {
		t.Fatalf("storm installed only %d faults", len(res.FaultEvents))
	}
	if res.BrokenPackets == 0 || res.Retransmissions == 0 || res.RecoveredPackets == 0 {
		t.Fatalf("scenario vacuous: broken=%d retransmitted=%d recovered=%d",
			res.BrokenPackets, res.Retransmissions, res.RecoveredPackets)
	}
	if res.DuplicatePackets != 0 {
		t.Errorf("%d duplicate deliveries", res.DuplicatePackets)
	}
	if res.ResidualLoss != int64(len(res.GiveUps)) {
		t.Errorf("residual loss %d != %d give-ups: reachable packets lost",
			res.ResidualLoss, len(res.GiveUps))
	}
	for _, g := range res.GiveUps {
		if g.Reason != "unreachable" {
			t.Errorf("give-up %+v not proven unreachable", g)
		}
	}
	t.Logf("storm: %d faults, %d broken, %d retransmitted, %d recovered, %d given up, completion %.4f",
		len(res.FaultEvents), res.BrokenPackets, res.Retransmissions, res.RecoveredPackets,
		len(res.GiveUps), res.Completion)
}

// TestSoakPaperScale pushes one configuration toward the paper's run
// length (200k measured packets here versus the paper's 1M) as a
// statistical-stability and endurance check. Skipped under -short.
func TestSoakPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	long := Run(Config{
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate: 0.25,
		WarmupPackets: 10000, MeasurePackets: 200000,
		Seed: 1,
	})
	if long.Completion != 1 {
		t.Fatalf("soak run lost traffic: %.4f", long.Completion)
	}
	short := Run(Config{
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate: 0.25,
		WarmupPackets: 2000, MeasurePackets: 30000,
		Seed: 1,
	})
	// The default harness scale must agree with the long run within a few
	// percent — the basis for shipping scaled-down EXPERIMENTS numbers.
	ratio := short.AvgLatency / long.AvgLatency
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("default-scale latency %.2f deviates from soak-scale %.2f by more than 10%%",
			short.AvgLatency, long.AvgLatency)
	}
	t.Logf("soak: long=%.3f cyc short=%.3f cyc (ratio %.3f)", long.AvgLatency, short.AvgLatency, ratio)
}
