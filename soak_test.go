package roco

import "testing"

// TestSoakPaperScale pushes one configuration toward the paper's run
// length (200k measured packets here versus the paper's 1M) as a
// statistical-stability and endurance check. Skipped under -short.
func TestSoakPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	long := Run(Config{
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate: 0.25,
		WarmupPackets: 10000, MeasurePackets: 200000,
		Seed: 1,
	})
	if long.Completion != 1 {
		t.Fatalf("soak run lost traffic: %.4f", long.Completion)
	}
	short := Run(Config{
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate: 0.25,
		WarmupPackets: 2000, MeasurePackets: 30000,
		Seed: 1,
	})
	// The default harness scale must agree with the long run within a few
	// percent — the basis for shipping scaled-down EXPERIMENTS numbers.
	ratio := short.AvgLatency / long.AvgLatency
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("default-scale latency %.2f deviates from soak-scale %.2f by more than 10%%",
			short.AvgLatency, long.AvgLatency)
	}
	t.Logf("soak: long=%.3f cyc short=%.3f cyc (ratio %.3f)", long.AvgLatency, short.AvgLatency, ratio)
}
