// Package roco is a cycle-accurate reproduction of the RoCo (Row-Column)
// Decoupled Router from Kim et al., "A Gracefully Degrading and
// Energy-Efficient Modular Router Architecture for On-Chip Networks"
// (ISCA 2006), together with the paper's two baselines — a generic
// two-stage virtual-channel router and the Path-Sensitive router — and the
// full evaluation harness: flit-level mesh simulation, traffic generators,
// a structural energy model, permanent-fault injection with the paper's
// hardware-recycling recovery schemes, and drivers that regenerate every
// table and figure of the paper's evaluation section.
//
// The quickest way in:
//
//	res := roco.Run(roco.Config{
//		Router:        roco.RoCo,
//		Algorithm:     roco.XY,
//		Traffic:       roco.Uniform,
//		InjectionRate: 0.25,
//	})
//	fmt.Printf("avg latency %.1f cycles, %.2f nJ/packet\n",
//		res.AvgLatency, res.EnergyPerPacketNJ)
package roco

import (
	"fmt"

	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/router/generic"
	"github.com/rocosim/roco/internal/router/pathsensitive"
	"github.com/rocosim/roco/internal/router/pdr"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// RouterKind selects a router microarchitecture.
type RouterKind int

const (
	// Generic is the conventional 5-port two-stage VC router (baseline 1).
	Generic RouterKind = iota
	// PathSensitive is the DAC'05 quadrant-path-set router (baseline 2).
	PathSensitive
	// RoCo is the paper's Row-Column decoupled router.
	RoCo
	// PDR is the Partitioned Dimension-Order Router of the paper's related
	// work: two intertwined 3x3 crossbars with concatenated switch
	// traversals on dimension changes. Extension comparator; XY routing
	// only.
	PDR
)

// RouterKinds lists the architectures in the paper's comparison order.
var RouterKinds = [3]RouterKind{Generic, PathSensitive, RoCo}

// AllRouterKinds additionally includes the PDR extension comparator.
var AllRouterKinds = [4]RouterKind{Generic, PathSensitive, RoCo, PDR}

// String names the router as the paper's figures do.
func (k RouterKind) String() string {
	switch k {
	case Generic:
		return "Generic VC Router"
	case PathSensitive:
		return "Path-Sensitive"
	case RoCo:
		return "RoCo"
	case PDR:
		return "PDR"
	default:
		return "?"
	}
}

// Algorithm selects the routing discipline.
type Algorithm int

const (
	// XY is deterministic dimension-order routing.
	XY Algorithm = iota
	// XYYX is oblivious XY-YX routing (per-packet coin flip).
	XYYX
	// Adaptive is minimal adaptive routing (odd-even turn model).
	Adaptive
)

// Algorithms lists the three disciplines in evaluation order.
var Algorithms = [3]Algorithm{XY, XYYX, Adaptive}

// String names the algorithm.
func (a Algorithm) String() string { return a.internal().String() }

func (a Algorithm) internal() routing.Algorithm {
	switch a {
	case XY:
		return routing.XY
	case XYYX:
		return routing.XYYX
	case Adaptive:
		return routing.Adaptive
	default:
		panic(fmt.Sprintf("roco: unknown algorithm %d", int(a)))
	}
}

// TrafficPattern selects the workload.
type TrafficPattern int

const (
	// Uniform random destinations.
	Uniform TrafficPattern = iota
	// Transpose sends (x,y) to (y,x).
	Transpose
	// SelfSimilar models web traffic with Pareto ON/OFF sources.
	SelfSimilar
	// MPEG2 models GoP-structured video streams.
	MPEG2
	// BitComplement sends node b to node ^b (extension).
	BitComplement
	// Hotspot skews uniform traffic toward one node (extension).
	Hotspot
)

// TrafficPatterns lists the paper's three reported workloads.
var TrafficPatterns = [3]TrafficPattern{Uniform, SelfSimilar, Transpose}

// String names the pattern.
func (p TrafficPattern) String() string { return p.internal().String() }

func (p TrafficPattern) internal() traffic.Pattern {
	switch p {
	case Uniform:
		return traffic.Uniform
	case Transpose:
		return traffic.Transpose
	case SelfSimilar:
		return traffic.SelfSimilar
	case MPEG2:
		return traffic.MPEG2
	case BitComplement:
		return traffic.BitComplement
	case Hotspot:
		return traffic.Hotspot
	default:
		panic(fmt.Sprintf("roco: unknown traffic pattern %d", int(p)))
	}
}

// Component names a router component for fault injection (paper Table 3).
type Component int

const (
	// RC is the routing-computation unit.
	RC Component = iota
	// Buffer is one VC buffer.
	Buffer
	// VA is the virtual-channel allocator.
	VA
	// SA is the switch allocator.
	SA
	// Crossbar is the switch fabric.
	Crossbar
	// MuxDemux covers the input decoders and output multiplexers.
	MuxDemux
	// D2DInterface is a die-to-die interface failure on a multi-chip
	// topology (extension): every boundary link of one chiplet-to-chiplet
	// interface is severed in both directions in a single event. Fault.Node
	// names any node of the afflicted chiplet and Fault.Side selects which
	// of its interfaces dies. Requires a chiplet topology (Config.ChipsX et
	// al.); not part of the paper's Table 3 populations.
	D2DInterface
)

// String names the component.
func (c Component) String() string { return fault.Component(c).String() }

// Side names one cardinal side of a node or chiplet. It selects the
// afflicted interface of a D2DInterface fault.
type Side int

const (
	SideNorth Side = iota
	SideEast
	SideSouth
	SideWest
)

// String names the side.
func (s Side) String() string { return topology.Direction(s).String() }

// Fault is one permanent intra-router failure.
type Fault struct {
	// Node is the afflicted router.
	Node int
	// Component is the failed unit.
	Component Component
	// Module localizes the fault inside a RoCo router: 0 = row module,
	// 1 = column module. Baseline routers ignore it.
	Module int
	// VC localizes a Buffer fault to one channel.
	VC int
	// Side selects the interface of a D2DInterface fault: the one between
	// Node's chiplet and the adjacent chiplet in this direction. Ignored by
	// every other component.
	Side Side
}

func (f Fault) internal() fault.Fault {
	return fault.Fault{
		Node:      f.Node,
		Component: fault.Component(f.Component),
		Module:    fault.Module(f.Module % 2),
		VC:        f.VC,
		Port:      topology.Direction(f.Side),
	}
}

// FaultClass selects a fault population for random injection.
type FaultClass int

const (
	// CriticalFaults draws router-centric / critical-pathway faults
	// (VA, SA, crossbar, MUX/DEMUX) — the population of Figure 11.
	CriticalFaults FaultClass = iota
	// NonCriticalFaults draws message-centric, recoverable faults
	// (RC, buffer) — the population of Figure 12.
	NonCriticalFaults
)

// String names the class.
func (c FaultClass) String() string { return fault.Class(c).String() }

// D2DClass selects the signaling class of die-to-die boundary links on a
// multi-chip topology. The class sets the boundary link's default transit
// latency, serialization gap, and per-flit transfer energy; Config's
// D2DLatency/D2DGap override the timing.
type D2DClass int

const (
	// D2DParallel models a wide parallel interface over an interposer or
	// bridge: 2-cycle transit, full flit bandwidth (gap 1), ~5x the on-die
	// per-flit link energy.
	D2DParallel D2DClass = iota
	// D2DSerial models a narrow serialized off-package lane: 4-cycle
	// transit, one flit per 4 cycles (gap 4), ~17x the on-die per-flit
	// link energy.
	D2DSerial
)

// String names the class.
func (c D2DClass) String() string {
	if c == D2DSerial {
		return "serial"
	}
	return "parallel"
}

// params returns the class's default boundary-link latency and gap in
// cycles plus the per-flit transfer energy in nJ.
func (c D2DClass) params() (latency, gap int, xferNJ float64) {
	if c == D2DSerial {
		return 4, 4, power.D2DSerialXfer()
	}
	return 2, 1, power.D2DParallelXfer()
}

// RandomFaults draws count random faults of the given class over a
// width x height mesh, reproducibly from seed.
func RandomFaults(class FaultClass, count, width, height int, seed uint64) []Fault {
	rng := newFaultRNG(seed)
	set := fault.RandomSet(fault.Class(class), count, width*height, core.NumVCs, rng)
	out := make([]Fault, len(set))
	for i, f := range set {
		out[i] = publicFault(f)
	}
	return out
}

// publicFault converts an internal fault to the public representation.
func publicFault(f fault.Fault) Fault {
	return Fault{
		Node: f.Node, Component: Component(f.Component),
		Module: int(f.Module), VC: f.VC, Side: Side(f.Port),
	}
}

// TimedFault is one runtime fault event: the fault strikes at the start of
// Cycle, against a live network.
type TimedFault struct {
	Cycle int64
	Fault Fault
}

// PoissonFaultSchedule draws a reproducible runtime fault schedule over a
// width x height mesh: fault arrivals form a Poisson process with the
// given mean cycles between faults (an MTTF), truncated at horizon, each
// striking a distinct node with a component drawn from the class
// population. Use it as Config.FaultSchedule.
func PoissonFaultSchedule(class FaultClass, meanCyclesBetween float64, horizon int64, width, height int, seed uint64) []TimedFault {
	rng := newFaultRNG(seed)
	sched := fault.PoissonSchedule(fault.Class(class), meanCyclesBetween, horizon, width*height, core.NumVCs, rng)
	out := make([]TimedFault, 0, sched.Len())
	for _, ev := range sched.Events() {
		out = append(out, TimedFault{Cycle: ev.Cycle, Fault: publicFault(ev.Fault)})
	}
	return out
}

// Config parameterizes one simulation run. The zero value plus a router,
// algorithm, traffic pattern and injection rate reproduces the paper's
// setup: an 8x8 mesh with 4-flit packets of 128-bit flits.
type Config struct {
	// Width and Height set the grid size (default 8x8).
	Width, Height int
	// Torus closes the grid into a 2D torus with wrap-around links
	// (extension; generic router with XY routing only — the RoCo channel
	// classes of Table 1 have no dateline classes).
	Torus bool
	// ChipsX, ChipsY, ChipW and ChipH select a hierarchical multi-chip
	// (chiplet) topology (extension): a ChipsX x ChipsY grid of chiplets,
	// each a ChipW x ChipH node grid, stitched into one flat global mesh
	// (or, with Torus, torus) by die-to-die boundary links. Node ids and
	// routing are those of the equivalent flat grid — a 1x1-chiplet
	// configuration is bit-identical to the flat topology — but boundary
	// links carry the D2DClass latency, serialization gap, and per-flit
	// energy. Set all four or none; Width and Height must then be left
	// zero (derived as ChipsX*ChipW x ChipsY*ChipH) or match exactly.
	ChipsX, ChipsY, ChipW, ChipH int
	// D2DClass selects the die-to-die signaling class of the boundary
	// links (default D2DParallel). Ignored on single-die topologies.
	D2DClass D2DClass
	// D2DLatency and D2DGap override the class defaults: boundary-link
	// transit time in cycles, and the serialization interval (at most one
	// flit enters a boundary link per D2DGap cycles). 0 keeps the class
	// default; both are ignored on single-die topologies.
	D2DLatency, D2DGap int
	// Router selects the microarchitecture under test.
	Router RouterKind
	// Algorithm selects the routing discipline.
	Algorithm Algorithm
	// Traffic selects the workload.
	Traffic TrafficPattern
	// InjectionRate is the offered load in flits per node per cycle.
	InjectionRate float64
	// FlitsPerPacket defaults to the paper's 4 (128-bit flits).
	FlitsPerPacket int
	// WarmupPackets and MeasurePackets size the run. The paper uses 20k +
	// 1M; the defaults (2k + 30k) run the whole suite in minutes while
	// preserving steady-state shape. Raise them for paper-scale runs.
	WarmupPackets, MeasurePackets int64
	// Seed drives all randomness.
	Seed uint64
	// Faults are installed before the first cycle.
	Faults []Fault
	// FaultSchedule lists runtime fault events, installed mid-run against
	// the live network: the afflicted router dooms resident traffic, the
	// neighbor handshake is re-propagated, and upstream routers reroute or
	// drop. Build one by hand or with PoissonFaultSchedule.
	FaultSchedule []TimedFault
	// AuditEvery runs the flit-conservation auditor every AuditEvery
	// cycles during the run (0 audits only at termination, which always
	// happens). A violation panics: it is a simulator bug, never a legal
	// outcome.
	AuditEvery int64
	// MaxCycles hard-caps the run (0 = default).
	MaxCycles int64
	// InactivityLimit terminates a faulty run after this many delivery-free
	// cycles once generation has finished (0 = default).
	InactivityLimit int64
	// HotspotNode and HotspotFraction configure the Hotspot pattern.
	HotspotNode     int
	HotspotFraction float64
	// Reliable enables the end-to-end reliable-delivery protocol: every
	// packet carries a per-source sequence number, sources retransmit
	// copies whose delivery provably failed (with exponential backoff and a
	// retry cap), the ejection port suppresses duplicates, and packets
	// whose destination the live fault map proves unreachable are given up
	// with a structured reason. With it on, every packet with a reachable
	// destination is delivered exactly once even under runtime faults.
	Reliable bool
	// RetransmitTimeout is the base retransmission timeout in cycles
	// (0 = default 256); each retransmission doubles it up to
	// RetransmitMaxTimeout (0 = default 4096, always clamped to half the
	// inactivity limit). RetransmitMaxRetries caps copies per packet
	// (0 = default 16). All ignored unless Reliable.
	RetransmitTimeout    int64
	RetransmitMaxTimeout int64
	RetransmitMaxRetries int
	// DisableMirrorSA (RoCo only) replaces the Mirroring-Effect switch
	// allocator with a plain separable output stage — the ablation that
	// quantifies what the mirror buys. Ignored by the baselines.
	DisableMirrorSA bool
	// ReferenceKernel selects the ungated simulation loop (every router
	// ticked and every pipe advanced every cycle, flits freshly
	// allocated) instead of the default activity-gated kernel. Results
	// are bit-identical either way; the reference exists as the
	// determinism oracle and benchmark baseline.
	ReferenceKernel bool
	// SoAKernel selects the struct-of-arrays variant of the activity-gated
	// kernel: per-channel hot state lives in packed parallel arrays, the
	// active/dormant and broken sets are uint64 bitsets swept word-wise,
	// and channel buffers are slab-allocated with lazy backing arrays (the
	// big-mesh memory diet). Results are bit-identical to the default and
	// reference kernels; this is purely a speed/footprint knob. Ignored
	// when ReferenceKernel is set. See DESIGN.md "SoA kernel".
	SoAKernel bool
	// Shards splits the single run across CPU cores: the mesh is
	// partitioned into Shards contiguous node ranges that tick in
	// parallel inside each phase of the kernel's color schedule (see
	// DESIGN.md "Parallel kernel"). Results are bit-identical for every
	// value — Shards=N matches Shards=1 exactly — so this is purely a
	// speed knob for large meshes. 0 or 1 keeps the sequential kernel;
	// values above the node count are clamped; ignored (sequential) with
	// ReferenceKernel.
	Shards int
	// Workers caps the goroutines executing shard ticks (0 = one per
	// shard up to GOMAXPROCS, 1 = run shards inline). It never affects
	// results, only wall-clock time; it is clamped to Shards.
	Workers int
	// TelemetryEvery enables the epoch time-series collector: every
	// TelemetryEvery cycles the per-router counters (link/crossbar
	// utilization, VC occupancy by class, SA grants and conflicts,
	// early ejections, credit stalls, retransmissions, per-module
	// energy) are snapshotted into Result.Telemetry. 0 disables it (the
	// default; disabled telemetry is free). Enabling it never changes
	// any other Result field, under any kernel.
	TelemetryEvery int64
	// TelemetryCapacity bounds the telemetry epoch ring (0 = default
	// 512). When exceeded, the oldest epochs are evicted; cumulative
	// totals survive eviction.
	TelemetryCapacity int
}

// multichip reports whether any chiplet-grid field is set (Validate
// rejects partially-set grids, so post-validation this means all four).
func (c Config) multichip() bool {
	return c.ChipsX != 0 || c.ChipsY != 0 || c.ChipW != 0 || c.ChipH != 0
}

// d2dTiming resolves the boundary-link latency and gap: the D2DClass
// defaults overridden by any explicit D2DLatency/D2DGap.
func (c Config) d2dTiming() (latency, gap int) {
	latency, gap, _ = c.D2DClass.params()
	if c.D2DLatency > 0 {
		latency = c.D2DLatency
	}
	if c.D2DGap > 0 {
		gap = c.D2DGap
	}
	return latency, gap
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.multichip() && c.Width == 0 && c.Height == 0 &&
		c.ChipsX > 0 && c.ChipsY > 0 && c.ChipW > 0 && c.ChipH > 0 {
		c.Width, c.Height = c.ChipsX*c.ChipW, c.ChipsY*c.ChipH
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Height == 0 {
		c.Height = 8
	}
	if c.FlitsPerPacket == 0 {
		c.FlitsPerPacket = 4
	}
	if c.WarmupPackets == 0 {
		c.WarmupPackets = 2000
	}
	if c.MeasurePackets == 0 {
		c.MeasurePackets = 30000
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	// AvgLatency is the mean end-to-end packet latency in cycles
	// (creation at the source PE to tail delivery).
	AvgLatency float64
	// P95Latency, P99Latency and MaxLatency describe the latency tail.
	P95Latency, P99Latency, MaxLatency float64
	// Completion is the packet completion probability
	// (delivered / generated during the measurement window).
	Completion float64
	// DeliveredPackets and GeneratedPackets are the raw counts behind it.
	DeliveredPackets, GeneratedPackets int64
	// Throughput is the accepted traffic in flits/node/cycle.
	Throughput float64
	// EnergyPerPacketNJ is total network energy over the measurement
	// window divided by delivered packets; DynamicNJ and LeakageNJ are the
	// window totals.
	EnergyPerPacketNJ    float64
	DynamicNJ, LeakageNJ float64
	// D2DFlits counts flits that crossed die-to-die boundary links during
	// the measurement window; D2DEnergyNJ is the extra dynamic energy those
	// crossings cost beyond on-die link traversal (already included in
	// DynamicNJ). Both are zero on single-die topologies.
	D2DFlits    int64
	D2DEnergyNJ float64
	// PEF is the paper's composite Performance-Energy-Fault-tolerance
	// metric: (AvgLatency x EnergyPerPacketNJ) / Completion.
	PEF float64
	// SourceQueueDelay is the mean time a packet's tail spent waiting at
	// the source PE before entering the network (source queuing is part of
	// AvgLatency).
	SourceQueueDelay float64
	// ContentionRow, ContentionCol and Contention are the switch-conflict
	// probabilities of Figure 3 (failed SA requests / SA requests).
	ContentionRow, ContentionCol, Contention float64
	// Cycles is the total simulated time; Saturated reports that the run
	// hit MaxCycles before draining.
	Cycles    int64
	Saturated bool
	// DroppedFlits counts flits discarded by fault handling (static and
	// runtime); BrokenPackets the packets that lost at least one flit.
	DroppedFlits, BrokenPackets int64
	// DroppedUnroutable, DroppedInFlight and DroppedDeadNode split
	// DroppedFlits by cause: discarded at the source because no route
	// existed, lost from a wormhole broken mid-flight, and drained from a
	// fully dead router.
	DroppedUnroutable, DroppedInFlight, DroppedDeadNode int64
	// Retransmissions, RecoveredPackets, DuplicatePackets, GiveUps and
	// ResidualLoss describe the reliable-delivery protocol (all zero unless
	// Config.Reliable): copies launched beyond first attempts, packets
	// whose accepted delivery was a retransmitted copy, duplicate tails
	// suppressed at ejection, packets terminally abandoned, and logical
	// packets not delivered by the end of the run (always equal to
	// len(GiveUps) when the run drains).
	Retransmissions, RecoveredPackets, DuplicatePackets int64
	GiveUps                                             []GiveUp
	ResidualLoss                                        int64
	// FaultEvents describes each runtime fault installed and the
	// degradation measured around it.
	FaultEvents []FaultEvent
	// Watchdog is the livelock/starvation diagnostic, non-empty only when
	// the run terminated through the inactivity rule with traffic wedged
	// in the network.
	Watchdog string
	// Telemetry is the epoch time series (nil unless
	// Config.TelemetryEvery was set); see the Telemetry type.
	Telemetry *Telemetry `json:",omitempty"`
}

// GiveUp is one logical packet the reliable-delivery protocol terminally
// abandoned.
type GiveUp struct {
	// Src and Dst identify the flow; Attempts counts copies tried and
	// Cycle when the decision fell.
	Src, Dst int
	Attempts int
	Cycle    int64
	// Reason is "unreachable" (the fault map proves no route survives) or
	// "retries-exhausted" (the retry cap was hit first).
	Reason string
}

// FaultEvent is one runtime fault with its measured impact: the delivery
// rate before the fault, the post-fault floor, and how long the network
// took to recover to the recovery threshold (70% of the pre-fault rate).
type FaultEvent struct {
	Cycle int64
	Fault Fault
	// PreRate, FloorRate and PostRate are delivery rates in flits/cycle.
	PreRate, FloorRate, PostRate float64
	// PreGoodput, FloorGoodput and PostGoodput are the same measurements
	// on the goodput series — deliveries excluding protocol duplicates —
	// taken at the same positions. They equal their raw counterparts
	// unless Config.Reliable.
	PreGoodput, FloorGoodput, PostGoodput float64
	// RecoveryCycles is the fault-to-recovery distance; Recovered is false
	// when the network never returned to the threshold.
	RecoveryCycles int64
	Recovered      bool
	// DroppedUnroutable, DroppedInFlight and DroppedDeadNode attribute
	// drops to this fault (counted from its installation until the next).
	DroppedUnroutable, DroppedInFlight, DroppedDeadNode int64
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("lat=%.2f cyc compl=%.3f thr=%.3f f/n/c E/pkt=%.3f nJ PEF=%.2f",
		r.AvgLatency, r.Completion, r.Throughput, r.EnergyPerPacketNJ, r.PEF)
}

// builderFor maps a router kind to its constructor and energy structure.
func builderFor(k RouterKind) (func(int, *router.RouteEngine) router.Router, power.Structure) {
	switch k {
	case Generic:
		return func(id int, e *router.RouteEngine) router.Router { return generic.New(id, e) },
			power.GenericStructure()
	case PathSensitive:
		return func(id int, e *router.RouteEngine) router.Router { return pathsensitive.New(id, e) },
			power.PathSensitiveStructure()
	case RoCo:
		return func(id int, e *router.RouteEngine) router.Router { return core.New(id, e) },
			power.RoCoStructure()
	case PDR:
		return func(id int, e *router.RouteEngine) router.Router { return pdr.New(id, e) },
			power.PDRStructure()
	default:
		panic(fmt.Sprintf("roco: unknown router kind %d", int(k)))
	}
}

// Run executes one simulation and returns its measurements. It panics on
// an invalid configuration; use Config.Validate to check dynamically built
// configurations first.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("roco: invalid config: %v", err))
	}
	res, profile := runNetwork(cfg)
	return summarize(cfg, res, profile)
}

// PaperConfig returns the paper's exact evaluation setup for one
// experiment point: an 8x8 mesh, 4-flit packets of 128-bit flits, and the
// paper's full run length of 20,000 warm-up plus 1,000,000 measured
// packets. One such run takes minutes; the scaled defaults of Config are
// what the shipped EXPERIMENTS.md numbers use (validated against longer
// runs by TestSoakPaperScale).
func PaperConfig(k RouterKind, alg Algorithm, tp TrafficPattern, rate float64) Config {
	return Config{
		Width: 8, Height: 8,
		Router: k, Algorithm: alg, Traffic: tp,
		InjectionRate:  rate,
		FlitsPerPacket: 4,
		WarmupPackets:  20000,
		MeasurePackets: 1000000,
		Seed:           1,
	}
}
