module github.com/rocosim/roco

go 1.22
