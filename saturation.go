package roco

import (
	"fmt"
	"io"

	"github.com/rocosim/roco/internal/report"
)

// SaturationResult is one router's measured saturation throughput: the
// highest injection rate at which the network still accepts (and delivers)
// essentially all offered traffic.
type SaturationResult struct {
	Router RouterKind
	// Rate is the saturation injection rate in flits/node/cycle.
	Rate float64
	// LatencyAtRate is the average latency measured at that rate.
	LatencyAtRate float64
}

// FindSaturation binary-searches the saturation throughput of one router
// under the given routing algorithm and uniform traffic, using the
// standard latency-knee criterion: a rate is sustainable while the run
// drains fully and its average latency stays below three times the
// zero-load latency (past the knee, latency grows without bound as source
// queues build).
func FindSaturation(opts Options, kind RouterKind, alg Algorithm) SaturationResult {
	measure := func(rate float64) Result {
		cfg := opts.baseConfig(kind, alg, Uniform, rate)
		cfg.MaxCycles = 30 * (opts.Warmup + opts.Measure)
		return Run(cfg)
	}
	base := measure(0.02)
	limit := 3 * base.AvgLatency
	sustainable := func(res Result) bool {
		return !res.Saturated && res.Completion == 1 && res.AvgLatency < limit
	}

	lo, hi := 0.02, 0.60
	lat := base.AvgLatency
	for i := 0; i < 8; i++ { // ~0.002 resolution over [0.02, 0.60]
		mid := (lo + hi) / 2
		if res := measure(mid); sustainable(res) {
			lo, lat = mid, res.AvgLatency
		} else {
			hi = mid
		}
	}
	return SaturationResult{Router: kind, Rate: lo, LatencyAtRate: lat}
}

// SaturationStudy measures the saturation throughput of all three paper
// routers under one routing algorithm.
type SaturationStudy struct {
	Algorithm Algorithm
	Results   []SaturationResult
}

// RunSaturationStudy runs FindSaturation for the paper's three routers.
func RunSaturationStudy(opts Options, alg Algorithm) SaturationStudy {
	study := SaturationStudy{Algorithm: alg}
	for _, k := range RouterKinds {
		study.Results = append(study.Results, FindSaturation(opts, k, alg))
	}
	return study
}

// Render writes the study as a table.
func (s SaturationStudy) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Saturation throughput — %s routing, uniform traffic", s.Algorithm),
		"router", "saturation rate (flits/node/cycle)", "latency at rate (cycles)")
	for _, r := range s.Results {
		tbl.AddRow(r.Router.String(), fmt.Sprintf("%.3f", r.Rate), fmt.Sprintf("%.1f", r.LatencyAtRate))
	}
	tbl.Render(w)
}
