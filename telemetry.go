package roco

import (
	"encoding/csv"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/report"
	"github.com/rocosim/roco/internal/routing"
	"github.com/rocosim/roco/internal/telemetry"
)

// VCClassNames lists the RoCo path-set class names in occupancy-index
// order (routing.Turn order): the TelemetryEpoch and TelemetryNode
// Occupancy slices are indexed by it. Baseline routers do not classify
// their channels, so their whole occupancy reports under "dx".
var VCClassNames = [...]string{"dx", "dy", "txy", "tyx", "Injxy", "Injyx"}

// TelemetryEnergy is one interval's energy split by router module, nJ.
type TelemetryEnergy struct {
	BuffersNJ, CrossbarNJ, LinksNJ float64
	ArbitrationNJ, RoutingNJ       float64
	EjectionNJ, LeakageNJ          float64
}

// TotalNJ sums the modules.
func (e TelemetryEnergy) TotalNJ() float64 {
	return e.BuffersNJ + e.CrossbarNJ + e.LinksNJ + e.ArbitrationNJ + e.RoutingNJ + e.EjectionNJ + e.LeakageNJ
}

// TelemetryNode is one router's share of a telemetry epoch.
type TelemetryNode struct {
	// Event-count deltas over the epoch.
	LinkFlits, CrossbarTraversals int64
	SAGrants, CreditStalls        int64
	Ejections, EarlyEjections     int64
	// Occupancy is the flits buffered at the epoch's closing cycle by
	// path-set class (indexed per VCClassNames); OccupancyTotal sums it.
	Occupancy      []int64
	OccupancyTotal int64
	// LinkUtilization is the node's mean outgoing-link utilization over
	// the epoch, flits/link/cycle.
	LinkUtilization float64
}

// TelemetryEpoch is one closed sampling interval (StartCycle, EndCycle].
type TelemetryEpoch struct {
	// Index is the epoch's global sequence number (stable across ring
	// eviction).
	Index                         int64
	StartCycle, EndCycle, Cycles  int64
	Generated, Delivered, Dropped int64
	// Reliable-delivery deltas (zero unless Config.Reliable).
	Retransmissions, Recovered, GiveUps int64
	// Network-wide event-count deltas.
	LinkFlits, CrossbarFlits  int64
	SAGrants, SAConflicts     int64
	CreditStalls              int64
	Ejections, EarlyEjections int64
	// Occupancy snapshots buffered flits by class at the closing cycle
	// (indexed per VCClassNames).
	Occupancy      []int64
	OccupancyTotal int64
	// LinkUtilization and CrossbarUtilization are network means over
	// the epoch (flits/link/cycle; traversals/node/cycle).
	LinkUtilization, CrossbarUtilization float64
	// Energy is the epoch's per-module split.
	Energy TelemetryEnergy
	// Nodes is the per-router split, indexed by node id.
	Nodes []TelemetryNode
}

// TelemetryTotals accumulates every epoch ever sampled; it survives
// epoch-ring eviction, so it always covers the whole telemetry span.
type TelemetryTotals struct {
	Epochs, Cycles                      int64
	Generated, Delivered, Dropped       int64
	Retransmissions, Recovered, GiveUps int64
	LinkFlits, CrossbarFlits            int64
	SAGrants, SAConflicts               int64
	CreditStalls                        int64
	Ejections, EarlyEjections           int64
	Energy                              TelemetryEnergy
}

// Telemetry is the epoch time series of one run (Result.Telemetry, nil
// unless Config.TelemetryEvery was set). Epochs are chronological; when
// the ring capacity was exceeded the oldest were evicted
// (EvictedEpochs), with their contribution preserved in Totals.
type Telemetry struct {
	// Every is the epoch length in cycles; Width/Height the mesh shape.
	Every         int64
	Width, Height int
	// Links[i] is node i's live outgoing link count (utilization
	// denominator).
	Links         []int
	EvictedEpochs int64
	Totals        TelemetryTotals
	Epochs        []TelemetryEpoch
}

// UtilizationGrid returns epoch e's per-node link utilization as a
// Width x Height grid (row-major, index y*Width+x), the input to
// heatmap rendering.
func (t *Telemetry) UtilizationGrid(e *TelemetryEpoch) []float64 {
	out := make([]float64, len(e.Nodes))
	for i := range e.Nodes {
		out[i] = e.Nodes[i].LinkUtilization
	}
	return out
}

// RenderHeatmap writes an ASCII per-node link-utilization heatmap of
// one epoch.
func (t *Telemetry) RenderHeatmap(w io.Writer, e *TelemetryEpoch) {
	hm := &report.Heatmap{
		Title: fmt.Sprintf("Epoch %d (cycles %d..%d) link utilization (flits/link/cycle), %dx%d mesh",
			e.Index, e.StartCycle, e.EndCycle, t.Width, t.Height),
		Width:  t.Width,
		Height: t.Height,
		Value:  t.UtilizationGrid(e),
	}
	hm.Render(w)
}

// WriteCSV writes the epoch-level series as CSV: one row per epoch with
// the network-wide counters, utilizations, per-class occupancy, and the
// per-module energy split.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := []string{
		"epoch", "start_cycle", "end_cycle", "cycles",
		"generated", "delivered", "dropped",
		"retransmissions", "recovered", "giveups",
		"link_flits", "crossbar_flits", "sa_grants", "sa_conflicts",
		"credit_stalls", "ejections", "early_ejections",
		"link_utilization", "crossbar_utilization",
	}
	for _, c := range VCClassNames {
		head = append(head, "occ_"+c)
	}
	head = append(head, "buffers_nj", "crossbar_nj", "links_nj",
		"arbitration_nj", "routing_nj", "ejection_nj", "leakage_nj")
	if err := cw.Write(head); err != nil {
		return err
	}
	for i := range t.Epochs {
		e := &t.Epochs[i]
		row := []string{
			itoa(e.Index), itoa(e.StartCycle), itoa(e.EndCycle), itoa(e.Cycles),
			itoa(e.Generated), itoa(e.Delivered), itoa(e.Dropped),
			itoa(e.Retransmissions), itoa(e.Recovered), itoa(e.GiveUps),
			itoa(e.LinkFlits), itoa(e.CrossbarFlits), itoa(e.SAGrants), itoa(e.SAConflicts),
			itoa(e.CreditStalls), itoa(e.Ejections), itoa(e.EarlyEjections),
			ftoa(e.LinkUtilization), ftoa(e.CrossbarUtilization),
		}
		for _, occ := range e.Occupancy {
			row = append(row, itoa(occ))
		}
		row = append(row,
			ftoa(e.Energy.BuffersNJ), ftoa(e.Energy.CrossbarNJ), ftoa(e.Energy.LinksNJ),
			ftoa(e.Energy.ArbitrationNJ), ftoa(e.Energy.RoutingNJ),
			ftoa(e.Energy.EjectionNJ), ftoa(e.Energy.LeakageNJ))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteNodeCSV writes the per-node series as CSV: one row per (epoch,
// node) with the node's event deltas, occupancy split, and utilization.
func (t *Telemetry) WriteNodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := []string{
		"epoch", "node", "x", "y",
		"link_flits", "crossbar_traversals", "sa_grants", "credit_stalls",
		"ejections", "early_ejections", "occupancy", "link_utilization",
	}
	for _, c := range VCClassNames {
		head = append(head, "occ_"+c)
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	for i := range t.Epochs {
		e := &t.Epochs[i]
		for id := range e.Nodes {
			n := &e.Nodes[id]
			row := []string{
				itoa(e.Index), strconv.Itoa(id),
				strconv.Itoa(id % t.Width), strconv.Itoa(id / t.Width),
				itoa(n.LinkFlits), itoa(n.CrossbarTraversals), itoa(n.SAGrants), itoa(n.CreditStalls),
				itoa(n.Ejections), itoa(n.EarlyEjections), itoa(n.OccupancyTotal),
				ftoa(n.LinkUtilization),
			}
			for _, occ := range n.Occupancy {
				row = append(row, itoa(occ))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int64) string   { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// convertTelemetry mirrors the internal telemetry series into the
// public representation.
func convertTelemetry(cfg Config, s *telemetry.Series) *Telemetry {
	if s == nil {
		return nil
	}
	t := &Telemetry{
		Every:         s.Every,
		Width:         cfg.Width,
		Height:        cfg.Height,
		Links:         s.Links,
		EvictedEpochs: s.Evicted,
		Totals: TelemetryTotals{
			Epochs: s.Totals.Epochs, Cycles: s.Totals.Cycles,
			Generated: s.Totals.Generated, Delivered: s.Totals.Delivered, Dropped: s.Totals.Dropped,
			Retransmissions: s.Totals.Retransmissions, Recovered: s.Totals.Recovered, GiveUps: s.Totals.GiveUps,
			LinkFlits: s.Totals.LinkFlits, CrossbarFlits: s.Totals.CrossbarFlits,
			SAGrants: s.Totals.SAGrants, SAConflicts: s.Totals.SAConflicts,
			CreditStalls: s.Totals.CreditStalls,
			Ejections:    s.Totals.Ejections, EarlyEjections: s.Totals.EarlyEjections,
			Energy: convertEnergy(s.Totals.Energy),
		},
		Epochs: make([]TelemetryEpoch, len(s.Epochs)),
	}
	for i := range s.Epochs {
		src := &s.Epochs[i]
		e := TelemetryEpoch{
			Index: src.Index, StartCycle: src.StartCycle, EndCycle: src.EndCycle, Cycles: src.Cycles,
			Generated: src.Generated, Delivered: src.Delivered, Dropped: src.Dropped,
			Retransmissions: src.Retransmissions, Recovered: src.Recovered, GiveUps: src.GiveUps,
			LinkFlits: src.LinkFlits, CrossbarFlits: src.CrossbarFlits,
			SAGrants: src.SAGrants, SAConflicts: src.SAConflicts,
			CreditStalls: src.CreditStalls,
			Ejections:    src.Ejections, EarlyEjections: src.EarlyEjections,
			Occupancy:           make([]int64, routing.NumClasses),
			OccupancyTotal:      src.OccupancyTotal,
			LinkUtilization:     s.LinkUtilization(src),
			CrossbarUtilization: s.CrossbarUtilization(src),
			Energy:              convertEnergy(src.Energy),
			Nodes:               make([]TelemetryNode, len(src.Nodes)),
		}
		copy(e.Occupancy, src.Occupancy[:])
		for id := range src.Nodes {
			n := &src.Nodes[id]
			pn := TelemetryNode{
				LinkFlits: n.LinkFlits, CrossbarTraversals: n.CrossbarTraversals,
				SAGrants: n.SAGrants, CreditStalls: n.CreditStalls,
				Ejections: n.Ejections, EarlyEjections: n.EarlyEjections,
				Occupancy:       make([]int64, routing.NumClasses),
				OccupancyTotal:  int64(n.OccupancyTotal),
				LinkUtilization: n.LinkUtilization(s.Links[id], src.Cycles),
			}
			for cl, occ := range n.Occupancy {
				pn.Occupancy[cl] = int64(occ)
			}
			e.Nodes[id] = pn
		}
		t.Epochs[i] = e
	}
	return t
}

func convertEnergy(b power.Breakdown) TelemetryEnergy {
	return TelemetryEnergy{
		BuffersNJ: b.BuffersNJ, CrossbarNJ: b.CrossbarNJ, LinksNJ: b.LinksNJ,
		ArbitrationNJ: b.ArbitrationNJ, RoutingNJ: b.RoutingNJ,
		EjectionNJ: b.EjectionNJ, LeakageNJ: b.LeakageNJ,
	}
}

// TelemetrySince returns the run's telemetry epochs with Index greater
// than since (pass -1 for everything retained), plus the eviction-proof
// totals — the incremental read behind live epoch streaming (the
// campaign service's SSE feed polls it from checkpoint hooks). It
// returns nil when telemetry is disabled or no newer epoch has closed.
// Safe to call concurrently with a running simulation: the collector is
// sampled at kernel barriers and read under its own lock.
func (s *Sim) TelemetrySince(since int64) *Telemetry {
	c := s.net.Telemetry()
	if c == nil {
		return nil
	}
	ser := c.SnapshotSince(since)
	if ser == nil {
		return nil
	}
	return convertTelemetry(s.cfg, ser)
}

// LiveRun is a simulation whose telemetry is observable while it
// executes: build one with NewLiveRun, mount MetricsHandler on an HTTP
// server, and call Run (typically in its own goroutine). The metrics
// endpoint serves consistent epoch snapshots throughout — the collector
// is sampled at kernel barriers and read under its own lock — and keeps
// serving final values after Run returns. rocosim -serve is a thin
// wrapper around this type.
type LiveRun struct {
	cfg     Config
	net     *network.Network
	profile power.Profile
}

// NewLiveRun builds a simulation for live observation. TelemetryEvery
// defaults to 256 cycles when unset — a LiveRun without telemetry would
// have nothing to serve. Panics on an invalid configuration, like Run.
func NewLiveRun(cfg Config) *LiveRun {
	cfg = cfg.withDefaults()
	if cfg.TelemetryEvery <= 0 {
		cfg.TelemetryEvery = 256
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("roco: invalid config: %v", err))
	}
	net, profile := buildNetwork(cfg, 0)
	return &LiveRun{cfg: cfg, net: net, profile: profile}
}

// MetricsHandler returns the Prometheus text-format handler over the
// run's live telemetry collector (stdlib only; mount it at /metrics).
func (l *LiveRun) MetricsHandler() http.Handler {
	return telemetry.Metrics(l.net.Telemetry())
}

// Run executes the simulation to termination and returns the public
// Result (with Result.Telemetry populated). Call it at most once.
func (l *LiveRun) Run() Result {
	return summarize(l.cfg, l.net.Run(), l.profile)
}
