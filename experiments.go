package roco

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/rocosim/roco/internal/analytic"
	"github.com/rocosim/roco/internal/core"
	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/report"
	"github.com/rocosim/roco/internal/stats"
)

// Options tunes the experiment drivers that regenerate the paper's tables
// and figures. The zero value is not useful; start from DefaultOptions.
type Options struct {
	// Width and Height set the mesh (paper: 8x8).
	Width, Height int
	// Warmup and Measure size each run in packets. The paper uses 20k and
	// 1M; the defaults trade statistical polish for a suite that finishes
	// in minutes. EXPERIMENTS.md records the values used for the shipped
	// numbers.
	Warmup, Measure int64
	// FaultTrials is the number of random fault placements averaged per
	// point in Figures 11, 12 and 14.
	FaultTrials int
	// Seed drives all randomness.
	Seed uint64
	// Workers caps the total simulation concurrency: how many CPUs the
	// drivers may occupy at once, shared between running independent
	// configurations in parallel and sharding individual runs (Shards).
	// 0 consults the deprecated Parallel flag (GOMAXPROCS when set, else
	// serial); 1 forces fully serial execution.
	Workers int
	// Parallel is the deprecated boolean predecessor of Workers, honored
	// only when Workers is 0: true means GOMAXPROCS workers, false means
	// serial. DefaultOptions sets it so zero-Workers callers keep their
	// old parallel behavior.
	Parallel bool
	// Shards applies intra-run sharding (Config.Shards) to every
	// simulation the drivers launch. Results are bit-identical for any
	// value; use it to speed up large-mesh experiments. The worker budget
	// is shared: with Shards=4 and Workers=8, two configurations run
	// concurrently, each on four shard workers.
	Shards int
	// ReferenceKernel runs every simulation on the ungated cycle loop
	// instead of the activity-gated kernel (see Config.ReferenceKernel).
	ReferenceKernel bool
	// SoAKernel runs every simulation on the struct-of-arrays kernel
	// (see Config.SoAKernel). Bit-identical results, lower footprint.
	SoAKernel bool
	// Reliable arms the end-to-end reliable-delivery protocol in the
	// experiments that inject faults into live traffic (currently the
	// degradation experiment), surfacing goodput and recovery counters.
	Reliable bool
	// ChipsX..ChipH run every simulation on a hierarchical multi-chip
	// topology instead of the flat mesh (see Config.ChipsX et al.; Width
	// and Height are then ignored and derived from the chiplet grid).
	// D2DClass, D2DLatency and D2DGap shape the boundary links.
	// The degradation experiment additionally switches its injected fault
	// to a whole die-to-die interface when a chiplet grid is set.
	ChipsX, ChipsY, ChipW, ChipH int
	D2DClass                     D2DClass
	D2DLatency, D2DGap           int
}

// DefaultOptions returns the harness defaults (8x8 mesh, 2k+30k packets,
// 3 fault trials, parallel).
func DefaultOptions() Options {
	return Options{
		Width: 8, Height: 8,
		Warmup: 2000, Measure: 30000,
		FaultTrials: 3,
		Seed:        1,
		Parallel:    true,
	}
}

// QuickOptions returns a scaled-down configuration for smoke tests and
// benchmarks (4k packets).
func QuickOptions() Options {
	o := DefaultOptions()
	o.Warmup, o.Measure = 500, 4000
	o.FaultTrials = 2
	return o
}

// dims returns the global grid dimensions: derived from the chiplet grid
// on multichip runs, Width x Height otherwise.
func (o Options) dims() (w, h int) {
	if o.ChipsX > 0 {
		return o.ChipsX * o.ChipW, o.ChipsY * o.ChipH
	}
	return o.Width, o.Height
}

// effectiveWorkers resolves the Options concurrency budget: Workers wins
// when set, otherwise the deprecated Parallel flag picks GOMAXPROCS or
// serial.
func (o Options) effectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if o.Parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// runAll executes the given configs and returns results in input order.
// The Options worker budget is shared between config-level parallelism and
// intra-run sharding: each config's shard workers are capped so that the
// configs running concurrently never occupy more than the budget in total.
func runAll(opts Options, cfgs []Config) []Result {
	out := make([]Result, len(cfgs))
	budget := opts.effectiveWorkers()

	// Cap every config's shard concurrency by the budget, and size the
	// config-level pool so concurrent-configs x shard-workers <= budget.
	perRun := 1
	for i := range cfgs {
		if cfgs[i].Shards > 1 {
			w := cfgs[i].Shards
			if cfgs[i].Workers > 0 && cfgs[i].Workers < w {
				w = cfgs[i].Workers
			}
			if w > budget {
				w = budget
			}
			cfgs[i].Workers = w
			if w > perRun {
				perRun = w
			}
		} else if cfgs[i].Workers == 0 {
			cfgs[i].Workers = 1
		}
	}
	workers := budget / perRun
	if workers < 1 {
		workers = 1
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers == 1 {
		for i, c := range cfgs {
			out[i] = Run(c)
		}
		return out
	}
	// The index channel is buffered to len(cfgs) and fully loaded before
	// the workers start, so dispatch never interleaves with (or blocks on)
	// worker startup; each worker writes out[i] for the indexes it drew,
	// keeping results in input order by construction.
	idx := make(chan int, len(cfgs))
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = Run(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// baseConfig builds the common run configuration for an experiment point.
func (o Options) baseConfig(k RouterKind, alg Algorithm, tp TrafficPattern, rate float64) Config {
	cfg := Config{
		Width: o.Width, Height: o.Height,
		Router: k, Algorithm: alg, Traffic: tp,
		InjectionRate:   rate,
		WarmupPackets:   o.Warmup,
		MeasurePackets:  o.Measure,
		Seed:            o.Seed,
		ReferenceKernel: o.ReferenceKernel,
		SoAKernel:       o.SoAKernel,
		Shards:          o.Shards,
	}
	if o.ChipsX > 0 {
		cfg.ChipsX, cfg.ChipsY, cfg.ChipW, cfg.ChipH = o.ChipsX, o.ChipsY, o.ChipW, o.ChipH
		cfg.D2DClass = o.D2DClass
		cfg.D2DLatency, cfg.D2DGap = o.D2DLatency, o.D2DGap
		// The chiplet grid drives the dimensions; Options.Width/Height are
		// ignored on multichip runs.
		cfg.Width, cfg.Height = 0, 0
	}
	return cfg
}

// LatencyRates is the paper's x-axis for Figures 8-10.
var LatencyRates = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}

// ContentionRates is the paper's x-axis for Figure 3.
var ContentionRates = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60}

// FaultCounts is the paper's x-axis for Figures 11, 12 and 14.
var FaultCounts = []int{1, 2, 4}

// LatencySweep is one panel of Figures 8, 9 or 10: average latency versus
// injection rate for the three routers under one traffic pattern and one
// routing algorithm.
type LatencySweep struct {
	Traffic   TrafficPattern
	Algorithm Algorithm
	Rates     []float64
	// Latency[k][i] is the average latency of router k at Rates[i].
	Latency map[RouterKind][]float64
	// Saturated[k][i] marks points past the saturation throughput.
	Saturated map[RouterKind][]bool
}

// RunLatencySweep measures one latency-versus-load panel.
func RunLatencySweep(opts Options, tp TrafficPattern, alg Algorithm, rates []float64) LatencySweep {
	sweep := LatencySweep{
		Traffic: tp, Algorithm: alg, Rates: rates,
		Latency:   map[RouterKind][]float64{},
		Saturated: map[RouterKind][]bool{},
	}
	var cfgs []Config
	for _, k := range RouterKinds {
		for _, rate := range rates {
			cfg := opts.baseConfig(k, alg, tp, rate)
			// Past saturation a drain never finishes; cap the run at a
			// fixed horizon so the sweep terminates with the latency of
			// the packets that did complete.
			cfg.MaxCycles = 40 * (opts.Warmup + opts.Measure)
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(opts, cfgs)
	i := 0
	for _, k := range RouterKinds {
		sweep.Latency[k] = make([]float64, len(rates))
		sweep.Saturated[k] = make([]bool, len(rates))
		for j := range rates {
			sweep.Latency[k][j] = results[i].AvgLatency
			sweep.Saturated[k][j] = results[i].Saturated
			i++
		}
	}
	return sweep
}

// Render writes the sweep as a table and an ASCII plot.
func (s LatencySweep) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Average latency (cycles) — %s traffic, %s routing", s.Traffic, s.Algorithm),
		append([]string{"rate"}, routerHeaders()...)...)
	for j, r := range s.Rates {
		cells := []string{fmt.Sprintf("%.2f", r)}
		for _, k := range RouterKinds {
			mark := ""
			if s.Saturated[k][j] {
				mark = " (sat)"
			}
			cells = append(cells, fmt.Sprintf("%.2f%s", s.Latency[k][j], mark))
		}
		tbl.AddRow(cells...)
	}
	tbl.Render(w)

	plot := &report.Plot{
		Title:  fmt.Sprintf("Latency vs injection rate — %s traffic, %s routing", s.Traffic, s.Algorithm),
		XLabel: "flits/node/cycle", YLabel: "cycles", YMax: 100,
	}
	for _, k := range RouterKinds {
		series := &stats.Series{Label: k.String()}
		for j, r := range s.Rates {
			series.Append(r, s.Latency[k][j])
		}
		plot.Series = append(plot.Series, series)
	}
	plot.Render(w)
}

func routerHeaders() []string {
	h := make([]string, 0, len(RouterKinds))
	for _, k := range RouterKinds {
		h = append(h, k.String())
	}
	return h
}

// Figure8 reproduces the uniform-traffic latency panels (one sweep per
// routing algorithm).
func Figure8(opts Options) []LatencySweep { return latencyFigure(opts, Uniform) }

// Figure9 reproduces the self-similar-traffic latency panels.
func Figure9(opts Options) []LatencySweep { return latencyFigure(opts, SelfSimilar) }

// Figure10 reproduces the transpose-traffic latency panels.
func Figure10(opts Options) []LatencySweep { return latencyFigure(opts, Transpose) }

// FigureMPEG is the multimedia experiment the paper ran but omitted for
// space: the latency sweep under GoP-structured MPEG-2 video streams.
func FigureMPEG(opts Options) []LatencySweep { return latencyFigure(opts, MPEG2) }

func latencyFigure(opts Options, tp TrafficPattern) []LatencySweep {
	out := make([]LatencySweep, 0, len(Algorithms))
	for _, alg := range Algorithms {
		out = append(out, RunLatencySweep(opts, tp, alg, LatencyRates))
	}
	return out
}

// ContentionSweep is one panel of Figure 3: SA contention probability
// versus injection rate under uniform traffic.
type ContentionSweep struct {
	Algorithm Algorithm
	// Which dimension's inputs the panel reports: "row", "column" or
	// "all" (the adaptive panel combines both).
	Dimension string
	Rates     []float64
	Prob      map[RouterKind][]float64
}

// Figure3 reproduces the three contention panels: row-input contention
// under XY, column-input contention under XY, and combined contention
// under adaptive routing.
func Figure3(opts Options) []ContentionSweep {
	panels := []ContentionSweep{
		{Algorithm: XY, Dimension: "row", Rates: ContentionRates},
		{Algorithm: XY, Dimension: "column", Rates: ContentionRates},
		{Algorithm: Adaptive, Dimension: "all", Rates: ContentionRates},
	}
	// Two underlying run sets: XY and adaptive (the two XY panels share
	// the same runs, reading different counters).
	for pi := range panels {
		panels[pi].Prob = map[RouterKind][]float64{}
		for _, k := range RouterKinds {
			panels[pi].Prob[k] = make([]float64, len(ContentionRates))
		}
	}
	for _, alg := range []Algorithm{XY, Adaptive} {
		var cfgs []Config
		for _, k := range RouterKinds {
			for _, rate := range ContentionRates {
				cfg := opts.baseConfig(k, alg, Uniform, rate)
				cfg.MaxCycles = 40 * (opts.Warmup + opts.Measure)
				cfgs = append(cfgs, cfg)
			}
		}
		results := runAll(opts, cfgs)
		i := 0
		for _, k := range RouterKinds {
			for j := range ContentionRates {
				r := results[i]
				if alg == XY {
					panels[0].Prob[k][j] = r.ContentionRow
					panels[1].Prob[k][j] = r.ContentionCol
				} else {
					panels[2].Prob[k][j] = r.Contention
				}
				i++
			}
		}
	}
	return panels
}

// Render writes the contention panel.
func (s ContentionSweep) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Contention probability at %s inputs — %s routing, uniform traffic", s.Dimension, s.Algorithm),
		append([]string{"rate"}, routerHeaders()...)...)
	for j, r := range s.Rates {
		cells := []string{fmt.Sprintf("%.2f", r)}
		for _, k := range RouterKinds {
			cells = append(cells, fmt.Sprintf("%.3f", s.Prob[k][j]))
		}
		tbl.AddRow(cells...)
	}
	tbl.Render(w)
}

// FaultExperiment is one panel of Figures 11/12/14: completion
// probability, latency and PEF under 1, 2 and 4 random faults at 30%
// injection, averaged over several random fault placements.
type FaultExperiment struct {
	Class     FaultClass
	Algorithm Algorithm
	Counts    []int
	// Completion[k][i], Latency[k][i], PEF[k][i] are averages over trials
	// with Counts[i] faults.
	Completion map[RouterKind][]float64
	Latency    map[RouterKind][]float64
	PEF        map[RouterKind][]float64
}

// FaultInjectionRate is the offered load of the fault experiments (the
// paper's 30%).
const FaultInjectionRate = 0.30

// RunFaultExperiment measures one fault panel.
func RunFaultExperiment(opts Options, class FaultClass, alg Algorithm) FaultExperiment {
	exp := FaultExperiment{
		Class: class, Algorithm: alg, Counts: FaultCounts,
		Completion: map[RouterKind][]float64{},
		Latency:    map[RouterKind][]float64{},
		PEF:        map[RouterKind][]float64{},
	}
	trials := opts.FaultTrials
	if trials < 1 {
		trials = 1
	}
	var cfgs []Config
	for _, k := range RouterKinds {
		for _, count := range FaultCounts {
			for t := 0; t < trials; t++ {
				cfg := opts.baseConfig(k, alg, Uniform, FaultInjectionRate)
				// All routers see the same fault placements per trial.
				cfg.Faults = RandomFaults(class, count, opts.Width, opts.Height, opts.Seed+uint64(t)*1000+uint64(count))
				cfg.MaxCycles = 60 * (opts.Warmup + opts.Measure)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results := runAll(opts, cfgs)
	i := 0
	for _, k := range RouterKinds {
		exp.Completion[k] = make([]float64, len(FaultCounts))
		exp.Latency[k] = make([]float64, len(FaultCounts))
		exp.PEF[k] = make([]float64, len(FaultCounts))
		for ci := range FaultCounts {
			var comp, lat, pef float64
			for t := 0; t < trials; t++ {
				comp += results[i].Completion
				lat += results[i].AvgLatency
				pef += results[i].PEF
				i++
			}
			exp.Completion[k][ci] = comp / float64(trials)
			exp.Latency[k][ci] = lat / float64(trials)
			exp.PEF[k][ci] = pef / float64(trials)
		}
	}
	return exp
}

// Figure11 reproduces the completion-probability panels under
// router-centric (critical) faults, one per routing algorithm.
func Figure11(opts Options) []FaultExperiment {
	out := make([]FaultExperiment, 0, len(Algorithms))
	for _, alg := range Algorithms {
		out = append(out, RunFaultExperiment(opts, CriticalFaults, alg))
	}
	return out
}

// Figure12 reproduces the completion-probability panels under
// message-centric (non-critical) faults.
func Figure12(opts Options) []FaultExperiment {
	out := make([]FaultExperiment, 0, len(Algorithms))
	for _, alg := range Algorithms {
		out = append(out, RunFaultExperiment(opts, NonCriticalFaults, alg))
	}
	return out
}

// Figure14 reproduces the PEF panels: (a) critical faults, (b)
// non-critical faults, under deterministic routing.
func Figure14(opts Options) []FaultExperiment {
	return []FaultExperiment{
		RunFaultExperiment(opts, CriticalFaults, XY),
		RunFaultExperiment(opts, NonCriticalFaults, XY),
	}
}

// Render writes the fault panel (completion, latency and PEF).
func (e FaultExperiment) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Faults (%s) — %s routing, %.0f%% injection", e.Class, e.Algorithm, FaultInjectionRate*100),
		"faults", "metric", RouterKinds[0].String(), RouterKinds[1].String(), RouterKinds[2].String())
	for ci, n := range e.Counts {
		tbl.AddRow(fmt.Sprintf("%d", n), "completion",
			fmt.Sprintf("%.3f", e.Completion[Generic][ci]),
			fmt.Sprintf("%.3f", e.Completion[PathSensitive][ci]),
			fmt.Sprintf("%.3f", e.Completion[RoCo][ci]))
		tbl.AddRow("", "latency (cyc)",
			fmt.Sprintf("%.1f", e.Latency[Generic][ci]),
			fmt.Sprintf("%.1f", e.Latency[PathSensitive][ci]),
			fmt.Sprintf("%.1f", e.Latency[RoCo][ci]))
		tbl.AddRow("", "PEF",
			fmt.Sprintf("%.2f", e.PEF[Generic][ci]),
			fmt.Sprintf("%.2f", e.PEF[PathSensitive][ci]),
			fmt.Sprintf("%.2f", e.PEF[RoCo][ci]))
	}
	tbl.Render(w)
}

// EnergyResult is Figure 13: energy per packet at 30% injection for the
// three traffic patterns and three routers.
type EnergyResult struct {
	Patterns []TrafficPattern
	// EnergyNJ[k][i] is energy/packet of router k under Patterns[i].
	EnergyNJ map[RouterKind][]float64
}

// Figure13 reproduces the energy-per-packet comparison.
func Figure13(opts Options) EnergyResult {
	res := EnergyResult{
		Patterns: []TrafficPattern{Uniform, SelfSimilar, Transpose},
		EnergyNJ: map[RouterKind][]float64{},
	}
	var cfgs []Config
	for _, k := range RouterKinds {
		for _, tp := range res.Patterns {
			cfg := opts.baseConfig(k, XY, tp, FaultInjectionRate)
			cfg.MaxCycles = 40 * (opts.Warmup + opts.Measure)
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(opts, cfgs)
	i := 0
	for _, k := range RouterKinds {
		res.EnergyNJ[k] = make([]float64, len(res.Patterns))
		for j := range res.Patterns {
			res.EnergyNJ[k][j] = results[i].EnergyPerPacketNJ
			i++
		}
	}
	return res
}

// Render writes the energy comparison.
func (e EnergyResult) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Energy per packet (nJ) at %.0f%% injection, XY routing", FaultInjectionRate*100),
		append([]string{"traffic"}, routerHeaders()...)...)
	for j, tp := range e.Patterns {
		cells := []string{tp.String()}
		for _, k := range RouterKinds {
			cells = append(cells, fmt.Sprintf("%.3f", e.EnergyNJ[k][j]))
		}
		tbl.AddRow(cells...)
	}
	tbl.Render(w)
}

// DegradationExperiment is the dynamic companion of the static fault panels
// (Figures 11-14): one critical fault strikes each router architecture
// mid-measurement, and the windowed delivery rate around the event yields a
// post-fault recovery time per router. Routers that wedge instead of
// recovering report a watchdog diagnostic.
type DegradationExperiment struct {
	Algorithm  Algorithm
	FaultCycle int64
	Fault      Fault
	// Per router kind: the measured fault events, run completion, dropped
	// flits, and the watchdog diagnostic when the run wedged ("" otherwise).
	Events     map[RouterKind][]FaultEvent
	Completion map[RouterKind]float64
	Dropped    map[RouterKind]int64
	Watchdogs  map[RouterKind]string
	// Reliable reports whether the runs armed the reliable-delivery
	// protocol; the maps below are populated only then.
	Reliable      bool
	Retransmitted map[RouterKind]int64
	Recovered     map[RouterKind]int64
	GivenUp       map[RouterKind]int64
	ResidualLoss  map[RouterKind]int64
}

// RunDegradationExperiment measures online recovery from one runtime fault.
func RunDegradationExperiment(opts Options, alg Algorithm) DegradationExperiment {
	width, height := opts.dims()
	// The same critical fault for every router, struck roughly halfway
	// through the injection span (estimated from the offered load with the
	// default 4-flit packets). On a chiplet topology the fault is a whole
	// die-to-die interface instead: the first chip's east (or, on a 1-wide
	// chiplet grid, north) interface dies in one event, and the routers
	// degrade around the boundary cut.
	var flt Fault
	switch {
	case opts.ChipsX >= 2:
		flt = Fault{Node: 0, Component: D2DInterface, Side: SideEast}
	case opts.ChipsX > 0 && opts.ChipsY >= 2:
		flt = Fault{Node: 0, Component: D2DInterface, Side: SideNorth}
	default:
		flt = RandomFaults(CriticalFaults, 1, width, height, opts.Seed)[0]
	}
	pktsPerCycle := FaultInjectionRate * float64(width*height) / 4
	faultCycle := int64(float64(opts.Warmup+opts.Measure) / pktsPerCycle / 2)
	if faultCycle < 1 {
		faultCycle = 1
	}
	exp := DegradationExperiment{
		Algorithm: alg, FaultCycle: faultCycle, Fault: flt,
		Events:     map[RouterKind][]FaultEvent{},
		Completion: map[RouterKind]float64{},
		Dropped:    map[RouterKind]int64{},
		Watchdogs:  map[RouterKind]string{},
		Reliable:   opts.Reliable,
	}
	if opts.Reliable {
		exp.Retransmitted = map[RouterKind]int64{}
		exp.Recovered = map[RouterKind]int64{}
		exp.GivenUp = map[RouterKind]int64{}
		exp.ResidualLoss = map[RouterKind]int64{}
	}
	var cfgs []Config
	for _, k := range RouterKinds {
		cfg := opts.baseConfig(k, alg, Uniform, FaultInjectionRate)
		cfg.FaultSchedule = []TimedFault{{Cycle: faultCycle, Fault: flt}}
		cfg.AuditEvery = 64
		cfg.MaxCycles = 60 * (opts.Warmup + opts.Measure)
		cfg.Reliable = opts.Reliable
		cfgs = append(cfgs, cfg)
	}
	results := runAll(opts, cfgs)
	for i, k := range RouterKinds {
		exp.Events[k] = results[i].FaultEvents
		exp.Completion[k] = results[i].Completion
		exp.Dropped[k] = results[i].DroppedFlits
		exp.Watchdogs[k] = results[i].Watchdog
		if opts.Reliable {
			exp.Retransmitted[k] = results[i].Retransmissions
			exp.Recovered[k] = results[i].RecoveredPackets
			exp.GivenUp[k] = int64(len(results[i].GiveUps))
			exp.ResidualLoss[k] = results[i].ResidualLoss
		}
	}
	return exp
}

// Render writes the degradation panel and any watchdog diagnostics.
func (e DegradationExperiment) Render(w io.Writer) {
	tbl := report.NewTable(
		fmt.Sprintf("Graceful degradation — %s at node %d, cycle %d, %s routing, %.0f%% injection",
			e.Fault.Component, e.Fault.Node, e.FaultCycle, e.Algorithm, FaultInjectionRate*100),
		append([]string{"metric"}, routerHeaders()...)...)
	cell := func(f func(RouterKind) string) []string {
		cells := make([]string, 0, len(RouterKinds))
		for _, k := range RouterKinds {
			cells = append(cells, f(k))
		}
		return cells
	}
	tbl.AddRow(append([]string{"completion"}, cell(func(k RouterKind) string {
		return fmt.Sprintf("%.3f", e.Completion[k])
	})...)...)
	tbl.AddRow(append([]string{"dropped flits"}, cell(func(k RouterKind) string {
		return fmt.Sprintf("%d", e.Dropped[k])
	})...)...)
	tbl.AddRow(append([]string{"recovery (cyc)"}, cell(func(k RouterKind) string {
		if len(e.Events[k]) == 0 {
			return "-"
		}
		ev := e.Events[k][0]
		if !ev.Recovered {
			return "never"
		}
		return fmt.Sprintf("%d", ev.RecoveryCycles)
	})...)...)
	tbl.AddRow(append([]string{"rate pre/floor"}, cell(func(k RouterKind) string {
		if len(e.Events[k]) == 0 {
			return "-"
		}
		ev := e.Events[k][0]
		return fmt.Sprintf("%.2f/%.2f", ev.PreRate, ev.FloorRate)
	})...)...)
	if e.Reliable {
		tbl.AddRow(append([]string{"goodput pre/floor"}, cell(func(k RouterKind) string {
			if len(e.Events[k]) == 0 {
				return "-"
			}
			ev := e.Events[k][0]
			return fmt.Sprintf("%.2f/%.2f", ev.PreGoodput, ev.FloorGoodput)
		})...)...)
		tbl.AddRow(append([]string{"retx/recovered"}, cell(func(k RouterKind) string {
			return fmt.Sprintf("%d/%d", e.Retransmitted[k], e.Recovered[k])
		})...)...)
		tbl.AddRow(append([]string{"given up/residual"}, cell(func(k RouterKind) string {
			return fmt.Sprintf("%d/%d", e.GivenUp[k], e.ResidualLoss[k])
		})...)...)
	}
	tbl.AddRow(append([]string{"wedged"}, cell(func(k RouterKind) string {
		if e.Watchdogs[k] == "" {
			return "no"
		}
		return "yes"
	})...)...)
	tbl.Render(w)
	for _, k := range RouterKinds {
		if wd := e.Watchdogs[k]; wd != "" {
			fmt.Fprintf(w, "\n%s %s\n", k, wd)
		}
	}
}

// Figure2 renders the VA-complexity comparison of the paper's Figure 2:
// arbiter counts and sizes for the generic and RoCo allocators under both
// routing-function regimes.
func Figure2(w io.Writer, vcsPerPort int) {
	tbl := report.NewTable(
		fmt.Sprintf("Figure 2 — VA arbiter complexity (v = %d VCs per port)", vcsPerPort),
		"design", "regime", "1st stage", "2nd stage")
	stage := func(n, fan int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%d arbiters, %d:1", n, fan)
	}
	for _, pc := range []bool{false, true} {
		regime := "R => v"
		if pc {
			regime = "R => P"
		}
		g := analytic.GenericVAComplexity(vcsPerPort, pc)
		r := analytic.RoCoVAComplexity(vcsPerPort, pc)
		tbl.AddRow("generic", regime, stage(g.FirstStageArbiters, g.FirstStageFanIn), stage(g.SecondStageArbiters, g.SecondStageFanIn))
		tbl.AddRow("RoCo", regime, stage(r.FirstStageArbiters, r.FirstStageFanIn), stage(r.SecondStageArbiters, r.SecondStageFanIn))
	}
	tbl.Render(w)
}

// Table1 renders the RoCo VC buffer configurations of the paper's Table 1.
func Table1(w io.Writer) {
	tbl := report.NewTable("Table 1 — RoCo VC buffer configuration per routing algorithm",
		"routing", "Row P1", "Row P2", "Col P1", "Col P2")
	for _, alg := range Algorithms {
		cfg := core.ConfigFor(alg.internal())
		set := func(lo int) string {
			names := make([]string, 0, core.VCsPerSet)
			for i := lo; i < lo+core.VCsPerSet; i++ {
				names = append(names, cfg.Class[i].String())
			}
			return fmt.Sprintf("%s %s %s", names[0], names[1], names[2])
		}
		tbl.AddRow(alg.String(), set(0), set(3), set(6), set(9))
	}
	tbl.Render(w)
}

// Table2Result holds the non-blocking probabilities of the paper's Table 2
// with Monte-Carlo cross-checks.
type Table2Result struct {
	Generic, PathSensitive, RoCo   float64
	GenericMC, PathSensitiveMC, MC float64
	NonBlockingCount5              float64
	MonteCarloSamples              int
}

// Table2 computes the non-blocking probabilities analytically (paper
// Equation 1) and by Monte Carlo.
func Table2(samples int, seed uint64) Table2Result {
	rng := stats.NewRNG(seed)
	return Table2Result{
		Generic:           analytic.GenericNonBlocking(5),
		PathSensitive:     analytic.PathSensitiveNonBlocking(),
		RoCo:              analytic.RoCoNonBlocking(),
		GenericMC:         analytic.MonteCarloGeneric(5, samples, rng),
		PathSensitiveMC:   analytic.MonteCarloPathSensitive(samples, rng),
		MC:                analytic.MonteCarloRoCo(samples, rng),
		NonBlockingCount5: analytic.NonBlockingCount(5),
		MonteCarloSamples: samples,
	}
}

// Render writes Table 2.
func (t Table2Result) Render(w io.Writer) {
	tbl := report.NewTable("Table 2 — Non-blocking (maximal matching) probabilities (N=5)",
		"router", "analytic", "monte-carlo")
	tbl.AddRow("Generic", fmt.Sprintf("%.3f  (F(5)=%.0f)", t.Generic, t.NonBlockingCount5), fmt.Sprintf("%.3f", t.GenericMC))
	tbl.AddRow("Path-Sensitive", fmt.Sprintf("%.3f", t.PathSensitive), fmt.Sprintf("%.3f", t.PathSensitiveMC))
	tbl.AddRow("RoCo", fmt.Sprintf("%.3f", t.RoCo), fmt.Sprintf("%.3f", t.MC))
	tbl.Render(w)
}

// Table3 renders the component fault classification of the paper's
// Table 3.
func Table3(w io.Writer) {
	tbl := report.NewTable("Table 3 — Component fault classification and RoCo recovery",
		"component", "centricity", "regime", "critical path", "recoverable", "RoCo reaction")
	for _, c := range fault.AllComponents() {
		cl := fault.Classify(c)
		tbl.AddRow(c.String(), cl.Centricity.String(), cl.Regime.String(),
			fmt.Sprintf("%v", cl.Critical), fmt.Sprintf("%v", cl.RoCoRecoverable), cl.Recovery)
	}
	tbl.Render(w)
}
