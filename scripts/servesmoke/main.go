// Command servesmoke is check.sh's rocoserve crash-recovery smoke: it
// runs one job on an uninterrupted server for a reference result, then
// submits the same job to a second server, SIGKILLs the server mid-run,
// restarts it over the same data directory, and asserts the recovered
// job's result JSON is byte-identical to the reference. Exit status 0
// means the kill-restart equivalence contract held end to end through
// real processes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

// spec is the job both servers run: big enough that the kill lands
// mid-run with wide margin, small enough to finish in seconds.
const spec = `{
  "config": {
    "Width": 4, "Height": 4,
    "Router": "roco", "Algorithm": "xy", "Traffic": "uniform",
    "InjectionRate": 0.2,
    "WarmupPackets": 500, "MeasurePackets": 500000,
    "Seed": 7, "TelemetryEvery": 1024
  },
  "checkpoint_every": 256,
  "label": "servesmoke"
}`

func main() {
	bin := flag.String("bin", "", "path to the rocoserve binary (required)")
	flag.Parse()
	if *bin == "" {
		fatalf("-bin is required")
	}
	work, err := os.MkdirTemp("", "servesmoke-*")
	if err != nil {
		fatalf("mktemp: %v", err)
	}
	defer os.RemoveAll(work)

	// Reference: the same job on a server nobody kills.
	ref := startServer(*bin, filepath.Join(work, "ref"))
	refID := submit(ref.base)
	refJob := waitTerminal(ref.base, refID, 5*time.Minute)
	if refJob.State != "succeeded" {
		fatalf("reference job ended %s: %s", refJob.State, refJob.FailureText())
	}
	refResult := getResult(ref.base, refID)
	ref.terminate()

	// Victim: same spec, SIGKILLed once the job is provably mid-run
	// (first checkpoint flushed, run far from done).
	victimData := filepath.Join(work, "victim")
	victim := startServer(*bin, victimData)
	vicID := submit(victim.base)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j := getJob(victim.base, vicID)
		if j.State == "running" && j.Cycle >= 256 {
			break
		}
		if j.State == "succeeded" || j.State == "failed" || j.State == "canceled" {
			fatalf("job finished (%s) before it could be killed; raise MeasurePackets", j.State)
		}
		if time.Now().After(deadline) {
			fatalf("job never reached its first checkpoint (state %s, cycle %d)", j.State, j.Cycle)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		fatalf("SIGKILL: %v", err)
	}
	_ = victim.cmd.Wait()
	fmt.Fprintln(os.Stderr, "servesmoke: server SIGKILLed mid-run; restarting over the same data dir")

	// Restart over the same data directory: recovery must resume the job
	// from its latest snapshot and finish bit-identical.
	revived := startServer(*bin, victimData)
	defer revived.terminate()
	recJob := waitTerminal(revived.base, vicID, 5*time.Minute)
	if recJob.State != "succeeded" {
		fatalf("recovered job ended %s: %s", recJob.State, recJob.FailureText())
	}
	recResult := getResult(revived.base, vicID)
	if !bytes.Equal(refResult, recResult) {
		fatalf("kill-restart result differs from uninterrupted run (%d vs %d bytes)", len(recResult), len(refResult))
	}
	fmt.Printf("servesmoke: ok — recovered result identical to uninterrupted run (%d bytes, job resumed at cycle %d of %d)\n",
		len(recResult), recJob.Cycle, refJob.Cycle)
}

// server is one rocoserve process under test.
type server struct {
	cmd  *exec.Cmd
	base string
}

var listenRe = regexp.MustCompile(`listening on (http://[0-9.:]+)`)

// startServer launches rocoserve on an ephemeral port and waits until it
// reports its resolved address and passes a health check.
func startServer(bin, data string) *server {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", data, "-workers", "1", "-v")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatalf("stderr pipe: %v", err)
	}
	cmd.Stdout = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("starting %s: %v", bin, err)
	}
	basec := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case basec <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case base = <-basec:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		fatalf("server never reported its listen address")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return &server{cmd: cmd, base: base}
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			fatalf("server never became healthy at %s", base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// terminate asks the server to shut down gracefully (SIGTERM), falling
// back to SIGKILL if it does not exit in time.
func (s *server) terminate() {
	if s.cmd.ProcessState != nil {
		return
	}
	_ = s.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { _ = s.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		_ = s.cmd.Process.Kill()
		<-done
	}
}

// job mirrors the fields of the campaign job record the smoke reads.
type job struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Cycle   int64  `json:"cycle"`
	Failure *struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"failure"`
}

func (j job) FailureText() string {
	if j.Failure == nil {
		return "(no failure recorded)"
	}
	return j.Failure.Kind + ": " + j.Failure.Message
}

func submit(base string) string {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var j job
	if err := json.Unmarshal(body, &j); err != nil {
		fatalf("submit: decoding job: %v", err)
	}
	return j.ID
}

func getJob(base, id string) job {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		fatalf("get job: %v", err)
	}
	defer resp.Body.Close()
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		fatalf("get job: %v", err)
	}
	return j
}

func waitTerminal(base, id string, within time.Duration) job {
	deadline := time.Now().Add(within)
	for {
		j := getJob(base, id)
		switch j.State {
		case "succeeded", "failed", "canceled":
			return j
		}
		if time.Now().After(deadline) {
			fatalf("job %s still %s after %v", id, j.State, within)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getResult(base, id string) []byte {
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		fatalf("get result: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		fatalf("get result: status %d err %v", resp.StatusCode, err)
	}
	return data
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}
