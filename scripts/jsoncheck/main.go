// Command jsoncheck validates that stdin is a JSON object containing every
// field named on the command line. check.sh pipes rocosim -json output
// through it to keep the machine-readable surface honest.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	var doc map[string]any
	if err := json.NewDecoder(os.Stdin).Decode(&doc); err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: stdin is not a JSON object: %v\n", err)
		os.Exit(1)
	}
	missing := false
	for _, field := range os.Args[1:] {
		if _, ok := doc[field]; !ok {
			fmt.Fprintf(os.Stderr, "jsoncheck: field %q missing\n", field)
			missing = true
		}
	}
	if missing {
		os.Exit(1)
	}
	fmt.Printf("jsoncheck: ok (%d fields)\n", len(os.Args)-1)
}
