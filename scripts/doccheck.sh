#!/bin/sh
# Documentation gate: every package needs a godoc package comment, every
# exported identifier in a public package needs a doc comment, and every
# relative link in a markdown file must resolve. Run from the repository
# root (directly or via `make check`); see scripts/doccheck for the rules.
set -eu

go run ./scripts/doccheck
