#!/bin/sh
# Pre-merge gate: vet, build, full test suite, then the race detector over
# the packages that exercise the router protocol concurrently-audited paths.
# Run from the repository root (directly or via `make check`).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/network ./internal/router/... ./internal/core
# Smoke the kernel benchmarks: one iteration each, just to prove they run.
go test -run '^$' -bench=. -benchtime=1x ./bench/...
# Smoke the CLI's JSON output: a tiny reliable run under a fault must emit
# parseable JSON with the reliability counters present.
go run ./cmd/rocosim -json -reliable -rate 0.2 -warmup 200 -measure 2000 \
	-faults-at 150 -faultclass noncritical -audit 64 \
	| go run ./scripts/jsoncheck ResidualLoss Retransmissions GiveUps Watchdog FaultEvents
# Shard-equivalence smoke: the same 4x4 run sharded and sequential must
# emit byte-identical JSON.
SHARD1="$(mktemp)"
SHARD2="$(mktemp)"
trap 'rm -f "$SHARD1" "$SHARD2"' EXIT
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -shards 1 >"$SHARD1"
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -shards 2 >"$SHARD2"
cmp "$SHARD1" "$SHARD2"
