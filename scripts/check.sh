#!/bin/sh
# Pre-merge gate: vet, build, full test suite, then the race detector over
# the packages that exercise the router protocol concurrently-audited paths.
# Run from the repository root (directly or via `make check`).
set -eux

go vet ./...
go build ./...
go test ./...
# Documentation gate: package comments, exported-identifier docs in
# public packages, and live relative markdown links.
sh scripts/doccheck.sh
go test -race ./internal/network ./internal/router/... ./internal/core
# Smoke the kernel benchmarks: one iteration each, just to prove they run.
go test -run '^$' -bench=. -benchtime=1x ./bench/...
# Smoke the CLI's JSON output: a tiny reliable run under a fault must emit
# parseable JSON with the reliability counters present.
go run ./cmd/rocosim -json -reliable -rate 0.2 -warmup 200 -measure 2000 \
	-faults-at 150 -faultclass noncritical -audit 64 \
	| go run ./scripts/jsoncheck ResidualLoss Retransmissions GiveUps Watchdog FaultEvents
# Telemetry smoke: an epoch-sampled run must emit the Telemetry series in
# its JSON result, and the rocotrace exporter must produce a CSV with a
# header plus at least one epoch row.
go run ./cmd/rocosim -json -telemetry-every 128 -rate 0.2 -warmup 200 -measure 2000 \
	| go run ./scripts/jsoncheck Telemetry AvgLatency Completion
TELECSV="$(mktemp)"
trap 'rm -f "$TELECSV"' EXIT
go run ./cmd/rocotrace -telemetry -width 4 -height 4 -warmup 100 -measure 800 -every 64 -format csv >"$TELECSV"
test "$(wc -l <"$TELECSV")" -gt 2
# Shard-equivalence smoke: the same 4x4 run sharded and sequential must
# emit byte-identical JSON — telemetry epochs included, since the sampled
# stream is part of the kernel-independence contract.
SHARD1="$(mktemp)"
SHARD2="$(mktemp)"
trap 'rm -f "$TELECSV" "$SHARD1" "$SHARD2"' EXIT
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -telemetry-every 128 -shards 1 >"$SHARD1"
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -telemetry-every 128 -shards 2 >"$SHARD2"
cmp "$SHARD1" "$SHARD2"
# The examples are built and vetted by the ./... sweeps above; run the
# observability example too, since it exercises the telemetry API (epoch
# series, heatmap export, live /metrics scrape) end to end.
go run ./examples/observability >/dev/null
