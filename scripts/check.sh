#!/bin/sh
# Pre-merge gate: vet, build, full test suite, then the race detector over
# the packages that exercise the router protocol concurrently-audited paths.
# Run from the repository root (directly or via `make check`).
set -eux

# Work-dir hygiene: a checkpoint or telemetry writer killed mid-write
# leaves `.tmp-*` files behind, and a run pointed at the repository
# leaves `ckpt-*.rocosnap` snapshots; either is stale state that a later
# run could silently resume from, so fail fast before building anything.
STALE="$(find . -path ./.git -prune -o \( -name '.tmp-*' -o -name 'ckpt-*.rocosnap' \) -print)"
if [ -n "$STALE" ]; then
	echo "check.sh: stale checkpoint/telemetry temp files in the work dir; remove them first:" >&2
	echo "$STALE" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# Documentation gate: package comments, exported-identifier docs in
# public packages, and live relative markdown links.
sh scripts/doccheck.sh
go test -race ./internal/network ./internal/router/... ./internal/core
# Differential seed-corpus pass for the bitmap arbiter fast path, under
# the race detector: GrantMask/PeekMask must match the legacy linear scan
# on every seed (extended exploration is manual:
# `go test -fuzz=FuzzGrantMask ./internal/arbiter`).
go test -race -run '^FuzzGrantMask$' ./internal/arbiter
# Smoke every benchmark (kernel, shard, telemetry, layout, the
# allocation-stage grid and the chiplet seam grid): one iteration each,
# just to prove they run.
go test -run '^$' -bench=. -benchtime=1x ./bench/...
# Smoke the CLI's JSON output: a tiny reliable run under a fault must emit
# parseable JSON with the reliability counters present.
go run ./cmd/rocosim -json -reliable -rate 0.2 -warmup 200 -measure 2000 \
	-faults-at 150 -faultclass noncritical -audit 64 \
	| go run ./scripts/jsoncheck ResidualLoss Retransmissions GiveUps Watchdog FaultEvents
# Telemetry smoke: an epoch-sampled run must emit the Telemetry series in
# its JSON result, and the rocotrace exporter must produce a CSV with a
# header plus at least one epoch row.
go run ./cmd/rocosim -json -telemetry-every 128 -rate 0.2 -warmup 200 -measure 2000 \
	| go run ./scripts/jsoncheck Telemetry AvgLatency Completion
TELECSV="$(mktemp)"
trap 'rm -f "$TELECSV"' EXIT
go run ./cmd/rocotrace -telemetry -width 4 -height 4 -warmup 100 -measure 800 -every 64 -format csv >"$TELECSV"
test "$(wc -l <"$TELECSV")" -gt 2
# Shard-equivalence smoke: the same 4x4 run sharded and sequential must
# emit byte-identical JSON — telemetry epochs included, since the sampled
# stream is part of the kernel-independence contract.
SHARD1="$(mktemp)"
SHARD2="$(mktemp)"
trap 'rm -f "$TELECSV" "$SHARD1" "$SHARD2"' EXIT
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -telemetry-every 128 -shards 1 >"$SHARD1"
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -telemetry-every 128 -shards 2 >"$SHARD2"
cmp "$SHARD1" "$SHARD2"
# Kernel-equivalence smoke: the struct-of-arrays kernel must emit
# byte-identical JSON to the reference kernel on the same faulted,
# telemetry-sampled run (DESIGN.md 4g).
KERNREF="$(mktemp)"
KERNSOA="$(mktemp)"
trap 'rm -f "$TELECSV" "$SHARD1" "$SHARD2" "$KERNREF" "$KERNSOA"' EXIT
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -telemetry-every 128 \
	-faults-at 150 -faultclass noncritical -kernel reference >"$KERNREF"
go run ./cmd/rocosim -json -width 4 -height 4 -rate 0.2 -warmup 100 -measure 800 -audit 32 -telemetry-every 128 \
	-faults-at 150 -faultclass noncritical -kernel soa >"$KERNSOA"
cmp "$KERNREF" "$KERNSOA"
# Chiplet smoke: a multichip run with a runtime D2D-interface fault must
# emit parseable JSON with the boundary-link counters, and its SoA-kernel
# twin must be byte-identical (the D2D pipes are part of the
# kernel-independence contract).
CHIPREF="$(mktemp)"
CHIPSOA="$(mktemp)"
trap 'rm -f "$TELECSV" "$SHARD1" "$SHARD2" "$KERNREF" "$KERNSOA" "$CHIPREF" "$CHIPSOA"' EXIT
go run ./cmd/rocosim -json -topology multichipmesh -chips 2x2 -chip-size 4x4 \
	-d2d-class serial -reliable -rate 0.15 -warmup 100 -measure 1500 -audit 32 \
	-d2d-fault 0:east@800 -kernel reference >"$CHIPREF"
go run ./scripts/jsoncheck D2DFlits D2DEnergyNJ GiveUps FaultEvents <"$CHIPREF"
go run ./cmd/rocosim -json -topology multichipmesh -chips 2x2 -chip-size 4x4 \
	-d2d-class serial -reliable -rate 0.15 -warmup 100 -measure 1500 -audit 32 \
	-d2d-fault 0:east@800 -kernel soa >"$CHIPSOA"
cmp "$CHIPREF" "$CHIPSOA"
# Checkpoint/resume round-trip: the same reliable faulted run straight
# through, with periodic snapshots, and interrupted-then-resumed must all
# emit byte-identical JSON — snapshots never perturb a run, and a resumed
# run is indistinguishable from one that never stopped.
CKPTDIR="$(mktemp -d)"
trap 'rm -f "$TELECSV" "$SHARD1" "$SHARD2" "$KERNREF" "$KERNSOA" "$CHIPREF" "$CHIPSOA"; rm -rf "$CKPTDIR"' EXIT
go run ./cmd/rocosim -json -reliable -rate 0.2 -warmup 100 -measure 2000 \
	-faults-at 150 -faultclass noncritical >"$CKPTDIR/full.json"
go run ./cmd/rocosim -json -reliable -rate 0.2 -warmup 100 -measure 2000 \
	-faults-at 150 -faultclass noncritical \
	-checkpoint-every 100 -checkpoint-dir "$CKPTDIR/snaps" >"$CKPTDIR/ckpt.json"
cmp "$CKPTDIR/full.json" "$CKPTDIR/ckpt.json"
go run ./cmd/rocosim -json -reliable -rate 0.2 -warmup 100 -measure 2000 \
	-faults-at 150 -faultclass noncritical \
	-resume -checkpoint-dir "$CKPTDIR/snaps" >"$CKPTDIR/resumed.json"
cmp "$CKPTDIR/full.json" "$CKPTDIR/resumed.json"
# rocoserve crash-recovery smoke through real processes: submit a job,
# SIGKILL the server mid-run, restart it over the same data directory,
# and the recovered job's result JSON must be byte-identical to one from
# a server nobody killed. servesmoke orchestrates the processes and owns
# its own temp dirs.
SERVEBIN="$(mktemp -d)"
trap 'rm -f "$TELECSV" "$SHARD1" "$SHARD2" "$KERNREF" "$KERNSOA" "$CHIPREF" "$CHIPSOA"; rm -rf "$CKPTDIR" "$SERVEBIN"' EXIT
go build -o "$SERVEBIN/rocoserve" ./cmd/rocoserve
go run ./scripts/servesmoke -bin "$SERVEBIN/rocoserve"
# The examples are built and vetted by the ./... sweeps above; run the
# observability example too, since it exercises the telemetry API (epoch
# series, heatmap export, live /metrics scrape) end to end.
go run ./examples/observability >/dev/null
# ...and the chiplet example, which drives the multichip topology and the
# D2D-interface fault path end to end through the public API.
go run ./examples/chiplet >/dev/null
