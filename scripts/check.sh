#!/bin/sh
# Pre-merge gate: vet, build, full test suite, then the race detector over
# the packages that exercise the router protocol concurrently-audited paths.
# Run from the repository root (directly or via `make check`).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/network ./internal/router/... ./internal/core
